// Sharded-experiment determinism contract: with cfg.shards > 1 and a
// decomposable scenario, the merged result must be BYTE-identical to the
// single-shard run in every virtual-time field — migration records, traffic
// by class, workload aggregates, solver work counters — for any shard
// count, in both solver regimes. Coupled regimes (CM1, faults) and runtime
// guard trips (max_sim_time truncation) must fall back to one shard
// transparently. Scheduler-implementation counters (engine_events, frame
// counters) legitimately differ — a finished slice stops stepping at its
// own last event and frame pools are per-thread — and are the only fields
// excluded here; see tools/check_sweep_golden.py --shards for the same
// split applied to the CI sweep gates.
#include <gtest/gtest.h>

#include "cloud/experiment.h"
#include "cloud/shard_plan.h"
#include "net/flow_network.h"
#include "sim/fault_plan.h"

namespace hm::cloud {
namespace {

using storage::kKiB;
using storage::kMiB;

/// Decomposable AsyncWR fleet: unlimited fabric (non-blocking core), flat
/// topology, one distinct destination per migration => every VM is its own
/// constraint-graph component.
ExperimentConfig decomposable_config(int incremental) {
  ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.cluster.image = storage::ImageConfig{64 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.cluster.network.incremental = incremental;
  cfg.cluster.network.fabric_Bps = net::kUnlimitedRate;
  cfg.vm.memory.ram_bytes = 64 * kMiB;
  cfg.vm.memory.page_bytes = 256 * kKiB;
  cfg.vm.memory.base_used_bytes = 16 * kMiB;
  cfg.vm.cache.capacity_bytes = 32 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 16 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 20;
  cfg.asyncwr.file_offset = 32 * kMiB;
  cfg.num_vms = 8;
  cfg.num_migrations = 8;
  cfg.num_destinations = 8;
  cfg.first_migration_at = 1.5;
  cfg.migration_interval_s = 0.5;  // staggered: distinct event timestamps
  cfg.max_sim_time = 600.0;
  return cfg;
}

/// EXPECT_EQ on doubles is exact comparison — that is the point: the
/// sharded run must land on the identical bit pattern, not within a
/// tolerance. `exact_epochs` additionally compares settle-epoch counts;
/// burst/broadcast scenarios batch same-timestamp churn of several
/// components into shared epochs a sharded run cannot share (same work,
/// more epochs), so those pass false. `exact_work` compares the solver
/// work counters (components water-filled, flows resolved): they sum
/// exactly in the incremental regime (work is component-scoped), but a
/// full re-solve (ABLATE_INCREMENTAL=off) touches every live flow each
/// epoch, so a global run does strictly more work than the shards' local
/// full-solves — the same split check_sweep_golden.py makes with
/// --ignore-solver-work.
void expect_identical(const ExperimentResult& ref, const ExperimentResult& got,
                      bool exact_epochs, bool exact_work = true) {
  EXPECT_EQ(ref.completed, got.completed);
  EXPECT_EQ(ref.error, got.error);
  EXPECT_EQ(ref.sim_duration, got.sim_duration);
  EXPECT_EQ(ref.app_execution_time, got.app_execution_time);

  ASSERT_EQ(ref.migrations.size(), got.migrations.size());
  for (std::size_t i = 0; i < ref.migrations.size(); ++i) {
    const core::MigrationRecord& a = ref.migrations[i];
    const core::MigrationRecord& b = got.migrations[i];
    EXPECT_EQ(a.vm_id, b.vm_id) << "migration " << i;
    EXPECT_EQ(a.t_request, b.t_request) << "migration " << i;
    EXPECT_EQ(a.t_control_transfer, b.t_control_transfer) << "migration " << i;
    EXPECT_EQ(a.t_source_released, b.t_source_released) << "migration " << i;
    EXPECT_EQ(a.downtime_s, b.downtime_s) << "migration " << i;
    EXPECT_EQ(a.memory_rounds, b.memory_rounds) << "migration " << i;
    EXPECT_EQ(a.memory_bytes_sent, b.memory_bytes_sent) << "migration " << i;
    EXPECT_EQ(a.storage_chunks_pushed, b.storage_chunks_pushed) << "migration " << i;
    EXPECT_EQ(a.storage_chunks_pulled, b.storage_chunks_pulled) << "migration " << i;
  }
  EXPECT_EQ(ref.total_migration_time, got.total_migration_time);
  EXPECT_EQ(ref.avg_migration_time, got.avg_migration_time);
  EXPECT_EQ(ref.max_downtime, got.max_downtime);

  for (std::size_t c = 0; c < net::kNumTrafficClasses; ++c)
    EXPECT_EQ(ref.traffic_bytes[c], got.traffic_bytes[c])
        << net::traffic_class_name(static_cast<net::TrafficClass>(c));
  EXPECT_EQ(ref.total_traffic, got.total_traffic);
  EXPECT_EQ(ref.migration_traffic, got.migration_traffic);

  EXPECT_EQ(ref.bytes_written, got.bytes_written);
  EXPECT_EQ(ref.bytes_read, got.bytes_read);
  EXPECT_EQ(ref.write_Bps, got.write_Bps);
  EXPECT_EQ(ref.read_Bps, got.read_Bps);
  EXPECT_EQ(ref.cpu_seconds_total, got.cpu_seconds_total);

  EXPECT_EQ(ref.recovery.faults_injected, got.recovery.faults_injected);
  EXPECT_EQ(ref.recovery.node_crashes, got.recovery.node_crashes);
  EXPECT_EQ(ref.recovery.correlated_events, got.recovery.correlated_events);
  EXPECT_EQ(ref.recovery.total_retries, got.recovery.total_retries);
  EXPECT_EQ(ref.recovery.migrations_abandoned, got.recovery.migrations_abandoned);
  EXPECT_EQ(ref.recovery.retransferred_bytes, got.recovery.retransferred_bytes);
  EXPECT_EQ(ref.recovery.fault_downtime_s, got.recovery.fault_downtime_s);
  EXPECT_EQ(ref.recovery.node_downtime_s, got.recovery.node_downtime_s);
  EXPECT_EQ(ref.recovery.max_time_to_recover_s, got.recovery.max_time_to_recover_s);
  EXPECT_EQ(ref.recovery.recovery_p50_s, got.recovery.recovery_p50_s);
  EXPECT_EQ(ref.recovery.recovery_p99_s, got.recovery.recovery_p99_s);
  EXPECT_EQ(ref.recovery.recovery_p999_s, got.recovery.recovery_p999_s);
  EXPECT_EQ(ref.recovery.downtime_p50_s, got.recovery.downtime_p50_s);
  EXPECT_EQ(ref.recovery.downtime_p99_s, got.recovery.downtime_p99_s);
  EXPECT_EQ(ref.recovery.downtime_p999_s, got.recovery.downtime_p999_s);

  // Flows started is a simulated quantity and always sums exactly;
  // scheduler bookkeeping (events, frames) is never compared.
  EXPECT_EQ(ref.engine_flows, got.engine_flows);
  EXPECT_EQ(ref.engine_escalations, got.engine_escalations);
  if (exact_work) {
    EXPECT_EQ(ref.engine_components, got.engine_components);
    EXPECT_EQ(ref.engine_flows_resolved, got.engine_flows_resolved);
  }
  if (exact_epochs) EXPECT_EQ(ref.engine_recomputes, got.engine_recomputes);
}

ExperimentResult run_with_shards(ExperimentConfig cfg, std::uint32_t shards) {
  cfg.shards = shards;
  return Experiment(std::move(cfg)).run();
}

TEST(ShardPlanning, HardCouplersCollapseNetworkCouplersRunCoupled) {
  ExperimentConfig base = decomposable_config(1);
  base.shards = 4;
  base.normalize();
  EXPECT_GT(plan_shards(base).shard_count(), 1u);
  EXPECT_EQ(plan_shards(base).kind, PlanKind::kIndependent);
  EXPECT_TRUE(plan_shards(base).coupled_reason.empty());

  auto reason = [](ExperimentConfig cfg) {
    cfg.normalize();
    const ShardPlan plan = plan_shards(cfg);
    EXPECT_EQ(plan.shard_count(), 1u);
    return plan.coupled_reason;
  };

  {
    ExperimentConfig c = base;
    c.shards = 1;
    EXPECT_EQ(plan_shards(c).shard_count(), 1u);  // sharding not requested
  }
  {
    ExperimentConfig c = base;
    c.workload = WorkloadKind::kCm1;
    EXPECT_FALSE(reason(c).empty());
  }
  {
    ExperimentConfig c = base;
    c.workload = WorkloadKind::kIor;
    EXPECT_FALSE(reason(c).empty());
  }
  {
    // Finite network constraints no longer collapse the plan: they keep the
    // component partition and run it epoch-coupled under the mirror solver.
    ExperimentConfig c = base;
    c.cluster.network.fabric_Bps = 8e9;
    c.normalize();
    const ShardPlan plan = plan_shards(c);
    EXPECT_EQ(plan.kind, PlanKind::kEpochCoupled);
    EXPECT_GT(plan.shard_count(), 1u);
    EXPECT_FALSE(plan.coupled_reason.empty());
  }
  {
    ExperimentConfig c = base;
    c.cluster.nodes_per_switch = 4;
    c.cluster.switch_uplink_Bps = 1e9;  // finite uplinks: also epoch-coupled
    c.normalize();
    const ShardPlan plan = plan_shards(c);
    EXPECT_EQ(plan.kind, PlanKind::kEpochCoupled);
    EXPECT_GT(plan.shard_count(), 1u);
    EXPECT_FALSE(plan.coupled_reason.empty());
  }
  {
    ExperimentConfig c = base;
    std::string err;
    ASSERT_TRUE(sim::parse_fault_spec("rand:crashes=1", &c.faults, &err)) << err;
    EXPECT_FALSE(reason(c).empty());
  }
  {
    ExperimentConfig c = base;
    c.record_trace_path = "/tmp/never-written.trace";
    EXPECT_FALSE(reason(c).empty());
  }
  {
    ExperimentConfig c = base;
    c.num_destinations = 1;  // every migration lands on one node
    c.normalize();
    const ShardPlan plan = plan_shards(c);
    EXPECT_EQ(plan.shard_count(), 1u);
    EXPECT_EQ(plan.coupled_reason, "single connected component");
  }
}

TEST(ShardDeterminism, ByteIdenticalAcrossShardCounts) {
  for (int incremental : {1, 0}) {
    SCOPED_TRACE(incremental ? "incremental" : "fullsolve");
    const ExperimentResult ref = run_with_shards(decomposable_config(incremental), 1);
    ASSERT_TRUE(ref.completed);
    ASSERT_TRUE(ref.error.empty()) << ref.error;
    ASSERT_EQ(ref.migrations.size(), 8u);
    EXPECT_GT(ref.max_downtime, 0.0);  // the comparison must not be vacuous
    EXPECT_EQ(ref.shards_used, 1u);

    for (std::uint32_t n : {2u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(n));
      const ExperimentResult got = run_with_shards(decomposable_config(incremental), n);
      // 8 singleton components pack n bins: a genuinely parallel run.
      EXPECT_EQ(got.shards_used, n);
      EXPECT_TRUE(got.shard_fallback_reason.empty()) << got.shard_fallback_reason;
      expect_identical(ref, got, /*exact_epochs=*/true,
                       /*exact_work=*/incremental == 1);
    }
  }
}

TEST(ShardDeterminism, SimultaneousMigrationsStayByteIdentical) {
  // interval = 0: every migration launches at the same instant, so settle
  // epochs that one global run batches across components split per shard —
  // epoch counts drift, every simulated field must not.
  ExperimentConfig cfg = decomposable_config(1);
  cfg.migration_interval_s = 0.0;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_TRUE(ref.completed);
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 4u);
  expect_identical(ref, got, /*exact_epochs=*/false);
}

TEST(ShardDeterminism, SharedDestinationsMergeComponents) {
  // 8 migrations round-robin onto 4 destinations: VM k and VM k+4 share a
  // destination NIC, so the partitioner must merge them — 4 components,
  // even when 8 shards were requested.
  ExperimentConfig cfg = decomposable_config(1);
  cfg.num_destinations = 4;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_TRUE(ref.completed);
  const ExperimentResult got = run_with_shards(cfg, 8);
  EXPECT_EQ(got.shards_used, 4u);
  expect_identical(ref, got, /*exact_epochs=*/true);
}

TEST(ShardDeterminism, TornPartitionRunsOnFewerShards) {
  // Two VMs, eight requested shards: two components, six empty bins. The
  // run must use exactly the two real slices and stay byte-identical.
  ExperimentConfig cfg = decomposable_config(1);
  cfg.num_vms = 2;
  cfg.num_migrations = 2;
  cfg.num_destinations = 2;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_TRUE(ref.completed);
  ASSERT_EQ(ref.migrations.size(), 2u);
  const ExperimentResult got = run_with_shards(cfg, 8);
  EXPECT_EQ(got.shards_used, 2u);
  expect_identical(ref, got, /*exact_epochs=*/true);
}

TEST(ShardDeterminism, BroadcastTraceReplayShards) {
  // A generated broadcast trace fans the same op stream to every VM —
  // decomposable, but every VM sees identical timestamps, so epoch counts
  // drift like the simultaneous case.
  ExperimentConfig cfg = decomposable_config(1);
  cfg.workload = WorkloadKind::kTrace;
  cfg.trace.gen.pattern = workloads::TracePattern::kZipfian;
  cfg.trace.gen.duration_s = 15.0;
  cfg.trace.gen.pages = 256;
  cfg.trace.gen.chunks = 128;
  cfg.trace.gen.file_offset = 32 * kMiB;
  cfg.num_vms = 4;
  cfg.num_migrations = 4;
  cfg.num_destinations = 4;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_TRUE(ref.completed);
  ASSERT_TRUE(ref.error.empty()) << ref.error;
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 4u);
  expect_identical(ref, got, /*exact_epochs=*/false);
}

TEST(ShardFallback, SeededFaultDrawsCollapseToOneShard) {
  // rand: plan draws share one RNG stream: the planner must refuse to
  // shard, and the run must match the explicit single-shard run exactly
  // (same code path, same seed).
  ExperimentConfig cfg = decomposable_config(1);
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec(
      "rand:crashes=1,degrades=1,from=2,span=3,dur=2", &cfg.faults, &err))
      << err;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 1u);
  EXPECT_EQ(got.shard_fallback_reason, "seeded fault draws share one RNG stream");
  EXPECT_GT(got.recovery.faults_injected, 0u);  // the axis actually fired
  expect_identical(ref, got, /*exact_epochs=*/true);
}

TEST(ShardFallback, ChurnAndNodeScopedFaultsCollapseWithSpecificReasons) {
  auto reason_for = [](const char* spec) {
    ExperimentConfig cfg = decomposable_config(1);
    cfg.shards = 4;
    std::string err;
    EXPECT_TRUE(sim::parse_fault_spec(spec, &cfg.faults, &err)) << err;
    cfg.normalize();
    const ShardPlan plan = plan_shards(cfg);
    EXPECT_EQ(plan.shard_count(), 1u) << spec;
    return plan.coupled_reason;
  };
  EXPECT_EQ(reason_for("churn:crash-mtbf=50,crash-mttr=5"),
            "churn fault process spans every node");
  EXPECT_EQ(reason_for("node-crash@5+4#3"),
            "fault events target global or node-scoped resources");
  EXPECT_EQ(reason_for("repo-outage@5+4"),
            "fault events target global or node-scoped resources");
  EXPECT_EQ(reason_for("domain-crash@5+4#0;domains:rack0=0-1"),
            "fault events target global or node-scoped resources");
}

TEST(ShardDeterminism, RoutableScriptedFaultPlanStillShards) {
  // Migration-scoped scripted events (src-crash, degrade, flap on migration
  // k) resolve entirely inside migration k's component: the plan shards, and
  // each slice arms exactly the events it owns — byte-identical to shards=1.
  ExperimentConfig cfg = decomposable_config(1);
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec(
      "src-crash@2.0+3#1;degrade@4+5*0.25#2;flap@6+1#5", &cfg.faults, &err))
      << err;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_TRUE(ref.completed);
  EXPECT_EQ(ref.recovery.faults_injected, 3u);
  EXPECT_GE(ref.recovery.total_retries, 1);
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 4u);
  EXPECT_TRUE(got.shard_fallback_reason.empty()) << got.shard_fallback_reason;
  expect_identical(ref, got, /*exact_epochs=*/true);
}

TEST(ShardFallback, DstScopedEventOnUnusedMigrationCollapses) {
  // dst-crash targeting migration 6 when only 4 migrations run: the
  // destination node is not pinned to any launched migration's component,
  // so the planner must collapse rather than mis-route the event.
  ExperimentConfig cfg = decomposable_config(1);
  cfg.num_migrations = 4;
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec("dst-crash@2+3#6", &cfg.faults, &err)) << err;
  cfg.shards = 4;
  cfg.normalize();
  const ShardPlan plan = plan_shards(cfg);
  EXPECT_EQ(plan.shard_count(), 1u);
  EXPECT_EQ(plan.coupled_reason, "scripted fault targets an unused migration destination");
}

TEST(ShardFallback, AuditedRunCollapsesToOneShard) {
  ExperimentConfig cfg = decomposable_config(1);
  cfg.audit = true;
  cfg.shards = 4;
  cfg.normalize();
  const ShardPlan plan = plan_shards(cfg);
  EXPECT_EQ(plan.shard_count(), 1u);
  EXPECT_EQ(plan.coupled_reason, "auditor observes every migration");
}

TEST(ShardFallback, Cm1CollapsesToOneShard) {
  ExperimentConfig cfg = decomposable_config(1);
  cfg.workload = WorkloadKind::kCm1;
  cfg.cm1.grid_x = 2;
  cfg.cm1.grid_y = 2;
  cfg.cm1.step_compute_s = 0.5;
  cfg.cm1.steps_per_output = 2;
  cfg.cm1.num_outputs = 2;
  cfg.cm1.output_bytes = 8 * kMiB;
  cfg.cm1.halo_bytes = 256 * kKiB;
  cfg.cm1.file_offset = 32 * kMiB;
  cfg.cm1.dirty_Bps = 1e6;
  cfg.cm1.ws_bytes = 16 * kMiB;
  cfg.num_migrations = 2;
  cfg.num_destinations = 2;
  cfg.first_migration_at = 1.0;
  cfg.migration_interval_s = 0.7;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_TRUE(ref.completed);
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 1u);
  expect_identical(ref, got, /*exact_epochs=*/true);
}

TEST(ShardFallback, TruncatedRunRerunsSingleShard) {
  // max_sim_time cuts the run mid-migration: where the cut lands depends on
  // the global interleave, which a slice cannot know — the executor's guard
  // must detect the incomplete slice and transparently rerun single-shard,
  // reproducing the single-shard truncation exactly.
  ExperimentConfig cfg = decomposable_config(1);
  cfg.max_sim_time = 3.0;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_FALSE(ref.completed);
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 1u);
  EXPECT_EQ(got.shard_fallback_reason, "runtime guard: max_sim_time truncation");
  EXPECT_FALSE(got.completed);
  expect_identical(ref, got, /*exact_epochs=*/true);
}

}  // namespace
}  // namespace hm::cloud
