// End-to-end fault-injection runs: crashes, outages and degradation windows
// threaded through full experiments. Asserts the recovery metrics
// (retries, re-transferred bytes, fault downtime, time-to-recover) and the
// determinism contract — same seed and fault spec, byte-identical virtual
// timeline.
#include <gtest/gtest.h>

#include <string>

#include "cloud/experiment.h"

namespace hm::cloud {
namespace {

using storage::kMiB;

/// Same scaled-down scenario as experiment_test.cpp, plus a fault spec.
ExperimentConfig fault_config(core::Approach a, const std::string& spec) {
  ExperimentConfig cfg;
  cfg.approach = a;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.image = storage::ImageConfig{512 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.vm.memory.ram_bytes = 512 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 64 * kMiB;
  cfg.vm.cache.capacity_bytes = 128 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 64 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = WorkloadKind::kIor;
  cfg.ior.iterations = 3;
  cfg.ior.file_bytes = 96 * kMiB;
  cfg.ior.block_bytes = kMiB;
  cfg.ior.file_offset = 128 * kMiB;
  cfg.first_migration_at = 2.0;
  cfg.max_sim_time = 600.0;
  std::string err;
  EXPECT_TRUE(sim::parse_fault_spec(spec, &cfg.faults, &err)) << err;
  return cfg;
}

TEST(FaultExperiment, SourceCrashAbortsThenRetriesToCompletion) {
  // Crash the migrating VM's host 0.2 s into the active phase — well before
  // control can have moved — and bring it back 4 s later.
  Experiment exp(fault_config(core::Approach::kHybrid, "src-crash@2.2+4"));
  ExperimentResult res = exp.run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.recovery.faults_injected, 1u);
  ASSERT_EQ(res.migrations.size(), 1u);
  EXPECT_GE(res.recovery.total_retries, 1);
  EXPECT_EQ(res.recovery.migrations_abandoned, 0);
  EXPECT_GT(res.recovery.fault_downtime_s, 0.0);  // the guest was paused on the dead host
  EXPECT_GT(res.recovery.max_time_to_recover_s, 0.0);
  EXPECT_GT(res.migrations[0].t_first_abort, 0.0);
  EXPECT_GT(res.migrations[0].t_control_transfer, res.migrations[0].t_first_abort);
}

TEST(FaultExperiment, DestCrashLosesPartialReplicaAndRetransfers) {
  Experiment exp(fault_config(core::Approach::kHybrid, "dst-crash@2.3+4"));
  ExperimentResult res = exp.run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_GE(res.recovery.total_retries, 1);
  // The destination's partial replica died with the node: every chunk
  // pushed before the crash crosses the wire again.
  EXPECT_GT(res.recovery.retransferred_bytes, 0.0);
}

TEST(FaultExperiment, SameSeedSameFaultsByteIdenticalTimeline) {
  const char* spec = "src-crash@2.2+4;degrade@8+5*0.25;flap@15+2";
  ExperimentResult a = Experiment(fault_config(core::Approach::kHybrid, spec)).run();
  ExperimentResult b = Experiment(fault_config(core::Approach::kHybrid, spec)).run();
  EXPECT_DOUBLE_EQ(a.sim_duration, b.sim_duration);
  EXPECT_DOUBLE_EQ(a.total_traffic, b.total_traffic);
  EXPECT_DOUBLE_EQ(a.avg_migration_time, b.avg_migration_time);
  EXPECT_DOUBLE_EQ(a.recovery.retransferred_bytes, b.recovery.retransferred_bytes);
  EXPECT_DOUBLE_EQ(a.recovery.fault_downtime_s, b.recovery.fault_downtime_s);
  EXPECT_DOUBLE_EQ(a.recovery.max_time_to_recover_s, b.recovery.max_time_to_recover_s);
  EXPECT_EQ(a.recovery.total_retries, b.recovery.total_retries);
  EXPECT_EQ(a.recovery.faults_injected, b.recovery.faults_injected);
}

TEST(FaultExperiment, SeededRandomPlanAppliesEveryCategory) {
  Experiment exp(fault_config(
      core::Approach::kHybrid,
      // All six categories strike inside [2, 5) — early enough that every
      // event lands before the (short) experiment finishes.
      "rand:crashes=1,dst-crashes=1,degrades=1,flaps=1,slow=1,outages=1,"
      "from=2,span=3,dur=3"));
  ExperimentResult res = exp.run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.recovery.faults_injected, 6u);
}

TEST(FaultExperiment, RepositoryOutageIsWaitedOut) {
  Experiment exp(fault_config(core::Approach::kHybrid, "repo-outage@2.5+5"));
  ExperimentResult res = exp.run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.recovery.faults_injected, 1u);
  EXPECT_EQ(res.recovery.migrations_abandoned, 0);
}

TEST(FaultExperiment, EveryApproachSurvivesASourceCrash) {
  for (core::Approach a :
       {core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
        core::Approach::kPrecopy, core::Approach::kPvfsShared}) {
    Experiment exp(fault_config(a, "src-crash@2.2+4"));
    ExperimentResult res = exp.run();
    EXPECT_TRUE(res.completed) << core::approach_name(a) << ": " << res.error;
    ASSERT_EQ(res.migrations.size(), 1u) << core::approach_name(a);
    EXPECT_GT(res.migrations[0].t_control_transfer, 0.0) << core::approach_name(a);
    EXPECT_EQ(res.recovery.migrations_abandoned, 0) << core::approach_name(a);
  }
}

TEST(FaultExperiment, SingleAttemptCrashAbandonsButExperimentCompletes) {
  ExperimentConfig cfg = fault_config(core::Approach::kHybrid, "src-crash@2.2+4");
  cfg.approach_cfg.max_attempts = 1;
  Experiment exp(std::move(cfg));
  ExperimentResult res = exp.run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.recovery.migrations_abandoned, 1);
  ASSERT_EQ(res.migrations.size(), 1u);
  EXPECT_TRUE(res.migrations[0].abandoned);
  EXPECT_DOUBLE_EQ(res.migrations[0].t_control_transfer, 0.0);
}

TEST(FaultExperiment, FaultFreeSpecLeavesMetricsZero) {
  ExperimentConfig cfg = fault_config(core::Approach::kHybrid, "none");
  EXPECT_FALSE(cfg.faults.enabled());
  ExperimentResult res = Experiment(std::move(cfg)).run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.recovery.faults_injected, 0u);
  EXPECT_EQ(res.recovery.total_retries, 0);
  EXPECT_DOUBLE_EQ(res.recovery.retransferred_bytes, 0.0);
  EXPECT_DOUBLE_EQ(res.recovery.fault_downtime_s, 0.0);
}

/// Byte-identity under a generative churn stream with a correlated failure
/// domain: repeated runs AND both solver regimes (incremental vs always-
/// global full solve) must agree on every virtual-time recovery field. The
/// domain covers the migration destination plus an idle node, so a
/// correlated event atomically kills two nodes and forces a salvage/retry.
TEST(ChurnExperiment, ChurnWithDomainsByteIdenticalAcrossSolverRegimes) {
  const char* spec =
      "churn:crash-mtbf=1,crash-mttr=1,domain-mtbf=4,domain-mttr=1,"
      "factor=0.3,from=1,until=20;domains:rack0=1-2";
  auto run = [&](int incremental) {
    ExperimentConfig cfg = fault_config(core::Approach::kHybrid, spec);
    cfg.audit = true;
    cfg.ior.iterations = 12;  // long enough for the churn stream to bite
    cfg.cluster.network.incremental = incremental;
    return Experiment(std::move(cfg)).run();
  };
  const ExperimentResult a = run(1);
  const ExperimentResult a2 = run(1);
  const ExperimentResult b = run(0);
  EXPECT_TRUE(a.completed) << a.error;
  EXPECT_GE(a.recovery.faults_injected, 1u);
  EXPECT_GE(a.recovery.correlated_events, 1u);
  EXPECT_GE(a.recovery.node_crashes, 2u);  // each domain event kills 2 nodes
  EXPECT_GE(a.recovery.total_retries, 1);  // churn aborted at least one attempt
  EXPECT_GE(a.recovery.migrations_recovered, 1u);
  for (const ExperimentResult* r : {&a2, &b}) {
    EXPECT_DOUBLE_EQ(a.sim_duration, r->sim_duration);
    EXPECT_DOUBLE_EQ(a.total_traffic, r->total_traffic);
    EXPECT_DOUBLE_EQ(a.avg_migration_time, r->avg_migration_time);
    EXPECT_EQ(a.recovery.faults_injected, r->recovery.faults_injected);
    EXPECT_EQ(a.recovery.node_crashes, r->recovery.node_crashes);
    EXPECT_EQ(a.recovery.correlated_events, r->recovery.correlated_events);
    EXPECT_EQ(a.recovery.total_retries, r->recovery.total_retries);
    EXPECT_DOUBLE_EQ(a.recovery.retransferred_bytes, r->recovery.retransferred_bytes);
    EXPECT_DOUBLE_EQ(a.recovery.fault_downtime_s, r->recovery.fault_downtime_s);
    EXPECT_DOUBLE_EQ(a.recovery.node_downtime_s, r->recovery.node_downtime_s);
    EXPECT_DOUBLE_EQ(a.recovery.max_time_to_recover_s, r->recovery.max_time_to_recover_s);
    EXPECT_DOUBLE_EQ(a.recovery.recovery_p50_s, r->recovery.recovery_p50_s);
    EXPECT_DOUBLE_EQ(a.recovery.recovery_p999_s, r->recovery.recovery_p999_s);
    EXPECT_DOUBLE_EQ(a.recovery.downtime_p99_s, r->recovery.downtime_p99_s);
  }
  // The auditor ran and the run is invariant-clean.
  EXPECT_GT(a.audit_checks, 0u);
  EXPECT_TRUE(a.audit_violations.empty())
      << "first violation: " << a.audit_violations.front();
}

/// Recovery percentiles: recovered migrations feed the p50/p99/p999 samples
/// and respect sample ordering (p50 <= p99 <= p999 <= max).
TEST(ChurnExperiment, RecoveryPercentilesOrderedAndPopulated) {
  const char* spec = "churn:crash-mtbf=1,crash-mttr=1,from=1,until=20";
  ExperimentConfig cfg = fault_config(core::Approach::kHybrid, spec);
  cfg.ior.iterations = 12;
  ExperimentResult res = Experiment(std::move(cfg)).run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_GE(res.recovery.faults_injected, 1u);
  ASSERT_GE(res.recovery.migrations_recovered, 1u);
  EXPECT_GT(res.recovery.recovery_p50_s, 0.0);
  EXPECT_LE(res.recovery.recovery_p50_s, res.recovery.recovery_p99_s);
  EXPECT_LE(res.recovery.recovery_p99_s, res.recovery.recovery_p999_s);
  EXPECT_LE(res.recovery.recovery_p999_s, res.recovery.max_time_to_recover_s);
  EXPECT_LE(res.recovery.downtime_p50_s, res.recovery.downtime_p99_s);
  EXPECT_LE(res.recovery.downtime_p99_s, res.recovery.downtime_p999_s);
}

/// An unbounded churn process (no `until`) keeps generating events forever;
/// the experiment must still terminate the moment its own work is done (the
/// run loop exits on completion, not on timer-queue exhaustion).
TEST(ChurnExperiment, UnboundedChurnStillTerminates) {
  const char* spec = "churn:crash-mtbf=2,crash-mttr=1,from=1";
  ExperimentConfig cfg = fault_config(core::Approach::kHybrid, spec);
  cfg.ior.iterations = 12;
  ExperimentResult res = Experiment(std::move(cfg)).run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_GE(res.recovery.faults_injected, 1u);
  EXPECT_LT(res.sim_duration, 600.0);  // finished well before max_sim_time
}

}  // namespace
}  // namespace hm::cloud
