// Epoch-coupled sharding contract: with finite shared network constraints
// (fabric aggregate, switch uplinks) the plan no longer collapses — the
// slices run in conservative lockstep over global event instants while the
// coordinator's mirror solver arbitrates the shared constraints
// (net/coupled_solver.h). The contract is the same byte-identity the
// independent path carries, but STRONGER on the solver counters: the mirror
// replays the single-shard solver literally, so settle-epoch counts,
// component water-fills, flow re-solves and escalations are all exact in
// BOTH solver regimes (the independent path can only promise that for the
// incremental one). Both drivers — threaded barrier and inline round-robin
// — must produce the identical stream; the TSan CI job runs this suite to
// prove the threaded one's publication discipline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cloud/experiment.h"
#include "cloud/shard_plan.h"
#include "net/flow_network.h"

namespace hm::cloud {
namespace {

using storage::kKiB;
using storage::kMiB;

/// The shard_determinism_test fleet (8 AsyncWR VMs, one destination each —
/// 8 singleton components), but over a finite 300 MB/s fabric aggregate:
/// every migration contends with every other through one shared constraint,
/// the epoch-coupled worst case.
ExperimentConfig finite_fabric_config(int incremental) {
  ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.cluster.image = storage::ImageConfig{64 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.cluster.network.incremental = incremental;
  cfg.cluster.network.fabric_Bps = 300e6;
  cfg.vm.memory.ram_bytes = 64 * kMiB;
  cfg.vm.memory.page_bytes = 256 * kKiB;
  cfg.vm.memory.base_used_bytes = 16 * kMiB;
  cfg.vm.cache.capacity_bytes = 32 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 16 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 20;
  cfg.asyncwr.file_offset = 32 * kMiB;
  cfg.num_vms = 8;
  cfg.num_migrations = 8;
  cfg.num_destinations = 8;
  cfg.first_migration_at = 1.5;
  cfg.migration_interval_s = 0.5;
  cfg.max_sim_time = 600.0;
  return cfg;
}

/// Same fleet under finite switch uplinks instead: 4 nodes per edge switch
/// on 200 MB/s up/down links, unlimited fabric. Shards tear the rack
/// boundary, so the uplink constraints span shards without the fabric ever
/// binding.
ExperimentConfig finite_uplink_config(int incremental) {
  ExperimentConfig cfg = finite_fabric_config(incremental);
  cfg.cluster.network.fabric_Bps = net::kUnlimitedRate;
  cfg.cluster.nodes_per_switch = 4;
  cfg.cluster.switch_uplink_Bps = 200e6;
  return cfg;
}

/// Exact comparison on every simulated field INCLUDING the solver-work
/// counters and settle-epoch count: the mirror replays the single-shard
/// solver, so nothing short of byte identity is acceptable — in either
/// solver regime, for any shard count.
void expect_identical(const ExperimentResult& ref, const ExperimentResult& got) {
  EXPECT_EQ(ref.completed, got.completed);
  EXPECT_EQ(ref.error, got.error);
  EXPECT_EQ(ref.sim_duration, got.sim_duration);
  EXPECT_EQ(ref.app_execution_time, got.app_execution_time);

  ASSERT_EQ(ref.migrations.size(), got.migrations.size());
  for (std::size_t i = 0; i < ref.migrations.size(); ++i) {
    const core::MigrationRecord& a = ref.migrations[i];
    const core::MigrationRecord& b = got.migrations[i];
    EXPECT_EQ(a.vm_id, b.vm_id) << "migration " << i;
    EXPECT_EQ(a.t_request, b.t_request) << "migration " << i;
    EXPECT_EQ(a.t_control_transfer, b.t_control_transfer) << "migration " << i;
    EXPECT_EQ(a.t_source_released, b.t_source_released) << "migration " << i;
    EXPECT_EQ(a.downtime_s, b.downtime_s) << "migration " << i;
    EXPECT_EQ(a.memory_rounds, b.memory_rounds) << "migration " << i;
    EXPECT_EQ(a.memory_bytes_sent, b.memory_bytes_sent) << "migration " << i;
    EXPECT_EQ(a.storage_chunks_pushed, b.storage_chunks_pushed) << "migration " << i;
    EXPECT_EQ(a.storage_chunks_pulled, b.storage_chunks_pulled) << "migration " << i;
  }
  EXPECT_EQ(ref.total_migration_time, got.total_migration_time);
  EXPECT_EQ(ref.avg_migration_time, got.avg_migration_time);
  EXPECT_EQ(ref.max_downtime, got.max_downtime);

  for (std::size_t c = 0; c < net::kNumTrafficClasses; ++c)
    EXPECT_EQ(ref.traffic_bytes[c], got.traffic_bytes[c])
        << net::traffic_class_name(static_cast<net::TrafficClass>(c));
  EXPECT_EQ(ref.total_traffic, got.total_traffic);
  EXPECT_EQ(ref.migration_traffic, got.migration_traffic);

  EXPECT_EQ(ref.bytes_written, got.bytes_written);
  EXPECT_EQ(ref.bytes_read, got.bytes_read);
  EXPECT_EQ(ref.write_Bps, got.write_Bps);
  EXPECT_EQ(ref.read_Bps, got.read_Bps);
  EXPECT_EQ(ref.cpu_seconds_total, got.cpu_seconds_total);

  EXPECT_EQ(ref.engine_flows, got.engine_flows);
  EXPECT_EQ(ref.engine_recomputes, got.engine_recomputes);
  EXPECT_EQ(ref.engine_components, got.engine_components);
  EXPECT_EQ(ref.engine_flows_resolved, got.engine_flows_resolved);
  EXPECT_EQ(ref.engine_escalations, got.engine_escalations);
}

ExperimentResult run_with_shards(ExperimentConfig cfg, std::uint32_t shards) {
  cfg.shards = shards;
  return Experiment(std::move(cfg)).run();
}

TEST(EpochCoupledPlanning, FiniteConstraintsPlanCoupledNotCollapsed) {
  for (auto make : {finite_fabric_config, finite_uplink_config}) {
    ExperimentConfig cfg = make(1);
    cfg.shards = 4;
    cfg.normalize();
    const ShardPlan plan = plan_shards(cfg);
    EXPECT_EQ(plan.kind, PlanKind::kEpochCoupled);
    EXPECT_EQ(plan.shard_count(), 4u);
    EXPECT_FALSE(plan.coupled_reason.empty());
  }
}

TEST(EpochCoupledDeterminism, FiniteFabricByteIdenticalAcrossShardCounts) {
  for (int incremental : {1, 0}) {
    SCOPED_TRACE(incremental ? "incremental" : "fullsolve");
    const ExperimentResult ref = run_with_shards(finite_fabric_config(incremental), 1);
    ASSERT_TRUE(ref.completed);
    ASSERT_TRUE(ref.error.empty()) << ref.error;
    ASSERT_EQ(ref.migrations.size(), 8u);
    EXPECT_GT(ref.max_downtime, 0.0);  // the comparison must not be vacuous
    EXPECT_EQ(ref.shards_used, 1u);

    for (std::uint32_t n : {2u, 4u, 8u}) {
      SCOPED_TRACE("shards=" + std::to_string(n));
      const ExperimentResult got = run_with_shards(finite_fabric_config(incremental), n);
      EXPECT_EQ(got.shards_used, n);  // coupled, NOT collapsed
      EXPECT_TRUE(got.shard_fallback_reason.empty()) << got.shard_fallback_reason;
      expect_identical(ref, got);
    }
  }
}

TEST(EpochCoupledDeterminism, SimultaneousBurstTornConstraint) {
  // interval = 0 launches every migration at one instant: all eight streams
  // tear into the one fabric constraint at once, every round carries adds
  // or removals from several shards, and the coordinator's completion-timer
  // emulation faces maximal same-timestamp churn.
  ExperimentConfig cfg = finite_fabric_config(1);
  cfg.migration_interval_s = 0.0;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_TRUE(ref.completed);
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 4u);
  expect_identical(ref, got);
}

TEST(EpochCoupledDeterminism, FiniteUplinksByteIdentical) {
  for (std::uint32_t n : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    const ExperimentResult ref = run_with_shards(finite_uplink_config(1), 1);
    ASSERT_TRUE(ref.completed);
    const ExperimentResult got = run_with_shards(finite_uplink_config(1), n);
    EXPECT_EQ(got.shards_used, n);
    expect_identical(ref, got);
  }
}

TEST(EpochCoupledDeterminism, ThreadsDriverMatchesSequential) {
  // The coupled executor picks its driver from the host's concurrency; pin
  // each explicitly so a 1-core CI runner still exercises the threaded
  // barrier (and TSan sees its publication discipline) and a many-core one
  // still exercises the inline round-robin.
  const ExperimentResult ref = run_with_shards(finite_fabric_config(1), 1);
  ASSERT_TRUE(ref.completed);
  for (const char* driver : {"threads", "seq"}) {
    SCOPED_TRACE(driver);
    ::setenv("HM_COUPLED_DRIVER", driver, 1);
    const ExperimentResult got = run_with_shards(finite_fabric_config(1), 4);
    ::unsetenv("HM_COUPLED_DRIVER");
    EXPECT_EQ(got.shards_used, 4u);
    expect_identical(ref, got);
  }
}

TEST(EpochCoupledFallback, TruncationRerunsSingleShard) {
  // max_sim_time cuts the run mid-flight; the runtime guard must detect the
  // incomplete slice, rerun single-shard, and say so in the telemetry.
  ExperimentConfig cfg = finite_fabric_config(1);
  cfg.max_sim_time = 3.0;
  const ExperimentResult ref = run_with_shards(cfg, 1);
  ASSERT_FALSE(ref.completed);
  const ExperimentResult got = run_with_shards(cfg, 4);
  EXPECT_EQ(got.shards_used, 1u);
  EXPECT_EQ(got.shard_fallback_reason, "runtime guard: max_sim_time truncation");
  EXPECT_FALSE(got.completed);
  expect_identical(ref, got);
}

}  // namespace
}  // namespace hm::cloud
