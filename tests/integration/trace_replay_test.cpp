// Record→replay equivalence on the full pipeline: a live run recorded via
// TraceRecorder and then replayed through TraceApplication must reproduce
// the live run's migration metrics BYTE-identically (downtime, transferred
// bytes, per-phase/per-class traffic, whole timeline), in both
// ABLATE_INCREMENTAL regimes. This is the trace axis's determinism
// contract: the trace carries the workload's op stream with enough fidelity
// that the simulated system cannot tell the difference. Also pins that
// attaching a recorder is passive (recorded live run == unrecorded run).
#include <gtest/gtest.h>

#include "cloud/experiment.h"

namespace hm::cloud {
namespace {

using storage::kKiB;
using storage::kMiB;

ExperimentConfig base_config(int incremental) {
  ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.cluster.num_nodes = 10;
  cfg.cluster.image = storage::ImageConfig{256 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.cluster.network.incremental = incremental;
  cfg.vm.memory.ram_bytes = 256 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 32 * kMiB;
  cfg.vm.cache.capacity_bytes = 64 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 32 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.max_sim_time = 600.0;
  return cfg;
}

ExperimentConfig asyncwr_config(int incremental) {
  ExperimentConfig cfg = base_config(incremental);
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 40;
  cfg.asyncwr.file_offset = 64 * kMiB;
  cfg.num_vms = 2;
  cfg.num_migrations = 2;
  cfg.num_destinations = 2;
  cfg.first_migration_at = 1.5;
  cfg.migration_interval_s = 1.0;
  return cfg;
}

ExperimentConfig cm1_config(int incremental) {
  ExperimentConfig cfg = base_config(incremental);
  cfg.workload = WorkloadKind::kCm1;
  cfg.cm1.grid_x = 2;
  cfg.cm1.grid_y = 2;
  cfg.cm1.step_compute_s = 0.5;
  cfg.cm1.steps_per_output = 2;
  cfg.cm1.num_outputs = 2;
  cfg.cm1.output_bytes = 8 * kMiB;
  cfg.cm1.halo_bytes = 256 * kKiB;
  cfg.cm1.file_offset = 64 * kMiB;
  cfg.cm1.dirty_Bps = 1e6;
  cfg.cm1.ws_bytes = 16 * kMiB;
  cfg.num_migrations = 2;
  cfg.num_destinations = 2;
  cfg.first_migration_at = 1.0;
  cfg.migration_interval_s = 0.7;
  return cfg;
}

/// EXPECT_EQ on doubles is exact comparison — that is the point: the replay
/// must land on the identical bit pattern, not within a tolerance.
void expect_metrics_identical(const ExperimentResult& live, const ExperimentResult& rep) {
  ASSERT_EQ(live.migrations.size(), rep.migrations.size());
  for (std::size_t i = 0; i < live.migrations.size(); ++i) {
    const core::MigrationRecord& a = live.migrations[i];
    const core::MigrationRecord& b = rep.migrations[i];
    EXPECT_EQ(a.vm_id, b.vm_id) << "migration " << i;
    EXPECT_EQ(a.t_request, b.t_request) << "migration " << i;
    EXPECT_EQ(a.t_control_transfer, b.t_control_transfer) << "migration " << i;
    EXPECT_EQ(a.t_source_released, b.t_source_released) << "migration " << i;
    EXPECT_EQ(a.downtime_s, b.downtime_s) << "migration " << i;
    EXPECT_EQ(a.memory_rounds, b.memory_rounds) << "migration " << i;
    EXPECT_EQ(a.memory_bytes_sent, b.memory_bytes_sent) << "migration " << i;
    EXPECT_EQ(a.storage_chunks_pushed, b.storage_chunks_pushed) << "migration " << i;
    EXPECT_EQ(a.storage_chunks_pulled, b.storage_chunks_pulled) << "migration " << i;
  }
  for (std::size_t c = 0; c < net::kNumTrafficClasses; ++c)
    EXPECT_EQ(live.traffic_bytes[c], rep.traffic_bytes[c])
        << net::traffic_class_name(static_cast<net::TrafficClass>(c));
  EXPECT_EQ(live.total_traffic, rep.total_traffic);
  EXPECT_EQ(live.migration_traffic, rep.migration_traffic);
  EXPECT_EQ(live.max_downtime, rep.max_downtime);
  EXPECT_EQ(live.total_migration_time, rep.total_migration_time);
  EXPECT_EQ(live.bytes_written, rep.bytes_written);
  EXPECT_EQ(live.bytes_read, rep.bytes_read);
  EXPECT_EQ(live.sim_duration, rep.sim_duration);
}

void run_roundtrip(ExperimentConfig cfg) {
  // Baseline: the same live run without a recorder — observation must be
  // passive.
  const ExperimentResult unrecorded = Experiment(cfg).run();

  workloads::TraceRecorder recorder;
  ExperimentConfig rec_cfg = cfg;
  rec_cfg.trace_recorder = &recorder;
  const ExperimentResult live = Experiment(rec_cfg).run();
  ASSERT_TRUE(live.completed);
  ASSERT_TRUE(live.error.empty()) << live.error;
  // The comparison must not be vacuous: migrations ran and paused the VM.
  ASSERT_EQ(live.migrations.size(), cfg.num_migrations);
  EXPECT_GT(live.max_downtime, 0.0);
  EXPECT_GT(live.traffic(net::TrafficClass::kMemory), 0.0);
  expect_metrics_identical(unrecorded, live);

  const workloads::TraceData& trace = recorder.data();
  ASSERT_FALSE(recorder.failed()) << recorder.error();
  ASSERT_GT(trace.records.size(), 0u);

  cfg.normalize();  // pin num_vms before switching the workload kind
  ExperimentConfig replay_cfg = cfg;
  replay_cfg.workload = WorkloadKind::kTrace;
  replay_cfg.trace.data = &trace;
  replay_cfg.trace.broadcast = false;
  const ExperimentResult rep = Experiment(replay_cfg).run();
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  ASSERT_TRUE(rep.completed);
  expect_metrics_identical(live, rep);
}

TEST(TraceReplay, AsyncWrByteIdenticalIncremental) { run_roundtrip(asyncwr_config(1)); }
TEST(TraceReplay, AsyncWrByteIdenticalFullSolve) { run_roundtrip(asyncwr_config(0)); }
TEST(TraceReplay, Cm1ByteIdenticalIncremental) { run_roundtrip(cm1_config(1)); }
TEST(TraceReplay, Cm1ByteIdenticalFullSolve) { run_roundtrip(cm1_config(0)); }

// Replaying through a trace FILE (streaming reader) is equivalent to
// replaying the in-memory data.
TEST(TraceReplay, FileReplayMatchesInMemoryReplay) {
  ExperimentConfig cfg = asyncwr_config(1);
  workloads::TraceRecorder recorder;
  ExperimentConfig rec_cfg = cfg;
  rec_cfg.trace_recorder = &recorder;
  const ExperimentResult live = Experiment(rec_cfg).run();
  ASSERT_TRUE(live.completed);
  const workloads::TraceData& trace = recorder.data();

  const std::string path = ::testing::TempDir() + "trace_replay_roundtrip.trace";
  std::string err;
  ASSERT_TRUE(workloads::write_trace(path, trace, &err)) << err;

  cfg.normalize();
  ExperimentConfig replay_cfg = cfg;
  replay_cfg.workload = WorkloadKind::kTrace;
  replay_cfg.trace.path = path;
  replay_cfg.trace.broadcast = false;
  const ExperimentResult rep = Experiment(replay_cfg).run();
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  expect_metrics_identical(live, rep);
  std::remove(path.c_str());
}

// The record_trace_path convenience writes a loadable trace.
TEST(TraceReplay, RecordTracePathWritesReplayableFile) {
  ExperimentConfig cfg = asyncwr_config(1);
  cfg.num_vms = 1;
  cfg.num_migrations = 1;
  const std::string path = ::testing::TempDir() + "trace_record_path.trace";
  ExperimentConfig rec_cfg = cfg;
  rec_cfg.record_trace_path = path;
  const ExperimentResult live = Experiment(rec_cfg).run();
  ASSERT_TRUE(live.error.empty()) << live.error;
  workloads::TraceData data;
  std::string err;
  ASSERT_TRUE(workloads::load_trace(path, &data, &err)) << err;
  EXPECT_EQ(data.header.num_vms, 1u);
  EXPECT_GT(data.records.size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hm::cloud
