// Watchdog/invariant auditor: the auditor must catch an artificially stuck
// migration (liveness) and a byte-conservation violation, and must stay
// silent on healthy runs (covered by the churn tests, which run audited).
#include <gtest/gtest.h>

#include <string>

#include "cloud/auditor.h"
#include "cloud/experiment.h"
#include "cloud/fault_injector.h"
#include "workloads/asyncwr.h"

namespace hm::cloud {
namespace {

using storage::kMiB;

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.image = storage::ImageConfig{256 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.vm.memory.ram_bytes = 256 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 64 * kMiB;
  cfg.normalize();
  return cfg;
}

/// Kill the destination mid-transfer with NO injector wired: the retry loop
/// waits forever for a node that never reboots, and with no fault excuse on
/// file the watchdog must flag the stall as a liveness violation.
TEST(Auditor, CatchesArtificiallyStuckMigration) {
  ExperimentConfig cfg = small_config();
  sim::Simulator simulator;
  vm::Cluster cluster(simulator, cfg.cluster);
  Middleware mw(simulator, cluster, cfg.approach_cfg);
  Auditor auditor(simulator, mw, /*check_interval_s=*/1.0,
                  /*progress_deadline_s=*/5.0);
  mw.set_auditor(&auditor);
  auditor.arm();
  vm::VmInstance& vm = mw.deploy(0, cfg.vm);

  bool done = false;
  simulator.spawn([](Middleware* m, vm::VmInstance* v, bool* d) -> sim::Task {
    co_await m->migrate(*v, 1);
    *d = true;
  }(&mw, &vm, &done));

  // Crash the destination 10 ms in — before control can have moved — and
  // never bring it back. This mimics the injector's crash path without
  // registering any excuse the auditor could see.
  simulator.schedule(0.01, [&cluster, &mw] {
    cluster.network().set_node_up(1, false);
    mw.on_node_down(1);
  });

  simulator.run_while_pending(
      [&] { return !auditor.violations().empty() || simulator.now() > 120.0; });
  EXPECT_FALSE(done);
  EXPECT_GT(auditor.checks_run(), 0u);
  ASSERT_FALSE(auditor.violations().empty());
  EXPECT_NE(auditor.violations()[0].find("liveness"), std::string::npos)
      << auditor.violations()[0];
}

/// With an injector wired, the same dead-destination window is an open fault
/// excuse: the watchdog must NOT flag the stall while the crash hold is open.
TEST(Auditor, OpenFaultWindowExcusesTheStall) {
  ExperimentConfig cfg = small_config();
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec("dst-crash@0.01+200", &cfg.faults, &err)) << err;
  sim::Simulator simulator;
  vm::Cluster cluster(simulator, cfg.cluster);
  Middleware mw(simulator, cluster, cfg.approach_cfg);
  const sim::FaultPlan plan = sim::build_fault_plan(cfg.faults, cluster.rng(), 1);
  FaultInjector injector(simulator, cluster, mw, plan, 1, 1);
  Auditor auditor(simulator, mw, 1.0, 5.0);
  auditor.set_injector(&injector);
  mw.set_auditor(&auditor);
  injector.arm();
  auditor.arm();
  vm::VmInstance& vm = mw.deploy(0, cfg.vm);

  bool done = false;
  simulator.spawn([](Middleware* m, vm::VmInstance* v, bool* d) -> sim::Task {
    co_await m->migrate(*v, 1);
    *d = true;
  }(&mw, &vm, &done));

  simulator.run_while_pending([&] { return simulator.now() > 60.0; });
  EXPECT_FALSE(done);  // destination still down at t=60
  EXPECT_GT(auditor.checks_run(), 0u);
  EXPECT_TRUE(auditor.violations().empty())
      << "unexpected: " << auditor.violations()[0];
}

/// Conservation: a salvaged replica whose valid bitmap claims a chunk the
/// store does not hold is a byte-conservation violation.
TEST(Auditor, CatchesAdoptionConservationViolation) {
  ExperimentConfig cfg = small_config();
  sim::Simulator simulator;
  vm::Cluster cluster(simulator, cfg.cluster);
  Middleware mw(simulator, cluster, cfg.approach_cfg);
  Auditor auditor(simulator, mw, 1.0, 5.0);

  storage::Disk disk(simulator, cfg.cluster.disk);
  storage::ChunkStore store(simulator, disk, cfg.cluster.image);
  util::DirtyBitmap valid(store.num_chunks());
  valid.set(3);  // claims chunk 3 was salvaged — but the store is empty
  auditor.check_adoption(store, valid, /*vm_id=*/0);

  ASSERT_EQ(auditor.violations().size(), 1u);
  EXPECT_NE(auditor.violations()[0].find("conservation"), std::string::npos)
      << auditor.violations()[0];

  // A truthful bitmap passes.
  util::DirtyBitmap honest(store.num_chunks());
  auditor.check_adoption(store, honest, /*vm_id=*/0);
  EXPECT_EQ(auditor.violations().size(), 1u);
}

/// End-to-end: an audited churn experiment that completes cleanly reports
/// checks but zero violations (regression guard against false positives
/// from salvage/adoption cycles).
TEST(Auditor, CleanChurnRunHasNoViolations) {
  ExperimentConfig cfg = small_config();
  std::string err;
  ASSERT_TRUE(sim::parse_fault_spec(
      "churn:crash-mtbf=18,crash-mttr=3,factor=0.4,from=1,until=30",
      &cfg.faults, &err))
      << err;
  cfg.audit = true;
  cfg.workload = WorkloadKind::kNone;
  cfg.first_migration_at = 2.0;
  cfg.max_sim_time = 600.0;
  ExperimentResult res = Experiment(std::move(cfg)).run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_GT(res.audit_checks, 0u);
  EXPECT_TRUE(res.audit_violations.empty())
      << "first violation: " << res.audit_violations.front();
}

}  // namespace
}  // namespace hm::cloud
