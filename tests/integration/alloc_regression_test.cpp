// Steady-state allocation regression suite.
//
// This binary replaces the global operator new/delete with counting
// forwarders, then drives a hybrid storage migration to a mid-phase steady
// state and asserts that a window of per-chunk data-path work (push phase
// and pull phase separately) performs ZERO heap allocations: coroutine
// frames come from the thread-local FramePool, transfers and disk/bus legs
// are frameless awaitables, sync-primitive waiters are intrusive, and the
// flow/pull slabs recycle their slots.
//
// Kept in its own test binary so the replaced allocator does not interact
// with any other suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/hybrid_migrator.h"
#include "core/session_fixture.h"
#include "sim/sync.h"
#include "storage/chunk_store.h"

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace hm::core {
namespace {

using testing::SessionFixture;

vm::ClusterConfig alloc_cluster_cfg() {
  vm::ClusterConfig cfg = testing::small_cluster_cfg();
  // 256 chunks so the steady-state window spans plenty of per-chunk ops.
  cfg.image = storage::ImageConfig{256 * storage::kMiB,
                                   static_cast<std::uint32_t>(storage::kMiB)};
  return cfg;
}

struct AllocFixture : SessionFixture {
  AllocFixture() : SessionFixture(alloc_cluster_cfg()) {}

  std::unique_ptr<HybridSession> make_session(HybridConfig cfg = {}) {
    return std::make_unique<HybridSession>(s, cluster, &mgr, /*dst_node=*/1, *rec, cfg);
  }
};

// Run the simulator until `pred` holds, stepping the raw event loop so the
// measurement window itself introduces no helper allocations.
template <class Pred>
void step_until(sim::Simulator& s, Pred&& pred) {
  while (!pred() && s.step()) {
  }
}

TEST(AllocRegression, CountingAllocatorIsLinkedIn) {
  // Sanity: the replaced operator new must actually be the one in use,
  // otherwise the zero-deltas below would be vacuous.
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  auto* p = new std::uint64_t(42);
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  delete p;
  EXPECT_GT(after, before);
}

TEST(AllocRegression, PushPhaseSteadyStateIsAllocationFree) {
  AllocFixture f;
  f.populate(220);
  auto session = f.make_session();
  session->start();
  // Warm-up: let slabs, pools, heaps and vectors reach steady capacity.
  step_until(f.s, [&] { return session->chunks_pushed() >= 40; });
  ASSERT_GE(session->chunks_pushed(), 40u);

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  step_until(f.s, [&] { return session->chunks_pushed() >= 160; });
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);

  ASSERT_GE(session->chunks_pushed(), 160u);
  EXPECT_EQ(after - before, 0u)
      << "the push-phase chunk path (read_chunk -> transfer -> write_chunk, "
         "plus background flushers) must not touch the heap in steady state";
}

TEST(AllocRegression, PullPhaseSteadyStateIsAllocationFree) {
  AllocFixture f;
  f.populate(220);
  HybridConfig cfg;
  cfg.push_enabled = false;  // pure post-copy: everything moves via pulls
  auto session = f.make_session(cfg);
  session->start();
  f.sync_and_transfer(*session);
  // Warm-up covers the first pulls (pool/slab growth, pull-log reserve).
  step_until(f.s, [&] { return session->chunks_pulled() >= 40; });
  ASSERT_GE(session->chunks_pulled(), 40u);

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  step_until(f.s, [&] { return session->chunks_pulled() >= 160; });
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);

  ASSERT_GE(session->chunks_pulled(), 160u);
  EXPECT_EQ(after - before, 0u)
      << "the pull-phase chunk path (request/response round trip, source "
         "read, destination write, pull-slab recycling) must not touch the "
         "heap in steady state";
}

// Wakeup-heavy steady state: every event in this scenario is a zero-delay
// continuation (notification wakeups, FIFO semaphore handoffs, yields) plus
// the driver's timers — i.e. the simulator's fast lane and SmallFn slots,
// nothing else. Pins the PR 4 dispatch machinery at zero heap allocations.
namespace {

sim::Task churn_waiter(sim::Simulator* s, sim::Notification* note, sim::Semaphore* sem,
                       std::uint64_t* wakeups) {
  for (;;) {
    co_await note->wait();
    co_await sem->acquire();
    co_await s->yield();  // fast-lane hop while holding the semaphore
    sem->release();
    ++*wakeups;
  }
}

sim::Task churn_driver(sim::Simulator* s, sim::Notification* note) {
  for (;;) {
    co_await s->delay(1e-6);
    note->notify_all();
  }
}

}  // namespace

TEST(AllocRegression, WakeupAndYieldChurnIsAllocationFree) {
  sim::Simulator s;
  sim::Notification note(s);
  sim::Semaphore sem(s, 1);
  std::uint64_t wakeups = 0;
  for (int i = 0; i < 16; ++i) s.spawn(churn_waiter(&s, &note, &sem, &wakeups));
  s.spawn(churn_driver(&s, &note));
  // Warm-up: frame pool, fast-lane ring and event slab reach capacity.
  step_until(s, [&] { return wakeups >= 512; });
  ASSERT_GE(wakeups, 512u);

  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  step_until(s, [&] { return wakeups >= 4096; });
  const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);

  ASSERT_GE(wakeups, 4096u);
  EXPECT_EQ(after - before, 0u)
      << "notification/semaphore wakeups, FIFO handoffs and yields must ride "
         "the fast lane without touching the heap";
}

}  // namespace
}  // namespace hm::core
