// Randomized stress sweeps: many (approach x seed x schedule) combinations
// of concurrent and successive migrations under mixed workloads, checking
// the invariants that must survive any interleaving.
#include <gtest/gtest.h>

#include <tuple>

#include "cloud/experiment.h"

namespace hm::cloud {
namespace {

using storage::kMiB;

ExperimentConfig stress_config(core::Approach a, std::uint64_t seed,
                               std::size_t n_vms, std::size_t n_migrations,
                               double interval) {
  ExperimentConfig cfg;
  cfg.approach = a;
  cfg.seed = seed;
  cfg.cluster.num_nodes = n_vms * 2 + 4;
  cfg.cluster.image = storage::ImageConfig{256 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.cluster.nodes_per_switch = 4;  // exercise uplink constraints too
  cfg.cluster.switch_uplink_Bps = 300e6;
  cfg.vm.memory.ram_bytes = 256 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 32 * kMiB;
  cfg.vm.cache.capacity_bytes = 64 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 32 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 90;
  cfg.asyncwr.file_offset = 64 * kMiB;
  cfg.num_vms = n_vms;
  cfg.num_migrations = n_migrations;
  cfg.num_destinations = n_migrations;
  cfg.first_migration_at = 2.0;
  cfg.migration_interval_s = interval;
  cfg.max_sim_time = 1200.0;
  return cfg;
}

using StressParam = std::tuple<core::Approach, std::uint64_t /*seed*/, double /*interval*/>;

class StressSweep : public ::testing::TestWithParam<StressParam> {};

TEST_P(StressSweep, ConcurrentMigrationsKeepAllInvariants) {
  const auto [approach, seed, interval] = GetParam();
  ExperimentConfig cfg = stress_config(approach, seed, /*n_vms=*/4, /*n_migrations=*/4,
                                       interval);
  ExperimentResult res = Experiment(cfg).run();
  ASSERT_TRUE(res.completed) << res.approach << " seed=" << seed;
  ASSERT_EQ(res.migrations.size(), 4u);
  for (const auto& m : res.migrations) {
    // Protocol ordering holds for every migration.
    EXPECT_LE(m.t_request, m.t_control_transfer);
    EXPECT_LE(m.t_control_transfer, m.t_source_released);
    EXPECT_GE(m.dependency_window(), 0.0);
    EXPECT_LT(m.downtime_s, 2.0);
  }
  // Workload output is complete: nothing lost in flight.
  EXPECT_DOUBLE_EQ(res.bytes_written, 4.0 * 90 * kMiB);
  // Traffic accounting is self-consistent.
  double sum = 0;
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
    sum += res.traffic_bytes[i];
  EXPECT_NEAR(sum, res.total_traffic, 1.0);
}

std::string stress_name(const ::testing::TestParamInfo<StressParam>& info) {
  std::string n = core::approach_name(std::get<0>(info.param));
  for (char& c : n)
    if (c == '-') c = '_';
  n += "_s" + std::to_string(std::get<1>(info.param));
  n += std::get<2>(info.param) > 0 ? "_staggered" : "_simultaneous";
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, StressSweep,
    ::testing::Combine(::testing::Values(core::Approach::kHybrid,
                                         core::Approach::kPostcopy,
                                         core::Approach::kPrecopy,
                                         core::Approach::kMirror,
                                         core::Approach::kPvfsShared),
                       ::testing::Values(1u, 99u),
                       ::testing::Values(0.0, 3.0)),
    stress_name);

// Datacenter-scale sweep: 96 hypervisor-driven migrations launched in the
// same virtual instant across an oversubscribed two-tier fabric. Wall-clock
// infeasible before the epoch-batched solver and slab event core (each of
// the ~100k events paid an O(flows) solve plus allocation churn); now it
// runs in tens of milliseconds, so it can gate every commit.
TEST(StressScale, NinetySixSimultaneousMigrations) {
  ExperimentConfig cfg = stress_config(core::Approach::kHybrid, 99, /*n_vms=*/96,
                                       /*n_migrations=*/96, /*interval=*/0.0);
  cfg.cluster.num_nodes = 200;
  cfg.cluster.nodes_per_switch = 8;
  cfg.cluster.switch_uplink_Bps = 500e6;
  cfg.max_sim_time = 2400.0;
  ExperimentResult res = Experiment(cfg).run();
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.migrations.size(), 96u);
  for (const auto& m : res.migrations) {
    EXPECT_LE(m.t_request, m.t_control_transfer);
    EXPECT_LE(m.t_control_transfer, m.t_source_released);
    EXPECT_GE(m.dependency_window(), 0.0);
    EXPECT_LT(m.downtime_s, 2.0);
  }
  EXPECT_DOUBLE_EQ(res.bytes_written, 96.0 * 90 * kMiB);
  double sum = 0;
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i) sum += res.traffic_bytes[i];
  EXPECT_NEAR(sum, res.total_traffic, 1.0);
  EXPECT_GT(res.engine_events, 50000u);
  EXPECT_GT(res.engine_flows, 1000u);
}

// Chained migrations of the same VM: migrate it once, then (after release)
// migrate it again to a third node — the destination replica must carry the
// full modified state forward.
TEST(StressChained, SameVmMigratesTwice) {
  ExperimentConfig cfg = stress_config(core::Approach::kHybrid, 7, 1, 1, 0);
  cfg.normalize();
  sim::Simulator simulator;
  vm::Cluster cluster(simulator, cfg.cluster);
  Middleware mw(simulator, cluster, cfg.approach_cfg);
  vm::VmInstance& vm = mw.deploy(0, cfg.vm);

  bool wl_done = false;
  workloads::AsyncWrWorkload wl(cfg.asyncwr);
  simulator.spawn([](workloads::Workload* w, vm::VmInstance* v, bool* d) -> sim::Task {
    co_await w->run(*v);
    *d = true;
  }(&wl, &vm, &wl_done));

  bool both_done = false;
  simulator.spawn([](Middleware* m, vm::VmInstance* v, bool* d) -> sim::Task {
    co_await m->migrate(*v, 1);
    co_await m->migrate(*v, 2);
    *d = true;
  }(&mw, &vm, &both_done));

  simulator.run_while_pending([&] { return wl_done && both_done; });
  ASSERT_TRUE(both_done);
  EXPECT_EQ(vm.node(), 2u);
  ASSERT_EQ(mw.metrics().migrations().size(), 2u);
  for (const auto& m : mw.metrics().migrations())
    EXPECT_GE(m.t_source_released, m.t_control_transfer);
}

// Migration initiated after the workload already finished: trivially fast,
// still correct (nothing modified since the last flush is lost).
TEST(StressEdge, MigrationOfIdleVmAfterWorkload) {
  ExperimentConfig cfg = stress_config(core::Approach::kHybrid, 11, 1, 1, 0);
  cfg.first_migration_at = 300.0;  // AsyncWR(90 x 1/6s) long done by then
  ExperimentResult res = Experiment(cfg).run();
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.migrations.size(), 1u);
  EXPECT_LT(res.migrations[0].migration_time(), 60.0);
}

// Zero-length workload: migrating a VM that never did any I/O.
TEST(StressEdge, MigrationWithNoWorkloadAtAll) {
  ExperimentConfig cfg = stress_config(core::Approach::kHybrid, 13, 1, 1, 0);
  cfg.workload = WorkloadKind::kNone;
  cfg.first_migration_at = 1.0;
  ExperimentResult res = Experiment(cfg).run();
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.migrations.size(), 1u);
  EXPECT_DOUBLE_EQ(res.migrations[0].storage_chunks_pulled, 0.0);
  EXPECT_DOUBLE_EQ(res.migrations[0].storage_chunks_pushed, 0.0);
}

// All approaches obey the dependency-window taxonomy the paper's conclusion
// debates: pull-based schemes have a window, push-based schemes do not.
TEST(StressEdge, DependencyWindowTaxonomy) {
  for (core::Approach a :
       {core::Approach::kPrecopy, core::Approach::kMirror, core::Approach::kPvfsShared}) {
    ExperimentConfig cfg = stress_config(a, 17, 1, 1, 0);
    ExperimentResult res = Experiment(cfg).run();
    ASSERT_EQ(res.migrations.size(), 1u) << core::approach_name(a);
    EXPECT_NEAR(res.migrations[0].dependency_window(), 0.0, 1e-6)
        << core::approach_name(a);
  }
  ExperimentConfig cfg = stress_config(core::Approach::kHybrid, 17, 1, 1, 0);
  ExperimentResult res = Experiment(cfg).run();
  // Under active writes the hybrid scheme defers hot chunks to the pull
  // phase: a non-zero window (the price for not blocking control transfer).
  EXPECT_GT(res.migrations[0].dependency_window(), 0.0);
}

}  // namespace
}  // namespace hm::cloud
