// Shape-level reproduction checks: the qualitative orderings reported in the
// paper's evaluation (who wins, roughly by how much) must hold on a scaled
// scenario. Absolute values differ from Grid'5000 — EXPERIMENTS.md records
// the full-scale numbers and the documented deviations.
#include <gtest/gtest.h>

#include <map>

#include "cloud/experiment.h"

namespace hm::cloud {
namespace {

using storage::kKiB;
using storage::kMiB;

enum class Wl { kIor, kAsyncWr };

ExperimentConfig shape_config(core::Approach a, Wl wl) {
  ExperimentConfig cfg;
  cfg.approach = a;
  cfg.cluster.num_nodes = 12;
  cfg.cluster.nic_Bps = 117.5e6;
  cfg.cluster.network.latency_s = 1e-4;
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.5e-3};
  cfg.cluster.image = storage::ImageConfig{1024 * kMiB, 256 * static_cast<std::uint32_t>(kKiB)};
  cfg.vm.memory.ram_bytes = 1024 * kMiB;
  cfg.vm.memory.page_bytes = 256 * kKiB;
  cfg.vm.memory.base_used_bytes = 128 * kMiB;
  cfg.vm.cache.capacity_bytes = 640 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 200 * kMiB;
  cfg.vm.cache.write_Bps = 266e6;
  cfg.vm.cache.read_Bps = 1e9;
  cfg.approach_cfg.hypervisor.migration_speed_Bps = 125e6;
  if (wl == Wl::kIor) {
    cfg.workload = WorkloadKind::kIor;
    cfg.ior.iterations = 12;  // sustained pressure through the migration
    cfg.ior.file_bytes = 256 * kMiB;
    cfg.ior.block_bytes = 256 * kKiB;
    cfg.ior.file_offset = 256 * kMiB;
  } else {
    cfg.workload = WorkloadKind::kAsyncWr;
    cfg.asyncwr.iterations = 600;  // 600 MB over ~100 s (~6 MB/s)
    cfg.asyncwr.file_offset = 256 * kMiB;
  }
  cfg.first_migration_at = 10.0;
  cfg.max_sim_time = 3600.0;
  return cfg;
}

const ExperimentResult& result_for(core::Approach a, Wl wl) {
  static std::map<std::pair<core::Approach, Wl>, ExperimentResult> cache;
  auto key = std::make_pair(a, wl);
  auto it = cache.find(key);
  if (it == cache.end())
    it = cache.emplace(key, Experiment(shape_config(a, wl)).run()).first;
  return it->second;
}

double storage_traffic(const ExperimentResult& r) {
  return r.traffic(net::TrafficClass::kStoragePush) +
         r.traffic(net::TrafficClass::kStoragePull);
}

TEST(FigureShape, AllApproachesCompleteBothWorkloads) {
  for (Wl wl : {Wl::kIor, Wl::kAsyncWr}) {
    for (core::Approach a :
         {core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
          core::Approach::kPrecopy, core::Approach::kPvfsShared}) {
      EXPECT_TRUE(result_for(a, wl).completed) << core::approach_name(a);
      EXPECT_EQ(result_for(a, wl).migrations.size(), 1u) << core::approach_name(a);
    }
  }
}

// Figure 3(a), IOR: precopy is by far the slowest (paper: >10x slower than
// the hybrid scheme; we require a clear multiple).
TEST(FigureShape, IorHybridMigratesMuchFasterThanPrecopy) {
  EXPECT_LT(result_for(core::Approach::kHybrid, Wl::kIor).avg_migration_time * 1.5,
            result_for(core::Approach::kPrecopy, Wl::kIor).avg_migration_time);
}

// Figure 3(a), IOR: mirroring pays for its device-level full copy and its
// synchronous writes (paper: ~2.8x slower than the hybrid scheme).
TEST(FigureShape, IorHybridMigratesFasterThanMirror) {
  EXPECT_LT(result_for(core::Approach::kHybrid, Wl::kIor).avg_migration_time * 1.5,
            result_for(core::Approach::kMirror, Wl::kIor).avg_migration_time);
}

// Figure 3(a): pvfs-shared only moves memory, so it migrates fastest.
TEST(FigureShape, PvfsSharedHasShortestMigration) {
  for (Wl wl : {Wl::kIor, Wl::kAsyncWr}) {
    const double pvfs = result_for(core::Approach::kPvfsShared, wl).avg_migration_time;
    for (core::Approach a : {core::Approach::kHybrid, core::Approach::kMirror,
                             core::Approach::kPostcopy, core::Approach::kPrecopy}) {
      EXPECT_LT(pvfs, result_for(a, wl).avg_migration_time) << core::approach_name(a);
    }
  }
}

// Figure 3(a), AsyncWR: the push phase overlaps storage with memory
// transfer, so the hybrid scheme relinquishes the source before pure
// post-copy and pre-copy do.
TEST(FigureShape, AsyncWrHybridBeatsPostcopyAndPrecopy) {
  const double hybrid = result_for(core::Approach::kHybrid, Wl::kAsyncWr).avg_migration_time;
  EXPECT_LT(hybrid,
            result_for(core::Approach::kPostcopy, Wl::kAsyncWr).avg_migration_time);
  EXPECT_LT(hybrid,
            result_for(core::Approach::kPrecopy, Wl::kAsyncWr).avg_migration_time);
}

// Figure 3(a), IOR: under pure overwrite pressure the hybrid scheme stays in
// the same class as post-copy (every pushed chunk is eventually rewritten),
// never meaningfully worse.
TEST(FigureShape, IorHybridNotWorseThanPostcopy) {
  EXPECT_LE(result_for(core::Approach::kHybrid, Wl::kIor).avg_migration_time,
            result_for(core::Approach::kPostcopy, Wl::kIor).avg_migration_time * 1.10);
}

// Figure 3(b): postcopy moves each chunk exactly once (minimum), the hybrid
// scheme is bounded by its threshold, precopy re-sends without bound.
TEST(FigureShape, IorStorageTrafficOrdering) {
  const double postcopy = storage_traffic(result_for(core::Approach::kPostcopy, Wl::kIor));
  const double hybrid = storage_traffic(result_for(core::Approach::kHybrid, Wl::kIor));
  const double precopy = storage_traffic(result_for(core::Approach::kPrecopy, Wl::kIor));
  EXPECT_LE(postcopy, hybrid * 1.001);
  EXPECT_LT(hybrid, precopy);
}

// Figure 3(b): pvfs-shared pays network for every I/O over the whole run —
// the highest total traffic of all approaches (paper: >10x our approach).
TEST(FigureShape, PvfsSharedGeneratesMostTotalTraffic) {
  for (Wl wl : {Wl::kIor, Wl::kAsyncWr}) {
    const double pvfs = result_for(core::Approach::kPvfsShared, wl).total_traffic;
    for (core::Approach a : {core::Approach::kHybrid, core::Approach::kPostcopy,
                             core::Approach::kPrecopy}) {
      EXPECT_GT(pvfs, result_for(a, wl).total_traffic) << core::approach_name(a);
    }
  }
}

// Figure 3(c): mirroring slows writes (sync remote copies); the hybrid
// scheme sustains clearly higher write throughput.
TEST(FigureShape, IorHybridSustainsHigherWriteThroughputThanMirror) {
  EXPECT_GT(result_for(core::Approach::kHybrid, Wl::kIor).write_Bps,
            result_for(core::Approach::kMirror, Wl::kIor).write_Bps * 1.1);
}

// Figure 3(c): pvfs-shared is drastically worst for writes (paper: <5% of
// the local maximum).
TEST(FigureShape, PvfsSharedHasWorstWriteThroughput) {
  const auto& pvfs = result_for(core::Approach::kPvfsShared, Wl::kIor);
  for (core::Approach a : {core::Approach::kHybrid, core::Approach::kMirror,
                           core::Approach::kPostcopy, core::Approach::kPrecopy}) {
    EXPECT_LT(pvfs.write_Bps * 1.5, result_for(a, Wl::kIor).write_Bps)
        << core::approach_name(a);
  }
}

// Impact on the application: the hybrid scheme delays the workload less
// than precopy, mirror and pvfs-shared (Figure 3/5 narrative).
TEST(FigureShape, IorHybridDelaysWorkloadLeast) {
  const double hybrid = result_for(core::Approach::kHybrid, Wl::kIor).app_execution_time;
  EXPECT_LT(hybrid, result_for(core::Approach::kPrecopy, Wl::kIor).app_execution_time);
  EXPECT_LT(hybrid, result_for(core::Approach::kMirror, Wl::kIor).app_execution_time);
  EXPECT_LT(hybrid,
            result_for(core::Approach::kPvfsShared, Wl::kIor).app_execution_time);
}

// All approaches remain "live": downtime in the tens-of-milliseconds class,
// orders of magnitude below the migration time.
TEST(FigureShape, DowntimeStaysLive) {
  for (Wl wl : {Wl::kIor, Wl::kAsyncWr}) {
    for (core::Approach a :
         {core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
          core::Approach::kPrecopy, core::Approach::kPvfsShared}) {
      EXPECT_LT(result_for(a, wl).max_downtime, 1.0) << core::approach_name(a);
    }
  }
}

}  // namespace
}  // namespace hm::cloud
