// Steady-state soak: the continuous-arrival scheduler operated for two
// virtual hours at sustained utilization while a churn fault process crashes
// and degrades nodes underneath it, with the invariant auditor armed the
// whole time. Asserts liveness (every request reaches a terminal state and
// the run drains), conservation (zero audit violations), sane percentile
// shapes (p50 <= p99 <= p999 for queueing delay, downtime and recovery
// time), and the determinism contract — the soak timeline is bit-identical
// across reruns and across the incremental/full-solve regimes.
#include <gtest/gtest.h>

#include <string>

#include "cloud/experiment.h"

namespace hm::cloud {
namespace {

using storage::kMiB;

/// Small-footprint fleet (64 MiB images) so two virtual hours of request
/// churn stay a seconds-scale run; the scheduler and fault machinery see the
/// same code paths as the full-size sweeps. The guests run a slowed-down
/// AsyncWR stream the whole window: the linear writes keep the hybrid push
/// set non-empty (migrations do real storage work, so admission slots stay
/// occupied long enough to queue and preempt) and the 12 MB/s memory
/// dirtying keeps the pre-copy rounds honest. Offsets are sized to stay
/// inside the 64 MiB image: 8 MiB base + 3600 x 8 KiB tops out at 36 MiB.
ExperimentConfig soak_config(int incremental) {
  ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.cluster.num_nodes = 14;  // 8 sources + 4 destinations + spare
  cfg.cluster.image = storage::ImageConfig{64 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.cluster.network.incremental = incremental;
  cfg.vm.memory.ram_bytes = 64 * kMiB;
  cfg.vm.memory.page_bytes = 256 * storage::kKiB;
  cfg.vm.memory.base_used_bytes = 16 * kMiB;
  cfg.vm.cache.capacity_bytes = 32 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 16 * kMiB;
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 3600;
  cfg.asyncwr.iter_compute_s = 2.0;     // 3600 x 2 s spans the arrival window
  cfg.asyncwr.bytes_per_iter = 8 * storage::kKiB;
  cfg.asyncwr.file_offset = 8 * kMiB;   // writes stay inside the 64 MiB image
  cfg.num_vms = 8;
  cfg.num_destinations = 4;
  cfg.num_migrations = 0;  // the scheduler owns the schedule
  cfg.max_sim_time = 10800.0;
  cfg.seed = 1234;
  cfg.audit = true;
  std::string err;
  // ~0.25 req/s against 2 admission slots keeps the queue hot for the whole
  // window without ever diverging; a quarter of the stream preempts.
  EXPECT_TRUE(parse_scheduler_spec(
      "poisson:rate=0.25,until=7200,hi=0.25"
      ";sched:concurrent=2,policy=least-loaded,preempt=1",
      &cfg.scheduler, &err))
      << err;
  // Per-node crash/degrade churn across the whole cluster: with 14 node
  // processes at these MTBFs a fault lands every minute or so for two hours.
  EXPECT_TRUE(sim::parse_fault_spec(
      "faults:churn:crash-mtbf=900,crash-mttr=8,degrade-mtbf=600,"
      "degrade-mttr=10,factor=0.5,from=60,until=7000",
      &cfg.faults, &err))
      << err;
  return cfg;
}

void expect_monotone(double p50, double p99, double p999, const char* what) {
  EXPECT_LE(p50, p99) << what;
  EXPECT_LE(p99, p999) << what;
}

/// Bit-identical virtual-time comparison (EXPECT_EQ on doubles on purpose).
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.total_traffic, b.total_traffic);
  EXPECT_EQ(a.scheduler.requests, b.scheduler.requests);
  EXPECT_EQ(a.scheduler.dispatched, b.scheduler.dispatched);
  EXPECT_EQ(a.scheduler.completed, b.scheduler.completed);
  EXPECT_EQ(a.scheduler.preemptions, b.scheduler.preemptions);
  EXPECT_EQ(a.scheduler.abandoned, b.scheduler.abandoned);
  EXPECT_EQ(a.scheduler.rejected, b.scheduler.rejected);
  EXPECT_EQ(a.scheduler.peak_queue_depth, b.scheduler.peak_queue_depth);
  EXPECT_EQ(a.scheduler.peak_running, b.scheduler.peak_running);
  EXPECT_EQ(a.scheduler.queueing_p50_s, b.scheduler.queueing_p50_s);
  EXPECT_EQ(a.scheduler.queueing_p99_s, b.scheduler.queueing_p99_s);
  EXPECT_EQ(a.scheduler.queueing_p999_s, b.scheduler.queueing_p999_s);
  EXPECT_EQ(a.scheduler.max_queueing_delay_s, b.scheduler.max_queueing_delay_s);
  EXPECT_EQ(a.recovery.faults_injected, b.recovery.faults_injected);
  EXPECT_EQ(a.recovery.total_retries, b.recovery.total_retries);
  EXPECT_EQ(a.recovery.retransferred_bytes, b.recovery.retransferred_bytes);
  EXPECT_EQ(a.recovery.fault_downtime_s, b.recovery.fault_downtime_s);
  EXPECT_EQ(a.recovery.downtime_p99_s, b.recovery.downtime_p99_s);
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    EXPECT_EQ(a.migrations[i].vm_id, b.migrations[i].vm_id) << i;
    EXPECT_EQ(a.migrations[i].t_request, b.migrations[i].t_request) << i;
    EXPECT_EQ(a.migrations[i].t_control_transfer, b.migrations[i].t_control_transfer) << i;
    EXPECT_EQ(a.migrations[i].t_source_released, b.migrations[i].t_source_released) << i;
    EXPECT_EQ(a.migrations[i].downtime_s, b.migrations[i].downtime_s) << i;
    EXPECT_EQ(a.migrations[i].salvaged_chunks, b.migrations[i].salvaged_chunks) << i;
  }
}

TEST(SteadyStateSoak, TwoVirtualHoursOfChurnWithAuditorArmed) {
  ExperimentResult res = Experiment(soak_config(/*incremental=*/1)).run();
  ASSERT_TRUE(res.completed) << res.error;
  EXPECT_TRUE(res.error.empty()) << res.error;

  // Liveness: the stream was long, everything drained, nothing starved.
  const SchedulerStats& s = res.scheduler;
  EXPECT_GT(s.requests, 800u);
  EXPECT_EQ(s.completed + s.abandoned + s.rejected, s.requests);
  EXPECT_EQ(s.dispatched, s.completed + s.abandoned);
  EXPECT_EQ(s.rejected, 0u);  // unconstrained placement never rejects
  EXPECT_GT(s.completed, s.requests / 2);
  EXPECT_GE(s.peak_queue_depth, 1u);  // the utilization target actually queued
  EXPECT_LE(s.peak_running, 2u);      // admission bound held for two hours
  EXPECT_EQ(res.migrations.size(), s.dispatched);

  // The churn process really bit, and the salvage path really ran.
  EXPECT_GT(res.recovery.faults_injected, 20u);
  EXPECT_GT(res.recovery.total_retries, 0);
  EXPECT_GT(s.preemptions, 0u);

  // Conservation/liveness auditor: armed the whole run, zero violations.
  EXPECT_GT(res.audit_checks, 100u);
  EXPECT_TRUE(res.audit_violations.empty())
      << res.audit_violations.size() << " violations, first: "
      << res.audit_violations.front();

  // Percentile contracts.
  expect_monotone(s.queueing_p50_s, s.queueing_p99_s, s.queueing_p999_s, "queueing");
  EXPECT_LE(s.queueing_p999_s, s.max_queueing_delay_s);
  expect_monotone(res.recovery.downtime_p50_s, res.recovery.downtime_p99_s,
                  res.recovery.downtime_p999_s, "downtime");
  expect_monotone(res.recovery.recovery_p50_s, res.recovery.recovery_p99_s,
                  res.recovery.recovery_p999_s, "recovery");
}

TEST(SteadyStateSoak, TimelineIsBitIdenticalAcrossRerunsAndSolverRegimes) {
  ExperimentResult a = Experiment(soak_config(/*incremental=*/1)).run();
  ExperimentResult b = Experiment(soak_config(/*incremental=*/1)).run();
  ExperimentResult c = Experiment(soak_config(/*incremental=*/0)).run();
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  ASSERT_TRUE(c.completed) << c.error;
  expect_identical(a, b);  // rerun
  expect_identical(a, c);  // incremental vs full-solve
}

}  // namespace
}  // namespace hm::cloud
