// Cross-approach invariants checked on the full pipeline (parameterized
// property sweeps over approaches, seeds and chunk sizes), plus the
// determinism regression guarding the epoch-batched solver and slab event
// core: identical seeded runs must produce byte-identical virtual-time
// results.
#include <gtest/gtest.h>

#include "cloud/experiment.h"
#include "core/hybrid_migrator.h"
#include "core/session_fixture.h"

namespace hm::cloud {
namespace {

using storage::kMiB;

ExperimentConfig tiny_config(core::Approach a, std::uint32_t chunk_kib = 1024,
                             std::uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.approach = a;
  cfg.seed = seed;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.image =
      storage::ImageConfig{256 * kMiB, chunk_kib * static_cast<std::uint32_t>(1024)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.vm.memory.ram_bytes = 256 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 32 * kMiB;
  cfg.vm.cache.capacity_bytes = 64 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 32 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = WorkloadKind::kIor;
  cfg.ior.iterations = 2;
  cfg.ior.file_bytes = 48 * kMiB;
  cfg.ior.block_bytes = kMiB;
  cfg.ior.file_offset = 64 * kMiB;
  cfg.first_migration_at = 1.0;
  cfg.max_sim_time = 600.0;
  return cfg;
}

class AllApproaches : public ::testing::TestWithParam<core::Approach> {};

TEST_P(AllApproaches, MigrationAlwaysConvergesForFiniteWorkload) {
  ExperimentResult res = Experiment(tiny_config(GetParam())).run();
  EXPECT_TRUE(res.completed) << res.approach;
  ASSERT_EQ(res.migrations.size(), 1u);
  const auto& m = res.migrations[0];
  EXPECT_GT(m.t_control_transfer, m.t_request);
  EXPECT_GE(m.t_source_released, m.t_control_transfer);
}

TEST_P(AllApproaches, DowntimeIsSmallFractionOfMigrationTime) {
  ExperimentResult res = Experiment(tiny_config(GetParam())).run();
  ASSERT_EQ(res.migrations.size(), 1u);
  const auto& m = res.migrations[0];
  // "Live": the VM is paused for well under 10% of the migration.
  EXPECT_LT(m.downtime_s, 0.1 * m.migration_time()) << res.approach;
}

TEST_P(AllApproaches, WorkloadCompletesDespiteMigration) {
  ExperimentConfig cfg = tiny_config(GetParam());
  ExperimentResult with = Experiment(cfg).run();
  ExperimentResult without = run_baseline(cfg);
  EXPECT_TRUE(with.completed);
  EXPECT_DOUBLE_EQ(with.bytes_written, without.bytes_written);
  EXPECT_DOUBLE_EQ(with.bytes_read, without.bytes_read);
}

TEST_P(AllApproaches, MigrationNeverSpeedsUpTheWorkload) {
  ExperimentConfig cfg = tiny_config(GetParam());
  ExperimentResult with = Experiment(cfg).run();
  ExperimentResult without = run_baseline(cfg);
  EXPECT_GE(with.app_execution_time, without.app_execution_time - 1e-6) << with.approach;
}

TEST_P(AllApproaches, MemoryTrafficAtLeastUsedMemory) {
  ExperimentResult res = Experiment(tiny_config(GetParam())).run();
  // Round 0 ships all used pages (>= the 32 MiB baseline).
  EXPECT_GE(res.traffic(net::TrafficClass::kMemory), 32.0 * kMiB);
}

INSTANTIATE_TEST_SUITE_P(
    Approaches, AllApproaches,
    ::testing::Values(core::Approach::kHybrid, core::Approach::kMirror,
                      core::Approach::kPostcopy, core::Approach::kPrecopy,
                      core::Approach::kPvfsShared),
    [](const ::testing::TestParamInfo<core::Approach>& info) {
      std::string n = core::approach_name(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

// --- Determinism regression --------------------------------------------------
// EXPECT_EQ on doubles is exact: any reordering or FP drift introduced by the
// engine (event pool, epoch batching, lazy completion heap) shows up here.

void expect_byte_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.sim_duration, b.sim_duration);
  EXPECT_EQ(a.app_execution_time, b.app_execution_time);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.total_traffic, b.total_traffic);
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
    EXPECT_EQ(a.traffic_bytes[i], b.traffic_bytes[i]) << "class " << i;
  ASSERT_EQ(a.migrations.size(), b.migrations.size());
  for (std::size_t i = 0; i < a.migrations.size(); ++i) {
    const auto& ma = a.migrations[i];
    const auto& mb = b.migrations[i];
    EXPECT_EQ(ma.vm_id, mb.vm_id) << i;
    EXPECT_EQ(ma.t_request, mb.t_request) << i;
    EXPECT_EQ(ma.t_control_transfer, mb.t_control_transfer) << i;
    EXPECT_EQ(ma.t_source_released, mb.t_source_released) << i;
    EXPECT_EQ(ma.downtime_s, mb.downtime_s) << i;
    EXPECT_EQ(ma.memory_rounds, mb.memory_rounds) << i;
    EXPECT_EQ(ma.memory_bytes_sent, mb.memory_bytes_sent) << i;
    EXPECT_EQ(ma.storage_chunks_pushed, mb.storage_chunks_pushed) << i;
    EXPECT_EQ(ma.storage_chunks_pulled, mb.storage_chunks_pulled) << i;
  }
  // Engine work is part of the contract too: the same run must execute the
  // same number of events, flows and solver passes.
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(a.engine_flows, b.engine_flows);
  EXPECT_EQ(a.engine_recomputes, b.engine_recomputes);
}

class DeterminismSweep : public ::testing::TestWithParam<core::Approach> {};

TEST_P(DeterminismSweep, RepeatedSeededRunIsByteIdentical) {
  const ExperimentConfig cfg = tiny_config(GetParam());
  expect_byte_identical(Experiment(cfg).run(), Experiment(cfg).run());
}

INSTANTIATE_TEST_SUITE_P(
    Approaches, DeterminismSweep,
    ::testing::Values(core::Approach::kHybrid, core::Approach::kMirror,
                      core::Approach::kPostcopy, core::Approach::kPrecopy,
                      core::Approach::kPvfsShared),
    [](const ::testing::TestParamInfo<core::Approach>& info) {
      std::string n = core::approach_name(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(Determinism, SimultaneousMigrationsAreByteIdentical) {
  // Three migrations launched in the same virtual instant maximize
  // same-epoch batching — the case most sensitive to ordering bugs.
  ExperimentConfig cfg = tiny_config(core::Approach::kHybrid);
  cfg.num_vms = 3;
  cfg.num_migrations = 3;
  cfg.num_destinations = 3;
  cfg.migration_interval_s = 0.0;
  cfg.cluster.num_nodes = 12;
  expect_byte_identical(Experiment(cfg).run(), Experiment(cfg).run());
}

namespace {

/// Drive one full hybrid session (passive-phase pulls only) and return its
/// pull completion log.
std::vector<storage::ChunkId> run_pull_scenario() {
  core::testing::SessionFixture f;
  f.populate(16);
  for (storage::ChunkId c : {3u, 7u, 7u, 11u}) f.write_chunk_now(c);
  core::HybridConfig cfg;
  cfg.push_enabled = false;  // keep every chunk for the prioritized prefetch
  core::HybridSession session(f.s, f.cluster, &f.mgr, /*dst=*/1, *f.rec, cfg);
  f.mgr.begin_migration(&session);
  session.start();
  f.sync_and_transfer(session);
  f.wait_release(session);
  return session.pull_log();
}

}  // namespace

TEST(Determinism, HybridPullLogIsIdenticalAcrossRuns) {
  const auto log1 = run_pull_scenario();
  const auto log2 = run_pull_scenario();
  ASSERT_EQ(log1.size(), 16u);
  EXPECT_EQ(log1, log2);
}

class ChunkSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChunkSizeSweep, HybridConvergesForAllChunkSizes) {
  ExperimentResult res =
      Experiment(tiny_config(core::Approach::kHybrid, GetParam())).run();
  EXPECT_TRUE(res.completed);
  ASSERT_EQ(res.migrations.size(), 1u);
  EXPECT_GT(res.migrations[0].migration_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ChunkKiB, ChunkSizeSweep,
                         ::testing::Values(128u, 256u, 512u, 1024u, 2048u));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, InvariantsHoldAcrossSeeds) {
  ExperimentResult res =
      Experiment(tiny_config(core::Approach::kHybrid, 1024, GetParam())).run();
  EXPECT_TRUE(res.completed);
  const auto& m = res.migrations[0];
  EXPECT_GE(m.t_source_released, m.t_control_transfer);
  EXPECT_GT(res.traffic(net::TrafficClass::kMemory), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace hm::cloud
