// Cross-approach invariants checked on the full pipeline (parameterized
// property sweeps over approaches, seeds and chunk sizes).
#include <gtest/gtest.h>

#include "cloud/experiment.h"

namespace hm::cloud {
namespace {

using storage::kMiB;

ExperimentConfig tiny_config(core::Approach a, std::uint32_t chunk_kib = 1024,
                             std::uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.approach = a;
  cfg.seed = seed;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.image =
      storage::ImageConfig{256 * kMiB, chunk_kib * static_cast<std::uint32_t>(1024)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.vm.memory.ram_bytes = 256 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 32 * kMiB;
  cfg.vm.cache.capacity_bytes = 64 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 32 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = WorkloadKind::kIor;
  cfg.ior.iterations = 2;
  cfg.ior.file_bytes = 48 * kMiB;
  cfg.ior.block_bytes = kMiB;
  cfg.ior.file_offset = 64 * kMiB;
  cfg.first_migration_at = 1.0;
  cfg.max_sim_time = 600.0;
  return cfg;
}

class AllApproaches : public ::testing::TestWithParam<core::Approach> {};

TEST_P(AllApproaches, MigrationAlwaysConvergesForFiniteWorkload) {
  ExperimentResult res = Experiment(tiny_config(GetParam())).run();
  EXPECT_TRUE(res.completed) << res.approach;
  ASSERT_EQ(res.migrations.size(), 1u);
  const auto& m = res.migrations[0];
  EXPECT_GT(m.t_control_transfer, m.t_request);
  EXPECT_GE(m.t_source_released, m.t_control_transfer);
}

TEST_P(AllApproaches, DowntimeIsSmallFractionOfMigrationTime) {
  ExperimentResult res = Experiment(tiny_config(GetParam())).run();
  ASSERT_EQ(res.migrations.size(), 1u);
  const auto& m = res.migrations[0];
  // "Live": the VM is paused for well under 10% of the migration.
  EXPECT_LT(m.downtime_s, 0.1 * m.migration_time()) << res.approach;
}

TEST_P(AllApproaches, WorkloadCompletesDespiteMigration) {
  ExperimentConfig cfg = tiny_config(GetParam());
  ExperimentResult with = Experiment(cfg).run();
  ExperimentResult without = run_baseline(cfg);
  EXPECT_TRUE(with.completed);
  EXPECT_DOUBLE_EQ(with.bytes_written, without.bytes_written);
  EXPECT_DOUBLE_EQ(with.bytes_read, without.bytes_read);
}

TEST_P(AllApproaches, MigrationNeverSpeedsUpTheWorkload) {
  ExperimentConfig cfg = tiny_config(GetParam());
  ExperimentResult with = Experiment(cfg).run();
  ExperimentResult without = run_baseline(cfg);
  EXPECT_GE(with.app_execution_time, without.app_execution_time - 1e-6) << with.approach;
}

TEST_P(AllApproaches, MemoryTrafficAtLeastUsedMemory) {
  ExperimentResult res = Experiment(tiny_config(GetParam())).run();
  // Round 0 ships all used pages (>= the 32 MiB baseline).
  EXPECT_GE(res.traffic(net::TrafficClass::kMemory), 32.0 * kMiB);
}

INSTANTIATE_TEST_SUITE_P(
    Approaches, AllApproaches,
    ::testing::Values(core::Approach::kHybrid, core::Approach::kMirror,
                      core::Approach::kPostcopy, core::Approach::kPrecopy,
                      core::Approach::kPvfsShared),
    [](const ::testing::TestParamInfo<core::Approach>& info) {
      std::string n = core::approach_name(info.param);
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

class ChunkSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChunkSizeSweep, HybridConvergesForAllChunkSizes) {
  ExperimentResult res =
      Experiment(tiny_config(core::Approach::kHybrid, GetParam())).run();
  EXPECT_TRUE(res.completed);
  ASSERT_EQ(res.migrations.size(), 1u);
  EXPECT_GT(res.migrations[0].migration_time(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ChunkKiB, ChunkSizeSweep,
                         ::testing::Values(128u, 256u, 512u, 1024u, 2048u));

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, InvariantsHoldAcrossSeeds) {
  ExperimentResult res =
      Experiment(tiny_config(core::Approach::kHybrid, 1024, GetParam())).run();
  EXPECT_TRUE(res.completed);
  const auto& m = res.migrations[0];
  EXPECT_GE(m.t_source_released, m.t_control_transfer);
  EXPECT_GT(res.traffic(net::TrafficClass::kMemory), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace hm::cloud
