#include "cloud/experiment.h"

#include <gtest/gtest.h>

namespace hm::cloud {
namespace {

using storage::kMiB;

/// Scaled-down scenario so integration tests stay fast: 512 MiB image,
/// small RAM, short IOR. Same mechanisms, smaller numbers.
ExperimentConfig small_config(core::Approach a) {
  ExperimentConfig cfg;
  cfg.approach = a;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.image = storage::ImageConfig{512 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.vm.memory.ram_bytes = 512 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 64 * kMiB;
  cfg.vm.cache.capacity_bytes = 128 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 64 * kMiB;
  cfg.vm.cache.write_Bps = 200e6;
  cfg.workload = WorkloadKind::kIor;
  cfg.ior.iterations = 3;
  cfg.ior.file_bytes = 96 * kMiB;
  cfg.ior.block_bytes = kMiB;
  cfg.ior.file_offset = 128 * kMiB;
  cfg.first_migration_at = 2.0;
  cfg.max_sim_time = 600.0;
  return cfg;
}

TEST(Experiment, NormalizeGrowsClusterForDestinations) {
  ExperimentConfig cfg = small_config(core::Approach::kHybrid);
  cfg.cluster.num_nodes = 2;
  cfg.num_vms = 4;
  cfg.num_destinations = 3;
  cfg.normalize();
  EXPECT_GE(cfg.cluster.num_nodes, 7u);
}

TEST(Experiment, NormalizeEnablesPvfsForSharedApproach) {
  ExperimentConfig cfg = small_config(core::Approach::kPvfsShared);
  cfg.normalize();
  EXPECT_TRUE(cfg.cluster.enable_pvfs);
}

TEST(Experiment, NormalizeCm1OverridesVmCount) {
  ExperimentConfig cfg = small_config(core::Approach::kHybrid);
  cfg.workload = WorkloadKind::kCm1;
  cfg.cm1.grid_x = 2;
  cfg.cm1.grid_y = 3;
  cfg.normalize();
  EXPECT_EQ(cfg.num_vms, 6u);
}

TEST(Experiment, RunsToCompletionWithMigration) {
  Experiment exp(small_config(core::Approach::kHybrid));
  ExperimentResult res = exp.run();
  EXPECT_TRUE(res.completed);
  ASSERT_EQ(res.migrations.size(), 1u);
  EXPECT_GT(res.migrations[0].migration_time(), 0.0);
  EXPECT_GT(res.total_traffic, 0.0);
  EXPECT_GT(res.bytes_written, 0.0);
}

TEST(Experiment, BaselineRunHasNoMigrations) {
  ExperimentResult res = run_baseline(small_config(core::Approach::kHybrid));
  EXPECT_TRUE(res.completed);
  EXPECT_TRUE(res.migrations.empty());
  EXPECT_DOUBLE_EQ(res.traffic(net::TrafficClass::kMemory), 0.0);
  EXPECT_DOUBLE_EQ(res.traffic(net::TrafficClass::kStoragePush), 0.0);
}

TEST(Experiment, DeterministicAcrossRuns) {
  ExperimentResult a = Experiment(small_config(core::Approach::kHybrid)).run();
  ExperimentResult b = Experiment(small_config(core::Approach::kHybrid)).run();
  EXPECT_DOUBLE_EQ(a.sim_duration, b.sim_duration);
  EXPECT_DOUBLE_EQ(a.total_traffic, b.total_traffic);
  EXPECT_DOUBLE_EQ(a.avg_migration_time, b.avg_migration_time);
  EXPECT_DOUBLE_EQ(a.cpu_seconds_total, b.cpu_seconds_total);
}

TEST(Experiment, EveryApproachCompletesTheScenario) {
  for (core::Approach a :
       {core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
        core::Approach::kPrecopy, core::Approach::kPvfsShared}) {
    Experiment exp(small_config(a));
    ExperimentResult res = exp.run();
    EXPECT_TRUE(res.completed) << core::approach_name(a);
    ASSERT_EQ(res.migrations.size(), 1u) << core::approach_name(a);
    EXPECT_GT(res.migrations[0].t_control_transfer, 0.0) << core::approach_name(a);
  }
}

TEST(Experiment, MultipleSimultaneousMigrations) {
  ExperimentConfig cfg = small_config(core::Approach::kHybrid);
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 120;
  cfg.asyncwr.file_offset = 128 * kMiB;
  cfg.num_vms = 4;
  cfg.num_migrations = 4;
  cfg.num_destinations = 2;
  cfg.first_migration_at = 3.0;
  ExperimentResult res = Experiment(cfg).run();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.migrations.size(), 4u);
  for (const auto& m : res.migrations) EXPECT_GT(m.t_source_released, 0.0);
}

TEST(Experiment, SuccessiveMigrationsAreSpaced) {
  ExperimentConfig cfg = small_config(core::Approach::kHybrid);
  cfg.workload = WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 200;
  cfg.asyncwr.file_offset = 128 * kMiB;
  cfg.num_vms = 3;
  cfg.num_migrations = 3;
  cfg.num_destinations = 3;
  cfg.first_migration_at = 2.0;
  cfg.migration_interval_s = 5.0;
  ExperimentResult res = Experiment(cfg).run();
  ASSERT_EQ(res.migrations.size(), 3u);
  EXPECT_NEAR(res.migrations[0].t_request, 2.0, 1e-6);
  EXPECT_NEAR(res.migrations[1].t_request, 7.0, 1e-6);
  EXPECT_NEAR(res.migrations[2].t_request, 12.0, 1e-6);
}

TEST(Experiment, GuardTripsOnImpossibleDeadline) {
  ExperimentConfig cfg = small_config(core::Approach::kHybrid);
  cfg.max_sim_time = 1.0;  // IOR cannot finish in 1 simulated second
  ExperimentResult res = Experiment(cfg).run();
  EXPECT_FALSE(res.completed);
}

TEST(Experiment, MigrationTrafficExcludesAppComm) {
  ExperimentConfig cfg = small_config(core::Approach::kHybrid);
  cfg.workload = WorkloadKind::kCm1;
  cfg.cm1.grid_x = 2;
  cfg.cm1.grid_y = 2;
  cfg.cm1.step_compute_s = 0.25;
  cfg.cm1.steps_per_output = 2;
  cfg.cm1.num_outputs = 2;
  cfg.cm1.output_bytes = 16 * kMiB;
  cfg.cm1.file_offset = 128 * kMiB;
  cfg.cm1.ws_bytes = 32 * kMiB;
  cfg.first_migration_at = 0.5;
  ExperimentResult res = Experiment(cfg).run();
  EXPECT_TRUE(res.completed);
  EXPECT_GT(res.traffic(net::TrafficClass::kAppComm), 0.0);
  EXPECT_DOUBLE_EQ(res.migration_traffic,
                   res.total_traffic - res.traffic(net::TrafficClass::kAppComm));
}

}  // namespace
}  // namespace hm::cloud
