#include <gtest/gtest.h>

#include "core/migration_manager.h"
#include "sim/simulator.h"
#include "workloads/asyncwr.h"
#include "workloads/cm1.h"
#include "workloads/ior.h"

namespace hm::workloads {
namespace {

using storage::kMiB;

vm::ClusterConfig small_cluster() {
  vm::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.nic_Bps = 100e6;
  cfg.image = storage::ImageConfig{512 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.disk = storage::DiskConfig{55e6, 0.0};
  return cfg;
}

vm::VmConfig small_vm() {
  vm::VmConfig cfg;
  cfg.memory.ram_bytes = 512 * kMiB;
  cfg.memory.page_bytes = kMiB;
  cfg.memory.base_used_bytes = 32 * kMiB;
  cfg.cache.capacity_bytes = 128 * kMiB;
  cfg.cache.dirty_limit_bytes = 64 * kMiB;
  cfg.cache.write_Bps = 200e6;
  cfg.cache.read_Bps = 1e9;
  return cfg;
}

struct WlFixture {
  sim::Simulator s;
  vm::Cluster cluster;
  core::MigrationManager mgr;
  vm::VmInstance vm;
  WlFixture()
      : cluster(s, small_cluster()),
        mgr(s, cluster, 0, 0),
        vm(s, cluster, 0, 0, mgr, small_vm()) {}
};

sim::Task run_workload(Workload* w, vm::VmInstance* v, bool* done) {
  co_await w->run(*v);
  *done = true;
}

TEST(Ior, WritesAndReadsConfiguredVolume) {
  WlFixture f;
  IorConfig cfg;
  cfg.iterations = 2;
  cfg.file_bytes = 32 * kMiB;
  cfg.block_bytes = kMiB;
  cfg.file_offset = 64 * kMiB;
  IorWorkload ior(cfg);
  bool done = false;
  f.s.spawn(run_workload(&ior, &f.vm, &done));
  f.s.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(ior.iterations_done(), 2);
  EXPECT_DOUBLE_EQ(f.vm.io_stats().bytes_written, 2.0 * 32 * kMiB);
  EXPECT_DOUBLE_EQ(f.vm.io_stats().bytes_read, 2.0 * 32 * kMiB);
  EXPECT_GT(ior.finished_at(), 0.0);
}

TEST(Ior, ModifiesExactlyTheFileRegion) {
  WlFixture f;
  IorConfig cfg;
  cfg.iterations = 1;
  cfg.file_bytes = 16 * kMiB;
  cfg.block_bytes = kMiB;
  cfg.file_offset = 64 * kMiB;
  IorWorkload ior(cfg);
  bool done = false;
  f.s.spawn(run_workload(&ior, &f.vm, &done));
  f.s.run();
  f.s.spawn([](vm::VmInstance* v) -> sim::Task { co_await v->fsync(); }(&f.vm));
  f.s.run();
  // Exactly chunks [64, 80) modified.
  EXPECT_EQ(f.mgr.replica().modified_count(), 16u);
  EXPECT_TRUE(f.mgr.replica().modified(64));
  EXPECT_FALSE(f.mgr.replica().modified(63));
  EXPECT_FALSE(f.mgr.replica().modified(80));
}

TEST(Ior, RereadsAreCacheHitsNotRepoFetches) {
  WlFixture f;
  IorConfig cfg;
  cfg.iterations = 2;
  cfg.file_bytes = 8 * kMiB;
  cfg.block_bytes = kMiB;
  cfg.file_offset = 0;
  IorWorkload ior(cfg);
  bool done = false;
  f.s.spawn(run_workload(&ior, &f.vm, &done));
  f.s.run();
  EXPECT_EQ(f.mgr.repo_fetches(), 0u);  // reads follow writes, always cached
}

TEST(AsyncWr, SustainsConfiguredPressure) {
  WlFixture f;
  AsyncWrConfig cfg;
  cfg.iterations = 60;
  cfg.bytes_per_iter = kMiB;
  cfg.iter_compute_s = 1.0 / 6.0;
  cfg.file_offset = 64 * kMiB;
  AsyncWrWorkload wl(cfg);
  bool done = false;
  f.s.spawn(run_workload(&wl, &f.vm, &done));
  f.s.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(wl.iterations_done(), 60);
  // 60 MB over ~10 s of compute: pressure about 6 MB/s.
  const double pressure = f.vm.io_stats().bytes_written / wl.finished_at();
  EXPECT_NEAR(pressure / 1e6, 6.3, 1.0);
}

TEST(AsyncWr, ComputeAndIoOverlap) {
  WlFixture f;
  AsyncWrConfig cfg;
  cfg.iterations = 30;
  cfg.file_offset = 64 * kMiB;
  AsyncWrWorkload wl(cfg);
  bool done = false;
  f.s.spawn(run_workload(&wl, &f.vm, &done));
  f.s.run();
  // Total time is dominated by compute (writes overlap): close to 30/6 s.
  EXPECT_NEAR(wl.finished_at(), 30 * cfg.iter_compute_s, 1.0);
  EXPECT_NEAR(f.vm.cpu_seconds(), 30 * cfg.iter_compute_s, 1e-6);
}

TEST(AsyncWr, CounterOnlyAdvancesWhileRunning) {
  WlFixture f;
  AsyncWrConfig cfg;
  cfg.iterations = 30;
  cfg.file_offset = 64 * kMiB;
  AsyncWrWorkload wl(cfg);
  bool done = false;
  f.s.spawn(run_workload(&wl, &f.vm, &done));
  // Pause the VM for 2 seconds in the middle.
  f.s.schedule(1.0, [&] { f.vm.pause(); });
  f.s.schedule(3.0, [&] { f.vm.resume(); });
  f.s.run();
  EXPECT_NEAR(wl.finished_at(), 30 * cfg.iter_compute_s + 2.0, 1.0);
  EXPECT_NEAR(f.vm.cpu_seconds(), 30 * cfg.iter_compute_s, 1e-6);
}

struct Cm1Fixture {
  sim::Simulator s;
  vm::Cluster cluster;
  std::vector<std::unique_ptr<core::MigrationManager>> mgrs;
  std::vector<std::unique_ptr<vm::VmInstance>> vms;
  std::vector<vm::VmInstance*> raw;

  explicit Cm1Fixture(int n) : cluster(s, small_cluster()) {
    for (int i = 0; i < n; ++i) {
      mgrs.push_back(std::make_unique<core::MigrationManager>(
          s, cluster, static_cast<net::NodeId>(i % cluster.size()), i));
      vms.push_back(std::make_unique<vm::VmInstance>(
          s, cluster, static_cast<net::NodeId>(i % cluster.size()), i, *mgrs.back(),
          small_vm()));
      raw.push_back(vms.back().get());
    }
  }
};

Cm1Config tiny_cm1() {
  Cm1Config cfg;
  cfg.grid_x = 2;
  cfg.grid_y = 2;
  cfg.step_compute_s = 0.5;
  cfg.steps_per_output = 2;
  cfg.num_outputs = 2;
  cfg.output_bytes = 8 * kMiB;
  cfg.halo_bytes = 256 * storage::kKiB;
  cfg.file_offset = 64 * kMiB;
  cfg.dirty_Bps = 1e6;
  cfg.ws_bytes = 16 * kMiB;
  return cfg;
}

sim::Task run_cm1(Cm1Application* app, bool* done) {
  co_await app->run_all();
  *done = true;
}

TEST(Cm1, AllRanksCompleteAllOutputs) {
  Cm1Fixture f(4);
  Cm1Application app(f.s, f.raw, tiny_cm1());
  bool done = false;
  f.s.spawn(run_cm1(&app, &done));
  f.s.run();
  ASSERT_TRUE(done);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(app.outputs_written(r), 2);
  EXPECT_GT(app.execution_time(), 4 * 0.5);  // 4 steps of compute minimum
}

TEST(Cm1, HaloExchangeGeneratesAppCommTraffic) {
  Cm1Fixture f(4);
  Cm1Application app(f.s, f.raw, tiny_cm1());
  bool done = false;
  f.s.spawn(run_cm1(&app, &done));
  f.s.run();
  // 2x2 grid: each rank has 2 neighbours -> 8 halo flows per step, 4 steps.
  const double expected = 8.0 * 4 * 256 * storage::kKiB;
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kAppComm),
                   expected);
}

TEST(Cm1, OnePausedRankDragsEveryoneDown) {
  Cm1Fixture base(4);
  Cm1Application base_app(base.s, base.raw, tiny_cm1());
  bool base_done = false;
  base.s.spawn(run_cm1(&base_app, &base_done));
  base.s.run();

  Cm1Fixture f(4);
  Cm1Application app(f.s, f.raw, tiny_cm1());
  bool done = false;
  f.s.spawn(run_cm1(&app, &done));
  // Pause one rank for 3 seconds early in the run.
  f.s.schedule(0.1, [&] { f.raw[2]->pause(); });
  f.s.schedule(3.1, [&] { f.raw[2]->resume(); });
  f.s.run();
  ASSERT_TRUE(done);
  // The whole application slows by roughly the pause length (BSP coupling),
  // not just the paused rank.
  EXPECT_GT(app.execution_time(), base_app.execution_time() + 2.0);
}

TEST(Cm1, DumpsWriteToLocalStorage) {
  Cm1Fixture f(4);
  Cm1Application app(f.s, f.raw, tiny_cm1());
  bool done = false;
  f.s.spawn(run_cm1(&app, &done));
  f.s.run();
  for (int r = 0; r < 4; ++r)
    EXPECT_DOUBLE_EQ(f.raw[r]->io_stats().bytes_written, 2.0 * 8 * kMiB);
}

TEST(Cm1, NeighbourTopologyIsGridNotTorus) {
  // Corner ranks have 2 neighbours, edge ranks 3, interior 4 (verified via
  // traffic volume on a 3x3 grid: 2*4 + 3*4 + 4*1 = 24 directed halo sends
  // per step).
  vm::ClusterConfig ccfg = small_cluster();
  ccfg.num_nodes = 9;
  sim::Simulator s;
  vm::Cluster cluster(s, ccfg);
  std::vector<std::unique_ptr<core::MigrationManager>> mgrs;
  std::vector<std::unique_ptr<vm::VmInstance>> vms;
  std::vector<vm::VmInstance*> raw;
  for (int i = 0; i < 9; ++i) {
    mgrs.push_back(std::make_unique<core::MigrationManager>(
        s, cluster, static_cast<net::NodeId>(i), i));
    vms.push_back(std::make_unique<vm::VmInstance>(s, cluster,
                                                   static_cast<net::NodeId>(i), i,
                                                   *mgrs.back(), small_vm()));
    raw.push_back(vms.back().get());
  }
  Cm1Config cfg = tiny_cm1();
  cfg.grid_x = 3;
  cfg.grid_y = 3;
  cfg.steps_per_output = 1;
  cfg.num_outputs = 1;
  Cm1Application app(s, raw, cfg);
  bool done = false;
  s.spawn(run_cm1(&app, &done));
  s.run();
  EXPECT_DOUBLE_EQ(cluster.network().traffic_bytes(net::TrafficClass::kAppComm),
                   24.0 * cfg.halo_bytes);
}

}  // namespace
}  // namespace hm::workloads
