// Trace format, reader validation (malformed inputs must fail with a
// diagnostic, never UB — this file also runs under the ASan CI job),
// generators, snapshot helpers and single-VM replay behaviour.
#include "workloads/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "core/migration_manager.h"
#include "workloads/trace_gen.h"

namespace hm::workloads {
namespace {

using storage::kKiB;
using storage::kMiB;

std::string tmp_path(const std::string& name) { return ::testing::TempDir() + name; }

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

TraceData small_trace() {
  TraceData data;
  data.header.page_bytes = kMiB;
  data.header.chunk_bytes = kMiB;
  data.header.file_offset = 64 * kMiB;
  data.header.pages = 16;
  data.header.chunks = 16;
  data.header.name = "unit";
  TraceRecord r;
  r.op = TraceOp::kMemDirty;
  r.t = 0.25;
  r.a = 3;
  r.b = 2;
  data.records.push_back(r);
  r.op = TraceOp::kChunkWrite;
  r.t = 0.5;
  r.lane = 2;
  r.a = 7;
  r.b = 1;
  data.records.push_back(r);
  data.header.records = data.records.size();
  return data;
}

// --- format ------------------------------------------------------------------

TEST(TraceFormat, RecordEncodeDecodeRoundTrip) {
  TraceRecord r;
  r.t = 123.456789;
  r.op = TraceOp::kNetSend;
  r.lane = 7;
  r.vm = 513;
  r.aux = 0xdeadbeef;
  r.a = 0x0123456789abcdefULL;
  r.b = ~std::uint64_t{0};
  r.c = std::bit_cast<std::uint64_t>(3.25e9);
  unsigned char buf[kTraceRecordBytes];
  encode_trace_record(r, buf);
  EXPECT_EQ(decode_trace_record(buf), r);
}

TEST(TraceFormat, WriteLoadRoundTrip) {
  const TraceData data = small_trace();
  const std::string path = tmp_path("trace_roundtrip.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, data, &err)) << err;
  TraceData loaded;
  ASSERT_TRUE(load_trace(path, &loaded, &err)) << err;
  EXPECT_EQ(loaded.header.page_bytes, data.header.page_bytes);
  EXPECT_EQ(loaded.header.chunk_bytes, data.header.chunk_bytes);
  EXPECT_EQ(loaded.header.file_offset, data.header.file_offset);
  EXPECT_EQ(loaded.header.pages, data.header.pages);
  EXPECT_EQ(loaded.header.chunks, data.header.chunks);
  EXPECT_EQ(loaded.header.num_vms, data.header.num_vms);
  EXPECT_EQ(loaded.header.name, data.header.name);
  EXPECT_EQ(loaded.records, data.records);
}

TEST(TraceFormat, StreamingReaderMatchesLoad) {
  const TraceData data = small_trace();
  const std::string path = tmp_path("trace_stream.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, data, &err)) << err;
  TraceReader reader;
  ASSERT_TRUE(reader.open(path)) << reader.error();
  TraceRecord r;
  std::size_t n = 0;
  while (reader.next(r)) {
    ASSERT_LT(n, data.records.size());
    EXPECT_EQ(r, data.records[n]);
    ++n;
  }
  EXPECT_TRUE(reader.ok()) << reader.error();
  EXPECT_EQ(n, data.records.size());
}

// --- malformed inputs --------------------------------------------------------

void expect_open_fails(const std::string& path, const std::string& needle) {
  TraceReader reader;
  EXPECT_FALSE(reader.open(path));
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find(needle), std::string::npos) << reader.error();
}

/// Open succeeds but the record stream must fail with a diagnostic.
void expect_stream_fails(const std::string& path, const std::string& needle) {
  TraceReader reader;
  ASSERT_TRUE(reader.open(path)) << reader.error();
  TraceRecord r;
  while (reader.next(r)) {
  }
  EXPECT_FALSE(reader.ok());
  EXPECT_NE(reader.error().find(needle), std::string::npos) << reader.error();
}

TEST(TraceMalformed, ZeroLengthFile) {
  const std::string path = tmp_path("trace_empty.trace");
  write_file(path, "");
  expect_open_fails(path, "empty trace file");
}

TEST(TraceMalformed, MissingFile) {
  expect_open_fails(tmp_path("no_such_trace.trace"), "cannot open");
}

TEST(TraceMalformed, BadMagic) {
  const std::string path = tmp_path("trace_magic.trace");
  write_file(path, "NOTATRACE 1\nrecords=0\n\n");
  expect_open_fails(path, "bad magic");
}

TEST(TraceMalformed, UnsupportedVersion) {
  const std::string path = tmp_path("trace_version.trace");
  write_file(path, "HMTRACE 2\nrecords=0\n\n");
  expect_open_fails(path, "unsupported trace version");
}

TEST(TraceMalformed, TruncatedHeader) {
  const std::string path = tmp_path("trace_trunchdr.trace");
  write_file(path, "HMTRACE 1\npage_bytes=65536\n");  // no blank line, no records=
  expect_open_fails(path, "truncated header");
}

TEST(TraceMalformed, MissingRecordCount) {
  const std::string path = tmp_path("trace_norecords.trace");
  write_file(path, "HMTRACE 1\npage_bytes=65536\n\n");
  expect_open_fails(path, "records=");
}

TEST(TraceMalformed, HugeRecordCountFailsInsteadOfAborting) {
  // An absurd records= value must surface as a truncated-stream diagnostic,
  // not a length_error/bad_alloc from pre-reserving the vector.
  const std::string path = tmp_path("trace_hugecount.trace");
  write_file(path, "HMTRACE 1\nrecords=1152921504606846976\n\n");
  TraceData data;
  std::string err;
  EXPECT_FALSE(load_trace(path, &data, &err));
  EXPECT_NE(err.find("truncated record stream"), std::string::npos) << err;
}

TEST(TraceMalformed, NonNumericHeaderValue) {
  const std::string path = tmp_path("trace_nonnum.trace");
  write_file(path, "HMTRACE 1\npage_bytes=lots\nrecords=0\n\n");
  expect_open_fails(path, "non-numeric");
}

TEST(TraceMalformed, TruncatedRecordStream) {
  const std::string path = tmp_path("trace_truncrec.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, small_trace(), &err)) << err;
  const std::string bytes = read_file(path);
  write_file(path, bytes.substr(0, bytes.size() - kTraceRecordBytes / 2));
  expect_stream_fails(path, "truncated record stream");
}

TEST(TraceMalformed, TrailingData) {
  const std::string path = tmp_path("trace_trailing.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, small_trace(), &err)) << err;
  write_file(path, read_file(path) + "extra");
  expect_stream_fails(path, "trailing data");
}

TraceData with_record(TraceRecord r) {
  TraceData data = small_trace();
  data.records.push_back(r);
  data.header.records = data.records.size();
  return data;
}

TEST(TraceMalformed, OutOfRangePageIndex) {
  TraceRecord r;
  r.t = 1.0;
  r.op = TraceOp::kMemDirty;
  r.a = 15;
  r.b = 2;  // [15, 17) but pages=16
  const std::string path = tmp_path("trace_badpage.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, with_record(r), &err)) << err;
  expect_stream_fails(path, "page range");
}

TEST(TraceMalformed, OutOfRangeChunkIndex) {
  TraceRecord r;
  r.t = 1.0;
  r.op = TraceOp::kChunkRead;
  r.a = 400;
  r.b = 1;
  const std::string path = tmp_path("trace_badchunk.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, with_record(r), &err)) << err;
  expect_stream_fails(path, "chunk range");
}

TEST(TraceMalformed, OutOfRangeVmIndex) {
  TraceRecord r;
  r.t = 1.0;
  r.op = TraceOp::kFsync;
  r.vm = 3;  // num_vms = 1
  const std::string path = tmp_path("trace_badvm.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, with_record(r), &err)) << err;
  expect_stream_fails(path, "vm index");
}

TEST(TraceMalformed, NonMonotoneTimestamps) {
  TraceRecord r;
  r.t = 0.1;  // earlier than the 0.5 before it
  r.op = TraceOp::kFsync;
  const std::string path = tmp_path("trace_nonmono.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, with_record(r), &err)) << err;
  expect_stream_fails(path, "non-monotone");
}

TEST(TraceMalformed, NonFiniteTimestamp) {
  TraceRecord r;
  r.t = std::numeric_limits<double>::quiet_NaN();
  r.op = TraceOp::kFsync;
  const std::string path = tmp_path("trace_nan.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, with_record(r), &err)) << err;
  expect_stream_fails(path, "timestamp");
}

TEST(TraceMalformed, UnknownOp) {
  TraceRecord r;
  r.t = 1.0;
  r.op = static_cast<TraceOp>(200);
  const std::string path = tmp_path("trace_badop.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, with_record(r), &err)) << err;
  expect_stream_fails(path, "unknown op");
}

TEST(TraceMalformed, NonFiniteComputeSeconds) {
  TraceRecord r;
  r.t = 1.0;
  r.op = TraceOp::kCompute;
  r.a = std::bit_cast<std::uint64_t>(std::numeric_limits<double>::infinity());
  const std::string path = tmp_path("trace_badcompute.trace");
  std::string err;
  ASSERT_TRUE(write_trace(path, with_record(r), &err)) << err;
  expect_stream_fails(path, "compute");
}

// --- generators --------------------------------------------------------------

TEST(TraceGen, DeterministicForSpecAndSeed) {
  TraceGenSpec spec;
  spec.duration_s = 5.0;
  const TraceData a = generate_trace(spec, 7);
  const TraceData b = generate_trace(spec, 7);
  const TraceData c = generate_trace(spec, 8);
  EXPECT_EQ(a.records, b.records);
  EXPECT_NE(a.records, c.records);
}

TEST(TraceGen, ZipfSamplerIsSkewedAndBounded) {
  ZipfSampler zipf(1024, 0.99);
  sim::Rng rng(1);
  std::vector<std::uint64_t> hits(1024, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = zipf.sample(rng);
    ASSERT_LT(v, 1024u);
    ++hits[v];
  }
  EXPECT_GT(hits[0], hits[100] * 5);  // heavy head
  EXPECT_GT(hits[0], 400u);
}

TEST(TraceGen, UniformThetaIsNotSkewed) {
  ZipfSampler uni(64, 0.0);
  sim::Rng rng(1);
  std::vector<std::uint64_t> hits(64, 0);
  for (int i = 0; i < 64000; ++i) ++hits[uni.sample(rng)];
  for (std::uint64_t h : hits) EXPECT_NEAR(static_cast<double>(h), 1000.0, 250.0);
}

TEST(TraceGen, PhaseShiftRelocatesHotSet) {
  TraceGenSpec spec;
  spec.pattern = TracePattern::kPhaseShift;
  spec.duration_s = 30.0;
  spec.phase_s = 15.0;
  spec.zipf_theta = 2.0;  // draws concentrate near the window base
  std::set<std::uint64_t> first_phase, second_phase;
  for (const TraceRecord& r : generate_trace(spec, 42).records) {
    if (r.op != TraceOp::kMemDirty) continue;
    (r.t < spec.phase_s ? first_phase : second_phase).insert(r.a);
  }
  ASSERT_FALSE(first_phase.empty());
  ASSERT_FALSE(second_phase.empty());
  // The hot window moved by one window size: the dominant pages differ.
  EXPECT_NE(*first_phase.begin(), *second_phase.begin());
}

TEST(TraceGen, BurstConfinesChunkWritesToDutyCycle) {
  TraceGenSpec spec;
  spec.pattern = TracePattern::kBurst;
  spec.duration_s = 40.0;
  spec.burst_on_s = 2.0;
  spec.burst_off_s = 8.0;
  std::uint64_t writes = 0;
  for (const TraceRecord& r : generate_trace(spec, 42).records) {
    if (r.op != TraceOp::kChunkWrite) continue;
    ++writes;
    const double in_cycle = std::fmod(r.t, spec.burst_on_s + spec.burst_off_s);
    // One step of accumulator carry-over may land just past the window.
    EXPECT_LT(in_cycle, spec.burst_on_s + spec.dt_s) << "write at t=" << r.t;
  }
  EXPECT_GT(writes, 0u);
}

TEST(TraceGen, ScanSweepsSequentially) {
  TraceGenSpec spec;
  spec.pattern = TracePattern::kSequentialScan;
  spec.duration_s = 20.0;
  std::uint64_t expect_next = 0;
  bool any = false;
  for (const TraceRecord& r : generate_trace(spec, 42).records) {
    if (r.op != TraceOp::kChunkWrite) continue;
    EXPECT_EQ(r.a, expect_next);
    expect_next = (r.a + r.b) % spec.chunks;
    any = true;
  }
  EXPECT_TRUE(any);
}

TEST(TraceGen, GeneratedTracesPassValidation) {
  for (TracePattern p : {TracePattern::kZipfian, TracePattern::kPhaseShift,
                         TracePattern::kBurst, TracePattern::kSequentialScan}) {
    TraceGenSpec spec;
    spec.pattern = p;
    spec.duration_s = 10.0;
    spec.read_fraction = 0.25;
    const TraceData data = generate_trace(spec, 42);
    const std::string path = tmp_path("trace_gen_valid.trace");
    std::string err;
    ASSERT_TRUE(write_trace(path, data, &err)) << err;
    TraceData loaded;
    EXPECT_TRUE(load_trace(path, &loaded, &err)) << trace_pattern_name(p) << ": " << err;
    EXPECT_EQ(loaded.records.size(), data.records.size());
  }
}

TEST(TraceGen, ParseSpecPatternsAndOverrides) {
  TraceSourceConfig src;
  std::string err;
  ASSERT_TRUE(parse_trace_spec("zipf:theta=0.5,dur=10,chunks=64", &src, &err)) << err;
  EXPECT_EQ(src.gen.pattern, TracePattern::kZipfian);
  EXPECT_DOUBLE_EQ(src.gen.zipf_theta, 0.5);
  EXPECT_DOUBLE_EQ(src.gen.duration_s, 10.0);
  EXPECT_EQ(src.gen.chunks, 64u);

  TraceSourceConfig prefixed;
  ASSERT_TRUE(parse_trace_spec("trace:burst:on=1,off=4", &prefixed, &err)) << err;
  EXPECT_EQ(prefixed.gen.pattern, TracePattern::kBurst);
  EXPECT_DOUBLE_EQ(prefixed.gen.burst_on_s, 1.0);

  TraceSourceConfig file;
  ASSERT_TRUE(parse_trace_spec("file=/some/path.trace", &file, &err)) << err;
  EXPECT_EQ(file.path, "/some/path.trace");

  TraceSourceConfig bad;
  EXPECT_FALSE(parse_trace_spec("nope", &bad, &err));
  EXPECT_NE(err.find("unknown pattern"), std::string::npos);
  EXPECT_FALSE(parse_trace_spec("zipf:bogus=1", &bad, &err));
  EXPECT_NE(err.find("unknown key"), std::string::npos);
}

// --- replay ------------------------------------------------------------------

vm::ClusterConfig small_cluster() {
  vm::ClusterConfig cfg;
  cfg.num_nodes = 6;
  cfg.nic_Bps = 100e6;
  cfg.image = storage::ImageConfig{512 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.disk = storage::DiskConfig{55e6, 0.0};
  return cfg;
}

vm::VmConfig small_vm() {
  vm::VmConfig cfg;
  cfg.memory.ram_bytes = 512 * kMiB;
  cfg.memory.page_bytes = kMiB;
  cfg.memory.base_used_bytes = 32 * kMiB;
  cfg.cache.capacity_bytes = 128 * kMiB;
  cfg.cache.dirty_limit_bytes = 64 * kMiB;
  cfg.cache.write_Bps = 200e6;
  cfg.cache.read_Bps = 1e9;
  return cfg;
}

struct ReplayFixture {
  sim::Simulator s;
  vm::Cluster cluster;
  core::MigrationManager mgr;
  vm::VmInstance vm;
  ReplayFixture()
      : cluster(s, small_cluster()),
        mgr(s, cluster, 0, 0),
        vm(s, cluster, 0, 0, mgr, small_vm()) {}

  void run(TraceWorkload& wl, bool* done) {
    s.spawn([](TraceWorkload* w, vm::VmInstance* v, bool* d) -> sim::Task {
      co_await w->run(*v);
      *d = true;
    }(&wl, &vm, done));
    s.run();
  }
};

/// Trace with explicit chunk writes + page dirties, no compute.
TraceData replay_trace() {
  TraceData data;
  data.header.page_bytes = kMiB;
  data.header.chunk_bytes = kMiB;
  data.header.file_offset = 64 * kMiB;
  data.header.pages = 64;
  data.header.chunks = 32;
  TraceRecord r;
  r.op = TraceOp::kMemDirty;
  r.t = 0.1;
  r.a = 0;
  r.b = 8;
  data.records.push_back(r);
  r.op = TraceOp::kChunkWrite;
  r.t = 0.2;
  r.lane = 2;
  r.a = 0;
  r.b = 16;
  data.records.push_back(r);
  r.op = TraceOp::kChunkRead;
  r.t = 0.5;
  r.lane = 3;
  r.a = 0;
  r.b = 4;
  data.records.push_back(r);
  data.header.records = data.records.size();
  return data;
}

TEST(TraceReplayUnit, AppliesChunkAndMemoryRecords) {
  const TraceData data = replay_trace();
  ReplayFixture f;
  const std::uint64_t dirty_before = f.vm.memory().dirty_bytes();
  TraceWorkload wl(&data);
  bool done = false;
  f.run(wl, &done);
  ASSERT_TRUE(done);
  EXPECT_FALSE(wl.failed()) << wl.error();
  EXPECT_EQ(wl.records_applied(), data.records.size());
  EXPECT_DOUBLE_EQ(f.vm.io_stats().bytes_written, 16.0 * kMiB);
  EXPECT_DOUBLE_EQ(f.vm.io_stats().bytes_read, 4.0 * kMiB);
  // 8 pages of anon memory dirtied on top of the baseline (the chunk writes
  // dirty page-cache pages too, so >=).
  EXPECT_GE(f.vm.memory().dirty_bytes(), dirty_before + 8 * kMiB);
}

TEST(TraceReplayUnit, ReplayIsDeterministic) {
  const TraceData data = replay_trace();
  double finished[2];
  for (int i = 0; i < 2; ++i) {
    ReplayFixture f;
    TraceWorkload wl(&data);
    bool done = false;
    f.run(wl, &done);
    ASSERT_TRUE(done);
    finished[i] = wl.finished_at();
  }
  EXPECT_EQ(finished[0], finished[1]);
}

TEST(TraceReplayUnit, RespectsRunGate) {
  TraceData data;
  data.header.pages = 4;
  data.header.chunks = 4;
  TraceRecord r;
  r.op = TraceOp::kCompute;
  r.t = 0.0;
  r.a = std::bit_cast<std::uint64_t>(0.5);
  r.b = std::bit_cast<std::uint64_t>(0.0);
  data.records.push_back(r);
  data.header.records = 1;

  ReplayFixture f;
  TraceWorkload wl(&data);
  bool done = false;
  f.s.schedule(0.1, [&] { f.vm.pause(); });
  f.s.schedule(1.1, [&] { f.vm.resume(); });
  f.run(wl, &done);
  ASSERT_TRUE(done);
  // 0.5 s of compute stretched by the 1 s pause.
  EXPECT_NEAR(wl.finished_at(), 1.5, 0.2);
}

TEST(TraceReplayUnit, BroadcastRejectsNetSend) {
  TraceData data;
  TraceRecord r;
  r.op = TraceOp::kNetSend;
  r.t = 0.0;
  r.a = 0;
  r.b = 1;
  r.c = std::bit_cast<std::uint64_t>(1e6);
  data.records.push_back(r);
  data.header.records = 1;
  ReplayFixture f;
  TraceWorkload wl(&data);  // broadcast by default
  bool done = false;
  f.run(wl, &done);
  ASSERT_TRUE(done);
  EXPECT_TRUE(wl.failed());
  EXPECT_NE(wl.error().find("broadcast"), std::string::npos) << wl.error();
}

TEST(TraceReplayUnit, GeometryLargerThanReplayImageIsErrorNotUB) {
  // A valid trace recorded on a bigger machine: chunk region beyond the
  // replay fixture's 512 MiB image. Replay must fail with a diagnostic
  // instead of handing out-of-range chunk ids to the storage layer.
  TraceData data;
  data.header.chunk_bytes = kMiB;
  data.header.file_offset = storage::kGiB;  // outside the 512 MiB image
  data.header.chunks = 16;
  TraceRecord r;
  r.op = TraceOp::kChunkWrite;
  r.t = 0.0;
  r.lane = 2;
  r.a = 0;
  r.b = 1;
  data.records.push_back(r);
  data.header.records = 1;
  ReplayFixture f;
  TraceWorkload wl(&data);
  bool done = false;
  f.run(wl, &done);
  ASSERT_TRUE(done);
  EXPECT_TRUE(wl.failed());
  EXPECT_NE(wl.error().find("outside the replay image"), std::string::npos) << wl.error();

  TraceData net;
  TraceRecord s;
  s.op = TraceOp::kNetSend;
  s.t = 0.0;
  s.a = 0;
  s.b = 4000;  // node id outside the 6-node cluster
  s.c = std::bit_cast<std::uint64_t>(1e6);
  net.records.push_back(s);
  net.header.records = 1;
  ReplayFixture f2;
  TraceReplayOptions exact;
  exact.broadcast = false;
  TraceWorkload wl2(&net, exact);
  bool done2 = false;
  f2.run(wl2, &done2);
  ASSERT_TRUE(done2);
  EXPECT_TRUE(wl2.failed());
  EXPECT_NE(wl2.error().find("outside the replay cluster"), std::string::npos)
      << wl2.error();
}

TEST(TraceReplayUnit, MissingFileSurfacesError) {
  ReplayFixture f;
  TraceWorkload wl(tmp_path("definitely_missing.trace"));
  bool done = false;
  f.run(wl, &done);
  ASSERT_TRUE(done);
  EXPECT_TRUE(wl.failed());
  EXPECT_NE(wl.error().find("cannot open"), std::string::npos) << wl.error();
}

// --- committed reference trace ----------------------------------------------

#ifdef HM_GOLDEN_DIR
// The checked-in golden trace must stay loadable and replay
// deterministically: a format change that breaks old traces (or a replay
// change that shifts their timeline) fails here before it reaches the CI
// sweep gate.
TEST(TraceGolden, ReferenceTraceLoadsAndReplaysDeterministically) {
  const std::string path = std::string(HM_GOLDEN_DIR) + "/trace_zipf_small.trace";
  TraceData data;
  std::string err;
  ASSERT_TRUE(load_trace(path, &data, &err)) << err;
  EXPECT_EQ(data.header.version, 1u);
  EXPECT_EQ(data.header.num_vms, 1u);
  EXPECT_GT(data.records.size(), 100u);

  double finished[2];
  double written[2];
  for (int i = 0; i < 2; ++i) {
    ReplayFixture f;
    TraceWorkload wl(&data);
    bool done = false;
    f.run(wl, &done);
    ASSERT_TRUE(done);
    ASSERT_FALSE(wl.failed()) << wl.error();
    EXPECT_EQ(wl.records_applied(), data.records.size());
    finished[i] = wl.finished_at();
    written[i] = f.vm.io_stats().bytes_written;
  }
  EXPECT_EQ(finished[0], finished[1]);
  EXPECT_EQ(written[0], written[1]);
  EXPECT_GT(written[0], 0.0);
}
#endif

// --- snapshots over the iteration hooks --------------------------------------

TEST(TraceSnapshot, DirtyPagesCoalescedIntoRuns) {
  vm::GuestMemoryConfig mcfg;
  mcfg.ram_bytes = 256 * kMiB;
  mcfg.page_bytes = kMiB;
  mcfg.base_used_bytes = 0;
  vm::GuestMemory mem(mcfg);
  // Two runs, one spanning the word-63/64 boundary.
  mem.touch_range(63 * kMiB, 3 * kMiB);  // pages 63, 64, 65
  mem.touch_range(10 * kMiB, kMiB);      // page 10
  TraceData out;
  EXPECT_EQ(snapshot_dirty_pages(mem, 1.0, 0, /*base_page=*/0, &out), 2u);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].a, 10u);
  EXPECT_EQ(out.records[0].b, 1u);
  EXPECT_EQ(out.records[1].a, 63u);
  EXPECT_EQ(out.records[1].b, 3u);
  EXPECT_EQ(out.records[0].op, TraceOp::kMemDirty);
}

TEST(TraceSnapshot, PagesBelowBaseAreSkippedAndStraddlingRunsTrimmed) {
  vm::GuestMemoryConfig mcfg;
  mcfg.ram_bytes = 256 * kMiB;
  mcfg.page_bytes = kMiB;
  mcfg.base_used_bytes = 0;
  vm::GuestMemory mem(mcfg);
  mem.touch_range(2 * kMiB, 2 * kMiB);   // pages 2-3: entirely below the base
  mem.touch_range(98 * kMiB, 5 * kMiB);  // pages 98-102: straddles base 100
  mem.touch_range(120 * kMiB, kMiB);     // page 120: fully inside the window
  TraceData out;
  EXPECT_EQ(snapshot_dirty_pages(mem, 1.0, 0, /*base_page=*/100, &out), 2u);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].a, 0u);  // pages 100-102 -> window-relative 0-2
  EXPECT_EQ(out.records[0].b, 3u);
  EXPECT_EQ(out.records[1].a, 20u);  // page 120 -> window-relative 20
  EXPECT_EQ(out.records[1].b, 1u);
}

TEST(TraceSnapshot, ModifiedChunksCoalescedIntoRuns) {
  sim::Simulator s;
  storage::Disk disk(s, storage::DiskConfig{100e6, 0.0});
  storage::ChunkStore store(s, disk, storage::ImageConfig{128 * kMiB,
                                                          static_cast<std::uint32_t>(kMiB)});
  s.spawn([](storage::ChunkStore* st) -> sim::Task {
    co_await st->write_chunk(63);
    co_await st->write_chunk(64);
    co_await st->write_chunk(65);
    co_await st->write_chunk(100);
  }(&store));
  s.run();
  TraceData out;
  EXPECT_EQ(snapshot_modified_chunks(store, 2.0, 0, /*base_chunk=*/0, &out), 2u);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].a, 63u);
  EXPECT_EQ(out.records[0].b, 3u);
  EXPECT_EQ(out.records[1].a, 100u);
  EXPECT_EQ(out.records[1].b, 1u);
  EXPECT_EQ(out.records[0].op, TraceOp::kChunkWrite);
}

}  // namespace
}  // namespace hm::workloads
