#include "util/bitmap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "sim/random.h"

namespace hm::util {
namespace {

TEST(DirtyBitmap, SetResetTestCount) {
  DirtyBitmap bm(200);
  EXPECT_EQ(bm.size(), 200u);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_FALSE(bm.any());
  EXPECT_TRUE(bm.set(5));
  EXPECT_FALSE(bm.set(5));  // already set
  EXPECT_TRUE(bm.set(64));  // second word
  EXPECT_TRUE(bm.set(199));
  EXPECT_EQ(bm.count(), 3u);
  EXPECT_TRUE(bm.test(5));
  EXPECT_FALSE(bm.test(6));
  EXPECT_TRUE(bm.reset(64));
  EXPECT_FALSE(bm.reset(64));  // already clear
  EXPECT_EQ(bm.count(), 2u);
}

TEST(DirtyBitmap, SetRangeCrossesWordBoundaries) {
  DirtyBitmap bm(256);
  bm.set_range(60, 70);  // straddles the word 0/1 boundary
  EXPECT_EQ(bm.count(), 10u);
  EXPECT_FALSE(bm.test(59));
  EXPECT_TRUE(bm.test(60));
  EXPECT_TRUE(bm.test(69));
  EXPECT_FALSE(bm.test(70));
  bm.set_range(0, 256);  // full words, idempotent over the overlap
  EXPECT_EQ(bm.count(), 256u);
  bm.reset_range(64, 192);  // exact word boundaries
  EXPECT_EQ(bm.count(), 128u);
  EXPECT_TRUE(bm.test(63));
  EXPECT_FALSE(bm.test(64));
  EXPECT_FALSE(bm.test(191));
  EXPECT_TRUE(bm.test(192));
}

TEST(DirtyBitmap, FindNextSkipsCleanWords) {
  DirtyBitmap bm(1024);
  EXPECT_EQ(bm.find_next(0), DirtyBitmap::npos);
  bm.set(700);
  bm.set(3);
  EXPECT_EQ(bm.find_next(0), 3u);
  EXPECT_EQ(bm.find_next(4), 700u);
  EXPECT_EQ(bm.find_next(700), 700u);
  EXPECT_EQ(bm.find_next(701), DirtyBitmap::npos);
  EXPECT_EQ(bm.find_next(4096), DirtyBitmap::npos);  // past the end
}

TEST(DirtyBitmap, ForEachSetAscendingAndDrain) {
  DirtyBitmap bm(300);
  const std::vector<std::uint64_t> want = {0, 1, 63, 64, 65, 128, 299};
  for (auto i : want) bm.set(i);
  std::vector<std::uint64_t> got;
  bm.for_each_set([&](std::uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(bm.count(), want.size());  // for_each_set does not clear
  got.clear();
  bm.drain([&](std::uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_FALSE(bm.any());
}

TEST(DirtyBitmap, ClearAndResize) {
  DirtyBitmap bm(100);
  bm.set_range(0, 100);
  bm.clear();
  EXPECT_EQ(bm.count(), 0u);
  bm.resize(50);
  EXPECT_EQ(bm.size(), 50u);
  EXPECT_EQ(bm.count(), 0u);
  bm.set(49);
  EXPECT_EQ(bm.count(), 1u);
}

// Randomized cross-check against a std::set reference model.
TEST(DirtyBitmap, MatchesReferenceModelUnderChurn) {
  constexpr std::uint64_t kBits = 777;
  DirtyBitmap bm(kBits);
  std::set<std::uint64_t> ref;
  sim::Rng rng(123);
  for (int op = 0; op < 5000; ++op) {
    const std::uint64_t i = rng.uniform(kBits);
    switch (rng.uniform(4)) {
      case 0:
        EXPECT_EQ(bm.set(i), ref.insert(i).second);
        break;
      case 1:
        EXPECT_EQ(bm.reset(i), ref.erase(i) > 0);
        break;
      case 2: {
        const std::uint64_t len = rng.uniform(80);
        const std::uint64_t last = std::min(i + len, kBits);
        bm.set_range(i, last);
        for (std::uint64_t k = i; k < last; ++k) ref.insert(k);
        break;
      }
      default:
        EXPECT_EQ(bm.test(i), ref.count(i) != 0);
    }
    ASSERT_EQ(bm.count(), ref.size());
  }
  std::vector<std::uint64_t> got;
  bm.for_each_set([&](std::uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, std::vector<std::uint64_t>(ref.begin(), ref.end()));
}

TEST(DirtyBitmap, GrowPreservesSetBits) {
  DirtyBitmap bm(10);
  bm.set(3);
  bm.set(9);
  bm.grow(200);  // crosses several word boundaries
  EXPECT_EQ(bm.size(), 200u);
  EXPECT_EQ(bm.count(), 2u);
  EXPECT_TRUE(bm.test(3));
  EXPECT_TRUE(bm.test(9));
  EXPECT_FALSE(bm.test(150));
  bm.set(199);
  EXPECT_EQ(bm.count(), 3u);
  bm.grow(50);  // never shrinks
  EXPECT_EQ(bm.size(), 200u);
  EXPECT_TRUE(bm.test(199));
}

}  // namespace
}  // namespace hm::util
