#include "vm/vm_instance.h"

#include <gtest/gtest.h>

#include "core/migration_manager.h"
#include "sim/simulator.h"

namespace hm::vm {
namespace {

using storage::kGiB;
using storage::kMiB;

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.nic_Bps = 100e6;
  cfg.image = storage::ImageConfig{256 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.disk = storage::DiskConfig{55e6, 0.0};
  return cfg;
}

VmConfig small_vm() {
  VmConfig cfg;
  cfg.memory.ram_bytes = 256 * kMiB;
  cfg.memory.page_bytes = kMiB;
  cfg.memory.base_used_bytes = 32 * kMiB;
  cfg.cache.capacity_bytes = 64 * kMiB;
  cfg.cache.dirty_limit_bytes = 16 * kMiB;
  cfg.cache.write_Bps = 100e6;
  cfg.cache.read_Bps = 1e9;
  cfg.compute_slice_s = 0.1;
  return cfg;
}

struct VmFixture {
  sim::Simulator s;
  Cluster cluster;
  core::MigrationManager mgr;
  VmInstance vm;
  VmFixture()
      : cluster(s, small_cluster()),
        mgr(s, cluster, /*home=*/0, /*vm_id=*/0),
        vm(s, cluster, 0, 0, mgr, small_vm()) {}
};

TEST(VmInstance, FileWriteReachesLocalReplica) {
  VmFixture f;
  f.s.spawn([](VmInstance* v) -> sim::Task {
    co_await v->file_write(0, 4 * kMiB);
    co_await v->fsync();
  }(&f.vm));
  f.s.run();
  EXPECT_EQ(f.mgr.replica().modified_count(), 4u);
  EXPECT_DOUBLE_EQ(f.vm.io_stats().bytes_written, 4.0 * kMiB);
}

TEST(VmInstance, ReadOfUntouchedChunkFetchesFromRepository) {
  VmFixture f;
  // Chunk 9 lives on storage node 9 % 4 = 1, a remote node (the VM is on
  // node 0), so the fetch is visible as repo-read network traffic.
  f.s.spawn([](VmInstance* v) -> sim::Task { co_await v->file_read(9 * kMiB, kMiB); }(
      &f.vm));
  f.s.run();
  EXPECT_EQ(f.mgr.repo_fetches(), 1u);
  EXPECT_TRUE(f.mgr.replica().present(9));
  EXPECT_FALSE(f.mgr.replica().modified(9));  // base content, not a local change
  EXPECT_GT(f.cluster.network().traffic_bytes(net::TrafficClass::kRepoRead), 0.0);
}

TEST(VmInstance, RereadServedLocally) {
  VmFixture f;
  f.s.spawn([](VmInstance* v) -> sim::Task {
    co_await v->file_read(8 * kMiB, kMiB);
    co_await v->file_read(8 * kMiB, kMiB);
  }(&f.vm));
  f.s.run();
  EXPECT_EQ(f.mgr.repo_fetches(), 1u);  // second read: guest cache hit
}

TEST(VmInstance, ComputeAccruesCpuSeconds) {
  VmFixture f;
  f.s.spawn([](VmInstance* v) -> sim::Task { co_await v->compute(2.5); }(&f.vm));
  f.s.run();
  EXPECT_NEAR(f.vm.cpu_seconds(), 2.5, 1e-9);
  EXPECT_NEAR(f.s.now(), 2.5, 1e-9);
}

TEST(VmInstance, ComputeDirtiesMemoryAtRate) {
  VmFixture f;
  const auto dirty_before = f.vm.memory().dirty_bytes();
  f.s.spawn([](VmInstance* v) -> sim::Task {
    co_await v->compute(1.0, /*dirty_Bps=*/16.0 * kMiB, /*ws_bytes=*/64 * kMiB);
  }(&f.vm));
  f.s.run();
  const auto dirtied = f.vm.memory().dirty_bytes() - dirty_before;
  EXPECT_GT(dirtied, 8 * kMiB);   // most of the 16 MiB (collisions possible)
  EXPECT_LE(dirtied, 16 * kMiB);
}

TEST(VmInstance, PauseStallsComputeUntilResume) {
  VmFixture f;
  f.vm.pause();
  double done_at = -1;
  f.s.spawn([](VmInstance* v, double* d, sim::Simulator* s) -> sim::Task {
    co_await v->compute(1.0);
    *d = s->now();
  }(&f.vm, &done_at, &f.s));
  f.s.schedule(5.0, [&] { f.vm.resume(); });
  f.s.run();
  EXPECT_NEAR(done_at, 6.0, 1e-9);
  EXPECT_NEAR(f.vm.cpu_seconds(), 1.0, 1e-9);
}

TEST(VmInstance, PauseStallsNewFileOps) {
  VmFixture f;
  f.vm.pause();
  double done_at = -1;
  f.s.spawn([](VmInstance* v, double* d, sim::Simulator* s) -> sim::Task {
    co_await v->file_write(0, kMiB);
    *d = s->now();
  }(&f.vm, &done_at, &f.s));
  f.s.schedule(2.0, [&] { f.vm.resume(); });
  f.s.run();
  EXPECT_GE(done_at, 2.0);
}

TEST(VmInstance, CacheWritesDirtyGuestMemory) {
  VmFixture f;
  f.vm.memory().begin_full_round();  // clear the baseline dirtiness
  f.s.spawn([](VmInstance* v) -> sim::Task { co_await v->file_write(0, 8 * kMiB); }(
      &f.vm));
  f.s.run();
  // 8 chunks entered the page cache -> at least 8 MiB of guest pages dirty.
  EXPECT_GE(f.vm.memory().dirty_bytes(), 8 * kMiB);
}

TEST(VmInstance, IoStatsTrackWallTime) {
  VmFixture f;
  f.s.spawn([](VmInstance* v) -> sim::Task { co_await v->file_write(0, 10 * kMiB); }(
      &f.vm));
  f.s.run();
  const auto& io = f.vm.io_stats();
  EXPECT_GT(io.write_time_s, 0.0);
  EXPECT_NEAR(io.write_Bps(), 100e6, 20e6);  // guest-bus limited
}

TEST(VmInstance, NodeFollowsSetNode) {
  VmFixture f;
  EXPECT_EQ(f.vm.node(), 0u);
  f.vm.set_node(2);
  EXPECT_EQ(f.vm.node(), 2u);
}

}  // namespace
}  // namespace hm::vm

namespace hm::vm {
namespace {

TEST(VmInstance, DropFileCacheReleasesGuestMemory) {
  VmFixture f;
  f.s.spawn([](VmInstance* v) -> sim::Task {
    co_await v->file_write(0, 8 * kMiB);
    co_await v->fsync();
  }(&f.vm));
  f.s.run();
  const auto used_before = f.vm.memory().used_bytes();
  f.vm.drop_file_cache(0, 8 * kMiB);
  EXPECT_LT(f.vm.memory().used_bytes(), used_before);
}

TEST(VmInstance, DroppedRangeMissesOnReread) {
  VmFixture f;
  f.s.spawn([](VmInstance* v) -> sim::Task {
    co_await v->file_write(0, 2 * kMiB);
    co_await v->fsync();
  }(&f.vm));
  f.s.run();
  f.vm.drop_file_cache(0, 2 * kMiB);
  const auto misses_before = f.vm.page_cache().misses();
  f.s.spawn([](VmInstance* v) -> sim::Task { co_await v->file_read(0, 2 * kMiB); }(&f.vm));
  f.s.run();
  EXPECT_EQ(f.vm.page_cache().misses(), misses_before + 2);
}

TEST(VmInstance, ComputeSlowedByNodeLoad) {
  VmFixture f;
  f.cluster.node(0).add_cpu_load(0.5);
  double done_at = -1;
  f.s.spawn([](VmInstance* v, double* d, sim::Simulator* s) -> sim::Task {
    co_await v->compute(1.0);
    *d = s->now();
  }(&f.vm, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 2.0, 1e-6);
  EXPECT_NEAR(f.vm.cpu_seconds(), 1.0, 1e-9);  // guest work unchanged
}

}  // namespace
}  // namespace hm::vm
