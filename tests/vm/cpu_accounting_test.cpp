// Host CPU accounting: background load (migration machinery, PVFS client)
// stretches guest compute in wall-clock time, with exact integral accounting
// so short bursts are never aliased away.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "vm/compute_node.h"

namespace hm::vm {
namespace {

struct CpuFixture {
  sim::Simulator s;
  ComputeNode node;
  CpuFixture() : node(s, 0, storage::DiskConfig{}) {}

  double run_consume(double dt) {
    double done_at = -1;
    s.spawn([](ComputeNode* n, double d, double* out, sim::Simulator* sp) -> sim::Task {
      co_await n->consume_cpu(d);
      *out = sp->now();
    }(&node, dt, &done_at, &s));
    s.run();
    return done_at;
  }
};

TEST(CpuAccounting, NoLoadRunsAtFullSpeed) {
  CpuFixture f;
  EXPECT_NEAR(f.run_consume(2.0), 2.0, 1e-9);
}

TEST(CpuAccounting, ConstantLoadStretchesWallTime) {
  CpuFixture f;
  f.node.add_cpu_load(0.5);
  EXPECT_NEAR(f.run_consume(1.0), 2.0, 1e-9);  // 50% share -> 2x wall time
}

TEST(CpuAccounting, LoadIsFlooredAtTwentyPercentShare) {
  CpuFixture f;
  f.node.add_cpu_load(2.0);  // overload
  EXPECT_NEAR(f.run_consume(1.0), 5.0, 1e-9);  // share floored at 0.2
}

TEST(CpuAccounting, NegativeLoadClampsToZero) {
  CpuFixture f;
  f.node.remove_cpu_load(0.7);
  EXPECT_DOUBLE_EQ(f.node.background_cpu_load(), 0.0);
  EXPECT_NEAR(f.run_consume(1.0), 1.0, 1e-9);
}

TEST(CpuAccounting, MidComputeLoadChangeIsAccounted) {
  CpuFixture f;
  double done_at = -1;
  f.s.spawn([](ComputeNode* n, double* out, sim::Simulator* sp) -> sim::Task {
    co_await n->consume_cpu(2.0);
    *out = sp->now();
  }(&f.node, &done_at, &f.s));
  // Load appears 1 second in: first second at full speed (1.0 work), the
  // remaining 1.0 of work at 50% -> 2 more wall seconds.
  f.s.schedule(1.0, [&] { f.node.add_cpu_load(0.5); });
  f.s.run();
  EXPECT_NEAR(done_at, 3.0, 1e-6);
}

TEST(CpuAccounting, ShortBurstsAreNotAliased) {
  // A 10 ms burst of 50% load inside a 1 s compute must cost exactly 10 ms
  // of extra wall time — sampling at compute-slice boundaries would miss it.
  CpuFixture f;
  double done_at = -1;
  f.s.spawn([](ComputeNode* n, double* out, sim::Simulator* sp) -> sim::Task {
    co_await n->consume_cpu(1.0);
    *out = sp->now();
  }(&f.node, &done_at, &f.s));
  f.s.schedule(0.20, [&] { f.node.add_cpu_load(0.5); });
  f.s.schedule(0.21, [&] { f.node.remove_cpu_load(0.5); });
  f.s.run();
  EXPECT_NEAR(done_at, 1.005, 1e-4);
}

TEST(CpuAccounting, ManyBurstsAccumulate) {
  CpuFixture f;
  double done_at = -1;
  f.s.spawn([](ComputeNode* n, double* out, sim::Simulator* sp) -> sim::Task {
    co_await n->consume_cpu(1.0);
    *out = sp->now();
  }(&f.node, &done_at, &f.s));
  // 20 bursts of 10 ms at 50% load: 0.2 s under load -> 0.1 s of lost work.
  for (int i = 0; i < 20; ++i) {
    f.s.schedule(0.03 * i, [&] { f.node.add_cpu_load(0.5); });
    f.s.schedule(0.03 * i + 0.01, [&] { f.node.remove_cpu_load(0.5); });
  }
  f.s.run();
  EXPECT_NEAR(done_at, 1.1, 2e-2);
}

TEST(CpuAccounting, GuardReleasesOnDestruction) {
  CpuFixture f;
  {
    CpuLoadGuard g(f.node, 0.3);
    EXPECT_DOUBLE_EQ(f.node.background_cpu_load(), 0.3);
  }
  EXPECT_DOUBLE_EQ(f.node.background_cpu_load(), 0.0);
}

TEST(CpuAccounting, GuardReleaseIsIdempotent) {
  CpuFixture f;
  CpuLoadGuard g(f.node, 0.3);
  g.release();
  g.release();
  EXPECT_DOUBLE_EQ(f.node.background_cpu_load(), 0.0);
}

}  // namespace
}  // namespace hm::vm
