#include "vm/memory.h"

#include <gtest/gtest.h>

namespace hm::vm {
namespace {

constexpr std::uint64_t kMiB = 1024ULL * 1024;

GuestMemoryConfig small_cfg() {
  GuestMemoryConfig cfg;
  cfg.ram_bytes = 64 * kMiB;
  cfg.page_bytes = kMiB;
  cfg.base_used_bytes = 8 * kMiB;
  return cfg;
}

TEST(GuestMemory, BaselineIsUsedAndDirty) {
  GuestMemory m(small_cfg());
  EXPECT_EQ(m.used_bytes(), 8 * kMiB);
  EXPECT_EQ(m.dirty_bytes(), 8 * kMiB);
  EXPECT_EQ(m.pages(), 64u);
}

TEST(GuestMemory, TouchRangeMarksWholePages) {
  GuestMemory m(small_cfg());
  m.touch_range(10 * kMiB + 1, 1);  // one byte inside page 10
  EXPECT_EQ(m.used_bytes(), 9 * kMiB);
  m.touch_range(20 * kMiB - 1, 2);  // straddles pages 19 and 20
  EXPECT_EQ(m.used_bytes(), 11 * kMiB);
}

TEST(GuestMemory, TouchBeyondRamIsClamped) {
  GuestMemory m(small_cfg());
  m.touch_range(63 * kMiB, 10 * kMiB);
  EXPECT_EQ(m.used_bytes(), 9 * kMiB);  // only the last page added
  m.touch_range(100 * kMiB, kMiB);      // entirely out of range: ignored
  EXPECT_EQ(m.used_bytes(), 9 * kMiB);
}

TEST(GuestMemory, FullRoundReturnsUsedAndClearsDirty) {
  GuestMemory m(small_cfg());
  m.touch_range(30 * kMiB, 2 * kMiB);
  EXPECT_EQ(m.begin_full_round(), 10 * kMiB);
  EXPECT_EQ(m.dirty_bytes(), 0u);
  EXPECT_EQ(m.used_bytes(), 10 * kMiB);  // used survives
}

TEST(GuestMemory, DirtyRoundsAccumulateBetweenSnapshots) {
  GuestMemory m(small_cfg());
  m.begin_full_round();
  m.touch_range(0, 3 * kMiB);  // re-dirty 3 already-used pages
  EXPECT_EQ(m.take_dirty_round(), 3 * kMiB);
  EXPECT_EQ(m.take_dirty_round(), 0u);  // nothing new
}

TEST(GuestMemory, RewritingSamePageCountsOnce) {
  GuestMemory m(small_cfg());
  m.begin_full_round();
  for (int i = 0; i < 100; ++i) m.touch_range(5 * kMiB, kMiB);
  EXPECT_EQ(m.take_dirty_round(), kMiB);
}

TEST(GuestMemory, RandomTouchStaysInWorkingSet) {
  GuestMemory m(small_cfg());
  m.begin_full_round();
  sim::Rng rng(1);
  m.touch_random(/*ws_offset=*/16 * kMiB, /*ws_len=*/8 * kMiB, /*len=*/64 * kMiB, rng);
  // At most the whole working set can be dirtied per call.
  EXPECT_LE(m.take_dirty_round(), 8 * kMiB);
  EXPECT_EQ(m.used_bytes(), 8 * kMiB + 8 * kMiB);  // base + ws fully touched
}

TEST(GuestMemory, RandomTouchSmallAmountDirtiesFewPages) {
  GuestMemory m(small_cfg());
  m.begin_full_round();
  sim::Rng rng(1);
  m.touch_random(16 * kMiB, 32 * kMiB, kMiB, rng);
  EXPECT_EQ(m.take_dirty_round(), kMiB);  // one page worth
}

TEST(GuestMemory, DirtyNeverExceedsUsed) {
  GuestMemory m(small_cfg());
  sim::Rng rng(2);
  m.touch_random(8 * kMiB, 16 * kMiB, 4 * kMiB, rng);
  EXPECT_LE(m.dirty_bytes(), m.used_bytes());
}

}  // namespace
}  // namespace hm::vm

namespace hm::vm {
namespace {

TEST(GuestMemoryRelease, ReleaseFreesUsedAndDirty) {
  GuestMemory m(small_cfg());
  m.touch_range(20 * kMiB, 4 * kMiB);
  EXPECT_EQ(m.used_bytes(), 12 * kMiB);
  m.release_range(20 * kMiB, 4 * kMiB);
  EXPECT_EQ(m.used_bytes(), 8 * kMiB);   // back to the baseline
  EXPECT_EQ(m.dirty_bytes(), 8 * kMiB);  // released pages are not dirty
}

TEST(GuestMemoryRelease, ReleaseOfUntouchedRangeIsNoop) {
  GuestMemory m(small_cfg());
  m.release_range(40 * kMiB, 8 * kMiB);
  EXPECT_EQ(m.used_bytes(), 8 * kMiB);
}

TEST(GuestMemoryRelease, ReleasedPagesNotMigrated) {
  GuestMemory m(small_cfg());
  m.touch_range(30 * kMiB, 10 * kMiB);
  m.release_range(30 * kMiB, 10 * kMiB);
  EXPECT_EQ(m.begin_full_round(), 8 * kMiB);  // round 0 skips freed pages
}

TEST(GuestMemoryRelease, RetouchAfterReleaseWorks) {
  GuestMemory m(small_cfg());
  m.touch_range(30 * kMiB, kMiB);
  m.release_range(30 * kMiB, kMiB);
  m.touch_range(30 * kMiB, kMiB);
  EXPECT_EQ(m.used_bytes(), 9 * kMiB);
}

}  // namespace
}  // namespace hm::vm

// for_each_dirty_page is the iteration hook trace-driven consumers
// (workloads/trace.h snapshots, migration rounds) lean on: pin its
// word-boundary behaviour, the empty/full cases, and the semantics of
// re-dirtying pages DURING iteration.
namespace hm::vm {
namespace {

GuestMemoryConfig bare_cfg() {
  GuestMemoryConfig cfg;
  cfg.ram_bytes = 128 * kMiB;  // 128 pages: two full bitmap words
  cfg.page_bytes = kMiB;
  cfg.base_used_bytes = 0;  // start with nothing dirty
  return cfg;
}

std::vector<std::uint64_t> dirty_pages(const GuestMemory& m) {
  std::vector<std::uint64_t> out;
  m.for_each_dirty_page([&](std::uint64_t p) { out.push_back(p); });
  return out;
}

TEST(GuestMemoryForEachDirty, EmptyBitmapVisitsNothing) {
  GuestMemory m(bare_cfg());
  EXPECT_TRUE(dirty_pages(m).empty());
}

TEST(GuestMemoryForEachDirty, WordBoundaryPages63To65) {
  GuestMemory m(bare_cfg());
  m.touch_range(63 * kMiB, 3 * kMiB);  // pages 63 (word 0) and 64, 65 (word 1)
  EXPECT_EQ(dirty_pages(m), (std::vector<std::uint64_t>{63, 64, 65}));
}

TEST(GuestMemoryForEachDirty, FullBitmapVisitsEveryPageAscending) {
  GuestMemory m(bare_cfg());
  m.touch_range(0, 128 * kMiB);
  const std::vector<std::uint64_t> pages = dirty_pages(m);
  ASSERT_EQ(pages.size(), 128u);
  for (std::uint64_t i = 0; i < 128; ++i) EXPECT_EQ(pages[i], i);
}

TEST(GuestMemoryForEachDirty, IterationDoesNotClear) {
  GuestMemory m(bare_cfg());
  m.touch_range(10 * kMiB, 2 * kMiB);
  (void)dirty_pages(m);
  EXPECT_EQ(m.dirty_bytes(), 2 * kMiB);
  EXPECT_EQ(dirty_pages(m).size(), 2u);  // second pass sees the same set
}

TEST(GuestMemoryForEachDirty, RedirtyDuringIteration) {
  // The scan walks packed words and iterates a SNAPSHOT of each word taken
  // when it reaches it: a page dirtied mid-iteration is visited iff its
  // word has not been reached yet. Pin both directions so trace consumers
  // can rely on it.
  GuestMemory m(bare_cfg());
  m.touch_range(1 * kMiB, kMiB);   // page 1 (word 0)
  m.touch_range(70 * kMiB, kMiB);  // page 70 (word 1)
  std::vector<std::uint64_t> visited;
  m.for_each_dirty_page([&](std::uint64_t p) {
    visited.push_back(p);
    if (p == 1) {
      m.touch_range(0, kMiB);            // earlier bit in the CURRENT word: skipped
      m.touch_range(100 * kMiB, kMiB);   // bit in a LATER word: visited
    }
  });
  EXPECT_EQ(visited, (std::vector<std::uint64_t>{1, 70, 100}));
  EXPECT_EQ(m.dirty_bytes(), 4 * kMiB);  // 0, 1, 70, 100 all dirty afterwards
}

}  // namespace
}  // namespace hm::vm
