#include "vm/hypervisor.h"

#include <gtest/gtest.h>

#include "core/hybrid_migrator.h"
#include "core/metrics.h"
#include "sim/simulator.h"

namespace hm::vm {
namespace {

using storage::kMiB;

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.nic_Bps = 100e6;
  cfg.image = storage::ImageConfig{256 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.disk = storage::DiskConfig{55e6, 0.0};
  return cfg;
}

VmConfig small_vm() {
  VmConfig cfg;
  cfg.memory.ram_bytes = 256 * kMiB;
  cfg.memory.page_bytes = kMiB;
  cfg.memory.base_used_bytes = 50 * kMiB;
  cfg.cache.capacity_bytes = 64 * kMiB;
  cfg.cache.dirty_limit_bytes = 16 * kMiB;
  cfg.cache.write_Bps = 100e6;
  return cfg;
}

struct HvFixture {
  sim::Simulator s;
  Cluster cluster;
  core::MigrationManager mgr;
  VmInstance vm;
  core::Metrics metrics;
  HvFixture()
      : cluster(s, small_cluster()),
        mgr(s, cluster, 0, 0),
        vm(s, cluster, 0, 0, mgr, small_vm()) {}

  core::MigrationRecord& migrate_now(HypervisorConfig hv = {},
                                     core::HybridConfig hc = {}) {
    auto& rec = metrics.new_migration(0);
    rec.t_request = s.now();
    auto* session = new core::HybridSession(s, cluster, &mgr, /*dst=*/1, rec, hc);
    session_.reset(session);
    mgr.begin_migration(session);
    session->start();
    s.spawn([](sim::Simulator* sp, Cluster* cl, VmInstance* v,
               core::StorageMigrationSession* ss, HypervisorConfig cfg,
               core::MigrationRecord* r, bool* done) -> sim::Task {
      co_await Hypervisor::live_migrate(*sp, cl->network(), *v, 1, *ss, cfg, *r);
      *done = true;
    }(&s, &cluster, &vm, session, hv, &rec, &done_));
    return rec;
  }

  std::unique_ptr<core::StorageMigrationSession> session_;
  bool done_ = false;
};

TEST(Hypervisor, IdleVmMigratesQuickly) {
  HvFixture f;
  auto& rec = f.migrate_now();
  f.s.run();
  ASSERT_TRUE(f.done_);
  // 50 MiB used memory at 100 MB/s -> roughly half a second.
  EXPECT_GT(rec.migration_time(), 0.4);
  EXPECT_LT(rec.migration_time(), 2.0);
  EXPECT_GE(rec.memory_rounds, 1);
}

TEST(Hypervisor, DowntimeStaysNearTarget) {
  HvFixture f;
  HypervisorConfig hv;
  hv.downtime_target_s = 0.03;
  auto& rec = f.migrate_now(hv);
  f.s.run();
  ASSERT_TRUE(f.done_);
  // Idle guest: the stop-and-copy round only carries the device state plus
  // at most downtime_target worth of dirty memory.
  EXPECT_LT(rec.downtime_s, 0.1);
  EXPECT_GT(rec.downtime_s, 0.0);
}

TEST(Hypervisor, ControlTransferMovesVmToDestination) {
  HvFixture f;
  f.migrate_now();
  f.s.run();
  EXPECT_EQ(f.vm.node(), 1u);
  EXPECT_EQ(f.mgr.node(), 1u);
  EXPECT_TRUE(f.vm.running());
}

TEST(Hypervisor, MemoryBytesAtLeastUsedMemory) {
  HvFixture f;
  auto& rec = f.migrate_now();
  f.s.run();
  EXPECT_GE(rec.memory_bytes_sent, 50.0 * kMiB);
  EXPECT_DOUBLE_EQ(
      f.cluster.network().traffic_bytes(net::TrafficClass::kMemory),
      rec.memory_bytes_sent);
}

sim::Task dirty_forever(VmInstance* vm) {
  for (;;) co_await vm->compute(0.1, /*dirty_Bps=*/150e6, /*ws_bytes=*/128 * kMiB);
}

TEST(Hypervisor, NonConvergingMemoryForcedStopAfterMaxRounds) {
  HvFixture f;
  // Dirty faster than the NIC can ship: pre-copy cannot converge.
  f.s.spawn(dirty_forever(&f.vm));
  HypervisorConfig hv;
  hv.max_rounds = 5;
  auto& rec = f.migrate_now(hv);
  const bool finished = f.s.run_while_pending([&] { return f.done_; });
  ASSERT_TRUE(finished);
  EXPECT_EQ(rec.memory_rounds, 5);
  // Forced stop ships a large residue: downtime blows past the target —
  // exactly the pathology the paper describes for pre-copy under pressure.
  EXPECT_GT(rec.downtime_s, 0.1);
}

TEST(Hypervisor, MigrationSpeedCapSlowsTransfer) {
  HvFixture f;
  HypervisorConfig hv;
  hv.migration_speed_Bps = 10e6;
  auto& rec = f.migrate_now(hv);
  f.s.run_while_pending([&] { return f.done_; });
  // 50 MiB at 10 MB/s >= 5 seconds.
  EXPECT_GT(rec.migration_time(), 5.0);
}

TEST(Hypervisor, RecordTimestampsAreOrdered) {
  HvFixture f;
  auto& rec = f.migrate_now();
  f.s.run();
  EXPECT_LE(rec.t_request, rec.t_control_transfer);
  EXPECT_LE(rec.t_control_transfer, rec.t_source_released);
  EXPECT_GT(rec.downtime_s, 0.0);
}

}  // namespace
}  // namespace hm::vm
