#include "storage/pvfs.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace hm::storage {
namespace {

struct PvfsFixture {
  sim::Simulator s;
  net::FlowNetwork network;
  Pvfs pvfs;
  net::NodeId client;
  std::vector<Disk*> disks;
  std::vector<std::unique_ptr<Disk>> disk_storage;

  explicit PvfsFixture(int servers = 4, PvfsConfig cfg = make_cfg())
      : network(s, net::FlowNetworkConfig{1e12, 0.0, 8e9}), pvfs(s, network, cfg) {
    client = network.add_node(100e6);
    for (int i = 0; i < servers; ++i) {
      disk_storage.push_back(std::make_unique<Disk>(s, DiskConfig{55e6, 0.0}));
      pvfs.add_server(network.add_node(100e6), disk_storage.back().get());
    }
  }
  static PvfsConfig make_cfg() {
    PvfsConfig cfg;
    cfg.stripe_bytes = 64 * static_cast<std::uint32_t>(kKiB);
    cfg.rpc_bytes = 1024;
    return cfg;
  }
};

sim::Task do_write(Pvfs* p, net::NodeId c, std::uint64_t off, std::uint64_t len,
                   double* done_at, sim::Simulator* s) {
  co_await p->write(c, off, len);
  *done_at = s->now();
}
sim::Task do_read(Pvfs* p, net::NodeId c, std::uint64_t off, std::uint64_t len,
                  double* done_at, sim::Simulator* s) {
  co_await p->read(c, off, len);
  *done_at = s->now();
}

TEST(Pvfs, WriteStripesAcrossServers) {
  PvfsFixture f;
  double done_at = -1;
  // 256 KB write = 4 stripes of 64 KB -> one per server.
  f.s.spawn(do_write(&f.pvfs, f.client, 0, 256 * kKiB, &done_at, &f.s));
  f.s.run();
  for (auto& d : f.disk_storage)
    EXPECT_DOUBLE_EQ(d->bytes_written(), 64.0 * kKiB);
  EXPECT_EQ(f.pvfs.ops(), 1u);
  EXPECT_DOUBLE_EQ(f.pvfs.bytes_written(), 256.0 * kKiB);
}

TEST(Pvfs, ReadReturnsOverNetwork) {
  PvfsFixture f;
  double done_at = -1;
  f.s.spawn(do_read(&f.pvfs, f.client, 0, 128 * kKiB, &done_at, &f.s));
  f.s.run();
  EXPECT_DOUBLE_EQ(f.network.traffic_bytes(net::TrafficClass::kPvfsData), 128.0 * kKiB);
  EXPECT_DOUBLE_EQ(f.pvfs.bytes_read(), 128.0 * kKiB);
}

TEST(Pvfs, MetadataRpcCharged) {
  PvfsFixture f;
  double done_at = -1;
  f.s.spawn(do_write(&f.pvfs, f.client, 0, 64 * kKiB, &done_at, &f.s));
  f.s.run();
  EXPECT_DOUBLE_EQ(f.network.traffic_bytes(net::TrafficClass::kControl), 2.0 * 1024);
}

TEST(Pvfs, UnalignedWriteCoversCorrectStripes) {
  PvfsFixture f;
  double done_at = -1;
  // 96 KB starting at 32 KB: stripe 0 gets 32 KB, stripe 1 gets 64 KB.
  f.s.spawn(do_write(&f.pvfs, f.client, 32 * kKiB, 96 * kKiB, &done_at, &f.s));
  f.s.run();
  EXPECT_DOUBLE_EQ(f.disk_storage[0]->bytes_written(), 32.0 * kKiB);
  EXPECT_DOUBLE_EQ(f.disk_storage[1]->bytes_written(), 64.0 * kKiB);
}

TEST(Pvfs, NoClientCacheMeansEveryOpIsRemote) {
  PvfsFixture f;
  double d1 = -1, d2 = -1;
  f.s.spawn(do_read(&f.pvfs, f.client, 0, 64 * kKiB, &d1, &f.s));
  f.s.run();
  f.s.spawn(do_read(&f.pvfs, f.client, 0, 64 * kKiB, &d2, &f.s));
  f.s.run();
  // Same offset read twice -> twice the traffic (PVFS has no client cache).
  EXPECT_DOUBLE_EQ(f.network.traffic_bytes(net::TrafficClass::kPvfsData), 128.0 * kKiB);
}

TEST(PvfsBackend, ChunkOpsMapToFileExtents) {
  PvfsFixture f;
  ImageConfig img{16 * kMiB, static_cast<std::uint32_t>(kMiB)};
  PvfsBackend backend(f.pvfs, img, f.client);
  f.s.spawn([](PvfsBackend* b) -> sim::Task {
    co_await b->backend_write_chunk(2);
    co_await b->backend_read_chunk(2);
  }(&backend));
  f.s.run();
  EXPECT_DOUBLE_EQ(f.pvfs.bytes_read(), 1.0 * kMiB);
  // Write includes qcow2 allocation metadata on first touch.
  EXPECT_GT(f.pvfs.bytes_written(), 1.0 * kMiB);
  EXPECT_TRUE(backend.cow().allocated(2));
}

TEST(PvfsBackend, SecondWriteSkipsAllocationMetadata) {
  PvfsFixture f;
  ImageConfig img{16 * kMiB, static_cast<std::uint32_t>(kMiB)};
  PvfsBackend backend(f.pvfs, img, f.client);
  f.s.spawn([](PvfsBackend* b) -> sim::Task {
    co_await b->backend_write_chunk(2);
  }(&backend));
  f.s.run();
  const double after_first = f.pvfs.bytes_written();
  f.s.spawn([](PvfsBackend* b) -> sim::Task {
    co_await b->backend_write_chunk(2);
  }(&backend));
  f.s.run();
  EXPECT_DOUBLE_EQ(f.pvfs.bytes_written() - after_first, 1.0 * kMiB);
}

TEST(PvfsBackend, ClientNodeFollowsMigration) {
  PvfsFixture f;
  ImageConfig img{16 * kMiB, static_cast<std::uint32_t>(kMiB)};
  PvfsBackend backend(f.pvfs, img, f.client);
  const net::NodeId dest = f.network.add_node(100e6);
  backend.set_client_node(dest);
  EXPECT_EQ(backend.client_node(), dest);
}

}  // namespace
}  // namespace hm::storage
