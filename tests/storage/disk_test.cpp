#include "storage/disk.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace hm::storage {
namespace {

sim::Task do_read(Disk* d, double bytes, double* done_at, sim::Simulator* s) {
  co_await d->read(bytes);
  *done_at = s->now();
}
sim::Task do_write(Disk* d, double bytes, double* done_at, sim::Simulator* s) {
  co_await d->write(bytes);
  *done_at = s->now();
}

TEST(Disk, ReadTimeIsLatencyPlusBandwidth) {
  sim::Simulator s;
  Disk d(s, DiskConfig{100e6, 0.001});
  double done_at = -1;
  s.spawn(do_read(&d, 10e6, &done_at, &s));
  s.run();
  EXPECT_NEAR(done_at, 0.001 + 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(d.bytes_read(), 10e6);
}

TEST(Disk, WriteAccountsSeparately) {
  sim::Simulator s;
  Disk d(s, DiskConfig{100e6, 0.0});
  double done_at = -1;
  s.spawn(do_write(&d, 5e6, &done_at, &s));
  s.run();
  EXPECT_DOUBLE_EQ(d.bytes_written(), 5e6);
  EXPECT_DOUBLE_EQ(d.bytes_read(), 0.0);
}

TEST(Disk, RequestsServeFifo) {
  sim::Simulator s;
  Disk d(s, DiskConfig{100e6, 0.0});
  double r1 = -1, r2 = -1, r3 = -1;
  s.spawn(do_read(&d, 100e6, &r1, &s));   // 1s
  s.spawn(do_write(&d, 50e6, &r2, &s));   // +0.5s
  s.spawn(do_read(&d, 50e6, &r3, &s));    // +0.5s
  s.run();
  EXPECT_NEAR(r1, 1.0, 1e-9);
  EXPECT_NEAR(r2, 1.5, 1e-9);
  EXPECT_NEAR(r3, 2.0, 1e-9);
}

TEST(Disk, BusyTimeAccumulates) {
  sim::Simulator s;
  Disk d(s, DiskConfig{100e6, 0.001});
  double r1 = -1, r2 = -1;
  s.spawn(do_read(&d, 100e6, &r1, &s));
  s.spawn(do_read(&d, 100e6, &r2, &s));
  s.run();
  EXPECT_NEAR(d.busy_seconds(), 2.002, 1e-9);
  EXPECT_EQ(d.requests_served(), 2u);
}

TEST(Disk, ZeroByteIoIsFree) {
  sim::Simulator s;
  Disk d(s);
  double done_at = -1;
  s.spawn(do_read(&d, 0, &done_at, &s));
  s.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
  EXPECT_EQ(d.requests_served(), 0u);
}

TEST(Disk, QueueLengthVisibleUnderLoad) {
  sim::Simulator s;
  Disk d(s, DiskConfig{1e6, 0.0});
  double r[4];
  for (auto& x : r) s.spawn(do_read(&d, 1e6, &x, &s));
  s.run_until(0.5);
  EXPECT_EQ(d.queue_length(), 3u);
  s.run();
}

TEST(Disk, DefaultConfigMatchesPaperTestbed) {
  sim::Simulator s;
  Disk d(s);
  EXPECT_DOUBLE_EQ(d.config().rate_Bps, 55.0e6);  // graphene SATA II
}

}  // namespace
}  // namespace hm::storage
