#include "storage/cow_image.h"

#include <gtest/gtest.h>

namespace hm::storage {
namespace {

TEST(CowImage, StartsUnallocated) {
  CowImage cow(ImageConfig{16 * kMiB, static_cast<std::uint32_t>(kMiB)});
  EXPECT_EQ(cow.allocated_count(), 0u);
  EXPECT_FALSE(cow.allocated(0));
}

TEST(CowImage, FirstWriteAllocatesAndChargesMetadata) {
  CowImage cow(ImageConfig{16 * kMiB, static_cast<std::uint32_t>(kMiB)});
  const std::uint64_t meta = cow.on_write(3);
  EXPECT_GT(meta, 0u);
  EXPECT_TRUE(cow.allocated(3));
  EXPECT_EQ(cow.allocated_count(), 1u);
  EXPECT_EQ(cow.metadata_bytes_total(), meta);
}

TEST(CowImage, OverwriteIsMetadataFree) {
  CowImage cow(ImageConfig{16 * kMiB, static_cast<std::uint32_t>(kMiB)});
  cow.on_write(3);
  EXPECT_EQ(cow.on_write(3), 0u);
  EXPECT_EQ(cow.allocated_count(), 1u);
}

TEST(CowImage, MetadataBytesConfigurable) {
  CowImageConfig cfg;
  cfg.metadata_bytes_per_alloc = 123;
  CowImage cow(ImageConfig{16 * kMiB, static_cast<std::uint32_t>(kMiB)}, cfg);
  EXPECT_EQ(cow.on_write(0), 123u);
  EXPECT_EQ(cow.on_write(1), 123u);
  EXPECT_EQ(cow.metadata_bytes_total(), 246u);
}

TEST(CowImage, IndependentChunksTrackIndependently) {
  CowImage cow(ImageConfig{16 * kMiB, static_cast<std::uint32_t>(kMiB)});
  for (ChunkId c = 0; c < 16; c += 2) cow.on_write(c);
  EXPECT_EQ(cow.allocated_count(), 8u);
  for (ChunkId c = 0; c < 16; ++c) EXPECT_EQ(cow.allocated(c), c % 2 == 0);
}

}  // namespace
}  // namespace hm::storage
