#include "storage/page_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace hm::storage {
namespace {

/// Backend recording chunk traffic with a configurable service time.
class FakeBackend final : public BlockBackend {
 public:
  FakeBackend(sim::Simulator& s, double op_s) : s_(s), op_s_(op_s) {}
  sim::Task backend_read_chunk(ChunkId c) override {
    reads.push_back(c);
    co_await s_.delay(op_s_);
  }
  sim::Task backend_write_chunk(ChunkId c) override {
    co_await s_.delay(op_s_);
    writes.push_back(c);
  }
  std::vector<ChunkId> reads, writes;

 private:
  sim::Simulator& s_;
  double op_s_;
};

struct CacheFixture {
  sim::Simulator s;
  FakeBackend backend;
  ImageConfig img{16 * kMiB, static_cast<std::uint32_t>(kMiB)};
  PageCache cache;
  explicit CacheFixture(PageCacheConfig cfg = make_cfg(), double backend_op_s = 0.001)
      : backend(s, backend_op_s), cache(s, backend, img, cfg) {}

  static PageCacheConfig make_cfg() {
    PageCacheConfig cfg;
    cfg.capacity_bytes = 8 * kMiB;     // 8 chunks
    cfg.dirty_limit_bytes = 4 * kMiB;  // 4 chunks
    cfg.write_Bps = 100e6;
    cfg.read_Bps = 1e9;
    return cfg;
  }

  void run_write(ChunkId c) {
    s.spawn([](PageCache* pc, ChunkId ch) -> sim::Task { co_await pc->write_chunk(ch); }(
        &cache, c));
    s.run();
  }
  void run_read(ChunkId c) {
    s.spawn([](PageCache* pc, ChunkId ch) -> sim::Task { co_await pc->read_chunk(ch); }(
        &cache, c));
    s.run();
  }
  void run_fsync() {
    s.spawn([](PageCache* pc) -> sim::Task { co_await pc->fsync(); }(&cache));
    s.run();
  }
};

TEST(PageCache, WriteLandsInCacheAndWritesBack) {
  CacheFixture f;
  f.run_write(0);
  EXPECT_EQ(f.backend.writes, (std::vector<ChunkId>{0}));  // run() drains writeback
  EXPECT_EQ(f.cache.dirty_bytes(), 0u);
}

TEST(PageCache, ReadHitAvoidsBackend) {
  CacheFixture f;
  f.run_write(0);
  f.run_read(0);
  EXPECT_TRUE(f.backend.reads.empty());
  EXPECT_EQ(f.cache.hits(), 1u);
}

TEST(PageCache, ReadMissFetchesThroughBackend) {
  CacheFixture f;
  f.run_read(3);
  EXPECT_EQ(f.backend.reads, (std::vector<ChunkId>{3}));
  EXPECT_EQ(f.cache.misses(), 1u);
  // Second read hits.
  f.run_read(3);
  EXPECT_EQ(f.backend.reads.size(), 1u);
  EXPECT_EQ(f.cache.hits(), 1u);
}

TEST(PageCache, RepeatedWritesCoalesceInCache) {
  // With a slow backend, multiple overwrites of the same chunk while the
  // first write-back is pending must not multiply backend writes 1:1.
  CacheFixture f(CacheFixture::make_cfg(), /*backend_op_s=*/0.5);
  f.s.spawn([](PageCache* pc) -> sim::Task {
    for (int i = 0; i < 10; ++i) co_await pc->write_chunk(0);
  }(&f.cache));
  f.s.run();
  EXPECT_LT(f.backend.writes.size(), 10u);
  EXPECT_GE(f.backend.writes.size(), 1u);
}

TEST(PageCache, TouchHookFiresOnWriteAndFill) {
  CacheFixture f;
  std::vector<ChunkId> touched;
  f.cache.set_touch_hook([&](ChunkId c) { touched.push_back(c); });
  f.run_write(1);
  f.run_read(2);  // miss -> fill -> touch
  f.run_read(1);  // hit -> no touch
  EXPECT_EQ(touched, (std::vector<ChunkId>{1, 2}));
}

TEST(PageCache, DirtyThrottlingLimitsWriterSpeed) {
  // Backend far slower than the guest write speed: the writer must be
  // throttled once dirty_limit is reached.
  CacheFixture f(CacheFixture::make_cfg(), /*backend_op_s=*/0.1);
  f.s.spawn([](PageCache* pc) -> sim::Task {
    for (ChunkId c = 0; c < 8; ++c) co_await pc->write_chunk(c);
  }(&f.cache));
  f.s.run();
  EXPECT_GT(f.cache.throttle_events(), 0u);
  // Unthrottled, 8 x 1 MiB at 100 MB/s would take ~0.084 s; with a 0.1 s/op
  // backend and a 4-chunk dirty limit, several ops must wait for write-back.
  EXPECT_GT(f.s.now(), 0.3);
}

TEST(PageCache, FsyncDrainsAllDirtyChunks) {
  CacheFixture f(CacheFixture::make_cfg(), /*backend_op_s=*/0.05);
  f.s.spawn([](PageCache* pc) -> sim::Task {
    for (ChunkId c = 0; c < 3; ++c) co_await pc->write_chunk(c);
    co_await pc->fsync();
  }(&f.cache));
  f.s.run();
  EXPECT_EQ(f.backend.writes.size(), 3u);
  EXPECT_EQ(f.cache.dirty_bytes(), 0u);
}

TEST(PageCache, CapacityEvictionDropsCleanChunks) {
  CacheFixture f;
  // Fill the 8-chunk cache with clean data via read misses, then two more.
  for (ChunkId c = 0; c < 10; ++c) f.run_read(c);
  EXPECT_LE(f.cache.cached_chunks(), 8u);
  // Re-reading an evicted chunk misses again.
  const auto misses_before = f.cache.misses();
  f.run_read(0);
  EXPECT_EQ(f.cache.misses(), misses_before + 1);
}

TEST(PageCache, InvalidateDropsCleanCopy) {
  CacheFixture f;
  f.run_read(2);
  f.cache.invalidate(2);
  const auto misses_before = f.cache.misses();
  f.run_read(2);
  EXPECT_EQ(f.cache.misses(), misses_before + 1);
}

TEST(PageCache, WritebackOpsCounted) {
  CacheFixture f;
  f.run_write(0);
  f.run_write(1);
  EXPECT_EQ(f.cache.writeback_ops(), 2u);
}

// --- write-back ordering / fairness contract ------------------------------
// These pin the semantics the dirty tracker must preserve regardless of its
// representation (insertion-order FIFO in the seed, epoch-stamped bitmap +
// round-robin cursor now): ascending-id write-back for sequential dirtying,
// exactly-once write-back per dirty episode, rewrite after re-dirtying, and
// no starvation of other dirty chunks by a hot one.

TEST(PageCacheWriteback, SequentialDirtyingWritesBackInAscendingOrder) {
  // Slow backend so all six writes are dirty before the first write-back
  // completes; both FIFO (= insertion order here) and the cursor must then
  // drain them in ascending chunk order.
  CacheFixture f(CacheFixture::make_cfg(), /*backend_op_s=*/0.5);
  f.s.spawn([](PageCache* pc) -> sim::Task {
    for (ChunkId c = 0; c < 4; ++c) co_await pc->write_chunk(c);
  }(&f.cache));
  f.s.run();
  EXPECT_EQ(f.backend.writes, (std::vector<ChunkId>{0, 1, 2, 3}));
}

TEST(PageCacheWriteback, EachDirtyEpisodeWritesBackExactlyOnce) {
  CacheFixture f;
  for (ChunkId c : {ChunkId{2}, ChunkId{5}, ChunkId{7}}) f.run_write(c);
  // run() drains between writes, so every chunk completes its write-back
  // before the next is dirtied: exactly one backend write per chunk.
  EXPECT_EQ(f.backend.writes, (std::vector<ChunkId>{2, 5, 7}));
}

TEST(PageCacheWriteback, RedirtyDuringWritebackCausesRewrite) {
  // Backend op takes 0.5 s, guest write 1 MiB / 100 MBps ~ 0.01 s: the
  // second write of chunk 0 lands while the first write-back is in flight.
  CacheFixture f(CacheFixture::make_cfg(), /*backend_op_s=*/0.5);
  f.s.spawn([](PageCache* pc) -> sim::Task {
    co_await pc->write_chunk(0);  // write-back starts
    co_await pc->write_chunk(0);  // re-dirty while in flight
    co_await pc->fsync();
  }(&f.cache));
  f.s.run();
  // The stale in-flight write-back must not clean the chunk: the re-dirtied
  // content is written again (2 backend writes), and fsync saw it through.
  EXPECT_EQ(f.backend.writes, (std::vector<ChunkId>{0, 0}));
  EXPECT_EQ(f.cache.dirty_bytes(), 0u);
}

TEST(PageCacheWriteback, HotChunkDoesNotStarveOthers) {
  // Chunk 0 is re-dirtied every time the backend finishes writing anything;
  // chunks 1 and 2 must still reach the backend in bounded time.
  CacheFixture f(CacheFixture::make_cfg(), /*backend_op_s=*/0.2);
  f.s.spawn([](PageCache* pc) -> sim::Task {
    for (ChunkId c = 0; c < 3; ++c) co_await pc->write_chunk(c);
    for (int i = 0; i < 6; ++i) {
      co_await pc->write_chunk(0);  // keep chunk 0 hot
    }
    co_await pc->fsync();
  }(&f.cache));
  f.s.run_until(30.0);
  bool wrote1 = false, wrote2 = false;
  for (ChunkId c : f.backend.writes) {
    wrote1 |= (c == 1);
    wrote2 |= (c == 2);
  }
  EXPECT_TRUE(wrote1) << "chunk 1 starved by hot chunk 0";
  EXPECT_TRUE(wrote2) << "chunk 2 starved by hot chunk 0";
  EXPECT_EQ(f.cache.dirty_bytes(), 0u);  // fsync eventually drained all
}

TEST(PageCache, WriteSpeedMatchesConfiguredBandwidth) {
  CacheFixture f;
  const double t0 = f.s.now();
  bool done = false;
  f.s.spawn([](PageCache* pc, bool* d) -> sim::Task {
    co_await pc->write_chunk(0);
    *d = true;
  }(&f.cache, &done));
  f.s.run_while_pending([&] { return done; });
  EXPECT_NEAR(f.s.now() - t0, static_cast<double>(kMiB) / 100e6, 1e-6);
}

}  // namespace
}  // namespace hm::storage

namespace hm::storage {
namespace {

TEST(PageCacheRelease, ReleaseHookFiresOnInvalidate) {
  CacheFixture f;
  std::vector<ChunkId> released;
  f.cache.set_release_hook([&](ChunkId c) { released.push_back(c); });
  f.run_read(3);
  f.cache.invalidate(3);
  EXPECT_EQ(released, (std::vector<ChunkId>{3}));
}

TEST(PageCacheRelease, ReleaseHookFiresOnEviction) {
  CacheFixture f;
  std::vector<ChunkId> released;
  f.cache.set_release_hook([&](ChunkId c) { released.push_back(c); });
  for (ChunkId c = 0; c < 10; ++c) f.run_read(c);  // 8-chunk capacity
  EXPECT_GE(released.size(), 2u);
}

TEST(PageCacheRelease, DirtyChunkNotInvalidated) {
  CacheFixture f(CacheFixture::make_cfg(), /*backend_op_s=*/10.0);  // slow wb
  std::vector<ChunkId> released;
  f.cache.set_release_hook([&](ChunkId c) { released.push_back(c); });
  f.s.spawn([](PageCache* pc) -> sim::Task { co_await pc->write_chunk(0); }(&f.cache));
  f.s.run_until(0.5);  // write done, write-back still in flight
  f.cache.invalidate(0);
  EXPECT_TRUE(released.empty());  // dirty data must not be dropped
  f.s.run();
}

TEST(PageCacheRunGate, WritebackPausesWithGate) {
  sim::Simulator s;
  FakeBackend backend(s, 0.01);
  ImageConfig img{16 * kMiB, static_cast<std::uint32_t>(kMiB)};
  PageCache cache(s, backend, img, CacheFixture::make_cfg());
  sim::Gate gate(s, /*open=*/false);  // paused from the start
  cache.set_run_gate(&gate);
  s.spawn([](PageCache* pc) -> sim::Task { co_await pc->write_chunk(0); }(&cache));
  s.run_until(1.0);
  EXPECT_TRUE(backend.writes.empty());  // frozen guest: no write-back
  gate.open();
  s.run();
  EXPECT_EQ(backend.writes.size(), 1u);
}

}  // namespace
}  // namespace hm::storage
