#include "storage/repository.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace hm::storage {
namespace {

struct RepoFixture {
  sim::Simulator s;
  net::FlowNetwork network;
  ImageConfig img{16 * kMiB, static_cast<std::uint32_t>(kMiB)};
  Repository repo;
  net::NodeId reader;
  RepoFixture() : network(s, net::FlowNetworkConfig{1e12, 0.0, 8e9}), repo(s, network, img) {
    reader = network.add_node(100e6);
  }
};

sim::Task fetch(Repository* r, net::NodeId reader, ChunkId c, double* done_at,
                sim::Simulator* s) {
  co_await r->fetch_chunk(reader, c);
  *done_at = s->now();
}

TEST(Repository, RoundRobinStriping) {
  RepoFixture f;
  for (int i = 0; i < 4; ++i) f.repo.add_storage_node(f.network.add_node(100e6));
  EXPECT_EQ(f.repo.owner_of(0), f.repo.owner_of(4));
  EXPECT_NE(f.repo.owner_of(0), f.repo.owner_of(1));
  EXPECT_EQ(f.repo.storage_node_count(), 4u);
}

TEST(Repository, FetchMovesOneChunkOfTraffic) {
  RepoFixture f;
  f.repo.add_storage_node(f.network.add_node(100e6));
  double done_at = -1;
  f.s.spawn(fetch(&f.repo, f.reader, 0, &done_at, &f.s));
  f.s.run();
  EXPECT_GT(done_at, 0);
  EXPECT_DOUBLE_EQ(f.network.traffic_bytes(net::TrafficClass::kRepoRead),
                   static_cast<double>(kMiB));
  EXPECT_EQ(f.repo.chunks_served(), 1u);
}

TEST(Repository, ServerDiskTimeCharged) {
  RepoFixture f;
  Disk server_disk(f.s, DiskConfig{50e6, 0.0});
  f.repo.add_storage_node(f.network.add_node(100e6), &server_disk);
  double done_at = -1;
  f.s.spawn(fetch(&f.repo, f.reader, 0, &done_at, &f.s));
  f.s.run();
  EXPECT_DOUBLE_EQ(server_disk.bytes_read(), static_cast<double>(kMiB));
  // disk (1/50) + network (1/100) MiB seconds
  EXPECT_NEAR(done_at, kMiB / 50e6 + kMiB / 100e6, 1e-4);
}

TEST(Repository, StripedReadsSpreadOverServers) {
  RepoFixture f;
  std::vector<net::NodeId> servers;
  for (int i = 0; i < 4; ++i) {
    servers.push_back(f.network.add_node(100e6));
    f.repo.add_storage_node(servers.back());
  }
  // Fetch chunks 0..3 concurrently: each comes from a distinct server, so
  // the reader's ingress NIC (100 MB/s) is the only bottleneck.
  std::vector<double> done(4, -1);
  for (ChunkId c = 0; c < 4; ++c)
    f.s.spawn(fetch(&f.repo, f.reader, c, &done[c], &f.s));
  f.s.run();
  for (double d : done) EXPECT_NEAR(d, 4.0 * kMiB / 100e6, 1e-4);
}

TEST(Repository, ConcurrentReadersOfDisjointChunksDoNotContend) {
  RepoFixture f;
  for (int i = 0; i < 2; ++i) f.repo.add_storage_node(f.network.add_node(100e6));
  const net::NodeId reader2 = f.network.add_node(100e6);
  double d1 = -1, d2 = -1;
  f.s.spawn(fetch(&f.repo, f.reader, 0, &d1, &f.s));
  f.s.spawn(fetch(&f.repo, reader2, 1, &d2, &f.s));
  f.s.run();
  EXPECT_NEAR(d1, kMiB / 100e6, 1e-4);
  EXPECT_NEAR(d2, kMiB / 100e6, 1e-4);
}

}  // namespace
}  // namespace hm::storage
