#include "storage/chunk_store.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace hm::storage {
namespace {

struct StoreFixture {
  sim::Simulator s;
  Disk disk;
  ChunkStore store;
  StoreFixture(ImageConfig img = {64 * kMiB, 1 * static_cast<std::uint32_t>(kMiB)},
               ChunkStoreConfig cfg = {})
      : disk(s, DiskConfig{100e6, 0.0}), store(s, disk, img, cfg) {}

  void run_write(ChunkId c) {
    s.spawn([](ChunkStore* st, ChunkId ch) -> sim::Task { co_await st->write_chunk(ch); }(
        &store, c));
    s.run();
  }
  void run_read(ChunkId c) {
    s.spawn([](ChunkStore* st, ChunkId ch) -> sim::Task { co_await st->read_chunk(ch); }(
        &store, c));
    s.run();
  }
};

TEST(ImageConfig, GeometryHelpers) {
  ImageConfig img{4 * kGiB, 256 * static_cast<std::uint32_t>(kKiB)};
  EXPECT_EQ(img.num_chunks(), 16384u);
  EXPECT_EQ(img.chunk_of(0), 0u);
  EXPECT_EQ(img.chunk_of(256 * kKiB - 1), 0u);
  EXPECT_EQ(img.chunk_of(256 * kKiB), 1u);
  EXPECT_EQ(img.chunk_of(4 * kGiB - 1), 16383u);
}

TEST(ImageConfig, RoundsUpPartialChunk) {
  ImageConfig img{kMiB + 1, static_cast<std::uint32_t>(kMiB)};
  EXPECT_EQ(img.num_chunks(), 2u);
}

TEST(LruChunkSet, InsertContainsErase) {
  LruChunkSet lru(3);
  EXPECT_FALSE(lru.contains(1));
  lru.insert(1);
  lru.insert(2);
  EXPECT_TRUE(lru.contains(1));
  lru.erase(1);
  EXPECT_FALSE(lru.contains(1));
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruChunkSet, EvictsLeastRecentlyUsed) {
  LruChunkSet lru(2);
  lru.insert(1);
  lru.insert(2);
  lru.insert(1);               // refresh 1: now 2 is the LRU entry
  EXPECT_TRUE(lru.insert(3));  // evicts 2
  EXPECT_TRUE(lru.contains(1));
  EXPECT_FALSE(lru.contains(2));
  EXPECT_TRUE(lru.contains(3));
}

TEST(LruChunkSet, ZeroCapacityNeverEvicts) {
  LruChunkSet lru(0);  // "unbounded" sentinel
  for (ChunkId c = 0; c < 100; ++c) EXPECT_FALSE(lru.insert(c));
  EXPECT_EQ(lru.size(), 100u);
}

TEST(LruChunkSet, ColdEndIterationWalksLruOrder) {
  LruChunkSet lru(10);
  EXPECT_EQ(lru.least_recent(), LruChunkSet::kNil);
  lru.insert(4);
  lru.insert(7);
  lru.insert(2);
  lru.insert(4);  // refresh: 4 becomes MRU, 7 the LRU
  std::vector<std::uint32_t> cold_to_hot;
  for (std::uint32_t c = lru.least_recent(); c != LruChunkSet::kNil;
       c = lru.more_recent(static_cast<ChunkId>(c)))
    cold_to_hot.push_back(c);
  EXPECT_EQ(cold_to_hot, (std::vector<std::uint32_t>{7, 2, 4}));
  lru.erase(2);  // unlink from the middle
  EXPECT_EQ(lru.least_recent(), 7u);
  EXPECT_EQ(lru.more_recent(7), 4u);
}

TEST(ChunkStore, StartsEmpty) {
  StoreFixture f;
  EXPECT_EQ(f.store.present_count(), 0u);
  EXPECT_EQ(f.store.modified_count(), 0u);
  EXPECT_FALSE(f.store.present(0));
}

TEST(ChunkStore, WriteMarksPresentAndModified) {
  StoreFixture f;
  f.run_write(5);
  EXPECT_TRUE(f.store.present(5));
  EXPECT_TRUE(f.store.modified(5));
  EXPECT_EQ(f.store.present_count(), 1u);
  EXPECT_EQ(f.store.modified_count(), 1u);
}

TEST(ChunkStore, RepeatedWritesCountOnce) {
  StoreFixture f;
  f.run_write(5);
  f.run_write(5);
  f.run_write(5);
  EXPECT_EQ(f.store.modified_count(), 1u);
}

TEST(ChunkStore, InstallBaseChunkIsPresentNotModified) {
  StoreFixture f;
  f.s.spawn([](ChunkStore* st) -> sim::Task { co_await st->install_base_chunk(7); }(
      &f.store));
  f.s.run();
  EXPECT_TRUE(f.store.present(7));
  EXPECT_FALSE(f.store.modified(7));
  EXPECT_EQ(f.store.modified_count(), 0u);
}

TEST(ChunkStore, ModifiedSetListsExactlyModifiedChunks) {
  StoreFixture f;
  f.run_write(3);
  f.run_write(9);
  f.run_write(1);
  auto set = f.store.modified_set();
  EXPECT_EQ(set, (std::vector<ChunkId>{1, 3, 9}));  // ascending order
}

TEST(ChunkStore, WriteGoesToHostCacheNotStraightToDisk) {
  StoreFixture f;
  const double t0 = f.s.now();
  f.s.spawn([](ChunkStore* st) -> sim::Task { co_await st->write_chunk(0); }(&f.store));
  // Metadata commits in the request path: present before any virtual time
  // passes, cache residency only once the bus service completes.
  f.s.run_while_pending([&] { return f.store.present(0); });
  EXPECT_NEAR(f.s.now() - t0, 0.0, 1e-9);
  EXPECT_FALSE(f.store.host_cached(0));
  // Drive only until the write completes (flusher still pending).
  f.s.run_while_pending([&] { return f.store.host_cached(0); });
  const double bus_time = static_cast<double>(kMiB) / ChunkStoreConfig{}.host_bus_Bps;
  EXPECT_NEAR(f.s.now() - t0, bus_time, 1e-6);
  EXPECT_TRUE(f.store.host_cached(0));
}

TEST(ChunkStore, BackgroundFlushReachesDisk) {
  StoreFixture f;
  f.run_write(0);
  f.run_write(1);
  EXPECT_DOUBLE_EQ(f.disk.bytes_written(), 2.0 * kMiB);
  EXPECT_EQ(f.store.host_dirty_chunks(), 0u);
}

TEST(ChunkStore, CachedReadSkipsDisk) {
  StoreFixture f;
  f.run_write(4);
  const double disk_reads_before = f.disk.bytes_read();
  f.run_read(4);
  EXPECT_DOUBLE_EQ(f.disk.bytes_read(), disk_reads_before);
  EXPECT_EQ(f.store.cache_hits(), 1u);
}

TEST(ChunkStore, UncachedReadHitsDisk) {
  // Tiny host cache: writing chunk 1 evicts chunk 0.
  ChunkStoreConfig cfg;
  cfg.host_cache_bytes = kMiB;  // one chunk
  StoreFixture f({64 * kMiB, static_cast<std::uint32_t>(kMiB)}, cfg);
  f.run_write(0);
  f.run_write(1);
  EXPECT_FALSE(f.store.host_cached(0));
  f.run_read(0);
  EXPECT_EQ(f.store.cache_misses(), 1u);
  EXPECT_DOUBLE_EQ(f.disk.bytes_read(), 1.0 * kMiB);
}

TEST(ChunkStore, FlushWaitsForAllDirty) {
  ChunkStoreConfig cfg;
  cfg.background_flush = true;
  StoreFixture f({64 * kMiB, static_cast<std::uint32_t>(kMiB)}, cfg);
  bool flushed = false;
  f.s.spawn([](ChunkStore* st, bool* fl) -> sim::Task {
    co_await st->write_chunk(0);
    co_await st->write_chunk(1);
    co_await st->write_chunk(2);
    co_await st->flush();
    *fl = true;
  }(&f.store, &flushed));
  f.s.run();
  EXPECT_TRUE(flushed);
  EXPECT_DOUBLE_EQ(f.disk.bytes_written(), 3.0 * kMiB);
}

TEST(ChunkStore, RedirtyDuringFlushWritesAgain) {
  StoreFixture f;
  f.s.spawn([](ChunkStore* st) -> sim::Task {
    co_await st->write_chunk(0);  // flusher starts writing chunk 0
    co_await st->write_chunk(0);  // re-dirty while (or right after) flushing
    co_await st->flush();
  }(&f.store));
  f.s.run();
  // The chunk must have reached the disk at least once and end clean.
  EXPECT_GE(f.disk.bytes_written(), 1.0 * kMiB);
  EXPECT_EQ(f.store.host_dirty_chunks(), 0u);
}

}  // namespace
}  // namespace hm::storage

// for_each_modified is the ModifiedSet iteration hook trace-driven
// consumers lean on (workloads/trace.h snapshots, migration round seeding):
// pin word boundaries, empty/full bitmaps and agreement with
// modified_set(), including across a write issued between iterations.
namespace hm::storage {
namespace {

std::vector<ChunkId> modified_chunks(const ChunkStore& st) {
  std::vector<ChunkId> out;
  st.for_each_modified([&](ChunkId c) { out.push_back(c); });
  return out;
}

TEST(ChunkStoreForEachModified, EmptyStoreVisitsNothing) {
  StoreFixture f;
  EXPECT_TRUE(modified_chunks(f.store).empty());
}

TEST(ChunkStoreForEachModified, WordBoundaryChunks63To65) {
  StoreFixture f{ImageConfig{128 * kMiB, 1 * static_cast<std::uint32_t>(kMiB)}};
  f.run_write(63);
  f.run_write(64);
  f.run_write(65);
  EXPECT_EQ(modified_chunks(f.store), (std::vector<ChunkId>{63, 64, 65}));
}

TEST(ChunkStoreForEachModified, FullBitmapVisitsEveryChunkAscending) {
  StoreFixture f;  // 64 chunks of 1 MiB
  f.s.spawn([](ChunkStore* st) -> sim::Task {
    for (ChunkId c = 0; c < st->num_chunks(); ++c) co_await st->write_chunk(c);
  }(&f.store));
  f.s.run();
  const std::vector<ChunkId> chunks = modified_chunks(f.store);
  ASSERT_EQ(chunks.size(), f.store.num_chunks());
  for (ChunkId c = 0; c < f.store.num_chunks(); ++c) EXPECT_EQ(chunks[c], c);
}

TEST(ChunkStoreForEachModified, BaseInstallsAreNotModified) {
  StoreFixture f;
  f.s.spawn([](ChunkStore* st) -> sim::Task {
    co_await st->install_base_chunk(3);
    co_await st->write_chunk(7);
  }(&f.store));
  f.s.run();
  EXPECT_EQ(modified_chunks(f.store), (std::vector<ChunkId>{7}));
}

TEST(ChunkStoreForEachModified, MatchesModifiedSetAndSurvivesRescan) {
  StoreFixture f;
  f.run_write(1);
  f.run_write(63);
  const std::vector<ChunkId> first = modified_chunks(f.store);
  EXPECT_EQ(first, f.store.modified_set());
  f.run_write(32);  // modify between iterations
  const std::vector<ChunkId> second = modified_chunks(f.store);
  EXPECT_EQ(second, (std::vector<ChunkId>{1, 32, 63}));
  EXPECT_EQ(second, f.store.modified_set());
}

}  // namespace
}  // namespace hm::storage
