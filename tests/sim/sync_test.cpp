#include "sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/simulator.h"

namespace hm::sim {
namespace {

Task wait_event(Event* e, int* counter) {
  co_await e->wait();
  ++(*counter);
}

TEST(Event, WaitersResumeOnSet) {
  Simulator s;
  Event e(s);
  int counter = 0;
  for (int i = 0; i < 3; ++i) s.spawn(wait_event(&e, &counter));
  s.run();
  EXPECT_EQ(counter, 0);  // not set yet
  e.set();
  s.run();
  EXPECT_EQ(counter, 3);
}

TEST(Event, WaitAfterSetContinuesImmediately) {
  Simulator s;
  Event e(s);
  e.set();
  int counter = 0;
  s.spawn(wait_event(&e, &counter));
  s.run();
  EXPECT_EQ(counter, 1);
}

TEST(Event, DoubleSetIsIdempotent) {
  Simulator s;
  Event e(s);
  int counter = 0;
  s.spawn(wait_event(&e, &counter));
  s.run();
  e.set();
  e.set();
  s.run();
  EXPECT_EQ(counter, 1);
  EXPECT_TRUE(e.is_set());
}

Task wait_notification(Notification* n, int* counter) {
  co_await n->wait();
  ++(*counter);
}

TEST(Notification, WakesOnlyCurrentWaiters) {
  Simulator s;
  Notification n(s);
  int counter = 0;
  s.spawn(wait_notification(&n, &counter));
  s.run();
  n.notify_all();
  s.run();
  EXPECT_EQ(counter, 1);
  // A new waiter registered after the notify must wait for the next one.
  s.spawn(wait_notification(&n, &counter));
  s.run();
  EXPECT_EQ(counter, 1);
  n.notify_all();
  s.run();
  EXPECT_EQ(counter, 2);
}

Task pass_gate(Gate* g, int* counter) {
  co_await g->wait_open();
  ++(*counter);
}

TEST(Gate, OpenGatePassesImmediately) {
  Simulator s;
  Gate g(s, /*open=*/true);
  int counter = 0;
  s.spawn(pass_gate(&g, &counter));
  s.run();
  EXPECT_EQ(counter, 1);
}

TEST(Gate, ClosedGateBlocksUntilOpen) {
  Simulator s;
  Gate g(s, /*open=*/false);
  int counter = 0;
  s.spawn(pass_gate(&g, &counter));
  s.spawn(pass_gate(&g, &counter));
  s.run();
  EXPECT_EQ(counter, 0);
  g.open();
  s.run();
  EXPECT_EQ(counter, 2);
}

TEST(Gate, ReclosableGate) {
  Simulator s;
  Gate g(s, true);
  g.close();
  EXPECT_FALSE(g.is_open());
  int counter = 0;
  s.spawn(pass_gate(&g, &counter));
  s.run();
  EXPECT_EQ(counter, 0);
  g.open();
  s.run();
  EXPECT_EQ(counter, 1);
}

Task hold_semaphore(Simulator* s, Semaphore* sem, double hold_s, std::vector<int>* order,
                    int id) {
  co_await sem->acquire();
  order->push_back(id);
  co_await s->delay(hold_s);
  sem->release();
}

TEST(Semaphore, MutualExclusionSerializes) {
  Simulator s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) s.spawn(hold_semaphore(&s, &sem, 1.0, &order, i));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));  // strict FIFO
  EXPECT_DOUBLE_EQ(s.now(), 4.0);                    // serialized holds
}

TEST(Semaphore, CountTwoAllowsTwoConcurrent) {
  Simulator s;
  Semaphore sem(s, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) s.spawn(hold_semaphore(&s, &sem, 1.0, &order, i));
  s.run();
  EXPECT_DOUBLE_EQ(s.now(), 2.0);  // two waves of two
}

TEST(Semaphore, QueueLengthVisible) {
  Simulator s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) s.spawn(hold_semaphore(&s, &sem, 1.0, &order, i));
  s.run_until(0.5);
  EXPECT_EQ(sem.queue_length(), 2u);
  s.run();
  EXPECT_EQ(sem.queue_length(), 0u);
}

Task wg_worker(Simulator* s, WaitGroup* wg, double dt) {
  co_await s->delay(dt);
  wg->done();
}

Task wg_waiter(WaitGroup* wg, double* finished_at, Simulator* s) {
  co_await wg->wait();
  *finished_at = s->now();
}

TEST(WaitGroup, WaitsForAllWorkers) {
  Simulator s;
  WaitGroup wg(s);
  wg.add(3);
  s.spawn(wg_worker(&s, &wg, 1.0));
  s.spawn(wg_worker(&s, &wg, 5.0));
  s.spawn(wg_worker(&s, &wg, 3.0));
  double finished_at = -1;
  s.spawn(wg_waiter(&wg, &finished_at, &s));
  s.run();
  EXPECT_DOUBLE_EQ(finished_at, 5.0);
}

TEST(WaitGroup, ZeroCountPassesImmediately) {
  Simulator s;
  WaitGroup wg(s);
  double finished_at = -1;
  s.spawn(wg_waiter(&wg, &finished_at, &s));
  s.run();
  EXPECT_DOUBLE_EQ(finished_at, 0.0);
}

Task barrier_party(Simulator* s, Barrier* b, double arrive_delay, double* passed_at) {
  co_await s->delay(arrive_delay);
  co_await b->arrive_and_wait();
  *passed_at = s->now();
}

TEST(Barrier, AllPartiesWaitForSlowest) {
  Simulator s;
  Barrier b(s, 3);
  double t0 = -1, t1 = -1, t2 = -1;
  s.spawn(barrier_party(&s, &b, 1.0, &t0));
  s.spawn(barrier_party(&s, &b, 2.0, &t1));
  s.spawn(barrier_party(&s, &b, 7.0, &t2));
  s.run();
  EXPECT_DOUBLE_EQ(t0, 7.0);
  EXPECT_DOUBLE_EQ(t1, 7.0);
  EXPECT_DOUBLE_EQ(t2, 7.0);
}

Task barrier_loop(Simulator* s, Barrier* b, int rounds, double step, int* completed) {
  for (int i = 0; i < rounds; ++i) {
    co_await s->delay(step);
    co_await b->arrive_and_wait();
  }
  ++(*completed);
}

TEST(Barrier, CyclicReuseAcrossRounds) {
  Simulator s;
  Barrier b(s, 4);
  int completed = 0;
  for (int i = 0; i < 4; ++i) s.spawn(barrier_loop(&s, &b, 10, 0.5 * (i + 1), &completed));
  s.run();
  EXPECT_EQ(completed, 4);
  // Each round is paced by the slowest party (2.0s), 10 rounds.
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(Barrier, SinglePartyNeverBlocks) {
  Simulator s;
  Barrier b(s, 1);
  int completed = 0;
  s.spawn(barrier_loop(&s, &b, 3, 1.0, &completed));
  s.run();
  EXPECT_EQ(completed, 1);
}

Task mb_producer(Simulator* s, Mailbox<std::string>* mb, double dt, std::string msg) {
  co_await s->delay(dt);
  mb->send(std::move(msg));
}

Task mb_consumer(Mailbox<std::string>* mb, std::vector<std::string>* got, int n) {
  for (int i = 0; i < n; ++i) {
    std::string v = co_await mb->recv();
    got->push_back(std::move(v));
  }
}

TEST(Mailbox, DeliversInSendOrder) {
  Simulator s;
  Mailbox<std::string> mb(s);
  std::vector<std::string> got;
  s.spawn(mb_consumer(&mb, &got, 3));
  s.spawn(mb_producer(&s, &mb, 2.0, "b"));
  s.spawn(mb_producer(&s, &mb, 1.0, "a"));
  s.spawn(mb_producer(&s, &mb, 3.0, "c"));
  s.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Mailbox, BufferedSendBeforeRecv) {
  Simulator s;
  Mailbox<std::string> mb(s);
  mb.send("x");
  mb.send("y");
  EXPECT_EQ(mb.size(), 2u);
  std::vector<std::string> got;
  s.spawn(mb_consumer(&mb, &got, 2));
  s.run();
  EXPECT_EQ(got, (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, MultipleReceiversFifo) {
  Simulator s;
  Mailbox<std::string> mb(s);
  std::vector<std::string> got_a, got_b;
  s.spawn(mb_consumer(&mb, &got_a, 1));  // registered first
  s.spawn(mb_consumer(&mb, &got_b, 1));
  s.run();
  mb.send("first");
  mb.send("second");
  s.run();
  EXPECT_EQ(got_a, (std::vector<std::string>{"first"}));
  EXPECT_EQ(got_b, (std::vector<std::string>{"second"}));
}

}  // namespace
}  // namespace hm::sim
