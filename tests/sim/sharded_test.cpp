// Sharding machinery: the WorkerBudget token pool, the EpochBarrier
// rendezvous (reduce runs exactly once per epoch, with every peer parked),
// the (t, shard, seq) total order on ShardMessage, and ShardedSimulator's
// two execution modes — run() must cover every shard exactly once for any
// budget (including an empty one), and run_epochs() must deliver each
// shard a merged inbox whose content and order are independent of thread
// scheduling. These are the primitives the sharded-experiment determinism
// contract rests on, so the ordering assertions are exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "sim/sharded.h"
#include "sim/worker_budget.h"

namespace hm::sim {
namespace {

TEST(WorkerBudget, GrantsWithinCapacity) {
  WorkerBudget b(4);
  EXPECT_EQ(b.capacity(), 4u);
  EXPECT_EQ(b.available(), 4u);
  EXPECT_EQ(b.acquire(3), 3u);
  EXPECT_EQ(b.available(), 1u);
  // Partial grant: only one token left.
  EXPECT_EQ(b.acquire(5), 1u);
  EXPECT_EQ(b.available(), 0u);
  EXPECT_EQ(b.acquire(1), 0u);
  b.release(4);
  EXPECT_EQ(b.available(), 4u);
}

TEST(WorkerBudget, ZeroCapacityGrantsNothing) {
  WorkerBudget b(0);
  EXPECT_EQ(b.acquire(8), 0u);
  EXPECT_EQ(b.acquire(0), 0u);
  EXPECT_EQ(b.available(), 0u);
}

TEST(WorkerBudget, SetCapacityReseeds) {
  WorkerBudget b(2);
  EXPECT_EQ(b.acquire(2), 2u);
  b.release(2);
  b.set_capacity(6);
  EXPECT_EQ(b.capacity(), 6u);
  EXPECT_EQ(b.acquire(6), 6u);
  b.release(6);
}

TEST(WorkerBudget, GrantRaiiReleasesOnScopeExit) {
  WorkerBudget b(3);
  {
    WorkerGrant g(b, 2);
    EXPECT_EQ(g.granted(), 2u);
    EXPECT_EQ(b.available(), 1u);
    WorkerGrant g2(b, 2);  // only one token remains
    EXPECT_EQ(g2.granted(), 1u);
    EXPECT_EQ(b.available(), 0u);
  }
  EXPECT_EQ(b.available(), 3u);
}

TEST(WorkerBudget, ConcurrentAcquireNeverOversubscribes) {
  WorkerBudget b(8);
  std::atomic<unsigned> total{0};
  std::atomic<unsigned> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const unsigned got = b.acquire(3);
        const unsigned now = total.fetch_add(got) + got;
        unsigned p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        total.fetch_sub(got);
        b.release(got);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(peak.load(), 8u);
  EXPECT_EQ(b.available(), 8u);
}

TEST(EpochBarrier, ReduceRunsOncePerEpochWhilePeersPark) {
  constexpr std::uint32_t kParties = 4;
  constexpr std::uint64_t kEpochs = 50;
  EpochBarrier bar(kParties);
  std::atomic<std::uint32_t> arrived{0};
  std::uint64_t reduces = 0;  // written only inside reduce, under the barrier lock
  std::vector<std::uint64_t> reduce_epochs;
  bar.set_reduce([&](std::uint64_t epoch) {
    // Every party must have arrived (and none released yet) when the
    // reduce runs: the epoch is quiescent.
    EXPECT_EQ(arrived.load(), kParties);
    ++reduces;
    reduce_epochs.push_back(epoch);
  });

  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (std::uint64_t e = 0; e < kEpochs; ++e) {
        arrived.fetch_add(1);
        const std::uint64_t got = bar.arrive_and_wait();
        arrived.fetch_sub(1);
        EXPECT_EQ(got, e);  // epochs come back dense and in order
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reduces, kEpochs);
  EXPECT_EQ(bar.epochs_completed(), kEpochs);
  for (std::uint64_t e = 0; e < kEpochs; ++e) EXPECT_EQ(reduce_epochs[e], e);
}

TEST(ShardMessage, TotalOrderIsTimeThenShardThenSeq) {
  std::vector<ShardMessage> msgs = {
      {2.0, 0, 0, 1}, {1.0, 1, 5, 2}, {1.0, 0, 7, 3},
      {1.0, 1, 2, 4}, {0.5, 3, 0, 5}, {2.0, 0, 1, 6},
  };
  std::sort(msgs.begin(), msgs.end());
  const std::vector<std::uint64_t> want = {5, 3, 4, 2, 1, 6};
  for (std::size_t i = 0; i < msgs.size(); ++i)
    EXPECT_EQ(msgs[i].payload, want[i]) << "position " << i;
}

TEST(ShardedSimulator, RunCoversEveryShardExactlyOnce) {
  constexpr std::uint32_t kShards = 7;
  ShardedSimulator shards(kShards);
  std::vector<std::atomic<int>> hits(kShards);
  const auto st = shards.run([&](std::uint32_t s) { hits[s].fetch_add(1); });
  EXPECT_EQ(st.shards, kShards);
  EXPECT_GE(st.threads, 1u);
  for (std::uint32_t s = 0; s < kShards; ++s) EXPECT_EQ(hits[s].load(), 1);
}

TEST(ShardedSimulator, RunCompletesOnCallerAloneWithEmptyBudget) {
  // Drain the process budget: run() must still complete (the caller always
  // participates; grants are a wall-clock concern only).
  WorkerBudget& global = WorkerBudget::instance();
  const unsigned saved = global.capacity();
  global.set_capacity(0);
  ShardedSimulator shards(4);
  std::vector<std::atomic<int>> hits(4);
  const auto st = shards.run([&](std::uint32_t s) { hits[s].fetch_add(1); });
  global.set_capacity(saved);
  EXPECT_EQ(st.threads, 1u);  // the caller, alone
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(hits[s].load(), 1);
}

TEST(ShardedSimulator, ExchangeDeliversDeterministicMergedInbox) {
  constexpr std::uint32_t kShards = 4;
  constexpr int kEpochs = 6;
  ShardedSimulator shards(kShards);

  // Per shard and epoch, record the exact inbox observed. Every shard posts
  // to every other shard with timestamps chosen so cross-shard ties must be
  // broken by shard id, and same-shard ties by seq. Thread scheduling
  // varies run to run; the inboxes must not.
  std::vector<std::vector<std::vector<ShardMessage>>> seen(
      kShards, std::vector<std::vector<ShardMessage>>(kEpochs));
  const auto st = shards.run_epochs([&](std::uint32_t s) {
    for (int e = 0; e < kEpochs; ++e) {
      for (std::uint32_t to = 0; to < kShards; ++to) {
        if (to == s) continue;
        // Two messages per (from, to) pair: identical t (seq breaks the
        // tie) plus one later message.
        shards.post(s, to, 10.0 * e + 1.0, 100 * s + to);
        shards.post(s, to, 10.0 * e + 1.0, 200 * s + to);
        shards.post(s, to, 10.0 * e + 2.0 + s, 300 * s + to);
      }
      const std::vector<ShardMessage>& inbox = shards.exchange(s);
      seen[s][e] = inbox;  // copy: the ref dies at the next exchange
    }
  });

  EXPECT_EQ(st.shards, kShards);
  EXPECT_EQ(st.threads, kShards);  // dedicated thread per shard
  EXPECT_GE(st.epochs, static_cast<std::uint64_t>(kEpochs));
  EXPECT_EQ(st.messages,
            static_cast<std::uint64_t>(kShards) * (kShards - 1) * 3 * kEpochs);

  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (int e = 0; e < kEpochs; ++e) {
      const auto& inbox = seen[s][e];
      ASSERT_EQ(inbox.size(), (kShards - 1) * 3u) << "shard " << s << " epoch " << e;
      // Sorted by (t, shard, seq) — and only messages addressed to s.
      EXPECT_TRUE(std::is_sorted(inbox.begin(), inbox.end()));
      for (const ShardMessage& m : inbox) {
        EXPECT_NE(m.shard, s);
        EXPECT_EQ(m.payload % 100, s);
      }
      // The tied-timestamp block comes first, ordered by origin shard then
      // seq: for each origin, payload 100*from+s precedes 200*from+s.
      for (std::size_t i = 0; i + 1 < 2 * (kShards - 1); i += 2) {
        EXPECT_EQ(inbox[i].t, inbox[i + 1].t);
        EXPECT_EQ(inbox[i].shard, inbox[i + 1].shard);
        EXPECT_LT(inbox[i].seq, inbox[i + 1].seq);
        // First post carries 100*from + s, the tied second 200*from + s.
        EXPECT_EQ(inbox[i].payload + 100 * inbox[i].shard, inbox[i + 1].payload);
      }
    }
  }

  // Re-running the identical scenario yields byte-identical inboxes — the
  // determinism contract, stated directly.
  ShardedSimulator again(kShards);
  std::vector<std::vector<std::vector<ShardMessage>>> seen2(
      kShards, std::vector<std::vector<ShardMessage>>(kEpochs));
  again.run_epochs([&](std::uint32_t s) {
    for (int e = 0; e < kEpochs; ++e) {
      for (std::uint32_t to = 0; to < kShards; ++to) {
        if (to == s) continue;
        again.post(s, to, 10.0 * e + 1.0, 100 * s + to);
        again.post(s, to, 10.0 * e + 1.0, 200 * s + to);
        again.post(s, to, 10.0 * e + 2.0 + s, 300 * s + to);
      }
      seen2[s][e] = again.exchange(s);
    }
  });
  for (std::uint32_t s = 0; s < kShards; ++s)
    for (int e = 0; e < kEpochs; ++e) EXPECT_EQ(seen[s][e], seen2[s][e]);
}

TEST(ShardedSimulator, ValueMessagesFoldDeterministically) {
  // The epoch-coupled executor ships per-constraint demand deltas as
  // value-carrying messages posted to shard 0 (including shard 0 posting to
  // itself); the fold must see them in (t, shard, seq) order with values
  // intact regardless of thread timing, so the folded totals are one fixed
  // FP summation order.
  constexpr std::uint32_t kShards = 4;
  constexpr int kEpochs = 5;
  ShardedSimulator shards(kShards);
  std::vector<std::vector<ShardMessage>> folded(kEpochs);
  shards.run_epochs([&](std::uint32_t s) {
    for (int e = 0; e < kEpochs; ++e) {
      // One timestamp for the whole epoch: order must fall back to origin
      // shard then seq. Values mix signs the way add/remove demand does.
      shards.post(s, 0, 5.0 * e, /*payload=*/s, /*value=*/+1.0 * (s + 1));
      shards.post(s, 0, 5.0 * e, /*payload=*/s, /*value=*/-0.5 * (s + 1));
      const std::vector<ShardMessage>& inbox = shards.exchange(s);
      if (s == 0) folded[e] = inbox;
    }
  });
  for (int e = 0; e < kEpochs; ++e) {
    const auto& inbox = folded[e];
    ASSERT_EQ(inbox.size(), 2u * kShards) << "epoch " << e;
    EXPECT_TRUE(std::is_sorted(inbox.begin(), inbox.end()));
    double total = 0.0;
    for (std::size_t i = 0; i < inbox.size(); ++i) {
      const ShardMessage& m = inbox[i];
      EXPECT_EQ(m.shard, m.payload);
      EXPECT_EQ(m.t, 5.0 * e);
      // Same-shard tie keeps emission order: the +w post precedes -w/2.
      if (i % 2 == 0)
        EXPECT_GT(m.value, 0.0);
      else
        EXPECT_LT(m.value, 0.0);
      total += m.value;
    }
    EXPECT_EQ(total, 5.0);  // sum of 0.5*(s+1), exact in FP
  }
}

TEST(ShardedSimulator, SingleShardEpochModeRunsInline) {
  ShardedSimulator shards(1);
  int epochs_seen = 0;
  const auto st = shards.run_epochs([&](std::uint32_t s) {
    EXPECT_EQ(s, 0u);
    for (int e = 0; e < 3; ++e) {
      const auto& inbox = shards.exchange(0);
      EXPECT_TRUE(inbox.empty());  // nobody else to post
      ++epochs_seen;
    }
  });
  EXPECT_EQ(epochs_seen, 3);
  EXPECT_EQ(st.shards, 1u);
}

}  // namespace
}  // namespace hm::sim
