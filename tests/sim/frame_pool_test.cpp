#include "sim/frame_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace hm::sim {
namespace {

Task trivial(int* out) {
  *out += 1;
  co_return;
}

Task wait_on(Event* ev, int* out) {
  co_await ev->wait();
  *out += 1;
}

// A frame made deliberately large (but still pooled) via a live local array.
Task bulky(Event* ev, int* out) {
  std::array<char, 1024> buf{};
  buf[0] = 1;
  co_await ev->wait();
  *out += buf[0];
}

// A frame beyond the pool's bucket range: falls back to the system heap.
Task oversize(int* out) {
  std::array<char, 2 * FramePool::kMaxPooledBytes> buf{};
  buf[0] = 1;
  *out += buf[0];
  co_return;
}

TEST(FramePool, SteadyStateChurnReusesFrames) {
  Simulator s;
  int ran = 0;
  // Warm-up: the first frame of this size may carve a fresh slab.
  s.spawn(trivial(&ran));
  s.run();
  const FramePool::Stats base = FramePool::local().stats();
  for (int i = 0; i < 1000; ++i) {
    s.spawn(trivial(&ran));
    s.run();
  }
  const FramePool::Stats after = FramePool::local().stats();
  EXPECT_EQ(ran, 1001);
  // Every post-warm-up frame is pool-served and recycled: no heap growth.
  EXPECT_EQ(after.served - base.served, 1000u);
  EXPECT_EQ(after.reused - base.reused, 1000u);
  EXPECT_EQ(after.heap, base.heap);
}

TEST(FramePool, ExhaustionGrowsBySlabsAndThenRecycles) {
  Simulator s;
  Event gate(s);
  int ran = 0;
  // Hold many frames live at once: a 64 KiB slab holds a bounded number of
  // frames of one size, so 4000 concurrent coroutines must grow the pool.
  const FramePool::Stats base = FramePool::local().stats();
  const std::size_t slab_bytes_before = FramePool::local().slab_bytes();
  for (int i = 0; i < 4000; ++i) s.spawn(bulky(&gate, &ran));
  s.run();
  EXPECT_EQ(ran, 0);  // all suspended on the gate, frames live
  const FramePool::Stats grown = FramePool::local().stats();
  EXPECT_GT(grown.heap, base.heap);  // exhaustion grew the pool
  EXPECT_GT(FramePool::local().slab_bytes(), slab_bytes_before);
  gate.set();
  s.run();
  EXPECT_EQ(ran, 4000);
  // Second wave of the same shape: fully recycled, zero heap growth.
  Event gate2(s);
  const FramePool::Stats before2 = FramePool::local().stats();
  for (int i = 0; i < 4000; ++i) s.spawn(bulky(&gate2, &ran));
  gate2.set();
  s.run();
  const FramePool::Stats after2 = FramePool::local().stats();
  EXPECT_EQ(ran, 8000);
  EXPECT_EQ(after2.heap, before2.heap);
  EXPECT_EQ(after2.reused - before2.reused, after2.served - before2.served);
}

TEST(FramePool, DistinctLiveFramesNeverAlias) {
  Simulator s;
  Event gate(s);
  int ran = 0;
  // If the free list handed out a frame twice, two coroutines would share
  // state and the counters below would be wrong (and ASan would scream).
  for (int i = 0; i < 257; ++i) s.spawn(wait_on(&gate, &ran));
  s.run();
  gate.set();
  s.run();
  EXPECT_EQ(ran, 257);
}

TEST(FramePool, OversizeFramesFallBackToHeap) {
  Simulator s;
  int ran = 0;
  const FramePool::Stats base = FramePool::local().stats();
  s.spawn(oversize(&ran));
  s.run();
  const FramePool::Stats after = FramePool::local().stats();
  EXPECT_EQ(ran, 1);
  EXPECT_GE(after.heap, base.heap + 1);           // went to the system heap
  EXPECT_EQ(after.served, base.served);           // not counted as pooled
}

TEST(FramePool, BucketsRoundUpNotDown) {
  // Allocate/free through the pool directly at awkward sizes; the returned
  // storage must be big enough (exercised by writing the full extent).
  FramePool& pool = FramePool::local();
  for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                        std::size_t{65}, std::size_t{1000}, std::size_t{4096}}) {
    void* p = pool.allocate(n);
    ASSERT_NE(p, nullptr);
    auto* bytes = static_cast<unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) bytes[i] = static_cast<unsigned char>(i);
    pool.deallocate(p, n);
  }
}

}  // namespace
}  // namespace hm::sim
