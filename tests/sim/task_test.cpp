#include "sim/task.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/simulator.h"

namespace hm::sim {
namespace {

Task set_flag(bool* flag) {
  *flag = true;
  co_return;
}

Task delayed_set(Simulator* s, double dt, bool* flag) {
  co_await s->delay(dt);
  *flag = true;
}

Task nested_outer(Simulator* s, double dt, int* stage) {
  *stage = 1;
  bool inner_done = false;
  co_await delayed_set(s, dt, &inner_done);
  EXPECT_TRUE(inner_done);
  *stage = 2;
}

TEST(Task, SpawnedTaskRunsAtCurrentTime) {
  Simulator s;
  bool flag = false;
  s.spawn(set_flag(&flag));
  EXPECT_FALSE(flag);  // lazily started, runs once the loop turns
  s.run();
  EXPECT_TRUE(flag);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Task, DelayAwaiterAdvancesTime) {
  Simulator s;
  bool flag = false;
  s.spawn(delayed_set(&s, 2.5, &flag));
  s.run();
  EXPECT_TRUE(flag);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
}

TEST(Task, NestedAwaitResumesParent) {
  Simulator s;
  int stage = 0;
  s.spawn(nested_outer(&s, 1.0, &stage));
  s.run();
  EXPECT_EQ(stage, 2);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

Task deep_chain(Simulator* s, int depth, int* sum) {
  if (depth == 0) co_return;
  co_await s->delay(0.001);
  *sum += 1;
  co_await deep_chain(s, depth - 1, sum);
}

TEST(Task, DeepAwaitChainCompletes) {
  Simulator s;
  int sum = 0;
  s.spawn(deep_chain(&s, 500, &sum));
  s.run();
  EXPECT_EQ(sum, 500);
}

Task thrower() {
  throw std::runtime_error("boom");
  co_return;  // unreachable but required to make this a coroutine
}

Task catcher(bool* caught) {
  try {
    co_await thrower();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  Simulator s;
  bool caught = false;
  s.spawn(catcher(&caught));
  s.run();
  EXPECT_TRUE(caught);
}

TEST(Task, MoveTransfersOwnership) {
  Simulator s;
  bool flag = false;
  Task a = set_flag(&flag);
  Task b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): move contract under test
  EXPECT_TRUE(b.valid());
  s.spawn(std::move(b));
  s.run();
  EXPECT_TRUE(flag);
}

TEST(Task, DefaultConstructedIsInvalidAndDone) {
  Task t;
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(t.done());
}

Task yielder(Simulator* s, int* count) {
  for (int i = 0; i < 5; ++i) {
    co_await s->yield();
    ++(*count);
  }
}

TEST(Task, YieldReschedulesAtSameTime) {
  Simulator s;
  int count = 0;
  s.spawn(yielder(&s, &count));
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Task, ManyConcurrentTasksInterleaveDeterministically) {
  Simulator s;
  int done = 0;
  bool flags[50] = {};
  for (int i = 0; i < 50; ++i) {
    s.spawn([](Simulator* sp, double dt, bool* f, int* d) -> Task {
      co_await sp->delay(dt);
      *f = true;
      ++(*d);
    }(&s, 0.1 * (i % 7), &flags[i], &done));
  }
  s.run();
  EXPECT_EQ(done, 50);
  for (bool f : flags) EXPECT_TRUE(f);
}

}  // namespace
}  // namespace hm::sim
