// Timer cancellation edge cases for both lanes: slab-backed schedule()
// timers and fast-lane post_cancellable() handles. The fault axis leans on
// these (the flow network retracts pending settle epochs while failing a
// crashed node's flows), so cancel-after-fire and cancel-during-drain must
// be exactly inert — no spurious execution, no cancellation of an unrelated
// entry that later reused the slot.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace hm::sim {
namespace {

TEST(TimerCancel, ScheduledTimerCancelBeforeFire) {
  Simulator s;
  int fired = 0;
  Simulator::Timer t = s.schedule(1.0, [&] { ++fired; });
  EXPECT_TRUE(t.active());
  t.cancel();
  EXPECT_FALSE(t.active());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerCancel, ScheduledTimerCancelAfterFireIsInert) {
  Simulator s;
  int fired = 0;
  Simulator::Timer t = s.schedule(1.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.active());
  t.cancel();  // must be a no-op, not a crash or a double-free
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(TimerCancel, StaleHandleDoesNotCancelSlotReuse) {
  Simulator s;
  int first = 0, second = 0;
  Simulator::Timer t = s.schedule(1.0, [&] { ++first; });
  s.run();
  // The fired timer's slab slot is free; the next schedule may reuse it.
  // The stale handle's generation must not match the new occupant.
  for (int i = 0; i < 8; ++i) s.schedule(1.0, [&] { ++second; });
  t.cancel();
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 8);
}

TEST(TimerCancel, CancelledSlotReusedTimerStillFires) {
  Simulator s;
  int a = 0, b = 0;
  Simulator::Timer t = s.schedule(1.0, [&] { ++a; });
  t.cancel();
  Simulator::Timer u = s.schedule(1.0, [&] { ++b; });
  t.cancel();  // double-cancel of the old entry, after possible slot reuse
  s.run();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_FALSE(u.active());
}

TEST(TimerCancel, FastLaneCancelBeforeFire) {
  Simulator s;
  int fired = 0;
  Simulator::Timer t = s.post_cancellable(
      [](void* a, void*) { ++*static_cast<int*>(a); }, &fired);
  EXPECT_TRUE(t.active());
  t.cancel();
  EXPECT_FALSE(t.active());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerCancel, FastLaneCancelAfterFireIsInert) {
  Simulator s;
  int fired = 0;
  Simulator::Timer t = s.post_cancellable(
      [](void* a, void*) { ++*static_cast<int*>(a); }, &fired);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.active());
  t.cancel();
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(TimerCancel, FastLaneStaleIndexNeverRevalidates) {
  Simulator s;
  int first = 0, second = 0;
  Simulator::Timer t = s.post_cancellable(
      [](void* a, void*) { ++*static_cast<int*>(a); }, &first);
  s.run();
  // The ring has wrapped past the old index; the monotone pop count must
  // keep the stale handle inert even as new entries occupy the same ring
  // position.
  for (int i = 0; i < 64; ++i)
    s.post([](void* a, void*) { ++*static_cast<int*>(a); }, &second);
  EXPECT_FALSE(t.active());
  t.cancel();
  s.run();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 64);
}

struct DrainCtx {
  Simulator* s;
  Simulator::Timer victim;
  std::vector<int>* order;
};

TEST(TimerCancel, CancelDuringDrainRetractsQueuedEntry) {
  // A fast-lane callback cancels a later entry already sitting in the ring
  // (the flow network does exactly this when a crash retracts a pending
  // settle). The cancelled entry must be skipped inside the same drain.
  Simulator s;
  std::vector<int> order;
  DrainCtx ctx{&s, {}, &order};
  s.post(
      [](void* p, void*) {
        auto* c = static_cast<DrainCtx*>(p);
        c->order->push_back(1);
        c->victim.cancel();
      },
      &ctx);
  ctx.victim = s.post_cancellable(
      [](void* p, void*) { static_cast<DrainCtx*>(p)->order->push_back(2); }, &ctx);
  s.post([](void* p, void*) { static_cast<DrainCtx*>(p)->order->push_back(3); }, &ctx);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(TimerCancel, CancelSelfDuringDrainIsInert) {
  // An entry cancelling itself while it runs: the handle's index has
  // already been popped, so the cancel must not touch the ring.
  Simulator s;
  std::vector<int> order;
  DrainCtx ctx{&s, {}, &order};
  ctx.victim = s.post_cancellable(
      [](void* p, void*) {
        auto* c = static_cast<DrainCtx*>(p);
        c->order->push_back(1);
        c->victim.cancel();
      },
      &ctx);
  s.post([](void* p, void*) { static_cast<DrainCtx*>(p)->order->push_back(2); }, &ctx);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerCancel, CancelInterleavesWithTimedEvents) {
  // Fast-lane cancellation must not disturb (t, seq) ordering of the slab
  // lane running at the same instant.
  Simulator s;
  std::vector<int> order;
  s.schedule(1.0, [&] {
    order.push_back(1);
    Simulator::Timer t = s.post_cancellable(
        [](void* o, void*) { static_cast<std::vector<int>*>(o)->push_back(99); },
        &order);
    t.cancel();
  });
  s.schedule(1.0, [&] { order.push_back(2); });
  s.schedule(2.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace hm::sim
