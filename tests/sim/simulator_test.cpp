#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace hm::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ScheduleAdvancesClock) {
  Simulator s;
  double fired_at = -1;
  s.schedule(5.0, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  s.schedule(3.0, [] {});
  s.run();
  double fired_at = -1;
  s.schedule(-7.0, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(3.0, [&] { order.push_back(3); });
  s.schedule(1.0, [&] { order.push_back(1); });
  s.schedule(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule(1.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator s;
  int count = 0;
  s.schedule(1.0, [&] { ++count; });
  s.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.schedule(1.0, [&] { ++count; });
  s.schedule(2.0, [&] { ++count; });
  s.schedule(5.0, [&] { ++count; });
  s.run_until(2.5);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulator, TimerCancelPreventsFiring) {
  Simulator s;
  bool fired = false;
  auto t = s.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(t.active());
  t.cancel();
  EXPECT_FALSE(t.active());
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, TimerInactiveAfterFiring) {
  Simulator s;
  auto t = s.schedule(1.0, [] {});
  s.run();
  EXPECT_FALSE(t.active());
}

TEST(Simulator, CancelledEventsDoNotAdvanceClock) {
  Simulator s;
  auto t = s.schedule(10.0, [] {});
  t.cancel();
  bool fired = false;
  s.schedule(1.0, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);  // run() drains, clock is at last real event
}

TEST(Simulator, EventsScheduledFromCallbacksRun) {
  Simulator s;
  double inner_at = -1;
  s.schedule(1.0, [&] { s.schedule(2.0, [&] { inner_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(inner_at, 3.0);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(static_cast<double>(i), [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.schedule(static_cast<double>(i), [&] { ++count; });
  const bool ok = s.run_while_pending([&] { return count >= 4; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RunWhilePendingReturnsFalseIfQueueDrains) {
  Simulator s;
  s.schedule(1.0, [] {});
  const bool ok = s.run_while_pending([] { return false; });
  EXPECT_FALSE(ok);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  double fired_at = -1;
  s.schedule_at(2.5, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, ScheduleAtInThePastClampsToNow) {
  Simulator s;
  s.schedule(3.0, [] {});
  s.run();
  double fired_at = -1;
  s.schedule_at(1.0, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

// Generation counters: a handle to a fired entry stays inert even after the
// slab recycles its slot for a new entry.
TEST(Simulator, RecycledEntryKeepsOldHandlesInert) {
  Simulator s;
  bool first = false, second = false;
  auto t1 = s.schedule(1.0, [&] { first = true; });
  s.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(t1.active());
  auto t2 = s.schedule(1.0, [&] { second = true; });
  t1.cancel();  // stale handle: must not touch the recycled slot
  EXPECT_TRUE(t2.active());
  s.run();
  EXPECT_TRUE(second);
}

// Mixed monotone and out-of-order scheduling exercises both pending lanes
// (sorted-run FIFO and heap); global time order must hold regardless.
TEST(Simulator, OutOfOrderSchedulingInterleavesLanes) {
  Simulator s;
  std::vector<double> order;
  for (double t : {5.0, 6.0, 1.0, 5.5, 7.0, 0.5, 6.5})
    s.schedule(t, [&order, &s] { order.push_back(s.now()); });
  s.run();
  EXPECT_EQ(order, (std::vector<double>{0.5, 1.0, 5.0, 5.5, 6.0, 6.5, 7.0}));
}

// Long self-rescheduling chain: the slab must recycle entries instead of
// growing, and the clock must stay monotone across lane switches.
TEST(Simulator, PoolRecyclingUnderChainedScheduling) {
  Simulator s;
  // Hop state lives in one struct so each event's callback is a single
  // pointer capture (SmallFn's two-word budget).
  struct Chain {
    Simulator& s;
    int remaining = 10000;
    double last = -1;
    void hop() {
      EXPECT_GE(s.now(), last);
      last = s.now();
      if (--remaining > 0)
        s.schedule(static_cast<double>(remaining % 7) * 1e-3, [this] { hop(); });
    }
  } chain{s};
  s.schedule(0.0, [&chain] { chain.hop(); });
  s.run();
  const int remaining = chain.remaining;
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(s.events_processed(), 10000u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, PendingEventsTracksQueue) {
  Simulator s;
  auto a = s.schedule(1.0, [] {});
  s.schedule(2.0, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  a.cancel();
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

// --- fast lane ---------------------------------------------------------------

namespace {
void push_tag(void* vec, void* tag) {
  static_cast<std::vector<int>*>(vec)->push_back(
      static_cast<int>(reinterpret_cast<std::intptr_t>(tag)));
}
void bump(void* counter, void*) { ++*static_cast<int*>(counter); }
}  // namespace

// All three lanes holding events at ONE timestamp must drain in global
// schedule order (FIFO by seq), regardless of which lane each landed in.
TEST(Simulator, SameTimestampFifoAcrossAllThreeLanes) {
  Simulator s;
  std::vector<int> order;
  struct Ctx {
    Simulator& s;
    std::vector<int>& order;
  } ctx{s, order};
  // seq 0: tail entry at t=1 that fans out into the other lanes when run.
  s.schedule(1.0, [&ctx] {
    ctx.order.push_back(1);
    // The tail's newest entry is the t=5 event, so these zero-delay
    // schedules are out-of-order and land in the HEAP...
    ctx.s.schedule(0.0, [&ctx] { ctx.order.push_back(3); });
    // ...while posts land in the fast lane's ring.
    ctx.s.post(&push_tag, &ctx.order, reinterpret_cast<void*>(4));
    ctx.s.schedule(0.0, [&ctx] { ctx.order.push_back(5); });
    ctx.s.post(&push_tag, &ctx.order, reinterpret_cast<void*>(6));
  });
  s.schedule(5.0, [&ctx] { ctx.order.push_back(7); });  // seq 1: tail, future
  s.schedule(1.0, [&ctx] { ctx.order.push_back(2); });  // seq 2: heap (out of order)
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, PostsRunAtCurrentTimeBeforeLaterTimers) {
  Simulator s;
  s.schedule(2.0, [] {});
  s.run();  // advance to t=2
  std::vector<int> order;
  s.post(&push_tag, &order, reinterpret_cast<void*>(1));
  s.schedule(1.0, [&order] { order.push_back(2); });
  s.post(&push_tag, &order, reinterpret_cast<void*>(3));
  s.run();
  // Posts run at t=2 (in push order), the timer at t=3.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, PendingEventsCountsFastLane) {
  Simulator s;
  int count = 0;
  s.post(&bump, &count);
  s.post(&bump, &count);
  s.schedule(1.0, [] {});
  EXPECT_EQ(s.pending_events(), 3u);
  s.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, CancelledFastLaneEntryDoesNotRunOrCount) {
  Simulator s;
  int cancelled_fired = 0, other_fired = 0;
  Simulator::Timer t = s.post_cancellable(&bump, &cancelled_fired);
  s.post(&bump, &other_fired);
  EXPECT_TRUE(t.active());
  t.cancel();
  EXPECT_FALSE(t.active());
  s.run();
  EXPECT_EQ(cancelled_fired, 0);
  EXPECT_EQ(other_fired, 1);
  // Cancelled fast entries are skipped without counting, like cancelled
  // timer-slot entries.
  EXPECT_EQ(s.events_processed(), 1u);
}

TEST(Simulator, FastLaneTimerInactiveAfterFiring) {
  Simulator s;
  int fired = 0;
  Simulator::Timer t = s.post_cancellable(&bump, &fired);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.active());
}

// Fast-lane indices never recycle, so a stale handle can neither cancel nor
// report active for an entry pushed later (unlike a ring-slot scheme).
TEST(Simulator, StaleFastLaneHandleIsInert) {
  Simulator s;
  int first = 0, second = 0;
  Simulator::Timer t1 = s.post_cancellable(&bump, &first);
  s.run();
  EXPECT_EQ(first, 1);
  Simulator::Timer t2 = s.post_cancellable(&bump, &second);
  t1.cancel();  // stale: must not touch the new entry
  EXPECT_TRUE(t2.active());
  s.run();
  EXPECT_EQ(second, 1);
}

TEST(Simulator, FastLaneSurvivesRingGrowth) {
  Simulator s;
  std::vector<int> order;
  // Push far past the initial ring capacity in one burst; FIFO must hold.
  for (int i = 0; i < 1000; ++i)
    s.post(&push_tag, &order, reinterpret_cast<void*>(static_cast<std::intptr_t>(i)));
  s.run();
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, RunUntilDrainsFastLaneAtBoundary) {
  Simulator s;
  int fired = 0;
  // The t=1 event posts a zero-delay continuation; run_until(1.0) must run
  // it (it sits at t=1, not after it).
  struct Ctx {
    Simulator& s;
    int& fired;
  } ctx{s, fired};
  s.schedule(1.0, [&ctx] { ctx.s.post(&bump, &ctx.fired); });
  s.run_until(1.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
}

namespace {
Task yield_once(Simulator* s, std::vector<int>* order, int tag) {
  co_await s->yield();
  order->push_back(tag);
}
}  // namespace

// yield() must queue behind events already pending at the same instant
// (its handle goes through the fast lane, in global seq order).
TEST(Simulator, YieldQueuesBehindSameInstantEvents) {
  Simulator s;
  std::vector<int> order;
  s.spawn(yield_once(&s, &order, 1));              // seq 0: start the coroutine
  s.schedule(0.0, [&order] { order.push_back(2); });  // seq 1
  s.run();
  // The spawned coroutine starts first but its yield re-queues it (seq 2)
  // behind the scheduled event.
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

}  // namespace
}  // namespace hm::sim
