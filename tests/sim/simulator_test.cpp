#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace hm::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, ScheduleAdvancesClock) {
  Simulator s;
  double fired_at = -1;
  s.schedule(5.0, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator s;
  s.schedule(3.0, [] {});
  s.run();
  double fired_at = -1;
  s.schedule(-7.0, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule(3.0, [&] { order.push_back(3); });
  s.schedule(1.0, [&] { order.push_back(1); });
  s.schedule(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, SameTimestampIsFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule(1.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, StepExecutesExactlyOneEvent) {
  Simulator s;
  int count = 0;
  s.schedule(1.0, [&] { ++count; });
  s.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int count = 0;
  s.schedule(1.0, [&] { ++count; });
  s.schedule(2.0, [&] { ++count; });
  s.schedule(5.0, [&] { ++count; });
  s.run_until(2.5);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.5);
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(42.0);
  EXPECT_DOUBLE_EQ(s.now(), 42.0);
}

TEST(Simulator, TimerCancelPreventsFiring) {
  Simulator s;
  bool fired = false;
  auto t = s.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(t.active());
  t.cancel();
  EXPECT_FALSE(t.active());
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, TimerInactiveAfterFiring) {
  Simulator s;
  auto t = s.schedule(1.0, [] {});
  s.run();
  EXPECT_FALSE(t.active());
}

TEST(Simulator, CancelledEventsDoNotAdvanceClock) {
  Simulator s;
  auto t = s.schedule(10.0, [] {});
  t.cancel();
  bool fired = false;
  s.schedule(1.0, [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);  // run() drains, clock is at last real event
}

TEST(Simulator, EventsScheduledFromCallbacksRun) {
  Simulator s;
  double inner_at = -1;
  s.schedule(1.0, [&] { s.schedule(2.0, [&] { inner_at = s.now(); }); });
  s.run();
  EXPECT_DOUBLE_EQ(inner_at, 3.0);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule(static_cast<double>(i), [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(Simulator, RunWhilePendingStopsOnPredicate) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) s.schedule(static_cast<double>(i), [&] { ++count; });
  const bool ok = s.run_while_pending([&] { return count >= 4; });
  EXPECT_TRUE(ok);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RunWhilePendingReturnsFalseIfQueueDrains) {
  Simulator s;
  s.schedule(1.0, [] {});
  const bool ok = s.run_while_pending([] { return false; });
  EXPECT_FALSE(ok);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator s;
  double fired_at = -1;
  s.schedule_at(2.5, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 2.5);
}

TEST(Simulator, ScheduleAtInThePastClampsToNow) {
  Simulator s;
  s.schedule(3.0, [] {});
  s.run();
  double fired_at = -1;
  s.schedule_at(1.0, [&] { fired_at = s.now(); });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

// Generation counters: a handle to a fired entry stays inert even after the
// slab recycles its slot for a new entry.
TEST(Simulator, RecycledEntryKeepsOldHandlesInert) {
  Simulator s;
  bool first = false, second = false;
  auto t1 = s.schedule(1.0, [&] { first = true; });
  s.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(t1.active());
  auto t2 = s.schedule(1.0, [&] { second = true; });
  t1.cancel();  // stale handle: must not touch the recycled slot
  EXPECT_TRUE(t2.active());
  s.run();
  EXPECT_TRUE(second);
}

// Mixed monotone and out-of-order scheduling exercises both pending lanes
// (sorted-run FIFO and heap); global time order must hold regardless.
TEST(Simulator, OutOfOrderSchedulingInterleavesLanes) {
  Simulator s;
  std::vector<double> order;
  for (double t : {5.0, 6.0, 1.0, 5.5, 7.0, 0.5, 6.5})
    s.schedule(t, [&order, &s] { order.push_back(s.now()); });
  s.run();
  EXPECT_EQ(order, (std::vector<double>{0.5, 1.0, 5.0, 5.5, 6.0, 6.5, 7.0}));
}

// Long self-rescheduling chain: the slab must recycle entries instead of
// growing, and the clock must stay monotone across lane switches.
TEST(Simulator, PoolRecyclingUnderChainedScheduling) {
  Simulator s;
  int remaining = 10000;
  double last = -1;
  std::function<void()> hop = [&] {
    EXPECT_GE(s.now(), last);
    last = s.now();
    if (--remaining > 0) s.schedule(static_cast<double>(remaining % 7) * 1e-3, hop);
  };
  s.schedule(0.0, hop);
  s.run();
  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(s.events_processed(), 10000u);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulator, PendingEventsTracksQueue) {
  Simulator s;
  auto a = s.schedule(1.0, [] {});
  s.schedule(2.0, [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  a.cancel();
  s.run();
  EXPECT_EQ(s.pending_events(), 0u);
}

}  // namespace
}  // namespace hm::sim
