// --faults spec parsing and deterministic plan materialization.
#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/random.h"

namespace hm::sim {
namespace {

FaultSpec parse_ok(const char* arg) {
  FaultSpec spec;
  std::string err;
  EXPECT_TRUE(parse_fault_spec(arg, &spec, &err)) << arg << ": " << err;
  return spec;
}

TEST(FaultPlan, NoneAndEmptyDisable) {
  EXPECT_FALSE(parse_ok("none").enabled());
  EXPECT_FALSE(parse_ok("").enabled());
}

TEST(FaultPlan, ScriptedEventWithAllModifiers) {
  FaultSpec spec = parse_ok("degrade@40+15*0.5#3");
  ASSERT_EQ(spec.scripted.size(), 1u);
  const FaultEvent& e = spec.scripted[0];
  EXPECT_EQ(e.kind, FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(e.at, 40.0);
  EXPECT_DOUBLE_EQ(e.duration_s, 15.0);
  EXPECT_DOUBLE_EQ(e.factor, 0.5);
  EXPECT_EQ(e.target, 3u);
}

TEST(FaultPlan, ScriptedListParsesEveryKind) {
  FaultSpec spec = parse_ok(
      "src-crash@10;dst-crash@20;degrade@30;flap@40;slow-recv@50;repo-outage@60");
  ASSERT_EQ(spec.scripted.size(), 6u);
  EXPECT_EQ(spec.scripted[0].kind, FaultKind::kSourceCrash);
  EXPECT_EQ(spec.scripted[1].kind, FaultKind::kDestCrash);
  EXPECT_EQ(spec.scripted[2].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(spec.scripted[3].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(spec.scripted[4].kind, FaultKind::kSlowReceiver);
  EXPECT_EQ(spec.scripted[5].kind, FaultKind::kRepoOutage);
}

TEST(FaultPlan, OptionalFaultsPrefixIsAccepted) {
  FaultSpec spec = parse_ok("faults:src-crash@5+2");
  ASSERT_EQ(spec.scripted.size(), 1u);
  EXPECT_EQ(spec.scripted[0].kind, FaultKind::kSourceCrash);
  EXPECT_DOUBLE_EQ(spec.scripted[0].duration_s, 2.0);
}

TEST(FaultPlan, RandSpecParsesKeys) {
  FaultSpec spec =
      parse_ok("rand:crashes=2,dst-crashes=1,degrades=4,flaps=3,slow=2,outages=1,"
               "from=20,span=120,dur=8,factor=0.5");
  EXPECT_TRUE(spec.rand);
  EXPECT_EQ(spec.rand_spec.crashes, 2u);
  EXPECT_EQ(spec.rand_spec.dst_crashes, 1u);
  EXPECT_EQ(spec.rand_spec.degrades, 4u);
  EXPECT_EQ(spec.rand_spec.flaps, 3u);
  EXPECT_EQ(spec.rand_spec.slow, 2u);
  EXPECT_EQ(spec.rand_spec.outages, 1u);
  EXPECT_DOUBLE_EQ(spec.rand_spec.from, 20.0);
  EXPECT_DOUBLE_EQ(spec.rand_spec.span, 120.0);
  EXPECT_DOUBLE_EQ(spec.rand_spec.dur, 8.0);
  EXPECT_DOUBLE_EQ(spec.rand_spec.factor, 0.5);
}

TEST(FaultPlan, MalformedSpecsAreRejected) {
  for (const char* bad :
       {"bogus@10", "src-crash", "src-crash@", "degrade@x", "rand:nope=3",
        "src-crash@10+", "degrade@10*"}) {
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(parse_fault_spec(bad, &spec, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, BuildIsDeterministicSortedAndTargeted) {
  FaultSpec spec = parse_ok("rand:crashes=3,degrades=5,flaps=2,from=10,span=50");
  const Rng rng(1234);
  const FaultPlan a = build_fault_plan(spec, rng, /*num_migrations=*/4);
  const FaultPlan b = build_fault_plan(spec, rng, /*num_migrations=*/4);
  ASSERT_EQ(a.events.size(), 10u);
  ASSERT_EQ(b.events.size(), 10u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_DOUBLE_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_DOUBLE_EQ(a.events[i].duration_s, b.events[i].duration_s) << i;
    EXPECT_EQ(a.events[i].target, b.events[i].target) << i;
  }
  EXPECT_TRUE(std::is_sorted(a.events.begin(), a.events.end(),
                             [](const FaultEvent& x, const FaultEvent& y) {
                               return x.at < y.at;
                             }));
  for (const FaultEvent& e : a.events) {
    EXPECT_GE(e.at, 10.0);
    EXPECT_LT(e.at, 60.0);
    EXPECT_LT(e.target, 4u);
    EXPECT_GT(e.duration_s, 0.0);
  }
}

TEST(FaultPlan, NewNodeAndDomainKindsParse) {
  FaultSpec spec = parse_ok(
      "node-crash@10#5;node-degrade@20*0.5#6;node-flap@30#7;"
      "domain-crash@40#0;domain-degrade@50*0.3#1;domains:r0=0-1,r1=2-3");
  ASSERT_EQ(spec.scripted.size(), 5u);
  EXPECT_EQ(spec.scripted[0].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(spec.scripted[1].kind, FaultKind::kNodeDegrade);
  EXPECT_EQ(spec.scripted[2].kind, FaultKind::kNodeFlap);
  EXPECT_EQ(spec.scripted[3].kind, FaultKind::kDomainCrash);
  EXPECT_EQ(spec.scripted[4].kind, FaultKind::kDomainDegrade);
  ASSERT_EQ(spec.domains.size(), 2u);
  EXPECT_EQ(spec.domains[0].name, "r0");
  EXPECT_EQ(spec.domains[0].nodes, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(spec.domains[1].nodes, (std::vector<std::uint32_t>{2, 3}));
}

TEST(FaultPlan, DomainRangesAndUnions) {
  FaultSpec spec = parse_ok("node-crash@5#0;domains:rack=0-2+7+9-10");
  ASSERT_EQ(spec.domains.size(), 1u);
  EXPECT_EQ(spec.domains[0].nodes, (std::vector<std::uint32_t>{0, 1, 2, 7, 9, 10}));
}

TEST(FaultPlan, ChurnSpecParsesKeys) {
  FaultSpec spec = parse_ok(
      "churn:crash-mtbf=600,crash-mttr=20,degrade-mtbf=300,degrade-mttr=30,"
      "flap-mtbf=150,flap-mttr=2,domain-mtbf=3600,domain-mttr=60,"
      "factor=0.4,from=50,until=2000,nodes=16;domains:r0=0-7");
  EXPECT_TRUE(spec.enabled());
  EXPECT_TRUE(spec.churn);
  EXPECT_DOUBLE_EQ(spec.churn_spec.crash_mtbf, 600.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.crash_mttr, 20.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.degrade_mtbf, 300.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.degrade_mttr, 30.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.flap_mtbf, 150.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.flap_mttr, 2.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.domain_mtbf, 3600.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.domain_mttr, 60.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.factor, 0.4);
  EXPECT_DOUBLE_EQ(spec.churn_spec.from, 50.0);
  EXPECT_DOUBLE_EQ(spec.churn_spec.until, 2000.0);
  EXPECT_EQ(spec.churn_spec.nodes, 16u);
  ASSERT_EQ(spec.domains.size(), 1u);
  const Rng rng(9);
  const FaultPlan plan = build_fault_plan(spec, rng, 4);
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.churn);
  EXPECT_TRUE(plan.events.empty());  // churn events materialize lazily
  EXPECT_EQ(plan.domains.size(), 1u);
}

TEST(FaultPlan, RandZeroCountsDisable) {
  // All-zero category counts: the spec parses but is a no-op plan.
  FaultSpec spec;
  std::string err;
  EXPECT_FALSE(parse_fault_spec("rand:crashes=0,degrades=0", &spec, &err));
  EXPECT_FALSE(err.empty());
}

TEST(FaultPlan, FactorIsClampedToUnitInterval) {
  // factor is a capacity multiplier in (0, 1]: non-positive values clamp to
  // a small positive floor, values > 1 clamp to 1.
  EXPECT_DOUBLE_EQ(parse_ok("degrade@10*0").scripted[0].factor, 1e-3);
  EXPECT_DOUBLE_EQ(parse_ok("degrade@10*-2").scripted[0].factor, 1e-3);
  EXPECT_DOUBLE_EQ(parse_ok("degrade@10*1.5").scripted[0].factor, 1.0);
  EXPECT_DOUBLE_EQ(parse_ok("churn:crash-mtbf=60,factor=7").churn_spec.factor, 1.0);
}

TEST(FaultPlan, RandDurationsHaveAFloor) {
  // Exponential duration draws are floored at 0.5 s so no fault window is
  // degenerate.
  FaultSpec spec = parse_ok("rand:degrades=40,from=0,span=10,dur=0.01");
  const Rng rng(77);
  const FaultPlan plan = build_fault_plan(spec, rng, 4);
  ASSERT_EQ(plan.events.size(), 40u);
  for (const FaultEvent& e : plan.events) EXPECT_GE(e.duration_s, 0.5);
}

TEST(FaultPlan, ChurnGrammarErrors) {
  for (const char* bad : {
           "churn:",                              // no category enabled
           "churn:factor=0.5",                    // still no category
           "churn:crash-mtbf=0",                  // mtbf must be > 0
           "churn:crash-mtbf=-5",                 // negative mtbf
           "churn:crash-mtbf=60,crash-mttr=0",    // mttr must be > 0
           "churn:crash-mtbf=60,from=-1",         // from must be >= 0
           "churn:crash-mtbf=60,until=0",         // until must be > 0
           "churn:crash-mtbf=60,from=50,until=40",  // empty window
           "churn:crash-mtbf=60,nodes=x",         // malformed count
           "churn:bogus=1",                       // unknown key
           "churn:domain-mtbf=60",                // domain churn needs domains
       }) {
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(parse_fault_spec(bad, &spec, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, DomainGrammarErrors) {
  for (const char* bad : {
           "node-crash@5;domains:",                 // empty section
           "node-crash@5;domains:r0",               // missing '='
           "node-crash@5;domains:=0-1",             // empty name
           "node-crash@5;domains:r0=",              // no members
           "node-crash@5;domains:r0=5-2",           // inverted range
           "node-crash@5;domains:r0=a-b",           // malformed id
           "node-crash@5;domains:r0=0-1,r0=2-3",    // duplicate name
           "node-crash@5;domains:r0=0-2+1",         // node repeated in domain
           "node-crash@5;domains:r0=0-2,r1=2-4",    // node in two domains
           "domain-crash@5#2;domains:r0=0-1",       // target out of range
       }) {
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(parse_fault_spec(bad, &spec, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, ShardRoutability) {
  // Migration-scoped scripted plans route; everything else collapses.
  EXPECT_TRUE(fault_spec_shard_routable(parse_ok("src-crash@10#1;degrade@20*0.5")));
  EXPECT_TRUE(fault_spec_shard_routable(parse_ok("dst-crash@10;slow-recv@20;flap@5")));
  EXPECT_FALSE(fault_spec_shard_routable(parse_ok("repo-outage@10")));
  EXPECT_FALSE(fault_spec_shard_routable(parse_ok("node-crash@10#3")));
  EXPECT_FALSE(fault_spec_shard_routable(
      parse_ok("domain-crash@10#0;domains:r0=0-1")));
  EXPECT_FALSE(fault_spec_shard_routable(parse_ok("rand:crashes=1")));
  EXPECT_FALSE(fault_spec_shard_routable(parse_ok("churn:crash-mtbf=60")));
}

TEST(FaultPlan, ScriptedEventsPassThroughBuildVerbatim) {
  FaultSpec spec = parse_ok("flap@30+2;src-crash@10+5#1");
  const Rng rng(7);
  const FaultPlan plan = build_fault_plan(spec, rng, 2);
  ASSERT_EQ(plan.events.size(), 2u);
  // Sorted by time: the crash at t=10 comes first.
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSourceCrash);
  EXPECT_DOUBLE_EQ(plan.events[0].at, 10.0);
  EXPECT_EQ(plan.events[0].target, 1u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kLinkFlap);
  EXPECT_DOUBLE_EQ(plan.events[1].at, 30.0);
}

}  // namespace
}  // namespace hm::sim
