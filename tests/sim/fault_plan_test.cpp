// --faults spec parsing and deterministic plan materialization.
#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/random.h"

namespace hm::sim {
namespace {

FaultSpec parse_ok(const char* arg) {
  FaultSpec spec;
  std::string err;
  EXPECT_TRUE(parse_fault_spec(arg, &spec, &err)) << arg << ": " << err;
  return spec;
}

TEST(FaultPlan, NoneAndEmptyDisable) {
  EXPECT_FALSE(parse_ok("none").enabled());
  EXPECT_FALSE(parse_ok("").enabled());
}

TEST(FaultPlan, ScriptedEventWithAllModifiers) {
  FaultSpec spec = parse_ok("degrade@40+15*0.5#3");
  ASSERT_EQ(spec.scripted.size(), 1u);
  const FaultEvent& e = spec.scripted[0];
  EXPECT_EQ(e.kind, FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(e.at, 40.0);
  EXPECT_DOUBLE_EQ(e.duration_s, 15.0);
  EXPECT_DOUBLE_EQ(e.factor, 0.5);
  EXPECT_EQ(e.target, 3u);
}

TEST(FaultPlan, ScriptedListParsesEveryKind) {
  FaultSpec spec = parse_ok(
      "src-crash@10;dst-crash@20;degrade@30;flap@40;slow-recv@50;repo-outage@60");
  ASSERT_EQ(spec.scripted.size(), 6u);
  EXPECT_EQ(spec.scripted[0].kind, FaultKind::kSourceCrash);
  EXPECT_EQ(spec.scripted[1].kind, FaultKind::kDestCrash);
  EXPECT_EQ(spec.scripted[2].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(spec.scripted[3].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(spec.scripted[4].kind, FaultKind::kSlowReceiver);
  EXPECT_EQ(spec.scripted[5].kind, FaultKind::kRepoOutage);
}

TEST(FaultPlan, OptionalFaultsPrefixIsAccepted) {
  FaultSpec spec = parse_ok("faults:src-crash@5+2");
  ASSERT_EQ(spec.scripted.size(), 1u);
  EXPECT_EQ(spec.scripted[0].kind, FaultKind::kSourceCrash);
  EXPECT_DOUBLE_EQ(spec.scripted[0].duration_s, 2.0);
}

TEST(FaultPlan, RandSpecParsesKeys) {
  FaultSpec spec =
      parse_ok("rand:crashes=2,dst-crashes=1,degrades=4,flaps=3,slow=2,outages=1,"
               "from=20,span=120,dur=8,factor=0.5");
  EXPECT_TRUE(spec.rand);
  EXPECT_EQ(spec.rand_spec.crashes, 2u);
  EXPECT_EQ(spec.rand_spec.dst_crashes, 1u);
  EXPECT_EQ(spec.rand_spec.degrades, 4u);
  EXPECT_EQ(spec.rand_spec.flaps, 3u);
  EXPECT_EQ(spec.rand_spec.slow, 2u);
  EXPECT_EQ(spec.rand_spec.outages, 1u);
  EXPECT_DOUBLE_EQ(spec.rand_spec.from, 20.0);
  EXPECT_DOUBLE_EQ(spec.rand_spec.span, 120.0);
  EXPECT_DOUBLE_EQ(spec.rand_spec.dur, 8.0);
  EXPECT_DOUBLE_EQ(spec.rand_spec.factor, 0.5);
}

TEST(FaultPlan, MalformedSpecsAreRejected) {
  for (const char* bad :
       {"bogus@10", "src-crash", "src-crash@", "degrade@x", "rand:nope=3",
        "src-crash@10+", "degrade@10*"}) {
    FaultSpec spec;
    std::string err;
    EXPECT_FALSE(parse_fault_spec(bad, &spec, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(FaultPlan, BuildIsDeterministicSortedAndTargeted) {
  FaultSpec spec = parse_ok("rand:crashes=3,degrades=5,flaps=2,from=10,span=50");
  const Rng rng(1234);
  const FaultPlan a = build_fault_plan(spec, rng, /*num_migrations=*/4);
  const FaultPlan b = build_fault_plan(spec, rng, /*num_migrations=*/4);
  ASSERT_EQ(a.events.size(), 10u);
  ASSERT_EQ(b.events.size(), 10u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_DOUBLE_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_DOUBLE_EQ(a.events[i].duration_s, b.events[i].duration_s) << i;
    EXPECT_EQ(a.events[i].target, b.events[i].target) << i;
  }
  EXPECT_TRUE(std::is_sorted(a.events.begin(), a.events.end(),
                             [](const FaultEvent& x, const FaultEvent& y) {
                               return x.at < y.at;
                             }));
  for (const FaultEvent& e : a.events) {
    EXPECT_GE(e.at, 10.0);
    EXPECT_LT(e.at, 60.0);
    EXPECT_LT(e.target, 4u);
    EXPECT_GT(e.duration_s, 0.0);
  }
}

TEST(FaultPlan, ScriptedEventsPassThroughBuildVerbatim) {
  FaultSpec spec = parse_ok("flap@30+2;src-crash@10+5#1");
  const Rng rng(7);
  const FaultPlan plan = build_fault_plan(spec, rng, 2);
  ASSERT_EQ(plan.events.size(), 2u);
  // Sorted by time: the crash at t=10 comes first.
  EXPECT_EQ(plan.events[0].kind, FaultKind::kSourceCrash);
  EXPECT_DOUBLE_EQ(plan.events[0].at, 10.0);
  EXPECT_EQ(plan.events[0].target, 1u);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kLinkFlap);
  EXPECT_DOUBLE_EQ(plan.events[1].at, 30.0);
}

}  // namespace
}  // namespace hm::sim
