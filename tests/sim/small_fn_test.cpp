#include "sim/small_fn.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace hm::sim {
namespace {

// Instance-counting capture for destruction-timing assertions. The move
// constructor counts too: both source and target are alive until the source
// is destroyed (SmallFn's relocate destroys it immediately).
struct Token {
  static int live;
  Token() { ++live; }
  Token(const Token&) { ++live; }
  Token(Token&&) noexcept { ++live; }
  ~Token() { --live; }
};
int Token::live = 0;

TEST(SmallFn, DefaultIsEmpty) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  SmallFn null_fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_fn));
}

TEST(SmallFn, InvokesCapturelessLambda) {
  static int calls;
  calls = 0;
  SmallFn fn = [] { ++calls; };
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  fn();  // re-invocable, like std::function
  EXPECT_EQ(calls, 2);
}

TEST(SmallFn, CapturesUpToTwoWords) {
  int a = 0, b = 0;
  // Exactly kInlineBytes of capture (two pointers): the documented maximum.
  SmallFn fn = [pa = &a, pb = &b] {
    ++*pa;
    *pb += 2;
  };
  static_assert(SmallFn::kInlineBytes == 2 * sizeof(void*));
  fn();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(SmallFn, MoveOnlyCaptureIsSupported) {
  int out = 0;
  auto p = std::make_unique<int>(41);
  SmallFn fn = [q = std::move(p), &out] { out = *q + 1; };
  EXPECT_EQ(p, nullptr);  // ownership moved into the callable
  fn();
  EXPECT_EQ(out, 42);
}

TEST(SmallFn, MoveTransfersCaptureOwnership) {
  Token::live = 0;
  {
    SmallFn a = [t = Token{}] { (void)t; };
    EXPECT_EQ(Token::live, 1);
    SmallFn b = std::move(a);
    EXPECT_EQ(Token::live, 1);  // relocated, not duplicated
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
  }
  EXPECT_EQ(Token::live, 0);
}

TEST(SmallFn, NullAssignmentDestroysCapturePromptly) {
  Token::live = 0;
  SmallFn fn = [t = Token{}] { (void)t; };
  EXPECT_EQ(Token::live, 1);
  fn = nullptr;  // the event core drops captured state on slot release
  EXPECT_EQ(Token::live, 0);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFn, ReassignmentDestroysPreviousCapture) {
  Token::live = 0;
  SmallFn fn = [t = Token{}] { (void)t; };
  int called = 0;
  fn = [&called] { ++called; };
  EXPECT_EQ(Token::live, 0);  // old capture gone the moment it was replaced
  fn();
  EXPECT_EQ(called, 1);
}

TEST(SmallFn, MoveAssignmentDestroysTargetCapture) {
  Token::live = 0;
  SmallFn a = [t = Token{}] { (void)t; };
  SmallFn b = [t = Token{}] { (void)t; };
  EXPECT_EQ(Token::live, 2);
  a = std::move(b);
  EXPECT_EQ(Token::live, 1);
}

// Scheduled-event lifecycle: the capture must be gone once the event ran
// (the slot is released and the moved-out callable destroyed), and a
// cancelled event's capture must be gone once its entry drains.
TEST(SmallFn, SimulatorDropsCaptureAfterRunAndAfterCancelDrain) {
  Token::live = 0;
  Simulator s;
  s.schedule(1.0, [t = Token{}] { (void)t; });
  auto cancelled = s.schedule(2.0, [t = Token{}] { (void)t; });
  EXPECT_EQ(Token::live, 2);
  cancelled.cancel();
  s.run();
  EXPECT_EQ(Token::live, 0);
}

}  // namespace
}  // namespace hm::sim
