#include "sim/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hm::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root(7);
  Rng a = root.fork("disk", 0);
  Rng b = Rng(7).fork("disk", 0);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForksWithDifferentNamesAreIndependent) {
  Rng root(7);
  Rng a = root.fork("disk");
  Rng b = root.fork("net");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForksWithDifferentIndicesAreIndependent) {
  Rng root(7);
  Rng a = root.fork("vm", 0);
  Rng b = root.fork("vm", 1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkDoesNotPerturbParentStream) {
  Rng a(99), b(99);
  (void)a.fork("child");  // fork must not consume from the parent stream
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRealInRange) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng r(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, Splitmix64IsStable) {
  // Pin a few values so accidental algorithm changes are caught (they would
  // silently change every experiment).
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
}

TEST(Rng, Fnv1aIsStable) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a("disk"), fnv1a("net"));
}

}  // namespace
}  // namespace hm::sim
