// Fault semantics of the flow network: node crashes fail in-flight flows
// exactly once through the normal completion path (un-sent bytes
// uncounted), reboot wakes wait_node_up() waiters, and degraded-rate /
// link-flap windows reshape fair shares like any other constraint change.
#include "net/flow_network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace hm::net {
namespace {

constexpr double kNic = 100e6;  // 100 MB/s for round numbers

struct NetFixture {
  sim::Simulator s;
  FlowNetwork net;
  explicit NetFixture(double fabric = 1e12, double latency = 0.0)
      : net(s, FlowNetworkConfig{fabric, latency, 8e9}) {}
};

sim::Task xfer(FlowNetwork* net, NodeId a, NodeId b, double bytes, TrafficClass cls,
               bool* ok, double* done_at, sim::Simulator* s, int* resumes = nullptr) {
  const bool r = co_await net->transfer(a, b, bytes, cls);
  if (ok != nullptr) *ok = r;
  if (done_at != nullptr) *done_at = s->now();
  if (resumes != nullptr) ++*resumes;
}

sim::Task wait_up(FlowNetwork* net, NodeId n, double* resumed_at, sim::Simulator* s) {
  co_await net->wait_node_up(n);
  *resumed_at = s->now();
}

TEST(FlowFault, TransferToDownNodeFailsWithoutTraffic) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  f.net.set_node_up(b, false);
  bool ok = true;
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &ok, &done_at, &f.s));
  f.s.run();
  EXPECT_FALSE(ok);
  EXPECT_NEAR(done_at, 0.0, 1e-9);  // rejected at flow start, no drain time
  EXPECT_DOUBLE_EQ(f.net.traffic_bytes(TrafficClass::kMemory), 0.0);
}

TEST(FlowFault, CrashFailsInFlightFlowAndUncountsUnsentBytes) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  bool ok = true;
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &ok, &done_at, &f.s));
  f.s.schedule(0.4, [&] { f.net.set_node_up(b, false); });
  f.s.run();
  EXPECT_FALSE(ok);
  EXPECT_NEAR(done_at, 0.4, 1e-9);
  // 40 MB crossed the wire before the crash; the other 60 MB never did.
  EXPECT_NEAR(f.net.traffic_bytes(TrafficClass::kMemory), 40e6, 1.0);
}

TEST(FlowFault, ConcurrentFlowsThroughCrashedNodeEachResumeOnce) {
  NetFixture f;
  const NodeId b = f.net.add_node(kNic);
  const NodeId a = f.net.add_node(kNic), c = f.net.add_node(kNic),
               d = f.net.add_node(kNic);
  bool ok[3] = {true, true, true};
  double done[3] = {-1, -1, -1};
  int resumes = 0;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &ok[0], &done[0], &f.s,
                 &resumes));
  f.s.spawn(xfer(&f.net, c, b, 100e6, TrafficClass::kStoragePush, &ok[1], &done[1],
                 &f.s, &resumes));
  f.s.spawn(xfer(&f.net, b, d, 100e6, TrafficClass::kStoragePull, &ok[2], &done[2],
                 &f.s, &resumes));
  f.s.schedule(0.3, [&] { f.net.set_node_up(b, false); });
  f.s.run();
  EXPECT_EQ(resumes, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(ok[i]) << "flow " << i;
    EXPECT_NEAR(done[i], 0.3, 1e-9) << "flow " << i;
  }
  EXPECT_EQ(f.net.active_flows(), 0u);
}

TEST(FlowFault, CrashLeavesUnrelatedFlowRunning) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  const NodeId c = f.net.add_node(kNic), d = f.net.add_node(kNic);
  bool ok_cd = false;
  double done_cd = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, nullptr, nullptr, &f.s));
  f.s.spawn(xfer(&f.net, c, d, 100e6, TrafficClass::kMemory, &ok_cd, &done_cd, &f.s));
  f.s.schedule(0.3, [&] { f.net.set_node_up(b, false); });
  f.s.run();
  EXPECT_TRUE(ok_cd);
  EXPECT_NEAR(done_cd, 1.0, 1e-9);  // disjoint pair unaffected by the crash
}

TEST(FlowFault, RebootWakesAllWaitersAndBumpsEpoch) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  (void)a;
  EXPECT_EQ(f.net.node_epoch(b), 0u);
  f.net.set_node_up(b, false);
  EXPECT_FALSE(f.net.node_up(b));
  EXPECT_EQ(f.net.node_epoch(b), 1u);
  double up[3] = {-1, -1, -1};
  for (int i = 0; i < 3; ++i) f.s.spawn(wait_up(&f.net, b, &up[i], &f.s));
  f.s.schedule(5.0, [&] { f.net.set_node_up(b, true); });
  f.s.run();
  EXPECT_TRUE(f.net.node_up(b));
  EXPECT_EQ(f.net.node_epoch(b), 1u);  // reboot does not bump the incarnation
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(up[i], 5.0, 1e-9) << "waiter " << i;
  f.net.set_node_up(b, false);
  EXPECT_EQ(f.net.node_epoch(b), 2u);  // every crash does
}

TEST(FlowFault, WaitOnUpNodeResumesImmediately) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic);
  double up = -1;
  f.s.spawn(wait_up(&f.net, a, &up, &f.s));
  f.s.run();
  EXPECT_NEAR(up, 0.0, 1e-9);
}

TEST(FlowFault, DegradeWindowStretchesCompletion) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  bool ok = false;
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &ok, &done_at, &f.s));
  // Full rate for 0.5 s (50 MB), half rate for 0.5 s (25 MB), full rate for
  // the remaining 25 MB: done at 1.25 s.
  f.s.schedule(0.5, [&] { f.net.scale_node_capacity(a, 0.5, 0.5); });
  f.s.schedule(1.0, [&] { f.net.scale_node_capacity(a, 2.0, 2.0); });
  f.s.run();
  EXPECT_TRUE(ok);
  EXPECT_NEAR(done_at, 1.25, 1e-9);
}

TEST(FlowFault, FlapStallsFlowUntilRestored) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  bool ok = false;
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &ok, &done_at, &f.s));
  f.s.schedule(0.2, [&] { f.net.set_link_flapped(b, true); });
  f.s.schedule(0.7, [&] { f.net.set_link_flapped(b, false); });
  f.s.run();
  EXPECT_TRUE(ok);
  // The flow stalls (rate 0, still queued) for the 0.5 s flap window.
  EXPECT_NEAR(done_at, 1.5, 1e-9);
  EXPECT_NEAR(f.net.traffic_bytes(TrafficClass::kMemory), 100e6, 1.0);
}

TEST(FlowFault, NestedFlapHoldsReleaseOnlyWhenAllClear) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  bool ok = false;
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &ok, &done_at, &f.s));
  f.s.schedule(0.2, [&] { f.net.set_link_flapped(b, true); });
  f.s.schedule(0.4, [&] { f.net.set_link_flapped(b, true); });
  f.s.schedule(0.6, [&] { f.net.set_link_flapped(b, false); });
  f.s.schedule(1.0, [&] { f.net.set_link_flapped(b, false); });  // last hold
  f.s.run();
  EXPECT_TRUE(ok);
  EXPECT_NEAR(done_at, 1.8, 1e-9);  // stalled 0.2..1.0, resumed with 80 MB left
}

}  // namespace
}  // namespace hm::net
