// Incremental-vs-full solver equivalence: the component-scoped solver must
// produce byte-identical rate streams and completion times to re-solving
// every component each epoch (ABLATE_INCREMENTAL=off), across randomized
// flow churn on several topology shapes — flat, fabric-bound (escalation),
// oversubscribed switch groups, per-flow caps. Also covers the component
// introspection hooks the benches report.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/flow_network.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace hm::net {
namespace {

struct FlowSpec {
  double start;
  NodeId src;
  NodeId dst;
  double bytes;
  double cap;
};

struct Topology {
  double fabric = 1e12;
  std::vector<double> uplinks;          // one switch group per entry
  std::vector<SwitchGroupId> node_group;  // group index per node (0 = flat)
  std::vector<double> nic;              // per-node NIC
};

struct RunLog {
  std::vector<double> completions;       // completion time per flow (spec order)
  std::vector<double> rate_samples;      // flow_rate(src,dst) probes
  std::uint64_t recomputes = 0;
  std::uint64_t touched = 0;
  std::uint64_t escalations = 0;
};

sim::Task run_flow(FlowNetwork* net, const FlowSpec* f, double* done_at,
                   sim::Simulator* s) {
  co_await net->transfer(f->src, f->dst, f->bytes, TrafficClass::kMemory, f->cap);
  *done_at = s->now();
}

RunLog run_scenario(const Topology& topo, const std::vector<FlowSpec>& flows,
                    bool incremental) {
  sim::Simulator s;
  FlowNetwork net(s, FlowNetworkConfig{topo.fabric, 0.0, 8e9});
  net.set_incremental(incremental);
  std::vector<SwitchGroupId> groups;
  for (double up : topo.uplinks) groups.push_back(net.add_switch_group(up));
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < topo.nic.size(); ++i) {
    const SwitchGroupId g =
        topo.node_group.empty() ? 0 : groups[topo.node_group[i]];
    nodes.push_back(net.add_node(topo.nic[i], g));
  }

  RunLog log;
  log.completions.assign(flows.size(), -1.0);
  // Scenario context behind one pointer: schedule callbacks must fit
  // SmallFn's two-word capture budget.
  struct Ctx {
    sim::Simulator& s;
    FlowNetwork& net;
    const std::vector<FlowSpec>& flows;
    const std::vector<NodeId>& nodes;
    RunLog& log;
    void launch(std::size_t i) {
      s.spawn(run_flow(&net, &flows[i], &log.completions[i], &s));
    }
    void probe() {
      for (NodeId a = 0; a < nodes.size(); ++a)
        for (NodeId b = 0; b < nodes.size(); ++b)
          if (a != b) log.rate_samples.push_back(net.flow_rate(a, b));
    }
  } ctx{s, net, flows, nodes, log};
  for (std::size_t i = 0; i < flows.size(); ++i) {
    s.schedule(flows[i].start, [c = &ctx, i] { c->launch(i); });
  }
  // Probe the full pair-rate matrix at fixed virtual times: these reads hit
  // the cached rates of clean components, which is exactly what must be
  // byte-identical between the ablation arms.
  for (int probe = 1; probe <= 8; ++probe) {
    s.schedule(probe * 0.7, [c = &ctx] { c->probe(); });
  }
  s.run();
  log.recomputes = net.recompute_count();
  log.touched = net.touched_flow_count();
  log.escalations = net.escalation_count();
  EXPECT_EQ(net.active_flows(), 0u);
  return log;
}

std::vector<FlowSpec> random_flows(std::size_t n_flows, std::size_t n_nodes,
                                   bool with_caps, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<FlowSpec> flows;
  for (std::size_t i = 0; i < n_flows; ++i) {
    FlowSpec f;
    // Quantized start times force multi-arrival epochs (the batching path).
    f.start = 0.25 * static_cast<double>(rng.uniform(24));
    f.src = static_cast<NodeId>(rng.uniform(n_nodes));
    do {
      f.dst = static_cast<NodeId>(rng.uniform(n_nodes));
    } while (f.dst == f.src);
    f.bytes = 1e5 + rng.uniform_real(0.0, 4e7);
    f.cap = (with_caps && rng.uniform(3) == 0) ? rng.uniform_real(5e6, 60e6)
                                               : kUnlimitedRate;
    flows.push_back(f);
  }
  return flows;
}

void expect_identical(const RunLog& inc, const RunLog& full) {
  ASSERT_EQ(inc.completions.size(), full.completions.size());
  for (std::size_t i = 0; i < inc.completions.size(); ++i)
    EXPECT_EQ(inc.completions[i], full.completions[i]) << "flow " << i;
  ASSERT_EQ(inc.rate_samples.size(), full.rate_samples.size());
  for (std::size_t i = 0; i < inc.rate_samples.size(); ++i)
    EXPECT_EQ(inc.rate_samples[i], full.rate_samples[i]) << "sample " << i;
  // Identical completion times => identical epoch structure.
  EXPECT_EQ(inc.recomputes, full.recomputes);
}

Topology flat_topology(std::size_t n_nodes, double fabric = 1e12) {
  Topology t;
  t.fabric = fabric;
  t.nic.assign(n_nodes, 100e6);
  return t;
}

TEST(IncrementalSolver, EquivalentOnFlatTopology) {
  const Topology topo = flat_topology(16);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto flows = random_flows(150, topo.nic.size(), false, seed);
    const RunLog inc = run_scenario(topo, flows, true);
    const RunLog full = run_scenario(topo, flows, false);
    expect_identical(inc, full);
    // The flat runs decompose well: incremental must do strictly less work.
    EXPECT_LT(inc.touched, full.touched) << "seed " << seed;
  }
}

TEST(IncrementalSolver, EquivalentUnderSaturatedFabric) {
  // Fabric far below aggregate NIC demand: shared-constraint validation
  // fails continuously and epochs escalate to the global solve.
  const Topology topo = flat_topology(16, /*fabric=*/250e6);
  for (std::uint64_t seed = 11; seed <= 13; ++seed) {
    const auto flows = random_flows(120, topo.nic.size(), false, seed);
    const RunLog inc = run_scenario(topo, flows, true);
    const RunLog full = run_scenario(topo, flows, false);
    expect_identical(inc, full);
    EXPECT_GT(inc.escalations, 0u);
  }
}

TEST(IncrementalSolver, EquivalentOnOversubscribedSwitches) {
  Topology topo;
  topo.fabric = 1e12;
  topo.uplinks = {120e6, 120e6, 120e6, 120e6};
  topo.nic.assign(16, 100e6);
  topo.node_group.resize(16);
  for (std::size_t i = 0; i < 16; ++i) topo.node_group[i] = i / 4;
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    const auto flows = random_flows(120, topo.nic.size(), false, seed);
    expect_identical(run_scenario(topo, flows, true),
                     run_scenario(topo, flows, false));
  }
}

TEST(IncrementalSolver, EquivalentWithPerFlowCaps) {
  const Topology topo = flat_topology(12);
  for (std::uint64_t seed = 31; seed <= 33; ++seed) {
    const auto flows = random_flows(140, topo.nic.size(), true, seed);
    expect_identical(run_scenario(topo, flows, true),
                     run_scenario(topo, flows, false));
  }
}

TEST(IncrementalSolver, EquivalentWithHeterogeneousNics) {
  Topology topo;
  topo.fabric = 1e12;
  sim::Rng rng(7);
  for (int i = 0; i < 14; ++i) topo.nic.push_back(rng.uniform_real(20e6, 200e6));
  for (std::uint64_t seed = 41; seed <= 43; ++seed) {
    const auto flows = random_flows(140, topo.nic.size(), true, seed);
    expect_identical(run_scenario(topo, flows, true),
                     run_scenario(topo, flows, false));
  }
}

// --- introspection hooks ----------------------------------------------------

sim::Task xfer(FlowNetwork* net, NodeId a, NodeId b, double bytes) {
  co_await net->transfer(a, b, bytes, TrafficClass::kMemory);
}

TEST(IncrementalSolver, DisjointArrivalTouchesOnlyItsComponent) {
  sim::Simulator s;
  FlowNetwork net(s, FlowNetworkConfig{1e12, 0.0, 8e9});
  net.set_incremental(true);  // the counters below assert incremental mode
  const NodeId a = net.add_node(100e6), b = net.add_node(100e6);
  const NodeId c = net.add_node(100e6), d = net.add_node(100e6);
  s.spawn(xfer(&net, a, b, 500e6));
  s.run_until(1.0);
  EXPECT_EQ(net.component_count(), 1u);
  const std::uint64_t touched_before = net.touched_flow_count();
  struct Joiner {
    sim::Simulator& s;
    FlowNetwork& net;
    NodeId x, y;
    void go() { s.spawn(xfer(&net, x, y, 500e6)); }
  } join{s, net, c, d};
  s.schedule(0.5, [&join] { join.go(); });  // at t=1.5
  s.run_until(2.0);
  // The newcomer shares no constraint with the a->b component: exactly one
  // flow re-solved, the cached component untouched.
  EXPECT_EQ(net.touched_flow_count() - touched_before, 1u);
  EXPECT_EQ(net.component_count(), 2u);
  s.run();
}

TEST(IncrementalSolver, SharedEndpointMergesComponents) {
  sim::Simulator s;
  FlowNetwork net(s, FlowNetworkConfig{1e12, 0.0, 8e9});
  net.set_incremental(true);
  const NodeId a = net.add_node(100e6), b = net.add_node(100e6);
  const NodeId c = net.add_node(100e6);
  s.spawn(xfer(&net, a, b, 800e6));
  s.run_until(1.0);
  const std::uint64_t touched_before = net.touched_flow_count();
  // Joins through the shared source NIC: the existing flow must be
  // re-solved too (its fair share halves).
  struct Joiner {
    sim::Simulator& s;
    FlowNetwork& net;
    NodeId x, y;
    void go() { s.spawn(xfer(&net, x, y, 800e6)); }
  } join{s, net, a, c};
  s.schedule(0.5, [&join] { join.go(); });  // at t=1.5
  s.run_until(2.0);
  EXPECT_EQ(net.touched_flow_count() - touched_before, 2u);
  EXPECT_EQ(net.component_count(), 1u);
  s.run();
}

TEST(IncrementalSolver, DepartureSplitsComponent) {
  sim::Simulator s;
  FlowNetwork net(s, FlowNetworkConfig{1e12, 0.0, 8e9});
  net.set_incremental(true);
  const NodeId a = net.add_node(100e6), b = net.add_node(100e6);
  const NodeId c = net.add_node(100e6), d = net.add_node(100e6);
  // a->c and b->c share ingress(c); b->d and b->c share egress(b): one
  // component of three flows chained through b->c.
  s.spawn(xfer(&net, a, c, 1000e6));
  s.spawn(xfer(&net, b, c, 25e6));  // finishes first (50 MB/s share)
  s.spawn(xfer(&net, b, d, 1000e6));
  s.run_until(0.1);
  EXPECT_EQ(net.component_count(), 1u);
  s.run_until(2.0);  // b->c is gone; the chain is broken
  EXPECT_EQ(net.active_flows(), 2u);
  EXPECT_EQ(net.component_count(), 2u);
  s.run();
}

TEST(IncrementalSolver, SaturatedFabricEscalatesAndMerges) {
  sim::Simulator s;
  FlowNetwork net(s, FlowNetworkConfig{/*fabric=*/120e6, 0.0, 8e9});
  const NodeId a = net.add_node(100e6), b = net.add_node(100e6);
  const NodeId c = net.add_node(100e6), d = net.add_node(100e6);
  double done1 = -1, done2 = -1;
  s.spawn([](FlowNetwork* n, NodeId x, NodeId y, double* t,
             sim::Simulator* sm) -> sim::Task {
    co_await n->transfer(x, y, 60e6, TrafficClass::kMemory);
    *t = sm->now();
  }(&net, a, b, &done1, &s));
  s.spawn([](FlowNetwork* n, NodeId x, NodeId y, double* t,
             sim::Simulator* sm) -> sim::Task {
    co_await n->transfer(x, y, 60e6, TrafficClass::kMemory);
    *t = sm->now();
  }(&net, c, d, &done2, &s));
  s.run_until(0.1);
  // Disjoint NIC pairs, but the 120 MB/s fabric binds: the decomposition is
  // rejected and both flows merge into one globally-solved component.
  EXPECT_GE(net.escalation_count(), 1u);
  EXPECT_EQ(net.component_count(), 1u);
  s.run();
  EXPECT_NEAR(done1, 1.0, 1e-6);  // 60 MB/s each under the fabric cap
  EXPECT_NEAR(done2, 1.0, 1e-6);
}

}  // namespace
}  // namespace hm::net
