// Deterministic component partitioner (net/shard_partition.h): component
// discovery over (item, node) incidences, canonical ordering, balanced
// greedy packing, the torn-partition case (fewer components than bins),
// and input edge cases. Also pins the merge-only membership fast path in
// FlowNetwork::solve_epoch: arrival-only epochs must take it (the counter
// moves), full-solve mode and epochs after a departure must not, and the
// resulting timeline is byte-identical either way.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "net/flow_network.h"
#include "net/shard_partition.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace hm::net {
namespace {

using Edges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

TEST(ShardPartition, ItemsSharingANodeFormOneComponent) {
  // Items 0,1 share node 0; items 2,3 share node 3; item 4 is alone.
  const Edges edges = {{0, 0}, {1, 0}, {2, 3}, {3, 3}, {4, 5}};
  const ShardAssignment asg = partition_items(5, 6, edges, 3);
  EXPECT_EQ(asg.components, 3u);
  EXPECT_EQ(asg.bins_used, 3u);
  EXPECT_EQ(asg.shard_of_item[0], asg.shard_of_item[1]);
  EXPECT_EQ(asg.shard_of_item[2], asg.shard_of_item[3]);
  EXPECT_NE(asg.shard_of_item[0], asg.shard_of_item[2]);
  EXPECT_NE(asg.shard_of_item[0], asg.shard_of_item[4]);
  EXPECT_NE(asg.shard_of_item[2], asg.shard_of_item[4]);
}

TEST(ShardPartition, TransitiveChainsMerge) {
  // 0-1 via node 0, 1-2 via node 1, 2-3 via node 2: one component of 4.
  const Edges edges = {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {3, 2}};
  const ShardAssignment asg = partition_items(4, 3, edges, 4);
  EXPECT_EQ(asg.components, 1u);
  EXPECT_EQ(asg.bins_used, 1u);
  for (std::uint32_t i = 1; i < 4; ++i)
    EXPECT_EQ(asg.shard_of_item[i], asg.shard_of_item[0]);
}

TEST(ShardPartition, DeterministicAcrossCalls) {
  Edges edges;
  for (std::uint32_t i = 0; i < 64; ++i) edges.emplace_back(i, i % 16);
  const ShardAssignment a = partition_items(64, 16, edges, 4);
  const ShardAssignment b = partition_items(64, 16, edges, 4);
  EXPECT_EQ(a.shard_of_item, b.shard_of_item);
  EXPECT_EQ(a.components, b.components);
  EXPECT_EQ(a.bins_used, b.bins_used);
}

TEST(ShardPartition, GreedyPackingBalancesLoad) {
  // Component weights 3 (items 0-2 via node 0), 1, 1, 1: heaviest-first
  // least-loaded packing must land 3|3, not 4|2.
  const Edges edges = {{0, 0}, {1, 0}, {2, 0}, {3, 1}, {4, 2}, {5, 3}};
  const ShardAssignment asg = partition_items(6, 4, edges, 2);
  EXPECT_EQ(asg.components, 4u);
  EXPECT_EQ(asg.bins_used, 2u);
  std::vector<int> load(2, 0);
  for (std::uint32_t i = 0; i < 6; ++i) ++load[asg.shard_of_item[i]];
  EXPECT_EQ(load[0], 3);
  EXPECT_EQ(load[1], 3);
}

TEST(ShardPartition, TornPartitionLeavesBinsEmpty) {
  // Two components, eight requested bins: only two bins receive items.
  const Edges edges = {{0, 0}, {1, 0}, {2, 1}, {3, 1}};
  const ShardAssignment asg = partition_items(4, 2, edges, 8);
  EXPECT_EQ(asg.components, 2u);
  EXPECT_EQ(asg.bins_used, 2u);
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_LT(asg.shard_of_item[i], 8u);
}

TEST(ShardPartition, EdgeCases) {
  const ShardAssignment empty = partition_items(0, 4, {}, 4);
  EXPECT_EQ(empty.components, 0u);
  EXPECT_EQ(empty.bins_used, 0u);
  EXPECT_TRUE(empty.shard_of_item.empty());

  // bins = 0 is clamped to 1; out-of-range incidences are ignored.
  const Edges bogus = {{0, 99}, {99, 0}, {1, 0}};
  const ShardAssignment asg = partition_items(2, 1, bogus, 0);
  EXPECT_EQ(asg.components, 2u);  // the bogus edges linked nothing
  EXPECT_EQ(asg.bins_used, 1u);
  EXPECT_EQ(asg.shard_of_item[0], 0u);
  EXPECT_EQ(asg.shard_of_item[1], 0u);
}

TEST(ShardPartition, ItemsWithoutEdgesAreSingletons) {
  const ShardAssignment asg = partition_items(3, 2, {}, 2);
  EXPECT_EQ(asg.components, 3u);
  EXPECT_EQ(asg.bins_used, 2u);
}

// --- membership fast path (merge-only epochs) ----------------------------

sim::Task run_one_flow(FlowNetwork* net, NodeId src, NodeId dst, double bytes,
                       double* done_at, sim::Simulator* s) {
  co_await net->transfer(src, dst, bytes, TrafficClass::kMemory);
  *done_at = s->now();
}

struct FastPathLog {
  std::vector<double> completions;
  std::uint64_t fast_epochs = 0;
  std::uint64_t recomputes = 0;
  std::uint64_t solved_components = 0;
  std::uint64_t touched = 0;
};

/// Launch flows at the given start times on a flat unlimited-fabric
/// topology and report completions plus the solver's membership counters.
FastPathLog run_arrivals(const std::vector<double>& starts, double bytes,
                         bool incremental) {
  sim::Simulator s;
  FlowNetwork net(s, FlowNetworkConfig{kUnlimitedRate, 0.0, 8e9});
  net.set_incremental(incremental);
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < 2 * starts.size(); ++i) nodes.push_back(net.add_node(100e6));

  FastPathLog log;
  log.completions.assign(starts.size(), -1.0);
  struct Ctx {
    sim::Simulator& s;
    FlowNetwork& net;
    const std::vector<NodeId>& nodes;
    FastPathLog& log;
    double bytes;
    void launch(std::size_t i) {
      s.spawn(run_one_flow(&net, nodes[2 * i], nodes[2 * i + 1], bytes,
                           &log.completions[i], &s));
    }
  } ctx{s, net, nodes, log, bytes};
  for (std::size_t i = 0; i < starts.size(); ++i)
    s.schedule(starts[i], [c = &ctx, i] { c->launch(i); });
  s.run();
  log.fast_epochs = net.membership_fast_epochs();
  log.recomputes = net.recompute_count();
  log.solved_components = net.solved_component_count();
  log.touched = net.touched_flow_count();
  EXPECT_EQ(net.active_flows(), 0u);
  return log;
}

TEST(MembershipFastPath, ArrivalOnlyEpochsTakeTheMergePath) {
  // Big flows, staggered arrivals: every arrival epoch after the first sees
  // no departure and no topology change, so membership must come from the
  // merge-only path. (The first epoch follows add_node => full rebuild;
  // completion epochs carry split risk => full rebuild.)
  const std::vector<double> starts = {0.0, 1.0, 2.0, 3.0};
  const FastPathLog inc = run_arrivals(starts, 800e6, true);
  EXPECT_EQ(inc.fast_epochs, starts.size() - 1);
  for (double t : inc.completions) EXPECT_GT(t, 3.0);

  // Full-solve mode never takes the fast path, and the timeline is
  // byte-identical anyway — membership maintenance is pure bookkeeping.
  const FastPathLog full = run_arrivals(starts, 800e6, false);
  EXPECT_EQ(full.fast_epochs, 0u);
  EXPECT_EQ(inc.completions, full.completions);
  EXPECT_EQ(inc.recomputes, full.recomputes);
}

TEST(MembershipFastPath, DepartureEpochsRebuild) {
  // Three flows sharing one egress NIC (n0): a long-lived A plus two short
  // flows B and C that arrive while A is live and depart before the next
  // arrival. The two arrival epochs (t=1, t=3) see a clean surviving
  // component and take the fast path; the two departure epochs (B and C
  // completing) collect the split-risk survivor A and must rebuild. Exact
  // count: 2 fast epochs, no more.
  sim::Simulator s;
  FlowNetwork net(s, FlowNetworkConfig{kUnlimitedRate, 0.0, 8e9});
  net.set_incremental(true);
  const NodeId n0 = net.add_node(100e6);
  const NodeId n1 = net.add_node(100e6);
  const NodeId n2 = net.add_node(100e6);
  std::vector<double> done(3, -1.0);
  struct Ctx {
    sim::Simulator& s;
    FlowNetwork& net;
    std::vector<double>& done;
    NodeId n0, n1, n2;
  } ctx{s, net, done, n0, n1, n2};
  s.schedule(0.0, [c = &ctx] {
    c->s.spawn(run_one_flow(&c->net, c->n0, c->n1, 800e6, &c->done[0], &c->s));
  });
  s.schedule(1.0, [c = &ctx] {
    c->s.spawn(run_one_flow(&c->net, c->n0, c->n2, 30e6, &c->done[1], &c->s));
  });
  s.schedule(3.0, [c = &ctx] {
    c->s.spawn(run_one_flow(&c->net, c->n0, c->n2, 30e6, &c->done[2], &c->s));
  });
  s.run();
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_EQ(net.membership_fast_epochs(), 2u);
  // B and C finished while A was still draining; A finished last.
  EXPECT_GT(done[0], done[1]);
  EXPECT_GT(done[0], done[2]);
  EXPECT_GT(done[2], done[1]);
}

TEST(MembershipFastPath, IdenticalCountersAcrossReruns) {
  const std::vector<double> starts = {0.0, 0.5, 0.5, 2.0, 2.0, 2.5};
  const FastPathLog a = run_arrivals(starts, 600e6, true);
  const FastPathLog b = run_arrivals(starts, 600e6, true);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.fast_epochs, b.fast_epochs);
  EXPECT_EQ(a.recomputes, b.recomputes);
  EXPECT_EQ(a.solved_components, b.solved_components);
  EXPECT_EQ(a.touched, b.touched);
  EXPECT_GT(a.fast_epochs, 0u);
}

}  // namespace
}  // namespace hm::net
