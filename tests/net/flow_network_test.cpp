#include "net/flow_network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"

namespace hm::net {
namespace {

constexpr double kNic = 100e6;  // 100 MB/s for round numbers

struct NetFixture {
  sim::Simulator s;
  FlowNetwork net;
  explicit NetFixture(double fabric = 1e12, double latency = 0.0)
      : net(s, FlowNetworkConfig{fabric, latency, 8e9}) {}
};

sim::Task xfer(FlowNetwork* net, NodeId a, NodeId b, double bytes, TrafficClass cls,
               double* done_at, sim::Simulator* s, double cap = kUnlimitedRate) {
  co_await net->transfer(a, b, bytes, cls, cap);
  *done_at = s->now();
}

TEST(FlowNetwork, SingleFlowRunsAtNicSpeed) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(FlowNetwork, LatencyAddsToCompletion) {
  NetFixture f(1e12, 0.5);
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 1.5, 1e-9);
}

TEST(FlowNetwork, TwoFlowsShareEgressFairly) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic);
  const NodeId b = f.net.add_node(kNic), c = f.net.add_node(kNic);
  double done_b = -1, done_c = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_b, &f.s));
  f.s.spawn(xfer(&f.net, a, c, 100e6, TrafficClass::kMemory, &done_c, &f.s));
  f.s.run();
  // Both share the source NIC (50 MB/s each) and finish together at t=2.
  EXPECT_NEAR(done_b, 2.0, 1e-9);
  EXPECT_NEAR(done_c, 2.0, 1e-9);
}

TEST(FlowNetwork, IngressIsAlsoAConstraint) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  const NodeId d = f.net.add_node(kNic);
  double done_1 = -1, done_2 = -1;
  f.s.spawn(xfer(&f.net, a, d, 100e6, TrafficClass::kMemory, &done_1, &f.s));
  f.s.spawn(xfer(&f.net, b, d, 100e6, TrafficClass::kMemory, &done_2, &f.s));
  f.s.run();
  EXPECT_NEAR(done_1, 2.0, 1e-9);  // d's ingress shared
  EXPECT_NEAR(done_2, 2.0, 1e-9);
}

TEST(FlowNetwork, DisjointPairsDoNotInterfere) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  const NodeId c = f.net.add_node(kNic), d = f.net.add_node(kNic);
  double done_1 = -1, done_2 = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_1, &f.s));
  f.s.spawn(xfer(&f.net, c, d, 100e6, TrafficClass::kMemory, &done_2, &f.s));
  f.s.run();
  EXPECT_NEAR(done_1, 1.0, 1e-9);
  EXPECT_NEAR(done_2, 1.0, 1e-9);
}

TEST(FlowNetwork, FabricCapLimitsAggregate) {
  // 4 disjoint pairs, each NIC 100 MB/s, but fabric only 200 MB/s total.
  NetFixture f(/*fabric=*/200e6);
  std::vector<double> done(4, -1);
  for (int i = 0; i < 4; ++i) {
    const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
    f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done[i], &f.s));
  }
  f.s.run();
  for (double d : done) EXPECT_NEAR(d, 2.0, 1e-9);  // 50 MB/s each
}

TEST(FlowNetwork, PerFlowRateCapHonoured) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_at, &f.s, 25e6));
  f.s.run();
  EXPECT_NEAR(done_at, 4.0, 1e-9);
}

TEST(FlowNetwork, CappedFlowLeavesBandwidthToOthers) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic);
  const NodeId b = f.net.add_node(kNic), c = f.net.add_node(kNic);
  double done_capped = -1, done_free = -1;
  f.s.spawn(xfer(&f.net, a, b, 25e6, TrafficClass::kMemory, &done_capped, &f.s, 25e6));
  f.s.spawn(xfer(&f.net, a, c, 75e6, TrafficClass::kMemory, &done_free, &f.s));
  f.s.run();
  // Max-min: capped flow gets 25, the other picks up the remaining 75.
  EXPECT_NEAR(done_capped, 1.0, 1e-9);
  EXPECT_NEAR(done_free, 1.0, 1e-9);
}

TEST(FlowNetwork, RatesRecomputeWhenFlowJoins) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_1 = -1, done_2 = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_1, &f.s));
  // Second flow joins halfway through the first.
  struct Joiner {
    NetFixture& f;
    NodeId a, b;
    double* done;
    void go() { f.s.spawn(xfer(&f.net, a, b, 50e6, TrafficClass::kMemory, done, &f.s)); }
  } join{f, a, b, &done_2};
  f.s.schedule(0.5, [&join] { join.go(); });
  f.s.run();
  // First: 50 MB at full rate, then shares 50/50: remaining 50 MB takes 1s.
  EXPECT_NEAR(done_1, 1.5, 1e-6);
  // Second: 50 MB at 50 MB/s done at t=1.5 too.
  EXPECT_NEAR(done_2, 1.5, 1e-6);
}

TEST(FlowNetwork, RatesRecomputeWhenFlowLeaves) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_small = -1, done_big = -1;
  f.s.spawn(xfer(&f.net, a, b, 25e6, TrafficClass::kMemory, &done_small, &f.s));
  f.s.spawn(xfer(&f.net, a, b, 125e6, TrafficClass::kMemory, &done_big, &f.s));
  f.s.run();
  // Share 50/50 until small (25MB) finishes at t=0.5; big then gets 100 MB/s
  // for its remaining 100 MB -> 0.5 + 1.0.
  EXPECT_NEAR(done_small, 0.5, 1e-6);
  EXPECT_NEAR(done_big, 1.5, 1e-6);
}

TEST(FlowNetwork, LoopbackDoesNotCountAsTraffic) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, a, 8e9, TrafficClass::kPvfsData, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);  // loopback at 8 GB/s
  EXPECT_DOUBLE_EQ(f.net.total_traffic_bytes(), 0.0);
}

TEST(FlowNetwork, TrafficAccountedByClass) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double d1 = -1, d2 = -1, d3 = -1;
  f.s.spawn(xfer(&f.net, a, b, 10e6, TrafficClass::kMemory, &d1, &f.s));
  f.s.spawn(xfer(&f.net, a, b, 20e6, TrafficClass::kStoragePush, &d2, &f.s));
  f.s.spawn(xfer(&f.net, b, a, 30e6, TrafficClass::kStoragePull, &d3, &f.s));
  f.s.run();
  EXPECT_DOUBLE_EQ(f.net.traffic_bytes(TrafficClass::kMemory), 10e6);
  EXPECT_DOUBLE_EQ(f.net.traffic_bytes(TrafficClass::kStoragePush), 20e6);
  EXPECT_DOUBLE_EQ(f.net.traffic_bytes(TrafficClass::kStoragePull), 30e6);
  EXPECT_DOUBLE_EQ(f.net.total_traffic_bytes(), 60e6);
  f.net.reset_traffic();
  EXPECT_DOUBLE_EQ(f.net.total_traffic_bytes(), 0.0);
}

TEST(FlowNetwork, ZeroByteTransferCompletesInstantly) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 0, TrafficClass::kControl, &done_at, &f.s));
  f.s.run();
  EXPECT_DOUBLE_EQ(done_at, 0.0);
  EXPECT_DOUBLE_EQ(f.net.total_traffic_bytes(), 0.0);
}

sim::Task req_resp(FlowNetwork* net, NodeId a, NodeId b, double* done_at,
                   sim::Simulator* s) {
  co_await net->request_response(a, b, 1e6, 10e6, TrafficClass::kRepoRead);
  *done_at = s->now();
}

TEST(FlowNetwork, RequestResponseIsSequential) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(req_resp(&f.net, a, b, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 0.01 + 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(f.net.traffic_bytes(TrafficClass::kControl), 1e6);
  EXPECT_DOUBLE_EQ(f.net.traffic_bytes(TrafficClass::kRepoRead), 10e6);
}

TEST(FlowNetwork, ActiveFlowIntrospection) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_at, &f.s));
  f.s.run_until(0.5);
  EXPECT_EQ(f.net.active_flows(), 1u);
  EXPECT_NEAR(f.net.flow_rate(a, b), kNic, 1.0);
  f.s.run();
  EXPECT_EQ(f.net.active_flows(), 0u);
}

// Property-style sweep: with N equal flows through one bottleneck, each gets
// capacity/N and total rate never exceeds capacity.
class FairnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(FairnessSweep, EqualSharesAndConservation) {
  const int n = GetParam();
  NetFixture f;
  const NodeId src = f.net.add_node(kNic);
  std::vector<double> done(n, -1);
  for (int i = 0; i < n; ++i) {
    const NodeId dst = f.net.add_node(kNic);
    f.s.spawn(xfer(&f.net, src, dst, 10e6, TrafficClass::kMemory, &done[i], &f.s));
  }
  f.s.run_until(1e-3);
  EXPECT_LE(f.net.current_rate_sum(), kNic * (1 + 1e-9));
  EXPECT_NEAR(f.net.current_rate_sum(), kNic, kNic * 1e-6);
  f.s.run();
  const double expect_t = 10e6 * n / kNic;
  for (double d : done) EXPECT_NEAR(d, expect_t, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Shares, FairnessSweep, ::testing::Values(1, 2, 3, 5, 8, 16, 37));

// --- Epoch batching ---------------------------------------------------------

TEST(FlowNetwork, BurstSettlesWithExactlyOneRecompute) {
  NetFixture f;
  const NodeId src = f.net.add_node(kNic);
  std::vector<NodeId> dsts;
  for (int i = 0; i < 32; ++i) dsts.push_back(f.net.add_node(kNic));
  std::vector<double> done(32, -1);
  for (int i = 0; i < 32; ++i)
    f.s.spawn(xfer(&f.net, src, dsts[i], 1e6, TrafficClass::kStoragePush, &done[i], &f.s));
  EXPECT_EQ(f.net.recompute_count(), 0u);
  f.s.run_until(0.0);  // all inserts at t=0 plus the single settle event
  EXPECT_EQ(f.net.active_flows(), 32u);
  EXPECT_EQ(f.net.recompute_count(), 1u);
  EXPECT_FALSE(f.net.settle_pending());
  EXPECT_NEAR(f.net.current_rate_sum(), kNic, kNic * 1e-6);
  f.s.run();
  const double expect_t = 1e6 * 32 / kNic;
  for (double d : done) EXPECT_NEAR(d, expect_t, 1e-6);
  // Equal flows drain together: the whole epoch completes on one more solve.
  EXPECT_EQ(f.net.recompute_count(), 2u);
  EXPECT_EQ(f.net.active_flows(), 0u);
}

TEST(FlowNetwork, SettlePendingVisibleBetweenInsertAndSolve) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_at, &f.s));
  f.s.step();  // coroutine start; suspends on the latency delay
  EXPECT_EQ(f.net.active_flows(), 0u);
  f.s.step();  // flow inserted; solve deferred to the settle event
  EXPECT_EQ(f.net.active_flows(), 1u);
  EXPECT_TRUE(f.net.settle_pending());
  EXPECT_EQ(f.net.recompute_count(), 0u);
  f.s.step();  // settle: one solve for the epoch
  EXPECT_FALSE(f.net.settle_pending());
  EXPECT_EQ(f.net.recompute_count(), 1u);
  EXPECT_NEAR(f.net.flow_rate(a, b), kNic, 1.0);
  f.s.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(FlowNetwork, SeparateTimestampsAreSeparateEpochs) {
  NetFixture f;
  const NodeId src = f.net.add_node(kNic);
  std::vector<NodeId> dsts;
  for (int i = 0; i < 8; ++i) dsts.push_back(f.net.add_node(kNic));
  std::vector<double> done(8, -1);
  for (int i = 0; i < 4; ++i)
    f.s.spawn(xfer(&f.net, src, dsts[i], 100e6, TrafficClass::kMemory, &done[i], &f.s));
  struct SecondWave {
    NetFixture& f;
    NodeId src;
    std::vector<NodeId>& dsts;
    std::vector<double>& done;
    void go() {
      for (int i = 4; i < 8; ++i)
        f.s.spawn(xfer(&f.net, src, dsts[i], 100e6, TrafficClass::kMemory, &done[i], &f.s));
    }
  } wave{f, src, dsts, done};
  f.s.schedule(0.25, [&wave] { wave.go(); });
  f.s.run_until(0.3);
  EXPECT_EQ(f.net.active_flows(), 8u);
  EXPECT_EQ(f.net.recompute_count(), 2u);  // one solve per arrival epoch
}

// --- Lazy completion-heap invalidation --------------------------------------

TEST(FlowNetwork, StaleCompletionEntryDoesNotFireEarly) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_1 = -1, done_2 = -1;
  // Alone, the first flow projects completion at t=1; the joiner at t=0.5
  // halves its rate, so that heap entry is stale and must be discarded when
  // popped instead of completing the flow at the old time.
  f.s.spawn(xfer(&f.net, a, b, 100e6, TrafficClass::kMemory, &done_1, &f.s));
  struct Joiner {
    NetFixture& f;
    NodeId a, b;
    double* done;
    void go() { f.s.spawn(xfer(&f.net, a, b, 50e6, TrafficClass::kMemory, done, &f.s)); }
  } join{f, a, b, &done_2};
  f.s.schedule(0.5, [&join] { join.go(); });
  f.s.run_until(1.0);
  EXPECT_EQ(f.net.active_flows(), 2u);  // the t=1 projection was invalidated
  EXPECT_DOUBLE_EQ(done_1, -1);
  f.s.run();
  EXPECT_NEAR(done_1, 1.5, 1e-6);
  EXPECT_NEAR(done_2, 1.5, 1e-6);
}

TEST(FlowNetwork, CompletionHeapSurvivesSlotReuse) {
  // Sequential transfers recycle flow slot 0; completion entries from dead
  // generations must never terminate the current occupant.
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double done_at = -1;
  f.s.spawn([](FlowNetwork* net, NodeId x, NodeId y, double* d,
               sim::Simulator* s) -> sim::Task {
    for (int i = 0; i < 5; ++i)
      co_await net->transfer(x, y, 10e6, TrafficClass::kMemory);
    *d = s->now();
  }(&f.net, a, b, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 0.5, 1e-6);
  // Each flow is its own epoch: arrival solve + completion solve.
  EXPECT_EQ(f.net.recompute_count(), 10u);
  EXPECT_EQ(f.net.active_flows(), 0u);
}

TEST(FlowNetwork, FlowCountersTrackStarts) {
  NetFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  double d1 = -1, d2 = -1;
  f.s.spawn(xfer(&f.net, a, b, 1e6, TrafficClass::kMemory, &d1, &f.s));
  f.s.spawn(xfer(&f.net, b, a, 1e6, TrafficClass::kMemory, &d2, &f.s));
  f.s.run();
  EXPECT_EQ(f.net.flows_started(), 2u);
}

// Max-min correctness on an asymmetric topology: one flow constrained by a
// slow ingress must not reduce what an unconstrained flow receives.
TEST(FlowNetwork, MaxMinNotJustEqualSplit) {
  NetFixture f;
  const NodeId src = f.net.add_node(kNic);
  const NodeId slow = f.net.add_node(kNic, /*ingress=*/20e6);
  const NodeId fast = f.net.add_node(kNic);
  double done_slow = -1, done_fast = -1;
  f.s.spawn(xfer(&f.net, src, slow, 20e6, TrafficClass::kMemory, &done_slow, &f.s));
  f.s.spawn(xfer(&f.net, src, fast, 80e6, TrafficClass::kMemory, &done_fast, &f.s));
  f.s.run();
  // slow: 20 MB at 20 MB/s = 1s; fast: 80 MB at 80 MB/s = 1s.
  EXPECT_NEAR(done_slow, 1.0, 1e-6);
  EXPECT_NEAR(done_fast, 1.0, 1e-6);
}

}  // namespace
}  // namespace hm::net
