// Oversubscribed edge-switch topology: uplink constraints only bind for
// flows crossing switch boundaries (the mechanism behind Figure 4's
// contention at 30 concurrent migrations).
#include <gtest/gtest.h>

#include "net/flow_network.h"
#include "sim/simulator.h"

namespace hm::net {
namespace {

constexpr double kNic = 100e6;

struct GroupFixture {
  sim::Simulator s;
  FlowNetwork net;
  GroupFixture() : net(s, FlowNetworkConfig{1e12, 0.0, 8e9}) {}
};

sim::Task xfer(FlowNetwork* net, NodeId a, NodeId b, double bytes, double* done_at,
               sim::Simulator* s) {
  co_await net->transfer(a, b, bytes, TrafficClass::kMemory);
  *done_at = s->now();
}

TEST(SwitchGroups, IntraSwitchFlowsIgnoreUplink) {
  GroupFixture f;
  const SwitchGroupId sw = f.net.add_switch_group(10e6);  // tiny uplink
  const NodeId a = f.net.add_node(kNic, sw), b = f.net.add_node(kNic, sw);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);  // full NIC speed despite the uplink
}

TEST(SwitchGroups, CrossSwitchFlowBoundByUplink) {
  GroupFixture f;
  const SwitchGroupId sw1 = f.net.add_switch_group(25e6);
  const SwitchGroupId sw2 = f.net.add_switch_group(25e6);
  const NodeId a = f.net.add_node(kNic, sw1), b = f.net.add_node(kNic, sw2);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 4.0, 1e-6);  // 25 MB/s uplink
}

TEST(SwitchGroups, UplinkSharedByCrossFlowsOnly) {
  GroupFixture f;
  const SwitchGroupId sw1 = f.net.add_switch_group(50e6);
  const SwitchGroupId sw2 = f.net.add_switch_group(1e12);
  const NodeId a = f.net.add_node(kNic, sw1);
  const NodeId b = f.net.add_node(kNic, sw1);
  const NodeId c = f.net.add_node(kNic, sw1);
  const NodeId d = f.net.add_node(kNic, sw2);
  const NodeId e = f.net.add_node(kNic, sw2);
  double cross1 = -1, cross2 = -1, local = -1;
  // Two cross-switch flows share the 50 MB/s uplink of sw1.
  f.s.spawn(xfer(&f.net, a, d, 50e6, &cross1, &f.s));
  f.s.spawn(xfer(&f.net, b, e, 50e6, &cross2, &f.s));
  // An intra-switch flow does not touch the uplink.
  f.s.spawn(xfer(&f.net, c, a, 100e6, &local, &f.s));
  f.s.run();
  EXPECT_NEAR(cross1, 2.0, 1e-6);  // 25 MB/s each across the uplink
  EXPECT_NEAR(cross2, 2.0, 1e-6);
  EXPECT_NEAR(local, 1.0, 1e-6);  // NIC-bound... a's ingress is free
}

TEST(SwitchGroups, DownlinkIsAlsoConstrained) {
  GroupFixture f;
  const SwitchGroupId sw1 = f.net.add_switch_group(1e12);
  const SwitchGroupId sw2 = f.net.add_switch_group(40e6);
  const NodeId a = f.net.add_node(kNic, sw1), b = f.net.add_node(kNic, sw1);
  const NodeId c = f.net.add_node(kNic, sw2), d = f.net.add_node(kNic, sw2);
  double d1 = -1, d2 = -1;
  // Both flows converge INTO sw2: its downlink (40 MB/s) is the bottleneck.
  f.s.spawn(xfer(&f.net, a, c, 40e6, &d1, &f.s));
  f.s.spawn(xfer(&f.net, b, d, 40e6, &d2, &f.s));
  f.s.run();
  EXPECT_NEAR(d1, 2.0, 1e-6);
  EXPECT_NEAR(d2, 2.0, 1e-6);
}

TEST(SwitchGroups, GroupZeroIsUnlimitedDefault) {
  GroupFixture f;
  const NodeId a = f.net.add_node(kNic), b = f.net.add_node(kNic);
  EXPECT_EQ(f.net.group_of(a), 0u);
  double done_at = -1;
  f.s.spawn(xfer(&f.net, a, b, 100e6, &done_at, &f.s));
  f.s.run();
  EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(SwitchGroups, MaxMinAcrossMixedConstraints) {
  // One flow bound by an uplink, another free: the free flow must pick up
  // the remaining NIC capacity of the shared source.
  GroupFixture f;
  const SwitchGroupId sw1 = f.net.add_switch_group(20e6);
  const SwitchGroupId sw2 = f.net.add_switch_group(1e12);
  const NodeId src = f.net.add_node(kNic, sw1);
  const NodeId far = f.net.add_node(kNic, sw2);   // via the 20 MB/s uplink
  const NodeId near = f.net.add_node(kNic, sw1);  // intra-switch
  double d_far = -1, d_near = -1;
  f.s.spawn(xfer(&f.net, src, far, 20e6, &d_far, &f.s));
  f.s.spawn(xfer(&f.net, src, near, 80e6, &d_near, &f.s));
  f.s.run();
  EXPECT_NEAR(d_far, 1.0, 1e-6);   // 20 MB/s (uplink bound)
  EXPECT_NEAR(d_near, 1.0, 1e-6);  // 80 MB/s (gets the NIC remainder)
}

class UplinkSweep : public ::testing::TestWithParam<int> {};

TEST_P(UplinkSweep, AggregateNeverExceedsUplink) {
  const int n = GetParam();
  GroupFixture f;
  const SwitchGroupId sw1 = f.net.add_switch_group(60e6);
  const SwitchGroupId sw2 = f.net.add_switch_group(1e12);
  for (int i = 0; i < n; ++i) {
    const NodeId a = f.net.add_node(kNic, sw1);
    const NodeId b = f.net.add_node(kNic, sw2);
    f.s.spawn([](FlowNetwork* net, NodeId x, NodeId y) -> sim::Task {
      co_await net->transfer(x, y, 10e6, TrafficClass::kMemory);
    }(&f.net, a, b));
  }
  f.s.run_until(1e-3);
  EXPECT_LE(f.net.current_rate_sum(), 60e6 * (1 + 1e-9));
  f.s.run();
}

INSTANTIATE_TEST_SUITE_P(CrossFlows, UplinkSweep, ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace hm::net
