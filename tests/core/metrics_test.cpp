#include "core/metrics.h"

#include <gtest/gtest.h>

#include <string>

namespace hm::core {
namespace {

TEST(Metrics, MigrationTimeIsReleaseMinusRequest) {
  MigrationRecord m;
  m.t_request = 10;
  m.t_source_released = 45;
  EXPECT_DOUBLE_EQ(m.migration_time(), 35);
}

TEST(Metrics, AggregatesOverMigrations) {
  Metrics ms;
  auto& a = ms.new_migration(0);
  a.t_request = 0;
  a.t_source_released = 10;
  a.downtime_s = 0.02;
  auto& b = ms.new_migration(1);
  b.t_request = 5;
  b.t_source_released = 35;
  b.downtime_s = 0.05;
  EXPECT_DOUBLE_EQ(ms.total_migration_time(), 40);
  EXPECT_DOUBLE_EQ(ms.avg_migration_time(), 20);
  EXPECT_DOUBLE_EQ(ms.max_downtime(), 0.05);
  EXPECT_EQ(ms.migrations().size(), 2u);
}

TEST(Metrics, EmptyMetricsAreZero) {
  Metrics ms;
  EXPECT_DOUBLE_EQ(ms.total_migration_time(), 0);
  EXPECT_DOUBLE_EQ(ms.avg_migration_time(), 0);
  EXPECT_DOUBLE_EQ(ms.max_downtime(), 0);
}

TEST(Metrics, IoStatsThroughput) {
  IoStats io;
  io.bytes_written = 100e6;
  io.write_time_s = 2;
  io.bytes_read = 50e6;
  io.read_time_s = 0.5;
  EXPECT_DOUBLE_EQ(io.write_Bps(), 50e6);
  EXPECT_DOUBLE_EQ(io.read_Bps(), 100e6);
}

TEST(Metrics, IoStatsZeroTimeGivesZeroThroughput) {
  IoStats io;
  io.bytes_written = 1;
  EXPECT_DOUBLE_EQ(io.write_Bps(), 0);
  EXPECT_DOUBLE_EQ(io.read_Bps(), 0);
}

TEST(Metrics, ApproachNamesMatchPaper) {
  EXPECT_STREQ(approach_name(Approach::kHybrid), "our-approach");
  EXPECT_STREQ(approach_name(Approach::kMirror), "mirror");
  EXPECT_STREQ(approach_name(Approach::kPostcopy), "postcopy");
  EXPECT_STREQ(approach_name(Approach::kPrecopy), "precopy");
  EXPECT_STREQ(approach_name(Approach::kPvfsShared), "pvfs-shared");
}

TEST(Metrics, StrategySummariesNonEmpty) {
  for (Approach a : {Approach::kHybrid, Approach::kMirror, Approach::kPostcopy,
                     Approach::kPrecopy, Approach::kPvfsShared}) {
    EXPECT_FALSE(std::string(approach_strategy_summary(a)).empty());
  }
}

}  // namespace
}  // namespace hm::core

namespace hm::core {
namespace {

TEST(Metrics, DependencyWindowIsReleaseMinusControl) {
  MigrationRecord m;
  m.t_request = 0;
  m.t_control_transfer = 30;
  m.t_source_released = 42;
  EXPECT_DOUBLE_EQ(m.dependency_window(), 12);
}

TEST(Metrics, DependencyWindowZeroForPushBasedSchemes) {
  MigrationRecord m;
  m.t_control_transfer = 30;
  m.t_source_released = 30;  // precopy/mirror release at control transfer
  EXPECT_DOUBLE_EQ(m.dependency_window(), 0);
}

}  // namespace
}  // namespace hm::core
