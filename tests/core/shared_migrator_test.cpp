#include "core/shared_migrator.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "sim/simulator.h"
#include "vm/compute_node.h"

namespace hm::core {
namespace {

using storage::kMiB;

struct SharedFixture {
  sim::Simulator s;
  vm::Cluster cluster;
  std::unique_ptr<storage::PvfsBackend> backend;
  Metrics metrics;
  MigrationRecord* rec;

  SharedFixture() : cluster(s, make_cfg()) {
    backend = std::make_unique<storage::PvfsBackend>(*cluster.pvfs(),
                                                     cluster.config().image, 0);
    rec = &metrics.new_migration(0);
  }
  static vm::ClusterConfig make_cfg() {
    vm::ClusterConfig cfg;
    cfg.num_nodes = 4;
    cfg.nic_Bps = 100e6;
    cfg.image = storage::ImageConfig{64 * kMiB, static_cast<std::uint32_t>(kMiB)};
    cfg.enable_pvfs = true;
    return cfg;
  }
};

TEST(SharedSession, NoStorageTransferAtAll) {
  SharedFixture f;
  SharedSession session(f.s, f.cluster, *f.backend, /*dst=*/1, *f.rec);
  session.start();
  bool done = false;
  f.s.spawn([](SharedSession* ss, bool* d) -> sim::Task {
    co_await ss->pre_control_transfer();
    ss->transfer_control();
    co_await ss->wait_source_released();
    *d = true;
  }(&session, &done));
  f.s.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush),
                   0.0);
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePull),
                   0.0);
}

TEST(SharedSession, ClientBindingFollowsControlTransfer) {
  SharedFixture f;
  SharedSession session(f.s, f.cluster, *f.backend, /*dst=*/2, *f.rec);
  session.start();
  EXPECT_EQ(f.backend->client_node(), 0u);
  session.transfer_control();
  EXPECT_EQ(f.backend->client_node(), 2u);
  EXPECT_TRUE(session.control_transferred());
}

TEST(SharedSession, IoAfterTransferComesFromNewNode) {
  SharedFixture f;
  SharedSession session(f.s, f.cluster, *f.backend, /*dst=*/2, *f.rec);
  session.start();
  session.transfer_control();
  f.s.spawn([](storage::PvfsBackend* b) -> sim::Task {
    co_await b->backend_write_chunk(0);
  }(f.backend.get()));
  f.s.run();
  // Writes now leave node 2, not node 0 (visible as PVFS traffic).
  EXPECT_GT(f.cluster.network().traffic_bytes(net::TrafficClass::kPvfsData), 0.0);
}

TEST(SharedSession, DoesNotConvergeWithMemory) {
  SharedFixture f;
  SharedSession session(f.s, f.cluster, *f.backend, 1, *f.rec);
  EXPECT_FALSE(session.converges_with_memory());
  EXPECT_DOUBLE_EQ(session.residual_storage_bytes(), 0.0);
}

}  // namespace
}  // namespace hm::core
