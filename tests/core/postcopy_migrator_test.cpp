#include "core/postcopy_migrator.h"

#include <gtest/gtest.h>

#include "session_fixture.h"

namespace hm::core {
namespace {

using testing::SessionFixture;
using storage::ChunkId;
using storage::kMiB;

std::unique_ptr<HybridSession> make_session(SessionFixture& f, PostcopyConfig cfg = {}) {
  auto s = make_postcopy_session(f.s, f.cluster, &f.mgr, /*dst=*/1, *f.rec, cfg);
  f.mgr.begin_migration(s.get());
  return s;
}

TEST(PostcopySession, NeverPushes) {
  SessionFixture f;
  f.populate(10);
  auto session = make_session(f);
  session->start();
  f.s.run();  // plenty of idle time in the active phase
  EXPECT_EQ(session->chunks_pushed(), 0u);
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush),
                   0.0);
}

TEST(PostcopySession, EveryChunkTransferredExactlyOnce) {
  SessionFixture f;
  f.populate(10);
  auto session = make_session(f);
  session->start();
  // Heavy rewriting during the active phase: post-copy does not care.
  for (int i = 0; i < 5; ++i)
    for (ChunkId c = 0; c < 10; ++c) f.write_chunk_now(c);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  for (ChunkId c = 0; c < 10; ++c)
    EXPECT_EQ(session->transfer_count(c), 1u) << "chunk " << c;
  EXPECT_EQ(session->chunks_pulled(), 10u);
}

TEST(PostcopySession, GuaranteedConvergenceRegardlessOfWriteRate) {
  SessionFixture f;
  auto session = make_session(f);
  session->start();
  // Write storm with no pauses at all.
  for (int i = 0; i < 100; ++i) f.write_chunk_async(static_cast<ChunkId>(i % 8));
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  EXPECT_EQ(session->remaining_size(), 0u);
  EXPECT_LE(session->chunks_pulled(), 8u);
}

TEST(PostcopySession, WriteCountsStillDrivePullPriority) {
  SessionFixture f;
  auto session = make_session(f);
  session->start();
  for (int i = 0; i < 5; ++i) f.write_chunk_now(2);
  for (int i = 0; i < 3; ++i) f.write_chunk_now(6);
  for (int i = 0; i < 1; ++i) f.write_chunk_now(4);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  ASSERT_EQ(session->pull_log().size(), 3u);
  EXPECT_EQ(session->pull_log()[0], 2u);  // hottest first
  EXPECT_EQ(session->pull_log()[1], 6u);
  EXPECT_EQ(session->pull_log()[2], 4u);
}

TEST(PostcopySession, MinimalTrafficProperty) {
  // Postcopy moves every modified chunk exactly once: total storage traffic
  // equals the modified set size — the minimum possible (Figure 3(b)).
  SessionFixture f;
  f.populate(7);
  auto session = make_session(f);
  session->start();
  for (int i = 0; i < 3; ++i) f.write_chunk_now(0);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  const double storage_traffic =
      f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush) +
      f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePull);
  EXPECT_DOUBLE_EQ(storage_traffic, 7.0 * kMiB);
}

TEST(PostcopySession, FifoOrderOption) {
  SessionFixture f;
  PostcopyConfig cfg;
  cfg.pull_order = PullOrder::kFifo;
  auto session = make_session(f, cfg);
  session->start();
  for (int i = 0; i < 4; ++i) f.write_chunk_now(9);
  for (int i = 0; i < 2; ++i) f.write_chunk_now(1);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  EXPECT_EQ(session->pull_log(), (std::vector<ChunkId>{1, 9}));
}

}  // namespace
}  // namespace hm::core
