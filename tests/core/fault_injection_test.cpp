// Abort / retry / resume with partial chunk state, driven directly at the
// session layer: an aborted attempt surrenders its partial destination
// replica (take_partial_destination), the manager keeps the preserved valid
// set honest while the VM writes between attempts, and a resumed session
// (adopt_destination) never re-pushes still-current chunks.
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_migrator.h"
#include "core/precopy_migrator.h"
#include "session_fixture.h"

namespace hm::core {
namespace {

using storage::ChunkId;
using testing::SessionFixture;

std::unique_ptr<HybridSession> make_session(SessionFixture& f, HybridConfig cfg = {}) {
  auto s = std::make_unique<HybridSession>(f.s, f.cluster, &f.mgr, /*dst=*/1, *f.rec, cfg);
  f.mgr.begin_migration(s.get());
  return s;
}

TEST(FaultInjection, HybridAbortMidPushPreservesPartialState) {
  SessionFixture f;
  f.populate(8);
  auto session = make_session(f);
  session->start();
  // A chunk takes ~30 ms to push (55 MB/s disk read + 100 MB/s wire): stop a
  // few chunks in. populate() advanced the clock, so offset from now().
  f.s.run_until(f.s.now() + 0.1);
  session->abort();
  f.s.run();  // the push loop observes the flag and unwinds
  EXPECT_TRUE(session->aborted());
  const std::uint64_t pushed = session->chunks_pushed();
  EXPECT_GT(pushed, 0u);
  EXPECT_LT(pushed, 8u);
  util::DirtyBitmap valid{0};
  std::unique_ptr<storage::ChunkStore> store = session->take_partial_destination(&valid);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(valid.count(), pushed);
  for (ChunkId c = 0; c < 8; ++c)
    if (valid.test(c)) EXPECT_TRUE(store->modified(c)) << c;
  // The replica was handed over: a second take yields nothing.
  util::DirtyBitmap again{0};
  EXPECT_EQ(session->take_partial_destination(&again), nullptr);
  f.mgr.end_migration();
}

TEST(FaultInjection, LocalWriteBetweenAttemptsInvalidatesResumedChunk) {
  SessionFixture f;
  f.populate(4);
  auto session = make_session(f);
  session->start();
  f.s.run();
  session->abort();
  f.s.run();
  util::DirtyBitmap valid{0};
  std::unique_ptr<storage::ChunkStore> store = session->take_partial_destination(&valid);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(valid.count(), 4u);
  f.mgr.end_migration();
  f.mgr.resume_state().emplace(MigrationManager::ResumeState{
      std::move(store), std::move(valid), /*dst_node=*/1, /*dst_epoch=*/0});
  // The VM keeps running between attempts: a source write makes the
  // preserved destination copy of that chunk stale.
  f.write_chunk_now(2);
  ASSERT_TRUE(f.mgr.resume_state().has_value());
  EXPECT_FALSE(f.mgr.resume_state()->valid.test(2));
  EXPECT_TRUE(f.mgr.resume_state()->valid.test(0));
  EXPECT_TRUE(f.mgr.resume_state()->valid.test(1));
  EXPECT_TRUE(f.mgr.resume_state()->valid.test(3));
  EXPECT_EQ(f.mgr.resume_state()->valid.count(), 3u);
}

TEST(FaultInjection, AdoptedDestinationSkipsStillValidChunks) {
  SessionFixture f;
  f.populate(6);
  auto first = make_session(f);
  first->start();
  f.s.run();
  EXPECT_EQ(first->chunks_pushed(), 6u);
  first->abort();
  f.s.run();
  util::DirtyBitmap valid{0};
  std::unique_ptr<storage::ChunkStore> store = first->take_partial_destination(&valid);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(valid.count(), 6u);
  f.mgr.end_migration();
  // Chunk 3 went stale between attempts (e.g. a guest write).
  valid.reset(3);
  auto second = make_session(f);
  second->adopt_destination(std::move(store), std::move(valid));
  second->start();
  f.s.run();
  // Only the invalidated chunk crosses the wire again.
  EXPECT_EQ(second->chunks_pushed(), 1u);
  EXPECT_EQ(second->remaining_size(), 0u);
  f.sync_and_transfer(*second);
  for (ChunkId c = 0; c < 6; ++c) {
    EXPECT_TRUE(f.mgr.replica().present(c)) << c;
    EXPECT_TRUE(f.mgr.replica().modified(c)) << c;
  }
  f.wait_release(*second);
  f.mgr.end_migration();
}

TEST(FaultInjection, PrecopyTakePartialExcludesRedirtiedChunks) {
  SessionFixture f;
  f.populate(4);
  PrecopySession session(f.s, f.cluster, &f.mgr, /*dst=*/1, *f.rec);
  f.mgr.begin_migration(&session);
  session.start();  // bulk phase queues all 4 allocated chunks
  bool done = false;
  f.s.spawn([](PrecopySession* ss, bool* d) -> sim::Task {
    co_await ss->storage_round();
    *d = true;
  }(&session, &done));
  f.s.run_while_pending([&] { return done; });
  EXPECT_EQ(session.chunks_sent(), 4u);
  // A guest write after the bulk copy re-dirties chunk 1: its destination
  // copy is outdated and must not be reported as valid.
  f.write_chunk_now(1);
  session.abort();
  f.s.run();
  util::DirtyBitmap valid{0};
  std::unique_ptr<storage::ChunkStore> store = session.take_partial_destination(&valid);
  ASSERT_NE(store, nullptr);
  EXPECT_TRUE(valid.test(0));
  EXPECT_FALSE(valid.test(1));
  EXPECT_TRUE(valid.test(2));
  EXPECT_TRUE(valid.test(3));
  f.mgr.end_migration();
}

TEST(FaultInjection, AbortAfterControlTransferYieldsNoPartialState) {
  SessionFixture f;
  f.populate(3);
  auto session = make_session(f);
  session->start();
  f.s.run();
  f.sync_and_transfer(*session);
  EXPECT_TRUE(session->control_transferred());
  util::DirtyBitmap valid{0};
  // Control moved: the destination replica is live, not salvage.
  EXPECT_EQ(session->take_partial_destination(&valid), nullptr);
  f.wait_release(*session);
  f.mgr.end_migration();
}

}  // namespace
}  // namespace hm::core
