#include "core/hybrid_migrator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "session_fixture.h"

namespace hm::core {
namespace {

using testing::SessionFixture;
using storage::ChunkId;
using storage::kMiB;

std::unique_ptr<HybridSession> make_session(SessionFixture& f, HybridConfig cfg = {}) {
  auto s = std::make_unique<HybridSession>(f.s, f.cluster, &f.mgr, /*dst=*/1, *f.rec, cfg);
  f.mgr.begin_migration(s.get());
  return s;
}

TEST(HybridSession, PushPhaseStreamsModifiedChunksToDestination) {
  SessionFixture f;
  f.populate(8);
  auto session = make_session(f);
  session->start();
  f.s.run();  // let BACKGROUND_PUSH drain
  EXPECT_EQ(session->chunks_pushed(), 8u);
  EXPECT_EQ(session->remaining_size(), 0u);
}

TEST(HybridSession, PushedChunksLandInDestReplica) {
  SessionFixture f;
  f.populate(4);
  auto session = make_session(f);
  session->start();
  f.s.run();
  f.sync_and_transfer(*session);
  // After control transfer the manager's active replica is the destination.
  for (ChunkId c = 0; c < 4; ++c) {
    EXPECT_TRUE(f.mgr.replica().present(c)) << c;
    EXPECT_TRUE(f.mgr.replica().modified(c)) << c;
  }
  EXPECT_EQ(f.mgr.node(), 1u);
}

TEST(HybridSession, WriteDuringPushRequeuesChunk) {
  SessionFixture f;
  f.populate(2);
  auto session = make_session(f);
  session->start();
  f.s.run();  // both pushed
  EXPECT_EQ(session->chunks_pushed(), 2u);
  f.write_chunk_now(0);  // re-modified: must be queued and pushed again
  f.s.run();
  EXPECT_EQ(session->chunks_pushed(), 3u);
  EXPECT_EQ(session->write_count(0), 1u);
}

TEST(HybridSession, HotChunksAreNotPushed) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 2;
  auto session = make_session(f, cfg);
  session->start();
  // Write the same chunk 5 times while the session is active.
  for (int i = 0; i < 5; ++i) f.write_chunk_now(7);
  f.s.run();
  EXPECT_EQ(session->write_count(7), 5u);
  // Pushed at most Threshold times, the rest deferred to the pull phase.
  EXPECT_LE(session->transfer_count(7), 2u);
  EXPECT_EQ(session->remaining_size(), 1u);  // still remaining (hot)
}

TEST(HybridSession, PushQueueSkipsChunksThatWentHot) {
  SessionFixture f;
  // 20 cold chunks keep BACKGROUND_PUSH busy long enough for chunk 19 to go
  // hot (3 quick rewrites) before the push task reaches it.
  f.populate(20);
  HybridConfig cfg;
  cfg.threshold = 2;
  auto session = make_session(f, cfg);
  session->start();
  f.write_chunk_async(19);
  f.write_chunk_async(19);
  f.write_chunk_async(19);
  f.s.run();
  EXPECT_EQ(session->write_count(19), 3u);
  EXPECT_GT(session->push_skipped_hot(), 0u);
  EXPECT_EQ(session->remaining_size(), 1u);  // chunk 19 deferred to pull
}

TEST(HybridSession, TransferIoControlShipsRemainingList) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  auto session = make_session(f, cfg);
  session->start();
  for (int i = 0; i < 3; ++i) f.write_chunk_now(1);
  for (int i = 0; i < 2; ++i) f.write_chunk_now(2);
  f.s.run();
  const double control_before =
      f.cluster.network().traffic_bytes(net::TrafficClass::kControl);
  f.sync_and_transfer(*session);
  EXPECT_GT(f.cluster.network().traffic_bytes(net::TrafficClass::kControl),
            control_before);
  f.wait_release(*session);
  EXPECT_EQ(session->remaining_size(), 0u);
}

TEST(HybridSession, PullsOrderedByDecreasingWriteCount) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;  // everything written twice+ becomes hot, nothing pushed
  auto session = make_session(f, cfg);
  session->start();
  // Distinct write counts: chunk 5 -> 4 writes, chunk 2 -> 3, chunk 9 -> 2.
  for (int i = 0; i < 4; ++i) f.write_chunk_now(5);
  for (int i = 0; i < 3; ++i) f.write_chunk_now(2);
  for (int i = 0; i < 2; ++i) f.write_chunk_now(9);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  ASSERT_EQ(session->pull_log().size(), 3u);
  EXPECT_EQ(session->pull_log()[0], 5u);
  EXPECT_EQ(session->pull_log()[1], 2u);
  EXPECT_EQ(session->pull_log()[2], 9u);
}

TEST(HybridSession, OnDemandReadServedWithPriority) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  auto session = make_session(f, cfg);
  session->start();
  // 16 hot chunks with descending counts so chunk 0 would be pulled first
  // and chunk 15 last.
  for (ChunkId c = 0; c < 16; ++c)
    for (ChunkId k = 0; k < 18 - c; ++k) f.write_chunk_now(c);
  f.s.run();
  f.sync_and_transfer(*session);
  // Immediately demand-read the coldest chunk: it must not wait for the
  // other 15 background pulls.
  f.read_chunk_now(15);
  EXPECT_EQ(session->demand_pulls(), 1u);
  const auto& log = session->pull_log();
  const auto pos = std::find(log.begin(), log.end(), 15u) - log.begin();
  EXPECT_LT(pos, 4);  // served near the front, not last
  f.wait_release(*session);
  EXPECT_EQ(session->chunks_pulled(), 16u);
}

TEST(HybridSession, ReadOfInFlightPullWaitsForCompletion) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  auto session = make_session(f, cfg);
  session->start();
  for (int i = 0; i < 2; ++i) f.write_chunk_now(3);
  f.s.run();
  f.sync_and_transfer(*session);
  // The background pull of chunk 3 starts immediately; read it right away.
  f.read_chunk_now(3);
  // No second transfer of the same chunk: the read waited instead.
  EXPECT_EQ(session->transfer_count(3), 1u);
  f.wait_release(*session);
}

TEST(HybridSession, DestinationWriteCancelsPendingPull) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  auto session = make_session(f, cfg);
  session->start();
  for (int i = 0; i < 2; ++i) f.write_chunk_now(4);
  for (int i = 0; i < 3; ++i) f.write_chunk_now(8);  // pulled first (hotter)
  f.s.run();
  f.sync_and_transfer(*session);
  // Overwrite chunk 4 at the destination before its background pull starts.
  f.write_chunk_now(4);
  f.wait_release(*session);
  // Chunk 4 must not have been transferred after the overwrite: either it
  // was never pulled, or an in-flight pull was cancelled.
  EXPECT_TRUE(session->transfer_count(4) == 0 || session->cancelled_pulls() > 0);
  EXPECT_TRUE(f.mgr.replica().modified(4));
}

TEST(HybridSession, SourceReleasedOnlyAfterAllPulls) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  auto session = make_session(f, cfg);
  session->start();
  for (ChunkId c = 0; c < 10; ++c)
    for (int i = 0; i < 2; ++i) f.write_chunk_now(c);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  EXPECT_EQ(session->chunks_pulled(), 10u);
  EXPECT_EQ(session->remaining_size(), 0u);
  EXPECT_GT(f.rec->storage_chunks_pulled, 0.0);
}

TEST(HybridSession, NoModifiedChunksReleasesImmediately) {
  SessionFixture f;
  auto session = make_session(f);
  session->start();
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  EXPECT_EQ(session->chunks_pushed(), 0u);
  EXPECT_EQ(session->chunks_pulled(), 0u);
}

TEST(HybridSession, PushTrafficAccountedAsStoragePush) {
  SessionFixture f;
  f.populate(5);
  auto session = make_session(f);
  session->start();
  f.s.run();
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush),
                   5.0 * kMiB);
}

TEST(HybridSession, PullTrafficAccountedAsStoragePull) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  auto session = make_session(f, cfg);
  session->start();
  for (int i = 0; i < 2; ++i) f.write_chunk_now(0);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePull),
                   1.0 * kMiB);
}

TEST(HybridSession, FifoPullOrderAblation) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  cfg.pull_order = PullOrder::kFifo;
  auto session = make_session(f, cfg);
  session->start();
  for (ChunkId c : {9u, 3u, 6u})
    for (int i = 0; i < 2 + static_cast<int>(c); ++i) f.write_chunk_now(c);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  // FIFO = ascending chunk id regardless of write count.
  EXPECT_EQ(session->pull_log(), (std::vector<ChunkId>{3, 6, 9}));
}

TEST(HybridSession, RandomPullOrderStillCompletes) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  cfg.pull_order = PullOrder::kRandom;
  auto session = make_session(f, cfg);
  session->start();
  for (ChunkId c = 0; c < 12; ++c)
    for (int i = 0; i < 2; ++i) f.write_chunk_now(c);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  EXPECT_EQ(session->chunks_pulled(), 12u);
}

// Property sweep: for any threshold, no chunk is ever transferred more than
// Threshold + 1 times (Threshold pushes + at most one pull).
class ThresholdProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThresholdProperty, PerChunkTransferBound) {
  const std::uint32_t threshold = GetParam();
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = threshold;
  auto session = make_session(f, cfg);
  session->start();
  sim::Rng rng(threshold * 7 + 1);
  // Random write storm over 16 chunks, interleaved with push progress.
  for (int i = 0; i < 200; ++i) {
    f.write_chunk_async(static_cast<ChunkId>(rng.uniform(16)));
    if (i % 10 == 0) f.s.run_until(f.s.now() + 0.01);
  }
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  for (ChunkId c = 0; c < 16; ++c) {
    EXPECT_LE(static_cast<std::uint64_t>(session->transfer_count(c)),
              static_cast<std::uint64_t>(threshold) + 1)
        << "chunk " << c << " exceeded the paper's transfer bound";
  }
  // And the destination replica holds every modified chunk.
  for (ChunkId c = 0; c < 16; ++c) EXPECT_TRUE(f.mgr.replica().present(c));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 10u,
                                           HybridConfig::kUnlimitedThreshold));

}  // namespace
}  // namespace hm::core

namespace hm::core {
namespace {

using testing::SessionFixture;

TEST(HybridDedup, DuplicatesMoveOnlyFingerprints) {
  SessionFixture f;
  f.populate(16);
  HybridConfig cfg;
  cfg.dedup.enabled = true;
  cfg.dedup.duplicate_fraction = 1.0;  // everything is a duplicate
  auto session = make_session(f, cfg);
  session->start();
  f.s.run();
  EXPECT_EQ(session->chunks_pushed(), 16u);
  EXPECT_EQ(session->dedup_hits(), 16u);
  // Fingerprints only: storage traffic far below 16 chunks.
  EXPECT_LT(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush),
            16.0 * 1024);
}

TEST(HybridDedup, DisabledDedupMovesFullChunks) {
  SessionFixture f;
  f.populate(4);
  HybridConfig cfg;
  cfg.dedup.enabled = false;
  cfg.dedup.duplicate_fraction = 1.0;  // must be ignored when disabled
  auto session = make_session(f, cfg);
  session->start();
  f.s.run();
  EXPECT_EQ(session->dedup_hits(), 0u);
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush),
                   4.0 * kMiB);
}

TEST(HybridDedup, PartialFractionSavesProportionally) {
  SessionFixture f;
  f.populate(32);
  HybridConfig cfg;
  cfg.dedup.enabled = true;
  cfg.dedup.duplicate_fraction = 0.5;
  auto session = make_session(f, cfg);
  session->start();
  f.s.run();
  // Statistically about half; allow a wide band for the deterministic draw.
  EXPECT_GT(session->dedup_hits(), 8u);
  EXPECT_LT(session->dedup_hits(), 24u);
}

TEST(HybridDedup, PullPhaseAlsoDeduplicates) {
  SessionFixture f;
  HybridConfig cfg;
  cfg.threshold = 1;
  cfg.dedup.enabled = true;
  cfg.dedup.duplicate_fraction = 1.0;
  auto session = make_session(f, cfg);
  session->start();
  for (int i = 0; i < 2; ++i) f.write_chunk_now(3);
  f.s.run();
  f.sync_and_transfer(*session);
  f.wait_release(*session);
  EXPECT_EQ(session->chunks_pulled(), 1u);
  EXPECT_LT(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePull), 1024.0);
}

TEST(HybridDedup, DuplicateStatusIsStablePerChunk) {
  SessionFixture f;
  f.populate(1);
  HybridConfig cfg;
  cfg.dedup.enabled = true;
  cfg.dedup.duplicate_fraction = 0.5;
  auto session = make_session(f, cfg);
  session->start();
  f.s.run();
  const auto hits_first = session->dedup_hits();
  // Re-push the same chunk: the draw must agree with the first transfer.
  f.write_chunk_now(0);
  f.s.run();
  const auto hits_second = session->dedup_hits();
  EXPECT_TRUE(hits_second == 2 * hits_first || (hits_first == 0 && hits_second == 0));
}

}  // namespace
}  // namespace hm::core
