#include "core/mirror_migrator.h"

#include <gtest/gtest.h>

#include "session_fixture.h"

namespace hm::core {
namespace {

using testing::SessionFixture;
using storage::ChunkId;
using storage::kMiB;

MirrorConfig sparse_cfg() {
  MirrorConfig cfg;
  cfg.copy_full_image = false;  // unit tests exercise the sparse variant
  return cfg;
}

std::unique_ptr<MirrorSession> make_session(SessionFixture& f,
                                            MirrorConfig cfg = sparse_cfg()) {
  auto s = std::make_unique<MirrorSession>(f.s, f.cluster, &f.mgr, /*dst=*/1, *f.rec, cfg);
  f.mgr.begin_migration(s.get());
  return s;
}

TEST(MirrorSession, FullImageModeCopiesWholeDisk) {
  SessionFixture f;
  f.populate(3);
  MirrorConfig cfg;
  cfg.copy_full_image = true;  // Haselhorst-style device-level mirroring
  auto session = make_session(f, cfg);
  session->start();
  f.s.run();
  EXPECT_EQ(session->chunks_copied_background(), f.mgr.replica().num_chunks());
}

TEST(MirrorSession, BackgroundCopyTransfersExistingChunks) {
  SessionFixture f;
  f.populate(6);
  auto session = make_session(f);
  session->start();
  f.s.run();
  EXPECT_EQ(session->chunks_copied_background(), 6u);
}

TEST(MirrorSession, WritesAreMirroredSynchronously) {
  SessionFixture f;
  auto session = make_session(f);
  session->start();
  f.s.run();
  f.write_chunk_now(3);
  EXPECT_EQ(session->writes_mirrored(), 1u);
  // The chunk is already on the destination before control transfer.
  f.sync_and_transfer(*session);
  EXPECT_TRUE(f.mgr.replica().present(3));
}

TEST(MirrorSession, MirroredWriteSlowerThanLocalWrite) {
  // The defining cost of mirroring: a write completes only after the remote
  // copy is durable too, so per-write latency includes a network hop.
  SessionFixture base_f;
  const double t0 = base_f.s.now();
  base_f.write_chunk_now(0);  // no session: local write only
  const double local_latency = base_f.s.now() - t0;

  SessionFixture f;
  auto session = make_session(f);
  session->start();
  f.s.run();
  const double t1 = f.s.now();
  f.write_chunk_now(0);
  const double mirrored_latency = f.s.now() - t1;
  EXPECT_GT(mirrored_latency, local_latency);
}

TEST(MirrorSession, SyncWaitsForBackgroundCopy) {
  SessionFixture f;
  f.populate(20);  // 20 MiB to copy at ~100 MB/s
  auto session = make_session(f);
  session->start();
  const double t0 = f.s.now();
  f.sync_and_transfer(*session);
  EXPECT_GT(f.s.now() - t0, 0.1);  // had to wait for the copy
  EXPECT_EQ(session->chunks_copied_background(), 20u);
}

TEST(MirrorSession, BackgroundCopySkipsAlreadyMirroredChunks) {
  SessionFixture f;
  f.populate(4);
  auto session = make_session(f);
  session->start();
  // Synchronous write to chunk 2 before the background copy reaches it
  // races; after everything settles, chunk 2 must not be double-copied in
  // the background pass.
  f.write_chunk_now(2);
  f.s.run();
  EXPECT_LE(session->chunks_copied_background() + session->writes_mirrored(), 5u);
}

TEST(MirrorSession, DestinationIsFullReplicaAtControlTransfer) {
  SessionFixture f;
  f.populate(5);
  auto session = make_session(f);
  session->start();
  f.write_chunk_now(7);
  f.write_chunk_now(9);
  f.sync_and_transfer(*session);
  for (ChunkId c : {0u, 1u, 2u, 3u, 4u, 7u, 9u})
    EXPECT_TRUE(f.mgr.replica().present(c)) << c;
}

TEST(MirrorSession, SourceReleasedImmediatelyAfterControl) {
  SessionFixture f;
  f.populate(2);
  auto session = make_session(f);
  session->start();
  f.sync_and_transfer(*session);
  const double t = f.s.now();
  f.wait_release(*session);
  EXPECT_DOUBLE_EQ(f.s.now(), t);
}

TEST(MirrorSession, WritesAfterControlStayLocal) {
  SessionFixture f;
  f.populate(1);
  auto session = make_session(f);
  session->start();
  f.sync_and_transfer(*session);
  const auto mirrored_before = session->writes_mirrored();
  f.write_chunk_now(11);
  EXPECT_EQ(session->writes_mirrored(), mirrored_before);
  EXPECT_TRUE(f.mgr.replica().modified(11));
}

TEST(MirrorSession, TrafficAccountedAsStoragePush) {
  SessionFixture f;
  f.populate(3);
  auto session = make_session(f);
  session->start();
  f.s.run();
  f.write_chunk_now(8);
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush),
                   4.0 * kMiB);
}

}  // namespace
}  // namespace hm::core
