#include "core/precopy_migrator.h"

#include <gtest/gtest.h>

#include "session_fixture.h"

namespace hm::core {
namespace {

using testing::SessionFixture;
using storage::ChunkId;
using storage::kMiB;

std::unique_ptr<PrecopySession> make_session(SessionFixture& f, PrecopyConfig cfg = {}) {
  auto s = std::make_unique<PrecopySession>(f.s, f.cluster, &f.mgr, /*dst=*/1, *f.rec, cfg);
  f.mgr.begin_migration(s.get());
  return s;
}

void run_round(SessionFixture& f, PrecopySession& session) {
  bool done = false;
  f.s.spawn([](PrecopySession* ss, bool* d) -> sim::Task {
    co_await ss->storage_round();
    *d = true;
  }(&session, &done));
  f.s.run_while_pending([&] { return done; });
}

TEST(PrecopySession, ConvergesWithMemory) {
  SessionFixture f;
  auto session = make_session(f);
  EXPECT_TRUE(session->converges_with_memory());
}

TEST(PrecopySession, BulkPhaseQueuesAllModifiedChunks) {
  SessionFixture f;
  f.populate(6);
  auto session = make_session(f);
  session->start();
  EXPECT_DOUBLE_EQ(session->residual_storage_bytes(), 6.0 * kMiB);
}

TEST(PrecopySession, StorageRoundDrainsDirtySet) {
  SessionFixture f;
  f.populate(6);
  auto session = make_session(f);
  session->start();
  run_round(f, *session);
  EXPECT_DOUBLE_EQ(session->residual_storage_bytes(), 0.0);
  EXPECT_EQ(session->chunks_sent(), 6u);
  EXPECT_EQ(session->rounds(), 1u);
}

TEST(PrecopySession, RewrittenChunksAreResent) {
  SessionFixture f;
  f.populate(3);
  auto session = make_session(f);
  session->start();
  run_round(f, *session);
  // Rewrite one chunk: the next round must re-send it — the repeated
  // transfer pathology the paper criticizes.
  f.write_chunk_now(1);
  EXPECT_DOUBLE_EQ(session->residual_storage_bytes(), 1.0 * kMiB);
  run_round(f, *session);
  EXPECT_EQ(session->send_count(1), 2u);
  EXPECT_EQ(session->chunks_sent(), 4u);
}

TEST(PrecopySession, UnboundedResendUnderRepeatedWrites) {
  SessionFixture f;
  f.populate(1);
  auto session = make_session(f);
  session->start();
  for (int round = 0; round < 10; ++round) {
    run_round(f, *session);
    f.write_chunk_now(0);
  }
  run_round(f, *session);
  // Unlike the hybrid scheme (bounded by Threshold), precopy has no cap.
  EXPECT_GE(session->send_count(0), 10u);
}

TEST(PrecopySession, PreControlTransferFlushesResidual) {
  SessionFixture f;
  f.populate(4);
  auto session = make_session(f);
  session->start();
  f.sync_and_transfer(*session);
  EXPECT_DOUBLE_EQ(session->residual_storage_bytes(), 0.0);
  // Destination replica complete after control transfer.
  for (ChunkId c = 0; c < 4; ++c) EXPECT_TRUE(f.mgr.replica().present(c));
}

TEST(PrecopySession, SourceReleasedImmediatelyAfterControl) {
  SessionFixture f;
  f.populate(2);
  auto session = make_session(f);
  session->start();
  f.sync_and_transfer(*session);
  const double t = f.s.now();
  f.wait_release(*session);
  EXPECT_DOUBLE_EQ(f.s.now(), t);  // no passive phase
}

TEST(PrecopySession, WritesAfterControlTransferStayLocal) {
  SessionFixture f;
  f.populate(1);
  auto session = make_session(f);
  session->start();
  f.sync_and_transfer(*session);
  const auto sent_before = session->chunks_sent();
  f.write_chunk_now(9);
  EXPECT_EQ(session->chunks_sent(), sent_before);  // no more transfers
  EXPECT_TRUE(f.mgr.replica().modified(9));
}

TEST(PrecopySession, RateCapSlowsRounds) {
  SessionFixture f;
  f.populate(8);
  PrecopyConfig cfg;
  cfg.rate_cap_Bps = 1e6;  // 1 MB/s
  auto session = make_session(f, cfg);
  session->start();
  const double t0 = f.s.now();
  run_round(f, *session);
  EXPECT_GT(f.s.now() - t0, 7.0);  // 8 MiB at 1 MB/s
}

TEST(PrecopySession, TrafficAccountedAsStoragePush) {
  SessionFixture f;
  f.populate(5);
  auto session = make_session(f);
  session->start();
  run_round(f, *session);
  EXPECT_DOUBLE_EQ(f.cluster.network().traffic_bytes(net::TrafficClass::kStoragePush),
                   5.0 * kMiB);
}

TEST(PrecopySession, CowTracksAllocations) {
  SessionFixture f;
  f.populate(3);
  auto session = make_session(f);
  session->start();
  f.write_chunk_now(10);
  EXPECT_EQ(session->cow().allocated_count(), 4u);
}

}  // namespace
}  // namespace hm::core
