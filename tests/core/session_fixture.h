// Shared fixture for driving storage migration sessions directly (without
// a hypervisor): a small cluster, one migration manager with pre-populated
// modified chunks, and helpers to run the paper's protocol steps.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "core/metrics.h"
#include "core/migration_manager.h"
#include "sim/simulator.h"
#include "vm/compute_node.h"

namespace hm::core::testing {

using storage::kMiB;

inline vm::ClusterConfig small_cluster_cfg() {
  vm::ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.nic_Bps = 100e6;
  cfg.network.latency_s = 1e-4;
  cfg.image = storage::ImageConfig{64 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.disk = storage::DiskConfig{55e6, 0.0};
  return cfg;
}

struct SessionFixture {
  sim::Simulator s;
  vm::Cluster cluster;
  MigrationManager mgr;
  Metrics metrics;
  MigrationRecord* rec;

  explicit SessionFixture(vm::ClusterConfig ccfg = small_cluster_cfg())
      : cluster(s, ccfg), mgr(s, cluster, /*home=*/0, /*vm_id=*/0) {
    rec = &metrics.new_migration(0);
  }

  /// Write chunk `c` through the manager (routes through the active session
  /// if one is attached) and drain the simulator.
  void write_chunk_now(storage::ChunkId c) {
    s.spawn([](MigrationManager* m, storage::ChunkId ch) -> sim::Task {
      co_await m->backend_write_chunk(ch);
    }(&mgr, c));
    s.run();
  }

  /// Write without draining (lets pushes race with writes).
  void write_chunk_async(storage::ChunkId c) {
    s.spawn([](MigrationManager* m, storage::ChunkId ch) -> sim::Task {
      co_await m->backend_write_chunk(ch);
    }(&mgr, c));
  }

  void read_chunk_now(storage::ChunkId c) {
    s.spawn([](MigrationManager* m, storage::ChunkId ch) -> sim::Task {
      co_await m->backend_read_chunk(ch);
    }(&mgr, c));
    s.run();
  }

  /// Pre-populate the source replica with `n` modified chunks (no session).
  void populate(std::uint32_t n) {
    for (storage::ChunkId c = 0; c < n; ++c) write_chunk_now(c);
  }

  /// Run the hypervisor-side protocol: SYNC then control transfer.
  void sync_and_transfer(StorageMigrationSession& session) {
    bool done = false;
    s.spawn([](StorageMigrationSession* ss, bool* d) -> sim::Task {
      co_await ss->pre_control_transfer();
      ss->transfer_control();
      *d = true;
    }(&session, &done));
    s.run_while_pending([&] { return done; });
  }

  /// Await source release (drains everything).
  void wait_release(StorageMigrationSession& session) {
    bool done = false;
    s.spawn([](StorageMigrationSession* ss, bool* d) -> sim::Task {
      co_await ss->wait_source_released();
      *d = true;
    }(&session, &done));
    s.run_while_pending([&] { return done; });
  }
};

}  // namespace hm::core::testing
