#include "cloud/predictor.h"

#include <gtest/gtest.h>

namespace hm::cloud {
namespace {

using storage::kMiB;

struct PredictorFixture {
  sim::Simulator s;
  vm::Cluster cluster;
  Middleware mw;
  vm::VmInstance& vm;

  PredictorFixture()
      : cluster(s, make_cluster()), mw(s, cluster, ApproachConfig{}), vm(mw.deploy(0, make_vm())) {}

  static vm::ClusterConfig make_cluster() {
    vm::ClusterConfig cfg;
    cfg.num_nodes = 6;
    cfg.image = storage::ImageConfig{256 * kMiB, static_cast<std::uint32_t>(kMiB)};
    return cfg;
  }
  static vm::VmConfig make_vm() {
    vm::VmConfig cfg;
    cfg.memory.ram_bytes = 256 * kMiB;
    cfg.memory.page_bytes = kMiB;
    cfg.memory.base_used_bytes = 16 * kMiB;
    cfg.cache.capacity_bytes = 64 * kMiB;
    cfg.cache.dirty_limit_bytes = 32 * kMiB;
    cfg.cache.write_Bps = 100e6;
    return cfg;
  }
};

sim::Task bursty_writer(vm::VmInstance* vm, double burst_until, double quiet_until) {
  // Heavy writes until burst_until, then silence.
  auto& s = vm->cluster().sim();
  while (s.now() < burst_until) {
    co_await vm->file_write(64 * kMiB, 8 * kMiB);
    co_await vm->compute(0.05);
  }
  co_await s.delay(quiet_until - s.now());
}

TEST(IoActivityMonitor, TracksWriteRate) {
  PredictorFixture f;
  IoActivityMonitor mon(f.s, f.vm, IoMonitorConfig{0.5, 0.5});
  mon.start();
  f.s.spawn(bursty_writer(&f.vm, 5.0, 6.0));
  f.s.run_until(4.0);
  EXPECT_GT(mon.write_rate_ewma_Bps(), 10e6);  // busy
  f.s.run_until(10.0);
  EXPECT_LT(mon.write_rate_ewma_Bps(), 10e6);  // quiet (EWMA decayed)
  mon.stop();
  f.s.run();
}

TEST(IoActivityMonitor, StartIsIdempotent) {
  PredictorFixture f;
  IoActivityMonitor mon(f.s, f.vm);
  mon.start();
  mon.start();
  EXPECT_TRUE(mon.running());
  f.s.run_until(3.0);
  EXPECT_GE(mon.samples(), 2u);
  mon.stop();
  f.s.run();
}

TEST(MigrationPlanner, WaitsForLullThenMigrates) {
  PredictorFixture f;
  f.s.spawn(bursty_writer(&f.vm, 8.0, 9.0));
  MigrationPlanner planner(f.s, f.mw);
  bool done = false;
  f.s.spawn([](MigrationPlanner* p, vm::VmInstance* v, bool* d) -> sim::Task {
    LullConfig cfg;
    cfg.lull_threshold_Bps = 5e6;
    cfg.deadline_s = 60.0;
    co_await p->migrate_at_lull(*v, 1, cfg);
    *d = true;
  }(&planner, &f.vm, &done));
  f.s.run_while_pending([&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_FALSE(planner.deadline_forced());
  EXPECT_GT(planner.initiated_at(), 8.0);  // waited out the burst
  EXPECT_EQ(f.vm.node(), 1u);              // migration really happened
}

TEST(MigrationPlanner, DeadlineForcesMigrationUnderConstantPressure) {
  PredictorFixture f;
  f.s.spawn(bursty_writer(&f.vm, 100.0, 101.0));  // never quiet
  MigrationPlanner planner(f.s, f.mw);
  bool done = false;
  f.s.spawn([](MigrationPlanner* p, vm::VmInstance* v, bool* d) -> sim::Task {
    LullConfig cfg;
    cfg.lull_threshold_Bps = 1e6;
    cfg.deadline_s = 10.0;
    co_await p->migrate_at_lull(*v, 2, cfg);
    *d = true;
  }(&planner, &f.vm, &done));
  f.s.run_while_pending([&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_TRUE(planner.deadline_forced());
  EXPECT_NEAR(planner.initiated_at(), 10.0, 1.5);
  EXPECT_EQ(f.vm.node(), 2u);
}

TEST(MigrationPlanner, IdleVmMigratesAfterSettling) {
  PredictorFixture f;
  MigrationPlanner planner(f.s, f.mw);
  bool done = false;
  f.s.spawn([](MigrationPlanner* p, vm::VmInstance* v, bool* d) -> sim::Task {
    co_await p->migrate_at_lull(*v, 1, LullConfig{});
    *d = true;
  }(&planner, &f.vm, &done));
  f.s.run_while_pending([&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_FALSE(planner.deadline_forced());
  EXPECT_LT(planner.initiated_at(), 10.0);  // settles after ~3 samples
}

}  // namespace
}  // namespace hm::cloud
