#include "cloud/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace hm::cloud {
namespace {

TEST(Report, FormatSeconds) { EXPECT_EQ(fmt_seconds(1.234), "1.23 s"); }

TEST(Report, FormatBytesPicksUnit) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024 * 1024), "3.5 MB");
  EXPECT_EQ(fmt_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
}

TEST(Report, FormatPct) { EXPECT_EQ(fmt_pct(0.4265), "42.6%"); }

TEST(Report, FormatFixedUnits) {
  EXPECT_EQ(fmt_mb(10 * 1024.0 * 1024), "10 MB");
  EXPECT_EQ(fmt_gb(1.5 * 1024.0 * 1024 * 1024), "1.50 GB");
}

TEST(Report, FormatDoublePrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
}

TEST(Report, TableAlignsColumns) {
  Table t({"A", "Long header"});
  t.add_row({"value-that-is-long", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("value-that-is-long"), std::string::npos);
  // Separator rows top/bottom + header separator.
  int separators = 0;
  for (std::size_t p = out.find("+--"); p != std::string::npos; p = out.find("+--", p + 1))
    ++separators;
  EXPECT_GE(separators, 3);
}

TEST(Report, TableHandlesShortRows) {
  Table t({"A", "B", "C"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Report, Table1ListsAllApproaches) {
  std::ostringstream os;
  print_table1(os);
  const std::string out = os.str();
  for (const char* name :
       {"our-approach", "mirror", "postcopy", "precopy", "pvfs-shared"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(Report, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Hello");
  EXPECT_NE(os.str().find("=== Hello ==="), std::string::npos);
}

}  // namespace
}  // namespace hm::cloud

namespace hm::cloud {
namespace {

TEST(ReportCsv, PlainCellsAndHeader) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ReportCsv, QuotesCellsWithCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"x,y\"\n");
}

TEST(ReportCsv, EscapesEmbeddedQuotes) {
  Table t({"a"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(ReportCsv, ShortRowsPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace hm::cloud
