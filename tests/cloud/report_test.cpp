#include "cloud/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "cloud/experiment.h"

namespace hm::cloud {
namespace {

TEST(Report, FormatSeconds) { EXPECT_EQ(fmt_seconds(1.234), "1.23 s"); }

TEST(Report, FormatBytesPicksUnit) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024 * 1024), "3.5 MB");
  EXPECT_EQ(fmt_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
}

TEST(Report, FormatPct) { EXPECT_EQ(fmt_pct(0.4265), "42.6%"); }

TEST(Report, FormatFixedUnits) {
  EXPECT_EQ(fmt_mb(10 * 1024.0 * 1024), "10 MB");
  EXPECT_EQ(fmt_gb(1.5 * 1024.0 * 1024 * 1024), "1.50 GB");
}

TEST(Report, FormatDoublePrecision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 0), "3");
}

TEST(Report, TableAlignsColumns) {
  Table t({"A", "Long header"});
  t.add_row({"value-that-is-long", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("value-that-is-long"), std::string::npos);
  // Separator rows top/bottom + header separator.
  int separators = 0;
  for (std::size_t p = out.find("+--"); p != std::string::npos; p = out.find("+--", p + 1))
    ++separators;
  EXPECT_GE(separators, 3);
}

TEST(Report, TableHandlesShortRows) {
  Table t({"A", "B", "C"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Report, Table1ListsAllApproaches) {
  std::ostringstream os;
  print_table1(os);
  const std::string out = os.str();
  for (const char* name :
       {"our-approach", "mirror", "postcopy", "precopy", "pvfs-shared"}) {
    EXPECT_NE(out.find(name), std::string::npos) << name;
  }
}

TEST(Report, BannerContainsTitle) {
  std::ostringstream os;
  print_banner(os, "Hello");
  EXPECT_NE(os.str().find("=== Hello ==="), std::string::npos);
}

}  // namespace
}  // namespace hm::cloud

namespace hm::cloud {
namespace {

TEST(ReportCsv, PlainCellsAndHeader) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ReportCsv, QuotesCellsWithCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"x,y\"\n");
}

TEST(ReportCsv, EscapesEmbeddedQuotes) {
  Table t({"a"});
  t.add_row({"say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n\"say \"\"hi\"\"\"\n");
}

TEST(ReportCsv, ShortRowsPaddedToHeaderWidth) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

}  // namespace
}  // namespace hm::cloud

// --------------------------------------------------------------------------
// Sweep-row JSON shape: the regime-gated field convention. Fields specific
// to a regime (fault recovery, scheduler queueing, audit counters) appear
// if and only if that regime is active, so committed fault-free goldens stay
// byte-identical when a new regime adds fields.

namespace hm::cloud {
namespace {

std::string row_for(const SweepRowOptions& opt) {
  ExperimentResult r;
  r.recovery.max_time_to_recover_s = 1.5;
  r.scheduler.requests = 3;
  std::ostringstream os;
  sweep_row_fields(os, r, opt);
  return os.str();
}

bool has_field(const std::string& row, const char* name) {
  return row.find("\"" + std::string(name) + "\":") != std::string::npos;
}

TEST(SweepRowShape, DefaultRegimeEmitsOnlyTheCoreFields) {
  const std::string row = row_for(SweepRowOptions{});
  for (const char* f : {"completed", "sim_s", "events", "solver_epochs",
                        "coroutine_frames", "avg_migration_s", "total_traffic_gb"})
    EXPECT_TRUE(has_field(row, f)) << f << " missing from: " << row;
  // Regression: max_time_to_recover_s (and the rest of the recovery block),
  // the downtime/queueing percentiles and the audit counters must NOT leak
  // into fault-free, scheduler-free, unaudited rows.
  for (const char* f :
       {"max_time_to_recover_s", "faults_injected", "recovery_p50_s",
        "downtime_p50_s", "requests", "queueing_p50_s", "max_queueing_delay_s",
        "audit_checks", "audit_violations"})
    EXPECT_FALSE(has_field(row, f)) << f << " leaked into: " << row;
}

TEST(SweepRowShape, FaultRegimeAddsRecoveryBlockClosedByDowntimePercentiles) {
  SweepRowOptions opt;
  opt.fault_regime = true;
  const std::string row = row_for(opt);
  for (const char* f : {"faults_injected", "salvaged_chunks", "max_time_to_recover_s",
                        "recovery_p999_s", "downtime_p50_s", "downtime_p999_s"})
    EXPECT_TRUE(has_field(row, f)) << f << " missing from: " << row;
  // Layout compatibility with the pre-scheduler fault goldens: the downtime
  // percentiles close the recovery block.
  EXPECT_GT(row.find("\"downtime_p50_s\":"), row.find("\"recovery_p999_s\":"));
  for (const char* f : {"requests", "queueing_p50_s", "audit_checks"})
    EXPECT_FALSE(has_field(row, f)) << f << " leaked into: " << row;
}

TEST(SweepRowShape, SchedulerRegimeAddsQueueingAndDowntimeFields) {
  SweepRowOptions opt;
  opt.scheduler_regime = true;
  const std::string row = row_for(opt);
  for (const char* f :
       {"requests", "requests_dispatched", "requests_completed",
        "requests_abandoned", "requests_rejected", "preemptions",
        "peak_queue_depth", "peak_running", "queueing_p50_s", "queueing_p99_s",
        "queueing_p999_s", "max_queueing_delay_s", "downtime_p50_s"})
    EXPECT_TRUE(has_field(row, f)) << f << " missing from: " << row;
  for (const char* f : {"faults_injected", "max_time_to_recover_s", "audit_checks"})
    EXPECT_FALSE(has_field(row, f)) << f << " leaked into: " << row;
  EXPECT_NE(row.find("\"requests\": 3"), std::string::npos) << row;
}

TEST(SweepRowShape, AuditFlagAppendsAuditCounters) {
  SweepRowOptions opt;
  opt.audit = true;
  const std::string row = row_for(opt);
  EXPECT_TRUE(has_field(row, "audit_checks")) << row;
  EXPECT_TRUE(has_field(row, "audit_violations")) << row;
}

}  // namespace
}  // namespace hm::cloud
