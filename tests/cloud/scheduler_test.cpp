// Continuous-arrival scheduler: spec parsing, arrival-process determinism,
// placement-map constraint bookkeeping, and the queue-discipline invariants
// cloud/scheduler.h promises — strict priority, no starvation of admitted
// requests, preemption that restores salvaged state, and capacity/
// anti-affinity constraints that hold at every instant of the reconstructed
// occupancy timeline under randomized configs.
#include "cloud/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cloud/experiment.h"
#include "cloud/middleware.h"
#include "cloud/placement.h"
#include "sim/arrival_process.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "vm/compute_node.h"

namespace hm::cloud {
namespace {

using storage::kMiB;

// --------------------------------------------------------------------------
// Spec parsing

TEST(ArrivalSpecParse, PoissonKeysRoundTrip) {
  sim::ArrivalSpec s;
  std::string err;
  ASSERT_TRUE(sim::parse_arrival_spec("poisson:rate=0.5,from=10,until=100,hi=0.25",
                                      &s, &err))
      << err;
  EXPECT_EQ(s.kind, sim::ArrivalKind::kPoisson);
  EXPECT_DOUBLE_EQ(s.rate, 0.5);
  EXPECT_DOUBLE_EQ(s.from, 10.0);
  EXPECT_DOUBLE_EQ(s.until, 100.0);
  EXPECT_DOUBLE_EQ(s.hi_share, 0.25);
  EXPECT_TRUE(s.enabled());
}

TEST(ArrivalSpecParse, OptionalArrivalsPrefixAndNone) {
  sim::ArrivalSpec s;
  std::string err;
  ASSERT_TRUE(sim::parse_arrival_spec("arrivals:poisson:rate=1,count=5", &s, &err));
  EXPECT_EQ(s.kind, sim::ArrivalKind::kPoisson);
  ASSERT_TRUE(sim::parse_arrival_spec("none", &s, &err));
  EXPECT_FALSE(s.enabled());
}

TEST(ArrivalSpecParse, RejectsUnboundedStreams) {
  sim::ArrivalSpec s;
  std::string err;
  EXPECT_FALSE(sim::parse_arrival_spec("poisson:rate=1", &s, &err));
  EXPECT_NE(err.find("unbounded"), std::string::npos) << err;
  EXPECT_FALSE(sim::parse_arrival_spec("diurnal:base=1,amp=0.5", &s, &err));
  EXPECT_NE(err.find("unbounded"), std::string::npos) << err;
}

TEST(ArrivalSpecParse, RejectsBadKeysAndValues) {
  sim::ArrivalSpec s;
  std::string err;
  EXPECT_FALSE(sim::parse_arrival_spec("poisson:rate=1,until=10,bogus=2", &s, &err));
  EXPECT_FALSE(sim::parse_arrival_spec("poisson:rate=-1,until=10", &s, &err));
  EXPECT_FALSE(sim::parse_arrival_spec("poisson:rate=1,until=10,hi=1.5", &s, &err));
  EXPECT_FALSE(sim::parse_arrival_spec("diurnal:base=1,until=10,amp=2", &s, &err));
  EXPECT_FALSE(sim::parse_arrival_spec("poisson:rate=1,until=10,from=20", &s, &err));
  EXPECT_FALSE(sim::parse_arrival_spec("warp:rate=1", &s, &err));
}

TEST(ArrivalSpecParse, TraceSortsInstantsAndRejectsEmpty) {
  sim::ArrivalSpec s;
  std::string err;
  ASSERT_TRUE(sim::parse_arrival_spec("trace:5,1,3,hi=1", &s, &err)) << err;
  EXPECT_EQ(s.kind, sim::ArrivalKind::kTrace);
  ASSERT_EQ(s.times.size(), 3u);
  EXPECT_DOUBLE_EQ(s.times[0], 1.0);
  EXPECT_DOUBLE_EQ(s.times[2], 5.0);
  EXPECT_DOUBLE_EQ(s.hi_share, 1.0);
  EXPECT_FALSE(sim::parse_arrival_spec("trace:hi=0.5", &s, &err));
  EXPECT_FALSE(sim::parse_arrival_spec("trace:1,-3", &s, &err));
}

TEST(SchedulerSpecParse, SchedKnobsRoundTrip) {
  SchedulerConfig cfg;
  std::string err;
  ASSERT_TRUE(parse_scheduler_spec(
      "poisson:rate=0.5,until=60,hi=0.25"
      ";sched:concurrent=3,capacity=2,groups=4,policy=round-robin,preempt=0,"
      "attempts=5",
      &cfg, &err))
      << err;
  EXPECT_TRUE(cfg.enabled());
  EXPECT_EQ(cfg.max_concurrent, 3u);
  EXPECT_EQ(cfg.placement.capacity, 2u);
  EXPECT_EQ(cfg.placement.affinity_groups, 4u);
  EXPECT_EQ(cfg.placement.policy, PlacementPolicy::kRoundRobin);
  EXPECT_FALSE(cfg.preempt);
  EXPECT_EQ(cfg.max_attempts, 5);
}

TEST(SchedulerSpecParse, RejectsBadSchedKeys) {
  SchedulerConfig cfg;
  std::string err;
  EXPECT_FALSE(parse_scheduler_spec("poisson:rate=1,until=9;sched:concurrent=0",
                                    &cfg, &err));
  EXPECT_FALSE(parse_scheduler_spec("poisson:rate=1,until=9;sched:preempt=2",
                                    &cfg, &err));
  EXPECT_FALSE(parse_scheduler_spec("poisson:rate=1,until=9;sched:policy=magic",
                                    &cfg, &err));
  EXPECT_FALSE(parse_scheduler_spec("poisson:rate=1,until=9;sched:bogus=1",
                                    &cfg, &err));
  // A malformed arrival part fails the whole spec.
  EXPECT_FALSE(parse_scheduler_spec("poisson:rate=1;sched:concurrent=2", &cfg, &err));
}

// --------------------------------------------------------------------------
// Arrival-process determinism

std::vector<sim::Arrival> drain_process(const sim::ArrivalSpec& spec,
                                        std::uint64_t seed) {
  sim::Rng rng(seed);
  sim::ArrivalProcess p(spec, rng);
  std::vector<sim::Arrival> out;
  while (auto a = p.next()) out.push_back(*a);
  return out;
}

sim::ArrivalSpec spec_of(const std::string& s) {
  sim::ArrivalSpec spec;
  std::string err;
  EXPECT_TRUE(sim::parse_arrival_spec(s, &spec, &err)) << err;
  return spec;
}

TEST(ArrivalProcess, PoissonIsDeterministicMonotoneAndWindowed) {
  const sim::ArrivalSpec spec = spec_of("poisson:rate=0.5,from=5,until=200,hi=0.3");
  const auto a = drain_process(spec, 42);
  const auto b = drain_process(spec, 42);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);  // bit-identical draws
    EXPECT_EQ(a[i].high_priority, b[i].high_priority);
    EXPECT_GE(a[i].at, 5.0);
    EXPECT_LT(a[i].at, 200.0);
    if (i > 0) EXPECT_GE(a[i].at, a[i - 1].at);
  }
  // A different seed moves the instants.
  const auto c = drain_process(spec, 43);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a[0].at, c[0].at);
}

TEST(ArrivalProcess, PriorityShareRelabelsWithoutMovingInstants) {
  const sim::ArrivalSpec lo = spec_of("poisson:rate=0.5,until=200,hi=0");
  const sim::ArrivalSpec hi = spec_of("poisson:rate=0.5,until=200,hi=1");
  const sim::ArrivalSpec mid = spec_of("poisson:rate=0.5,until=200,hi=0.5");
  const auto a = drain_process(lo, 7);
  const auto b = drain_process(hi, 7);
  const auto c = drain_process(mid, 7);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  std::size_t n_hi = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);  // the separate prio stream never moves time
    EXPECT_EQ(a[i].at, c[i].at);
    EXPECT_FALSE(a[i].high_priority);
    EXPECT_TRUE(b[i].high_priority);
    n_hi += c[i].high_priority ? 1 : 0;
  }
  EXPECT_GT(n_hi, 0u);
  EXPECT_LT(n_hi, c.size());
}

TEST(ArrivalProcess, DiurnalThinningIsDeterministicAndBounded) {
  const sim::ArrivalSpec spec =
      spec_of("diurnal:base=0.5,amp=0.8,period=100,phase=25,until=400");
  const auto a = drain_process(spec, 11);
  const auto b = drain_process(spec, 11);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_LT(a[i].at, 400.0);
    if (i > 0) EXPECT_GE(a[i].at, a[i - 1].at);
  }
}

TEST(ArrivalProcess, TraceReplaysWindowVerbatimAndCountCaps) {
  const sim::ArrivalSpec spec = spec_of("trace:1,2,3,4,5,6,from=2.5,until=5.5");
  const auto a = drain_process(spec, 3);
  ASSERT_EQ(a.size(), 3u);  // 3, 4, 5
  EXPECT_DOUBLE_EQ(a[0].at, 3.0);
  EXPECT_DOUBLE_EQ(a[2].at, 5.0);

  const sim::ArrivalSpec capped = spec_of("poisson:rate=2,until=1000,count=7");
  EXPECT_EQ(drain_process(capped, 5).size(), 7u);
}

// --------------------------------------------------------------------------
// PlacementMap constraint bookkeeping

TEST(Placement, CapacityCountsResidentsAndReservations) {
  PlacementConfig cfg;
  cfg.capacity = 1;
  PlacementMap m(cfg, /*first_dst=*/100, /*num_dsts=*/2);
  ASSERT_TRUE(m.feasible(0));
  EXPECT_EQ(m.choose(0), 100);
  m.reserve(100, 0);
  EXPECT_EQ(m.reserved(100), 1u);
  EXPECT_EQ(m.choose(1), 101);
  m.reserve(101, 1);
  EXPECT_FALSE(m.feasible(2));  // both nodes at capacity
  m.commit(100, 0);             // reservation becomes residency
  EXPECT_EQ(m.residents(100), 1u);
  EXPECT_EQ(m.reserved(100), 0u);
  EXPECT_FALSE(m.feasible(2));  // residents count against capacity too
}

TEST(Placement, AntiAffinityBlocksSameGroupOnly) {
  PlacementConfig cfg;
  cfg.affinity_groups = 2;  // group(vm) = vm % 2
  PlacementMap m(cfg, 100, 1);
  m.reserve(100, 0);
  EXPECT_FALSE(m.feasible(2));  // same group as VM 0
  EXPECT_TRUE(m.feasible(1));   // other group is fine
  m.release(100, 0);
  EXPECT_TRUE(m.feasible(2));
}

TEST(Placement, RoundRobinRotatesLeastLoadedBreaksTiesLow) {
  PlacementConfig rr;
  rr.policy = PlacementPolicy::kRoundRobin;
  PlacementMap a(rr, 10, 3);
  EXPECT_EQ(a.choose(0), 10);
  EXPECT_EQ(a.choose(1), 11);
  EXPECT_EQ(a.choose(2), 12);
  EXPECT_EQ(a.choose(3), 10);  // wrapped

  PlacementConfig ll;
  ll.policy = PlacementPolicy::kLeastLoaded;
  PlacementMap b(ll, 10, 3);
  EXPECT_EQ(b.choose(0), 10);  // all empty: lowest id
  b.reserve(10, 0);
  b.reserve(11, 1);
  EXPECT_EQ(b.choose(2), 12);  // the only empty node
  b.reserve(12, 2);
  b.commit(10, 0);
  b.reserve(10, 3);  // node 10: 1 resident + 1 reservation
  EXPECT_EQ(b.choose(4), 11);  // 11 and 12 tie at 1; lowest id wins
}

TEST(Placement, CommitVacatesPreviousPoolResidency) {
  PlacementMap m(PlacementConfig{}, 10, 2);
  m.reserve(10, 0);
  m.commit(10, 0);
  EXPECT_EQ(m.residents(10), 1u);
  // VM 0 migrates again: its current pool node is excluded from choice.
  EXPECT_EQ(m.choose(0), 11);
  m.reserve(11, 0);
  m.commit(11, 0);
  EXPECT_EQ(m.residents(10), 0u);  // old residency vacated
  EXPECT_EQ(m.residents(11), 1u);
}

// --------------------------------------------------------------------------
// End-to-end scheduler rig: a small cluster driven to drain.

vm::ClusterConfig rig_cluster(std::uint64_t seed, std::size_t n_vms,
                              std::uint32_t n_dsts, int incremental) {
  vm::ClusterConfig c;
  c.num_nodes = n_vms + n_dsts + 2;
  c.image = storage::ImageConfig{64 * kMiB, static_cast<std::uint32_t>(kMiB)};
  c.disk = storage::DiskConfig{55e6, 0.0};
  c.network.incremental = incremental;
  c.seed = seed;
  return c;
}

vm::VmConfig rig_vm() {
  vm::VmConfig v;
  v.memory.ram_bytes = 64 * kMiB;
  v.memory.page_bytes = 256 * storage::kKiB;
  v.memory.base_used_bytes = 16 * kMiB;
  v.cache.capacity_bytes = 32 * kMiB;
  v.cache.dirty_limit_bytes = 16 * kMiB;
  return v;
}

/// Idle guests never dirty their image, which would leave the hybrid
/// sessions with an empty push set; a short burst of direct replica writes
/// gives every migration real chunk content (and the salvage path something
/// to save).
sim::Task dirty_chunks(core::MigrationManager* mgr, std::uint32_t n) {
  for (std::uint32_t c = 0; c < n; ++c)
    co_await mgr->replica().write_chunk(static_cast<storage::ChunkId>(c));
}

struct Rig {
  std::size_t n_vms;
  std::uint32_t n_dsts;
  sim::Simulator sim;
  vm::Cluster cluster;
  Middleware mw;
  sim::WaitGroup done;
  std::unique_ptr<Scheduler> sched;

  explicit Rig(const std::string& spec, std::uint64_t seed = 42,
               std::size_t vms = 6, std::uint32_t dsts = 3, int incremental = -1)
      : n_vms(vms),
        n_dsts(dsts),
        cluster(sim, rig_cluster(seed, vms, dsts, incremental)),
        mw(sim, cluster),
        done(sim) {
    for (std::size_t i = 0; i < n_vms; ++i)
      mw.deploy(static_cast<net::NodeId>(i), rig_vm(), static_cast<int>(i));
    for (std::size_t i = 0; i < n_vms; ++i)
      sim.spawn(dirty_chunks(mw.manager_of(mw.vm(i)), 24));
    SchedulerConfig cfg;
    std::string err;
    EXPECT_TRUE(parse_scheduler_spec(spec, &cfg, &err)) << err;
    done.add();
    sched = std::make_unique<Scheduler>(sim, cluster, mw, cfg,
                                        static_cast<net::NodeId>(n_vms), n_dsts,
                                        &done);
    sched->start();
  }

  /// Drive to drain; false if the virtual-time safety stop tripped.
  bool run(double max_t = 3600.0) {
    while (!sched->drained()) {
      if (!sim.step()) return sched->drained();
      if (sim.now() > max_t) return false;
    }
    return true;
  }
};

/// Every request is in exactly one terminal state after drain, and its
/// timestamps are ordered. This is the no-starvation property: any admitted
/// (dispatched) request finished — nothing is parked in a queue forever.
void expect_terminal_accounting(const Rig& rig) {
  const SchedulerStats s = rig.sched->stats();
  EXPECT_EQ(s.requests, rig.sched->requests().size());
  EXPECT_EQ(s.completed + s.abandoned + s.rejected, s.requests);
  EXPECT_EQ(s.dispatched, s.completed + s.abandoned);
  EXPECT_EQ(rig.sched->running(), 0u);
  EXPECT_EQ(rig.sched->queued(), 0u);
  for (const RequestRecord& r : rig.sched->requests()) {
    const int terminal = (r.t_completed >= 0 ? 1 : 0) + (r.abandoned ? 1 : 0) +
                         (r.rejected ? 1 : 0);
    EXPECT_EQ(terminal, 1) << "request " << r.id;
    if (r.rejected) {
      EXPECT_LT(r.t_dispatched, 0) << "request " << r.id;
      EXPECT_EQ(r.migration, nullptr) << "request " << r.id;
    } else {
      EXPECT_GE(r.t_dispatched, r.t_arrival) << "request " << r.id;
      ASSERT_NE(r.migration, nullptr) << "request " << r.id;
    }
    if (r.t_completed >= 0) EXPECT_GE(r.t_completed, r.t_dispatched);
  }
}

TEST(Scheduler, DrainsEveryRequestToATerminalState) {
  Rig rig("poisson:rate=0.4,until=60,hi=0.3;sched:concurrent=2");
  ASSERT_TRUE(rig.run());
  const SchedulerStats s = rig.sched->stats();
  EXPECT_GT(s.requests, 5u);
  EXPECT_GT(s.completed, 0u);
  EXPECT_EQ(s.abandoned, 0u);  // no faults in this rig
  EXPECT_EQ(s.rejected, 0u);   // unconstrained placement
  expect_terminal_accounting(rig);
  EXPECT_GE(s.peak_running, 1u);
  EXPECT_LE(s.peak_running, 2u);  // the admission bound held
  EXPECT_LE(s.queueing_p50_s, s.queueing_p99_s);
  EXPECT_LE(s.queueing_p99_s, s.queueing_p999_s);
  EXPECT_LE(s.queueing_p999_s, s.max_queueing_delay_s);
}

TEST(Scheduler, StrictPriorityIsNeverOvertaken) {
  // concurrent=1 forces real queueing; preemption off isolates dispatch
  // order (a preempted requeue re-dispatches from the low queue by design).
  Rig rig("poisson:rate=1.0,until=40,hi=0.5;sched:concurrent=1,preempt=0");
  ASSERT_TRUE(rig.run());
  expect_terminal_accounting(rig);
  const auto& reqs = rig.sched->requests();
  std::size_t n_hi = 0, n_lo = 0;
  for (const RequestRecord& h : reqs) {
    if (!h.high_priority) continue;
    ++n_hi;
    for (const RequestRecord& l : reqs) {
      if (l.high_priority || l.t_dispatched < 0) continue;
      // A high request already waiting when a low one was admitted must
      // itself have been admitted no later (strict inter-class priority).
      if (h.t_arrival < l.t_dispatched) {
        ASSERT_GE(h.t_dispatched, 0) << "high " << h.id << " starved";
        EXPECT_LE(h.t_dispatched, l.t_dispatched)
            << "low " << l.id << " overtook high " << h.id;
      }
    }
  }
  for (const RequestRecord& l : reqs) n_lo += l.high_priority ? 0 : 1;
  ASSERT_GT(n_hi, 0u);
  ASSERT_GT(n_lo, 0u);
}

TEST(Scheduler, PreemptionFreesTheSlotAndSalvagedStateIsRestored) {
  // One admission slot and a hot stream: high arrivals land while a
  // low-priority migration is mid-copy, so preemption must fire.
  Rig rig("poisson:rate=0.5,until=60,hi=0.34;sched:concurrent=1,preempt=1");
  ASSERT_TRUE(rig.run());
  expect_terminal_accounting(rig);
  const SchedulerStats s = rig.sched->stats();
  ASSERT_GT(s.preemptions, 0u);
  double salvaged = 0;
  for (const RequestRecord& r : rig.sched->requests()) {
    if (r.preemptions == 0) continue;
    EXPECT_FALSE(r.high_priority);  // only low-priority work is preemptible
    // Preempted work was admitted once and must still finish (no faults, so
    // nothing is abandoned): requeue-at-front kept it from starving.
    EXPECT_GE(r.t_completed, 0) << "preempted request " << r.id << " starved";
    ASSERT_NE(r.migration, nullptr);
    // Every preemption aborted one attempt of this record.
    EXPECT_GE(static_cast<std::uint32_t>(r.migration->retries), r.preemptions);
    salvaged += r.migration->salvaged_chunks;
  }
  // The re-dispatched attempts adopted partial destination replicas: the
  // chunks pushed before the abort were not re-transferred from scratch.
  EXPECT_GT(salvaged, 0.0);
}

/// Reconstruct the occupancy timeline from the request records and assert
/// capacity/anti-affinity hold at every instant. Completions sort before
/// dispatches at equal times, matching the scheduler's in-event order
/// (attempt completion runs try_dispatch within the same event).
void expect_constraints_held(const Rig& rig, std::uint32_t capacity,
                             std::uint32_t groups) {
  struct Ev {
    double t;
    int type;  // 0 = commit, 1 = claim
    const RequestRecord* r;
  };
  std::vector<Ev> evs;
  for (const RequestRecord& r : rig.sched->requests()) {
    if (r.t_dispatched < 0) continue;
    EXPECT_GE(r.dst, static_cast<net::NodeId>(rig.n_vms));
    EXPECT_LT(r.dst, static_cast<net::NodeId>(rig.n_vms + rig.n_dsts));
    evs.push_back(Ev{r.t_dispatched, 1, &r});
    if (r.t_completed >= 0) evs.push_back(Ev{r.t_completed, 0, &r});
  }
  std::stable_sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    return a.t != b.t ? a.t < b.t : a.type < b.type;
  });
  std::map<net::NodeId, std::uint32_t> load;                      // claims+residents
  std::map<std::pair<net::NodeId, std::uint32_t>, std::uint32_t> group_load;
  std::map<int, net::NodeId> resident_of;
  for (const Ev& e : evs) {
    const std::uint32_t g =
        groups == 0 ? 0 : static_cast<std::uint32_t>(e.r->vm_id) % groups;
    if (e.type == 1) {
      const std::uint32_t n = ++load[e.r->dst];
      if (capacity > 0) EXPECT_LE(n, capacity) << "node " << e.r->dst << " at t=" << e.t;
      if (groups > 0) {
        const std::uint32_t gl = ++group_load[std::make_pair(e.r->dst, g)];
        EXPECT_LE(gl, 1u) << "group " << g << " collided on node " << e.r->dst
                          << " at t=" << e.t;
      }
    } else {
      // Commit: the claim became residency (no net change on dst) and the
      // VM's previous pool residency was vacated.
      auto it = resident_of.find(e.r->vm_id);
      if (it != resident_of.end()) {
        --load[it->second];
        if (groups > 0) --group_load[{it->second, g}];
      }
      resident_of[e.r->vm_id] = e.r->dst;
    }
  }
  // Cross-check the reconstruction against the map's end state.
  for (std::uint32_t d = 0; d < rig.n_dsts; ++d) {
    const auto node = static_cast<net::NodeId>(rig.n_vms + d);
    EXPECT_EQ(rig.sched->placement().reserved(node), 0u) << "node " << node;
    EXPECT_EQ(rig.sched->placement().residents(node), load[node]) << "node " << node;
  }
}

TEST(Scheduler, CapacityAndAntiAffinityHoldUnderRandomizedConfigs) {
  const struct {
    const char* sched;
    std::uint32_t capacity, groups;
  } kConfigs[] = {
      {"sched:concurrent=3,capacity=2,groups=0,policy=least-loaded", 2, 0},
      {"sched:concurrent=4,capacity=2,groups=3,policy=round-robin", 2, 3},
      {"sched:concurrent=2,capacity=1,groups=2,policy=least-loaded,preempt=1", 1, 2},
  };
  for (std::uint64_t seed : {1u, 7u, 13u}) {
    for (const auto& c : kConfigs) {
      const std::string spec =
          "poisson:rate=0.6,until=50,hi=0.3;" + std::string(c.sched);
      Rig rig(spec, seed, /*vms=*/6, /*dsts=*/3);
      ASSERT_TRUE(rig.run()) << spec << " seed " << seed;
      expect_terminal_accounting(rig);
      expect_constraints_held(rig, c.capacity, c.groups);
    }
  }
}

TEST(Scheduler, ProvablyStuckRequestsAreRejectedNotStarved) {
  // groups=1 puts every VM in one anti-affinity class: each pool node can
  // ever hold one VM, so exactly n_dsts migrations can complete. Once the
  // last one drains, the remaining queue is provably unplaceable.
  Rig rig("poisson:rate=0.5,until=40;sched:concurrent=2,capacity=1,groups=1",
          /*seed=*/42, /*vms=*/6, /*dsts=*/2);
  ASSERT_TRUE(rig.run());
  expect_terminal_accounting(rig);
  const SchedulerStats s = rig.sched->stats();
  EXPECT_EQ(s.completed, 2u);  // one per pool node
  EXPECT_GT(s.rejected, 0u);
  EXPECT_EQ(s.completed + s.rejected, s.requests);
  expect_constraints_held(rig, 1, 1);
}

void expect_identical_requests(const Rig& a, const Rig& b) {
  const auto& ra = a.sched->requests();
  const auto& rb = b.sched->requests();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].high_priority, rb[i].high_priority) << i;
    EXPECT_EQ(ra[i].t_arrival, rb[i].t_arrival) << i;
    EXPECT_EQ(ra[i].t_dispatched, rb[i].t_dispatched) << i;
    EXPECT_EQ(ra[i].t_completed, rb[i].t_completed) << i;
    EXPECT_EQ(ra[i].vm_id, rb[i].vm_id) << i;
    EXPECT_EQ(ra[i].dst, rb[i].dst) << i;
    EXPECT_EQ(ra[i].preemptions, rb[i].preemptions) << i;
    EXPECT_EQ(ra[i].fault_retries, rb[i].fault_retries) << i;
  }
  EXPECT_EQ(a.sim.now(), b.sim.now());
}

TEST(Scheduler, RequestTimelineIsDeterministicAcrossRerunsAndSolverRegimes) {
  const std::string spec =
      "poisson:rate=0.5,until=60,hi=0.34;sched:concurrent=2,capacity=2,"
      "groups=2,preempt=1";
  Rig a(spec, 42, 6, 3, /*incremental=*/1);
  Rig b(spec, 42, 6, 3, /*incremental=*/1);
  Rig c(spec, 42, 6, 3, /*incremental=*/0);  // full-solve regime
  ASSERT_TRUE(a.run());
  ASSERT_TRUE(b.run());
  ASSERT_TRUE(c.run());
  expect_identical_requests(a, b);
  expect_identical_requests(a, c);
}

// --------------------------------------------------------------------------
// Experiment plumbing: scheduler stats surface in the result and the shard
// plan collapses (any VM can migrate anywhere — the fleet is one component).

TEST(SchedulerExperiment, StatsSurfaceAndShardPlanCollapses) {
  ExperimentConfig cfg;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.image = storage::ImageConfig{64 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.cluster.disk = storage::DiskConfig{55e6, 0.0};
  cfg.vm = rig_vm();
  cfg.workload = WorkloadKind::kNone;
  cfg.num_vms = 4;
  cfg.num_destinations = 2;
  cfg.num_migrations = 0;
  cfg.max_sim_time = 600.0;
  cfg.shards = 4;
  std::string err;
  ASSERT_TRUE(parse_scheduler_spec("poisson:rate=0.3,until=30;sched:concurrent=2",
                                   &cfg.scheduler, &err))
      << err;
  ExperimentResult res = Experiment(std::move(cfg)).run();
  EXPECT_TRUE(res.completed) << res.error;
  EXPECT_GT(res.scheduler.requests, 0u);
  EXPECT_EQ(res.scheduler.completed + res.scheduler.abandoned +
                res.scheduler.rejected,
            res.scheduler.requests);
  EXPECT_EQ(res.migrations.size(), res.scheduler.dispatched);
  EXPECT_EQ(res.shards_used, 1u);
  EXPECT_NE(res.shard_fallback_reason.find("scheduler"), std::string::npos)
      << res.shard_fallback_reason;
}

}  // namespace
}  // namespace hm::cloud
