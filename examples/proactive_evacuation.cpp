// Proactive fault tolerance scenario (Section 1): a rack is predicted to
// fail; every VM on it must be evacuated as fast as possible. The eviction
// orders arrive as a high-priority wave (hi=1) through the continuous-
// arrival scheduler, so they jump any queued maintenance work and may
// preempt running low-priority migrations. The key metric is the evacuation
// deadline: the instant the last source holds no state the VMs still need
// (paper metric: migration time = source relinquished).
#include <algorithm>
#include <iostream>
#include <string>

#include "cloud/experiment.h"
#include "cloud/report.h"
#include "cloud/sweep.h"

using namespace hm;

int main() {
  const std::vector<core::Approach> approaches = {
      core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
      core::Approach::kPrecopy, core::Approach::kPvfsShared};

  std::vector<cloud::SweepItem> items;
  for (core::Approach a : approaches) {
    cloud::ExperimentConfig cfg;
    cfg.approach = a;
    cfg.workload = cloud::WorkloadKind::kIor;  // worst case: heavy I/O churn
    cfg.ior.iterations = 6;
    cfg.ior.file_bytes = 512 * storage::kMiB;
    cfg.ior.file_offset = 1 * storage::kGiB;
    cfg.cluster.num_nodes = 14;
    cfg.num_vms = 3;           // the VMs on the failing rack
    cfg.num_migrations = 0;    // the scheduler owns the schedule
    cfg.num_destinations = 3;
    cfg.max_sim_time = 3600.0;
    // Failure predicted at t=10s: three eviction orders land at once, all
    // high priority, against two admission slots — the third waits for the
    // first freed slot, so the wave's deadline is one migration longer than
    // the slowest pair.
    std::string err;
    if (!cloud::parse_scheduler_spec(
            "trace:10,10,10,hi=1;sched:concurrent=2,policy=least-loaded,preempt=1",
            &cfg.scheduler, &err)) {
      std::cerr << err << "\n";
      return 1;
    }
    items.push_back({core::approach_name(a), cfg});
  }

  std::cout << "Evacuating 3 I/O intensive VMs from a failing rack (predicted at "
               "t=10s,\nhigh-priority wave, 2 admission slots)...\n";
  const auto results = cloud::run_sweep(items);

  cloud::Table t({"Approach", "rack evacuated after", "dependency window",
                  "downtime", "traffic"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    // The rack is safe once the *last* source is relinquished.
    double evacuated_at = 0, dep_window = 0, downtime = 0;
    for (const auto& m : r.migrations) {
      evacuated_at = std::max(evacuated_at, m.t_source_released);
      dep_window = std::max(dep_window, m.dependency_window());
      downtime = std::max(downtime, m.downtime_s);
    }
    t.add_row({items[i].label, cloud::fmt_seconds(evacuated_at - 10.0),
               cloud::fmt_seconds(dep_window),
               cloud::fmt_double(downtime * 1000, 1) + " ms",
               cloud::fmt_bytes(r.total_traffic)});
  }
  t.print(std::cout);
  std::cout << "\nIf the rack dies before the last source is relinquished, a VM is\n"
               "lost — the exposure is the 'rack evacuated after' column. The\n"
               "'dependency window' shows the pull-based schemes' residual reliance\n"
               "on the source after control already moved (the safety trade-off the\n"
               "paper's conclusion debates). Note precopy's long exposure under\n"
               "write-heavy load despite its zero window.\n";
  return 0;
}
