// Proactive fault tolerance scenario (Section 1): a node is predicted to
// fail; every VM it hosts must be evacuated as fast as possible. The key
// metric is the evacuation deadline: the instant the source holds no state
// the VMs still need (paper metric: migration time = source relinquished).
#include <iostream>

#include "cloud/experiment.h"
#include "cloud/report.h"
#include "cloud/sweep.h"

using namespace hm;

int main() {
  const std::vector<core::Approach> approaches = {
      core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
      core::Approach::kPrecopy, core::Approach::kPvfsShared};

  std::vector<cloud::SweepItem> items;
  for (core::Approach a : approaches) {
    cloud::ExperimentConfig cfg;
    cfg.approach = a;
    cfg.workload = cloud::WorkloadKind::kIor;  // worst case: heavy I/O churn
    cfg.ior.iterations = 6;
    cfg.ior.file_bytes = 512 * storage::kMiB;
    cfg.ior.file_offset = 1 * storage::kGiB;
    cfg.cluster.num_nodes = 12;
    cfg.num_vms = 1;           // the VM on the failing node
    cfg.num_migrations = 1;
    cfg.num_destinations = 1;
    cfg.first_migration_at = 10.0;  // failure predicted at t=10s
    cfg.max_sim_time = 3600.0;
    items.push_back({core::approach_name(a), cfg});
  }

  std::cout << "Evacuating an I/O intensive VM from a failing host (predicted at "
               "t=10s)...\n";
  const auto results = cloud::run_sweep(items);

  cloud::Table t({"Approach", "source relinquished after", "dependency window",
                  "downtime", "traffic"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    const auto& m = r.migrations.at(0);
    t.add_row({items[i].label, cloud::fmt_seconds(m.migration_time()),
               cloud::fmt_seconds(m.dependency_window()),
               cloud::fmt_double(m.downtime_s * 1000, 1) + " ms",
               cloud::fmt_bytes(r.total_traffic)});
  }
  t.print(std::cout);
  std::cout << "\nIf the node dies before the source is relinquished, the VM is lost —\n"
               "the exposure is the 'source relinquished after' column. The\n"
               "'dependency window' shows the pull-based schemes' residual reliance\n"
               "on the source after control already moved (the safety trade-off the\n"
               "paper's conclusion debates). Note precopy's long exposure under\n"
               "write-heavy load despite its zero window.\n";
  return 0;
}
