// Quickstart: deploy one VM running the IOR benchmark on a small cluster,
// live-migrate it with the hybrid push/prefetch scheme, and print the
// paper's three metrics (migration time, network traffic, I/O throughput).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "cloud/experiment.h"
#include "cloud/report.h"

using namespace hm;

int main() {
  cloud::ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.workload = cloud::WorkloadKind::kIor;
  cfg.cluster.num_nodes = 8;       // sources + destinations + repo stripes
  cfg.num_vms = 1;
  cfg.num_destinations = 1;
  cfg.num_migrations = 1;
  cfg.first_migration_at = 20.0;   // give IOR a warm-up period
  cfg.max_sim_time = 3600.0;

  std::cout << "Running IOR inside one VM and live-migrating it at t=20s "
               "(hybrid push/prefetch)...\n";
  cloud::Experiment exp(cfg);
  cloud::ExperimentResult res = exp.run();

  std::cout << "\ncompleted:            " << (res.completed ? "yes" : "NO (guard hit)")
            << "\nsimulated time:       " << cloud::fmt_seconds(res.sim_duration)
            << "\napp execution time:   " << cloud::fmt_seconds(res.app_execution_time)
            << "\n";

  for (const auto& m : res.migrations) {
    std::cout << "\nmigration of vm " << m.vm_id << ":"
              << "\n  migration time:     " << cloud::fmt_seconds(m.migration_time())
              << "\n  downtime:           " << cloud::fmt_double(m.downtime_s * 1000, 1)
              << " ms"
              << "\n  memory rounds:      " << m.memory_rounds
              << "\n  memory sent:        " << cloud::fmt_bytes(m.memory_bytes_sent)
              << "\n  chunks pushed:      " << m.storage_chunks_pushed
              << "\n  chunks pulled:      " << m.storage_chunks_pulled << "\n";
  }

  std::cout << "\nnetwork traffic by class:\n";
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i) {
    const auto cls = static_cast<net::TrafficClass>(i);
    if (res.traffic(cls) > 0)
      std::cout << "  " << net::traffic_class_name(cls) << ": "
                << cloud::fmt_bytes(res.traffic(cls)) << "\n";
  }
  std::cout << "  total: " << cloud::fmt_bytes(res.total_traffic) << "\n";

  std::cout << "\nin-VM I/O throughput (avg over run):"
            << "\n  write: " << cloud::fmt_bytes(res.write_Bps) << "/s"
            << "\n  read:  " << cloud::fmt_bytes(res.read_Bps) << "/s\n";
  return res.completed ? 0 : 1;
}
