// Shows how to implement a custom Workload against the public API and run
// it under live migration: a key-value-store-like workload doing random
// reads and writes over a working set, with periodic fsync (checkpoint).
#include <iostream>

#include "cloud/middleware.h"
#include "cloud/report.h"
#include "sim/random.h"
#include "workloads/workload.h"

using namespace hm;

namespace {

class KvStoreWorkload final : public workloads::Workload {
 public:
  struct Config {
    int ops = 4000;
    double read_fraction = 0.5;
    std::uint64_t value_bytes = 256 * storage::kKiB;
    std::uint64_t region_offset = 1 * storage::kGiB;
    std::uint64_t region_bytes = 512 * storage::kMiB;
    int fsync_every = 500;
  };

  explicit KvStoreWorkload(Config cfg, sim::Rng rng) : cfg_(cfg), rng_(rng) {}
  const char* name() const noexcept override { return "kvstore"; }

  sim::Task run(vm::VmInstance& vm) override {
    const std::uint64_t slots = cfg_.region_bytes / cfg_.value_bytes;
    for (int i = 0; i < cfg_.ops; ++i) {
      const std::uint64_t off = cfg_.region_offset + rng_.uniform(slots) * cfg_.value_bytes;
      if (rng_.bernoulli(cfg_.read_fraction)) {
        co_await vm.file_read(off, cfg_.value_bytes);
      } else {
        co_await vm.file_write(off, cfg_.value_bytes);
      }
      if ((i + 1) % cfg_.fsync_every == 0) co_await vm.fsync();  // checkpoint
      co_await vm.compute(0.002);  // request processing
    }
    done_at_ = vm.cluster().sim().now();
  }

  double done_at() const noexcept { return done_at_; }

 private:
  Config cfg_;
  sim::Rng rng_;
  double done_at_ = 0;
};

sim::Task drive(KvStoreWorkload* wl, vm::VmInstance* vm, bool* done) {
  co_await wl->run(*vm);
  *done = true;
}

sim::Task migrate(cloud::Middleware* mw, vm::VmInstance* vm, net::NodeId dst,
                  bool* done) {
  co_await mw->migrate(*vm, dst);
  *done = true;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  vm::ClusterConfig ccfg;
  ccfg.num_nodes = 8;
  vm::Cluster cluster(simulator, ccfg);

  cloud::ApproachConfig acfg;
  acfg.approach = core::Approach::kHybrid;
  acfg.hybrid.threshold = 3;
  cloud::Middleware mw(simulator, cluster, acfg);

  vm::VmInstance& vm = mw.deploy(/*node=*/0);
  KvStoreWorkload wl({}, sim::Rng(7).fork("kvstore"));

  bool wl_done = false, mig_done = false;
  simulator.spawn(drive(&wl, &vm, &wl_done));
  // Migrate mid-run, while the store is hot. The launch context sits behind
  // one pointer so the timer callback fits SmallFn's two-word budget.
  struct Launch {
    sim::Simulator& simulator;
    cloud::Middleware& mw;
    vm::VmInstance& vm;
    bool* mig_done;
    void go() { simulator.spawn(migrate(&mw, &vm, 1, mig_done)); }
  } launch{simulator, mw, vm, &mig_done};
  simulator.schedule(5.0, [&launch] { launch.go(); });

  std::cout << "Running a random-R/W key-value workload; migrating at t=5s...\n";
  simulator.run_while_pending([&] { return wl_done && mig_done; });

  const auto& m = mw.metrics().migrations().at(0);
  std::cout << "\nworkload finished at:   " << cloud::fmt_seconds(wl.done_at())
            << "\nmigration time:         " << cloud::fmt_seconds(m.migration_time())
            << "\ndowntime:               " << cloud::fmt_double(m.downtime_s * 1e3, 1)
            << " ms"
            << "\nchunks pushed/pulled:   " << m.storage_chunks_pushed << " / "
            << m.storage_chunks_pulled
            << "\nread throughput:        " << cloud::fmt_bytes(vm.io_stats().read_Bps())
            << "/s"
            << "\nwrite throughput:       " << cloud::fmt_bytes(vm.io_stats().write_Bps())
            << "/s\n";
  std::cout << "\nImplementing a workload = subclass workloads::Workload and drive the\n"
               "VmInstance file/compute API from a coroutine. See src/workloads/ for\n"
               "the paper's IOR, AsyncWR and CM1 models.\n";
  return 0;
}
