// Load balancing scenario (one of the management tasks live migration
// enables, Section 1): a rack of nodes runs several AsyncWR VMs; the
// middleware rebalances half of them onto empty nodes, simultaneously.
// Compares how the five storage transfer strategies cope.
#include <iostream>

#include "cloud/experiment.h"
#include "cloud/report.h"
#include "cloud/sweep.h"

using namespace hm;

int main() {
  const std::vector<core::Approach> approaches = {
      core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
      core::Approach::kPrecopy, core::Approach::kPvfsShared};

  std::vector<cloud::SweepItem> items;
  for (core::Approach a : approaches) {
    cloud::ExperimentConfig cfg;
    cfg.approach = a;
    cfg.workload = cloud::WorkloadKind::kAsyncWr;
    cfg.asyncwr.iterations = 600;  // ~100 s of moderate I/O
    cfg.cluster.num_nodes = 20;
    cfg.num_vms = 8;            // loaded rack
    cfg.num_migrations = 4;     // rebalance half of it
    cfg.num_destinations = 4;   // onto 4 idle nodes
    cfg.first_migration_at = 20.0;
    cfg.max_sim_time = 3600.0;
    items.push_back({core::approach_name(a), cfg});
  }

  std::cout << "Rebalancing 4 of 8 AsyncWR VMs onto idle nodes, simultaneously...\n";
  const auto results = cloud::run_sweep(items);

  cloud::Table t({"Approach", "avg mig time", "max downtime", "total traffic",
                  "app runtime"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    t.add_row({items[i].label, cloud::fmt_seconds(r.avg_migration_time),
               cloud::fmt_double(r.max_downtime * 1000, 1) + " ms",
               cloud::fmt_bytes(r.total_traffic),
               cloud::fmt_seconds(r.app_execution_time)});
  }
  t.print(std::cout);
  std::cout << "\nLower migration time frees the overloaded nodes sooner; the hybrid\n"
               "scheme relinquishes sources quickly without precopy's repeated\n"
               "transfers or mirror's write penalty.\n";
  return 0;
}
