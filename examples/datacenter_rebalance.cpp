// Load balancing scenario (one of the management tasks live migration
// enables, Section 1): a rack of nodes runs several AsyncWR VMs; the
// middleware rebalances half of them onto empty nodes. The rebalance order
// arrives as a burst through the continuous-arrival scheduler
// (cloud/scheduler.h): four requests land at t=20s at once, and a bounded
// admission queue (2 slots) staggers them instead of running all four
// simultaneously. Compares how the five storage transfer strategies cope,
// including what the admission bound costs in queueing delay.
#include <iostream>
#include <string>

#include "cloud/experiment.h"
#include "cloud/report.h"
#include "cloud/sweep.h"

using namespace hm;

int main() {
  const std::vector<core::Approach> approaches = {
      core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
      core::Approach::kPrecopy, core::Approach::kPvfsShared};

  std::vector<cloud::SweepItem> items;
  for (core::Approach a : approaches) {
    cloud::ExperimentConfig cfg;
    cfg.approach = a;
    cfg.workload = cloud::WorkloadKind::kAsyncWr;
    cfg.asyncwr.iterations = 600;  // ~100 s of moderate I/O
    cfg.cluster.num_nodes = 20;
    cfg.num_vms = 8;           // loaded rack
    cfg.num_migrations = 0;    // the scheduler owns the schedule
    cfg.num_destinations = 4;  // 4 idle nodes to rebalance onto
    cfg.max_sim_time = 3600.0;
    // Burst trace: the rebalancer asks for 4 moves at t=20s; two admission
    // slots serialize them pairwise, least-loaded placement spreads them.
    std::string err;
    if (!cloud::parse_scheduler_spec(
            "trace:20,20,20,20;sched:concurrent=2,policy=least-loaded",
            &cfg.scheduler, &err)) {
      std::cerr << err << "\n";
      return 1;
    }
    items.push_back({core::approach_name(a), cfg});
  }

  std::cout << "Rebalancing 4 of 8 AsyncWR VMs onto idle nodes (burst of 4 "
               "requests,\n2 admission slots)...\n";
  const auto results = cloud::run_sweep(items);

  cloud::Table t({"Approach", "avg mig time", "max downtime", "p50 wait",
                  "max wait", "total traffic"});
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& r = results[i];
    t.add_row({items[i].label, cloud::fmt_seconds(r.avg_migration_time),
               cloud::fmt_double(r.max_downtime * 1000, 1) + " ms",
               cloud::fmt_seconds(r.scheduler.queueing_p50_s),
               cloud::fmt_seconds(r.scheduler.max_queueing_delay_s),
               cloud::fmt_bytes(r.total_traffic)});
  }
  t.print(std::cout);
  std::cout << "\nLower migration time frees the overloaded nodes sooner — and with a\n"
               "bounded admission queue it also drains the queue sooner: the 'max\n"
               "wait' column is the burst's tail queueing delay, which tracks how\n"
               "long each scheme holds its admission slot. The hybrid scheme\n"
               "relinquishes sources quickly without precopy's repeated transfers\n"
               "or mirror's write penalty.\n";
  return 0;
}
