// Trace workflow end to end:
//   1. record a live AsyncWR run (with a migration) into a trace,
//   2. replay it and verify the migration metrics reproduce byte-identically
//      (the trace axis determinism contract),
//   3. replay a GENERATED Zipfian hot/cold trace — a skewed dirty-page /
//      dirty-chunk pattern none of the closed-form workloads can produce —
//      under the same migration schedule.
//
// Traces live in a versioned binary format (see src/workloads/trace.h);
// tools/trace_info inspects, validates and generates trace files from the
// command line.
#include <cstdio>
#include <iostream>

#include "cloud/experiment.h"
#include "cloud/report.h"

using namespace hm;
using storage::kMiB;

namespace {

cloud::ExperimentConfig small_config() {
  cloud::ExperimentConfig cfg;
  cfg.approach = core::Approach::kHybrid;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.image = storage::ImageConfig{256 * kMiB, static_cast<std::uint32_t>(kMiB)};
  cfg.vm.memory.ram_bytes = 256 * kMiB;
  cfg.vm.memory.page_bytes = kMiB;
  cfg.vm.memory.base_used_bytes = 32 * kMiB;
  cfg.vm.cache.capacity_bytes = 64 * kMiB;
  cfg.vm.cache.dirty_limit_bytes = 32 * kMiB;
  cfg.workload = cloud::WorkloadKind::kAsyncWr;
  cfg.asyncwr.iterations = 60;
  cfg.asyncwr.file_offset = 64 * kMiB;
  cfg.first_migration_at = 2.0;
  cfg.max_sim_time = 600.0;
  return cfg;
}

void print_migration(const char* label, const cloud::ExperimentResult& r) {
  const auto& m = r.migrations.at(0);
  std::cout << "  " << label << ": migration " << cloud::fmt_double(m.migration_time(), 3)
            << " s, downtime " << cloud::fmt_double(m.downtime_s * 1e3, 2) << " ms, "
            << cloud::fmt_bytes(r.migration_traffic) << " migration traffic\n";
}

}  // namespace

int main() {
  // --- 1. record a live run --------------------------------------------------
  cloud::ExperimentConfig cfg = small_config();
  workloads::TraceRecorder recorder;
  cloud::ExperimentConfig rec_cfg = cfg;
  rec_cfg.trace_recorder = &recorder;
  std::cout << "Recording a live AsyncWR run (1 migration at t=2s)...\n";
  const cloud::ExperimentResult live = cloud::Experiment(rec_cfg).run();
  const workloads::TraceData& trace = recorder.data();
  std::cout << "  captured " << trace.records.size() << " records from "
            << trace.header.num_vms << " VM\n";
  print_migration("live   ", live);

  const std::string path = "trace_replay_example.trace";
  std::string err;
  if (!workloads::write_trace(path, trace, &err)) {
    std::cerr << err << "\n";
    return 1;
  }

  // --- 2. replay and compare ------------------------------------------------
  cfg.normalize();
  cloud::ExperimentConfig replay_cfg = cfg;
  replay_cfg.workload = cloud::WorkloadKind::kTrace;
  replay_cfg.trace.path = path;          // streamed back off the file
  replay_cfg.trace.broadcast = false;    // exact per-VM replay
  const cloud::ExperimentResult replayed = cloud::Experiment(replay_cfg).run();
  if (!replayed.error.empty()) {
    std::cerr << replayed.error << "\n";
    return 1;
  }
  print_migration("replay ", replayed);
  const auto& a = live.migrations.at(0);
  const auto& b = replayed.migrations.at(0);
  const bool identical = a.downtime_s == b.downtime_s &&
                         a.t_source_released == b.t_source_released &&
                         live.total_traffic == replayed.total_traffic;
  std::cout << "  byte-identical: " << (identical ? "YES" : "NO") << "\n";

  // --- 3. a generated Zipfian hot/cold trace ---------------------------------
  std::cout << "\nReplaying a generated Zipfian hot/cold trace instead:\n";
  cloud::ExperimentConfig gen_cfg = cfg;
  gen_cfg.workload = cloud::WorkloadKind::kTrace;
  gen_cfg.trace.broadcast = true;  // single-source stream, any VM count
  std::string perr;
  if (!workloads::parse_trace_spec(
          "zipf:dur=30,theta=0.99,pages=128,page_kib=1024,chunks=128,chunk_kib=1024,"
          "offset_mib=64",
          &gen_cfg.trace, &perr)) {
    std::cerr << perr << "\n";
    return 1;
  }
  const cloud::ExperimentResult zipf = cloud::Experiment(gen_cfg).run();
  print_migration("zipf   ", zipf);

  std::remove(path.c_str());
  std::cout << "\nThe trace axis replays recorded runs bit-identically and opens\n"
               "skewed/bursty/phase-shifting write patterns via trace generators\n"
               "(see trace_info --gen and fig4_scale_sweep's trace:* regimes).\n";
  return identical ? 0 : 1;
}
