#include "core/metrics.h"

#include <algorithm>

namespace hm::core {

const char* approach_name(Approach a) noexcept {
  switch (a) {
    case Approach::kHybrid: return "our-approach";
    case Approach::kMirror: return "mirror";
    case Approach::kPostcopy: return "postcopy";
    case Approach::kPrecopy: return "precopy";
    case Approach::kPvfsShared: return "pvfs-shared";
  }
  return "?";
}

const char* approach_strategy_summary(Approach a) noexcept {
  switch (a) {
    case Approach::kHybrid: return "Active push below Threshold + prioritized prefetch";
    case Approach::kMirror: return "Sync writes both at src and dest";
    case Approach::kPostcopy: return "Pull from src after transfer of control";
    case Approach::kPrecopy: return "Push to dest before transfer of control";
    case Approach::kPvfsShared: return "Does not apply (all writes go to PVFS)";
  }
  return "?";
}

double Metrics::total_migration_time() const noexcept {
  double s = 0;
  for (const auto& m : migrations_) s += m.migration_time();
  return s;
}

double Metrics::avg_migration_time() const noexcept {
  return migrations_.empty() ? 0 : total_migration_time() / migrations_.size();
}

double Metrics::max_downtime() const noexcept {
  double d = 0;
  for (const auto& m : migrations_) d = std::max(d, m.downtime_s);
  return d;
}

}  // namespace hm::core
