// pvfs-shared baseline (Section 5.2.3): modifications are not stored locally
// at all — the qcow2 snapshot lives on a parallel file system reachable from
// both source and destination, so live migration only moves memory. The
// "storage transfer" session is therefore trivial: at control transfer the
// PVFS client binding follows the VM to the destination node.
#pragma once

#include "core/migration_manager.h"
#include "storage/pvfs.h"

namespace hm::core {

class SharedSession final : public StorageMigrationSession {
 public:
  SharedSession(sim::Simulator& sim, vm::Cluster& cluster, storage::PvfsBackend& backend,
                net::NodeId dst_node, MigrationRecord& rec)
      : StorageMigrationSession(sim, cluster, /*mgr=*/nullptr, dst_node, rec),
        backend_(backend) {
    src_node_ = backend.client_node();
  }

  void start() override {}
  sim::Task pre_control_transfer() override { co_return; }
  void transfer_control() override {
    backend_.set_client_node(dst_node_);
    control_transferred_ = true;
  }
  sim::Task wait_source_released() override { co_return; }

 private:
  storage::PvfsBackend& backend_;
};

}  // namespace hm::core
