#include "core/precopy_migrator.h"

#include <cassert>

namespace hm::core {

PrecopySession::PrecopySession(sim::Simulator& sim, vm::Cluster& cluster,
                               MigrationManager* mgr, net::NodeId dst_node,
                               MigrationRecord& rec, PrecopyConfig cfg)
    : StorageMigrationSession(sim, cluster, mgr, dst_node, rec),
      cfg_(cfg),
      cow_(mgr->replica().image()),
      dirty_(mgr->replica().num_chunks()),
      send_count_(mgr->replica().num_chunks(), 0) {}

void PrecopySession::start() {
  // Bulk phase: every chunk of the qcow2 snapshot (= every modified chunk)
  // is queued for the first round; on a retry, chunks already current at
  // the adopted destination are skipped.
  mgr_->replica().for_each_modified([this](ChunkId c) {
    cow_.on_write(c);
    if (has_resume_ && resume_valid_.test(c)) return;
    dirty_.set(c);
  });
}

double PrecopySession::residual_storage_bytes() const {
  return static_cast<double>(dirty_.count()) *
         static_cast<double>(src_store_->image().chunk_bytes);
}

sim::Task PrecopySession::vm_write(ChunkId c) {
  // Dirty tracking commits in the request path so a round scan racing the
  // in-flight local write still counts it (same ordering as Algorithm 2).
  if (!control_transferred_) {
    cow_.on_write(c);
    dirty_.set(c);
  }
  co_await mgr_->local_write(c);
}

sim::Task PrecopySession::send_chunks(const std::vector<ChunkId>& chunks) {
  auto& net = cluster_.network();
  const double chunk_bytes = src_store_->image().chunk_bytes;
  std::size_t i = 0;
  while (i < chunks.size()) {
    if (aborted_) break;
    const std::size_t n = std::min<std::size_t>(cfg_.batch_chunks, chunks.size() - i);
    for (std::size_t k = 0; k < n; ++k) co_await src_store_->read_chunk(chunks[i + k]);
    if (!co_await net.transfer(src_node_, dst_node_, chunk_bytes * static_cast<double>(n),
                               net::TrafficClass::kStoragePush, cfg_.rate_cap_Bps))
      break;  // crash under the batch: it never arrived
    for (std::size_t k = 0; k < n; ++k) {
      co_await dst_store_->write_chunk(chunks[i + k]);
      ++send_count_[chunks[i + k]];
      ++chunks_sent_;
      rec_.storage_chunks_pushed += 1;
    }
    i += n;
  }
  // Everything unsent goes back into the dirty set so the retry (or the
  // next round) re-streams it.
  for (; i < chunks.size(); ++i) dirty_.set(chunks[i]);
}

// One block-migration round: snapshot the dirty set (word-granular drain)
// and stream it. Chunks re-dirtied while streaming are picked up by the
// next round.
sim::Task PrecopySession::storage_round() {
  ++rounds_;
  std::vector<ChunkId> batch;
  batch.reserve(dirty_.count());
  dirty_.drain([&](std::uint64_t c) { batch.push_back(static_cast<ChunkId>(c)); });
  co_await send_chunks(batch);
}

// Stop-and-copy: the VM is paused, flush the (small) residual dirty set.
sim::Task PrecopySession::pre_control_transfer() { co_await storage_round(); }

// The destination holds the full snapshot at control transfer; the source
// is released immediately (Table 1 semantics).
sim::Task PrecopySession::wait_source_released() { co_return; }

std::unique_ptr<storage::ChunkStore> PrecopySession::take_partial_destination(
    util::DirtyBitmap* valid_out) {
  if (control_transferred_ || dst_store_owned_ == nullptr) return nullptr;
  // Current at the destination = sent there and not re-dirtied since.
  valid_out->resize(dst_store_owned_->num_chunks());
  valid_out->clear();
  dst_store_owned_->for_each_modified([&](ChunkId c) {
    if (!dirty_.test(c)) valid_out->set(c);
  });
  dst_store_ = nullptr;
  return std::move(dst_store_owned_);
}

}  // namespace hm::core
