// Hybrid active-push / prioritized-prefetch storage transfer — the paper's
// primary contribution (Section 4.1, Algorithms 1–4).
//
// Active phase (source runs the VM):
//   * BACKGROUND_PUSH streams locally modified chunks to the destination.
//   * Every write increments WriteCount[c]; once WriteCount[c] >= Threshold
//     the chunk is "hot" and no longer pushed (it would most likely be
//     overwritten again), bounding per-chunk transfers by Threshold.
// Passive phase (after control transfer):
//   * The source sends the remaining chunk list + write counts
//     (TRANSFER_IO_CONTROL); BACKGROUND_PULL prefetches them in decreasing
//     WriteCount order.
//   * On-demand reads suspend the background pull and are served with
//     priority; writes at the destination cancel pending pulls (the old
//     content is obsolete).
//
// The pure post-copy baseline of Section 5.2 is this class with the push
// phase disabled, and the ablation benches reuse it with different pull
// orders and thresholds.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "core/migration_manager.h"
#include "sim/random.h"
#include "util/bitmap.h"

namespace hm::core {

enum class PullOrder : std::uint8_t {
  kByWriteCount,  // paper's prioritized prefetch
  kFifo,          // ablation: chunk-id order
  kRandom,        // ablation: uniformly random
};

/// De-duplication extension (the paper's future work, Section 6): before
/// moving a chunk, exchange a content fingerprint; if the destination
/// already holds identical content (a base-image block, a zero chunk, a
/// repeated pattern), only the fingerprint crosses the wire. Content itself
/// is synthetic in this reproduction, so duplicate detection is modelled
/// statistically: a deterministic per-chunk draw marks `duplicate_fraction`
/// of the chunks as already present at the destination.
struct DedupConfig {
  bool enabled = false;
  double duplicate_fraction = 0.0;
  std::uint32_t fingerprint_bytes = 64;
};

struct HybridConfig {
  /// Max times a chunk is pushed before being declared hot. The paper keeps
  /// this a free parameter; bench/ablation_threshold sweeps it.
  std::uint32_t threshold = 3;
  /// Disable to obtain the pure post-copy baseline.
  bool push_enabled = true;
  PullOrder pull_order = PullOrder::kByWriteCount;
  /// Wire size of one (chunk id, write count) entry in TRANSFER_IO_CONTROL.
  /// Wire sizes are integral byte counts; they only become doubles at the
  /// fluid-flow boundary (net::FlowNetwork::transfer).
  std::uint32_t list_entry_bytes = 12;
  /// Wire size of one pull request.
  std::uint32_t pull_request_bytes = 256;
  DedupConfig dedup{};

  static constexpr std::uint32_t kUnlimitedThreshold =
      std::numeric_limits<std::uint32_t>::max();
};

class HybridSession final : public StorageMigrationSession {
 public:
  HybridSession(sim::Simulator& sim, vm::Cluster& cluster, MigrationManager* mgr,
                net::NodeId dst_node, MigrationRecord& rec, HybridConfig cfg = {});
  ~HybridSession() override;

  void start() override;
  sim::Task pre_control_transfer() override;
  sim::Task wait_source_released() override;
  sim::Task vm_read(ChunkId c) override;
  sim::Task vm_write(ChunkId c) override;
  void abort() override;
  std::unique_ptr<storage::ChunkStore> take_partial_destination(
      util::DirtyBitmap* valid_out) override;
  const util::DirtyBitmap* superseded_chunks() const noexcept override {
    return &superseded_;
  }
  // --- introspection (tests / benches) -------------------------------------
  std::uint32_t write_count(ChunkId c) const { return write_count_[c]; }
  std::size_t remaining_size() const noexcept {
    return static_cast<std::size_t>(in_remaining_.count());
  }
  std::uint64_t chunks_pushed() const noexcept { return chunks_pushed_; }
  std::uint64_t chunks_pulled() const noexcept { return chunks_pulled_; }
  std::uint64_t demand_pulls() const noexcept { return demand_pulls_; }
  std::uint64_t cancelled_pulls() const noexcept { return cancelled_pulls_; }
  std::uint64_t push_skipped_hot() const noexcept { return push_skipped_hot_; }
  /// Per-chunk network transfer count (push + pull); the paper's invariant
  /// is that this never exceeds Threshold + 1 for any chunk.
  std::uint32_t transfer_count(ChunkId c) const { return transfer_count_[c]; }
  /// Completed pulls in completion order (tests assert prefetch priority).
  const std::vector<ChunkId>& pull_log() const noexcept { return pull_log_; }
  std::uint64_t dedup_hits() const noexcept { return dedup_hits_; }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// In-flight pull bookkeeping lives in a slab of value slots recycled
  /// through a free list (one steady-state shared_ptr allocation per pull in
  /// the seed); the per-chunk index replaces the hash map on the pull path.
  /// A deque keeps the non-movable intrusive Event stable across growth.
  /// The Event's waiter list is intrusive (nodes live in the waiting
  /// coroutines' frames), so emplacing and setting it never allocates —
  /// pull wakeups are heap-free end to end.
  struct PullState {
    std::optional<sim::Event> done;  // emplaced per use of the slot
    bool cancelled = false;
    std::uint32_t next_free = kNilSlot;
  };

  std::uint32_t alloc_pull_slot();
  void release_pull_slot(std::uint32_t slot) noexcept;
  void add_remaining(ChunkId c);
  void remove_remaining(ChunkId c);
  /// Deterministic content-duplicate draw for chunk `c`.
  bool is_duplicate(ChunkId c) const;
  double wire_bytes(ChunkId c);
  bool next_pushable(ChunkId& out);
  bool next_pull_candidate(ChunkId& out);
  sim::Task push_task();
  sim::Task pull_task();
  sim::Task do_pull(ChunkId c, bool on_demand);
  void maybe_release_source();

  HybridConfig cfg_;
  std::vector<std::uint32_t> write_count_;
  std::vector<std::uint32_t> transfer_count_;
  util::DirtyBitmap in_remaining_;  // the paper's RemainingSet, packed
  // Chunks overwritten by the destination after control transfer; the
  // source copy is obsolete the moment the write is issued, so the source
  // may be released while the local write is still on the host bus.
  util::DirtyBitmap superseded_;

  // push side
  std::deque<ChunkId> push_queue_;
  util::DirtyBitmap in_push_queue_;
  sim::Notification push_wakeup_;
  bool push_running_ = false;
  bool stop_push_ = false;
  sim::Event push_stopped_;

  // pull side
  std::priority_queue<std::pair<std::uint32_t, ChunkId>> pull_heap_;
  std::deque<ChunkId> pull_fifo_;
  sim::Gate pull_gate_;
  std::deque<PullState> pull_slab_;
  std::uint32_t pull_free_ = kNilSlot;
  std::vector<std::uint32_t> inflight_slot_;  // chunk -> pull slab slot
  std::size_t active_pulls_ = 0;
  bool pull_started_ = false;
  sim::Event source_released_;
  sim::Rng rng_;

  // stats
  std::uint64_t chunks_pushed_ = 0;
  std::uint64_t chunks_pulled_ = 0;
  std::uint64_t demand_pulls_ = 0;
  std::uint64_t cancelled_pulls_ = 0;
  std::uint64_t push_skipped_hot_ = 0;
  std::uint64_t dedup_hits_ = 0;
  std::vector<ChunkId> pull_log_;
};

}  // namespace hm::core
