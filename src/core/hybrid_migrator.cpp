#include "core/hybrid_migrator.h"

#include <cassert>

namespace hm::core {

HybridSession::HybridSession(sim::Simulator& sim, vm::Cluster& cluster,
                             MigrationManager* mgr, net::NodeId dst_node,
                             MigrationRecord& rec, HybridConfig cfg)
    : StorageMigrationSession(sim, cluster, mgr, dst_node, rec),
      cfg_(cfg),
      write_count_(mgr->replica().num_chunks(), 0),
      transfer_count_(mgr->replica().num_chunks(), 0),
      in_remaining_(mgr->replica().num_chunks()),
      superseded_(mgr->replica().num_chunks()),
      in_push_queue_(mgr->replica().num_chunks()),
      push_wakeup_(sim),
      push_stopped_(sim),
      pull_gate_(sim, /*open=*/true),
      inflight_slot_(mgr->replica().num_chunks(), kNilSlot),
      source_released_(sim),
      rng_(cluster.rng().fork("hybrid-session", static_cast<std::uint64_t>(rec.vm_id))) {}

HybridSession::~HybridSession() = default;

std::uint32_t HybridSession::alloc_pull_slot() {
  if (pull_free_ != kNilSlot) {
    const std::uint32_t slot = pull_free_;
    pull_free_ = pull_slab_[slot].next_free;
    return slot;
  }
  pull_slab_.emplace_back();
  return static_cast<std::uint32_t>(pull_slab_.size() - 1);
}

void HybridSession::release_pull_slot(std::uint32_t slot) noexcept {
  PullState& st = pull_slab_[slot];
  st.done.reset();  // waiters were already enqueued by set()
  st.cancelled = false;
  st.next_free = pull_free_;
  pull_free_ = slot;
}

void HybridSession::add_remaining(ChunkId c) { in_remaining_.set(c); }

void HybridSession::remove_remaining(ChunkId c) { in_remaining_.reset(c); }

bool HybridSession::is_duplicate(ChunkId c) const {
  if (!cfg_.dedup.enabled || cfg_.dedup.duplicate_fraction <= 0) return false;
  // Deterministic per-(session, chunk) draw so repeated transfers of a
  // chunk agree on its duplicate status.
  const std::uint64_t h =
      sim::splitmix64(static_cast<std::uint64_t>(rec_.vm_id) * 0x9e3779b9ULL + c);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < cfg_.dedup.duplicate_fraction;
}

double HybridSession::wire_bytes(ChunkId c) {
  if (is_duplicate(c)) {
    ++dedup_hits_;
    return cfg_.dedup.fingerprint_bytes;
  }
  return static_cast<double>(src_store_->image().chunk_bytes);
}

// Algorithm 1: RemainingSet <- ModifiedSet, WriteCount <- 0, start push.
// On a retry with an adopted partial destination, chunks already current
// there are skipped — that is the resumed work.
void HybridSession::start() {
  src_store_->for_each_modified([this](ChunkId c) {
    if (has_resume_ && resume_valid_.test(c)) return;
    add_remaining(c);
    if (cfg_.push_enabled) {
      push_queue_.push_back(c);
      in_push_queue_.set(c);
    }
  });
  if (cfg_.push_enabled) {
    push_running_ = true;
    sim_.spawn(push_task());
  } else {
    push_stopped_.set();
  }
}

bool HybridSession::next_pushable(ChunkId& out) {
  while (!push_queue_.empty()) {
    const ChunkId c = push_queue_.front();
    push_queue_.pop_front();
    in_push_queue_.reset(c);
    if (!in_remaining_.test(c)) continue;         // already handled
    if (write_count_[c] >= cfg_.threshold) {      // hot chunk: defer to pull phase
      ++push_skipped_hot_;
      continue;
    }
    out = c;
    return true;
  }
  return false;
}

// Algorithm 1, BACKGROUND PUSH: stream pushable chunks to the destination.
sim::Task HybridSession::push_task() {
  auto& net = cluster_.network();
  for (;;) {
    if (stop_push_) break;
    ChunkId c;
    if (!next_pushable(c)) {
      co_await push_wakeup_.wait();
      continue;
    }
    remove_remaining(c);
    co_await src_store_->read_chunk(c);
    if (!co_await net.transfer(src_node_, dst_node_, wire_bytes(c),
                               net::TrafficClass::kStoragePush)) {
      // An endpoint crashed under the push: the chunk never arrived, so it
      // goes back into RemainingSet (the retry re-pushes it). The loop head
      // observes stop_push_, which the abort raised.
      add_remaining(c);
      continue;
    }
    co_await dst_store_->write_chunk(c);
    ++chunks_pushed_;
    ++transfer_count_[c];
    rec_.storage_chunks_pushed += 1;
  }
  push_running_ = false;
  push_stopped_.set();
}

// Algorithm 2 (WRITE), both roles.
sim::Task HybridSession::vm_write(ChunkId c) {
  if (!control_transferred_) {
    // Source role (Algorithm 2): WriteCount/RemainingSet update in the
    // request path, before the local write pays the host bus — a handoff
    // racing the in-flight write must still see the chunk as remaining.
    ++write_count_[c];
    add_remaining(c);
    if (cfg_.push_enabled && !stop_push_ && write_count_[c] < cfg_.threshold &&
        !in_push_queue_.test(c)) {
      push_queue_.push_back(c);
      in_push_queue_.set(c);
    }
    push_wakeup_.notify_all();
    co_await mgr_->local_write(c);
    co_return;
  }
  // Destination role: the new data supersedes whatever the source had —
  // cancel any pull in progress and drop the chunk from RemainingSet.
  superseded_.set(c);
  const std::uint32_t slot = inflight_slot_[c];
  if (slot != kNilSlot) {
    pull_slab_[slot].cancelled = true;
    ++cancelled_pulls_;
  }
  if (in_remaining_.test(c)) {
    remove_remaining(c);
    maybe_release_source();
  }
  co_await mgr_->local_write(c);
}

// Algorithm 4 (READ) on the destination.
sim::Task HybridSession::vm_read(ChunkId c) {
  if (control_transferred_) {
    const std::uint32_t slot = inflight_slot_[c];
    if (slot != kNilSlot) {
      // Case 1: already being pulled — wait for completion. The slot's
      // event is registered with synchronously here; the slot itself may
      // be recycled before we resume, which is fine (set() has already
      // enqueued the wakeup by then).
      sim::Event& done = *pull_slab_[slot].done;
      co_await done.wait();
    } else if (in_remaining_.test(c)) {
      // Case 2: scheduled but not started — suspend BACKGROUND_PULL and
      // fetch this chunk with priority.
      pull_gate_.close();
      remove_remaining(c);
      ++demand_pulls_;
      co_await do_pull(c, /*on_demand=*/true);
      pull_gate_.open();
    }
  }
  co_await mgr_->local_read(c);
}

bool HybridSession::next_pull_candidate(ChunkId& out) {
  switch (cfg_.pull_order) {
    case PullOrder::kByWriteCount:
      while (!pull_heap_.empty()) {
        auto [count, c] = pull_heap_.top();
        pull_heap_.pop();
        if (!in_remaining_.test(c) || count != write_count_[c]) continue;  // stale
        out = c;
        return true;
      }
      return false;
    case PullOrder::kFifo:
    case PullOrder::kRandom:
      while (!pull_fifo_.empty()) {
        std::size_t idx = 0;
        if (cfg_.pull_order == PullOrder::kRandom) {
          idx = static_cast<std::size_t>(rng_.uniform(pull_fifo_.size()));
          std::swap(pull_fifo_[idx], pull_fifo_.front());
        }
        const ChunkId c = pull_fifo_.front();
        pull_fifo_.pop_front();
        if (!in_remaining_.test(c)) continue;
        out = c;
        return true;
      }
      return false;
  }
  return false;
}

// Algorithm 3, BACKGROUND PULL: prefetch remaining chunks, hottest first.
sim::Task HybridSession::pull_task() {
  for (;;) {
    co_await pull_gate_.wait_open();
    ChunkId c;
    if (!next_pull_candidate(c)) break;
    remove_remaining(c);
    co_await do_pull(c, /*on_demand=*/false);
  }
  maybe_release_source();
}

sim::Task HybridSession::do_pull(ChunkId c, bool on_demand) {
  (void)on_demand;
  const std::uint32_t slot = alloc_pull_slot();
  pull_slab_[slot].done.emplace(sim_);
  pull_slab_[slot].cancelled = false;
  inflight_slot_[c] = slot;
  ++active_pulls_;
  auto& net = cluster_.network();
  // Pulls run only after control transfer, where aborts no longer happen:
  // a crashed endpoint is waited out (rebooted) and the pull retried, so
  // the destination never loses a chunk it already committed to fetch.
  for (;;) {
    if (!co_await net.transfer(dst_node_, src_node_, cfg_.pull_request_bytes,
                               net::TrafficClass::kControl)) {
      co_await net.wait_node_up(dst_node_);
      co_await net.wait_node_up(src_node_);
      continue;
    }
    co_await src_store_->read_chunk(c);
    if (co_await net.transfer(src_node_, dst_node_, wire_bytes(c),
                              net::TrafficClass::kStoragePull))
      break;
    co_await net.wait_node_up(dst_node_);
    co_await net.wait_node_up(src_node_);
  }
  if (!pull_slab_[slot].cancelled) {
    co_await dst_store_->write_chunk(c);
  }
  ++chunks_pulled_;
  ++transfer_count_[c];
  pull_log_.push_back(c);
  rec_.storage_chunks_pulled += 1;
  inflight_slot_[c] = kNilSlot;
  --active_pulls_;
  pull_slab_[slot].done->set();
  release_pull_slot(slot);
  maybe_release_source();
}

void HybridSession::maybe_release_source() {
  if (control_transferred_ && in_remaining_.count() == 0 && active_pulls_ == 0 &&
      !source_released_.is_set()) {
    source_released_.set();
  }
}

// Hypervisor SYNC on the source: stop pushing, hand the destination the
// remaining chunk list + write counts (TRANSFER_IO_CONTROL), start pulling.
sim::Task HybridSession::pre_control_transfer() {
  stop_push_ = true;
  push_wakeup_.notify_all();
  co_await push_stopped_.wait();
  if (aborted_) co_return;  // fault hit during the push drain: no handoff

  // Ship RemainingSet + WriteCount to the destination.
  const double list_bytes =
      cfg_.list_entry_bytes * static_cast<double>(in_remaining_.count()) + 64;
  if (!co_await cluster_.network().transfer(src_node_, dst_node_, list_bytes,
                                            net::TrafficClass::kControl)) {
    aborted_ = true;  // a crash raced the handoff: control must not move
    co_return;
  }
  // Pre-size the pull log so steady-state pulls never grow it (the
  // allocation-regression suite pins the pull phase at zero heap traffic).
  pull_log_.reserve(pull_log_.size() + in_remaining_.count());
  // Seed the pull scheduler (word-scan of the packed RemainingSet).
  in_remaining_.for_each_set([this](std::uint64_t c64) {
    const ChunkId c = static_cast<ChunkId>(c64);
    if (cfg_.pull_order == PullOrder::kByWriteCount)
      pull_heap_.emplace(write_count_[c], c);
    else
      pull_fifo_.push_back(c);
  });
  pull_started_ = true;
  sim_.spawn(pull_task());
}

sim::Task HybridSession::wait_source_released() {
  assert(pull_started_ && control_transferred_);
  maybe_release_source();
  co_await source_released_.wait();
}

void HybridSession::abort() {
  StorageMigrationSession::abort();
  // Wind down the push loop; an idle push task wakes, sees stop_push_ and
  // exits. Pulls cannot be running (aborts only happen before control
  // transfer), so there is no slab to tear down here — do_pull slots are
  // recycled on their own completion path.
  stop_push_ = true;
  push_wakeup_.notify_all();
}

std::unique_ptr<storage::ChunkStore> HybridSession::take_partial_destination(
    util::DirtyBitmap* valid_out) {
  if (control_transferred_ || dst_store_owned_ == nullptr) return nullptr;
  // Current at the destination = pushed there and not re-dirtied since
  // (a later source write puts the chunk back into RemainingSet).
  valid_out->resize(dst_store_owned_->num_chunks());
  valid_out->clear();
  dst_store_owned_->for_each_modified([&](ChunkId c) {
    if (!in_remaining_.test(c)) valid_out->set(c);
  });
  dst_store_ = nullptr;
  return std::move(dst_store_owned_);
}

}  // namespace hm::core
