#include "core/mirror_migrator.h"

namespace hm::core {

MirrorSession::MirrorSession(sim::Simulator& sim, vm::Cluster& cluster,
                             MigrationManager* mgr, net::NodeId dst_node,
                             MigrationRecord& rec, MirrorConfig cfg)
    : StorageMigrationSession(sim, cluster, mgr, dst_node, rec),
      cfg_(cfg),
      mirrored_(mgr->replica().num_chunks(), 0),
      bg_done_(sim),
      drain_(sim) {}

void MirrorSession::start() {
  if (has_resume_) {
    // Chunks preserved at an adopted destination need no re-mirroring.
    for (ChunkId c = 0; c < mirrored_.size(); ++c)
      if (resume_valid_.test(c)) mirrored_[c] = 1;
  }
  sim_.spawn(background_copy());
}

void MirrorSession::abort() {
  StorageMigrationSession::abort();
  // Unblock pre_control_transfer / wait_ready_to_complete; the background
  // task itself bails at the next loop head or failed transfer.
  bg_done_.set();
  drain_.notify_all();
}

std::unique_ptr<storage::ChunkStore> MirrorSession::take_partial_destination(
    util::DirtyBitmap* valid_out) {
  if (control_transferred_ || dst_store_owned_ == nullptr) return nullptr;
  valid_out->resize(dst_store_owned_->num_chunks());
  valid_out->clear();
  dst_store_owned_->for_each_modified([&](ChunkId c) {
    if (mirrored_[c]) valid_out->set(c);
  });
  dst_store_ = nullptr;
  return std::move(dst_store_owned_);
}

sim::Task MirrorSession::background_copy() {
  auto& net = cluster_.network();
  const double chunk_bytes = src_store_->image().chunk_bytes;
  std::vector<ChunkId> snapshot;
  if (cfg_.copy_full_image) {
    // Device-level mirroring: stream the entire disk, present or not.
    snapshot.resize(src_store_->num_chunks());
    for (ChunkId c = 0; c < src_store_->num_chunks(); ++c) snapshot[c] = c;
  } else {
    snapshot = src_store_->modified_set();
  }
  std::size_t i = 0;
  while (i < snapshot.size()) {
    if (aborted_) break;
    std::vector<ChunkId> batch;
    while (i < snapshot.size() && batch.size() < cfg_.batch_chunks) {
      const ChunkId c = snapshot[i++];
      if (!mirrored_[c]) batch.push_back(c);  // sync writes may have covered it
    }
    if (batch.empty()) continue;
    for (ChunkId c : batch) {
      // Present chunks are read through the host path; untouched parts of a
      // device-level mirror are raw disk reads on the source.
      if (src_store_->present(c)) {
        co_await src_store_->read_chunk(c);
      } else if (cfg_.copy_full_image) {
        co_await src_store_->disk().read(chunk_bytes);
      }
    }
    if (!co_await net.transfer(src_node_, dst_node_,
                               chunk_bytes * static_cast<double>(batch.size()),
                               net::TrafficClass::kStoragePush))
      break;  // crash under the batch; the retry re-streams un-mirrored chunks
    for (ChunkId c : batch) {
      co_await dst_store_->write_chunk(c);
      mirrored_[c] = 1;
      ++bg_copied_;
      rec_.storage_chunks_pushed += 1;
    }
  }
  bg_done_.set();
}

sim::Task MirrorSession::mirror_remote_write(ChunkId c, sim::WaitGroup& wg) {
  auto& net = cluster_.network();
  const bool ok = co_await net.transfer(src_node_, dst_node_,
                                        src_store_->image().chunk_bytes,
                                        net::TrafficClass::kStoragePush);
  if (ok && !aborted_) {
    co_await dst_store_->write_chunk(c);
    mirrored_[c] = 1;
    ++writes_mirrored_;
    rec_.storage_chunks_pushed += 1;
  }
  wg.done();  // the guest write must never deadlock on a failed mirror leg
}

// Writes complete on the source only after they also complete on the
// destination (the defining property of this baseline).
sim::Task MirrorSession::vm_write(ChunkId c) {
  if (control_transferred_) {
    co_await mgr_->local_write(c);
    co_return;
  }
  ++inflight_writes_;
  sim::WaitGroup wg(sim_);
  wg.add(2);
  sim_.spawn([](MirrorSession* self, ChunkId chunk, sim::WaitGroup& w) -> sim::Task {
    co_await self->mgr_->local_write(chunk);
    w.done();
  }(this, c, wg));
  sim_.spawn(mirror_remote_write(c, wg));
  co_await wg.wait();
  --inflight_writes_;
  drain_.notify_all();
}

sim::Task MirrorSession::wait_ready_to_complete() { co_await bg_done_.wait(); }

// Control may move only once the destination is a full replica: the
// background copy finished before stop-and-copy (ready_to_complete), so the
// paused-VM part only drains the last in-flight mirrored writes.
sim::Task MirrorSession::pre_control_transfer() {
  co_await bg_done_.wait();
  if (aborted_) co_return;
  while (inflight_writes_ > 0 && !aborted_) co_await drain_.wait();
}

sim::Task MirrorSession::wait_source_released() { co_return; }

}  // namespace hm::core
