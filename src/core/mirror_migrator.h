// Mirroring baseline (Haselhorst et al., reproduced per Section 5.2.2):
// a background task copies the existing modified chunks to the destination
// while every new write is issued synchronously to BOTH source and
// destination — a write completes only after both replicas have it. This
// guarantees convergence but inflates write latency, throttling the guest
// under I/O intensive workloads (the trade-off the paper measures).
#pragma once

#include <cstdint>
#include <vector>

#include "core/migration_manager.h"

namespace hm::core {

struct MirrorConfig {
  std::uint32_t batch_chunks = 16;  // background copy batching
  /// Haselhorst-style mirroring works at the block-device level and has no
  /// notion of a shared base image: the first phase transfers the *whole*
  /// disk content, not just the locally modified chunks. Disable to get a
  /// sparse variant that leans on the repository for base content.
  bool copy_full_image = true;
};

class MirrorSession final : public StorageMigrationSession {
 public:
  MirrorSession(sim::Simulator& sim, vm::Cluster& cluster, MigrationManager* mgr,
                net::NodeId dst_node, MigrationRecord& rec, MirrorConfig cfg = {});

  void start() override;
  sim::Task pre_control_transfer() override;
  sim::Task wait_source_released() override;
  sim::Task vm_write(ChunkId c) override;
  void abort() override;
  std::unique_ptr<storage::ChunkStore> take_partial_destination(
      util::DirtyBitmap* valid_out) override;
  bool ready_to_complete() const override { return bg_done_.is_set(); }
  sim::Task wait_ready_to_complete() override;

  std::uint64_t chunks_copied_background() const noexcept { return bg_copied_; }
  std::uint64_t writes_mirrored() const noexcept { return writes_mirrored_; }

 private:
  sim::Task background_copy();
  sim::Task mirror_remote_write(ChunkId c, sim::WaitGroup& wg);

  MirrorConfig cfg_;
  std::vector<std::uint8_t> mirrored_;  // chunk already at destination
  std::size_t inflight_writes_ = 0;
  sim::Event bg_done_;
  sim::Notification drain_;
  std::uint64_t bg_copied_ = 0;
  std::uint64_t writes_mirrored_ = 0;
};

}  // namespace hm::core
