#include "core/migration_manager.h"

#include <cassert>

namespace hm::core {

MigrationManager::MigrationManager(sim::Simulator& sim, vm::Cluster& cluster,
                                   net::NodeId home, int vm_id)
    : sim_(sim),
      cluster_(cluster),
      node_(home),
      vm_id_(vm_id),
      replica_(cluster.make_replica(home)) {}

MigrationManager::~MigrationManager() = default;

sim::Task MigrationManager::backend_read_chunk(ChunkId c) {
  if (session_ != nullptr) {
    co_await session_->vm_read(c);
    co_return;
  }
  co_await local_read(c);
}

sim::Task MigrationManager::backend_write_chunk(ChunkId c) {
  if (session_ != nullptr) {
    co_await session_->vm_write(c);
    co_return;
  }
  co_await local_write(c);
}

sim::Task MigrationManager::backend_sync() {
  // Guest-initiated fsync: make sure host-dirty chunks reach the disk.
  co_await replica_->flush();
}

std::unique_ptr<storage::ChunkStore> MigrationManager::switch_to(
    std::unique_ptr<storage::ChunkStore> new_replica, net::NodeId new_node) {
  auto old = std::move(replica_);
  replica_ = std::move(new_replica);
  node_ = new_node;
  return old;
}

sim::Task MigrationManager::local_read(ChunkId c) {
  if (!replica_->present(c)) {
    auto it = inflight_fetch_.find(c);
    if (it != inflight_fetch_.end()) {
      auto ev = it->second;  // keep alive across suspension
      co_await ev->wait();
    } else {
      auto ev = std::make_shared<sim::Event>(sim_);
      inflight_fetch_.emplace(c, ev);
      ++repo_fetches_;
      co_await cluster_.repository().fetch_chunk(node_, c);
      co_await replica_->install_base_chunk(c);
      inflight_fetch_.erase(c);
      ev->set();
    }
  }
  co_await replica_->read_chunk(c);
}

sim::Task MigrationManager::local_write(ChunkId c) {
  // A source write between migration attempts makes any preserved
  // destination copy of the chunk stale.
  if (resume_) resume_->valid.reset(c);
  co_await replica_->write_chunk(c);
}

StorageMigrationSession::StorageMigrationSession(sim::Simulator& sim, vm::Cluster& cluster,
                                                 MigrationManager* mgr, net::NodeId dst_node,
                                                 MigrationRecord& rec)
    : sim_(sim),
      cluster_(cluster),
      mgr_(mgr),
      src_node_(mgr != nullptr ? mgr->node() : 0),
      dst_node_(dst_node),
      rec_(rec) {
  if (mgr_ != nullptr) {
    dst_store_owned_ = cluster_.make_replica(dst_node_);
    dst_store_ = dst_store_owned_.get();
    src_store_ = &mgr_->replica();
  }
}

StorageMigrationSession::~StorageMigrationSession() = default;

void StorageMigrationSession::transfer_control() {
  assert(mgr_ != nullptr && !control_transferred_);
  src_store_owned_ = mgr_->switch_to(std::move(dst_store_owned_), dst_node_);
  src_store_ = src_store_owned_.get();
  control_transferred_ = true;
}

void StorageMigrationSession::abort() { aborted_ = true; }

void StorageMigrationSession::adopt_destination(
    std::unique_ptr<storage::ChunkStore> store, util::DirtyBitmap valid) {
  if (store == nullptr) return;
  assert(!control_transferred_);
  dst_store_owned_ = std::move(store);
  dst_store_ = dst_store_owned_.get();
  resume_valid_ = std::move(valid);
  has_resume_ = true;
}

std::unique_ptr<storage::ChunkStore> StorageMigrationSession::take_partial_destination(
    util::DirtyBitmap*) {
  return nullptr;
}

sim::Task StorageMigrationSession::storage_round() { co_return; }

sim::Task StorageMigrationSession::wait_ready_to_complete() { co_return; }

sim::Task StorageMigrationSession::vm_read(ChunkId c) {
  assert(mgr_ != nullptr);
  co_await mgr_->local_read(c);
}

sim::Task StorageMigrationSession::vm_write(ChunkId c) {
  assert(mgr_ != nullptr);
  co_await mgr_->local_write(c);
}

}  // namespace hm::core
