// The migration manager (Section 4.2–4.3 of the paper).
//
// Stand-in for the paper's FUSE layer: every read and write the guest issues
// to its virtual disk goes through here. Under normal operation it serves
// I/O from the local chunk replica, fetching untouched base-image content
// on demand from the striped repository. During a live migration it defers
// to a StorageMigrationSession, which implements one of the five compared
// transfer strategies (Table 1).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/metrics.h"
#include "net/flow_network.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/chunk_store.h"
#include "storage/page_cache.h"
#include "util/bitmap.h"
#include "vm/compute_node.h"

namespace hm::core {

using storage::ChunkId;

class StorageMigrationSession;

class MigrationManager final : public storage::BlockBackend {
 public:
  MigrationManager(sim::Simulator& sim, vm::Cluster& cluster, net::NodeId home, int vm_id);
  ~MigrationManager() override;

  // --- hypervisor/guest facing (BlockBackend) -----------------------------
  sim::Task backend_read_chunk(ChunkId c) override;
  sim::Task backend_write_chunk(ChunkId c) override;
  sim::Task backend_sync() override;

  // --- state ---------------------------------------------------------------
  net::NodeId node() const noexcept { return node_; }
  int vm_id() const noexcept { return vm_id_; }
  storage::ChunkStore& replica() noexcept { return *replica_; }
  const storage::ChunkStore& replica() const noexcept { return *replica_; }
  vm::Cluster& cluster() noexcept { return cluster_; }
  bool migrating() const noexcept { return session_ != nullptr; }

  // --- migration lifecycle (driven by the middleware / session) ------------
  /// MIGRATION_REQUEST (the paper implements this as an ioctl).
  void begin_migration(StorageMigrationSession* s) noexcept { session_ = s; }
  void end_migration() noexcept { session_ = nullptr; }
  /// Swap the active replica/node at control transfer. Returns the previous
  /// (source) replica so the session can keep serving pulls from it.
  std::unique_ptr<storage::ChunkStore> switch_to(
      std::unique_ptr<storage::ChunkStore> new_replica, net::NodeId new_node);

  // --- plain local I/O paths (default behaviour, reused by sessions) -------
  sim::Task local_read(ChunkId c);
  sim::Task local_write(ChunkId c);

  std::uint64_t repo_fetches() const noexcept { return repo_fetches_; }

  // --- abort/retry bookkeeping (fault axis) ---------------------------------
  /// Partial destination replica preserved across an aborted attempt.
  /// `valid` marks chunks whose content in `dst_store` is still current;
  /// local_write() keeps it honest while the VM runs between attempts
  /// (a source write makes the destination copy stale). The state is only
  /// reusable while the destination node's crash epoch is unchanged — a
  /// destination crash loses the un-synced partial replica.
  struct ResumeState {
    std::unique_ptr<storage::ChunkStore> dst_store;
    util::DirtyBitmap valid{0};
    net::NodeId dst_node = 0;
    std::uint64_t dst_epoch = 0;
  };
  std::optional<ResumeState>& resume_state() noexcept { return resume_; }

 private:
  sim::Simulator& sim_;
  vm::Cluster& cluster_;
  net::NodeId node_;
  int vm_id_;
  std::unique_ptr<storage::ChunkStore> replica_;
  StorageMigrationSession* session_ = nullptr;
  // Deduplicate concurrent on-demand fetches of the same base chunk.
  std::unordered_map<ChunkId, std::shared_ptr<sim::Event>> inflight_fetch_;
  std::uint64_t repo_fetches_ = 0;
  std::optional<ResumeState> resume_;
};

/// Strategy interface for one live storage migration (source + destination
/// coordination). Concrete implementations: HybridSession (our-approach and
/// postcopy), PrecopySession, MirrorSession, SharedSession.
class StorageMigrationSession {
 public:
  StorageMigrationSession(sim::Simulator& sim, vm::Cluster& cluster, MigrationManager* mgr,
                          net::NodeId dst_node, MigrationRecord& rec);
  virtual ~StorageMigrationSession();
  StorageMigrationSession(const StorageMigrationSession&) = delete;
  StorageMigrationSession& operator=(const StorageMigrationSession&) = delete;

  /// Active phase begins (paper: MIGRATION_REQUEST on the source).
  virtual void start() = 0;

  /// Hypervisor invoked SYNC right before moving control: finish whatever
  /// the strategy requires before the destination may take over (paper:
  /// stop BACKGROUND_PUSH and invoke TRANSFER_IO_CONTROL).
  virtual sim::Task pre_control_transfer() = 0;

  /// Control moved: the VM now runs on the destination. Swaps the manager's
  /// active replica (overridable for the shared-storage baseline).
  virtual void transfer_control();

  /// Completes when no residual dependency on the source remains (this is
  /// the end of "migration time" for our-approach and postcopy; immediate
  /// for precopy, mirror and pvfs-shared — Section 5.2 of the paper).
  virtual sim::Task wait_source_released() = 0;

  // --- coupling with the hypervisor's pre-copy loop ------------------------
  /// True if storage must converge together with memory (QEMU-style
  /// incremental block migration).
  virtual bool converges_with_memory() const { return false; }
  virtual double residual_storage_bytes() const { return 0; }
  /// One storage pre-copy round (only meaningful when converging).
  virtual sim::Task storage_round();
  /// The hypervisor may only enter stop-and-copy once this is true; until
  /// then it keeps iterating memory rounds (mirroring needs its bulk copy
  /// finished before control can move).
  virtual bool ready_to_complete() const { return true; }
  virtual sim::Task wait_ready_to_complete();

  // --- VM I/O rerouting while the session is active -------------------------
  virtual sim::Task vm_read(ChunkId c);
  virtual sim::Task vm_write(ChunkId c);

  // --- fault handling: abort / retry / resume -------------------------------
  /// Flag the session aborted (a fault hit an endpoint before control
  /// moved). The data-path loops observe the flag — and their failed
  /// transfers — and wind down; the hypervisor bails out after its next
  /// await. Idempotent.
  virtual void abort();
  bool aborted() const noexcept { return aborted_; }
  net::NodeId source_node() const noexcept { return src_node_; }
  net::NodeId destination_node() const noexcept { return dst_node_; }

  /// Retry support: before start(), replace the destination replica with
  /// partial state preserved from a previous attempt; `valid` marks the
  /// chunks already current there, which the strategy skips when seeding
  /// its transfer set.
  void adopt_destination(std::unique_ptr<storage::ChunkStore> store,
                         util::DirtyBitmap valid);
  /// After an abort: relinquish the partial destination replica together
  /// with the set of still-current chunks (written out through valid_out).
  /// Returns null when the strategy keeps no resumable state or control
  /// already moved.
  virtual std::unique_ptr<storage::ChunkStore> take_partial_destination(
      util::DirtyBitmap* valid_out);

  bool control_transferred() const noexcept { return control_transferred_; }
  MigrationRecord& record() noexcept { return rec_; }
  const MigrationRecord& record() const noexcept { return rec_; }

  /// Introspection for the invariant auditor. Both stay valid across
  /// transfer_control(): the destination replica's ownership moves to the
  /// manager but the object survives, and src_store_ is repointed at the
  /// retained source replica. Null for the shared-storage baseline.
  const storage::ChunkStore* source_store() const noexcept { return src_store_; }
  const storage::ChunkStore* destination_store() const noexcept { return dst_store_; }
  /// Chunks whose source content was made obsolete by a destination-side
  /// write after control transfer. Such a write may still be in flight on
  /// the destination's host bus at the instant the source is released —
  /// releasing early is safe (the authoritative data originates at the
  /// destination), so conservation accepts superseded in lieu of present.
  virtual const util::DirtyBitmap* superseded_chunks() const noexcept { return nullptr; }

 protected:
  sim::Simulator& sim_;
  vm::Cluster& cluster_;
  MigrationManager* mgr_;  // null for the shared-storage baseline
  net::NodeId src_node_;
  net::NodeId dst_node_;
  /// Destination replica, populated during the active phase; handed to the
  /// manager at control transfer.
  std::unique_ptr<storage::ChunkStore> dst_store_owned_;
  storage::ChunkStore* dst_store_ = nullptr;
  /// Source replica, retained after control transfer to serve pulls.
  std::unique_ptr<storage::ChunkStore> src_store_owned_;
  storage::ChunkStore* src_store_ = nullptr;
  bool control_transferred_ = false;
  bool aborted_ = false;
  // Chunks already current at the adopted destination replica (see
  // adopt_destination); only meaningful while has_resume_ is set.
  util::DirtyBitmap resume_valid_{0};
  bool has_resume_ = false;
  MigrationRecord& rec_;
};

}  // namespace hm::core
