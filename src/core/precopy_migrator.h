// QEMU-style incremental block migration baseline (Section 5.2.2, "precopy").
//
// Local modifications live in a qcow2 snapshot; the hypervisor migrates the
// snapshot together with memory using pre-copy: a bulk phase pushes every
// allocated chunk, then iterative rounds re-send chunks dirtied in the
// meantime. Storage converges *together* with memory — under heavy I/O the
// disk may change faster than it can be copied, so this approach inherits
// pre-copy's non-convergence problem (the paper's core criticism).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/migration_manager.h"
#include "storage/cow_image.h"
#include "util/bitmap.h"

namespace hm::core {

struct PrecopyConfig {
  /// Chunks streamed per batched transfer inside a round.
  std::uint32_t batch_chunks = 16;
  /// Rate cap on the block-migration stream (QEMU shares the migration
  /// socket between RAM and block data; the harness caps both).
  double rate_cap_Bps = net::kUnlimitedRate;
};

class PrecopySession final : public StorageMigrationSession {
 public:
  PrecopySession(sim::Simulator& sim, vm::Cluster& cluster, MigrationManager* mgr,
                 net::NodeId dst_node, MigrationRecord& rec, PrecopyConfig cfg = {});

  void start() override;
  sim::Task pre_control_transfer() override;
  sim::Task wait_source_released() override;
  sim::Task vm_write(ChunkId c) override;
  std::unique_ptr<storage::ChunkStore> take_partial_destination(
      util::DirtyBitmap* valid_out) override;

  bool converges_with_memory() const override { return true; }
  double residual_storage_bytes() const override;
  sim::Task storage_round() override;

  std::uint64_t chunks_sent() const noexcept { return chunks_sent_; }
  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint32_t send_count(ChunkId c) const { return send_count_[c]; }
  const storage::CowImage& cow() const noexcept { return cow_; }

 private:
  sim::Task send_chunks(const std::vector<ChunkId>& chunks);

  PrecopyConfig cfg_;
  storage::CowImage cow_;
  // Packed dirty-chunk map; rounds snapshot it with a word-granular drain.
  util::DirtyBitmap dirty_;
  std::vector<std::uint32_t> send_count_;
  std::uint64_t chunks_sent_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace hm::core
