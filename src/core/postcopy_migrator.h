// Pure post-copy baseline (Section 5.2.2): per the paper it "is based on our
// approach and simply remains passive during the push phase, deferring any
// transfer until after the moment when control is transferred to the
// destination". Implemented as HybridSession with the push phase disabled;
// every chunk is transferred exactly once (pulled), guaranteeing convergence
// regardless of the write rate.
#pragma once

#include <memory>

#include "core/hybrid_migrator.h"

namespace hm::core {

struct PostcopyConfig {
  PullOrder pull_order = PullOrder::kByWriteCount;
};

/// Build a post-copy session (a passive HybridSession).
std::unique_ptr<HybridSession> make_postcopy_session(sim::Simulator& sim,
                                                     vm::Cluster& cluster,
                                                     MigrationManager* mgr,
                                                     net::NodeId dst_node,
                                                     MigrationRecord& rec,
                                                     PostcopyConfig cfg = {});

}  // namespace hm::core
