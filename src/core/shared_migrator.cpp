#include "core/shared_migrator.h"

// SharedSession is fully defined inline; this TU anchors the module.
