// Metrics collected during experiments: the three quantities the paper's
// evaluation section is built on (Section 2) — migration time, network
// traffic, and impact on application performance — plus supporting detail
// (downtime, rounds, per-VM I/O throughput, compute counters).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "net/flow_network.h"

namespace hm::core {

/// The five compared approaches (Table 1 of the paper).
enum class Approach : std::uint8_t {
  kHybrid,      // our-approach: active push + prioritized prefetch
  kMirror,      // synchronous dual writes at src and dest
  kPostcopy,    // pull everything after control transfer
  kPrecopy,     // QEMU-style incremental block migration
  kPvfsShared,  // no storage transfer; all I/O through PVFS
};
const char* approach_name(Approach a) noexcept;
/// "Local storage transfer strategy" column of Table 1.
const char* approach_strategy_summary(Approach a) noexcept;

/// One live migration, from MIGRATION_REQUEST to source release.
struct MigrationRecord {
  int vm_id = -1;
  double t_request = 0;           // migration initiated on the source
  double t_control_transfer = 0;  // VM resumed on the destination
  double t_source_released = 0;   // no residual dependency on the source
  double downtime_s = 0;          // VM paused during stop-and-copy
  int memory_rounds = 0;
  double memory_bytes_sent = 0;
  double storage_chunks_pushed = 0;  // active phase transfers
  double storage_chunks_pulled = 0;  // passive phase transfers

  // --- fault/recovery accounting (fault-injection axis) ---------------------
  int retries = 0;                  // aborted attempts before this one
  double retransferred_bytes = 0;   // work thrown away by aborted attempts
  double salvaged_chunks = 0;       // chunks adopted from partial replicas
  double t_first_abort = 0;         // first fault-induced abort (0 = none)
  bool abandoned = false;           // gave up after max_attempts

  /// Paper definition: "time elapsed between the moment when the migration
  /// has been initiated and the source has been relinquished".
  double migration_time() const noexcept { return t_source_released - t_request; }

  /// Fault to re-established control transfer; 0 when no fault hit this
  /// migration (or it never completed).
  double time_to_recover() const noexcept {
    return (t_first_abort > 0 && t_control_transfer > t_first_abort)
               ? t_control_transfer - t_first_abort
               : 0;
  }

  /// Residual-dependency window: time during which the VM already runs on
  /// the destination but still depends on the source for disk state. Zero
  /// for precopy/mirror/pvfs-shared — the "perceived higher safety" of I/O
  /// pre-copy the paper's conclusion debates (a source failure inside this
  /// window is fatal for pull-based schemes).
  double dependency_window() const noexcept {
    return t_source_released - t_control_transfer;
  }
};

/// Per-VM workload I/O accounting (wall time spent inside file ops).
struct IoStats {
  double bytes_written = 0;
  double bytes_read = 0;
  double write_time_s = 0;
  double read_time_s = 0;

  double write_Bps() const noexcept { return write_time_s > 0 ? bytes_written / write_time_s : 0; }
  double read_Bps() const noexcept { return read_time_s > 0 ? bytes_read / read_time_s : 0; }
};

class Metrics {
 public:
  /// The returned reference stays valid for the lifetime of the Metrics
  /// object (deque storage: push_back never moves existing records) —
  /// sessions and the hypervisor hold it across suspension points.
  MigrationRecord& new_migration(int vm_id) {
    migrations_.push_back(MigrationRecord{});
    migrations_.back().vm_id = vm_id;
    return migrations_.back();
  }
  const std::deque<MigrationRecord>& migrations() const noexcept { return migrations_; }
  std::deque<MigrationRecord>& migrations() noexcept { return migrations_; }

  double total_migration_time() const noexcept;
  double avg_migration_time() const noexcept;
  double max_downtime() const noexcept;

 private:
  std::deque<MigrationRecord> migrations_;
};

}  // namespace hm::core
