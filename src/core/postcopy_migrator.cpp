#include "core/postcopy_migrator.h"

namespace hm::core {

std::unique_ptr<HybridSession> make_postcopy_session(sim::Simulator& sim,
                                                     vm::Cluster& cluster,
                                                     MigrationManager* mgr,
                                                     net::NodeId dst_node,
                                                     MigrationRecord& rec,
                                                     PostcopyConfig cfg) {
  HybridConfig h;
  h.push_enabled = false;
  h.pull_order = cfg.pull_order;
  // Threshold is irrelevant without a push phase but kept at the default so
  // write counts are still tracked for pull prioritization.
  return std::make_unique<HybridSession>(sim, cluster, mgr, dst_node, rec, h);
}

}  // namespace hm::core
