// AsyncWR benchmark (Section 5.3): the paper's own tool for mixing compute
// with moderate, constant I/O pressure. Each iteration keeps the CPU busy
// (incrementing a counter) while generating random data into a memory
// buffer; the buffer is copied at the start of the next iteration and
// written asynchronously to the file system. Defaults generate ~6 MB/s of
// write pressure; Figure 4 fixes the total data at 1800 MB per instance.
#pragma once

#include "sim/sync.h"
#include "workloads/workload.h"

namespace hm::workloads {

struct AsyncWrConfig {
  int iterations = 1800;  // x 1 MB = 1800 MB total (Figure 4 setup)
  std::uint64_t bytes_per_iter = 1 * storage::kMiB;
  /// Compute time per iteration; 1 MB / (1/6 s) = the paper's ~6 MB/s.
  double iter_compute_s = 1.0 / 6.0;
  std::uint64_t file_offset = 1 * storage::kGiB;
  /// Anonymous working set: double buffer + bookkeeping.
  std::uint64_t ws_bytes = 4 * storage::kMiB;
  /// Memory dirty rate while computing (generate + copy of the buffer).
  double dirty_Bps = 12.0e6;
};

class AsyncWrWorkload final : public Workload {
 public:
  explicit AsyncWrWorkload(AsyncWrConfig cfg = {}) : cfg_(cfg) {}
  const char* name() const noexcept override { return "AsyncWR"; }
  sim::Task run(vm::VmInstance& vm) override;

  const AsyncWrConfig& config() const noexcept { return cfg_; }
  int iterations_done() const noexcept { return iterations_done_; }
  double finished_at() const noexcept { return finished_at_; }

 private:
  sim::Task async_write(vm::VmInstance& vm, std::uint64_t offset, sim::Event& done);

  AsyncWrConfig cfg_;
  int iterations_done_ = 0;
  double finished_at_ = 0;
};

}  // namespace hm::workloads
