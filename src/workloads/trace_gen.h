// Parametric trace generators: produce realistic skewed / bursty /
// phase-shifting / sequential dirty-page and chunk-write streams in the
// trace format (workloads/trace.h), seeded through sim::random so a given
// (spec, seed) pair always generates the identical trace — the determinism
// contract extends from the engine to the workload axis.
//
// Every generator emits, per dt_s step: one kCompute slice on lane 0 (keeps
// the guest CPU busy and exposed to migration CPU contention), kMemDirty
// records on lane 1 (page draws deduplicated and coalesced into runs within
// a step), and kChunkWrite/kChunkRead records on lanes 2/3 (sequential per
// lane, so chunk I/O sees backpressure when the virtual disk saturates,
// like a real workload).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "workloads/trace.h"

namespace hm::workloads {

enum class TracePattern : std::uint8_t {
  kZipfian,         // static Zipf-skewed hot/cold working set
  kPhaseShift,      // hot window relocates every phase_s (working-set drift)
  kBurst,           // on/off chunk-write bursts over a steady memory stream
  kSequentialScan,  // linear sweep over pages and chunks (checkpoint style)
};
const char* trace_pattern_name(TracePattern p) noexcept;

struct TraceGenSpec {
  TracePattern pattern = TracePattern::kZipfian;
  double duration_s = 60.0;
  double dt_s = 0.25;  // record cadence (one step = one compute slice)
  // Geometry: kMemDirty pages are anon-region relative, kChunk* records are
  // file_offset relative (see trace.h).
  std::uint64_t page_bytes = 64 * storage::kKiB;
  std::uint64_t pages = 2048;  // working set: 128 MiB at the default page
  std::uint32_t chunk_bytes = 256 * static_cast<std::uint32_t>(storage::kKiB);
  std::uint32_t chunks = 512;  // file region: 128 MiB at the default chunk
  std::uint64_t file_offset = 1 * storage::kGiB;
  // Pressure.
  double mem_dirty_Bps = 12.0e6;
  double chunk_write_Bps = 6.0e6;
  double read_fraction = 0.0;    // fraction of chunk ops emitted as reads
  double compute_fraction = 1.0; // guest-seconds of compute per second
  // Pattern knobs.
  double zipf_theta = 0.99;      // kZipfian/kPhaseShift skew (0 = uniform)
  double phase_s = 15.0;         // kPhaseShift: hot-window relocation period
  double hot_fraction = 0.125;   // kPhaseShift: hot-window size
  double burst_on_s = 2.0;       // kBurst: write-burst length
  double burst_off_s = 8.0;      // kBurst: idle gap between bursts
  double burst_multiplier = 8.0; // kBurst: rate multiplier inside a burst
};

/// Bounded Zipf(theta) sampler over [0, n): exact inverse-CDF over the
/// generalized harmonic numbers (precomputed, O(log n) per draw). theta = 0
/// degenerates to uniform; rank 0 is the hottest item.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);
  std::uint64_t sample(sim::Rng& rng) const;
  std::uint64_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Generate a single-VM trace from the spec; (spec, seed) fully determines
/// the result.
TraceData generate_trace(const TraceGenSpec& spec, std::uint64_t seed);

/// How an experiment sources its trace workload, in precedence order:
/// in-memory data, a trace file (streamed), or a generator spec.
struct TraceSourceConfig {
  const TraceData* data = nullptr;
  std::string path;
  TraceGenSpec gen{};
  /// Replay mode (see TraceReplayOptions): single-source traces fan out to
  /// every VM by default; exact multi-VM replays must clear this.
  bool broadcast = true;
};

/// Parse a trace workload argument like "zipf", "phase:dur=30,theta=0.8",
/// "burst:on=1,off=4,mult=10", "scan", or "file=/path/to.trace" (an
/// optional "trace:" prefix is accepted). Key=value pairs override the
/// matching TraceGenSpec fields: dur, dt, pages, page_kib, chunks,
/// chunk_kib, offset_mib, mem_mbps, write_mbps, read_frac, compute, theta,
/// phase, hot, on, off, mult. Returns false with *err on an unknown pattern
/// or key.
bool parse_trace_spec(std::string_view arg, TraceSourceConfig* out, std::string* err);

}  // namespace hm::workloads
