#include "workloads/trace_gen.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

namespace hm::workloads {

const char* trace_pattern_name(TracePattern p) noexcept {
  switch (p) {
    case TracePattern::kZipfian: return "zipf";
    case TracePattern::kPhaseShift: return "phase";
    case TracePattern::kBurst: return "burst";
    case TracePattern::kSequentialScan: return "scan";
  }
  return "?";
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    total += theta == 0.0 ? 1.0 : std::pow(static_cast<double>(i + 1), -theta);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::uint64_t ZipfSampler::sample(sim::Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const std::uint64_t idx = static_cast<std::uint64_t>(it - cdf_.begin());
  return idx < cdf_.size() ? idx : cdf_.size() - 1;
}

namespace {

void emit(TraceData& data, double t, TraceOp op, std::uint8_t lane, std::uint64_t a,
          std::uint64_t b, std::uint64_t c = 0) {
  TraceRecord r;
  r.t = t;
  r.op = op;
  r.lane = lane;
  r.vm = 0;
  r.a = a;
  r.b = b;
  r.c = c;
  data.records.push_back(r);
}

/// Sort+unique a step's page draws and emit one kMemDirty per maximal run.
void emit_page_runs(TraceData& data, double t, std::vector<std::uint64_t>& pages) {
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  detail::coalesce_runs(
      [&](auto&& fn) {
        for (std::uint64_t p : pages) fn(p);
      },
      [&](std::uint64_t first, std::uint64_t count) {
        emit(data, t, TraceOp::kMemDirty, /*lane=*/1, first, count);
      });
  pages.clear();
}

}  // namespace

TraceData generate_trace(const TraceGenSpec& spec, std::uint64_t seed) {
  TraceData data;
  data.header.page_bytes = spec.page_bytes;
  data.header.chunk_bytes = spec.chunk_bytes;
  data.header.file_offset = spec.file_offset;
  data.header.pages = spec.pages;
  data.header.chunks = spec.chunks;
  data.header.num_vms = 1;
  data.header.name = std::string("gen:") + trace_pattern_name(spec.pattern);

  sim::Rng rng =
      sim::Rng(seed).fork("tracegen", static_cast<std::uint64_t>(spec.pattern));
  const std::uint64_t pages = std::max<std::uint64_t>(1, spec.pages);
  const std::uint64_t chunks = std::max<std::uint64_t>(1, spec.chunks);
  // Hot-window sizes for the phase-shifting pattern; the Zipf samplers for
  // the static pattern span the whole universe.
  const std::uint64_t page_win = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(spec.hot_fraction * static_cast<double>(pages)));
  const std::uint64_t chunk_win = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(spec.hot_fraction * static_cast<double>(chunks)));
  const bool zipf_draws = spec.pattern == TracePattern::kZipfian ||
                          spec.pattern == TracePattern::kPhaseShift;
  const std::uint64_t page_universe =
      spec.pattern == TracePattern::kPhaseShift ? page_win : pages;
  const std::uint64_t chunk_universe =
      spec.pattern == TracePattern::kPhaseShift ? chunk_win : chunks;
  const ZipfSampler page_zipf(page_universe, zipf_draws ? spec.zipf_theta : 0.0);
  const ZipfSampler chunk_zipf(chunk_universe, zipf_draws ? spec.zipf_theta : 0.0);

  const double dt = spec.dt_s > 0 ? spec.dt_s : 0.25;
  const std::uint64_t steps =
      static_cast<std::uint64_t>(std::ceil(spec.duration_s / dt));
  double page_acc = 0, chunk_acc = 0;
  std::uint64_t scan_page = 0, scan_chunk = 0;
  std::vector<std::uint64_t> step_pages;
  for (std::uint64_t k = 0; k < steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    if (spec.compute_fraction > 0) {
      emit(data, t, TraceOp::kCompute, /*lane=*/0,
           std::bit_cast<std::uint64_t>(dt * spec.compute_fraction),
           std::bit_cast<std::uint64_t>(0.0));
    }
    // Hot-window base for the phase-shifting pattern: jumps by one window
    // every phase_s, wrapping over the universe.
    const std::uint64_t phase =
        spec.phase_s > 0 ? static_cast<std::uint64_t>(t / spec.phase_s) : 0;
    const std::uint64_t page_base = (phase * page_win) % pages;
    const std::uint64_t chunk_base = (phase * chunk_win) % chunks;

    // --- memory dirtying ----------------------------------------------------
    page_acc += spec.mem_dirty_Bps * dt / static_cast<double>(spec.page_bytes);
    std::uint64_t npages = static_cast<std::uint64_t>(page_acc);
    page_acc -= static_cast<double>(npages);
    if (npages > 0) {
      if (spec.pattern == TracePattern::kSequentialScan) {
        // Linear sweep, wrapping: at most two runs per step.
        while (npages > 0) {
          const std::uint64_t run = std::min(npages, pages - scan_page);
          emit(data, t, TraceOp::kMemDirty, /*lane=*/1, scan_page, run);
          scan_page = (scan_page + run) % pages;
          npages -= run;
        }
      } else {
        for (std::uint64_t i = 0; i < npages; ++i) {
          std::uint64_t p = spec.pattern == TracePattern::kBurst
                                ? rng.uniform(pages)
                                : page_zipf.sample(rng);
          if (spec.pattern == TracePattern::kPhaseShift) p = (page_base + p) % pages;
          step_pages.push_back(p);
        }
        emit_page_runs(data, t, step_pages);
      }
    }

    // --- chunk I/O ----------------------------------------------------------
    double write_Bps = spec.chunk_write_Bps;
    if (spec.pattern == TracePattern::kBurst) {
      const double cycle = spec.burst_on_s + spec.burst_off_s;
      const bool in_burst = cycle <= 0 || std::fmod(t, cycle) < spec.burst_on_s;
      write_Bps = in_burst ? write_Bps * spec.burst_multiplier : 0.0;
    }
    chunk_acc += write_Bps * dt / static_cast<double>(spec.chunk_bytes);
    std::uint64_t nchunks = static_cast<std::uint64_t>(chunk_acc);
    chunk_acc -= static_cast<double>(nchunks);
    if (spec.pattern == TracePattern::kSequentialScan) {
      while (nchunks > 0) {
        const std::uint64_t run = std::min(nchunks, chunks - scan_chunk);
        emit(data, t, TraceOp::kChunkWrite, /*lane=*/2, scan_chunk, run);
        scan_chunk = (scan_chunk + run) % chunks;
        nchunks -= run;
      }
    } else {
      for (std::uint64_t i = 0; i < nchunks; ++i) {
        std::uint64_t c = spec.pattern == TracePattern::kBurst ? rng.uniform(chunks)
                                                               : chunk_zipf.sample(rng);
        if (spec.pattern == TracePattern::kPhaseShift) c = (chunk_base + c) % chunks;
        const bool read = spec.read_fraction > 0 && rng.bernoulli(spec.read_fraction);
        emit(data, t, read ? TraceOp::kChunkRead : TraceOp::kChunkWrite,
             /*lane=*/read ? 3 : 2, c, 1);
      }
    }
  }
  data.header.records = data.records.size();
  return data;
}

// --- spec parsing ------------------------------------------------------------

namespace {

bool parse_double(const std::string& v, double* out) {
  char* end = nullptr;
  *out = std::strtod(v.c_str(), &end);
  return end != nullptr && end != v.c_str() && *end == '\0';
}

bool apply_key(TraceGenSpec& g, const std::string& key, const std::string& val,
               std::string* err) {
  double d = 0;
  if (!parse_double(val, &d)) {
    if (err) *err = "trace spec: non-numeric value for '" + key + "'";
    return false;
  }
  if (key == "dur") g.duration_s = d;
  else if (key == "dt") g.dt_s = d;
  else if (key == "pages") g.pages = static_cast<std::uint64_t>(d);
  else if (key == "page_kib") g.page_bytes = static_cast<std::uint64_t>(d) * storage::kKiB;
  else if (key == "chunks") g.chunks = static_cast<std::uint32_t>(d);
  else if (key == "chunk_kib")
    g.chunk_bytes = static_cast<std::uint32_t>(d) * static_cast<std::uint32_t>(storage::kKiB);
  else if (key == "offset_mib")
    g.file_offset = static_cast<std::uint64_t>(d) * storage::kMiB;
  else if (key == "mem_mbps") g.mem_dirty_Bps = d * 1e6;
  else if (key == "write_mbps") g.chunk_write_Bps = d * 1e6;
  else if (key == "read_frac") g.read_fraction = d;
  else if (key == "compute") g.compute_fraction = d;
  else if (key == "theta") g.zipf_theta = d;
  else if (key == "phase") g.phase_s = d;
  else if (key == "hot") g.hot_fraction = d;
  else if (key == "on") g.burst_on_s = d;
  else if (key == "off") g.burst_off_s = d;
  else if (key == "mult") g.burst_multiplier = d;
  else {
    if (err) *err = "trace spec: unknown key '" + key + "'";
    return false;
  }
  return true;
}

}  // namespace

bool parse_trace_spec(std::string_view arg, TraceSourceConfig* out, std::string* err) {
  constexpr std::string_view kPrefix = "trace:";
  if (arg.substr(0, kPrefix.size()) == kPrefix) arg.remove_prefix(kPrefix.size());
  constexpr std::string_view kFile = "file=";
  if (arg.substr(0, kFile.size()) == kFile) {
    out->path = std::string(arg.substr(kFile.size()));
    if (out->path.empty()) {
      if (err) *err = "trace spec: empty file path";
      return false;
    }
    return true;
  }
  const std::size_t colon = arg.find(':');
  const std::string_view pattern = arg.substr(0, colon);
  if (pattern == "zipf" || pattern == "zipfian")
    out->gen.pattern = TracePattern::kZipfian;
  else if (pattern == "phase" || pattern == "phase-shift")
    out->gen.pattern = TracePattern::kPhaseShift;
  else if (pattern == "burst")
    out->gen.pattern = TracePattern::kBurst;
  else if (pattern == "scan" || pattern == "seq")
    out->gen.pattern = TracePattern::kSequentialScan;
  else {
    if (err)
      *err = "trace spec: unknown pattern '" + std::string(pattern) +
             "' (zipf|phase|burst|scan|file=PATH)";
    return false;
  }
  if (colon == std::string_view::npos) return true;
  std::string_view rest = arg.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view kv = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (kv.empty()) continue;
    const std::size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      if (err) *err = "trace spec: expected key=value, got '" + std::string(kv) + "'";
      return false;
    }
    if (!apply_key(out->gen, std::string(kv.substr(0, eq)), std::string(kv.substr(eq + 1)),
                   err))
      return false;
  }
  return true;
}

}  // namespace hm::workloads
