// IOR benchmark model (Section 5.3): a single process performs N iterations
// of "write a 1 GB file, then read it back" in 256 KB blocks through the
// POSIX interface. Purely I/O bound — the paper's most aggressive disk-state
// churn (every iteration rewrites the same 1 GB region, driving WriteCount
// up and making pre-copy storage transfer re-send chunks over and over).
#pragma once

#include "workloads/workload.h"

namespace hm::workloads {

struct IorConfig {
  int iterations = 10;
  std::uint64_t file_bytes = 1 * storage::kGiB;
  std::uint64_t block_bytes = 256 * storage::kKiB;
  /// Placement of the benchmark file inside the image (past the OS data).
  std::uint64_t file_offset = 1 * storage::kGiB;
};

class IorWorkload final : public Workload {
 public:
  explicit IorWorkload(IorConfig cfg = {}) : cfg_(cfg) {}
  const char* name() const noexcept override { return "IOR"; }
  sim::Task run(vm::VmInstance& vm) override;

  const IorConfig& config() const noexcept { return cfg_; }
  int iterations_done() const noexcept { return iterations_done_; }
  double finished_at() const noexcept { return finished_at_; }

 private:
  IorConfig cfg_;
  int iterations_done_ = 0;
  double finished_at_ = 0;
};

}  // namespace hm::workloads
