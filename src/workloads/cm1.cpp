#include "workloads/cm1.h"

#include <cassert>

namespace hm::workloads {

Cm1Application::Cm1Application(sim::Simulator& sim, std::vector<vm::VmInstance*> ranks,
                               Cm1Config cfg)
    : sim_(sim),
      ranks_(std::move(ranks)),
      cfg_(cfg),
      barrier_(sim, ranks_.size()),
      done_(sim),
      outputs_written_(ranks_.size(), 0) {
  assert(static_cast<int>(ranks_.size()) == cfg_.ranks());
}

std::vector<int> Cm1Application::neighbours(int rank) const {
  const int x = rank % cfg_.grid_x;
  const int y = rank / cfg_.grid_x;
  std::vector<int> out;
  if (x > 0) out.push_back(rank - 1);
  if (x < cfg_.grid_x - 1) out.push_back(rank + 1);
  if (y > 0) out.push_back(rank - cfg_.grid_x);
  if (y < cfg_.grid_y - 1) out.push_back(rank + cfg_.grid_x);
  return out;
}

namespace {
sim::Task send_halo(vm::VmInstance& vm, net::NodeId from, net::NodeId to, double bytes,
                    sim::WaitGroup& wg) {
  // Halo sends are application traffic issued outside the VmInstance file
  // API, so they report to the workload observer here (trace recording).
  vm::WorkloadObserver* obs = vm.observer();
  const std::uint32_t lane = obs ? obs->on_net_send(vm, from, to, bytes) : 0;
  co_await vm.cluster().network().transfer(from, to, bytes, net::TrafficClass::kAppComm);
  if (obs) obs->on_op_end(vm, lane);
  wg.done();
}
}  // namespace

sim::Task Cm1Application::run_rank(int rank) {
  vm::VmInstance& vm = *ranks_[rank];
  const std::vector<int> nbrs = neighbours(rank);
  int dump_idx = 0;
  for (int step = 0; step < cfg_.total_steps(); ++step) {
    // Stencil update over the subdomain.
    co_await vm.compute(cfg_.step_compute_s, cfg_.dirty_Bps, cfg_.ws_bytes);
    // Halo exchange: send borders to every neighbour in parallel. Node ids
    // are read at send time — a migrated rank communicates from its new
    // host.
    sim::WaitGroup wg(sim_);
    for (int nb : nbrs) {
      wg.add();
      sim_.spawn(send_halo(vm, vm.node(), ranks_[nb]->node(),
                           static_cast<double>(cfg_.halo_bytes), wg));
    }
    co_await wg.wait();
    // BSP step synchronization: one slow rank stalls all of them.
    co_await barrier_.arrive_and_wait();
    if ((step + 1) % cfg_.steps_per_output == 0) {
      const int slot = cfg_.dump_slots > 0 ? dump_idx % cfg_.dump_slots : dump_idx;
      const std::uint64_t dump_off =
          cfg_.file_offset + static_cast<std::uint64_t>(slot) * cfg_.output_bytes;
      co_await vm.file_write(dump_off, cfg_.output_bytes);
      if (cfg_.drop_dump_cache) {
        // The dump is collected externally; once written back, drop it from
        // the guest cache so resident memory stays bounded.
        co_await vm.fsync();
        vm.drop_file_cache(dump_off, cfg_.output_bytes);
      }
      ++dump_idx;
      ++outputs_written_[rank];
    }
  }
  done_.done();
}

sim::Task Cm1Application::run_all() {
  t_start_ = sim_.now();
  done_.add(ranks_.size());
  for (int r = 0; r < static_cast<int>(ranks_.size()); ++r) sim_.spawn(run_rank(r));
  co_await done_.wait();
  t_end_ = sim_.now();
}

}  // namespace hm::workloads
