#include "workloads/trace.h"

#include <bit>
#include <cmath>
#include <cstdlib>
#include <utility>

namespace hm::workloads {

namespace {

constexpr char kMagic[] = "HMTRACE";

void put_u16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}
void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t f64_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Non-negative finite double carried in a u64 field.
bool valid_f64_field(std::uint64_t bits) {
  const double v = as_f64(bits);
  return std::isfinite(v) && v >= 0.0;
}

/// Suspend until absolute virtual time `t` (schedule_at, so no double
/// rounding through a delay); passes straight through if t has arrived.
struct UntilAwaiter {
  sim::Simulator& sim;
  double t;
  bool await_ready() const noexcept { return !(t > sim.now()); }
  void await_suspend(std::coroutine_handle<> h) {
    sim.schedule_at(t, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}
};

}  // namespace

const char* trace_op_name(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kCompute: return "compute";
    case TraceOp::kFileWrite: return "file-write";
    case TraceOp::kFileRead: return "file-read";
    case TraceOp::kFsync: return "fsync";
    case TraceOp::kDropCache: return "drop-cache";
    case TraceOp::kMemDirty: return "mem-dirty";
    case TraceOp::kChunkWrite: return "chunk-write";
    case TraceOp::kChunkRead: return "chunk-read";
    case TraceOp::kNetSend: return "net-send";
  }
  return "?";
}

void encode_trace_record(const TraceRecord& r, unsigned char out[kTraceRecordBytes]) {
  put_u64(out, f64_bits(r.t));
  out[8] = static_cast<unsigned char>(r.op);
  out[9] = r.lane;
  put_u16(out + 10, r.vm);
  put_u32(out + 12, r.aux);
  put_u64(out + 16, r.a);
  put_u64(out + 24, r.b);
  put_u64(out + 32, r.c);
}

TraceRecord decode_trace_record(const unsigned char in[kTraceRecordBytes]) {
  TraceRecord r;
  r.t = as_f64(get_u64(in));
  r.op = static_cast<TraceOp>(in[8]);
  r.lane = in[9];
  r.vm = get_u16(in + 10);
  r.aux = get_u32(in + 12);
  r.a = get_u64(in + 16);
  r.b = get_u64(in + 24);
  r.c = get_u64(in + 32);
  return r;
}

bool write_trace(const std::string& path, const TraceData& data, std::string* err) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    if (err) *err = "cannot open '" + path + "' for writing";
    return false;
  }
  out << kMagic << ' ' << data.header.version << '\n'
      << "page_bytes=" << data.header.page_bytes << '\n'
      << "chunk_bytes=" << data.header.chunk_bytes << '\n'
      << "file_offset=" << data.header.file_offset << '\n'
      << "pages=" << data.header.pages << '\n'
      << "chunks=" << data.header.chunks << '\n'
      << "num_vms=" << data.header.num_vms << '\n'
      << "records=" << data.records.size() << '\n';
  if (!data.header.name.empty()) out << "name=" << data.header.name << '\n';
  out << '\n';
  unsigned char buf[kTraceRecordBytes];
  for (const TraceRecord& r : data.records) {
    encode_trace_record(r, buf);
    out.write(reinterpret_cast<const char*>(buf), kTraceRecordBytes);
  }
  out.flush();
  if (!out) {
    if (err) *err = "write error on '" + path + "'";
    return false;
  }
  return true;
}

// --- TraceReader -------------------------------------------------------------

bool TraceReader::fail(std::string msg) {
  error_ = std::move(msg);
  done_ = true;
  return false;
}

bool TraceReader::open(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_) return fail("cannot open trace '" + path + "'");
  std::string line;
  if (!std::getline(in_, line)) return fail("empty trace file (missing header)");
  // Magic + version line.
  const std::string magic(kMagic);
  if (line.compare(0, magic.size(), magic) != 0 || line.size() <= magic.size() ||
      line[magic.size()] != ' ') {
    return fail("bad magic: expected '" + magic + " <version>'");
  }
  char* end = nullptr;
  header_.version =
      static_cast<std::uint32_t>(std::strtoul(line.c_str() + magic.size() + 1, &end, 10));
  if (end == nullptr || *end != '\0' || header_.version != 1)
    return fail("unsupported trace version in '" + line + "' (reader knows version 1)");
  // key=value lines until the blank separator.
  bool saw_records = false;
  while (true) {
    if (!std::getline(in_, line))
      return fail("truncated header: no blank line before records");
    if (line.empty()) break;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0)
      return fail("malformed header line '" + line + "' (expected key=value)");
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    if (key == "name") {
      header_.name = val;
      continue;
    }
    char* vend = nullptr;
    const std::uint64_t n = std::strtoull(val.c_str(), &vend, 10);
    if (vend == nullptr || vend == val.c_str() || *vend != '\0')
      return fail("non-numeric value in header line '" + line + "'");
    if (key == "page_bytes") header_.page_bytes = n;
    else if (key == "chunk_bytes") header_.chunk_bytes = n;
    else if (key == "file_offset") header_.file_offset = n;
    else if (key == "pages") header_.pages = n;
    else if (key == "chunks") header_.chunks = n;
    else if (key == "num_vms") header_.num_vms = static_cast<std::uint32_t>(n);
    else if (key == "records") {
      header_.records = n;
      saw_records = true;
    }
    // Unknown keys are ignored (forward compatibility within version 1).
  }
  if (!saw_records) return fail("header missing the records= count");
  if (header_.num_vms == 0) return fail("header num_vms must be >= 1");
  if (header_.page_bytes == 0 || header_.chunk_bytes == 0)
    return fail("header page_bytes/chunk_bytes must be non-zero");
  return true;
}

bool TraceReader::validate(const TraceRecord& r) {
  const std::uint64_t idx = read_;  // 0-based index of this record
  const auto where = [idx] { return " (record " + std::to_string(idx) + ")"; };
  const std::uint8_t op = static_cast<std::uint8_t>(r.op);
  if (op < kMinTraceOp || op > kMaxTraceOp)
    return fail("unknown op " + std::to_string(op) + where());
  if (!std::isfinite(r.t) || (read_ == 0 ? r.t < 0 : r.t < last_t_))
    return fail("non-monotone or non-finite timestamp " + std::to_string(r.t) + where());
  if (r.vm >= header_.num_vms)
    return fail("vm index " + std::to_string(r.vm) + " out of range (num_vms=" +
                std::to_string(header_.num_vms) + ")" + where());
  switch (r.op) {
    case TraceOp::kMemDirty:
      if (header_.pages > 0 && (r.a > header_.pages || r.b > header_.pages - r.a))
        return fail("page range [" + std::to_string(r.a) + ", +" + std::to_string(r.b) +
                    ") outside pages=" + std::to_string(header_.pages) + where());
      break;
    case TraceOp::kChunkWrite:
    case TraceOp::kChunkRead:
      if (header_.chunks > 0 && (r.a > header_.chunks || r.b > header_.chunks - r.a))
        return fail("chunk range [" + std::to_string(r.a) + ", +" + std::to_string(r.b) +
                    ") outside chunks=" + std::to_string(header_.chunks) + where());
      break;
    case TraceOp::kCompute:
      if (!valid_f64_field(r.a) || !valid_f64_field(r.b))
        return fail("compute with non-finite seconds/rate" + where());
      break;
    case TraceOp::kNetSend:
      if (!valid_f64_field(r.c)) return fail("net-send with non-finite bytes" + where());
      break;
    default:
      break;
  }
  return true;
}

bool TraceReader::next(TraceRecord& out) {
  if (done_ || !ok()) return false;
  if (read_ == header_.records) {
    // Clean end: the stream must stop exactly here.
    char extra;
    if (in_.read(&extra, 1) && in_.gcount() == 1)
      return fail("trailing data after " + std::to_string(header_.records) + " records");
    done_ = true;
    return false;
  }
  unsigned char buf[kTraceRecordBytes];
  in_.read(reinterpret_cast<char*>(buf), kTraceRecordBytes);
  if (in_.gcount() != static_cast<std::streamsize>(kTraceRecordBytes))
    return fail("truncated record stream: got " + std::to_string(read_) + " of " +
                std::to_string(header_.records) + " records");
  out = decode_trace_record(buf);
  if (!validate(out)) return false;
  last_t_ = out.t;
  ++read_;
  return true;
}

bool load_trace(const std::string& path, TraceData* out, std::string* err) {
  TraceReader reader;
  if (!reader.open(path)) {
    if (err) *err = reader.error();
    return false;
  }
  out->header = reader.header();
  out->records.clear();
  // The header's count is untrusted until the stream backs it up: cap the
  // reserve so a malformed (huge) records= value yields a truncated-stream
  // diagnostic below instead of a length_error/bad_alloc abort here.
  out->records.reserve(std::min<std::uint64_t>(reader.header().records, 1u << 20));
  TraceRecord r;
  while (reader.next(r)) out->records.push_back(r);
  if (!reader.ok()) {
    if (err) *err = reader.error();
    return false;
  }
  return true;
}

// --- TraceRecorder -----------------------------------------------------------

TraceRecorder::TraceRecorder(TraceHeader header) { data_.header = std::move(header); }

void TraceRecorder::attach(vm::VmInstance& vm) {
  if (attached_ >= 0xffffu) {
    error_ = "trace recorder: vm index overflow (max 65535 VMs)";
    return;
  }
  vm.set_observer(this, attached_);
  lane_busy_.emplace_back();
  ++attached_;
}

std::uint32_t TraceRecorder::begin_op(vm::VmInstance& vm, TraceOp op, std::uint64_t a,
                                      std::uint64_t b, std::uint64_t c) {
  // Error paths return an out-of-range lane that on_op_end ignores — a real
  // lane 0 may be busy, and freeing it for an op that never owned it would
  // corrupt the bookkeeping for every later record.
  constexpr std::uint32_t kNoLane = ~std::uint32_t{0};
  const std::uint32_t v = vm.trace_vm();
  if (v >= lane_busy_.size()) {
    error_ = "trace recorder: observed a VM that was never attached";
    return kNoLane;
  }
  auto& busy = lane_busy_[v];
  std::uint32_t lane = 0;
  while (lane < busy.size() && busy[lane]) ++lane;
  if (lane > 0xffu) {
    error_ = "trace recorder: lane overflow (more than 256 concurrent ops on one VM)";
    return kNoLane;
  }
  if (lane == busy.size())
    busy.push_back(true);
  else
    busy[lane] = true;
  TraceRecord r;
  r.t = vm.cluster().sim().now();
  r.op = op;
  r.lane = static_cast<std::uint8_t>(lane);
  r.vm = static_cast<std::uint16_t>(v);
  r.a = a;
  r.b = b;
  r.c = c;
  data_.records.push_back(r);
  return lane;
}

std::uint32_t TraceRecorder::on_compute(vm::VmInstance& vm, double seconds, double dirty_Bps,
                                        std::uint64_t ws_bytes) {
  return begin_op(vm, TraceOp::kCompute, f64_bits(seconds), f64_bits(dirty_Bps), ws_bytes);
}
std::uint32_t TraceRecorder::on_file_write(vm::VmInstance& vm, std::uint64_t offset,
                                           std::uint64_t len) {
  return begin_op(vm, TraceOp::kFileWrite, offset, len, 0);
}
std::uint32_t TraceRecorder::on_file_read(vm::VmInstance& vm, std::uint64_t offset,
                                          std::uint64_t len) {
  return begin_op(vm, TraceOp::kFileRead, offset, len, 0);
}
std::uint32_t TraceRecorder::on_fsync(vm::VmInstance& vm) {
  return begin_op(vm, TraceOp::kFsync, 0, 0, 0);
}
std::uint32_t TraceRecorder::on_net_send(vm::VmInstance& vm, std::uint32_t src,
                                         std::uint32_t dst, double bytes) {
  return begin_op(vm, TraceOp::kNetSend, src, dst, f64_bits(bytes));
}
void TraceRecorder::on_drop_cache(vm::VmInstance& vm, std::uint64_t offset,
                                  std::uint64_t len) {
  // Instantaneous: record on a lane and free it in the same call.
  on_op_end(vm, begin_op(vm, TraceOp::kDropCache, offset, len, 0));
}
void TraceRecorder::on_op_end(vm::VmInstance& vm, std::uint32_t lane) {
  const std::uint32_t v = vm.trace_vm();
  if (v < lane_busy_.size() && lane < lane_busy_[v].size()) lane_busy_[v][lane] = false;
}

const TraceData& TraceRecorder::data() {
  data_.header.num_vms = attached_ > 0 ? attached_ : 1;
  data_.header.records = data_.records.size();
  return data_;
}

// --- snapshots over the dirty-state iteration hooks --------------------------

namespace {

/// Emit one base-relative record per run, skipping runs entirely below the
/// base and trimming runs that straddle it (indices below the base are
/// outside the snapshot window, NOT aliases of index 0). Returns records
/// emitted.
template <class Emit>
std::uint64_t emit_rebased(std::uint64_t first, std::uint64_t count, std::uint64_t base,
                           Emit&& emit) {
  if (first + count <= base) return 0;
  if (first < base) {
    count -= base - first;
    first = base;
  }
  emit(first - base, count);
  return 1;
}

}  // namespace

std::uint64_t snapshot_dirty_pages(const vm::GuestMemory& mem, double t, std::uint16_t vm,
                                   std::uint64_t base_page, TraceData* out) {
  std::uint64_t emitted = 0;
  detail::coalesce_runs(
      [&](auto&& fn) { mem.for_each_dirty_page(fn); },
      [&](std::uint64_t first, std::uint64_t count) {
        emitted += emit_rebased(first, count, base_page, [&](std::uint64_t a,
                                                            std::uint64_t b) {
          TraceRecord r;
          r.t = t;
          r.op = TraceOp::kMemDirty;
          r.vm = vm;
          r.a = a;
          r.b = b;
          out->records.push_back(r);
        });
      });
  return emitted;
}

std::uint64_t snapshot_modified_chunks(const storage::ChunkStore& store, double t,
                                       std::uint16_t vm, std::uint32_t base_chunk,
                                       TraceData* out) {
  std::uint64_t emitted = 0;
  detail::coalesce_runs(
      [&](auto&& fn) {
        store.for_each_modified([&](storage::ChunkId c) { fn(c); });
      },
      [&](std::uint64_t first, std::uint64_t count) {
        emitted += emit_rebased(first, count, base_chunk, [&](std::uint64_t a,
                                                              std::uint64_t b) {
          TraceRecord r;
          r.t = t;
          r.op = TraceOp::kChunkWrite;
          r.vm = vm;
          r.a = a;
          r.b = b;
          out->records.push_back(r);
        });
      });
  return emitted;
}

// --- TraceApplication --------------------------------------------------------

TraceApplication::TraceApplication(sim::Simulator& sim, std::vector<vm::VmInstance*> vms,
                                   const TraceData& data, TraceReplayOptions opts)
    : sim_(sim),
      vms_(std::move(vms)),
      opts_(opts),
      data_(&data),
      header_(data.header),
      lanes_(vms_.size()),
      done_(sim) {}

TraceApplication::TraceApplication(sim::Simulator& sim, std::vector<vm::VmInstance*> vms,
                                   std::string path, TraceReplayOptions opts)
    : sim_(sim),
      vms_(std::move(vms)),
      opts_(opts),
      reader_(std::make_unique<TraceReader>()),
      lanes_(vms_.size()),
      done_(sim) {
  if (reader_->open(path)) {
    header_ = reader_->header();
  } else {
    error_ = reader_->error();
  }
}

bool TraceApplication::next_record(TraceRecord& out) {
  if (data_ != nullptr) {
    if (cursor_ >= data_->records.size()) return false;
    out = data_->records[cursor_++];
    return true;
  }
  if (!reader_) return false;
  if (reader_->next(out)) return true;
  if (!reader_->ok()) error_ = reader_->error();
  return false;
}

void TraceApplication::enqueue(std::size_t vm_idx, const TraceRecord& r) {
  auto& vm_lanes = lanes_[vm_idx];
  if (r.lane >= vm_lanes.size()) vm_lanes.resize(r.lane + 1);
  if (!vm_lanes[r.lane]) {
    vm_lanes[r.lane] = std::make_unique<Lane>();
    vm_lanes[r.lane]->app = this;
    vm_lanes[r.lane]->vm = vms_[vm_idx];
  }
  Lane* lane = vm_lanes[r.lane].get();
  lane->q.push_back(r);
  if (!lane->running) {
    lane->running = true;
    done_.add();
    sim_.spawn(lane_run(lane));
  }
}

bool TraceApplication::fits_replay_target(const TraceRecord& r) {
  // The reader validates records against the trace's own header; the replay
  // target can still be smaller than the recorded machine. Reject anything
  // that would fall outside the image/cluster instead of handing an
  // out-of-range chunk or node id to the storage/network layers.
  const vm::Cluster& cluster = vms_.front()->cluster();
  const std::uint64_t image_bytes = cluster.config().image.image_bytes;
  switch (r.op) {
    case TraceOp::kFileWrite:
    case TraceOp::kFileRead:
    case TraceOp::kDropCache: {
      const std::uint64_t end = r.a + r.b;
      if (end < r.a || end > image_bytes) {
        error_ = "trace file range [" + std::to_string(r.a) + ", +" + std::to_string(r.b) +
                 ") outside the replay image (" + std::to_string(image_bytes) + " bytes)";
        return false;
      }
      break;
    }
    case TraceOp::kChunkWrite:
    case TraceOp::kChunkRead: {
      const std::uint64_t count = r.a + r.b;
      if (count < r.a || header_.chunk_bytes == 0 ||
          count > (~std::uint64_t{0} - header_.file_offset) / header_.chunk_bytes ||
          header_.file_offset + count * header_.chunk_bytes > image_bytes) {
        error_ = "trace chunk range [" + std::to_string(r.a) + ", +" +
                 std::to_string(r.b) + ") outside the replay image (" +
                 std::to_string(image_bytes) + " bytes at file_offset " +
                 std::to_string(header_.file_offset) + ")";
        return false;
      }
      break;
    }
    case TraceOp::kNetSend:
      if (r.a >= cluster.size() || r.b >= cluster.size()) {
        error_ = "trace net-send between nodes " + std::to_string(r.a) + " -> " +
                 std::to_string(r.b) + " outside the replay cluster (" +
                 std::to_string(cluster.size()) + " nodes)";
        return false;
      }
      break;
    default:
      break;  // kMemDirty is clamped by GuestMemory; kCompute/kFsync are safe
  }
  return true;
}

sim::Task TraceApplication::dispatch() {
  TraceRecord r;
  while (error_.empty() && !vms_.empty() && next_record(r) && fits_replay_target(r)) {
    if (r.t > sim_.now()) co_await UntilAwaiter{sim_, r.t};
    if (opts_.broadcast) {
      if (r.op == TraceOp::kNetSend) {
        error_ = "net-send records cannot be broadcast (absolute node ids); "
                 "replay this trace with broadcast=false";
        break;
      }
      for (std::size_t v = 0; v < vms_.size(); ++v) enqueue(v, r);
    } else {
      if (r.vm >= vms_.size()) {
        error_ = "trace vm index " + std::to_string(r.vm) + " >= " +
                 std::to_string(vms_.size()) + " replay VMs (enable broadcast or "
                 "deploy more VMs)";
        break;
      }
      enqueue(r.vm, r);
    }
  }
  done_.done();
}

sim::Task TraceApplication::lane_run(Lane* lane) {
  vm::VmInstance& vm = *lane->vm;
  const TraceHeader& h = header_;
  while (!lane->q.empty()) {
    const TraceRecord r = lane->q.front();
    lane->q.pop_front();
    switch (r.op) {
      case TraceOp::kCompute:
        co_await vm.compute(as_f64(r.a), as_f64(r.b), r.c);
        break;
      case TraceOp::kFileWrite:
        co_await vm.file_write(r.a, r.b);
        break;
      case TraceOp::kFileRead:
        co_await vm.file_read(r.a, r.b);
        break;
      case TraceOp::kFsync:
        co_await vm.fsync();
        break;
      case TraceOp::kDropCache:
        vm.drop_file_cache(r.a, r.b);
        break;
      case TraceOp::kMemDirty:
        // Live workloads only dirty memory while running; respect the same
        // contract (no event when the gate is already open).
        co_await vm.run_gate().wait_open();
        vm.memory().touch_range(vm.anon_region_offset() + r.a * h.page_bytes,
                                r.b * h.page_bytes);
        break;
      case TraceOp::kChunkWrite:
        co_await vm.file_write(h.file_offset + r.a * h.chunk_bytes, r.b * h.chunk_bytes);
        break;
      case TraceOp::kChunkRead:
        co_await vm.file_read(h.file_offset + r.a * h.chunk_bytes, r.b * h.chunk_bytes);
        break;
      case TraceOp::kNetSend:
        co_await vm.cluster().network().transfer(static_cast<net::NodeId>(r.a),
                                                 static_cast<net::NodeId>(r.b),
                                                 as_f64(r.c), net::TrafficClass::kAppComm);
        break;
    }
    ++applied_;
  }
  lane->running = false;
  done_.done();
}

sim::Task TraceApplication::run_all() {
  t_start_ = sim_.now();
  done_.add();
  sim_.spawn(dispatch());
  co_await done_.wait();
  t_end_ = sim_.now();
}

// --- TraceWorkload -----------------------------------------------------------

sim::Task TraceWorkload::run(vm::VmInstance& vm) {
  std::vector<vm::VmInstance*> one{&vm};
  if (data_ != nullptr) {
    TraceApplication app(vm.cluster().sim(), one, *data_, opts_);
    co_await app.run_all();
    error_ = app.error();
    applied_ = app.records_applied();
  } else {
    TraceApplication app(vm.cluster().sim(), one, path_, opts_);
    co_await app.run_all();
    error_ = app.error();
    applied_ = app.records_applied();
  }
  finished_at_ = vm.cluster().sim().now();
}

}  // namespace hm::workloads
