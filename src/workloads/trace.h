// Trace-driven workload axis (HPDC'12 reproduction, PR 5).
//
// The paper's argument for hybrid local-storage transfer rests on the
// temporal/spatial structure of real write streams; the three built-in
// workloads (IOR, AsyncWR, CM1) are closed-form generators. This module
// opens the trace axis: a compact versioned on-disk format for timestamped
// memory-dirty / chunk-write streams, a streaming reader with bounded
// memory, a recorder that captures a trace from ANY live workload at the
// VmInstance API boundary, and a replay engine that drives recorded or
// generated streams back through VmInstance/GuestMemory/ChunkStore.
//
// Format (version 1): a short text header followed by fixed-size binary
// records, little-endian.
//
//   HMTRACE 1\n
//   key=value\n ...          (page_bytes, chunk_bytes, file_offset, pages,
//                             chunks, num_vms, records, name; unknown keys
//                             are ignored for forward compatibility)
//   \n                       (blank line ends the header)
//   <records x 40 bytes>     u64 t_bits (f64), u8 op, u8 lane, u16 vm,
//                            u32 aux, u64 a, u64 b, u64 c
//
// Record semantics by op:
//   kCompute    a=f64 guest seconds, b=f64 dirty_Bps, c=ws_bytes
//   kFileWrite  a=byte offset, b=byte length       (absolute image offsets)
//   kFileRead   a=byte offset, b=byte length
//   kFsync      -
//   kDropCache  a=byte offset, b=byte length
//   kMemDirty   a=first page, b=page count         (anon-region relative,
//                                                   header page_bytes units)
//   kChunkWrite a=first chunk, b=chunk count       (header file_offset +
//                                                   chunk_bytes addressing)
//   kChunkRead  a=first chunk, b=chunk count
//   kNetSend    a=src node, b=dst node, c=f64 bytes (app-comm transfer)
//
// Replay model: records are globally ordered by (t, file order). A single
// dispatcher issues each record at its timestamp to a per-(vm, lane) FIFO
// worker; within a lane operations run strictly sequentially, so a lane
// whose operation overruns its successor's timestamp applies natural
// backpressure instead of unbounded queueing. Lanes are the concurrency
// structure of the original workload (the recorder assigns them from op
// overlap), which is what makes a replayed run reproduce a recorded run's
// timeline bit-for-bit: same seed + same trace => byte-identical migration
// metrics, in both ABLATE_INCREMENTAL regimes (enforced by
// tests/integration/trace_replay_test.cpp and the CI sweep golden gate).
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "storage/chunk_store.h"
#include "vm/workload_observer.h"
#include "workloads/workload.h"

namespace hm::workloads {

enum class TraceOp : std::uint8_t {
  kCompute = 1,
  kFileWrite = 2,
  kFileRead = 3,
  kFsync = 4,
  kDropCache = 5,
  kMemDirty = 6,
  kChunkWrite = 7,
  kChunkRead = 8,
  kNetSend = 9,
};
constexpr std::uint8_t kMinTraceOp = 1;
constexpr std::uint8_t kMaxTraceOp = 9;
const char* trace_op_name(TraceOp op) noexcept;

struct TraceRecord {
  double t = 0;          // virtual issue time (seconds, non-decreasing)
  TraceOp op = TraceOp::kCompute;
  std::uint8_t lane = 0;  // concurrency slot within the vm
  std::uint16_t vm = 0;   // vm index within the trace
  std::uint32_t aux = 0;  // reserved (0 in version 1)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool operator==(const TraceRecord&) const = default;
};
constexpr std::size_t kTraceRecordBytes = 40;

struct TraceHeader {
  std::uint32_t version = 1;
  std::uint64_t page_bytes = 64 * storage::kKiB;   // kMemDirty granularity
  std::uint64_t chunk_bytes = 256 * storage::kKiB;  // kChunk* granularity
  std::uint64_t file_offset = 1 * storage::kGiB;    // kChunk* base offset
  std::uint64_t pages = 0;   // kMemDirty universe; 0 = unbounded
  std::uint64_t chunks = 0;  // kChunk* universe; 0 = unbounded
  std::uint32_t num_vms = 1;
  std::uint64_t records = 0;
  std::string name;  // free-form provenance tag
};

/// Fully materialized trace (what the recorder and generators produce).
struct TraceData {
  TraceHeader header;
  std::vector<TraceRecord> records;
};

// --- serialization -----------------------------------------------------------

void encode_trace_record(const TraceRecord& r, unsigned char out[kTraceRecordBytes]);
TraceRecord decode_trace_record(const unsigned char in[kTraceRecordBytes]);

/// Write a complete trace file. Returns false (with *err set) on I/O error.
bool write_trace(const std::string& path, const TraceData& data, std::string* err);

/// Streaming trace reader with bounded memory: the header is parsed on
/// open(), records are decoded one at a time from a fixed-size buffer, and
/// every record is validated (known op, vm < num_vms, non-decreasing finite
/// timestamps, page/chunk indices inside the header universes). A malformed
/// trace — truncated header or records, bad magic/version, out-of-range
/// fields, non-monotone time, zero-length file — fails with a diagnostic in
/// error(), never UB.
class TraceReader {
 public:
  /// Parse the header; false (see error()) if the file is absent/malformed.
  bool open(const std::string& path);

  /// Next record, validated. False at clean end-of-trace or on error —
  /// check ok() to distinguish.
  bool next(TraceRecord& out);

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }
  const TraceHeader& header() const noexcept { return header_; }
  std::uint64_t records_read() const noexcept { return read_; }

 private:
  bool fail(std::string msg);
  bool validate(const TraceRecord& r);

  std::ifstream in_;
  TraceHeader header_;
  std::string error_;
  std::uint64_t read_ = 0;
  double last_t_ = 0;
  bool done_ = false;
};

/// Convenience: stream a whole file into memory. False + *err on failure.
bool load_trace(const std::string& path, TraceData* out, std::string* err);

namespace detail {

/// Coalesce an ascending index stream into maximal [first, first+count)
/// runs, emitting one `emit(first, count)` per run. Shared by the snapshot
/// helpers and the generators so run semantics cannot diverge.
template <class ForEach, class Emit>
void coalesce_runs(ForEach&& for_each, Emit&& emit) {
  std::uint64_t run_first = 0, run_len = 0;
  for_each([&](std::uint64_t i) {
    if (run_len > 0 && i == run_first + run_len) {
      ++run_len;
      return;
    }
    if (run_len > 0) emit(run_first, run_len);
    run_first = i;
    run_len = 1;
  });
  if (run_len > 0) emit(run_first, run_len);
}

}  // namespace detail

// --- capture -----------------------------------------------------------------

/// Records a trace from live workloads. Attach it to every VM of an
/// experiment (cloud::ExperimentConfig::trace_recorder does this) and the
/// run's complete workload-API call stream lands in data(), globally
/// ordered by time, with concurrency lanes reconstructed from operation
/// overlap: an op issued while another is in flight on the same VM gets a
/// different lane, so replay can preserve the original overlap structure.
/// Observation is passive — a recorded run's timeline is identical to an
/// unrecorded one.
class TraceRecorder final : public vm::WorkloadObserver {
 public:
  explicit TraceRecorder(TraceHeader header = {});

  /// Register a VM; records from it carry the next free vm index.
  void attach(vm::VmInstance& vm);

  /// Finalized view (stamps num_vms/records into the header).
  const TraceData& data();
  /// True if recording hit a structural limit (lane overflow, vm overflow).
  bool failed() const noexcept { return !error_.empty(); }
  const std::string& error() const noexcept { return error_; }

  // vm::WorkloadObserver
  std::uint32_t on_compute(vm::VmInstance& vm, double seconds, double dirty_Bps,
                           std::uint64_t ws_bytes) override;
  std::uint32_t on_file_write(vm::VmInstance& vm, std::uint64_t offset,
                              std::uint64_t len) override;
  std::uint32_t on_file_read(vm::VmInstance& vm, std::uint64_t offset,
                             std::uint64_t len) override;
  std::uint32_t on_fsync(vm::VmInstance& vm) override;
  std::uint32_t on_net_send(vm::VmInstance& vm, std::uint32_t src, std::uint32_t dst,
                            double bytes) override;
  void on_drop_cache(vm::VmInstance& vm, std::uint64_t offset, std::uint64_t len) override;
  void on_op_end(vm::VmInstance& vm, std::uint32_t lane) override;

 private:
  std::uint32_t begin_op(vm::VmInstance& vm, TraceOp op, std::uint64_t a, std::uint64_t b,
                         std::uint64_t c);

  TraceData data_;
  std::vector<std::vector<bool>> lane_busy_;  // [vm][lane]
  std::string error_;
  std::uint32_t attached_ = 0;
};

/// Append one kMemDirty record per maximal run of currently-dirty guest
/// pages (GuestMemory::for_each_dirty_page, ascending, runs coalesced).
/// Returns the number of records appended. Page indices are stored relative
/// to `base_page`, matching replay's anon-region addressing; pages below
/// the base (e.g. the OS image or the page-cache region) are outside the
/// snapshot's window and are skipped (runs straddling the base are
/// trimmed).
std::uint64_t snapshot_dirty_pages(const vm::GuestMemory& mem, double t, std::uint16_t vm,
                                   std::uint64_t base_page, TraceData* out);

/// Same for the chunk store's ModifiedSet (ChunkStore::for_each_modified),
/// emitting kChunkWrite runs relative to `base_chunk`.
std::uint64_t snapshot_modified_chunks(const storage::ChunkStore& store, double t,
                                       std::uint16_t vm, std::uint32_t base_chunk,
                                       TraceData* out);

// --- replay ------------------------------------------------------------------

struct TraceReplayOptions {
  /// Replay every record on every VM regardless of the record's vm field —
  /// the scale-out mode for single-source traces (each VM gets its own lane
  /// set, like running N copies of the same synthetic workload). Exact
  /// replay of a multi-VM recorded trace needs broadcast=false. kNetSend
  /// records are rejected in broadcast mode (their node ids are absolute).
  bool broadcast = false;
};

/// Replays a trace through a set of VM instances. One global dispatcher
/// walks the stream in order, releasing each record at its timestamp to the
/// per-(vm, lane) FIFO worker that executes it; completion is when the
/// stream is exhausted and every lane drained. Construction from TraceData
/// (in-memory) or from a file path (single streaming reader, bounded
/// memory). A validation failure mid-stream stops dispatch and surfaces in
/// error(); everything already issued still runs to completion.
class TraceApplication {
 public:
  TraceApplication(sim::Simulator& sim, std::vector<vm::VmInstance*> vms,
                   const TraceData& data, TraceReplayOptions opts = {});
  TraceApplication(sim::Simulator& sim, std::vector<vm::VmInstance*> vms,
                   std::string path, TraceReplayOptions opts = {});
  TraceApplication(const TraceApplication&) = delete;
  TraceApplication& operator=(const TraceApplication&) = delete;

  /// Launch the dispatcher; completes when the whole trace was applied.
  sim::Task run_all();

  bool failed() const noexcept { return !error_.empty(); }
  const std::string& error() const noexcept { return error_; }
  const TraceHeader& header() const noexcept { return header_; }
  std::uint64_t records_applied() const noexcept { return applied_; }
  double started_at() const noexcept { return t_start_; }
  double finished_at() const noexcept { return t_end_; }

 private:
  struct Lane {
    TraceApplication* app = nullptr;
    vm::VmInstance* vm = nullptr;
    std::deque<TraceRecord> q;
    bool running = false;
  };

  bool next_record(TraceRecord& out);
  bool fits_replay_target(const TraceRecord& r);
  void enqueue(std::size_t vm_idx, const TraceRecord& r);
  sim::Task dispatch();
  sim::Task lane_run(Lane* lane);

  sim::Simulator& sim_;
  std::vector<vm::VmInstance*> vms_;
  TraceReplayOptions opts_;
  const TraceData* data_ = nullptr;  // in-memory source
  std::size_t cursor_ = 0;
  std::unique_ptr<TraceReader> reader_;  // streaming source
  TraceHeader header_;
  std::vector<std::vector<std::unique_ptr<Lane>>> lanes_;  // [vm][lane]
  sim::WaitGroup done_;
  std::string error_;
  std::uint64_t applied_ = 0;
  double t_start_ = 0;
  double t_end_ = 0;
};

/// Workload-interface adapter: replays a trace on ONE VM (broadcast by
/// default, so a single-source generated trace drives any VM). This is what
/// plugs the trace axis into harnesses built around workloads::Workload.
class TraceWorkload final : public Workload {
 public:
  explicit TraceWorkload(const TraceData* data, TraceReplayOptions opts = {.broadcast = true})
      : data_(data), opts_(opts) {}
  explicit TraceWorkload(std::string path, TraceReplayOptions opts = {.broadcast = true})
      : path_(std::move(path)), opts_(opts) {}

  const char* name() const noexcept override { return "trace"; }
  sim::Task run(vm::VmInstance& vm) override;

  bool failed() const noexcept { return !error_.empty(); }
  const std::string& error() const noexcept { return error_; }
  std::uint64_t records_applied() const noexcept { return applied_; }
  double finished_at() const noexcept { return finished_at_; }

 private:
  const TraceData* data_ = nullptr;
  std::string path_;
  TraceReplayOptions opts_;
  std::string error_;
  std::uint64_t applied_ = 0;
  double finished_at_ = 0;
};

}  // namespace hm::workloads
