// Workload interface: a workload drives one VM instance (or, for the MPI
// style CM1 model, a set of rank VMs) through compute, memory dirtying and
// file I/O. The experiment harness runs workloads to completion while
// migrations happen underneath them.
#pragma once

#include <string>

#include "sim/task.h"
#include "vm/vm_instance.h"

namespace hm::workloads {

class Workload {
 public:
  virtual ~Workload() = default;
  virtual const char* name() const noexcept = 0;
  /// Drive `vm` to completion. The coroutine must be spawned/awaited by the
  /// experiment harness.
  virtual sim::Task run(vm::VmInstance& vm) = 0;
};

}  // namespace hm::workloads
