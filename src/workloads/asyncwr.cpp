#include "workloads/asyncwr.h"

#include <memory>

namespace hm::workloads {

sim::Task AsyncWrWorkload::async_write(vm::VmInstance& vm, std::uint64_t offset,
                                       sim::Event& done) {
  co_await vm.file_write(offset, cfg_.bytes_per_iter);
  done.set();
}

sim::Task AsyncWrWorkload::run(vm::VmInstance& vm) {
  auto& simulator = vm.cluster().sim();
  std::unique_ptr<sim::Event> prev_write;  // at most one write in flight
  std::uint64_t off = cfg_.file_offset;
  for (int it = 0; it < cfg_.iterations; ++it) {
    // Compute while the previous iteration's buffer drains to disk.
    co_await vm.compute(cfg_.iter_compute_s, cfg_.dirty_Bps, cfg_.ws_bytes);
    // The alternate buffer can only be reused once its write completed.
    if (prev_write) co_await prev_write->wait();
    prev_write = std::make_unique<sim::Event>(simulator);
    simulator.spawn(async_write(vm, off, *prev_write));
    off += cfg_.bytes_per_iter;
    ++iterations_done_;
  }
  if (prev_write) co_await prev_write->wait();
  finished_at_ = simulator.now();
}

}  // namespace hm::workloads
