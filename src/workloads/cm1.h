// CM1 model (Section 5.5): a 3-D atmospheric stencil code distributed over
// an 8x8 grid of MPI ranks, one rank per VM. Every timestep each rank
// computes over its 200x200 subdomain, exchanges subdomain borders with its
// grid neighbours (network intensive), and synchronizes. Every
// `steps_per_output` steps it dumps ~200 MB of field data to local storage
// (moderate I/O pressure). The defining sensitivity the paper measures:
// one paused/slow rank drags every other rank down through the halo
// synchronization.
#pragma once

#include <memory>
#include <vector>

#include "sim/sync.h"
#include "workloads/workload.h"

namespace hm::workloads {

struct Cm1Config {
  int grid_x = 8;
  int grid_y = 8;
  double step_compute_s = 2.0;
  int steps_per_output = 20;  // 20 x 2 s = the paper's ~40 s per output
  int num_outputs = 10;
  std::uint64_t output_bytes = 200 * storage::kMiB;
  std::uint64_t halo_bytes = 320 * storage::kKiB;  // 200-point border x fields
  std::uint64_t file_offset = 1 * storage::kGiB;
  /// Stencil update dirty rate over the subdomain arrays while computing.
  double dirty_Bps = 30.0e6;
  std::uint64_t ws_bytes = 256 * storage::kMiB;
  /// Dumps are collected and processed externally (the paper omits the
  /// visualization part); once durable, their cache is dropped so the guest
  /// footprint stays bounded across outputs.
  bool drop_dump_cache = true;
  /// Scratch-space discipline: collected dumps are deleted, so the on-disk
  /// footprint rotates over this many output slots instead of accumulating
  /// (0 = never reuse, keep every output on disk).
  int dump_slots = 2;

  int ranks() const noexcept { return grid_x * grid_y; }
  int total_steps() const noexcept { return steps_per_output * num_outputs; }
};

/// Whole-application driver: owns the barrier and runs one coroutine per
/// rank VM. Unlike the single-VM workloads this one spans many VMs.
class Cm1Application {
 public:
  Cm1Application(sim::Simulator& sim, std::vector<vm::VmInstance*> ranks,
                 Cm1Config cfg = {});

  /// Launch every rank; completes when all ranks finished all outputs.
  sim::Task run_all();

  const Cm1Config& config() const noexcept { return cfg_; }
  double started_at() const noexcept { return t_start_; }
  double finished_at() const noexcept { return t_end_; }
  double execution_time() const noexcept { return t_end_ - t_start_; }
  int outputs_written(int rank) const { return outputs_written_[rank]; }

 private:
  sim::Task run_rank(int rank);
  std::vector<int> neighbours(int rank) const;

  sim::Simulator& sim_;
  std::vector<vm::VmInstance*> ranks_;
  Cm1Config cfg_;
  sim::Barrier barrier_;
  sim::WaitGroup done_;
  std::vector<int> outputs_written_;
  double t_start_ = 0;
  double t_end_ = 0;
};

}  // namespace hm::workloads
