#include "workloads/ior.h"

namespace hm::workloads {

sim::Task IorWorkload::run(vm::VmInstance& vm) {
  for (int it = 0; it < cfg_.iterations; ++it) {
    // Write phase: sequential 256 KB blocks over the 1 GB file.
    for (std::uint64_t off = 0; off < cfg_.file_bytes; off += cfg_.block_bytes) {
      co_await vm.file_write(cfg_.file_offset + off, cfg_.block_bytes);
    }
    // Read phase: sequential read-back of the same file.
    for (std::uint64_t off = 0; off < cfg_.file_bytes; off += cfg_.block_bytes) {
      co_await vm.file_read(cfg_.file_offset + off, cfg_.block_bytes);
    }
    ++iterations_done_;
  }
  finished_at_ = vm.cluster().sim().now();
}

}  // namespace hm::workloads
