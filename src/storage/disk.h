// Local disk model: a FIFO single-server queue with a fixed per-request
// access latency plus a bandwidth term. Matches the paper's testbed disks
// (SATA II, ~55 MB/s sequential). The queue is shared by everything on the
// node (guest write-back, migration push reads, pull serving), which is how
// storage migration steals I/O bandwidth from the workload.
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace hm::storage {

struct DiskConfig {
  double rate_Bps = 55.0e6;      // sequential transfer rate
  double access_latency_s = 0.5e-3;  // per-request positioning overhead
};

class Disk {
 public:
  Disk(sim::Simulator& sim, DiskConfig cfg = {})
      : sim_(sim), cfg_(cfg), gate_(sim, 1) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  sim::Task read(double bytes) { return io(bytes, /*is_write=*/false); }
  sim::Task write(double bytes) { return io(bytes, /*is_write=*/true); }

  const DiskConfig& config() const noexcept { return cfg_; }
  double bytes_read() const noexcept { return bytes_read_; }
  double bytes_written() const noexcept { return bytes_written_; }
  double busy_seconds() const noexcept { return busy_s_; }
  std::uint64_t requests_served() const noexcept { return requests_; }
  std::size_t queue_length() const noexcept { return gate_.queue_length(); }

 private:
  sim::Task io(double bytes, bool is_write);

  sim::Simulator& sim_;
  DiskConfig cfg_;
  sim::Semaphore gate_;
  double bytes_read_ = 0;
  double bytes_written_ = 0;
  double busy_s_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace hm::storage
