// Local disk model: a FIFO single-server queue with a fixed per-request
// access latency plus a bandwidth term. Matches the paper's testbed disks
// (SATA II, ~55 MB/s sequential). The queue is shared by everything on the
// node (guest write-back, migration push reads, pull serving), which is how
// storage migration steals I/O bandwidth from the workload.
//
// read()/write() are frameless awaitables: a request is an intrusive
// FifoStation node embedded in the awaiter (no coroutine frame, no heap
// allocation per I/O). The event sequence is identical to the previous
// semaphore-guarded coroutine — one service timer per request, plus one
// zero-delay handoff event (a fast-lane push since PR 4) when the request
// had to queue.
#pragma once

#include <coroutine>
#include <cstdint>

#include "sim/simulator.h"
#include "sim/sync.h"

namespace hm::storage {

struct DiskConfig {
  double rate_Bps = 55.0e6;      // sequential transfer rate
  double access_latency_s = 0.5e-3;  // per-request positioning overhead
};

class Disk {
 public:
  Disk(sim::Simulator& sim, DiskConfig cfg = {}) : sim_(sim), cfg_(cfg), station_(sim) {}
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  struct [[nodiscard]] IoAwaiter {
    Disk& d;
    double bytes;
    bool is_write;
    sim::FifoStation::Node node;

    bool await_ready() const noexcept { return bytes <= 0; }
    void await_suspend(std::coroutine_handle<> h) {
      node.service_s = d.service_time(bytes);
      node.cont = h;
      d.station_.submit(&node);
    }
    void await_resume() const noexcept {
      if (bytes > 0) d.account(bytes, is_write, node.service_s);
    }
  };

  IoAwaiter read(double bytes) noexcept { return IoAwaiter{*this, bytes, /*is_write=*/false, {}}; }
  IoAwaiter write(double bytes) noexcept { return IoAwaiter{*this, bytes, /*is_write=*/true, {}}; }

  /// Service time of one request (positioning + transfer); exposed so other
  /// frameless awaiters (ChunkStore's read path) can queue on the station
  /// directly and still account through this disk.
  double service_time(double bytes) const noexcept {
    return cfg_.access_latency_s + bytes / cfg_.rate_Bps;
  }
  sim::FifoStation& station() noexcept { return station_; }
  void account(double bytes, bool is_write, double service_s) noexcept {
    busy_s_ += service_s;
    ++requests_;
    if (is_write)
      bytes_written_ += bytes;
    else
      bytes_read_ += bytes;
  }

  const DiskConfig& config() const noexcept { return cfg_; }
  double bytes_read() const noexcept { return bytes_read_; }
  double bytes_written() const noexcept { return bytes_written_; }
  double busy_seconds() const noexcept { return busy_s_; }
  std::uint64_t requests_served() const noexcept { return requests_; }
  std::size_t queue_length() const noexcept { return station_.queue_length(); }

 private:
  sim::Simulator& sim_;
  DiskConfig cfg_;
  sim::FifoStation station_;
  double bytes_read_ = 0;
  double bytes_written_ = 0;
  double busy_s_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace hm::storage
