#include "storage/pvfs.h"

#include <cassert>

namespace hm::storage {

Pvfs::Pvfs(sim::Simulator& sim, net::FlowNetwork& net, PvfsConfig cfg)
    : sim_(sim), net_(net), cfg_(cfg), available_(sim) {}

void Pvfs::add_server(net::NodeId node, Disk* disk) {
  servers_.push_back(Server{node, disk});
}

std::vector<Pvfs::Extent> Pvfs::extents_of(std::uint64_t offset, std::uint64_t len) const {
  std::vector<Extent> out;
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + len;
  while (pos < end) {
    const std::uint64_t stripe_idx = pos / cfg_.stripe_bytes;
    const std::uint64_t stripe_end = (stripe_idx + 1) * cfg_.stripe_bytes;
    const std::uint64_t n = std::min(end, stripe_end) - pos;
    out.push_back(Extent{static_cast<std::size_t>(stripe_idx % servers_.size()), n});
    pos += n;
  }
  return out;
}

sim::Task Pvfs::do_extent(net::NodeId client, Extent e, bool is_write,
                          sim::WaitGroup& wg) {
  const Server& srv = servers_[e.server];
  for (;;) {
    bool ok;
    if (is_write) {
      ok = co_await net_.transfer(client, srv.node, static_cast<double>(e.bytes),
                                  net::TrafficClass::kPvfsData);
      if (ok && cfg_.server_disk_io && srv.disk != nullptr)
        co_await srv.disk->write(static_cast<double>(e.bytes));
    } else {
      if (cfg_.server_disk_io && srv.disk != nullptr)
        co_await srv.disk->read(static_cast<double>(e.bytes));
      ok = co_await net_.transfer(srv.node, client, static_cast<double>(e.bytes),
                                  net::TrafficClass::kPvfsData);
    }
    if (ok) break;
    co_await net_.wait_node_up(client);  // crashed endpoint: retry after reboot
    co_await net_.wait_node_up(srv.node);
  }
  wg.done();
}

sim::Task Pvfs::write(net::NodeId client, std::uint64_t offset, std::uint64_t len) {
  assert(!servers_.empty());
  ++ops_;
  bytes_written_ += len;
  co_await available_.wait_open();
  // Metadata round trip to the primary server + server-side processing.
  while (!co_await net_.request_response(client, servers_[0].node, cfg_.rpc_bytes,
                                         cfg_.rpc_bytes, net::TrafficClass::kControl)) {
    co_await net_.wait_node_up(client);
    co_await net_.wait_node_up(servers_[0].node);
    co_await available_.wait_open();
  }
  co_await sim_.delay(cfg_.server_op_latency_s);
  sim::WaitGroup wg(sim_);
  for (const Extent& e : extents_of(offset, len)) {
    wg.add();
    sim_.spawn(do_extent(client, e, /*is_write=*/true, wg));
  }
  co_await wg.wait();
}

sim::Task Pvfs::read(net::NodeId client, std::uint64_t offset, std::uint64_t len) {
  assert(!servers_.empty());
  ++ops_;
  bytes_read_ += len;
  co_await available_.wait_open();
  while (!co_await net_.request_response(client, servers_[0].node, cfg_.rpc_bytes,
                                         cfg_.rpc_bytes, net::TrafficClass::kControl)) {
    co_await net_.wait_node_up(client);
    co_await net_.wait_node_up(servers_[0].node);
    co_await available_.wait_open();
  }
  co_await sim_.delay(cfg_.server_op_latency_s);
  sim::WaitGroup wg(sim_);
  for (const Extent& e : extents_of(offset, len)) {
    wg.add();
    sim_.spawn(do_extent(client, e, /*is_write=*/false, wg));
  }
  co_await wg.wait();
}

/// RAII CPU-load registration spanning one PVFS client op; the node is
/// captured at op start so a mid-op migration releases the right node.
class PvfsBackend::LoadScope {
 public:
  explicit LoadScope(PvfsBackend& b) : b_(b), node_(b.client_) {
    if (b_.cpu_hook_) b_.cpu_hook_(node_, b_.cpu_load_);
  }
  ~LoadScope() {
    if (b_.cpu_hook_) b_.cpu_hook_(node_, -b_.cpu_load_);
  }

 private:
  PvfsBackend& b_;
  net::NodeId node_;
};

sim::Task PvfsBackend::backend_read_chunk(ChunkId c) {
  LoadScope load(*this);
  co_await pvfs_.read(client_, static_cast<std::uint64_t>(c) * img_.chunk_bytes,
                      img_.chunk_bytes);
}

sim::Task PvfsBackend::backend_write_chunk(ChunkId c) {
  LoadScope load(*this);
  const std::uint64_t meta = cow_.on_write(c);
  if (meta > 0) {
    // qcow2 cluster allocation: metadata update must be durable before data.
    co_await pvfs_.write(client_, 0, meta);
  }
  co_await pvfs_.write(client_, static_cast<std::uint64_t>(c) * img_.chunk_bytes,
                       img_.chunk_bytes);
}

}  // namespace hm::storage
