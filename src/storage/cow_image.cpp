#include "storage/cow_image.h"

// Header-only logic; this TU anchors the module in the library and keeps a
// single place for future out-of-line additions.
