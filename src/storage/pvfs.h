// Parallel file system model (PVFS stand-in) for the pvfs-shared baseline.
//
// Files are striped over server nodes; every operation pays a metadata RPC
// round trip plus striped data flows to/from the servers (PVFS has no
// client-side cache, so nothing is absorbed locally). The qcow2 overlay on
// top adds metadata writes on first allocation (see CowImage).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/flow_network.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/chunk_store.h"
#include "storage/cow_image.h"
#include "storage/disk.h"
#include "storage/page_cache.h"

namespace hm::storage {

struct PvfsConfig {
  std::uint32_t stripe_bytes = 64 * kKiB;
  double rpc_bytes = 1024;     // metadata request/response size
  bool server_disk_io = true;  // charge server-side disk time
  /// Per-operation server-side processing time (request handling, locking,
  /// POSIX consistency bookkeeping). PVFS has no client cache and qcow2 on
  /// top serializes cluster updates, so the effective per-client throughput
  /// is far below the raw stripe bandwidth — this is what the paper's
  /// pvfs-shared baseline measures (<5% of the local write ceiling).
  double server_op_latency_s = 4e-3;
};

class Pvfs {
 public:
  Pvfs(sim::Simulator& sim, net::FlowNetwork& net, PvfsConfig cfg = {});
  Pvfs(const Pvfs&) = delete;
  Pvfs& operator=(const Pvfs&) = delete;

  void add_server(net::NodeId node, Disk* disk = nullptr);
  std::size_t server_count() const noexcept { return servers_.size(); }

  sim::Task write(net::NodeId client, std::uint64_t offset, std::uint64_t len);
  sim::Task read(net::NodeId client, std::uint64_t offset, std::uint64_t len);

  std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  std::uint64_t bytes_read() const noexcept { return bytes_read_; }
  std::uint64_t ops() const noexcept { return ops_; }

  /// Fault injection: while unavailable new ops park on the gate until
  /// service returns; ops whose transfers fail (crashed endpoint) wait for
  /// the node to reboot and retry.
  void set_available(bool up) {
    up ? available_.open() : available_.close();
  }
  bool available() const noexcept { return available_.is_open(); }

 private:
  struct Server {
    net::NodeId node;
    Disk* disk;
  };
  struct Extent {
    std::size_t server;
    std::uint64_t bytes;
  };
  std::vector<Extent> extents_of(std::uint64_t offset, std::uint64_t len) const;
  // Extent passed by value: the coroutine outlives the caller's extent list.
  sim::Task do_extent(net::NodeId client, Extent e, bool is_write, sim::WaitGroup& wg);

  sim::Simulator& sim_;
  net::FlowNetwork& net_;
  PvfsConfig cfg_;
  std::vector<Server> servers_;
  sim::Gate available_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t ops_ = 0;
};

/// BlockBackend adapter: presents a qcow2-on-PVFS virtual disk to the guest
/// page cache. The client node follows the VM across migrations (that is
/// the whole point of the pvfs-shared baseline: source and destination see
/// the same file, so no storage transfer happens).
class PvfsBackend final : public BlockBackend {
 public:
  PvfsBackend(Pvfs& pvfs, ImageConfig img, net::NodeId client)
      : pvfs_(pvfs), img_(img), cow_(img), client_(client) {}

  void set_client_node(net::NodeId n) noexcept { client_ = n; }
  net::NodeId client_node() const noexcept { return client_; }
  const CowImage& cow() const noexcept { return cow_; }

  /// Host CPU cost of PVFS client I/O (kernel client + network stack): the
  /// hook receives (node, +load) when an op starts and (node, -load) when
  /// it completes. The cloud layer wires this to the compute node's CPU
  /// accounting — it is what makes pvfs-shared the worst performer on the
  /// paper's "impact on application performance" axis even without any
  /// storage migration.
  void set_cpu_load_hook(std::function<void(net::NodeId, double)> hook,
                         double load = 0.35) {
    cpu_hook_ = std::move(hook);
    cpu_load_ = load;
  }

  sim::Task backend_read_chunk(ChunkId c) override;
  sim::Task backend_write_chunk(ChunkId c) override;

 private:
  class LoadScope;

  Pvfs& pvfs_;
  ImageConfig img_;
  CowImage cow_;
  net::NodeId client_;
  std::function<void(net::NodeId, double)> cpu_hook_;
  double cpu_load_ = 0.35;
};

}  // namespace hm::storage
