#include "storage/page_cache.h"

#include <cassert>

namespace hm::storage {

PageCache::PageCache(sim::Simulator& sim, BlockBackend& backend, ImageConfig img,
                     PageCacheConfig cfg)
    : sim_(sim),
      backend_(backend),
      img_(img),
      cfg_(cfg),
      state_(img.num_chunks(), State::kAbsent),
      lru_(static_cast<std::size_t>(cfg.capacity_bytes / img.chunk_bytes),
           img.num_chunks()),
      dirty_(img.num_chunks()),
      dirty_stamp_(img.num_chunks(), 0),
      guest_bus_(sim, 1),
      wb_wakeup_(sim),
      wb_progress_(sim) {}

void PageCache::mark_dirty(ChunkId c) {
  dirty_stamp_[c] = ++dirty_epoch_;
  dirty_.set(c);
  state_[c] = State::kDirty;
  if (!wb_running_) {
    wb_running_ = true;
    sim_.spawn(writeback_loop());
  }
  wb_wakeup_.notify_all();
}

sim::Task PageCache::writeback_loop() {
  const std::uint32_t n = img_.num_chunks();
  for (;;) {
    if (run_gate_ != nullptr) co_await run_gate_->wait_open();
    if (!dirty_.any()) {
      co_await wb_wakeup_.wait();
      continue;
    }
    // Round-robin over the dirty bitmap: resume after the last written
    // chunk, wrap at the end. Clean regions are skipped 64 chunks per word.
    std::uint64_t next = dirty_.find_next(wb_cursor_);
    if (next == util::DirtyBitmap::npos) next = dirty_.find_next(0);
    const ChunkId c = static_cast<ChunkId>(next);
    wb_cursor_ = (c + 1 < n) ? c + 1 : 0;
    const std::uint64_t stamp = dirty_stamp_[c];
    ++writeback_inflight_;
    co_await backend_.backend_write_chunk(c);
    --writeback_inflight_;
    ++writeback_ops_;
    // Only clean the chunk if it was not re-dirtied while the write-back
    // was in flight; otherwise the bit stays set and the cursor revisits it
    // on its next lap (which is what keeps write-back fair).
    if (dirty_stamp_[c] == stamp) {
      dirty_.reset(c);
      if (state_[c] == State::kDirty) state_[c] = State::kClean;
    }
    wb_progress_.notify_all();
  }
}

bool PageCache::try_reserve_capacity() {
  while (lru_.size() >= lru_.capacity() && lru_.capacity() > 0) {
    bool evicted = false;
    // Walk the intrusive LRU list from the cold end for a clean victim
    // (dirty entries must survive until write-back cleans them).
    for (std::uint32_t c = lru_.least_recent(); c != LruChunkSet::kNil;
         c = lru_.more_recent(static_cast<ChunkId>(c))) {
      if (state_[c] == State::kClean) {
        lru_.erase(static_cast<ChunkId>(c));
        state_[c] = State::kAbsent;
        if (release_hook_) release_hook_(static_cast<ChunkId>(c));
        evicted = true;
        break;
      }
    }
    if (!evicted) return false;
  }
  return true;
}

// The write state machine, stepped from await_suspend and from wb_progress /
// guest-bus wakeups. Each case mirrors one co_await of the old coroutine:
// falling out of a case is "the await completed synchronously", returning
// after parking `node` is "the coroutine suspended".
void PageCache::WriteAwaiter::step() {
  switch (st) {
    case St::kThrottle:
      // Dirty throttling: while over the dirty limit, writers advance only
      // as fast as write-back drains.
      if (pc.dirty_bytes() >= pc.cfg_.dirty_limit_bytes) {
        ++pc.throttle_events_;
        pc.wb_progress_.add_waiter(&node);
        return;
      }
      st = St::kReserve;
      [[fallthrough]];
    case St::kReserve:
      if (!pc.try_reserve_capacity()) {
        pc.wb_progress_.add_waiter(&node);
        return;
      }
      st = St::kCopy;
      if (!pc.guest_bus_.try_acquire()) {
        // Woken from the semaphore queue = the permit was handed to us.
        pc.guest_bus_.add_waiter(&node);
        return;
      }
      [[fallthrough]];
    case St::kCopy:
      pc.sim_.schedule(pc.img_.chunk_bytes / pc.cfg_.write_Bps,
                       [self = this] { self->cont.resume(); });
      return;
  }
}

void PageCache::ReadAwaiter::start_copy() {
  pc.sim_.schedule(pc.img_.chunk_bytes / pc.cfg_.read_Bps,
                   [self = this] { self->cont.resume(); });
}

sim::Task PageCache::read_miss(ChunkId c) {
  ++misses_;
  co_await backend_.backend_read_chunk(c);
  while (!try_reserve_capacity()) co_await wb_progress_.wait();
  if (state_[c] == State::kAbsent) {
    state_[c] = State::kClean;
    lru_.insert(c);
    if (touch_hook_) touch_hook_(c);  // fill writes into guest RAM
  }
}

sim::Task PageCache::fsync() {
  while (dirty_.any() || writeback_inflight_ > 0) {
    co_await wb_progress_.wait();
  }
  co_await backend_.backend_sync();
}

void PageCache::invalidate(ChunkId c) {
  if (c < state_.size() && state_[c] == State::kClean) {
    state_[c] = State::kAbsent;
    lru_.erase(c);
    if (release_hook_) release_hook_(c);
  }
}

}  // namespace hm::storage
