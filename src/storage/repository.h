// Striped distributed repository for base disk images (BlobSeer stand-in).
//
// The base image is split into chunks distributed round-robin over the
// participating storage nodes (the paper co-locates them with the compute
// nodes). Reads of base-image content therefore spread over the whole
// cluster and do not bottleneck on any single server, which is the property
// the paper relies on to fetch untouched image parts on demand instead of
// migrating them.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow_network.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/chunk_store.h"
#include "storage/disk.h"

namespace hm::storage {

struct RepositoryConfig {
  double request_bytes = 512;  // pull request size
  std::uint32_t replication = 1;  // metadata only; reads hit the primary
};

class Repository {
 public:
  Repository(sim::Simulator& sim, net::FlowNetwork& net, ImageConfig img,
             RepositoryConfig cfg = {});
  Repository(const Repository&) = delete;
  Repository& operator=(const Repository&) = delete;

  /// Register a storage node holding a stripe of every image.
  void add_storage_node(net::NodeId node, Disk* disk = nullptr);
  std::size_t storage_node_count() const noexcept { return servers_.size(); }

  /// Which storage node owns chunk `c` (round-robin striping).
  net::NodeId owner_of(ChunkId c) const noexcept;

  /// Fetch one base-image chunk to `reader` (request + striped response).
  sim::Task fetch_chunk(net::NodeId reader, ChunkId c);

  std::uint64_t chunks_served() const noexcept { return chunks_served_; }
  const ImageConfig& image() const noexcept { return img_; }

  /// Fault injection: while unavailable new fetches park on the gate until
  /// service returns (crashed endpoints are handled separately — a fetch
  /// whose transfer fails waits for the node to reboot and retries).
  void set_available(bool up) {
    up ? available_.open() : available_.close();
  }
  bool available() const noexcept { return available_.is_open(); }

 private:
  struct Server {
    net::NodeId node;
    Disk* disk;
  };

  sim::Simulator& sim_;
  net::FlowNetwork& net_;
  ImageConfig img_;
  RepositoryConfig cfg_;
  std::vector<Server> servers_;
  sim::Gate available_;
  std::uint64_t chunks_served_ = 0;
};

}  // namespace hm::storage
