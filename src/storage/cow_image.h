// Copy-on-write image overlay bookkeeping (qcow2-like).
//
// The precopy and pvfs-shared baselines store local modifications in a
// qcow2 snapshot of the base image. This class tracks cluster allocation
// and the metadata write amplification a qcow2-style format pays on first
// write to a cluster (L2 table update + refcount block).
#pragma once

#include <cstdint>
#include <vector>

#include "storage/chunk_store.h"

namespace hm::storage {

struct CowImageConfig {
  std::uint64_t metadata_bytes_per_alloc = 8 * kKiB;  // L2 + refcount updates
};

class CowImage {
 public:
  CowImage(ImageConfig img, CowImageConfig cfg = {})
      : img_(img), cfg_(cfg), allocated_(img.num_chunks(), 0) {}

  bool allocated(ChunkId c) const noexcept { return allocated_[c] != 0; }
  std::uint32_t allocated_count() const noexcept { return allocated_count_; }

  /// Record a write to chunk `c`. Returns the number of extra metadata bytes
  /// the format writes for this operation (non-zero on first allocation).
  std::uint64_t on_write(ChunkId c) {
    if (allocated_[c]) return 0;
    allocated_[c] = 1;
    ++allocated_count_;
    metadata_bytes_ += cfg_.metadata_bytes_per_alloc;
    return cfg_.metadata_bytes_per_alloc;
  }

  std::uint64_t metadata_bytes_total() const noexcept { return metadata_bytes_; }
  const ImageConfig& image() const noexcept { return img_; }

 private:
  ImageConfig img_;
  CowImageConfig cfg_;
  std::vector<std::uint8_t> allocated_;
  std::uint32_t allocated_count_ = 0;
  std::uint64_t metadata_bytes_ = 0;
};

}  // namespace hm::storage
