// Per-node on-disk replica of a VM disk image at chunk granularity.
//
// Mirrors the paper's FUSE-level state: which chunks exist locally
// (`present`), which differ from the base image (`modified` — the paper's
// ModifiedSet), plus a host-RAM write-back cache in front of the physical
// disk. The testbed nodes had 16 GB of host RAM and ~55 MB/s disks, so chunk
// writes issued by the migration manager land in host cache at memory speed
// and are flushed to disk in the background; reads of recently written
// chunks (the common case when pushing fresh data) are served from host RAM.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/disk.h"

namespace hm::storage {

using ChunkId = std::uint32_t;

constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Geometry of a VM disk image, shared by every component that handles it.
struct ImageConfig {
  std::uint64_t image_bytes = 4 * kGiB;
  std::uint32_t chunk_bytes = 256 * kKiB;  // paper's BlobSeer stripe size

  std::uint32_t num_chunks() const noexcept {
    return static_cast<std::uint32_t>((image_bytes + chunk_bytes - 1) / chunk_bytes);
  }
  ChunkId chunk_of(std::uint64_t offset) const noexcept {
    return static_cast<ChunkId>(offset / chunk_bytes);
  }
};

/// LRU set of chunk ids (host page cache residency).
class LruChunkSet {
 public:
  explicit LruChunkSet(std::size_t capacity) : capacity_(capacity) {}

  bool contains(ChunkId c) const noexcept { return index_.count(c) != 0; }
  std::size_t size() const noexcept { return index_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Insert or refresh c; returns true if an old entry was evicted.
  bool insert(ChunkId c) {
    auto it = index_.find(c);
    if (it != index_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.push_front(c);
    index_[c] = order_.begin();
    if (capacity_ > 0 && index_.size() > capacity_) {
      index_.erase(order_.back());
      order_.pop_back();
      return true;
    }
    return false;
  }

  void erase(ChunkId c) {
    auto it = index_.find(c);
    if (it == index_.end()) return;
    order_.erase(it->second);
    index_.erase(it);
  }

 private:
  std::size_t capacity_;
  std::list<ChunkId> order_;
  std::unordered_map<ChunkId, std::list<ChunkId>::iterator> index_;
};

struct ChunkStoreConfig {
  std::uint64_t host_cache_bytes = 6 * kGiB;  // host RAM available for the image file
  /// Sustained virtual-disk throughput through the FUSE layer (host cache
  /// absorbs bursts, but long-run drainage is bounded by the host's
  /// write-back to the 55 MB/s disk plus FUSE/memcpy overhead). Two
  /// consequences calibrated against the paper: (1) the guest's dirty
  /// throttling caps sustained in-VM writes near this rate, keeping the
  /// memory dirty rate below the NIC so pre-copy memory migration can
  /// converge under I/O load; (2) migration push reads share this path with
  /// guest write-back, which is the mechanism behind the in-VM write
  /// throughput degradation during migration.
  double host_bus_Bps = 100.0e6;
  bool background_flush = true;   // flush host-dirty chunks to disk in background
};

class ChunkStore {
 public:
  ChunkStore(sim::Simulator& sim, Disk& disk, ImageConfig img, ChunkStoreConfig cfg = {});
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  const ImageConfig& image() const noexcept { return img_; }
  std::uint32_t num_chunks() const noexcept { return num_chunks_; }

  bool present(ChunkId c) const noexcept { return present_[c] != 0; }
  bool modified(ChunkId c) const noexcept { return modified_[c] != 0; }
  std::uint32_t present_count() const noexcept { return present_count_; }
  std::uint32_t modified_count() const noexcept { return modified_count_; }
  std::vector<ChunkId> modified_set() const;

  /// Write a full chunk to the local image (host cache write; background
  /// flush drains it to disk). Marks the chunk modified w.r.t. the base.
  sim::Task write_chunk(ChunkId c);
  /// Read a chunk: host-cache hit costs a bus transfer, miss a disk read.
  /// Caller must ensure the chunk is present.
  sim::Task read_chunk(ChunkId c);
  /// Install base-image content fetched from the repository (present but
  /// NOT modified — it matches the base and never needs migrating).
  sim::Task install_base_chunk(ChunkId c);
  /// Wait until every host-dirty chunk reached the physical disk.
  sim::Task flush();

  bool host_cached(ChunkId c) const noexcept { return cache_.contains(c); }
  std::size_t host_dirty_chunks() const noexcept { return dirty_members_.size(); }
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t cache_misses() const noexcept { return cache_misses_; }
  Disk& disk() noexcept { return disk_; }

 private:
  sim::Task bus_io(double bytes);
  sim::Task flusher_loop();
  void mark_host_dirty(ChunkId c);

  sim::Simulator& sim_;
  Disk& disk_;
  ImageConfig img_;
  ChunkStoreConfig cfg_;
  std::uint32_t num_chunks_;
  std::vector<std::uint8_t> present_;
  std::vector<std::uint8_t> modified_;
  std::uint32_t present_count_ = 0;
  std::uint32_t modified_count_ = 0;
  LruChunkSet cache_;
  sim::Semaphore bus_;
  // host-dirty bookkeeping (chunks cached but not yet flushed to disk)
  std::deque<ChunkId> dirty_fifo_;
  std::unordered_map<ChunkId, std::uint64_t> dirty_members_;  // chunk -> epoch
  std::uint64_t dirty_epoch_ = 0;
  sim::Notification flush_wakeup_;
  sim::Notification flush_progress_;
  bool flusher_running_ = false;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace hm::storage
