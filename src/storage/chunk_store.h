// Per-node on-disk replica of a VM disk image at chunk granularity.
//
// Mirrors the paper's FUSE-level state: which chunks exist locally
// (`present`), which differ from the base image (`modified` — the paper's
// ModifiedSet), plus a host-RAM write-back cache in front of the physical
// disk. The testbed nodes had 16 GB of host RAM and ~55 MB/s disks, so chunk
// writes issued by the migration manager land in host cache at memory speed
// and are flushed to disk in the background; reads of recently written
// chunks (the common case when pushing fresh data) are served from host RAM.
//
// Host-dirty bookkeeping is an epoch-stamped slot bitmap: mark_host_dirty
// sets the chunk's bit and stamps it, the background flusher scans the
// bitmap with a round-robin cursor (word-skip over clean regions), and a
// re-dirty during the disk write is detected by a stamp mismatch — no
// deque, no hash probes on the write path.
//
// read_chunk/write_chunk/install_base_chunk are frameless awaitables: the
// fixed-latency bus or disk leg is an intrusive FifoStation node embedded
// in the awaiter, and the state updates that used to follow the co_await in
// a coroutine body run in await_resume — same synchronous order, same event
// sequence, but no coroutine frame and no heap allocation per chunk op.
// Since PR 4 a queued request's handoff rides the simulator's fast lane
// (seq-stamped ring push) instead of a scheduled timer slot.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/disk.h"
#include "util/bitmap.h"

namespace hm::storage {

using ChunkId = std::uint32_t;

constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Geometry of a VM disk image, shared by every component that handles it.
struct ImageConfig {
  std::uint64_t image_bytes = 4 * kGiB;
  std::uint32_t chunk_bytes = 256 * kKiB;  // paper's BlobSeer stripe size

  std::uint32_t num_chunks() const noexcept {
    return static_cast<std::uint32_t>((image_bytes + chunk_bytes - 1) / chunk_bytes);
  }
  ChunkId chunk_of(std::uint64_t offset) const noexcept {
    return static_cast<ChunkId>(offset / chunk_bytes);
  }
};

/// LRU set of chunk ids (host page cache residency).
///
/// Intrusive doubly-linked list threaded through a flat slot vector indexed
/// by chunk id: membership is one flag load, insert/refresh/erase are
/// pointer splices with zero allocation (the old std::list +
/// unordered_map<ChunkId, iterator> paid a hash probe plus a node
/// allocation per operation). Slots grow lazily to the largest id seen, so
/// the default constructor stays cheap for sparsely-used sets.
class LruChunkSet {
 public:
  explicit LruChunkSet(std::size_t capacity, std::size_t universe = 0)
      : capacity_(capacity) {
    slots_.reserve(universe);
  }

  bool contains(ChunkId c) const noexcept {
    return c < slots_.size() && slots_[c].in;
  }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Insert or refresh c; returns true if an old entry was evicted.
  bool insert(ChunkId c) {
    if (c >= slots_.size()) slots_.resize(c + 1);
    Slot& s = slots_[c];
    if (s.in) {
      if (head_ != c) {
        unlink(c);
        link_front(c);
      }
      return false;
    }
    s.in = true;
    ++size_;
    link_front(c);
    if (capacity_ > 0 && size_ > capacity_) {
      erase(static_cast<ChunkId>(tail_));
      return true;
    }
    return false;
  }

  void erase(ChunkId c) {
    if (!contains(c)) return;
    unlink(c);
    slots_[c].in = false;
    --size_;
  }

  /// Least-recently-used member (kNil when empty); exposed so eviction
  /// policies can scan from the cold end instead of by id.
  static constexpr std::uint32_t kNil = 0xffffffffu;
  std::uint32_t least_recent() const noexcept { return tail_; }
  /// Next-more-recent member after c (walks cold -> hot).
  std::uint32_t more_recent(ChunkId c) const noexcept { return slots_[c].prev; }

 private:
  struct Slot {
    std::uint32_t prev = kNil;  // toward MRU
    std::uint32_t next = kNil;  // toward LRU
    bool in = false;
  };

  void link_front(ChunkId c) noexcept {
    Slot& s = slots_[c];
    s.prev = kNil;
    s.next = head_;
    if (head_ != kNil) slots_[head_].prev = c;
    head_ = c;
    if (tail_ == kNil) tail_ = c;
  }
  void unlink(ChunkId c) noexcept {
    Slot& s = slots_[c];
    if (s.prev != kNil)
      slots_[s.prev].next = s.next;
    else
      head_ = s.next;
    if (s.next != kNil)
      slots_[s.next].prev = s.prev;
    else
      tail_ = s.prev;
    s.prev = s.next = kNil;
  }

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint32_t head_ = kNil;  // most recently used
  std::uint32_t tail_ = kNil;  // least recently used
  std::vector<Slot> slots_;
};

struct ChunkStoreConfig {
  std::uint64_t host_cache_bytes = 6 * kGiB;  // host RAM available for the image file
  /// Sustained virtual-disk throughput through the FUSE layer (host cache
  /// absorbs bursts, but long-run drainage is bounded by the host's
  /// write-back to the 55 MB/s disk plus FUSE/memcpy overhead). Two
  /// consequences calibrated against the paper: (1) the guest's dirty
  /// throttling caps sustained in-VM writes near this rate, keeping the
  /// memory dirty rate below the NIC so pre-copy memory migration can
  /// converge under I/O load; (2) migration push reads share this path with
  /// guest write-back, which is the mechanism behind the in-VM write
  /// throughput degradation during migration.
  double host_bus_Bps = 100.0e6;
  bool background_flush = true;   // flush host-dirty chunks to disk in background
};

class ChunkStore {
 public:
  ChunkStore(sim::Simulator& sim, Disk& disk, ImageConfig img, ChunkStoreConfig cfg = {});
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  const ImageConfig& image() const noexcept { return img_; }
  std::uint32_t num_chunks() const noexcept { return num_chunks_; }

  bool present(ChunkId c) const noexcept { return present_.test(c); }
  bool modified(ChunkId c) const noexcept { return modified_.test(c); }
  std::uint32_t present_count() const noexcept {
    return static_cast<std::uint32_t>(present_.count());
  }
  std::uint32_t modified_count() const noexcept {
    return static_cast<std::uint32_t>(modified_.count());
  }
  std::vector<ChunkId> modified_set() const;
  /// Word-scan the ModifiedSet without materializing a vector (migrators'
  /// round seeding).
  template <class F>
  void for_each_modified(F&& fn) const {
    modified_.for_each_set([&](std::uint64_t c) { fn(static_cast<ChunkId>(c)); });
  }

  /// Frameless write awaitable: metadata (present/modified) commits at
  /// issue time — the FUSE layer updates its chunk accounting in the write
  /// request path (Algorithm 2), before the data movement pays the host-bus
  /// service. Cache/host-dirty state reflects data arrival and updates in
  /// await_resume. Committing the bits at issue closes a lost-update race:
  /// a migration that snapshots the ModifiedSet while a guest write is
  /// still on the bus must count that write, or it silently never
  /// transfers the chunk.
  struct [[nodiscard]] WriteAwaiter {
    ChunkStore& st;
    ChunkId c;
    bool mark_modified;  // false for base-image installs
    sim::FifoStation::Node node;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      st.present_.set(c);
      if (mark_modified) st.modified_.set(c);
      node.service_s = st.img_.chunk_bytes / st.cfg_.host_bus_Bps;
      node.cont = h;
      st.bus_.submit(&node);
    }
    void await_resume() const {
      st.cache_.insert(c);
      st.mark_host_dirty(c);
    }
  };

  /// Frameless read awaitable: a host-cache hit costs a bus service, a miss
  /// queues on the disk (and inserts into the cache afterwards).
  struct [[nodiscard]] ReadAwaiter {
    ChunkStore& st;
    ChunkId c;
    bool hit = false;
    sim::FifoStation::Node node;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      node.cont = h;
      if (st.cache_.contains(c)) {
        hit = true;
        ++st.cache_hits_;
        st.cache_.insert(c);  // refresh LRU position
        node.service_s = st.img_.chunk_bytes / st.cfg_.host_bus_Bps;
        st.bus_.submit(&node);
        return;
      }
      ++st.cache_misses_;
      node.service_s = st.disk_.service_time(st.img_.chunk_bytes);
      st.disk_.station().submit(&node);
    }
    void await_resume() const {
      if (hit) return;
      st.disk_.account(st.img_.chunk_bytes, /*is_write=*/false, node.service_s);
      st.cache_.insert(c);
    }
  };

  /// Write a full chunk to the local image (host cache write; background
  /// flush drains it to disk). Marks the chunk modified w.r.t. the base.
  WriteAwaiter write_chunk(ChunkId c) noexcept {
    assert(c < num_chunks_);
    return WriteAwaiter{*this, c, /*mark_modified=*/true, {}};
  }
  /// Read a chunk: host-cache hit costs a bus transfer, miss a disk read.
  /// Caller must ensure the chunk is present.
  ReadAwaiter read_chunk(ChunkId c) noexcept {
    assert(c < num_chunks_ && present_.test(c));
    return ReadAwaiter{*this, c, /*hit=*/false, {}};
  }
  /// Install base-image content fetched from the repository (present but
  /// NOT modified — it matches the base and never needs migrating).
  WriteAwaiter install_base_chunk(ChunkId c) noexcept {
    assert(c < num_chunks_);
    return WriteAwaiter{*this, c, /*mark_modified=*/false, {}};
  }
  /// Wait until every host-dirty chunk reached the physical disk.
  sim::Task flush();

  bool host_cached(ChunkId c) const noexcept { return cache_.contains(c); }
  std::size_t host_dirty_chunks() const noexcept {
    return static_cast<std::size_t>(host_dirty_.count());
  }
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t cache_misses() const noexcept { return cache_misses_; }
  Disk& disk() noexcept { return disk_; }

 private:
  sim::Task flusher_loop();
  void mark_host_dirty(ChunkId c);

  sim::Simulator& sim_;
  Disk& disk_;
  ImageConfig img_;
  ChunkStoreConfig cfg_;
  std::uint32_t num_chunks_;
  util::DirtyBitmap present_;
  util::DirtyBitmap modified_;
  LruChunkSet cache_;
  sim::FifoStation bus_;  // host-bus arbitration (single server, FIFO)
  // Host-dirty bookkeeping: bit set while a chunk is cached but not yet on
  // disk; the stamp detects re-dirtying during the in-flight disk write.
  util::DirtyBitmap host_dirty_;
  std::vector<std::uint64_t> dirty_stamp_;
  std::uint64_t dirty_epoch_ = 0;
  std::uint32_t flush_cursor_ = 0;
  sim::Notification flush_wakeup_;
  sim::Notification flush_progress_;
  bool flusher_running_ = false;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace hm::storage
