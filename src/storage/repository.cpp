#include "storage/repository.h"

#include <cassert>

namespace hm::storage {

Repository::Repository(sim::Simulator& sim, net::FlowNetwork& net, ImageConfig img,
                       RepositoryConfig cfg)
    : sim_(sim), net_(net), img_(img), cfg_(cfg), available_(sim) {}

void Repository::add_storage_node(net::NodeId node, Disk* disk) {
  servers_.push_back(Server{node, disk});
}

net::NodeId Repository::owner_of(ChunkId c) const noexcept {
  assert(!servers_.empty());
  return servers_[c % servers_.size()].node;
}

sim::Task Repository::fetch_chunk(net::NodeId reader, ChunkId c) {
  assert(!servers_.empty());
  const Server& srv = servers_[c % servers_.size()];
  for (;;) {
    co_await available_.wait_open();
    if (!co_await net_.transfer(reader, srv.node, cfg_.request_bytes,
                                net::TrafficClass::kControl)) {
      co_await net_.wait_node_up(reader);
      co_await net_.wait_node_up(srv.node);
      continue;  // an endpoint crashed mid-request: retry after reboot
    }
    if (srv.disk != nullptr) co_await srv.disk->read(img_.chunk_bytes);
    if (co_await net_.transfer(srv.node, reader, img_.chunk_bytes,
                               net::TrafficClass::kRepoRead))
      break;
    co_await net_.wait_node_up(reader);
    co_await net_.wait_node_up(srv.node);
  }
  ++chunks_served_;
}

}  // namespace hm::storage
