#include "storage/disk.h"

namespace hm::storage {

sim::Task Disk::io(double bytes, bool is_write) {
  if (bytes <= 0) co_return;
  co_await gate_.acquire();
  sim::SemGuard guard(gate_);
  const double service = cfg_.access_latency_s + bytes / cfg_.rate_Bps;
  co_await sim_.delay(service);
  busy_s_ += service;
  ++requests_;
  if (is_write)
    bytes_written_ += bytes;
  else
    bytes_read_ += bytes;
}

}  // namespace hm::storage
