#include "storage/chunk_store.h"

#include <cassert>

namespace hm::storage {

ChunkStore::ChunkStore(sim::Simulator& sim, Disk& disk, ImageConfig img, ChunkStoreConfig cfg)
    : sim_(sim),
      disk_(disk),
      img_(img),
      cfg_(cfg),
      num_chunks_(img.num_chunks()),
      present_(num_chunks_),
      modified_(num_chunks_),
      cache_(static_cast<std::size_t>(cfg.host_cache_bytes / img.chunk_bytes), num_chunks_),
      bus_(sim),
      host_dirty_(num_chunks_),
      dirty_stamp_(num_chunks_, 0),
      flush_wakeup_(sim),
      flush_progress_(sim) {}

std::vector<ChunkId> ChunkStore::modified_set() const {
  std::vector<ChunkId> out;
  out.reserve(modified_.count());
  for_each_modified([&](ChunkId c) { out.push_back(c); });
  return out;
}

void ChunkStore::mark_host_dirty(ChunkId c) {
  dirty_stamp_[c] = ++dirty_epoch_;
  host_dirty_.set(c);
  if (cfg_.background_flush) {
    if (!flusher_running_) {
      flusher_running_ = true;
      sim_.spawn(flusher_loop());
    }
    flush_wakeup_.notify_all();
  }
}

sim::Task ChunkStore::flusher_loop() {
  for (;;) {
    if (!host_dirty_.any()) {
      co_await flush_wakeup_.wait();
      continue;
    }
    // Round-robin over the dirty bitmap: resume after the last flushed
    // chunk, wrap at the end. Clean regions are skipped 64 chunks per word.
    std::uint64_t next = host_dirty_.find_next(flush_cursor_);
    if (next == util::DirtyBitmap::npos) next = host_dirty_.find_next(0);
    const ChunkId c = static_cast<ChunkId>(next);
    flush_cursor_ = (c + 1 < num_chunks_) ? c + 1 : 0;
    const std::uint64_t stamp = dirty_stamp_[c];
    co_await disk_.write(img_.chunk_bytes);
    // Only clean the bit if the chunk was not re-dirtied while the write
    // was in flight; otherwise leave it set and the cursor revisits it.
    if (dirty_stamp_[c] == stamp) host_dirty_.reset(c);
    flush_progress_.notify_all();
  }
}

sim::Task ChunkStore::flush() {
  while (host_dirty_.any()) co_await flush_progress_.wait();
}

}  // namespace hm::storage
