#include "storage/chunk_store.h"

#include <cassert>

namespace hm::storage {

ChunkStore::ChunkStore(sim::Simulator& sim, Disk& disk, ImageConfig img, ChunkStoreConfig cfg)
    : sim_(sim),
      disk_(disk),
      img_(img),
      cfg_(cfg),
      num_chunks_(img.num_chunks()),
      present_(num_chunks_, 0),
      modified_(num_chunks_, 0),
      cache_(static_cast<std::size_t>(cfg.host_cache_bytes / img.chunk_bytes)),
      bus_(sim, 1),
      flush_wakeup_(sim),
      flush_progress_(sim) {}

std::vector<ChunkId> ChunkStore::modified_set() const {
  std::vector<ChunkId> out;
  out.reserve(modified_count_);
  for (ChunkId c = 0; c < num_chunks_; ++c)
    if (modified_[c]) out.push_back(c);
  return out;
}

sim::Task ChunkStore::bus_io(double bytes) {
  co_await bus_.acquire();
  sim::SemGuard guard(bus_);
  co_await sim_.delay(bytes / cfg_.host_bus_Bps);
}

void ChunkStore::mark_host_dirty(ChunkId c) {
  ++dirty_epoch_;
  auto [it, inserted] = dirty_members_.try_emplace(c, dirty_epoch_);
  it->second = dirty_epoch_;
  if (inserted) dirty_fifo_.push_back(c);
  if (cfg_.background_flush) {
    if (!flusher_running_) {
      flusher_running_ = true;
      sim_.spawn(flusher_loop());
    }
    flush_wakeup_.notify_all();
  }
}

sim::Task ChunkStore::flusher_loop() {
  for (;;) {
    if (dirty_fifo_.empty()) {
      co_await flush_wakeup_.wait();
      continue;
    }
    const ChunkId c = dirty_fifo_.front();
    dirty_fifo_.pop_front();
    auto it = dirty_members_.find(c);
    if (it == dirty_members_.end()) continue;  // already flushed/cancelled
    const std::uint64_t epoch = it->second;
    co_await disk_.write(img_.chunk_bytes);
    it = dirty_members_.find(c);
    if (it != dirty_members_.end()) {
      if (it->second == epoch) {
        dirty_members_.erase(it);
      } else {
        dirty_fifo_.push_back(c);  // re-dirtied while flushing; write again later
      }
    }
    flush_progress_.notify_all();
  }
}

sim::Task ChunkStore::write_chunk(ChunkId c) {
  assert(c < num_chunks_);
  co_await bus_io(img_.chunk_bytes);
  if (!present_[c]) {
    present_[c] = 1;
    ++present_count_;
  }
  if (!modified_[c]) {
    modified_[c] = 1;
    ++modified_count_;
  }
  cache_.insert(c);
  mark_host_dirty(c);
}

sim::Task ChunkStore::read_chunk(ChunkId c) {
  assert(c < num_chunks_ && present_[c]);
  if (cache_.contains(c)) {
    ++cache_hits_;
    cache_.insert(c);  // refresh LRU position
    co_await bus_io(img_.chunk_bytes);
    co_return;
  }
  ++cache_misses_;
  co_await disk_.read(img_.chunk_bytes);
  cache_.insert(c);
}

sim::Task ChunkStore::install_base_chunk(ChunkId c) {
  assert(c < num_chunks_);
  co_await bus_io(img_.chunk_bytes);
  if (!present_[c]) {
    present_[c] = 1;
    ++present_count_;
  }
  cache_.insert(c);
  mark_host_dirty(c);
}

sim::Task ChunkStore::flush() {
  while (!dirty_members_.empty()) co_await flush_progress_.wait();
}

}  // namespace hm::storage
