// Guest page cache model.
//
// Sits between the workload's file I/O and the virtual disk (the migration
// manager). This layer is what makes the paper's observed IOR ceilings
// possible on a 55 MB/s disk: writes land in guest RAM at memcpy speed
// (observed 266 MB/s), reads of resident data run at ~1 GB/s, and a
// background write-back task drains dirty chunks to the virtual disk. When
// the dirty set exceeds the guest's dirty limit, writers are throttled to
// write-back speed — which is how slow storage backends (mirrored writes,
// PVFS) degrade in-VM write throughput.
//
// Crucially, cache-resident file data lives in *guest memory*, so filling or
// dirtying the cache dirties guest pages that the hypervisor's memory
// pre-copy has to (re)transmit. The on_cache_touch hook wires that coupling.
//
// write_chunk()/read_chunk() are FRAMELESS awaitables (the PR 3 pattern,
// applied here because the guest I/O steady state is chunk-at-a-time): the
// awaiter embeds one WaitNode that parks a state-machine step in the same
// throttle/eviction/bus waiter lists a coroutine would use, and the state
// updates that used to follow each co_await run in await_resume — same
// synchronous order, same event sequence, no coroutine frame per chunk op.
// The read MISS path (backend fetch) still runs as one pooled coroutine,
// started by symmetric transfer from the awaiter: misses leave the steady
// state by definition, and the backend interface is Task-shaped.
//
// Dirty bookkeeping is the same epoch-stamped bitmap + round-robin cursor
// pattern as ChunkStore's host-dirty set: mark_dirty stamps the chunk and
// sets its bit, the write-back task scans the bitmap from a cursor
// (word-skipping clean regions), and a re-dirty during an in-flight
// write-back is a stamp mismatch that leaves the bit set for the cursor's
// next lap — no deque, no hash probes on the write path. Fairness holds
// because the cursor always advances past a just-written chunk before
// considering it again, so a continuously re-dirtied chunk cannot starve
// the rest of the dirty set.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/chunk_store.h"
#include "util/bitmap.h"

namespace hm::storage {

/// Chunk-granular virtual disk interface implemented by the migration
/// manager (local images) and by the PVFS backend (pvfs-shared baseline).
class BlockBackend {
 public:
  virtual ~BlockBackend() = default;
  virtual sim::Task backend_read_chunk(ChunkId c) = 0;
  virtual sim::Task backend_write_chunk(ChunkId c) = 0;
  /// fsync-style barrier; default waits for nothing extra.
  virtual sim::Task backend_sync() { co_return; }
};

struct PageCacheConfig {
  std::uint64_t capacity_bytes = 3 * kGiB;     // guest RAM available for page cache
  std::uint64_t dirty_limit_bytes = 800 * kMiB;  // throttle threshold (~20% of 4 GB)
  double write_Bps = 266.0e6;  // guest-side buffered write bandwidth
  double read_Bps = 1.0e9;     // guest-side cached read bandwidth
};

class PageCache {
 public:
  PageCache(sim::Simulator& sim, BlockBackend& backend, ImageConfig img,
            PageCacheConfig cfg = {});
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Hook invoked whenever file data enters or changes in the cache; the VM
  /// uses it to dirty the corresponding guest memory pages.
  void set_touch_hook(std::function<void(ChunkId)> hook) { touch_hook_ = std::move(hook); }

  /// Gate the write-back task on the VM's run state: the guest kernel (and
  /// thus its write-back) is frozen while the hypervisor pauses the VM.
  void set_run_gate(sim::Gate* gate) noexcept { run_gate_ = gate; }

  /// Hook invoked when a chunk leaves the cache (eviction / invalidate);
  /// the VM uses it to release the backing guest memory pages.
  void set_release_hook(std::function<void(ChunkId)> hook) {
    release_hook_ = std::move(hook);
  }

 private:
  enum class State : std::uint8_t { kAbsent, kClean, kDirty };

 public:
  /// Frameless buffered write of one full chunk. A hand-rolled state
  /// machine over the same wait points the old coroutine suspended at —
  /// dirty throttle, clean-eviction capacity, guest-bus FIFO, copy delay —
  /// with the post-copy state updates (LRU insert, dirty marking, touch
  /// hook) in await_resume. Non-copyable in effect: the embedded WaitNode's
  /// address is registered with the waiter lists, so the object must be
  /// awaited where it was materialized (`co_await cache.write_chunk(c)`).
  struct [[nodiscard]] WriteAwaiter {
    PageCache& pc;
    ChunkId c;
    std::coroutine_handle<> cont = nullptr;
    sim::WaitNode node;
    enum class St : std::uint8_t { kThrottle, kReserve, kCopy } st = St::kThrottle;

    bool await_ready() const noexcept { return false; }  // the copy always suspends
    void await_suspend(std::coroutine_handle<> h) {
      cont = h;
      node.fn = &step_thunk;
      node.a = this;
      step();
    }
    void await_resume() const {
      pc.guest_bus_.release();  // the old SemGuard released here too
      pc.lru_.insert(c);
      pc.mark_dirty(c);
      if (pc.touch_hook_) pc.touch_hook_(c);
    }

   private:
    static void step_thunk(void* self, void*) {
      static_cast<WriteAwaiter*>(self)->step();
    }
    void step();
  };

  /// Frameless buffered read of one full chunk. Cache hits — the steady
  /// state — run the guest-bus + copy-delay machine with zero frames; a
  /// miss symmetric-transfers into one pooled coroutine for the backend
  /// fetch (see read_miss). Same awaited-in-place contract as WriteAwaiter.
  struct [[nodiscard]] ReadAwaiter {
    PageCache& pc;
    ChunkId c;
    std::coroutine_handle<> cont = nullptr;
    sim::WaitNode node;
    sim::Task miss;
    bool hit = false;

    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> h) {
      cont = h;
      if (pc.state_[c] != State::kAbsent) {
        hit = true;
        ++pc.hits_;
        pc.lru_.insert(c);
        node.fn = &bus_thunk;
        node.a = this;
        if (pc.guest_bus_.try_acquire())
          start_copy();
        else
          pc.guest_bus_.add_waiter(&node);
        return std::noop_coroutine();
      }
      miss = pc.read_miss(c);
      return miss.await_suspend(h);  // start the fetch, parent as continuation
    }
    void await_resume() {
      if (hit) {
        pc.guest_bus_.release();
        return;
      }
      miss.await_resume();  // propagate a backend exception, if any
    }

   private:
    static void bus_thunk(void* self, void*) {
      static_cast<ReadAwaiter*>(self)->start_copy();
    }
    void start_copy();
  };

  /// Buffered write of one full chunk.
  WriteAwaiter write_chunk(ChunkId c) noexcept {
    assert(c < state_.size());
    return WriteAwaiter{*this, c, nullptr, {}};
  }
  /// Buffered read of one full chunk (miss fetches through the backend).
  ReadAwaiter read_chunk(ChunkId c) noexcept {
    assert(c < state_.size());
    return ReadAwaiter{*this, c, nullptr, {}, {}, false};
  }
  /// fsync: wait until no dirty chunk remains, then sync the backend.
  sim::Task fsync();
  /// Drop any clean cached copy of `c` (used by failure-injection tests).
  void invalidate(ChunkId c);

  std::uint64_t dirty_bytes() const noexcept {
    return dirty_.count() * img_.chunk_bytes;
  }
  std::size_t cached_chunks() const noexcept { return lru_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t writeback_ops() const noexcept { return writeback_ops_; }
  std::uint64_t throttle_events() const noexcept { return throttle_events_; }

 private:
  sim::Task writeback_loop();
  sim::Task read_miss(ChunkId c);
  void mark_dirty(ChunkId c);
  /// Evict clean LRU entries until a slot is free. False when everything
  /// resident is dirty (caller waits for write-back progress and retries).
  bool try_reserve_capacity();

  sim::Simulator& sim_;
  BlockBackend& backend_;
  ImageConfig img_;
  PageCacheConfig cfg_;
  std::vector<State> state_;
  LruChunkSet lru_;
  // Epoch-stamped dirty bitmap + cursor (see header comment).
  util::DirtyBitmap dirty_;
  std::vector<std::uint64_t> dirty_stamp_;
  std::uint64_t dirty_epoch_ = 0;
  std::uint32_t wb_cursor_ = 0;
  std::size_t writeback_inflight_ = 0;
  sim::Semaphore guest_bus_;
  sim::Notification wb_wakeup_;
  sim::Notification wb_progress_;
  bool wb_running_ = false;
  std::function<void(ChunkId)> touch_hook_;
  std::function<void(ChunkId)> release_hook_;
  sim::Gate* run_gate_ = nullptr;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writeback_ops_ = 0;
  std::uint64_t throttle_events_ = 0;
};

}  // namespace hm::storage
