// Guest page cache model.
//
// Sits between the workload's file I/O and the virtual disk (the migration
// manager). This layer is what makes the paper's observed IOR ceilings
// possible on a 55 MB/s disk: writes land in guest RAM at memcpy speed
// (observed 266 MB/s), reads of resident data run at ~1 GB/s, and a
// background write-back task drains dirty chunks to the virtual disk. When
// the dirty set exceeds the guest's dirty limit, writers are throttled to
// write-back speed — which is how slow storage backends (mirrored writes,
// PVFS) degrade in-VM write throughput.
//
// Crucially, cache-resident file data lives in *guest memory*, so filling or
// dirtying the cache dirties guest pages that the hypervisor's memory
// pre-copy has to (re)transmit. The on_cache_touch hook wires that coupling.
//
// Dirty bookkeeping is the same epoch-stamped bitmap + round-robin cursor
// pattern as ChunkStore's host-dirty set: mark_dirty stamps the chunk and
// sets its bit, the write-back task scans the bitmap from a cursor
// (word-skipping clean regions), and a re-dirty during an in-flight
// write-back is a stamp mismatch that leaves the bit set for the cursor's
// next lap — no deque, no hash probes on the write path. Fairness holds
// because the cursor always advances past a just-written chunk before
// considering it again, so a continuously re-dirtied chunk cannot starve
// the rest of the dirty set.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/chunk_store.h"
#include "util/bitmap.h"

namespace hm::storage {

/// Chunk-granular virtual disk interface implemented by the migration
/// manager (local images) and by the PVFS backend (pvfs-shared baseline).
class BlockBackend {
 public:
  virtual ~BlockBackend() = default;
  virtual sim::Task backend_read_chunk(ChunkId c) = 0;
  virtual sim::Task backend_write_chunk(ChunkId c) = 0;
  /// fsync-style barrier; default waits for nothing extra.
  virtual sim::Task backend_sync() { co_return; }
};

struct PageCacheConfig {
  std::uint64_t capacity_bytes = 3 * kGiB;     // guest RAM available for page cache
  std::uint64_t dirty_limit_bytes = 800 * kMiB;  // throttle threshold (~20% of 4 GB)
  double write_Bps = 266.0e6;  // guest-side buffered write bandwidth
  double read_Bps = 1.0e9;     // guest-side cached read bandwidth
};

class PageCache {
 public:
  PageCache(sim::Simulator& sim, BlockBackend& backend, ImageConfig img,
            PageCacheConfig cfg = {});
  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Hook invoked whenever file data enters or changes in the cache; the VM
  /// uses it to dirty the corresponding guest memory pages.
  void set_touch_hook(std::function<void(ChunkId)> hook) { touch_hook_ = std::move(hook); }

  /// Gate the write-back task on the VM's run state: the guest kernel (and
  /// thus its write-back) is frozen while the hypervisor pauses the VM.
  void set_run_gate(sim::Gate* gate) noexcept { run_gate_ = gate; }

  /// Hook invoked when a chunk leaves the cache (eviction / invalidate);
  /// the VM uses it to release the backing guest memory pages.
  void set_release_hook(std::function<void(ChunkId)> hook) {
    release_hook_ = std::move(hook);
  }

  /// Buffered write of one full chunk.
  sim::Task write_chunk(ChunkId c);
  /// Buffered read of one full chunk (miss fetches through the backend).
  sim::Task read_chunk(ChunkId c);
  /// fsync: wait until no dirty chunk remains, then sync the backend.
  sim::Task fsync();
  /// Drop any clean cached copy of `c` (used by failure-injection tests).
  void invalidate(ChunkId c);

  std::uint64_t dirty_bytes() const noexcept {
    return dirty_.count() * img_.chunk_bytes;
  }
  std::size_t cached_chunks() const noexcept { return lru_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t writeback_ops() const noexcept { return writeback_ops_; }
  std::uint64_t throttle_events() const noexcept { return throttle_events_; }

 private:
  enum class State : std::uint8_t { kAbsent, kClean, kDirty };

  sim::Task writeback_loop();
  void mark_dirty(ChunkId c);
  sim::Task reserve_capacity();

  sim::Simulator& sim_;
  BlockBackend& backend_;
  ImageConfig img_;
  PageCacheConfig cfg_;
  std::vector<State> state_;
  LruChunkSet lru_;
  // Epoch-stamped dirty bitmap + cursor (see header comment).
  util::DirtyBitmap dirty_;
  std::vector<std::uint64_t> dirty_stamp_;
  std::uint64_t dirty_epoch_ = 0;
  std::uint32_t wb_cursor_ = 0;
  std::size_t writeback_inflight_ = 0;
  sim::Semaphore guest_bus_;
  sim::Notification wb_wakeup_;
  sim::Notification wb_progress_;
  bool wb_running_ = false;
  std::function<void(ChunkId)> touch_hook_;
  std::function<void(ChunkId)> release_hook_;
  sim::Gate* run_gate_ = nullptr;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writeback_ops_ = 0;
  std::uint64_t throttle_events_ = 0;
};

}  // namespace hm::storage
