#include "vm/memory.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hm::vm {

GuestMemory::GuestMemory(GuestMemoryConfig cfg)
    : cfg_(cfg),
      pages_((cfg.ram_bytes + cfg.page_bytes - 1) / cfg.page_bytes),
      used_(pages_),
      dirty_(pages_) {
  // Pre-touch the OS/application baseline so round 0 has realistic volume.
  touch_range(0, std::min(cfg_.base_used_bytes, cfg_.ram_bytes));
}

void GuestMemory::touch_range(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t end = std::min(offset + len, cfg_.ram_bytes);
  if (offset >= end) return;
  const std::uint64_t first = offset / cfg_.page_bytes;
  const std::uint64_t last = (end - 1) / cfg_.page_bytes + 1;  // exclusive
  used_.set_range(first, last);
  dirty_.set_range(first, last);
}

void GuestMemory::release_range(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t end = std::min(offset + len, cfg_.ram_bytes);
  if (offset >= end) return;
  const std::uint64_t first = offset / cfg_.page_bytes;
  const std::uint64_t last = std::min((end - 1) / cfg_.page_bytes + 1, pages_);
  used_.reset_range(first, last);
  dirty_.reset_range(first, last);
}

void GuestMemory::touch_random(std::uint64_t ws_offset, std::uint64_t ws_len,
                               std::uint64_t len, sim::Rng& rng) {
  if (ws_len == 0 || len == 0) return;
  const std::uint64_t ws_pages = std::max<std::uint64_t>(1, ws_len / cfg_.page_bytes);
  const std::uint64_t first = ws_offset / cfg_.page_bytes;
  std::uint64_t n = (len + cfg_.page_bytes - 1) / cfg_.page_bytes;
  if (n >= ws_pages) {
    // Dirtying at least the whole working set: deterministic full coverage.
    const std::uint64_t last = std::min(first + ws_pages, pages_);
    if (first < last) {
      used_.set_range(first, last);
      dirty_.set_range(first, last);
    }
    return;
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t p = first + rng.uniform(ws_pages);
    if (p < pages_) {
      used_.set(p);
      dirty_.set(p);
    }
  }
}

std::uint64_t GuestMemory::begin_full_round() {
  dirty_.clear();
  return used_bytes();
}

std::uint64_t GuestMemory::take_dirty_round() {
  const std::uint64_t bytes = dirty_bytes();
  dirty_.clear();
  return bytes;
}

}  // namespace hm::vm
