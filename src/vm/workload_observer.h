// Observation interface for the workload API: every VmInstance workload
// call (compute, buffered file I/O, fsync, cache drop) and every
// application-level network send reports begin/end through this interface
// when one is attached. The simulator's behaviour is completely unaffected
// by observation — callbacks are plain synchronous calls that schedule
// nothing — so a run records the exact timeline it would have produced
// anyway. workloads::TraceRecorder is the production implementation; it
// turns the call stream into a replayable trace (see workloads/trace.h).
#pragma once

#include <cstdint>

namespace hm::vm {

class VmInstance;

class WorkloadObserver {
 public:
  virtual ~WorkloadObserver() = default;

  // Each *_begin call is made when the operation starts executing (i.e. at
  // the virtual time the workload issued it) and returns a lane token: the
  // observer's identifier for the concurrency slot the operation occupies.
  // The matching on_op_end(vm, lane) is called when the operation
  // completes, freeing the lane.
  virtual std::uint32_t on_compute(VmInstance& vm, double seconds, double dirty_Bps,
                                   std::uint64_t ws_bytes) = 0;
  virtual std::uint32_t on_file_write(VmInstance& vm, std::uint64_t offset,
                                      std::uint64_t len) = 0;
  virtual std::uint32_t on_file_read(VmInstance& vm, std::uint64_t offset,
                                     std::uint64_t len) = 0;
  virtual std::uint32_t on_fsync(VmInstance& vm) = 0;
  /// Application-level network send (e.g. CM1 halo exchange). `src`/`dst`
  /// are the node ids actually used — resolved at send time, so a migrated
  /// sender records its post-migration location.
  virtual std::uint32_t on_net_send(VmInstance& vm, std::uint32_t src, std::uint32_t dst,
                                    double bytes) = 0;
  /// Synchronous, instantaneous cache drop (fadvise DONTNEED): begin and
  /// end in one call.
  virtual void on_drop_cache(VmInstance& vm, std::uint64_t offset, std::uint64_t len) = 0;
  virtual void on_op_end(VmInstance& vm, std::uint32_t lane) = 0;
};

}  // namespace hm::vm
