// A running VM instance: guest memory, guest page cache over a block
// backend (migration manager or PVFS), a run/pause gate driven by the
// hypervisor, CPU accounting (the "computational potential" counter used by
// the paper's Figure 4(c)) and the file I/O API workloads use.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "core/metrics.h"
#include "net/flow_network.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "storage/page_cache.h"
#include "vm/compute_node.h"
#include "vm/memory.h"
#include "vm/workload_observer.h"

namespace hm::vm {

struct VmConfig {
  GuestMemoryConfig memory{};
  storage::PageCacheConfig cache{};
  double compute_slice_s = 0.1;  // CPU accounting granularity
  int cores = 1;
};

class VmInstance {
 public:
  VmInstance(sim::Simulator& sim, Cluster& cluster, net::NodeId home, int id,
             storage::BlockBackend& backend, VmConfig cfg = {});
  VmInstance(const VmInstance&) = delete;
  VmInstance& operator=(const VmInstance&) = delete;

  int id() const noexcept { return id_; }
  net::NodeId node() const noexcept { return node_; }
  void set_node(net::NodeId n) noexcept { node_ = n; }

  GuestMemory& memory() noexcept { return memory_; }
  storage::PageCache& page_cache() noexcept { return cache_; }
  storage::BlockBackend& backend() noexcept { return backend_; }
  Cluster& cluster() noexcept { return cluster_; }

  // --- execution control (hypervisor) ---------------------------------------
  // Depth-counted: the hypervisor's stop-and-copy pause and a fault
  // injector's crash pause can overlap, and the VM runs again only once
  // every pauser has resumed it.
  void pause() noexcept {
    if (pause_depth_++ == 0) run_gate_.close();
  }
  void resume() {
    assert(pause_depth_ > 0);
    if (--pause_depth_ == 0) run_gate_.open();
  }
  bool running() const noexcept { return run_gate_.is_open(); }
  sim::Gate& run_gate() noexcept { return run_gate_; }

  // --- workload API ----------------------------------------------------------
  /// Burn `seconds` of CPU; optionally dirty guest memory at `dirty_Bps`
  /// over an anonymous working set of `ws_bytes`. CPU time accrues only
  /// while the VM is running (paused slices simply wait).
  sim::Task compute(double seconds, double dirty_Bps = 0, std::uint64_t ws_bytes = 0);

  /// Buffered file I/O through the guest page cache (offsets are virtual
  /// disk offsets; partial chunks are rounded to full chunks, matching the
  /// paper's 256 KB-aligned workloads).
  sim::Task file_write(std::uint64_t offset, std::uint64_t len);
  sim::Task file_read(std::uint64_t offset, std::uint64_t len);
  sim::Task fsync();
  /// posix_fadvise(DONTNEED) equivalent: drop clean cached data for the
  /// range and release the backing guest memory (used by workloads whose
  /// output files are collected externally, like CM1's dumps).
  void drop_file_cache(std::uint64_t offset, std::uint64_t len);

  /// AsyncWR's counter: total CPU seconds executed.
  double cpu_seconds() const noexcept { return cpu_seconds_; }
  core::IoStats& io_stats() noexcept { return io_; }
  const core::IoStats& io_stats() const noexcept { return io_; }

  /// Offset of the anonymous working-set region in guest memory.
  std::uint64_t anon_region_offset() const noexcept { return cfg_.memory.base_used_bytes; }

  // --- workload observation (trace recording) --------------------------------
  /// Attach an observer that sees every workload-API call (null detaches).
  /// `trace_vm` is the observer's index for this VM (e.g. the trace vm
  /// field a recorder stamps into records). Pure observation: attaching an
  /// observer never changes the simulated timeline.
  void set_observer(WorkloadObserver* o, std::uint32_t trace_vm = 0) noexcept {
    observer_ = o;
    trace_vm_ = trace_vm;
  }
  WorkloadObserver* observer() const noexcept { return observer_; }
  std::uint32_t trace_vm() const noexcept { return trace_vm_; }

 private:
  sim::Simulator& sim_;
  Cluster& cluster_;
  net::NodeId node_;
  int id_;
  VmConfig cfg_;
  GuestMemory memory_;
  storage::BlockBackend& backend_;
  storage::PageCache cache_;
  sim::Gate run_gate_;
  std::uint32_t pause_depth_ = 0;
  double cpu_seconds_ = 0;
  core::IoStats io_;
  sim::Rng rng_;
  WorkloadObserver* observer_ = nullptr;
  std::uint32_t trace_vm_ = 0;
};

}  // namespace hm::vm
