#include "vm/vm_instance.h"

#include <algorithm>

namespace hm::vm {

VmInstance::VmInstance(sim::Simulator& sim, Cluster& cluster, net::NodeId home, int id,
                       storage::BlockBackend& backend, VmConfig cfg)
    : sim_(sim),
      cluster_(cluster),
      node_(home),
      id_(id),
      cfg_(cfg),
      memory_(cfg.memory),
      backend_(backend),
      cache_(sim, backend, cluster.config().image, cfg.cache),
      run_gate_(sim, /*open=*/true),
      rng_(cluster.rng().fork("vm", static_cast<std::uint64_t>(id))) {
  // File data resident in the guest page cache occupies guest RAM mapped at
  // the top of the address space: filling or dirtying cache chunks dirties
  // the corresponding guest pages, which memory pre-copy must transfer.
  const std::uint64_t file_base =
      cfg_.memory.ram_bytes > cfg_.cache.capacity_bytes
          ? cfg_.memory.ram_bytes - cfg_.cache.capacity_bytes
          : 0;
  const std::uint32_t chunk = cluster.config().image.chunk_bytes;
  cache_.set_touch_hook([this, file_base, chunk](storage::ChunkId c) {
    memory_.touch_range(file_base + static_cast<std::uint64_t>(c) * chunk, chunk);
  });
  cache_.set_release_hook([this, file_base, chunk](storage::ChunkId c) {
    memory_.release_range(file_base + static_cast<std::uint64_t>(c) * chunk, chunk);
  });
  cache_.set_run_gate(&run_gate_);
}

sim::Task VmInstance::compute(double seconds, double dirty_Bps, std::uint64_t ws_bytes) {
  const std::uint32_t lane =
      observer_ ? observer_->on_compute(*this, seconds, dirty_Bps, ws_bytes) : 0;
  double rem = seconds;
  while (rem > 0) {
    co_await run_gate_.wait_open();
    const double dt = std::min(cfg_.compute_slice_s, rem);
    // Background host activity (migration thread, FUSE transfer manager,
    // PVFS client) steals CPU from the guest: the slice takes longer in
    // wall-clock time while only `dt` of guest work is accomplished.
    co_await cluster_.node(node_).consume_cpu(dt);
    cpu_seconds_ += dt;
    rem -= dt;
    if (dirty_Bps > 0 && ws_bytes > 0) {
      memory_.touch_random(anon_region_offset(), ws_bytes,
                           static_cast<std::uint64_t>(dirty_Bps * dt), rng_);
    }
  }
  if (observer_) observer_->on_op_end(*this, lane);
}

sim::Task VmInstance::file_write(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) co_return;
  const std::uint32_t lane = observer_ ? observer_->on_file_write(*this, offset, len) : 0;
  const std::uint32_t chunk = cluster_.config().image.chunk_bytes;
  const storage::ChunkId first = static_cast<storage::ChunkId>(offset / chunk);
  const storage::ChunkId last = static_cast<storage::ChunkId>((offset + len - 1) / chunk);
  const double t0 = sim_.now();
  for (storage::ChunkId c = first; c <= last; ++c) {
    co_await run_gate_.wait_open();
    co_await cache_.write_chunk(c);
  }
  io_.bytes_written += static_cast<double>(len);
  io_.write_time_s += sim_.now() - t0;
  if (observer_) observer_->on_op_end(*this, lane);
}

sim::Task VmInstance::file_read(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) co_return;
  const std::uint32_t lane = observer_ ? observer_->on_file_read(*this, offset, len) : 0;
  const std::uint32_t chunk = cluster_.config().image.chunk_bytes;
  const storage::ChunkId first = static_cast<storage::ChunkId>(offset / chunk);
  const storage::ChunkId last = static_cast<storage::ChunkId>((offset + len - 1) / chunk);
  const double t0 = sim_.now();
  for (storage::ChunkId c = first; c <= last; ++c) {
    co_await run_gate_.wait_open();
    co_await cache_.read_chunk(c);
  }
  io_.bytes_read += static_cast<double>(len);
  io_.read_time_s += sim_.now() - t0;
  if (observer_) observer_->on_op_end(*this, lane);
}

sim::Task VmInstance::fsync() {
  const std::uint32_t lane = observer_ ? observer_->on_fsync(*this) : 0;
  co_await cache_.fsync();
  if (observer_) observer_->on_op_end(*this, lane);
}

void VmInstance::drop_file_cache(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return;
  if (observer_) observer_->on_drop_cache(*this, offset, len);
  const std::uint32_t chunk = cluster_.config().image.chunk_bytes;
  const storage::ChunkId first = static_cast<storage::ChunkId>(offset / chunk);
  const storage::ChunkId last = static_cast<storage::ChunkId>((offset + len - 1) / chunk);
  for (storage::ChunkId c = first; c <= last; ++c) cache_.invalidate(c);
}

}  // namespace hm::vm
