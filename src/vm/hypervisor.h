// Pre-copy live memory migration (QEMU-style), deliberately independent of
// the storage transfer strategy — the paper's central design principle is
// that storage migration is handled outside the hypervisor, so this loop
// only coordinates with the storage session at two points:
//   * convergence: QEMU's incremental block migration (the precopy baseline)
//     must converge together with memory, so its residual dirty chunks count
//     against the downtime criterion and each memory round is followed by a
//     storage round;
//   * SYNC: right before control moves, the hypervisor syncs the virtual
//     disk — which our FUSE-level manager turns into TRANSFER_IO_CONTROL.
#pragma once

#include "core/metrics.h"
#include "core/migration_manager.h"
#include "net/flow_network.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "vm/vm_instance.h"

namespace hm::vm {

struct HypervisorConfig {
  /// QEMU migration speed cap; the paper sets it to the full NIC bandwidth.
  double migration_speed_Bps = 125.0e6;
  double downtime_target_s = 0.03;  // QEMU 1.0 default max downtime (30 ms)
  int max_rounds = 100;             // forced stop safeguard
  double device_state_bytes = 2.0e6;
  /// Host CPU fraction consumed by the migration machinery (QEMU migration
  /// thread + transfer manager) while the VM shares the node with it: the
  /// source during the active phase, the destination while residual state
  /// is still being pulled. This is the paper's "impact on application
  /// performance" channel beyond pure I/O contention.
  double host_cpu_overhead_active = 0.25;
  double host_cpu_overhead_passive = 0.10;
};

class Hypervisor {
 public:
  /// Run one live migration of `vm` to `dst_node`. `storage` must already be
  /// started (the migration manager forwards the request to the hypervisor
  /// per Algorithm 1, line 9). Fills `rec` with timing/volume details.
  static sim::Task live_migrate(sim::Simulator& sim, net::FlowNetwork& net,
                                VmInstance& vm, net::NodeId dst_node,
                                core::StorageMigrationSession& storage,
                                HypervisorConfig cfg, core::MigrationRecord& rec);
};

}  // namespace hm::vm
