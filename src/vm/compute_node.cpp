#include "vm/compute_node.h"

namespace hm::vm {

sim::Task ComputeNode::consume_cpu(double dt) {
  refresh_integral();
  const double target = avail_integral_ + dt;
  for (;;) {
    refresh_integral();
    const double remaining = target - avail_integral_;
    if (remaining <= 1e-12) break;
    // Sleep the exact time needed at the current share. If the load rises
    // meanwhile the integral advances slower and the loop waits again; a
    // falling load only makes us finish marginally pessimistically.
    co_await sim_.delay(remaining / guest_share());
  }
}

Cluster::Cluster(sim::Simulator& sim, ClusterConfig cfg)
    : sim_(sim), cfg_(cfg), net_(sim, cfg.network), repo_(sim, net_, cfg.image),
      rng_(cfg.seed) {
  nodes_.reserve(cfg_.num_nodes);
  for (std::size_t i = 0; i < cfg_.num_nodes; ++i) {
    net::SwitchGroupId group = 0;
    if (cfg_.nodes_per_switch > 0) {
      const std::size_t sw = i / cfg_.nodes_per_switch;
      while (net_.switch_group_count() <= sw + 1)
        net_.add_switch_group(cfg_.switch_uplink_Bps);
      group = static_cast<net::SwitchGroupId>(sw + 1);  // group 0 stays flat
    }
    const net::NodeId id = net_.add_node(cfg_.nic_Bps, group);
    nodes_.push_back(std::make_unique<ComputeNode>(sim_, id, cfg_.disk));
    // The repository aggregates part of every compute node's local disk
    // into a common striped pool (Section 4.2 of the paper).
    repo_.add_storage_node(id, &nodes_.back()->disk());
  }
  if (cfg_.enable_pvfs) {
    pvfs_ = std::make_unique<storage::Pvfs>(sim_, net_, cfg_.pvfs);
    for (auto& n : nodes_) pvfs_->add_server(n->id(), &n->disk());
  }
}

}  // namespace hm::vm
