// Cluster of compute nodes: each node has a NIC on the shared fabric and a
// local disk. The striped repository (and optionally PVFS) aggregate the
// local disks of all compute nodes, exactly like the paper's deployment on
// the Grid'5000 graphene cluster.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "net/flow_network.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "storage/chunk_store.h"
#include "storage/disk.h"
#include "storage/pvfs.h"
#include "storage/repository.h"

namespace hm::vm {

struct ClusterConfig {
  std::size_t num_nodes = 8;
  double nic_Bps = 117.5e6;  // measured GbE throughput in the paper
  net::FlowNetworkConfig network{};
  /// Edge-switch oversubscription: nodes are assigned block-wise to
  /// switches of this size, each with `switch_uplink_Bps` to the core.
  /// 0 = flat network (single unlimited switch).
  std::size_t nodes_per_switch = 0;
  double switch_uplink_Bps = 1.25e9;  // 10 GbE uplink
  storage::DiskConfig disk{};
  storage::ImageConfig image{};
  storage::ChunkStoreConfig chunk_store{};
  bool enable_pvfs = false;
  storage::PvfsConfig pvfs{};
  std::uint64_t seed = 42;
};

class ComputeNode {
 public:
  ComputeNode(sim::Simulator& sim, net::NodeId id, storage::DiskConfig disk_cfg)
      : sim_(sim), id_(id), disk_(sim, disk_cfg) {}
  net::NodeId id() const noexcept { return id_; }
  storage::Disk& disk() noexcept { return disk_; }

  /// Host CPU consumed by background activity (hypervisor migration thread,
  /// FUSE transfer manager, PVFS client). Guest vCPUs on this node run at
  /// (1 - load), floored at 20% so the guest never fully starves.
  double background_cpu_load() const noexcept { return cpu_load_; }
  void add_cpu_load(double l) {
    refresh_integral();
    cpu_load_ = std::max(0.0, cpu_load_ + l);
  }
  void remove_cpu_load(double l) { add_cpu_load(-l); }

  /// Burn `dt` seconds of *guest* CPU time; wall time stretches while
  /// background load is present. Integral accounting: bursts of load
  /// shorter than the wait are accounted exactly, not sampled.
  sim::Task consume_cpu(double dt);

 private:
  double guest_share() const noexcept { return std::max(0.2, 1.0 - cpu_load_); }
  void refresh_integral() noexcept {
    avail_integral_ += (sim_.now() - last_refresh_) * guest_share();
    last_refresh_ = sim_.now();
  }

  sim::Simulator& sim_;
  net::NodeId id_;
  storage::Disk disk_;
  double cpu_load_ = 0;
  double avail_integral_ = 0;
  double last_refresh_ = 0;
};

/// RAII registration of background host CPU load on a node.
class CpuLoadGuard {
 public:
  CpuLoadGuard(ComputeNode& node, double load) : node_(&node), load_(load) {
    node_->add_cpu_load(load_);
  }
  CpuLoadGuard(const CpuLoadGuard&) = delete;
  CpuLoadGuard& operator=(const CpuLoadGuard&) = delete;
  ~CpuLoadGuard() {
    if (node_ != nullptr) node_->remove_cpu_load(load_);
  }
  void release() {
    if (node_ != nullptr) node_->remove_cpu_load(load_);
    node_ = nullptr;
  }

 private:
  ComputeNode* node_;
  double load_;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, ClusterConfig cfg);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& sim() noexcept { return sim_; }
  net::FlowNetwork& network() noexcept { return net_; }
  storage::Repository& repository() noexcept { return repo_; }
  storage::Pvfs* pvfs() noexcept { return pvfs_ ? pvfs_.get() : nullptr; }
  const ClusterConfig& config() const noexcept { return cfg_; }
  sim::Rng& rng() noexcept { return rng_; }

  std::size_t size() const noexcept { return nodes_.size(); }
  ComputeNode& node(net::NodeId id) noexcept { return *nodes_[id]; }
  storage::Disk& disk(net::NodeId id) noexcept { return nodes_[id]->disk(); }

  /// Create a fresh on-disk image replica on node `id`.
  std::unique_ptr<storage::ChunkStore> make_replica(net::NodeId id) {
    return std::make_unique<storage::ChunkStore>(sim_, disk(id), cfg_.image,
                                                 cfg_.chunk_store);
  }

 private:
  sim::Simulator& sim_;
  ClusterConfig cfg_;
  net::FlowNetwork net_;
  std::vector<std::unique_ptr<ComputeNode>> nodes_;
  storage::Repository repo_;
  std::unique_ptr<storage::Pvfs> pvfs_;
  sim::Rng rng_;
};

}  // namespace hm::vm
