// Guest memory model with page-granular dirty tracking.
//
// The hypervisor's pre-copy migration transfers `used` pages in round 0 and
// the pages dirtied since the previous round afterwards. Guest memory has
// two regions: anonymous memory (application working set) and the page-cache
// region (file data resident in the guest page cache — filling or dirtying
// the cache dirties these pages, which is what couples I/O intensive
// workloads to memory migration cost in the paper's experiments).
//
// Dirty state is a packed word bitmap (util::DirtyBitmap): touch_range runs
// word-masked, counts come from an incrementally-maintained popcount, and a
// migration round clears the map at memset speed instead of walking a
// byte-per-page vector. for_each_dirty_page exposes word-granular iteration
// for trace-driven consumers.
#pragma once

#include <cstdint>

#include "sim/random.h"
#include "util/bitmap.h"

namespace hm::vm {

struct GuestMemoryConfig {
  std::uint64_t ram_bytes = 4ULL * 1024 * 1024 * 1024;
  std::uint64_t page_bytes = 64 * 1024;  // tracking granularity
  std::uint64_t base_used_bytes = 512ULL * 1024 * 1024;  // OS + application image
};

class GuestMemory {
 public:
  explicit GuestMemory(GuestMemoryConfig cfg);

  std::uint64_t ram_bytes() const noexcept { return cfg_.ram_bytes; }
  std::uint64_t page_bytes() const noexcept { return cfg_.page_bytes; }
  std::uint64_t used_bytes() const noexcept { return used_.count() * cfg_.page_bytes; }
  std::uint64_t dirty_bytes() const noexcept { return dirty_.count() * cfg_.page_bytes; }
  std::uint64_t dirty_page_count() const noexcept { return dirty_.count(); }

  /// Mark [offset, offset+len) used and dirty (clamped to RAM size).
  void touch_range(std::uint64_t offset, std::uint64_t len);

  /// Free [offset, offset+len): pages no longer used (page-cache eviction,
  /// fadvise(DONTNEED)) and need not be migrated anymore.
  void release_range(std::uint64_t offset, std::uint64_t len);

  /// Dirty `len` bytes of anonymous memory spread uniformly over a working
  /// set of `ws_len` bytes starting at `ws_offset`.
  void touch_random(std::uint64_t ws_offset, std::uint64_t ws_len, std::uint64_t len,
                    sim::Rng& rng);

  /// Migration round 0: everything used must be sent. Returns used bytes and
  /// clears the dirty map (subsequent dirtying accumulates for round 1).
  std::uint64_t begin_full_round();

  /// Migration round N: returns bytes dirtied since the last round and
  /// clears the dirty map.
  std::uint64_t take_dirty_round();

  /// Word-scan the current dirty set (ascending page index) without
  /// clearing it — the hook for trace-driven dirty-pattern replay.
  template <class F>
  void for_each_dirty_page(F&& fn) const {
    dirty_.for_each_set(std::forward<F>(fn));
  }

  std::uint64_t pages() const noexcept { return pages_; }

 private:
  GuestMemoryConfig cfg_;
  std::uint64_t pages_;
  util::DirtyBitmap used_;
  util::DirtyBitmap dirty_;
};

}  // namespace hm::vm
