#include "vm/hypervisor.h"

namespace hm::vm {

sim::Task Hypervisor::live_migrate(sim::Simulator& sim, net::FlowNetwork& net,
                                   VmInstance& vm, net::NodeId dst_node,
                                   core::StorageMigrationSession& storage,
                                   HypervisorConfig cfg, core::MigrationRecord& rec) {
  const net::NodeId src_node = vm.node();
  GuestMemory& mem = vm.memory();
  Cluster& cluster = vm.cluster();

  // The migration machinery occupies host CPU on the source for the whole
  // active phase.
  CpuLoadGuard active_load(cluster.node(src_node), cfg.host_cpu_overhead_active);

  // Round 0: ship every used page while the VM keeps running.
  double to_send = static_cast<double>(mem.begin_full_round());
  int round = 0;
  double final_dirty = 0;
  for (;;) {
    const bool sent = co_await net.transfer(src_node, dst_node, to_send,
                                            net::TrafficClass::kMemory,
                                            cfg.migration_speed_Bps);
    if (sent) rec.memory_bytes_sent += to_send;
    if (!sent) storage.abort();
    if (storage.aborted()) co_return;  // CpuLoadGuard unwinds via RAII
    ++round;
    if (storage.converges_with_memory()) {
      // QEMU block migration: stream the dirty chunk backlog in the same
      // migration channel before re-examining convergence.
      co_await storage.storage_round();
      if (storage.aborted()) co_return;
    }
    const double dirty = static_cast<double>(mem.take_dirty_round());
    const double resid = storage.residual_storage_bytes();
    const double downtime_budget = cfg.migration_speed_Bps * cfg.downtime_target_s;
    if (round >= cfg.max_rounds) {
      // Forced stop: ship whatever is left, blowing the downtime target —
      // the non-convergence pathology of pre-copy.
      if (!storage.ready_to_complete()) co_await storage.wait_ready_to_complete();
      if (storage.aborted()) co_return;
      final_dirty = dirty + static_cast<double>(mem.take_dirty_round());
      break;
    }
    if (dirty + resid <= downtime_budget) {
      if (storage.ready_to_complete() && !storage.aborted()) {
        final_dirty = dirty;
        break;
      }
      // Memory converged but storage is not ready for control transfer yet
      // (e.g. mirroring's bulk copy): wait, then iterate the dirtying that
      // accumulated in the meantime.
      co_await storage.wait_ready_to_complete();
      if (storage.aborted()) co_return;
    }
    to_send = dirty;
  }

  // Stop-and-copy: pause the guest, flush the residue + device state.
  vm.pause();
  const double t_pause = sim.now();
  const bool residue_sent =
      co_await net.transfer(src_node, dst_node, final_dirty + cfg.device_state_bytes,
                            net::TrafficClass::kMemory, cfg.migration_speed_Bps);
  if (residue_sent) rec.memory_bytes_sent += final_dirty + cfg.device_state_bytes;
  if (!residue_sent) storage.abort();
  if (storage.aborted()) {
    vm.resume();  // the guest keeps running at the source; the retry restarts
    co_return;
  }

  // SYNC on the virtual disk (TRANSFER_IO_CONTROL for our approach; final
  // dirty-chunk round for precopy; write drain for mirror; no-op for pvfs).
  co_await storage.pre_control_transfer();
  if (storage.aborted()) {
    vm.resume();
    co_return;
  }

  // Control moves: the VM now runs on the destination.
  storage.transfer_control();
  vm.set_node(dst_node);
  vm.resume();
  rec.downtime_s = sim.now() - t_pause;
  rec.t_control_transfer = sim.now();
  rec.memory_rounds = round;
  active_load.release();

  // Passive phase: wait until the source holds nothing the VM still needs.
  // Residual pulls keep the destination's transfer manager busy.
  {
    CpuLoadGuard passive_load(cluster.node(dst_node), cfg.host_cpu_overhead_passive);
    co_await storage.wait_source_released();
  }
  rec.t_source_released = sim.now();
}

}  // namespace hm::vm
