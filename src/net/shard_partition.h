// Deterministic component-to-shard partitioner over the FlowNetwork
// constraint graph.
//
// Two simulation items (VMs, with their migrations) can only influence each
// other through a shared network constraint: a NIC they both use (same
// source node, same destination node) or a finite shared constraint (fabric
// aggregate, switch uplink). When every shared constraint is infinite — the
// non-blocking Clos core — the constraint graph decomposes into connected
// components over NIC endpoints alone, exactly the component structure the
// incremental solver (PR 2) exploits per settle epoch. This header computes
// that decomposition statically, from the planned endpoint sets, and packs
// the components into shard bins.
//
// Everything is deterministic: components are identified by their minimal
// item index, ordered ascending, and assigned greedily (heaviest first,
// least-loaded bin, ties to the lowest bin id). The same input always
// yields the same assignment — a prerequisite for the sharded timeline
// being byte-identical run to run.
#pragma once

#include <cstdint>
#include <vector>

namespace hm::net {

struct ShardAssignment {
  /// Per item: owning shard bin in [0, bins). Items in one connected
  /// component always share a bin.
  std::vector<std::uint32_t> shard_of_item;
  /// Number of connected components found.
  std::uint32_t components = 0;
  /// Bins that received at least one item (<= requested bins; the rest are
  /// legitimate empty shards — the torn-partition case).
  std::uint32_t bins_used = 0;
};

/// Partition `n_items` items into `bins` shards. `edges` lists every
/// (item, node) incidence: an item touches a node's NIC constraints.
/// Items connected through any chain of shared nodes land in one component;
/// components are bin-packed balanced by item count.
ShardAssignment partition_items(
    std::size_t n_items, std::size_t n_nodes,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::uint32_t bins);

}  // namespace hm::net
