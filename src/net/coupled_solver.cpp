#include "net/coupled_solver.h"

#include <cmath>
#ifdef HM_EPOCH_TRACE
#include <cstdio>
#include <cstdlib>
#endif

namespace hm::net {

namespace {
constexpr std::uint32_t kNil = 0xffffffffu;
}

CoupledCoordinator::CoupledCoordinator(std::uint32_t shards, FlowNetworkConfig cfg)
    : mirror_(mirror_sim_, cfg), latency_s_(cfg.latency_s), mirror_of_(shards) {
  mirror_.set_mirror(true);
}

void CoupledCoordinator::observe(double t_star,
                                 const std::vector<double>& shard_completion_t) {
  double p = -1.0;
  for (const double t : shard_completion_t)
    if (t >= 0.0 && (p < 0.0 || t < p)) p = t;
  if (p != ctimer_t_) {
    // The minimum live projection changed while the previous instant ran —
    // exactly when a single-shard schedule_completion would have cancelled
    // and re-armed its one timer.
    ctimer_t_ = p;
    ctimer_set_t_ = prev_t_;
  }
  prev_t_ = t_star;
}

int CoupledCoordinator::reduce(
    double t_star, std::vector<ShardDelta>& deltas,
    std::vector<std::vector<std::pair<std::uint32_t, double>>>& rates_out) {
  bool has_rm = false, has_add = false;
  for (const ShardDelta& d : deltas) {
    has_rm |= !d.removes.empty();
    has_add |= !d.adds.empty();
  }
  if (!has_rm && !has_add) return 0;
  // Single-shard epoch structure at a mixed instant (see header): two solves
  // iff the completion timer's event ran before the arrivals' begin events,
  // i.e. the timer was (re)scheduled strictly before t_star - latency. The
  // FP-exact form of that comparison reconstructs the begin-leg launch time
  // the way start_leg computed it (launch + latency == t_star).
  const bool split = has_rm && has_add && ctimer_t_ == t_star &&
                     ctimer_set_t_ + latency_s_ < t_star;
  int epochs = 0;
#ifdef HM_EPOCH_TRACE
  // Build with -DHM_EPOCH_TRACE and set HM_EPOCH_TRACE=1 to dump one "E t"
  // line per mirror epoch; the single-shard FlowNetwork emits the same
  // stream from solve_epoch, so `diff` pinpoints the first instant where
  // the coupled epoch structure deviates from the sequential one.
  if (std::getenv("HM_EPOCH_TRACE")) {
    std::fprintf(stderr, "E %.17g\n", t_star);
    if (split) std::fprintf(stderr, "E %.17g\n", t_star);
  }
#endif
  if (split) {
    apply_epoch(deltas, /*removals=*/true, /*adds=*/false, rates_out);
    apply_epoch(deltas, /*removals=*/false, /*adds=*/true, rates_out);
    epochs = 2;
  } else {
    apply_epoch(deltas, /*removals=*/true, /*adds=*/true, rates_out);
    epochs = 1;
  }
  mirror_epochs_ += epochs;
  return epochs;
}

void CoupledCoordinator::apply_epoch(
    std::vector<ShardDelta>& deltas, bool removals, bool adds,
    std::vector<std::vector<std::pair<std::uint32_t, double>>>& rates_out) {
  const std::uint32_t n = static_cast<std::uint32_t>(deltas.size());
  // Removals before adds so a shard slot recycled within the round maps to
  // its new mirror flow; both passes walk shards in fixed order, so the
  // mirror's slot allocation — and with it the solver's canonical slot
  // order — is a pure function of the delta content.
  if (removals) {
    for (std::uint32_t s = 0; s < n; ++s) {
      for (const std::uint32_t lslot : deltas[s].removes) {
        const std::uint32_t m = mirror_of_[s][lslot];
        mirror_.mirror_remove_flow(m);
        mirror_of_[s][lslot] = kNil;
      }
      deltas[s].removes.clear();
    }
  }
  if (adds) {
    for (std::uint32_t s = 0; s < n; ++s) {
      for (const FlowNetwork::CoupledAdd& a : deltas[s].adds) {
        const std::uint32_t m = mirror_.mirror_add_flow(a.src, a.dst, a.bytes, a.cap);
        if (mirror_of_[s].size() <= a.slot) mirror_of_[s].resize(a.slot + 1, kNil);
        mirror_of_[s][a.slot] = m;
        if (owner_of_.size() <= m) owner_of_.resize(m + 1);
        owner_of_[m] = {s, a.slot};
      }
      deltas[s].adds.clear();
    }
  }
  mirror_.mirror_solve();
  for (std::size_t i = 0; i < mirror_.solved_item_count(); ++i) {
    const auto [m, rate] = mirror_.solved_item(i);
    const auto [s, lslot] = owner_of_[m];
    rates_out[s].push_back({lslot, rate});
  }
}

bool CoupledCoordinator::fold_demand_messages(
    const std::vector<sim::ShardMessage>& inbox) {
  for (const sim::ShardMessage& m : inbox) {
    const std::uint32_t c = static_cast<std::uint32_t>(m.payload);
    if (demand_total_.size() <= c) demand_total_.resize(c + 1, 0.0);
    demand_total_[c] += m.value;
    ++demand_messages_;
  }
  // The folded totals must equal the mirror's live shared-user counts: the
  // messages and the mirror deltas describe the same churn through two
  // independent channels. (Constraints never mentioned in any message have
  // total 0 and, by the same token, no mirror users.)
  for (std::uint32_t c = 0; c < demand_total_.size(); ++c) {
    if (demand_total_[c] != static_cast<double>(mirror_.shared_user_count(c))) {
      demand_consistent_ = false;
      return false;
    }
  }
  return true;
}

}  // namespace hm::net
