// Flow-level network model with max-min fair bandwidth sharing.
//
// Models the Grid'5000-style testbed of the paper: every node has a GbE NIC
// (separate ingress/egress capacity) attached to a shared switch fabric with
// a finite aggregate capacity (the paper measured 117.5 MB/s per NIC and
// ~8 GB/s total on the Cisco Catalyst switch). Transfers are fluid flows;
// whenever a flow starts or finishes, rates are re-assigned by progressive
// filling (water-filling), which yields the max-min fair allocation subject
// to per-flow rate caps (e.g. QEMU's migration speed limit).
//
// This level of abstraction captures exactly the effects the paper's
// evaluation hinges on: pre-copy non-convergence when the dirty rate exceeds
// the NIC share, fabric saturation under 30 concurrent migrations, and
// contention between memory and storage transfer streams.
//
// Engine notes (datacenter-scale sweeps):
//  * Epoch batching — flow arrivals at one virtual timestamp are coalesced
//    into a single deferred max-min solve (a zero-delay "settle" event), so
//    a burst of N chunk pushes costs one recompute instead of N. The solved
//    rates are identical because no virtual time passes inside the epoch.
//  * Component-scoped incremental solving — see "Incremental solver
//    invariants" below: each settle re-runs water-filling only for the
//    connected components containing arrived/departed flows; every other
//    component keeps its cached rates and its completion-heap entries.
//  * transfer()/request_response() are frameless awaitables: a transfer is
//    a FlowOp continuation record embedded in the awaiter (inside the
//    awaiting coroutine's frame), started by one latency timer and resumed
//    straight from the completion heap through one zero-delay event — no
//    nested coroutine frame, no per-transfer done-Event, no allocation.
//    The event sequence is identical to the previous coroutine-based path.
//  * Flows live in a slab of slots recycled through a free list, so
//    starting a flow performs no per-flow heap allocation in steady state.
//  * Completions come from a min-heap of projected finish times that is
//    invalidated lazily: entries are re-validated against the flow's
//    current projection when popped instead of being rescanned.
//  * flow_rate()/current_rate_sum() are maintained incrementally and cost
//    O(1) per query.
//
// Incremental solver invariants
// -----------------------------
// Constraints split into two classes:
//  * LOCAL: per-node NIC egress/ingress. Each is touched only by flows with
//    that endpoint. Connected components are computed over local constraints
//    alone (two flows are in one component iff they are linked by a chain of
//    shared endpoints).
//  * SHARED: the fabric aggregate and the per-switch-group uplinks. These
//    can span components. A shared constraint is *contained* in a component
//    when every live flow using it belongs to that component; contained
//    constraints participate in the component's water-fill like local ones.
//
// Per settle epoch:
//  1. A component is DIRTY iff a flow arrived into it, departed from it, or
//     the topology changed (which dirties everything). Arrivals dirty every
//     existing component reachable through their endpoints' local
//     constraints (arrivals can merge components; departures can split them
//     — membership is rebuilt from scratch for the dirty region only).
//  2. Dirty components are re-partitioned and water-filled ignoring
//     non-contained shared constraints; clean components keep their CACHED
//     rates, projections and completion-heap entries untouched.
//  3. Every finite shared constraint is then validated against the total
//     usage (cached + freshly solved rates). If none is violated the
//     allocation is the exact global max-min: it is feasible and it is
//     max-min fair for the relaxation, whose feasible set contains the full
//     problem's. A shared constraint that is not binding never determines a
//     water-fill increment, so the per-component solution is bit-identical
//     to the full solve's.
//  4. If a shared constraint IS violated, the epoch escalates: one global
//     water-fill over all live flows with every constraint (exactly the
//     pre-incremental algorithm, in canonical slot order), and all flows
//     merge into a single component so any later change re-solves it (and
//     re-attempts decomposition, which is how the mega-component splits
//     back once pressure drops).
//
// Cached rates are reusable because a component's solution is a pure
// function of (member flows in slot order, their caps, endpoint capacities,
// contained shared capacities) — none of which change while the component
// stays clean. This is what makes ABLATE_INCREMENTAL=off (re-solve every
// component each epoch) byte-identical to the incremental mode, which the
// randomized equivalence suite asserts.
//
// Membership fast path (merge-only epochs): arrivals and capacity changes
// can only MERGE components, never split them — splits require a departure
// (or an escalated publish, whose mega-component was never NIC-connected).
// Components carry a split_risk flag, set by real departures and escalated
// publishes; when no affected item comes from a split-risk component (and
// the topology is unchanged), the epoch derives membership by unioning each
// item with its previous component's representative (O(1) per item) and
// running constraint union-find over the arrivals only, bridging into
// previous components through the NIC-owner map. Published components never
// share a NIC constraint, so arrivals are the only possible bridges, and
// the union rule (root = minimal item index) makes the resulting partition,
// group order and in-group item order identical to the item-level rebuild —
// the counters and rates cannot tell the paths apart. Epochs with a
// split-risk member fall back to the item-level rebuild, which re-splits
// exactly.
//
// Introspection: solved_component_count() counts component water-fills,
// touched_flow_count() counts flow re-solves (both cumulative), so benches
// can report flows-re-solved-per-epoch; escalation_count() says how often
// the shared-constraint check forced a global solve.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/bitmap.h"

namespace hm::net {

using NodeId = std::uint32_t;

/// Category tags for traffic accounting; the evaluation section of the paper
/// reports network traffic broken down by what caused it.
enum class TrafficClass : std::uint8_t {
  kMemory,        // hypervisor memory pre-copy stream
  kStoragePush,   // source->destination chunk pushes (active phase)
  kStoragePull,   // destination<-source chunk pulls (passive phase)
  kRepoRead,      // base image chunks fetched from the repository
  kPvfsData,      // parallel file system I/O (pvfs-shared baseline)
  kAppComm,       // application communication (CM1 halo exchanges)
  kControl,       // small control messages (chunk lists, pull requests)
  kCount
};

constexpr std::size_t kNumTrafficClasses = static_cast<std::size_t>(TrafficClass::kCount);
const char* traffic_class_name(TrafficClass cls) noexcept;

constexpr double kUnlimitedRate = std::numeric_limits<double>::infinity();

struct FlowNetworkConfig {
  double fabric_Bps = 8.0e9;     // aggregate switch capacity
  double latency_s = 100e-6;     // one-way message latency (paper: ~0.1 ms)
  double loopback_Bps = 8.0e9;   // same-node transfers (not counted as traffic)
  /// Incremental component-scoped solving: -1 = follow the
  /// ABLATE_INCREMENTAL env var (default on), 0 = off (full re-solve each
  /// epoch), 1 = on. Lets harnesses pin the regime per experiment instead
  /// of process-wide (e.g. the record→replay equivalence tests).
  int incremental = -1;
};

using SwitchGroupId = std::uint32_t;

class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& sim, FlowNetworkConfig cfg = {});
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Register an edge switch with the given uplink capacity to the core
  /// (both directions). Models cluster oversubscription: flows between
  /// nodes on different switches consume uplink bandwidth; flows within a
  /// switch do not. Group 0 always exists with an unlimited uplink.
  SwitchGroupId add_switch_group(double uplink_Bps);
  std::size_t switch_group_count() const noexcept { return groups_.size(); }

  /// Register a node with the given NIC capacities (bytes/second).
  NodeId add_node(double egress_Bps, double ingress_Bps, SwitchGroupId group = 0);
  NodeId add_node(double nic_Bps) { return add_node(nic_Bps, nic_Bps, 0); }
  NodeId add_node(double nic_Bps, SwitchGroupId group) {
    return add_node(nic_Bps, nic_Bps, group);
  }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  SwitchGroupId group_of(NodeId n) const noexcept { return nodes_[n].group; }

  /// Continuation record for the frameless transfer awaitables. It lives
  /// inside the awaiter object (and therefore inside the awaiting
  /// coroutine's frame) for the whole suspension, so the network can hold a
  /// raw pointer to it: `step` is invoked (through one zero-delay event)
  /// when the current leg completes. The src/dst/bytes/cls/cap fields
  /// describe the leg to start next and are consumed by begin_flow().
  struct FlowOp {
    void (*step)(FlowOp*) = nullptr;
    void* self = nullptr;  // enclosing awaiter, for multi-leg ops
    FlowNetwork* net = nullptr;
    std::coroutine_handle<> cont = nullptr;
    NodeId src = 0;
    NodeId dst = 0;
    double bytes = 0.0;
    double cap = kUnlimitedRate;
    TrafficClass cls = TrafficClass::kControl;
    // Set when an endpoint crashed: the leg is torn down, its un-transferred
    // bytes are credited back to the traffic counters, and the continuation
    // is stepped exactly once through the normal completion event — so the
    // awaiting coroutine unwinds along the ordinary resume path and can
    // observe the failure from await_resume().
    bool failed = false;
  };

  /// Frameless single-transfer awaitable (see FlowOp). Non-copyable: the
  /// network registers the embedded FlowOp's address, so the object must be
  /// awaited where it was materialized (guaranteed elision makes
  /// `co_await net.transfer(...)` exactly that).
  class [[nodiscard]] TransferAwaiter {
   public:
    TransferAwaiter(const TransferAwaiter&) = delete;
    TransferAwaiter& operator=(const TransferAwaiter&) = delete;

    bool await_ready() const noexcept { return op_.bytes <= 0.0; }
    void await_suspend(std::coroutine_handle<> h) {
      op_.cont = h;
      op_.net->start_leg(&op_);
    }
    /// True if the transfer completed; false if an endpoint crashed
    /// mid-flight (the flow was torn down and un-sent bytes uncounted).
    bool await_resume() const noexcept { return !op_.failed; }

   private:
    friend class FlowNetwork;
    TransferAwaiter(FlowNetwork& net, NodeId src, NodeId dst, double bytes,
                    TrafficClass cls, double cap) noexcept {
      op_.step = &finish;
      op_.net = &net;
      op_.src = src;
      op_.dst = dst;
      op_.bytes = bytes;
      op_.cap = cap;
      op_.cls = cls;
    }
    static void finish(FlowOp* op) { op->cont.resume(); }
    FlowOp op_;
  };

  /// Frameless round-trip awaitable: the request leg completes, the
  /// response leg starts, and only then is the caller resumed. Non-copyable
  /// for the same reason as TransferAwaiter (op_.self refers back to this).
  class [[nodiscard]] RequestResponseAwaiter {
   public:
    RequestResponseAwaiter(const RequestResponseAwaiter&) = delete;
    RequestResponseAwaiter& operator=(const RequestResponseAwaiter&) = delete;

    bool await_ready() const noexcept {
      return op_.bytes <= 0.0 && response_bytes_ <= 0.0;
    }
    void await_suspend(std::coroutine_handle<> h) {
      op_.cont = h;
      if (op_.bytes > 0.0) {
        op_.net->start_leg(&op_);
        return;
      }
      begin_response();  // empty request: straight to the payload leg
    }
    /// True if both legs completed; false if either leg failed.
    bool await_resume() const noexcept { return !op_.failed; }

   private:
    friend class FlowNetwork;
    RequestResponseAwaiter(FlowNetwork& net, NodeId requester, NodeId responder,
                           double request_bytes, double response_bytes,
                           TrafficClass response_cls) noexcept
        : response_bytes_(response_bytes), response_cls_(response_cls) {
      op_.step = &on_step;
      op_.self = this;
      op_.net = &net;
      op_.src = requester;
      op_.dst = responder;
      op_.bytes = request_bytes;
      op_.cls = TrafficClass::kControl;
    }
    static void on_step(FlowOp* op) {
      auto* self = static_cast<RequestResponseAwaiter*>(op->self);
      if (!op->failed && !self->response_started_) {
        self->begin_response();
        return;
      }
      op->cont.resume();  // done — or a leg failed: skip straight out
    }
    void begin_response() {
      response_started_ = true;
      const NodeId requester = op_.src;
      op_.src = op_.dst;
      op_.dst = requester;
      op_.bytes = response_bytes_;
      op_.cap = kUnlimitedRate;
      op_.cls = response_cls_;
      if (op_.bytes > 0.0) {
        op_.net->start_leg(&op_);
        return;
      }
      // Empty response after a real request: this runs from the request
      // leg's completion event, so resuming inline matches the old
      // synchronous no-op transfer.
      op_.cont.resume();
    }
    FlowOp op_;
    double response_bytes_;
    TrafficClass response_cls_;
    bool response_started_ = false;
  };

  /// Move `bytes` from src to dst; completes after one-way latency plus the
  /// time the (time-varying) fair-share rate needs to drain the flow.
  /// `rate_cap` bounds this flow's rate (e.g. a migration speed limit).
  TransferAwaiter transfer(NodeId src, NodeId dst, double bytes, TrafficClass cls,
                           double rate_cap = kUnlimitedRate) noexcept {
    return TransferAwaiter{*this, src, dst, bytes, cls, rate_cap};
  }

  /// Round trip: a small control request in one direction followed by a
  /// payload in the opposite direction. Used for pull-style chunk fetches.
  RequestResponseAwaiter request_response(NodeId requester, NodeId responder,
                                          double request_bytes, double response_bytes,
                                          TrafficClass response_cls) noexcept {
    return RequestResponseAwaiter{*this, requester, responder, request_bytes,
                                  response_bytes, response_cls};
  }

  // --- fault injection -----------------------------------------------------
  // Faults are ordinary state changes applied at the current virtual time;
  // they dirty the affected components through the same mechanism as flow
  // arrivals, so the incremental solver re-settles deterministically and
  // stays byte-identical to the full re-solve.

  /// Mark a node down (crash) or back up (reboot). Going down fails every
  /// live flow touching the node (their FlowOps are stepped with
  /// failed=true, un-sent bytes are uncounted) and rejects new flows until
  /// the node returns; going up wakes wait_node_up() waiters.
  void set_node_up(NodeId n, bool up);
  bool node_up(NodeId n) const noexcept { return nodes_[n].up; }
  /// Incarnation counter: bumped every time the node goes down. Lets a
  /// retry decide whether state staged on the node survived (same epoch)
  /// or was lost in a crash (epoch advanced).
  std::uint64_t node_epoch(NodeId n) const noexcept { return nodes_[n].epoch; }

  /// Suspend until the node is up (immediate when it already is). Intrusive
  /// waiter — no allocation.
  class [[nodiscard]] NodeUpAwaiter {
   public:
    bool await_ready() const noexcept { return net_->node_up(n_); }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      node_.bind(h);
      net_->up_waiters_[n_].push(&node_);
    }
    void await_resume() const noexcept {}

   private:
    friend class FlowNetwork;
    NodeUpAwaiter(FlowNetwork& net, NodeId n) noexcept : net_(&net), n_(n) {}
    FlowNetwork* net_;
    NodeId n_;
    sim::WaitNode node_;
  };
  NodeUpAwaiter wait_node_up(NodeId n) {
    if (up_waiters_.size() < nodes_.size()) up_waiters_.resize(nodes_.size());
    return NodeUpAwaiter{*this, n};
  }

  /// Multiplicatively scale a node's NIC capacities (degraded-rate window /
  /// slow receiver). Restore by applying the reciprocal. Dirties the
  /// components owning the node's NIC constraints so the next settle
  /// re-solves them.
  void scale_node_capacity(NodeId n, double egress_mult, double ingress_mult);
  /// Link flap: while any hold is active the node's NIC capacities read as
  /// zero (flows through it stall at rate 0 but stay queued). Hold-counted
  /// so overlapping flap windows nest.
  void set_link_flapped(NodeId n, bool flapped);
  bool link_flapped(NodeId n) const noexcept { return nodes_[n].flap_holds > 0; }

  // --- accounting ---------------------------------------------------------
  double traffic_bytes(TrafficClass cls) const noexcept {
    return traffic_[static_cast<std::size_t>(cls)];
  }
  double total_traffic_bytes() const noexcept;
  /// Zero all traffic counters (used to discount warm-up phases).
  void reset_traffic() noexcept;

  // --- introspection (tests, benches) -------------------------------------
  std::size_t active_flows() const noexcept { return live_flows_; }
  double current_rate_sum() const noexcept { return live_flows_ ? rate_sum_ : 0.0; }
  double flow_rate(NodeId src, NodeId dst) const noexcept;  // sum over matching flows
  /// Max-min solve epochs so far; lets tests assert that a burst of
  /// same-timestamp arrivals settles with exactly one recompute.
  std::uint64_t recompute_count() const noexcept { return recompute_count_; }
  /// True while an epoch-settle event is queued (arrivals not yet solved).
  bool settle_pending() const noexcept { return settle_pending_; }
  /// Flows ever started (engine-throughput metric for the scale sweeps).
  std::uint64_t flows_started() const noexcept { return flows_started_; }
  /// Cumulative component water-fills (escalated global solves count as 1).
  std::uint64_t solved_component_count() const noexcept { return solved_components_; }
  /// Cumulative flow re-solves; touched/recompute_count() is the average
  /// flows-re-solved-per-epoch the incremental solver is judged on.
  std::uint64_t touched_flow_count() const noexcept { return touched_flows_; }
  /// Epochs where a violated shared constraint forced a global solve.
  std::uint64_t escalation_count() const noexcept { return escalations_; }
  /// Epochs whose component membership came from the merge-only fast path
  /// (no split-risk member: unions across arrivals instead of the
  /// item-level rebuild). Tests assert it is exercised; the partition is
  /// provably identical either way.
  std::uint64_t membership_fast_epochs() const noexcept { return membership_fast_epochs_; }
  /// Live connected components right now (0 when idle).
  std::size_t component_count() const noexcept { return live_components_; }
  bool incremental_enabled() const noexcept { return incremental_; }
  /// Ablation toggle (also honoured from the ABLATE_INCREMENTAL env var at
  /// construction): off re-solves every component each epoch. Rates are
  /// byte-identical either way; only the work counters differ.
  void set_incremental(bool on) noexcept { incremental_ = on; }

  // --- epoch-coupled sharding ----------------------------------------------
  // Two auxiliary modes back the epoch-coupled shard executor (see
  // net/coupled_solver.h). They are duals of one trick: run the ordinary
  // single-shard solver on the ordinary global state, just split across
  // objects — so the allocation, the escalation decisions and the solver
  // counters are the single-shard ones by construction.
  //  * coupled SHARD mode (set_coupled): this network simulates one shard's
  //    events but never solves. Arrivals and completions are recorded as
  //    deltas; the shard driver ships them to the coordinator at the
  //    settle-epoch barrier and applies back the rates the coordinator's
  //    mirror solve produced (apply_external_rates).
  //  * MIRROR mode (set_mirror): this network belongs to the coordinator,
  //    holds every live flow of the experiment, and runs solve_epoch over
  //    them exactly as a single-shard run would — but never advances time,
  //    never projects completions and never steps ops.

  /// One recorded arrival, identified by the shard-local slot id.
  struct CoupledAdd {
    std::uint32_t slot;
    NodeId src, dst;
    double bytes, cap;
  };

  void set_coupled(bool on) noexcept { coupled_ = on; }
  /// True when this shard recorded deltas the coordinator has not seen.
  bool coupled_sync_pending() const noexcept { return coupled_sync_; }
  /// Drain this round's recorded deltas: adds in begin order, removals in
  /// completion order, plus the aggregated per-shared-constraint live-user
  /// deltas (the demand this shard's churn placed on each cross-shard
  /// constraint — what travels as ShardMessages).
  void take_coupled_delta(std::vector<CoupledAdd>& adds,
                          std::vector<std::uint32_t>& removes,
                          std::vector<std::pair<std::uint32_t, double>>& demand);
  /// Apply rates computed by the coordinator's mirror solve: advances flow
  /// progress to now, applies each (local slot, rate), refreshes the rate
  /// sum and re-arms the completion timer. Called once per sync round.
  void apply_external_rates(
      const std::vector<std::pair<std::uint32_t, double>>& rates);
  /// Earliest live completion projection this shard tracks (-1 when none).
  double next_completion_time() const noexcept { return completion_timer_t_; }
  double latency_s() const noexcept { return cfg_.latency_s; }

  void set_mirror(bool on) noexcept { mirror_ = on; }
  std::uint32_t mirror_add_flow(NodeId src, NodeId dst, double bytes, double cap);
  void mirror_remove_flow(std::uint32_t slot);
  void mirror_solve() { solve_epoch(); }
  /// Post-solve readback: the flows the last epoch re-rated, in publish
  /// order (group order, slot-ascending within a group).
  std::size_t solved_item_count() const noexcept { return items_.size(); }
  std::pair<std::uint32_t, double> solved_item(std::size_t i) const noexcept {
    return {items_[i].slot, items_[i].alloc};
  }
  /// Live users of a shared constraint (containment bookkeeping); exposed so
  /// the coordinator can cross-check the ShardMessage demand totals.
  std::uint32_t shared_user_count(std::uint32_t c) const noexcept {
    return c < shared_users_.size() ? shared_users_[c] : 0;
  }

 private:
  static constexpr std::uint32_t kNilIndex = 0xffffffffu;

  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    double remaining = 0;
    double rate = 0.0;
    double cap = kUnlimitedRate;
    double proj = kUnlimitedRate;  // projected completion (absolute time)
  };
  struct FlowSlot {
    Flow flow;
    // Continuation of the awaiting transfer op; stepped (via one zero-delay
    // event) when the flow completes. Replaces the per-transfer done Event.
    FlowOp* op = nullptr;
    std::uint32_t gen = 0;  // bumped on release; completion entries compare it
    std::uint32_t next_free = kNilIndex;
    bool in_use = false;
    // Position in items_ for the current solve pass (valid while solve_gen
    // matches solve_pass_gen_): lets the shared-constraint usage pass look
    // up a freshly solved rate without an O(slab) slot->item map rebuild.
    std::uint32_t item_idx = 0;
    std::uint64_t solve_gen = 0;
    // Constraint incidence, computed at arrival (rebuilt on topology
    // change): [egress(src), ingress(dst), fabric, uplink-up, uplink-down].
    std::uint32_t constraints[5] = {};
    std::uint8_t n_constraints = 0;
    std::uint32_t comp = kNilIndex;  // owning component; kNil until solved
    // Cached dense indices into the escalation arena (valid while
    // arena_bound_gen matches arena_gen_; see "persistent compact arena").
    std::uint32_t acidx[5] = {};
    std::uint64_t arena_bound_gen = 0;
  };
  struct Node {
    double egress_Bps;
    double ingress_Bps;
    SwitchGroupId group;
    // Fault state (see "fault injection" above).
    double egress_scale = 1.0;
    double ingress_scale = 1.0;
    std::uint32_t flap_holds = 0;
    bool up = true;
    std::uint64_t epoch = 0;  // bumped on every crash
  };
  struct Group {
    double uplink_Bps;
  };
  /// Component of the flows<->constraints incidence graph. Membership is
  /// implicit (flows point at components); only the live count and the
  /// dirty flag persist between epochs. `gen` survives slot reuse so stale
  /// NIC-owner entries can be detected instead of dirtying an innocent
  /// component that recycled the id.
  struct Component {
    std::uint32_t count = 0;     // live member flows
    std::uint32_t next_free = kNilIndex;
    std::uint32_t gen = 0;
    bool dirty = false;
    bool in_use = false;
    // Membership may have shrunk (a real departure) or was never
    // NIC-connected to begin with (escalated publish merges every live flow
    // into one component). Either way the merge-only membership fast path
    // is unsound for this component and the epoch falls back to the
    // item-level union-find rebuild, which re-splits it exactly.
    bool split_risk = false;
  };
  /// Lazily-invalidated projected completion; stale when the generation or
  /// the projection no longer matches the flow.
  struct CompEntry {
    double t;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct CompLater {
    bool operator()(const CompEntry& a, const CompEntry& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.slot > b.slot;
    }
  };

  std::uint32_t alloc_flow_slot();
  void release_flow_slot(std::uint32_t slot) noexcept;
  static std::uint64_t pair_key(NodeId src, NodeId dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  void apply_rate(Flow& f, double new_rate, std::uint32_t slot);
  void push_projection(Flow& f, std::uint32_t slot);
  /// Schedule the epoch-settle event if one is not already pending.
  void mark_dirty();
  void on_settle();

  /// Start one transfer leg for a frameless awaitable: loopback legs cost a
  /// timer only; network legs schedule begin_flow after the one-way latency.
  void start_leg(FlowOp* op);
  /// Register the op's flow with the solver (runs at flow-start time, after
  /// the latency delay): accounting, slot setup, epoch dirtying.
  void begin_flow(FlowOp* op);

  std::size_t constraint_space() const noexcept {
    return 2 * nodes_.size() + 1 + 2 * groups_.size();
  }
  void compute_incidence(FlowSlot& fs) noexcept;
  double constraint_cap(std::uint32_t c) const noexcept;
  std::uint32_t alloc_component();
  void release_component(std::uint32_t id) noexcept;
  void detach_from_component(FlowSlot& fs) noexcept;

  /// Tear down every live flow with an endpoint at `n` (crash): credit back
  /// un-transferred bytes, step the ops with failed=true, release the slots
  /// and re-settle.
  void fail_flows_at(NodeId n);
  /// Dirty the components owning node n's NIC constraints (capacity change).
  void dirty_node_components(NodeId n);

  void advance_to_now();
  void solve_epoch();
  void water_fill(std::size_t first_item, std::size_t n_items);
  void water_fill_escalated();
  void run_fill(std::size_t first_item, std::size_t n_items);
  void reset_arena();
  void schedule_completion();
  void on_completion_timer();

  sim::Simulator& sim_;
  FlowNetworkConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<Group> groups_;
  // Per-node reboot waiters (grown lazily by wait_node_up/set_node_up).
  std::vector<sim::WaiterList> up_waiters_;

  // Slab of flow slots. A flat vector: slots hold no non-movable members
  // anymore (the done Event became the op pointer) and no reference into the
  // slab is held across an alloc_flow_slot() call. Live slots are tracked in
  // a packed bitmap so the per-epoch passes (collect, shared-usage
  // validation, rate-sum refresh) walk live flows in canonical slot order
  // while word-skipping dead regions, instead of touching every slab slot.
  std::vector<FlowSlot> flow_slots_;
  util::DirtyBitmap live_bits_{0};
  std::uint32_t free_head_ = kNilIndex;
  std::size_t live_flows_ = 0;

  // Component slab (free-listed; see struct Component).
  std::vector<Component> comps_;
  std::uint32_t comp_free_ = kNilIndex;
  std::size_t live_components_ = 0;
  // NIC constraint -> (component, generation) that last owned it; arrivals
  // use it to dirty the components they may merge with. Entries whose
  // generation no longer matches are stale (owner dissolved) and ignored.
  std::vector<std::uint32_t> nic_owner_;
  std::vector<std::uint32_t> nic_owner_gen_;
  // Shared-constraint live user counts (containment test); indexed by
  // constraint id, only entries >= 2*nodes are maintained.
  std::vector<std::uint32_t> shared_users_;
  std::uint64_t topology_gen_ = 0;   // bumped by add_node/add_switch_group
  std::uint64_t solved_topology_gen_ = 0;

  double last_advance_ = 0.0;
  bool settle_pending_ = false;
  sim::Simulator::Timer settle_timer_;

  std::vector<CompEntry> comp_heap_;
  sim::Simulator::Timer completion_timer_;
  double completion_timer_t_ = -1.0;

  double rate_sum_ = 0.0;
  struct PairRate {
    double rate = 0.0;
    std::uint32_t count = 0;
  };
  std::unordered_map<std::uint64_t, PairRate> pair_rates_;

  bool incremental_ = true;
  bool trace_solver_ = false;  // HM_TRACE_SOLVER: per-epoch work to stderr

  // Epoch-coupled sharding state (see the public section above).
  bool coupled_ = false;   // shard mode: record deltas instead of solving
  bool mirror_ = false;    // mirror mode: solve only; no time, no projections
  bool coupled_sync_ = false;
  std::vector<CoupledAdd> coupled_adds_;
  std::vector<std::uint32_t> coupled_removes_;
  std::vector<std::pair<std::uint32_t, double>> coupled_demand_;  // raw (c, ±1)
  std::vector<std::uint64_t> demand_stamp_;  // take_coupled_delta aggregation
  std::vector<double> demand_val_;
  std::uint64_t demand_gen_ = 0;
  std::uint64_t recompute_count_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t solved_components_ = 0;
  std::uint64_t touched_flows_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t membership_fast_epochs_ = 0;
  double traffic_[kNumTrafficClasses] = {};

  // scratch buffers for the solver (avoid per-epoch allocations)
  struct SolverItem {
    Flow* f;
    std::uint32_t slot;
    double alloc;
    bool frozen;
    std::uint32_t uf_parent;   // union-find over affected items
    std::uint32_t prev_comp;   // component before this epoch (kNil = arrival)
    std::uint32_t cidx[5];     // compact constraint indices for one water-fill
    std::uint8_t n_cidx;
  };
  std::vector<SolverItem> items_;             // affected flows, slot order
  std::vector<SolverItem> items_scratch_;     // group-order permutation buffer
  std::vector<std::uint32_t> group_of_item_;  // dense component id per item
  std::vector<std::uint32_t> group_start_;    // group -> first index (+ total)
  std::vector<std::uint32_t> item_order_;     // counting-sort permutation
  std::vector<std::uint32_t> scatter_pos_;
  std::uint64_t solve_pass_gen_ = 0;       // validates FlowSlot::item_idx
  std::vector<double> usage_;              // per shared constraint: total rate
  std::vector<double> wf_cap_;             // water-fill: remaining capacity
  std::vector<std::uint32_t> wf_users_;    //   and unfrozen users, per constraint
  // Epoch-stamped constraint-id maps (never cleared, O(1) reuse). cmap_
  // holds per-component shared-user counts during a water-fill; citem_
  // doubles as union-find seed and compaction index.
  std::vector<std::uint32_t> cmap_;
  std::vector<std::uint64_t> cmap_epoch_;
  std::uint64_t cmap_gen_ = 0;
  std::vector<std::uint32_t> citem_;
  std::vector<std::uint64_t> citem_epoch_;
  std::uint64_t citem_gen_used_ = 0;
  std::vector<std::uint32_t> finished_scratch_;
  // Epoch-stamped previous-component -> representative-item map for the
  // merge-only membership fast path (indexed by component id; ids released
  // during the collect pass stay valid keys until publish re-allocates).
  std::vector<std::uint32_t> comp_map_;
  std::vector<std::uint64_t> comp_map_epoch_;
  std::uint64_t comp_map_gen_ = 0;

  // Persistent compact arena for the escalated global solve: dense
  // constraint indices assigned on first use and kept alive across epochs
  // (reset only on topology change), so the saturated lockstep regime does
  // not rebuild the compaction each escalation. Flow slots cache their
  // dense indices (acidx) under arena_gen_; per escalation only capacities
  // are reseeded and per-item user counts recounted.
  std::vector<std::uint32_t> arena_idx_;          // constraint -> dense index
  std::vector<std::uint32_t> arena_constraints_;  // dense index -> constraint
  std::uint64_t arena_gen_ = 1;                   // 0 marks unbound slots
};

}  // namespace hm::net
