// Flow-level network model with max-min fair bandwidth sharing.
//
// Models the Grid'5000-style testbed of the paper: every node has a GbE NIC
// (separate ingress/egress capacity) attached to a shared switch fabric with
// a finite aggregate capacity (the paper measured 117.5 MB/s per NIC and
// ~8 GB/s total on the Cisco Catalyst switch). Transfers are fluid flows;
// whenever a flow starts or finishes, rates are re-assigned by progressive
// filling (water-filling), which yields the max-min fair allocation subject
// to per-flow rate caps (e.g. QEMU's migration speed limit).
//
// This level of abstraction captures exactly the effects the paper's
// evaluation hinges on: pre-copy non-convergence when the dirty rate exceeds
// the NIC share, fabric saturation under 30 concurrent migrations, and
// contention between memory and storage transfer streams.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace hm::net {

using NodeId = std::uint32_t;

/// Category tags for traffic accounting; the evaluation section of the paper
/// reports network traffic broken down by what caused it.
enum class TrafficClass : std::uint8_t {
  kMemory,        // hypervisor memory pre-copy stream
  kStoragePush,   // source->destination chunk pushes (active phase)
  kStoragePull,   // destination<-source chunk pulls (passive phase)
  kRepoRead,      // base image chunks fetched from the repository
  kPvfsData,      // parallel file system I/O (pvfs-shared baseline)
  kAppComm,       // application communication (CM1 halo exchanges)
  kControl,       // small control messages (chunk lists, pull requests)
  kCount
};

constexpr std::size_t kNumTrafficClasses = static_cast<std::size_t>(TrafficClass::kCount);
const char* traffic_class_name(TrafficClass cls) noexcept;

constexpr double kUnlimitedRate = std::numeric_limits<double>::infinity();

struct FlowNetworkConfig {
  double fabric_Bps = 8.0e9;     // aggregate switch capacity
  double latency_s = 100e-6;     // one-way message latency (paper: ~0.1 ms)
  double loopback_Bps = 8.0e9;   // same-node transfers (not counted as traffic)
};

using SwitchGroupId = std::uint32_t;

class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& sim, FlowNetworkConfig cfg = {});
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Register an edge switch with the given uplink capacity to the core
  /// (both directions). Models cluster oversubscription: flows between
  /// nodes on different switches consume uplink bandwidth; flows within a
  /// switch do not. Group 0 always exists with an unlimited uplink.
  SwitchGroupId add_switch_group(double uplink_Bps);
  std::size_t switch_group_count() const noexcept { return groups_.size(); }

  /// Register a node with the given NIC capacities (bytes/second).
  NodeId add_node(double egress_Bps, double ingress_Bps, SwitchGroupId group = 0);
  NodeId add_node(double nic_Bps) { return add_node(nic_Bps, nic_Bps, 0); }
  NodeId add_node(double nic_Bps, SwitchGroupId group) {
    return add_node(nic_Bps, nic_Bps, group);
  }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  SwitchGroupId group_of(NodeId n) const noexcept { return nodes_[n].group; }

  /// Move `bytes` from src to dst; completes after one-way latency plus the
  /// time the (time-varying) fair-share rate needs to drain the flow.
  /// `rate_cap` bounds this flow's rate (e.g. a migration speed limit).
  sim::Task transfer(NodeId src, NodeId dst, double bytes, TrafficClass cls,
                     double rate_cap = kUnlimitedRate);

  /// Round trip: a small request in one direction followed by a payload in
  /// the other. Used for pull-style chunk fetches.
  sim::Task request_response(NodeId requester, NodeId responder, double request_bytes,
                             double response_bytes, TrafficClass response_cls);

  // --- accounting ---------------------------------------------------------
  double traffic_bytes(TrafficClass cls) const noexcept {
    return traffic_[static_cast<std::size_t>(cls)];
  }
  double total_traffic_bytes() const noexcept;
  /// Zero all traffic counters (used to discount warm-up phases).
  void reset_traffic() noexcept;

  // --- introspection (tests) ----------------------------------------------
  std::size_t active_flows() const noexcept { return flows_.size(); }
  double current_rate_sum() const noexcept;
  double flow_rate(NodeId src, NodeId dst) const noexcept;  // sum over matching flows

 private:
  struct Flow {
    std::uint64_t id;
    NodeId src;
    NodeId dst;
    double remaining;
    double rate = 0.0;
    double cap;
    TrafficClass cls;
    std::unique_ptr<sim::Event> done;
  };
  struct Node {
    double egress_Bps;
    double ingress_Bps;
    SwitchGroupId group;
  };
  struct Group {
    double uplink_Bps;
  };

  void advance_to_now();
  void recompute_rates();
  void reschedule_completion();
  void on_completion_timer();

  sim::Simulator& sim_;
  FlowNetworkConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<Group> groups_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Flow>> flows_;
  std::uint64_t next_flow_id_ = 1;
  double last_advance_ = 0.0;
  sim::Simulator::Timer completion_timer_;
  double traffic_[kNumTrafficClasses] = {};

  // scratch buffers for the water-filling solver (avoid per-call allocs)
  std::vector<double> cap_rem_;
  std::vector<std::uint32_t> cap_users_;
};

}  // namespace hm::net
