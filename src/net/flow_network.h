// Flow-level network model with max-min fair bandwidth sharing.
//
// Models the Grid'5000-style testbed of the paper: every node has a GbE NIC
// (separate ingress/egress capacity) attached to a shared switch fabric with
// a finite aggregate capacity (the paper measured 117.5 MB/s per NIC and
// ~8 GB/s total on the Cisco Catalyst switch). Transfers are fluid flows;
// whenever a flow starts or finishes, rates are re-assigned by progressive
// filling (water-filling), which yields the max-min fair allocation subject
// to per-flow rate caps (e.g. QEMU's migration speed limit).
//
// This level of abstraction captures exactly the effects the paper's
// evaluation hinges on: pre-copy non-convergence when the dirty rate exceeds
// the NIC share, fabric saturation under 30 concurrent migrations, and
// contention between memory and storage transfer streams.
//
// Engine notes (datacenter-scale sweeps):
//  * Epoch batching — flow arrivals at one virtual timestamp are coalesced
//    into a single deferred max-min solve (a zero-delay "settle" event), so
//    a burst of N chunk pushes costs one recompute instead of N. The solved
//    rates are identical because no virtual time passes inside the epoch.
//  * Flows live in a slab of slots recycled through a free list; the
//    completion event is an intrusive member, so starting a flow performs
//    no per-flow heap allocation in steady state.
//  * Completions come from a min-heap of projected finish times that is
//    invalidated lazily: entries are re-validated against the flow's
//    current projection when popped instead of being rescanned (the old
//    engine walked every flow after each event).
//  * flow_rate()/current_rate_sum() are maintained incrementally and cost
//    O(1) per query.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace hm::net {

using NodeId = std::uint32_t;

/// Category tags for traffic accounting; the evaluation section of the paper
/// reports network traffic broken down by what caused it.
enum class TrafficClass : std::uint8_t {
  kMemory,        // hypervisor memory pre-copy stream
  kStoragePush,   // source->destination chunk pushes (active phase)
  kStoragePull,   // destination<-source chunk pulls (passive phase)
  kRepoRead,      // base image chunks fetched from the repository
  kPvfsData,      // parallel file system I/O (pvfs-shared baseline)
  kAppComm,       // application communication (CM1 halo exchanges)
  kControl,       // small control messages (chunk lists, pull requests)
  kCount
};

constexpr std::size_t kNumTrafficClasses = static_cast<std::size_t>(TrafficClass::kCount);
const char* traffic_class_name(TrafficClass cls) noexcept;

constexpr double kUnlimitedRate = std::numeric_limits<double>::infinity();

struct FlowNetworkConfig {
  double fabric_Bps = 8.0e9;     // aggregate switch capacity
  double latency_s = 100e-6;     // one-way message latency (paper: ~0.1 ms)
  double loopback_Bps = 8.0e9;   // same-node transfers (not counted as traffic)
};

using SwitchGroupId = std::uint32_t;

class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& sim, FlowNetworkConfig cfg = {});
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Register an edge switch with the given uplink capacity to the core
  /// (both directions). Models cluster oversubscription: flows between
  /// nodes on different switches consume uplink bandwidth; flows within a
  /// switch do not. Group 0 always exists with an unlimited uplink.
  SwitchGroupId add_switch_group(double uplink_Bps);
  std::size_t switch_group_count() const noexcept { return groups_.size(); }

  /// Register a node with the given NIC capacities (bytes/second).
  NodeId add_node(double egress_Bps, double ingress_Bps, SwitchGroupId group = 0);
  NodeId add_node(double nic_Bps) { return add_node(nic_Bps, nic_Bps, 0); }
  NodeId add_node(double nic_Bps, SwitchGroupId group) {
    return add_node(nic_Bps, nic_Bps, group);
  }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  SwitchGroupId group_of(NodeId n) const noexcept { return nodes_[n].group; }

  /// Move `bytes` from src to dst; completes after one-way latency plus the
  /// time the (time-varying) fair-share rate needs to drain the flow.
  /// `rate_cap` bounds this flow's rate (e.g. a migration speed limit).
  sim::Task transfer(NodeId src, NodeId dst, double bytes, TrafficClass cls,
                     double rate_cap = kUnlimitedRate);

  /// Round trip: a small request in one direction followed by a payload in
  /// the other. Used for pull-style chunk fetches.
  sim::Task request_response(NodeId requester, NodeId responder, double request_bytes,
                             double response_bytes, TrafficClass response_cls);

  // --- accounting ---------------------------------------------------------
  double traffic_bytes(TrafficClass cls) const noexcept {
    return traffic_[static_cast<std::size_t>(cls)];
  }
  double total_traffic_bytes() const noexcept;
  /// Zero all traffic counters (used to discount warm-up phases).
  void reset_traffic() noexcept;

  // --- introspection (tests, benches) -------------------------------------
  std::size_t active_flows() const noexcept { return live_flows_; }
  double current_rate_sum() const noexcept { return live_flows_ ? rate_sum_ : 0.0; }
  double flow_rate(NodeId src, NodeId dst) const noexcept;  // sum over matching flows
  /// Max-min solver invocations so far; lets tests assert that a burst of
  /// same-timestamp arrivals settles with exactly one recompute.
  std::uint64_t recompute_count() const noexcept { return recompute_count_; }
  /// True while an epoch-settle event is queued (arrivals not yet solved).
  bool settle_pending() const noexcept { return settle_pending_; }
  /// Flows ever started (engine-throughput metric for the scale sweeps).
  std::uint64_t flows_started() const noexcept { return flows_started_; }

 private:
  static constexpr std::uint32_t kNilIndex = 0xffffffffu;

  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    double remaining = 0;
    double rate = 0.0;
    double cap = kUnlimitedRate;
    double proj = kUnlimitedRate;  // projected completion (absolute time)
    std::optional<sim::Event> done;  // intrusive; emplaced per use of the slot
  };
  struct FlowSlot {
    Flow flow;
    std::uint32_t gen = 0;  // bumped on release; completion entries compare it
    std::uint32_t next_free = kNilIndex;
    // Intrusive doubly-linked list of live slots, so advancing and solving
    // cost O(live flows), not O(peak slab size).
    std::uint32_t live_next = kNilIndex;
    std::uint32_t live_prev = kNilIndex;
    bool in_use = false;
  };
  struct Node {
    double egress_Bps;
    double ingress_Bps;
    SwitchGroupId group;
  };
  struct Group {
    double uplink_Bps;
  };
  /// Lazily-invalidated projected completion; stale when the generation or
  /// the projection no longer matches the flow.
  struct CompEntry {
    double t;
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct CompLater {
    bool operator()(const CompEntry& a, const CompEntry& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.slot > b.slot;
    }
  };

  std::uint32_t alloc_flow_slot();
  void release_flow_slot(std::uint32_t slot) noexcept;
  static std::uint64_t pair_key(NodeId src, NodeId dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  void apply_rate(Flow& f, double new_rate, std::uint32_t slot);
  void push_projection(Flow& f, std::uint32_t slot);
  /// Schedule the epoch-settle event if one is not already pending.
  void mark_dirty();
  void on_settle();

  void advance_to_now();
  void recompute_rates();
  void schedule_completion();
  void on_completion_timer();

  sim::Simulator& sim_;
  FlowNetworkConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<Group> groups_;

  // Slab of flow slots. A deque so the non-movable intrusive Event (and any
  // outstanding references into a slot) survive slab growth.
  std::deque<FlowSlot> flow_slots_;
  std::uint32_t free_head_ = kNilIndex;
  std::uint32_t live_head_ = kNilIndex;
  std::size_t live_flows_ = 0;

  double last_advance_ = 0.0;
  bool settle_pending_ = false;
  sim::Simulator::Timer settle_timer_;

  std::vector<CompEntry> comp_heap_;
  sim::Simulator::Timer completion_timer_;
  double completion_timer_t_ = -1.0;

  double rate_sum_ = 0.0;
  struct PairRate {
    double rate = 0.0;
    std::uint32_t count = 0;
  };
  std::unordered_map<std::uint64_t, PairRate> pair_rates_;

  std::uint64_t recompute_count_ = 0;
  std::uint64_t flows_started_ = 0;
  double traffic_[kNumTrafficClasses] = {};

  // scratch buffers for the water-filling solver (avoid per-call allocs)
  std::vector<double> cap_rem_;
  std::vector<std::uint32_t> cap_users_;
  struct SolverItem {
    Flow* f;
    std::uint32_t slot;
    double alloc;
    bool frozen;
    std::size_t constraints[5];
    std::size_t n_constraints;
  };
  std::vector<SolverItem> solver_items_;
  std::vector<std::uint32_t> finished_scratch_;
};

}  // namespace hm::net
