// Deterministic reduction for epoch-coupled sharding.
//
// When the shard partition spans a finite shared constraint (the fabric
// aggregate or a switch uplink), independent slices would each water-fill as
// if they owned the whole constraint. The epoch-coupled mode keeps the
// partition but centralizes every max-min decision in a CoupledCoordinator:
//
//  * Each shard's FlowNetwork runs in coupled mode (flow_network.h): it
//    simulates its slice's events, records flow arrivals/departures as
//    deltas, and never solves.
//  * The coordinator owns a MIRROR FlowNetwork with the identical topology
//    holding every live flow of the experiment. At each settle-epoch
//    barrier it applies the deltas in fixed shard order and runs the
//    ordinary solve_epoch on the mirror — the exact single-shard algorithm
//    (component scoping, containment, shared-constraint validation, the
//    escalation path) on the exact global state. The resulting rates are
//    mapped back to shard-local slots and applied before the barrier
//    releases.
//
// Byte-identity with shards=1 therefore does not rest on a re-derived
// distributed water-fill: the allocation, the escalation decisions and the
// solver work counters (components, flows re-solved, escalations) are the
// single-shard ones by construction. The only piece that must be
// reconstructed is the *epoch structure* at instants carrying both
// completions and arrivals, where a single-shard run solves once or twice
// depending on the global completion timer's scheduling history; the
// coordinator emulates that timer (see observe()/reduce()).
//
// The per-shared-constraint demand deltas each shard publishes travel as
// (t, shard, seq)-ordered ShardMessages; fold_demand_messages() folds them
// into running totals and cross-checks them against the mirror's live
// shared-user counts, so the message stream is a live consistency proof of
// the mirror, not dead weight.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "net/flow_network.h"
#include "sim/sharded.h"
#include "sim/simulator.h"

namespace hm::net {

class CoupledCoordinator {
 public:
  /// Everything one shard recorded while running one barrier instant.
  struct ShardDelta {
    std::vector<FlowNetwork::CoupledAdd> adds;
    std::vector<std::uint32_t> removes;
    std::vector<std::pair<std::uint32_t, double>> demand;  // (constraint, Δusers)
    bool sync = false;
  };

  /// The mirror starts empty: wire its topology (node for node identical to
  /// every shard replica, so constraint ids coincide) before the first
  /// reduce, via mirror().add_switch_group()/add_node().
  CoupledCoordinator(std::uint32_t shards, FlowNetworkConfig cfg);

  FlowNetwork& mirror() noexcept { return mirror_; }
  const FlowNetwork& mirror() const noexcept { return mirror_; }

  /// Barrier phase A, once per global event instant, BEFORE the shards run
  /// it: fold the per-shard completion projections (-1 = none) into the
  /// virtual global completion timer. A single-shard run keeps ONE timer at
  /// the minimum live projection and reschedules it only when that minimum
  /// changes; because shard state only changes at barrier instants, the
  /// minimum observed here changed — if it changed — while processing the
  /// previous instant, which is therefore the reschedule time.
  void observe(double t_star, const std::vector<double>& shard_completion_t);

  /// Barrier phase B: apply the deltas recorded at instant t_star in fixed
  /// shard order, run the mirror solve(s), append per-shard (local slot,
  /// rate) updates to rates_out[s]. Returns the number of mirror epochs run
  /// (0 when no shard had deltas).
  ///
  /// Epoch split: at an instant with both completions and arrivals a
  /// single-shard run solves TWICE iff its completion timer event precedes
  /// the arrival begin events — i.e. iff the timer was (re)scheduled
  /// strictly before the arrivals' legs were launched at t_star - latency
  /// (event seqs are globally monotone in schedule time). Then the timer's
  /// solve sees only the departures and the settle solves the arrivals.
  /// Otherwise (or with only one kind of delta) one combined solve runs.
  int reduce(double t_star, std::vector<ShardDelta>& deltas,
             std::vector<std::vector<std::pair<std::uint32_t, double>>>& rates_out);

  /// Fold this round's demand ShardMessages ((t, shard, seq)-sorted; payload
  /// = constraint id, value = Δusers) into the running totals and verify
  /// them against the mirror's shared-user counts. Returns false on drift.
  bool fold_demand_messages(const std::vector<sim::ShardMessage>& inbox);

  std::uint64_t mirror_epochs() const noexcept { return mirror_epochs_; }
  std::uint64_t demand_messages() const noexcept { return demand_messages_; }
  bool demand_consistent() const noexcept { return demand_consistent_; }

 private:
  void apply_epoch(std::vector<ShardDelta>& deltas, bool removals, bool adds,
                   std::vector<std::vector<std::pair<std::uint32_t, double>>>& rates_out);

  sim::Simulator mirror_sim_;  // never stepped; the mirror needs a clock ref
  FlowNetwork mirror_;
  const double latency_s_;
  // Slot translation, maintained in delta-application order (slots recycle
  // on both sides; removals always precede re-adds within a round).
  std::vector<std::vector<std::uint32_t>> mirror_of_;  // [shard][local] -> mirror
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owner_of_;  // mirror -> (shard, local)
  // Virtual global completion timer: current target and the instant it was
  // last (re)scheduled at.
  double ctimer_t_ = -1.0;
  double ctimer_set_t_ = -std::numeric_limits<double>::infinity();
  double prev_t_ = -std::numeric_limits<double>::infinity();
  std::vector<double> demand_total_;  // per constraint, folded from messages
  std::uint64_t mirror_epochs_ = 0;
  std::uint64_t demand_messages_ = 0;
  bool demand_consistent_ = true;
};

}  // namespace hm::net
