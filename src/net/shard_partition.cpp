#include "net/shard_partition.h"

#include <algorithm>
#include <numeric>

namespace hm::net {

namespace {

constexpr std::uint32_t kNil = 0xffffffffu;

std::uint32_t find_root(std::vector<std::uint32_t>& parent, std::uint32_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

}  // namespace

ShardAssignment partition_items(
    std::size_t n_items, std::size_t n_nodes,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
    std::uint32_t bins) {
  ShardAssignment out;
  out.shard_of_item.assign(n_items, 0);
  if (n_items == 0) return out;
  if (bins == 0) bins = 1;

  // Union-find over items, linked through their nodes. Roots are driven to
  // minimal item indices so component identity is canonical.
  std::vector<std::uint32_t> parent(n_items);
  std::iota(parent.begin(), parent.end(), 0u);
  std::vector<std::uint32_t> node_item(n_nodes, kNil);
  for (const auto& [item, node] : edges) {
    if (item >= n_items || node >= n_nodes) continue;
    if (node_item[node] == kNil) {
      node_item[node] = item;
      continue;
    }
    std::uint32_t ra = find_root(parent, item);
    std::uint32_t rb = find_root(parent, node_item[node]);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }

  // Dense component ids in ascending-minimal-item order (roots are minimal,
  // and we scan items ascending, so first-seen order is canonical).
  std::vector<std::uint32_t> comp_of_item(n_items);
  std::vector<std::uint32_t> comp_weight;
  for (std::uint32_t i = 0; i < n_items; ++i) {
    const std::uint32_t r = find_root(parent, i);
    if (r == i) {
      comp_of_item[i] = static_cast<std::uint32_t>(comp_weight.size());
      comp_weight.push_back(0);
    } else {
      comp_of_item[i] = comp_of_item[r];
    }
    ++comp_weight[comp_of_item[i]];
  }
  out.components = static_cast<std::uint32_t>(comp_weight.size());

  // Greedy balanced packing: heaviest component first (ties: lower minimal
  // item, i.e. lower component id), into the least-loaded bin (ties: lower
  // bin id). Deterministic and within 4/3 of optimal makespan.
  std::vector<std::uint32_t> order(comp_weight.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return comp_weight[a] > comp_weight[b];
  });
  std::vector<std::uint64_t> load(bins, 0);
  std::vector<std::uint32_t> bin_of_comp(comp_weight.size(), 0);
  for (const std::uint32_t c : order) {
    std::uint32_t best = 0;
    for (std::uint32_t b = 1; b < bins; ++b)
      if (load[b] < load[best]) best = b;
    bin_of_comp[c] = best;
    load[best] += comp_weight[c];
  }
  for (std::uint32_t i = 0; i < n_items; ++i)
    out.shard_of_item[i] = bin_of_comp[comp_of_item[i]];
  for (std::uint32_t b = 0; b < bins; ++b)
    if (load[b] > 0) ++out.bins_used;
  return out;
}

}  // namespace hm::net
