#include "net/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hm::net {

namespace {
// Rates are O(1e6..1e9) B/s and transfers O(1e3..1e10) B, so byte-scale
// epsilons are far below anything meaningful while absorbing FP rounding.
constexpr double kEpsBytes = 1e-3;   // flows below this are complete
constexpr double kEpsRate = 1.0;     // rates below 1 B/s are "saturated"

bool flow_is_done(double remaining, double rate) noexcept {
  return remaining <= kEpsBytes || (rate > kEpsRate && remaining / rate < 1e-9);
}
}  // namespace

const char* traffic_class_name(TrafficClass cls) noexcept {
  switch (cls) {
    case TrafficClass::kMemory: return "memory";
    case TrafficClass::kStoragePush: return "storage-push";
    case TrafficClass::kStoragePull: return "storage-pull";
    case TrafficClass::kRepoRead: return "repo-read";
    case TrafficClass::kPvfsData: return "pvfs-data";
    case TrafficClass::kAppComm: return "app-comm";
    case TrafficClass::kControl: return "control";
    case TrafficClass::kCount: break;
  }
  return "?";
}

FlowNetwork::FlowNetwork(sim::Simulator& sim, FlowNetworkConfig cfg)
    : sim_(sim), cfg_(cfg) {
  groups_.push_back(Group{kUnlimitedRate});  // group 0: flat network default
}

SwitchGroupId FlowNetwork::add_switch_group(double uplink_Bps) {
  groups_.push_back(Group{uplink_Bps});
  return static_cast<SwitchGroupId>(groups_.size() - 1);
}

NodeId FlowNetwork::add_node(double egress_Bps, double ingress_Bps, SwitchGroupId group) {
  assert(group < groups_.size());
  nodes_.push_back(Node{egress_Bps, ingress_Bps, group});
  return static_cast<NodeId>(nodes_.size() - 1);
}

double FlowNetwork::total_traffic_bytes() const noexcept {
  double s = 0;
  for (double t : traffic_) s += t;
  return s;
}

void FlowNetwork::reset_traffic() noexcept {
  for (double& t : traffic_) t = 0;
}

double FlowNetwork::flow_rate(NodeId src, NodeId dst) const noexcept {
  const auto it = pair_rates_.find(pair_key(src, dst));
  return it == pair_rates_.end() ? 0.0 : it->second.rate;
}

std::uint32_t FlowNetwork::alloc_flow_slot() {
  if (free_head_ != kNilIndex) {
    const std::uint32_t slot = free_head_;
    free_head_ = flow_slots_[slot].next_free;
    return slot;
  }
  flow_slots_.emplace_back();
  return static_cast<std::uint32_t>(flow_slots_.size() - 1);
}

void FlowNetwork::release_flow_slot(std::uint32_t slot) noexcept {
  FlowSlot& fs = flow_slots_[slot];
  Flow& f = fs.flow;
  auto it = pair_rates_.find(pair_key(f.src, f.dst));
  if (it != pair_rates_.end()) {
    it->second.rate -= f.rate;
    if (--it->second.count == 0) pair_rates_.erase(it);  // also resets FP dust
  }
  f.done.reset();
  fs.in_use = false;
  ++fs.gen;
  if (fs.live_prev != kNilIndex)
    flow_slots_[fs.live_prev].live_next = fs.live_next;
  else
    live_head_ = fs.live_next;
  if (fs.live_next != kNilIndex) flow_slots_[fs.live_next].live_prev = fs.live_prev;
  fs.live_next = fs.live_prev = kNilIndex;
  fs.next_free = free_head_;
  free_head_ = slot;
  --live_flows_;
}

void FlowNetwork::apply_rate(Flow& f, double new_rate, std::uint32_t slot) {
  if (new_rate != f.rate) {
    auto& pr = pair_rates_[pair_key(f.src, f.dst)];
    pr.rate += new_rate - f.rate;
    f.rate = new_rate;
    push_projection(f, slot);
  }
  rate_sum_ += new_rate;
}

void FlowNetwork::push_projection(Flow& f, std::uint32_t slot) {
  f.proj = f.rate > kEpsRate ? sim_.now() + f.remaining / f.rate : kUnlimitedRate;
  if (!std::isfinite(f.proj)) return;  // stalled flows carry no completion entry
  comp_heap_.push_back(CompEntry{f.proj, slot, flow_slots_[slot].gen});
  std::push_heap(comp_heap_.begin(), comp_heap_.end(), CompLater{});
}

void FlowNetwork::mark_dirty() {
  if (settle_pending_) return;
  settle_pending_ = true;
  settle_timer_ = sim_.schedule(0.0, [this] { on_settle(); });
}

void FlowNetwork::on_settle() {
  settle_pending_ = false;
  advance_to_now();
  recompute_rates();
  schedule_completion();
}

sim::Task FlowNetwork::transfer(NodeId src, NodeId dst, double bytes, TrafficClass cls,
                                double rate_cap) {
  if (bytes <= 0) co_return;
  if (src == dst) {
    // Local copy: costs loopback time, never leaves the node, not counted
    // as network traffic.
    co_await sim_.delay(bytes / cfg_.loopback_Bps);
    co_return;
  }
  assert(src < nodes_.size() && dst < nodes_.size());
  co_await sim_.delay(cfg_.latency_s);

  traffic_[static_cast<std::size_t>(cls)] += bytes;

  advance_to_now();
  const std::uint32_t slot = alloc_flow_slot();
  FlowSlot& fs = flow_slots_[slot];
  fs.in_use = true;
  fs.live_prev = kNilIndex;
  fs.live_next = live_head_;
  if (live_head_ != kNilIndex) flow_slots_[live_head_].live_prev = slot;
  live_head_ = slot;
  Flow& f = fs.flow;
  f.src = src;
  f.dst = dst;
  f.remaining = bytes;
  f.rate = 0.0;
  f.cap = rate_cap;
  f.proj = kUnlimitedRate;
  f.done.emplace(sim_);
  ++pair_rates_[pair_key(src, dst)].count;
  ++live_flows_;
  ++flows_started_;
  // Epoch batching: the max-min solve is deferred to a zero-delay settle
  // event, so every other arrival in this virtual instant shares it. The
  // flow carries rate 0 for zero virtual time, which integrates to nothing.
  mark_dirty();

  sim::Event& done = *f.done;  // outlives the slot reference below
  co_await done.wait();
}

sim::Task FlowNetwork::request_response(NodeId requester, NodeId responder,
                                        double request_bytes, double response_bytes,
                                        TrafficClass response_cls) {
  co_await transfer(requester, responder, request_bytes, TrafficClass::kControl);
  co_await transfer(responder, requester, response_bytes, response_cls);
}

void FlowNetwork::advance_to_now() {
  const double now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0) {
    for (std::uint32_t s = live_head_; s != kNilIndex; s = flow_slots_[s].live_next) {
      Flow& f = flow_slots_[s].flow;
      f.remaining -= f.rate * dt;
      if (f.remaining < 0) f.remaining = 0;
    }
  }
  last_advance_ = now;
}

// Progressive filling: raise the rate of every unfrozen flow uniformly until
// some constraint (NIC egress/ingress, fabric, per-flow cap) saturates;
// freeze the flows bound by it; repeat. Yields the max-min fair allocation.
void FlowNetwork::recompute_rates() {
  ++recompute_count_;
  const std::size_t n = nodes_.size();
  const std::size_t g = groups_.size();
  // Constraint layout: [0, n) egress, [n, 2n) ingress, [2n] fabric,
  // [2n+1, 2n+1+g) switch uplink (up), [2n+1+g, 2n+1+2g) uplink (down).
  const std::size_t up_base = 2 * n + 1;
  const std::size_t down_base = up_base + g;
  cap_rem_.assign(down_base + g, 0.0);
  cap_users_.assign(down_base + g, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cap_rem_[i] = nodes_[i].egress_Bps;
    cap_rem_[n + i] = nodes_[i].ingress_Bps;
  }
  cap_rem_[2 * n] = cfg_.fabric_Bps;
  for (std::size_t i = 0; i < g; ++i) {
    cap_rem_[up_base + i] = groups_[i].uplink_Bps;
    cap_rem_[down_base + i] = groups_[i].uplink_Bps;
  }

  std::vector<SolverItem>& items = solver_items_;
  items.clear();
  items.reserve(live_flows_);
  for (std::uint32_t slot = live_head_; slot != kNilIndex;
       slot = flow_slots_[slot].live_next) {
    Flow& f = flow_slots_[slot].flow;
    SolverItem it{&f, slot, 0.0, false, {}, 0};
    it.constraints[it.n_constraints++] = f.src;
    it.constraints[it.n_constraints++] = n + f.dst;
    it.constraints[it.n_constraints++] = 2 * n;
    const SwitchGroupId gs = nodes_[f.src].group;
    const SwitchGroupId gd = nodes_[f.dst].group;
    if (gs != gd) {
      it.constraints[it.n_constraints++] = up_base + gs;
      it.constraints[it.n_constraints++] = down_base + gd;
    }
    for (std::size_t c = 0; c < it.n_constraints; ++c) ++cap_users_[it.constraints[c]];
    items.push_back(it);
  }

  std::size_t unfrozen = items.size();
  while (unfrozen > 0) {
    // Smallest uniform increment that saturates a constraint or a flow cap.
    double inc = kUnlimitedRate;
    for (std::size_t c = 0; c < cap_rem_.size(); ++c) {
      if (cap_users_[c] > 0 && std::isfinite(cap_rem_[c]))
        inc = std::min(inc, cap_rem_[c] / cap_users_[c]);
    }
    for (const SolverItem& it : items) {
      if (!it.frozen && std::isfinite(it.f->cap))
        inc = std::min(inc, it.f->cap - it.alloc);
    }
    if (!std::isfinite(inc)) break;  // no binding constraint (shouldn't happen)
    if (inc < 0) inc = 0;

    for (SolverItem& it : items) {
      if (it.frozen) continue;
      it.alloc += inc;
      for (std::size_t c = 0; c < it.n_constraints; ++c) cap_rem_[it.constraints[c]] -= inc;
    }
    // Freeze flows whose cap is met or that cross a saturated constraint.
    bool froze_any = false;
    for (SolverItem& it : items) {
      if (it.frozen) continue;
      const bool cap_hit = std::isfinite(it.f->cap) && it.alloc >= it.f->cap - kEpsRate;
      bool constraint_hit = false;
      for (std::size_t c = 0; c < it.n_constraints; ++c) {
        if (cap_rem_[it.constraints[c]] <= kEpsRate) {
          constraint_hit = true;
          break;
        }
      }
      if (cap_hit || constraint_hit) {
        it.frozen = true;
        froze_any = true;
        --unfrozen;
        for (std::size_t c = 0; c < it.n_constraints; ++c) --cap_users_[it.constraints[c]];
      }
    }
    if (!froze_any && inc <= kEpsRate) break;  // numerical safety
  }

  // Publish: incremental pair-rate maintenance, fresh (drift-free) rate sum,
  // and new completion projections only for flows whose rate changed.
  rate_sum_ = 0.0;
  for (SolverItem& it : items) apply_rate(*it.f, it.alloc, it.slot);
}

void FlowNetwork::schedule_completion() {
  // Purge stale heads (finished flows or superseded projections), then make
  // sure the single completion timer tracks the earliest live projection.
  while (!comp_heap_.empty()) {
    const CompEntry& top = comp_heap_.front();
    const FlowSlot& fs = flow_slots_[top.slot];
    if (fs.in_use && fs.gen == top.gen && top.t == fs.flow.proj) break;
    std::pop_heap(comp_heap_.begin(), comp_heap_.end(), CompLater{});
    comp_heap_.pop_back();
  }
  if (comp_heap_.empty()) {
    completion_timer_.cancel();
    completion_timer_t_ = -1.0;
    return;
  }
  const double t = comp_heap_.front().t;
  if (completion_timer_.active() && completion_timer_t_ == t) return;
  completion_timer_.cancel();
  completion_timer_ = sim_.schedule_at(t, [this] { on_completion_timer(); });
  completion_timer_t_ = t;
}

void FlowNetwork::on_completion_timer() {
  advance_to_now();
  if (settle_pending_) {
    // This solve will cover any arrivals queued behind us in this instant.
    settle_timer_.cancel();
    settle_pending_ = false;
  }
  finished_scratch_.clear();
  while (!comp_heap_.empty()) {
    const CompEntry top = comp_heap_.front();
    const FlowSlot& fs = flow_slots_[top.slot];
    const bool stale = !fs.in_use || fs.gen != top.gen || top.t != fs.flow.proj;
    if (!stale && top.t > sim_.now()) break;
    std::pop_heap(comp_heap_.begin(), comp_heap_.end(), CompLater{});
    comp_heap_.pop_back();
    if (stale) continue;
    Flow& f = flow_slots_[top.slot].flow;
    if (flow_is_done(f.remaining, f.rate) ||
        (f.rate > kEpsRate && sim_.now() + f.remaining / f.rate <= sim_.now())) {
      // Done, or the residue is below the clock's resolution at this
      // magnitude (re-projecting would spin on the same timestamp).
      finished_scratch_.push_back(top.slot);
      f.proj = -1.0;  // no entry can match: duplicates turn stale immediately
    } else {
      // Projection drifted (FP residue): re-project from current state.
      push_projection(f, top.slot);
    }
  }
  // set() only enqueues wakeups, so firing before the recompute is
  // equivalent to after it — but the events must fire while their slots
  // are still alive, and the slots must be free before the solve.
  for (std::uint32_t slot : finished_scratch_) {
    flow_slots_[slot].flow.done->set();
    release_flow_slot(slot);
  }
  recompute_rates();
  schedule_completion();
}

}  // namespace hm::net
