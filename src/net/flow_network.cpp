#include "net/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hm::net {

namespace {
// Rates are O(1e6..1e9) B/s and transfers O(1e3..1e10) B, so byte-scale
// epsilons are far below anything meaningful while absorbing FP rounding.
constexpr double kEpsBytes = 1e-3;   // flows below this are complete
constexpr double kEpsRate = 1.0;     // rates below 1 B/s are "saturated"

bool flow_is_done(double remaining, double rate) noexcept {
  return remaining <= kEpsBytes || (rate > kEpsRate && remaining / rate < 1e-9);
}

bool incremental_default() noexcept {
  const char* env = std::getenv("ABLATE_INCREMENTAL");
  if (!env) return true;
  return !(std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
           std::strcmp(env, "false") == 0);
}
}  // namespace

const char* traffic_class_name(TrafficClass cls) noexcept {
  switch (cls) {
    case TrafficClass::kMemory: return "memory";
    case TrafficClass::kStoragePush: return "storage-push";
    case TrafficClass::kStoragePull: return "storage-pull";
    case TrafficClass::kRepoRead: return "repo-read";
    case TrafficClass::kPvfsData: return "pvfs-data";
    case TrafficClass::kAppComm: return "app-comm";
    case TrafficClass::kControl: return "control";
    case TrafficClass::kCount: break;
  }
  return "?";
}

FlowNetwork::FlowNetwork(sim::Simulator& sim, FlowNetworkConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      incremental_(cfg.incremental < 0 ? incremental_default() : cfg.incremental != 0),
      trace_solver_(std::getenv("HM_TRACE_SOLVER") != nullptr) {
  groups_.push_back(Group{kUnlimitedRate});  // group 0: flat network default
  pair_rates_.reserve(64);
}

SwitchGroupId FlowNetwork::add_switch_group(double uplink_Bps) {
  groups_.push_back(Group{uplink_Bps});
  ++topology_gen_;
  return static_cast<SwitchGroupId>(groups_.size() - 1);
}

NodeId FlowNetwork::add_node(double egress_Bps, double ingress_Bps, SwitchGroupId group) {
  assert(group < groups_.size());
  nodes_.push_back(Node{egress_Bps, ingress_Bps, group});
  ++topology_gen_;
  return static_cast<NodeId>(nodes_.size() - 1);
}

double FlowNetwork::total_traffic_bytes() const noexcept {
  double s = 0;
  for (double t : traffic_) s += t;
  return s;
}

void FlowNetwork::reset_traffic() noexcept {
  for (double& t : traffic_) t = 0;
}

double FlowNetwork::flow_rate(NodeId src, NodeId dst) const noexcept {
  const auto it = pair_rates_.find(pair_key(src, dst));
  return it == pair_rates_.end() ? 0.0 : it->second.rate;
}

std::uint32_t FlowNetwork::alloc_flow_slot() {
  if (free_head_ != kNilIndex) {
    const std::uint32_t slot = free_head_;
    free_head_ = flow_slots_[slot].next_free;
    return slot;
  }
  flow_slots_.emplace_back();
  live_bits_.grow(flow_slots_.size());
  return static_cast<std::uint32_t>(flow_slots_.size() - 1);
}

// --- constraint incidence ----------------------------------------------------

double FlowNetwork::constraint_cap(std::uint32_t c) const noexcept {
  const std::size_t n = nodes_.size();
  if (c < n) {
    const Node& nd = nodes_[c];
    return nd.flap_holds ? 0.0 : nd.egress_Bps * nd.egress_scale;
  }
  if (c < 2 * n) {
    const Node& nd = nodes_[c - n];
    return nd.flap_holds ? 0.0 : nd.ingress_Bps * nd.ingress_scale;
  }
  if (c == 2 * n) return cfg_.fabric_Bps;
  const std::size_t g = groups_.size();
  const std::size_t up_base = 2 * n + 1;
  if (c < up_base + g) return groups_[c - up_base].uplink_Bps;
  return groups_[c - up_base - g].uplink_Bps;
}

void FlowNetwork::compute_incidence(FlowSlot& fs) noexcept {
  const std::size_t n = nodes_.size();
  const std::size_t g = groups_.size();
  const Flow& f = fs.flow;
  fs.arena_bound_gen = 0;  // constraint set changed: stale arena indices
  // Local constraints first (component partitioning only looks at [0], [1]).
  fs.n_constraints = 0;
  fs.constraints[fs.n_constraints++] = f.src;
  fs.constraints[fs.n_constraints++] = static_cast<std::uint32_t>(n + f.dst);
  fs.constraints[fs.n_constraints++] = static_cast<std::uint32_t>(2 * n);
  const SwitchGroupId gs = nodes_[f.src].group;
  const SwitchGroupId gd = nodes_[f.dst].group;
  if (gs != gd) {
    fs.constraints[fs.n_constraints++] = static_cast<std::uint32_t>(2 * n + 1 + gs);
    fs.constraints[fs.n_constraints++] = static_cast<std::uint32_t>(2 * n + 1 + g + gd);
  }
  if (shared_users_.size() < constraint_space()) shared_users_.resize(constraint_space(), 0);
}

std::uint32_t FlowNetwork::alloc_component() {
  std::uint32_t id;
  if (comp_free_ != kNilIndex) {
    id = comp_free_;
    comp_free_ = comps_[id].next_free;
  } else {
    comps_.emplace_back();
    id = static_cast<std::uint32_t>(comps_.size() - 1);
  }
  Component& c = comps_[id];
  c.count = 0;
  c.next_free = kNilIndex;
  ++c.gen;  // invalidates NIC-owner entries from previous occupants
  c.dirty = false;
  c.in_use = true;
  c.split_risk = false;
  ++live_components_;
  return id;
}

void FlowNetwork::release_component(std::uint32_t id) noexcept {
  comps_[id].in_use = false;
  comps_[id].next_free = comp_free_;
  comp_free_ = id;
  --live_components_;
}

void FlowNetwork::detach_from_component(FlowSlot& fs) noexcept {
  if (fs.comp == kNilIndex) return;
  Component& c = comps_[fs.comp];
  c.dirty = true;
  if (--c.count == 0) release_component(fs.comp);
  fs.comp = kNilIndex;
}

void FlowNetwork::release_flow_slot(std::uint32_t slot) noexcept {
  FlowSlot& fs = flow_slots_[slot];
  Flow& f = fs.flow;
  if (!mirror_) {
    auto it = pair_rates_.find(pair_key(f.src, f.dst));
    if (it != pair_rates_.end()) {
      if (--it->second.count == 0) {
        // Keep the node (steady-state re-use of the pair never re-allocates)
        // but pin the rate to exactly zero, which also resets FP dust.
        it->second.rate = 0.0;
      } else {
        it->second.rate -= f.rate;
      }
    }
  }
  // The departure dirties its component so the survivors get re-solved —
  // and may split it, so the merge-only membership fast path is off the
  // table until the next item-level rebuild re-derives the partition.
  if (fs.comp != kNilIndex) comps_[fs.comp].split_risk = true;
  detach_from_component(fs);
  for (std::uint8_t k = 2; k < fs.n_constraints; ++k) {
    if (fs.constraints[k] < shared_users_.size()) --shared_users_[fs.constraints[k]];
    if (coupled_) coupled_demand_.push_back({fs.constraints[k], -1.0});
  }
  fs.op = nullptr;
  fs.in_use = false;
  ++fs.gen;
  live_bits_.reset(slot);
  fs.next_free = free_head_;
  free_head_ = slot;
  --live_flows_;
}

void FlowNetwork::apply_rate(Flow& f, double new_rate, std::uint32_t slot) {
  if (new_rate != f.rate) {
    if (mirror_) {
      // The mirror only needs the rate itself: projections, completion
      // entries and per-pair introspection belong to the shard replicas.
      f.rate = new_rate;
      return;
    }
    auto& pr = pair_rates_[pair_key(f.src, f.dst)];
    pr.rate += new_rate - f.rate;
    f.rate = new_rate;
    push_projection(f, slot);
  }
}

void FlowNetwork::push_projection(Flow& f, std::uint32_t slot) {
  f.proj = f.rate > kEpsRate ? sim_.now() + f.remaining / f.rate : kUnlimitedRate;
  if (!std::isfinite(f.proj)) return;  // stalled flows carry no completion entry
  comp_heap_.push_back(CompEntry{f.proj, slot, flow_slots_[slot].gen});
  std::push_heap(comp_heap_.begin(), comp_heap_.end(), CompLater{});
}

void FlowNetwork::mark_dirty() {
  if (settle_pending_) return;
  settle_pending_ = true;
  // Fast-lane push, but cancellable: a completion timer firing in the same
  // instant retracts the settle because its own solve covers the epoch.
  settle_timer_ = sim_.post_cancellable(
      [](void* net, void*) { static_cast<FlowNetwork*>(net)->on_settle(); }, this);
}

void FlowNetwork::on_settle() {
  settle_pending_ = false;
  advance_to_now();
  solve_epoch();
  schedule_completion();
}

void FlowNetwork::start_leg(FlowOp* op) {
  assert(op->bytes > 0);
  if (op->src == op->dst) {
    // Local copy: costs loopback time, never leaves the node, not counted
    // as network traffic.
    sim_.schedule(op->bytes / cfg_.loopback_Bps, [op] { op->step(op); });
    return;
  }
  assert(op->src < nodes_.size() && op->dst < nodes_.size());
  sim_.schedule(cfg_.latency_s, [this, op] { begin_flow(op); });
}

void FlowNetwork::begin_flow(FlowOp* op) {
  if (!nodes_[op->src].up || !nodes_[op->dst].up) {
    // An endpoint crashed before the leg's latency elapsed: the flow never
    // materializes and its bytes are never counted. Step through the same
    // zero-delay event a completion would use.
    op->failed = true;
    sim_.post([](void* p, void*) { auto* o = static_cast<FlowOp*>(p); o->step(o); }, op);
    return;
  }
  traffic_[static_cast<std::size_t>(op->cls)] += op->bytes;

  advance_to_now();
  const std::uint32_t slot = alloc_flow_slot();
  FlowSlot& fs = flow_slots_[slot];
  fs.in_use = true;
  fs.op = op;
  live_bits_.set(slot);
  Flow& f = fs.flow;
  f.src = op->src;
  f.dst = op->dst;
  f.remaining = op->bytes;
  f.rate = 0.0;
  f.cap = op->cap;
  f.proj = kUnlimitedRate;
  fs.comp = kNilIndex;  // affected at the next settle (comp == nil)
  compute_incidence(fs);
  for (std::uint8_t k = 2; k < fs.n_constraints; ++k) ++shared_users_[fs.constraints[k]];
  // The arrival can merge with any component reachable through its
  // endpoints: dirty whatever currently owns those NIC constraints. The
  // generation check rejects entries whose owner has dissolved — a live
  // clean component always has fresh entries for all its NIC constraints
  // (its last publish wrote them and nothing else may touch them).
  const std::size_t nn = nodes_.size();
  if (nic_owner_.size() < 2 * nn) {
    nic_owner_.resize(2 * nn, kNilIndex);
    nic_owner_gen_.resize(2 * nn, 0);
  }
  for (int k = 0; k < 2; ++k) {
    const std::uint32_t c = fs.constraints[k];
    const std::uint32_t owner = nic_owner_[c];
    if (owner != kNilIndex && comps_[owner].in_use &&
        comps_[owner].gen == nic_owner_gen_[c])
      comps_[owner].dirty = true;
  }
  ++pair_rates_[pair_key(f.src, f.dst)].count;
  ++live_flows_;
  ++flows_started_;
  if (coupled_) {
    // Epoch-coupled shard mode: the solve happens in the coordinator's
    // mirror. Record the arrival and the demand it places on cross-shard
    // constraints; rates come back through apply_external_rates.
    coupled_adds_.push_back(CoupledAdd{slot, f.src, f.dst, op->bytes, f.cap});
    for (std::uint8_t k = 2; k < fs.n_constraints; ++k)
      coupled_demand_.push_back({fs.constraints[k], +1.0});
    coupled_sync_ = true;
    return;
  }
  // Epoch batching: the max-min solve is deferred to a zero-delay settle
  // event, so every other arrival in this virtual instant shares it. The
  // flow carries rate 0 for zero virtual time, which integrates to nothing.
  mark_dirty();
}

// --- fault injection ---------------------------------------------------------

void FlowNetwork::dirty_node_components(NodeId n) {
  const std::size_t nn = nodes_.size();
  const std::uint32_t cs[2] = {n, static_cast<std::uint32_t>(nn + n)};
  for (const std::uint32_t c : cs) {
    if (c >= nic_owner_.size()) continue;
    const std::uint32_t owner = nic_owner_[c];
    if (owner != kNilIndex && comps_[owner].in_use &&
        comps_[owner].gen == nic_owner_gen_[c])
      comps_[owner].dirty = true;
  }
}

void FlowNetwork::set_node_up(NodeId n, bool up) {
  Node& nd = nodes_[n];
  if (nd.up == up) return;
  nd.up = up;
  if (!up) {
    ++nd.epoch;  // anything staged on the node is lost
    fail_flows_at(n);
    return;
  }
  if (up_waiters_.size() < nodes_.size()) up_waiters_.resize(nodes_.size());
  for (sim::WaitNode* w = up_waiters_[n].drain(); w != nullptr; w = w->next)
    sim_.post(w->fn, w->a, w->b);
}

void FlowNetwork::scale_node_capacity(NodeId n, double egress_mult,
                                      double ingress_mult) {
  Node& nd = nodes_[n];
  nd.egress_scale *= egress_mult;
  nd.ingress_scale *= ingress_mult;
  dirty_node_components(n);
  mark_dirty();
}

void FlowNetwork::set_link_flapped(NodeId n, bool flapped) {
  Node& nd = nodes_[n];
  if (flapped)
    ++nd.flap_holds;
  else if (nd.flap_holds > 0)
    --nd.flap_holds;
  dirty_node_components(n);
  mark_dirty();
}

void FlowNetwork::fail_flows_at(NodeId n) {
  advance_to_now();
  finished_scratch_.clear();
  live_bits_.for_each_set([&](std::uint64_t s) {
    const Flow& f = flow_slots_[s].flow;
    if (f.src == n || f.dst == n)
      finished_scratch_.push_back(static_cast<std::uint32_t>(s));
  });
  if (finished_scratch_.empty()) return;
  if (settle_pending_) {
    // The inline solve below covers any arrivals already queued this instant.
    settle_timer_.cancel();
    settle_pending_ = false;
  }
  // Same ordering discipline as on_completion_timer: step the ops while the
  // slots are alive, free the slots before the solve.
  for (const std::uint32_t slot : finished_scratch_) {
    FlowSlot& fs = flow_slots_[slot];
    FlowOp* op = fs.op;
    op->failed = true;
    // The un-sent remainder never crossed the wire: uncount it (bytes are
    // charged in full at flow start).
    traffic_[static_cast<std::size_t>(op->cls)] -= fs.flow.remaining;
    fs.flow.proj = -1.0;  // any completion-heap entries turn stale
    sim_.post([](void* p, void*) { auto* o = static_cast<FlowOp*>(p); o->step(o); },
              op);
    release_flow_slot(slot);
  }
  solve_epoch();
  schedule_completion();
}

void FlowNetwork::advance_to_now() {
  const double now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0) {
    live_bits_.for_each_set([&](std::uint64_t s) {
      Flow& f = flow_slots_[s].flow;
      f.remaining -= f.rate * dt;
      if (f.remaining < 0) f.remaining = 0;
    });
  }
  last_advance_ = now;
}

// Progressive filling over one already-partitioned component (items_
// [first_item, first_item + n_items)): raise the rate of every unfrozen flow
// uniformly until some constraint or flow cap saturates; freeze the flows it
// binds; repeat. Constraints are compacted per call; non-contained shared
// constraints are skipped (the escalated global solve goes through
// water_fill_escalated, which reuses the persistent arena layout instead).
void FlowNetwork::water_fill(std::size_t first_item, std::size_t n_items) {
  const std::size_t cspace = constraint_space();
  const std::uint32_t n_local = static_cast<std::uint32_t>(2 * nodes_.size());
  if (cmap_epoch_.size() < cspace) cmap_epoch_.resize(cspace, 0);
  if (cmap_.size() < cspace) cmap_.resize(cspace, 0);

  // Containment pre-pass: count this component's users per shared
  // constraint (stamped; no clearing).
  ++cmap_gen_;
  for (std::size_t i = first_item; i < first_item + n_items; ++i) {
    const FlowSlot& fs = flow_slots_[items_[i].slot];
    for (std::uint8_t k = 2; k < fs.n_constraints; ++k) {
      const std::uint32_t c = fs.constraints[k];
      if (cmap_epoch_[c] != cmap_gen_) {
        cmap_epoch_[c] = cmap_gen_;
        cmap_[c] = 1;
      } else {
        ++cmap_[c];
      }
    }
  }
  if (citem_epoch_.size() < cspace) citem_epoch_.resize(cspace, 0);
  if (citem_.size() < cspace) citem_.resize(cspace, kNilIndex);

  // Compact the participating constraints and seed capacities/user counts.
  // The containment counts above stay readable under cmap_gen_; the compact
  // index uses the second stamp array.
  ++citem_gen_used_;
  const std::uint64_t cgen = citem_gen_used_;
  wf_cap_.clear();
  wf_users_.clear();
  for (std::size_t i = first_item; i < first_item + n_items; ++i) {
    SolverItem& it = items_[i];
    FlowSlot& fs = flow_slots_[it.slot];
    it.n_cidx = 0;
    for (std::uint8_t k = 0; k < fs.n_constraints; ++k) {
      const std::uint32_t c = fs.constraints[k];
      const bool contained =
          c < n_local || (cmap_epoch_[c] == cmap_gen_ && cmap_[c] == shared_users_[c]);
      if (!contained) continue;
      std::uint32_t idx;
      if (citem_epoch_[c] != cgen) {
        citem_epoch_[c] = cgen;
        idx = static_cast<std::uint32_t>(wf_cap_.size());
        citem_[c] = idx;
        wf_cap_.push_back(constraint_cap(c));
        wf_users_.push_back(0);
      } else {
        idx = citem_[c];
      }
      it.cidx[it.n_cidx++] = idx;
      ++wf_users_[idx];
    }
    it.alloc = 0.0;
    it.frozen = false;
  }
  run_fill(first_item, n_items);
}

void FlowNetwork::reset_arena() {
  arena_idx_.assign(constraint_space(), kNilIndex);
  arena_constraints_.clear();
  ++arena_gen_;  // every cached slot binding is now stale
}

// Escalated global solve over all live flows (items_ holds every one) with
// the full constraint set. The dense constraint->index layout persists
// across epochs (reset only on topology change) and each flow slot caches
// its indices, so in the saturated lockstep regime — where this runs nearly
// every epoch — only capacities are reseeded and user counts recounted.
// The fill math is identical to the per-call compaction: zero-user arena
// entries never produce a water-fill increment.
void FlowNetwork::water_fill_escalated() {
  if (arena_idx_.size() < constraint_space()) reset_arena();
  wf_cap_.resize(arena_constraints_.size());
  for (std::size_t i = 0; i < arena_constraints_.size(); ++i)
    wf_cap_[i] = constraint_cap(arena_constraints_[i]);
  wf_users_.assign(arena_constraints_.size(), 0);
  for (SolverItem& it : items_) {
    FlowSlot& fs = flow_slots_[it.slot];
    if (fs.arena_bound_gen != arena_gen_) {
      for (std::uint8_t k = 0; k < fs.n_constraints; ++k) {
        const std::uint32_t c = fs.constraints[k];
        std::uint32_t idx = arena_idx_[c];
        if (idx == kNilIndex) {
          idx = static_cast<std::uint32_t>(arena_constraints_.size());
          arena_idx_[c] = idx;
          arena_constraints_.push_back(c);
          wf_cap_.push_back(constraint_cap(c));
          wf_users_.push_back(0);
        }
        fs.acidx[k] = idx;
      }
      fs.arena_bound_gen = arena_gen_;
    }
    it.n_cidx = fs.n_constraints;
    for (std::uint8_t k = 0; k < fs.n_constraints; ++k) {
      it.cidx[k] = fs.acidx[k];
      ++wf_users_[fs.acidx[k]];
    }
    it.alloc = 0.0;
    it.frozen = false;
  }
  run_fill(0, items_.size());
}

// The shared progressive-filling loop over items_[first_item, +n_items)
// with capacities/user counts already seeded in wf_cap_/wf_users_.
void FlowNetwork::run_fill(std::size_t first_item, std::size_t n_items) {
  std::size_t unfrozen = n_items;
  while (unfrozen > 0) {
    // Smallest uniform increment that saturates a constraint or a flow cap.
    double inc = kUnlimitedRate;
    for (std::size_t c = 0; c < wf_cap_.size(); ++c) {
      if (wf_users_[c] > 0 && std::isfinite(wf_cap_[c]))
        inc = std::min(inc, wf_cap_[c] / wf_users_[c]);
    }
    for (std::size_t i = first_item; i < first_item + n_items; ++i) {
      const SolverItem& it = items_[i];
      if (!it.frozen && std::isfinite(it.f->cap))
        inc = std::min(inc, it.f->cap - it.alloc);
    }
    if (!std::isfinite(inc)) break;  // no binding constraint (shouldn't happen)
    if (inc < 0) inc = 0;

    for (std::size_t i = first_item; i < first_item + n_items; ++i) {
      SolverItem& it = items_[i];
      if (it.frozen) continue;
      it.alloc += inc;
      for (std::uint8_t c = 0; c < it.n_cidx; ++c) wf_cap_[it.cidx[c]] -= inc;
    }
    // Freeze flows whose cap is met or that cross a saturated constraint.
    bool froze_any = false;
    for (std::size_t i = first_item; i < first_item + n_items; ++i) {
      SolverItem& it = items_[i];
      if (it.frozen) continue;
      const bool cap_hit = std::isfinite(it.f->cap) && it.alloc >= it.f->cap - kEpsRate;
      bool constraint_hit = false;
      for (std::uint8_t c = 0; c < it.n_cidx; ++c) {
        if (wf_cap_[it.cidx[c]] <= kEpsRate) {
          constraint_hit = true;
          break;
        }
      }
      if (cap_hit || constraint_hit) {
        it.frozen = true;
        froze_any = true;
        --unfrozen;
        for (std::uint8_t c = 0; c < it.n_cidx; ++c) --wf_users_[it.cidx[c]];
      }
    }
    if (!froze_any && inc <= kEpsRate) break;  // numerical safety
  }
}

// One settle epoch: re-solve only the dirty region (see the header's
// "Incremental solver invariants"), validate shared constraints, escalate to
// a global solve when one is violated, publish rates and components.
void FlowNetwork::solve_epoch() {
#ifdef HM_EPOCH_TRACE
  if (!mirror_ && std::getenv("HM_EPOCH_TRACE"))
    std::fprintf(stderr, "E %.17g\n", sim_.now());
#endif
  ++recompute_count_;
  const bool topo_changed = solved_topology_gen_ != topology_gen_;
  solved_topology_gen_ = topology_gen_;
  const std::size_t cspace = constraint_space();
  const std::uint32_t n_local = static_cast<std::uint32_t>(2 * nodes_.size());
  if (shared_users_.size() < cspace) shared_users_.resize(cspace, 0);
  if (usage_.size() < cspace) usage_.resize(cspace, 0.0);
  if (topo_changed) {
    std::fill(shared_users_.begin(), shared_users_.end(), 0u);
    reset_arena();  // constraint ids shifted: the dense layout is invalid
  }

  // Phase 1 — canonical live scan in slot order (word-skipping bitmap, so
  // the epoch pays for live flows, not for the slab's high-water mark):
  // collect affected flows. Affected = new arrival, member of a dirty
  // component, ablated-off, or any flow after a topology change (incidence
  // ids shift with node count).
  items_.clear();
  bool any_split_risk = false;
  live_bits_.for_each_set([&](std::uint64_t s) {
    const std::uint32_t slot = static_cast<std::uint32_t>(s);
    FlowSlot& fs = flow_slots_[slot];
    if (topo_changed) {
      compute_incidence(fs);
      for (std::uint8_t k = 2; k < fs.n_constraints; ++k) ++shared_users_[fs.constraints[k]];
    }
    const bool affected = !incremental_ || topo_changed || fs.comp == kNilIndex ||
                          comps_[fs.comp].dirty;
    if (!affected) return;
    const std::uint32_t prev = fs.comp;  // kNil for this epoch's arrivals
    if (prev != kNilIndex && comps_[prev].split_risk) any_split_risk = true;
    detach_from_component(fs);
    items_.push_back(SolverItem{&fs.flow, slot, 0.0, false, 0, prev, {}, 0});
  });

  bool escalated = false;
  std::size_t n_groups = 0;
  if (!items_.empty()) {
    // Phase 2 — partition the affected flows into connected components via
    // union-find over their NIC constraints (roots are minimal indices, so
    // first-seen group order and in-group slot order are both canonical).
    if (citem_epoch_.size() < cspace) citem_epoch_.resize(cspace, 0);
    if (citem_.size() < cspace) citem_.resize(cspace, kNilIndex);
    ++citem_gen_used_;
    const std::uint64_t pgen = citem_gen_used_;
    const auto find_root = [&](std::uint32_t i) {
      while (items_[i].uf_parent != i) {
        items_[i].uf_parent = items_[items_[i].uf_parent].uf_parent;
        i = items_[i].uf_parent;
      }
      return i;
    };
    for (std::uint32_t i = 0; i < items_.size(); ++i) items_[i].uf_parent = i;
    const auto link = [&](std::uint32_t a, std::uint32_t b) {
      std::uint32_t ra = find_root(a), rb = find_root(b);
      if (ra != rb) items_[std::max(ra, rb)].uf_parent = std::min(ra, rb);
    };
    // Merge-only fast path: no split-risk member and an unchanged topology
    // means membership can only have grown. Union each item into its
    // previous component's representative (first member in slot order), then
    // bridge the arrivals — the only items that can connect two previous
    // components, since published components never share a NIC constraint.
    // The union rule keeps the minimal item index as root either way, so the
    // resulting partition, group numbering and item order are identical to
    // the item-level rebuild below (see the header's membership fast path
    // invariant).
    const bool merge_only = incremental_ && !topo_changed && !any_split_risk;
    if (merge_only) {
      ++membership_fast_epochs_;
      if (comp_map_epoch_.size() < comps_.size()) {
        comp_map_epoch_.resize(comps_.size(), 0);
        comp_map_.resize(comps_.size(), kNilIndex);
      }
      ++comp_map_gen_;
      for (std::uint32_t i = 0; i < items_.size(); ++i) {
        const std::uint32_t prev = items_[i].prev_comp;
        if (prev == kNilIndex) continue;
        if (comp_map_epoch_[prev] != comp_map_gen_) {
          comp_map_epoch_[prev] = comp_map_gen_;
          comp_map_[prev] = i;
        } else {
          link(i, comp_map_[prev]);
        }
      }
      for (std::uint32_t i = 0; i < items_.size(); ++i) {
        if (items_[i].prev_comp != kNilIndex) continue;  // arrivals only
        const FlowSlot& fs = flow_slots_[items_[i].slot];
        for (int k = 0; k < 2; ++k) {
          const std::uint32_t c = fs.constraints[k];
          // Arrival-to-arrival sharing through the constraint-seed map.
          if (citem_epoch_[c] != pgen) {
            citem_epoch_[c] = pgen;
            citem_[c] = i;
          } else {
            link(i, citem_[c]);
          }
          // Arrival-to-previous-component bridging through the NIC-owner
          // map. A live owner is necessarily collected this epoch (the
          // arrival dirtied it in begin_flow), so it has a representative.
          if (c >= nic_owner_.size()) continue;
          const std::uint32_t owner = nic_owner_[c];
          if (owner != kNilIndex && nic_owner_gen_[c] == comps_[owner].gen &&
              comp_map_epoch_[owner] == comp_map_gen_)
            link(i, comp_map_[owner]);
        }
      }
    } else {
      for (std::uint32_t i = 0; i < items_.size(); ++i) {
        const FlowSlot& fs = flow_slots_[items_[i].slot];
        for (int k = 0; k < 2; ++k) {
          const std::uint32_t c = fs.constraints[k];
          if (citem_epoch_[c] != pgen) {
            citem_epoch_[c] = pgen;
            citem_[c] = i;
          } else {
            link(i, citem_[c]);
          }
        }
      }
    }
    // Dense group ids in first-seen (= ascending root) order, then a stable
    // counting-sort so each group's items are contiguous in slot order.
    group_of_item_.resize(items_.size());
    group_start_.clear();
    for (std::uint32_t i = 0; i < items_.size(); ++i) {
      const std::uint32_t r = find_root(i);
      if (r == i) {
        group_of_item_[i] = static_cast<std::uint32_t>(n_groups++);
        group_start_.push_back(0);
      } else {
        group_of_item_[i] = group_of_item_[r];
      }
      ++group_start_[group_of_item_[i]];
    }
    std::uint32_t acc = 0;
    for (std::size_t g = 0; g < n_groups; ++g) {
      const std::uint32_t sz = group_start_[g];
      group_start_[g] = acc;
      acc += sz;
    }
    group_start_.push_back(acc);
    item_order_.resize(items_.size());
    {
      scatter_pos_.assign(group_start_.begin(), group_start_.end() - 1);
      for (std::uint32_t i = 0; i < items_.size(); ++i)
        item_order_[scatter_pos_[group_of_item_[i]]++] = i;
    }
    // The water-fill operates on contiguous runs of items_, so permute
    // items_ itself into group order (stable: ascending within a group).
    items_scratch_.resize(items_.size());
    for (std::uint32_t i = 0; i < items_.size(); ++i)
      items_scratch_[i] = items_[item_order_[i]];
    items_.swap(items_scratch_);

    // Phase 3 — solve each dirty component independently.
    for (std::size_t g = 0; g < n_groups; ++g)
      water_fill(group_start_[g], group_start_[g + 1] - group_start_[g]);

    // Phase 4 — validate shared constraints against total usage, accumulated
    // in one canonical slot-order pass over cached + fresh rates (identical
    // accumulation order whichever components were re-solved, so the
    // escalation decision cannot diverge between ablation modes). Freshly
    // solved slots are recognized by their solve-pass stamp instead of an
    // O(slab) slot->item map rebuild.
    for (std::uint32_t c = n_local; c < cspace; ++c) usage_[c] = 0.0;
    ++solve_pass_gen_;
    for (std::size_t i = 0; i < items_.size(); ++i) {
      FlowSlot& fs = flow_slots_[items_[i].slot];
      fs.item_idx = static_cast<std::uint32_t>(i);
      fs.solve_gen = solve_pass_gen_;
    }
    live_bits_.for_each_set([&](std::uint64_t s) {
      const FlowSlot& fs = flow_slots_[s];
      const double r =
          fs.solve_gen == solve_pass_gen_ ? items_[fs.item_idx].alloc : fs.flow.rate;
      for (std::uint8_t k = 2; k < fs.n_constraints; ++k) usage_[fs.constraints[k]] += r;
    });
    for (std::uint32_t c = n_local; c < cspace && !escalated; ++c) {
      const double cap = constraint_cap(c);
      if (std::isfinite(cap) && usage_[c] > cap + kEpsRate) escalated = true;
    }

    // Phase 5 — escalation: a shared constraint binds across components, so
    // the decomposition is invalid this epoch. Solve every live flow as one
    // component with the full constraint set (the pre-incremental global
    // algorithm) and merge them, so later churn re-solves — and re-attempts
    // splitting — the whole coupled region.
    if (escalated) {
      ++escalations_;
      items_.clear();
      live_bits_.for_each_set([&](std::uint64_t s) {
        FlowSlot& fs = flow_slots_[s];
        detach_from_component(fs);  // clean components join the mega solve
        items_.push_back(SolverItem{&fs.flow, static_cast<std::uint32_t>(s), 0.0, false,
                                    0, kNilIndex, {}, 0});
      });
      water_fill_escalated();
      n_groups = 1;
      group_start_.clear();
      group_start_.push_back(0);
      group_start_.push_back(static_cast<std::uint32_t>(items_.size()));
      group_of_item_.assign(items_.size(), 0);
    }
  }

  // Phase 6 — publish: assign (re)built components, record NIC-constraint
  // ownership for arrival dirtying, apply rates (projections push only for
  // flows whose rate actually changed), refresh the drift-free rate sum.
  if (nic_owner_.size() < 2 * nodes_.size()) {
    nic_owner_.resize(2 * nodes_.size(), kNilIndex);
    nic_owner_gen_.resize(2 * nodes_.size(), 0);
  }
  for (std::size_t g = 0; g < n_groups; ++g) {
    const std::uint32_t comp = alloc_component();
    // An escalated publish artificially merges every live flow — including
    // NIC-disconnected ones — into a single component. Only the item-level
    // rebuild can split it back, so the merge-only fast path must not trust
    // its membership.
    comps_[comp].split_risk = escalated;
    comps_[comp].count = group_start_[g + 1] - group_start_[g];
    for (std::uint32_t i = group_start_[g]; i < group_start_[g + 1]; ++i) {
      FlowSlot& fs = flow_slots_[items_[i].slot];
      fs.comp = comp;
      for (int k = 0; k < 2; ++k) {
        nic_owner_[fs.constraints[k]] = comp;
        nic_owner_gen_[fs.constraints[k]] = comps_[comp].gen;
      }
    }
  }
  solved_components_ += n_groups;
  touched_flows_ += items_.size();
  if (trace_solver_) {
    std::fprintf(stderr, "epoch %llu: live=%zu items=%zu groups=%zu esc=%d\n",
                 static_cast<unsigned long long>(recompute_count_), live_flows_,
                 items_.size(), n_groups, static_cast<int>(escalated));
  }
  for (SolverItem& it : items_) apply_rate(*it.f, it.alloc, it.slot);
  {
    double sum = 0.0;
    live_bits_.for_each_set(
        [&](std::uint64_t s) { sum += flow_slots_[s].flow.rate; });
    rate_sum_ = sum;
  }
}

void FlowNetwork::schedule_completion() {
  // Purge stale heads (finished flows or superseded projections), then make
  // sure the single completion timer tracks the earliest live projection.
  while (!comp_heap_.empty()) {
    const CompEntry& top = comp_heap_.front();
    const FlowSlot& fs = flow_slots_[top.slot];
    if (fs.in_use && fs.gen == top.gen && top.t == fs.flow.proj) break;
    std::pop_heap(comp_heap_.begin(), comp_heap_.end(), CompLater{});
    comp_heap_.pop_back();
  }
  if (comp_heap_.empty()) {
    completion_timer_.cancel();
    completion_timer_t_ = -1.0;
    return;
  }
  const double t = comp_heap_.front().t;
  if (completion_timer_.active() && completion_timer_t_ == t) return;
  completion_timer_.cancel();
  completion_timer_ = sim_.schedule_at(t, [this] { on_completion_timer(); });
  completion_timer_t_ = t;
}

void FlowNetwork::on_completion_timer() {
  advance_to_now();
  if (settle_pending_) {
    // This solve will cover any arrivals queued behind us in this instant.
    settle_timer_.cancel();
    settle_pending_ = false;
  }
  finished_scratch_.clear();
  while (!comp_heap_.empty()) {
    const CompEntry top = comp_heap_.front();
    const FlowSlot& fs = flow_slots_[top.slot];
    const bool stale = !fs.in_use || fs.gen != top.gen || top.t != fs.flow.proj;
    if (!stale && top.t > sim_.now()) break;
    std::pop_heap(comp_heap_.begin(), comp_heap_.end(), CompLater{});
    comp_heap_.pop_back();
    if (stale) continue;
    Flow& f = flow_slots_[top.slot].flow;
    if (flow_is_done(f.remaining, f.rate) ||
        (f.rate > kEpsRate && sim_.now() + f.remaining / f.rate <= sim_.now())) {
      // Done, or the residue is below the clock's resolution at this
      // magnitude (re-projecting would spin on the same timestamp).
      finished_scratch_.push_back(top.slot);
      f.proj = -1.0;  // no entry can match: duplicates turn stale immediately
    } else {
      // Projection drifted (FP residue): re-project from current state.
      push_projection(f, top.slot);
    }
  }
  // Stepping an op only enqueues one zero-delay wakeup (exactly what the
  // old intrusive done-Event did), so firing before the recompute is
  // equivalent to after it — but the ops must be captured while their slots
  // are still alive, and the slots must be free before the solve.
  for (std::uint32_t slot : finished_scratch_) {
    sim_.post([](void* p, void*) { auto* op = static_cast<FlowOp*>(p); op->step(op); },
              flow_slots_[slot].op);
    if (coupled_) coupled_removes_.push_back(slot);
    release_flow_slot(slot);
  }
  if (coupled_) {
    // Epoch-coupled shard mode: departures defer the solve to the
    // coordinator's mirror (apply_external_rates re-arms the completion
    // timer afterwards). A pure stale-purge / FP re-projection pass touches
    // no cross-shard state and re-arms locally.
    if (!finished_scratch_.empty())
      coupled_sync_ = true;
    else
      schedule_completion();
    return;
  }
  solve_epoch();
  schedule_completion();
}

// --- epoch-coupled sharding --------------------------------------------------

void FlowNetwork::take_coupled_delta(
    std::vector<CoupledAdd>& adds, std::vector<std::uint32_t>& removes,
    std::vector<std::pair<std::uint32_t, double>>& demand) {
  adds.swap(coupled_adds_);
  coupled_adds_.clear();
  removes.swap(coupled_removes_);
  coupled_removes_.clear();
  demand.clear();
  if (!coupled_demand_.empty()) {
    // Aggregate the raw (constraint, ±1) stream into one delta per
    // constraint, in first-touch order (stamped — no clearing).
    const std::size_t cspace = constraint_space();
    if (demand_stamp_.size() < cspace) {
      demand_stamp_.resize(cspace, 0);
      demand_val_.resize(cspace, 0.0);
    }
    ++demand_gen_;
    for (const auto& [c, v] : coupled_demand_) {
      if (demand_stamp_[c] != demand_gen_) {
        demand_stamp_[c] = demand_gen_;
        demand_val_[c] = v;
        demand.push_back({c, 0.0});
      } else {
        demand_val_[c] += v;
      }
    }
    for (auto& d : demand) d.second = demand_val_[d.first];
    coupled_demand_.clear();
  }
  coupled_sync_ = false;
}

void FlowNetwork::apply_external_rates(
    const std::vector<std::pair<std::uint32_t, double>>& rates) {
  advance_to_now();
  for (const auto& [slot, rate] : rates)
    apply_rate(flow_slots_[slot].flow, rate, slot);
  double sum = 0.0;
  live_bits_.for_each_set([&](std::uint64_t s) { sum += flow_slots_[s].flow.rate; });
  rate_sum_ = sum;
  schedule_completion();
}

std::uint32_t FlowNetwork::mirror_add_flow(NodeId src, NodeId dst, double bytes,
                                           double cap) {
  // begin_flow's solver-relevant middle: slot setup, incidence, shared-user
  // counts, NIC-owner dirtying. No traffic, no op, no settle, no pair rates.
  const std::uint32_t slot = alloc_flow_slot();
  FlowSlot& fs = flow_slots_[slot];
  fs.in_use = true;
  fs.op = nullptr;
  live_bits_.set(slot);
  Flow& f = fs.flow;
  f.src = src;
  f.dst = dst;
  f.remaining = bytes;
  f.rate = 0.0;
  f.cap = cap;
  f.proj = kUnlimitedRate;
  fs.comp = kNilIndex;  // affected at the next mirror solve
  compute_incidence(fs);
  for (std::uint8_t k = 2; k < fs.n_constraints; ++k) ++shared_users_[fs.constraints[k]];
  const std::size_t nn = nodes_.size();
  if (nic_owner_.size() < 2 * nn) {
    nic_owner_.resize(2 * nn, kNilIndex);
    nic_owner_gen_.resize(2 * nn, 0);
  }
  for (int k = 0; k < 2; ++k) {
    const std::uint32_t c = fs.constraints[k];
    const std::uint32_t owner = nic_owner_[c];
    if (owner != kNilIndex && comps_[owner].in_use &&
        comps_[owner].gen == nic_owner_gen_[c])
      comps_[owner].dirty = true;
  }
  ++live_flows_;
  ++flows_started_;
  return slot;
}

void FlowNetwork::mirror_remove_flow(std::uint32_t slot) {
  flow_slots_[slot].flow.proj = -1.0;
  release_flow_slot(slot);
}

}  // namespace hm::net
