#include "net/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hm::net {

namespace {
// Rates are O(1e6..1e9) B/s and transfers O(1e3..1e10) B, so byte-scale
// epsilons are far below anything meaningful while absorbing FP rounding.
constexpr double kEpsBytes = 1e-3;   // flows below this are complete
constexpr double kEpsRate = 1.0;     // rates below 1 B/s are "saturated"

bool flow_is_done(double remaining, double rate) noexcept {
  return remaining <= kEpsBytes || (rate > kEpsRate && remaining / rate < 1e-9);
}
}  // namespace

const char* traffic_class_name(TrafficClass cls) noexcept {
  switch (cls) {
    case TrafficClass::kMemory: return "memory";
    case TrafficClass::kStoragePush: return "storage-push";
    case TrafficClass::kStoragePull: return "storage-pull";
    case TrafficClass::kRepoRead: return "repo-read";
    case TrafficClass::kPvfsData: return "pvfs-data";
    case TrafficClass::kAppComm: return "app-comm";
    case TrafficClass::kControl: return "control";
    case TrafficClass::kCount: break;
  }
  return "?";
}

FlowNetwork::FlowNetwork(sim::Simulator& sim, FlowNetworkConfig cfg)
    : sim_(sim), cfg_(cfg) {
  groups_.push_back(Group{kUnlimitedRate});  // group 0: flat network default
}

SwitchGroupId FlowNetwork::add_switch_group(double uplink_Bps) {
  groups_.push_back(Group{uplink_Bps});
  return static_cast<SwitchGroupId>(groups_.size() - 1);
}

NodeId FlowNetwork::add_node(double egress_Bps, double ingress_Bps, SwitchGroupId group) {
  assert(group < groups_.size());
  nodes_.push_back(Node{egress_Bps, ingress_Bps, group});
  return static_cast<NodeId>(nodes_.size() - 1);
}

double FlowNetwork::total_traffic_bytes() const noexcept {
  double s = 0;
  for (double t : traffic_) s += t;
  return s;
}

void FlowNetwork::reset_traffic() noexcept {
  for (double& t : traffic_) t = 0;
}

double FlowNetwork::current_rate_sum() const noexcept {
  double s = 0;
  for (const auto& [id, f] : flows_) s += f->rate;
  return s;
}

double FlowNetwork::flow_rate(NodeId src, NodeId dst) const noexcept {
  double s = 0;
  for (const auto& [id, f] : flows_)
    if (f->src == src && f->dst == dst) s += f->rate;
  return s;
}

sim::Task FlowNetwork::transfer(NodeId src, NodeId dst, double bytes, TrafficClass cls,
                                double rate_cap) {
  if (bytes <= 0) co_return;
  if (src == dst) {
    // Local copy: costs loopback time, never leaves the node, not counted
    // as network traffic.
    co_await sim_.delay(bytes / cfg_.loopback_Bps);
    co_return;
  }
  assert(src < nodes_.size() && dst < nodes_.size());
  co_await sim_.delay(cfg_.latency_s);

  traffic_[static_cast<std::size_t>(cls)] += bytes;

  const std::uint64_t id = next_flow_id_++;
  auto flow = std::make_unique<Flow>();
  flow->id = id;
  flow->src = src;
  flow->dst = dst;
  flow->remaining = bytes;
  flow->cap = rate_cap;
  flow->cls = cls;
  flow->done = std::make_unique<sim::Event>(sim_);
  sim::Event& done = *flow->done;

  advance_to_now();
  flows_.emplace(id, std::move(flow));
  recompute_rates();
  reschedule_completion();

  co_await done.wait();
}

sim::Task FlowNetwork::request_response(NodeId requester, NodeId responder,
                                        double request_bytes, double response_bytes,
                                        TrafficClass response_cls) {
  co_await transfer(requester, responder, request_bytes, TrafficClass::kControl);
  co_await transfer(responder, requester, response_bytes, response_cls);
}

void FlowNetwork::advance_to_now() {
  const double now = sim_.now();
  const double dt = now - last_advance_;
  if (dt > 0) {
    for (auto& [id, f] : flows_) {
      f->remaining -= f->rate * dt;
      if (f->remaining < 0) f->remaining = 0;
    }
  }
  last_advance_ = now;
}

// Progressive filling: raise the rate of every unfrozen flow uniformly until
// some constraint (NIC egress/ingress, fabric, per-flow cap) saturates;
// freeze the flows bound by it; repeat. Yields the max-min fair allocation.
void FlowNetwork::recompute_rates() {
  const std::size_t n = nodes_.size();
  const std::size_t g = groups_.size();
  // Constraint layout: [0, n) egress, [n, 2n) ingress, [2n] fabric,
  // [2n+1, 2n+1+g) switch uplink (up), [2n+1+g, 2n+1+2g) uplink (down).
  const std::size_t up_base = 2 * n + 1;
  const std::size_t down_base = up_base + g;
  cap_rem_.assign(down_base + g, 0.0);
  cap_users_.assign(down_base + g, 0);
  for (std::size_t i = 0; i < n; ++i) {
    cap_rem_[i] = nodes_[i].egress_Bps;
    cap_rem_[n + i] = nodes_[i].ingress_Bps;
  }
  cap_rem_[2 * n] = cfg_.fabric_Bps;
  for (std::size_t i = 0; i < g; ++i) {
    cap_rem_[up_base + i] = groups_[i].uplink_Bps;
    cap_rem_[down_base + i] = groups_[i].uplink_Bps;
  }

  struct Item {
    Flow* f;
    double alloc = 0.0;
    bool frozen = false;
    std::size_t constraints[5];
    std::size_t n_constraints = 0;
  };
  std::vector<Item> items;
  items.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    Item it{f.get(), 0.0, false, {}, 0};
    it.constraints[it.n_constraints++] = f->src;
    it.constraints[it.n_constraints++] = n + f->dst;
    it.constraints[it.n_constraints++] = 2 * n;
    const SwitchGroupId gs = nodes_[f->src].group;
    const SwitchGroupId gd = nodes_[f->dst].group;
    if (gs != gd) {
      it.constraints[it.n_constraints++] = up_base + gs;
      it.constraints[it.n_constraints++] = down_base + gd;
    }
    for (std::size_t c = 0; c < it.n_constraints; ++c) ++cap_users_[it.constraints[c]];
    items.push_back(it);
  }

  std::size_t unfrozen = items.size();
  while (unfrozen > 0) {
    // Smallest uniform increment that saturates a constraint or a flow cap.
    double inc = kUnlimitedRate;
    for (std::size_t c = 0; c < cap_rem_.size(); ++c) {
      if (cap_users_[c] > 0 && std::isfinite(cap_rem_[c]))
        inc = std::min(inc, cap_rem_[c] / cap_users_[c]);
    }
    for (const Item& it : items) {
      if (!it.frozen && std::isfinite(it.f->cap))
        inc = std::min(inc, it.f->cap - it.alloc);
    }
    if (!std::isfinite(inc)) break;  // no binding constraint (shouldn't happen)
    if (inc < 0) inc = 0;

    for (Item& it : items) {
      if (it.frozen) continue;
      it.alloc += inc;
      for (std::size_t c = 0; c < it.n_constraints; ++c) cap_rem_[it.constraints[c]] -= inc;
    }
    // Freeze flows whose cap is met or that cross a saturated constraint.
    bool froze_any = false;
    for (Item& it : items) {
      if (it.frozen) continue;
      const bool cap_hit = std::isfinite(it.f->cap) && it.alloc >= it.f->cap - kEpsRate;
      bool constraint_hit = false;
      for (std::size_t c = 0; c < it.n_constraints; ++c) {
        if (cap_rem_[it.constraints[c]] <= kEpsRate) {
          constraint_hit = true;
          break;
        }
      }
      if (cap_hit || constraint_hit) {
        it.frozen = true;
        froze_any = true;
        --unfrozen;
        for (std::size_t c = 0; c < it.n_constraints; ++c) --cap_users_[it.constraints[c]];
      }
    }
    if (!froze_any && inc <= kEpsRate) break;  // numerical safety
  }

  for (Item& it : items) it.f->rate = it.alloc;
}

void FlowNetwork::reschedule_completion() {
  completion_timer_.cancel();
  if (flows_.empty()) return;
  double dt_min = kUnlimitedRate;
  for (const auto& [id, f] : flows_) {
    if (f->rate > kEpsRate) dt_min = std::min(dt_min, f->remaining / f->rate);
  }
  if (!std::isfinite(dt_min)) return;  // all flows stalled (rate 0)
  completion_timer_ = sim_.schedule(std::max(dt_min, 0.0), [this] { on_completion_timer(); });
}

void FlowNetwork::on_completion_timer() {
  advance_to_now();
  std::vector<std::unique_ptr<sim::Event>> finished;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (flow_is_done(it->second->remaining, it->second->rate)) {
      finished.push_back(std::move(it->second->done));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute_rates();
  reschedule_completion();
  // Firing after rate recomputation: flows started by woken waiters will
  // trigger their own recompute via transfer().
  for (auto& done : finished) done->set();
}

}  // namespace hm::net
