#include "cloud/scheduler.h"

#include <algorithm>
#include <cassert>
#include <charconv>

#include "cloud/recovery.h"
#include "vm/compute_node.h"

namespace hm::cloud {

// --------------------------------------------------------------------------
// Spec parsing: ARRIVALS[;sched:k=v,...]

namespace {

bool fail(std::string* err, std::string msg) {
  if (err != nullptr) *err = std::move(msg);
  return false;
}

bool parse_u32(std::string_view s, std::uint32_t* out) {
  std::uint32_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool parse_scheduler_spec(std::string_view arg, SchedulerConfig* out,
                          std::string* err) {
  SchedulerConfig cfg;
  std::string_view arrivals = arg;
  std::string_view sched;
  if (auto pos = arg.find(";sched:"); pos != std::string_view::npos) {
    arrivals = arg.substr(0, pos);
    sched = arg.substr(pos + 7);
  }
  if (!sim::parse_arrival_spec(arrivals, &cfg.arrivals, err)) return false;

  while (!sched.empty()) {
    const auto comma = sched.find(',');
    std::string_view item = sched.substr(0, comma);
    sched = comma == std::string_view::npos ? std::string_view{}
                                            : sched.substr(comma + 1);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos)
      return fail(err, "sched: expected k=v, got '" + std::string(item) + "'");
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    std::uint32_t u = 0;
    if (key == "concurrent") {
      if (!parse_u32(val, &u) || u == 0)
        return fail(err, "sched: concurrent must be a positive integer");
      cfg.max_concurrent = u;
    } else if (key == "capacity") {
      if (!parse_u32(val, &u))
        return fail(err, "sched: capacity must be a non-negative integer");
      cfg.placement.capacity = u;
    } else if (key == "groups") {
      if (!parse_u32(val, &u))
        return fail(err, "sched: groups must be a non-negative integer");
      cfg.placement.affinity_groups = u;
    } else if (key == "policy") {
      if (!parse_placement_policy(val, &cfg.placement.policy))
        return fail(err, "sched: unknown policy '" + std::string(val) +
                             "' (round-robin|least-loaded)");
    } else if (key == "preempt") {
      if (val == "0")
        cfg.preempt = false;
      else if (val == "1")
        cfg.preempt = true;
      else
        return fail(err, "sched: preempt must be 0 or 1");
    } else if (key == "attempts") {
      if (!parse_u32(val, &u))
        return fail(err, "sched: attempts must be a non-negative integer");
      cfg.max_attempts = static_cast<int>(u);
    } else {
      return fail(err, "sched: unknown key '" + std::string(key) + "'");
    }
  }
  *out = cfg;
  return true;
}

// --------------------------------------------------------------------------
// Scheduler

Scheduler::Scheduler(sim::Simulator& sim, vm::Cluster& cluster, Middleware& mw,
                     const SchedulerConfig& cfg, net::NodeId first_dst,
                     std::uint32_t num_dsts, sim::WaitGroup* all_done)
    : sim_(sim),
      cluster_(cluster),
      mw_(mw),
      cfg_(cfg),
      placement_(cfg.placement, first_dst, num_dsts),
      process_(cfg.arrivals, cluster.rng()),
      vm_rng_(cluster.rng().fork("sched-vm")),
      all_done_(all_done),
      max_attempts_(cfg.max_attempts > 0 ? cfg.max_attempts
                                         : mw.config().max_attempts),
      retry_backoff_s_(mw.config().retry_backoff_s),
      vm_busy_(mw.vm_count(), 0) {}

void Scheduler::start() { sim_.spawn(pump_arrivals()); }

sim::Task Scheduler::pump_arrivals() {
  for (;;) {
    const auto a = process_.next();
    if (!a.has_value()) break;
    if (a->at > sim_.now()) co_await sim_.delay(a->at - sim_.now());
    requests_.push_back(RequestRecord{});
    RequestRecord& r = requests_.back();
    r.id = requests_.size() - 1;
    r.high_priority = a->high_priority;
    r.t_arrival = sim_.now();
    enqueue(&r);
    try_dispatch();
  }
  arrivals_done_ = true;
  try_dispatch();  // a stuck head can now be provably rejected
  maybe_finish();
}

void Scheduler::enqueue(RequestRecord* r) {
  (r->high_priority ? high_q_ : low_q_).push_back(r);
  peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queued());
}

void Scheduler::try_dispatch() {
  for (;;) {
    std::deque<RequestRecord*>* q =
        !high_q_.empty() ? &high_q_ : (!low_q_.empty() ? &low_q_ : nullptr);
    if (q == nullptr) break;
    RequestRecord* r = q->front();

    if (running_ >= cfg_.max_concurrent) {
      if (cfg_.preempt && r->high_priority) maybe_preempt();
      break;  // wait for a slot
    }

    if (r->vm_id < 0) {
      const int slot = pick_vm_slot();
      if (slot < 0) {
        if (running_ > 0) break;  // a completion may change feasibility
        // Nothing is running, so the placement state is frozen: this head
        // can never dispatch. Reject it so the queue keeps draining.
        r->rejected = true;
        ++rejected_;
        q->pop_front();
        maybe_finish();
        continue;
      }
      vm::VmInstance& vm = mw_.vm(static_cast<std::size_t>(slot));
      r->vm_slot = slot;
      r->vm_id = vm.id();
      r->dst = placement_.choose(r->vm_id);
      placement_.reserve(r->dst, r->vm_id);
      vm_busy_[static_cast<std::size_t>(slot)] = 1;
    }

    q->pop_front();
    dispatch(r);
  }
}

int Scheduler::pick_vm_slot() {
  std::vector<int> eligible;
  eligible.reserve(vm_busy_.size());
  for (std::size_t i = 0; i < vm_busy_.size(); ++i) {
    if (vm_busy_[i]) continue;
    if (!placement_.feasible(mw_.vm(i).id())) continue;
    eligible.push_back(static_cast<int>(i));
  }
  if (eligible.empty()) return -1;
  return eligible[vm_rng_.uniform(eligible.size())];
}

void Scheduler::dispatch(RequestRecord* r) {
  r->t_last_dispatch = sim_.now();
  if (r->t_dispatched < 0) {
    r->t_dispatched = sim_.now();
    ++dispatched_;
    r->migration = &mw_.metrics().new_migration(r->vm_id);
    r->migration->t_request = sim_.now();
  }
  ++running_;
  running_reqs_.push_back(r);
  peak_running_ = std::max<std::uint64_t>(peak_running_, running_);
  sim_.spawn(run_request(r));
}

void Scheduler::maybe_preempt() {
  // Victim: the youngest-dispatched running low-priority migration whose
  // attempt has not moved control yet (post-transfer aborts are pointless —
  // the source is released within the same attempt) and that is not already
  // winding down from an earlier preemption request.
  RequestRecord* victim = nullptr;
  for (RequestRecord* c : running_reqs_) {
    if (c->high_priority || c->preempt_requested) continue;
    core::StorageMigrationSession* s = mw_.active_session_for(*c->migration);
    if (s == nullptr || s->control_transferred()) continue;
    if (victim == nullptr || c->t_last_dispatch > victim->t_last_dispatch)
      victim = c;
  }
  if (victim == nullptr) return;
  victim->preempt_requested = true;
  mw_.active_session_for(*victim->migration)->abort();
}

void Scheduler::finish_running(RequestRecord* r) {
  --running_;
  running_reqs_.erase(
      std::find(running_reqs_.begin(), running_reqs_.end(), r));
}

sim::Task Scheduler::run_request(RequestRecord* r) {
  vm::VmInstance& vm = mw_.vm(static_cast<std::size_t>(r->vm_slot));
  auto& net = cluster_.network();
  for (;;) {
    bool completed = false;
    co_await mw_.migrate_attempt(vm, r->dst, *r->migration, &completed);

    if (completed) {
      placement_.commit(r->dst, r->vm_id);
      r->t_completed = sim_.now();
      ++completed_;
      r->preempt_requested = false;  // raced with a late preemption decision
      vm_busy_[static_cast<std::size_t>(r->vm_slot)] = 0;
      finish_running(r);
      try_dispatch();
      maybe_finish();
      co_return;
    }

    if (r->preempt_requested) {
      // Preempted for a high-priority arrival: hand the slot back and
      // requeue at the front of the low queue (admitted work must not be
      // overtaken by new arrivals). The VM, destination and reservation are
      // kept — the salvaged partial replica lives on that node and resume
      // adoption requires the same node and epoch.
      r->preempt_requested = false;
      ++r->preemptions;
      ++preempted_total_;
      finish_running(r);
      low_q_.push_front(r);
      peak_queue_depth_ = std::max<std::uint64_t>(peak_queue_depth_, queued());
      try_dispatch();
      co_return;
    }

    // Fault abort: retry in place, holding the admission slot (the classic
    // Middleware::migrate loop), until the per-request budget runs out.
    ++r->fault_retries;
    if (static_cast<int>(r->fault_retries) >= max_attempts_) {
      r->abandoned = true;
      r->migration->abandoned = true;
      ++abandoned_;
      placement_.release(r->dst, r->vm_id);
      vm_busy_[static_cast<std::size_t>(r->vm_slot)] = 0;
      finish_running(r);
      try_dispatch();
      maybe_finish();
      co_return;
    }
    co_await net.wait_node_up(vm.node());
    co_await net.wait_node_up(r->dst);
    co_await sim_.delay(retry_backoff_s_);
  }
}

void Scheduler::maybe_finish() {
  if (finished_ || !arrivals_done_ || running_ != 0 || queued() != 0) return;
  finished_ = true;
  if (all_done_ != nullptr) all_done_->done();
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  s.requests = requests_.size();
  s.dispatched = dispatched_;
  s.completed = completed_;
  s.preemptions = preempted_total_;
  s.abandoned = abandoned_;
  s.rejected = rejected_;
  s.peak_queue_depth = peak_queue_depth_;
  s.peak_running = peak_running_;
  std::vector<double> delays;
  delays.reserve(requests_.size());
  for (const RequestRecord& r : requests_) {
    if (r.t_dispatched < 0) continue;
    const double d = r.queueing_delay();
    delays.push_back(d);
    s.max_queueing_delay_s = std::max(s.max_queueing_delay_s, d);
  }
  s.queueing_p50_s = nearest_rank_percentile(delays, 0.50);
  s.queueing_p99_s = nearest_rank_percentile(delays, 0.99);
  s.queueing_p999_s = nearest_rank_percentile(delays, 0.999);
  return s;
}

}  // namespace hm::cloud
