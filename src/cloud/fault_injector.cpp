#include "cloud/fault_injector.h"

#include <algorithm>

namespace hm::cloud {

FaultInjector::FaultInjector(sim::Simulator& sim, vm::Cluster& cluster, Middleware& mw,
                             sim::FaultPlan plan, std::size_t num_vms,
                             std::size_t num_destinations)
    : sim_(sim),
      cluster_(cluster),
      mw_(mw),
      plan_(std::move(plan)),
      num_vms_(num_vms),
      num_destinations_(num_destinations == 0 ? 1 : num_destinations),
      down_holds_(cluster.size(), 0),
      paused_vms_(cluster.size()),
      down_since_(cluster.size(), 0),
      window_holds_(cluster.size(), 0) {
  domain_nodes_.reserve(plan_.domains.size());
  for (const sim::FaultDomain& d : plan_.domains) {
    std::vector<net::NodeId> members;
    for (const std::uint32_t n : d.nodes)
      if (n < cluster_.size()) members.push_back(static_cast<net::NodeId>(n));
    domain_nodes_.push_back(std::move(members));
  }
}

net::NodeId FaultInjector::resolve_node(const sim::FaultEvent& ev) const {
  if (sim::fault_kind_is_node(ev.kind))
    return static_cast<net::NodeId>(ev.target % cluster_.size());
  if (sim::fault_kind_is_domain(ev.kind)) return 0;  // resolved per member
  const std::size_t k = num_vms_ > 0 ? ev.target % num_vms_ : 0;
  switch (ev.kind) {
    case sim::FaultKind::kDestCrash:
    case sim::FaultKind::kSlowReceiver:
      // Destination of migration #k under the experiment's round-robin map.
      return static_cast<net::NodeId>(num_vms_ + k % num_destinations_);
    default:
      return static_cast<net::NodeId>(k);  // source node of migration #k
  }
}

void FaultInjector::arm() {
  for (const sim::FaultEvent& ev : plan_.events) {
    slots_.push_back(Slot{this, ev, resolve_node(ev)});
    Slot* s = &slots_.back();
    sim_.schedule_at(ev.at, [s] { s->self->apply_event(s->ev, s->node); });
    sim_.schedule_at(ev.at + ev.duration_s,
                     [s] { s->self->restore_event(s->ev, s->node); });
  }
  if (plan_.churn) arm_churn();
}

void FaultInjector::arm_churn() {
  const sim::FaultChurnSpec& cs = plan_.churn_spec;
  std::size_t n_nodes = cs.nodes > 0 ? cs.nodes : num_vms_ + num_destinations_;
  n_nodes = std::min(n_nodes, cluster_.size());
  // Fixed construction order (node-major, then category, then domains):
  // every process owns a named fork of the experiment stream, so adding a
  // category or resizing the fleet never perturbs the other processes.
  const struct {
    const char* name;
    sim::FaultKind kind;
    double mtbf, mttr;
  } cats[] = {
      {"crash", sim::FaultKind::kNodeCrash, cs.crash_mtbf, cs.crash_mttr},
      {"degrade", sim::FaultKind::kNodeDegrade, cs.degrade_mtbf, cs.degrade_mttr},
      {"flap", sim::FaultKind::kNodeFlap, cs.flap_mtbf, cs.flap_mttr},
  };
  for (std::size_t n = 0; n < n_nodes; ++n) {
    const sim::Rng base = cluster_.rng().fork("churn", n);
    for (const auto& cat : cats) {
      if (!(cat.mtbf > 0)) continue;
      sim::FaultEvent ev;
      ev.kind = cat.kind;
      ev.factor = cs.factor;
      ev.target = static_cast<std::uint32_t>(n);
      churn_.push_back(ChurnProc{this, base.fork(cat.name), ev, cat.mtbf, cat.mttr});
      schedule_next(churn_.back(), cs.from);
    }
  }
  if (cs.domain_mtbf > 0) {
    for (std::size_t d = 0; d < plan_.domains.size(); ++d) {
      sim::FaultEvent ev;
      ev.kind = sim::FaultKind::kDomainCrash;
      ev.factor = cs.factor;
      ev.target = static_cast<std::uint32_t>(d);
      churn_.push_back(ChurnProc{this, cluster_.rng().fork("churn-domain", d), ev,
                                 cs.domain_mtbf, cs.domain_mttr});
      schedule_next(churn_.back(), cs.from);
    }
  }
}

void FaultInjector::schedule_next(ChurnProc& p, double t_base) {
  const double at = t_base + p.rng.exponential(p.mtbf);
  const double dur = std::max(0.5, p.rng.exponential(p.mttr));
  if (plan_.churn_spec.until > 0 && at > plan_.churn_spec.until) return;
  p.ev.at = at;
  p.ev.duration_s = dur;
  ChurnProc* pp = &p;
  sim_.schedule_at(at, [pp] { pp->self->fire_churn(*pp); });
}

void FaultInjector::fire_churn(ChurnProc& p) {
  apply_event(p.ev, resolve_node(p.ev));
  ChurnProc* pp = &p;
  sim_.schedule_at(p.ev.at + p.ev.duration_s, [pp] { pp->self->restore_churn(*pp); });
}

void FaultInjector::restore_churn(ChurnProc& p) {
  restore_event(p.ev, resolve_node(p.ev));
  // Next occurrence counts its MTBF gap from the end of this repair window.
  schedule_next(p, p.ev.at + p.ev.duration_s);
}

void FaultInjector::apply_event(const sim::FaultEvent& ev, net::NodeId node) {
  auto& net = cluster_.network();
  ++faults_applied_;
  switch (ev.kind) {
    case sim::FaultKind::kSourceCrash:
    case sim::FaultKind::kDestCrash:
    case sim::FaultKind::kNodeCrash:
      ++window_holds_[node];
      crash_node(node);
      break;
    case sim::FaultKind::kLinkDegrade:
    case sim::FaultKind::kNodeDegrade:
      ++window_holds_[node];
      net.scale_node_capacity(node, ev.factor, ev.factor);
      break;
    case sim::FaultKind::kLinkFlap:
    case sim::FaultKind::kNodeFlap:
      ++window_holds_[node];
      net.set_link_flapped(node, true);
      break;
    case sim::FaultKind::kSlowReceiver:
      ++window_holds_[node];
      net.scale_node_capacity(node, 1.0, ev.factor);
      break;
    case sim::FaultKind::kRepoOutage:
      if (outage_holds_++ == 0) set_repo_available(false);
      break;
    case sim::FaultKind::kDomainCrash:
      // One correlated event: every member node dies in the same instant
      // (ascending id), so a migration whose source AND destination share
      // the rack loses both endpoints atomically.
      ++correlated_events_;
      for (const net::NodeId n : domain_nodes_[ev.target]) {
        ++window_holds_[n];
        crash_node(n);
      }
      break;
    case sim::FaultKind::kDomainDegrade:
      ++correlated_events_;
      for (const net::NodeId n : domain_nodes_[ev.target]) {
        ++window_holds_[n];
        net.scale_node_capacity(n, ev.factor, ev.factor);
      }
      break;
  }
}

void FaultInjector::restore_event(const sim::FaultEvent& ev, net::NodeId node) {
  auto& net = cluster_.network();
  switch (ev.kind) {
    case sim::FaultKind::kSourceCrash:
    case sim::FaultKind::kDestCrash:
    case sim::FaultKind::kNodeCrash:
      reboot_node(node);
      --window_holds_[node];
      break;
    case sim::FaultKind::kLinkDegrade:
    case sim::FaultKind::kNodeDegrade:
      net.scale_node_capacity(node, 1.0 / ev.factor, 1.0 / ev.factor);
      --window_holds_[node];
      break;
    case sim::FaultKind::kLinkFlap:
    case sim::FaultKind::kNodeFlap:
      net.set_link_flapped(node, false);
      --window_holds_[node];
      break;
    case sim::FaultKind::kSlowReceiver:
      net.scale_node_capacity(node, 1.0, 1.0 / ev.factor);
      --window_holds_[node];
      break;
    case sim::FaultKind::kRepoOutage:
      if (--outage_holds_ == 0) set_repo_available(true);
      break;
    case sim::FaultKind::kDomainCrash:
      for (const net::NodeId n : domain_nodes_[ev.target]) {
        reboot_node(n);
        --window_holds_[n];
      }
      break;
    case sim::FaultKind::kDomainDegrade:
      for (const net::NodeId n : domain_nodes_[ev.target]) {
        net.scale_node_capacity(n, 1.0 / ev.factor, 1.0 / ev.factor);
        --window_holds_[n];
      }
      break;
  }
}

void FaultInjector::crash_node(net::NodeId n) {
  if (down_holds_[n]++ != 0) return;  // already down (overlapping windows)
  ++node_crashes_;
  // Order matters: fail the node's flows first (their continuations are
  // queued on the fast lane, not yet resumed), then flag affected sessions
  // aborted — by the time a failed transfer observes `false`, aborted() is
  // already true.
  cluster_.network().set_node_up(n, false);
  mw_.on_node_down(n);
  // The crash freezes every guest hosted there until the node reboots
  // (fail-recover model: host RAM and local disk survive the reboot).
  for (std::size_t i = 0; i < mw_.vm_count(); ++i) {
    vm::VmInstance& v = mw_.vm(i);
    if (v.node() == n) {
      v.pause();
      paused_vms_[n].push_back(v.id());
    }
  }
  down_since_[n] = sim_.now();
}

void FaultInjector::reboot_node(net::NodeId n) {
  if (--down_holds_[n] != 0) return;
  cluster_.network().set_node_up(n, true);
  const double down_for = sim_.now() - down_since_[n];
  node_downtime_s_ += down_for;
  for (int id : paused_vms_[n]) {
    for (std::size_t i = 0; i < mw_.vm_count(); ++i) {
      vm::VmInstance& v = mw_.vm(i);
      if (v.id() == id) {
        v.resume();
        fault_pause_s_ += down_for;
        break;
      }
    }
  }
  paused_vms_[n].clear();
}

void FaultInjector::set_repo_available(bool up) {
  cluster_.repository().set_available(up);
  if (cluster_.pvfs() != nullptr) cluster_.pvfs()->set_available(up);
}

}  // namespace hm::cloud
