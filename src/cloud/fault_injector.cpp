#include "cloud/fault_injector.h"

namespace hm::cloud {

FaultInjector::FaultInjector(sim::Simulator& sim, vm::Cluster& cluster, Middleware& mw,
                             sim::FaultPlan plan, std::size_t num_vms,
                             std::size_t num_destinations)
    : sim_(sim),
      cluster_(cluster),
      mw_(mw),
      plan_(std::move(plan)),
      num_vms_(num_vms),
      num_destinations_(num_destinations == 0 ? 1 : num_destinations),
      down_holds_(cluster.size(), 0),
      paused_vms_(cluster.size()),
      down_since_(cluster.size(), 0) {}

net::NodeId FaultInjector::resolve_node(const sim::FaultEvent& ev) const {
  const std::size_t k = num_vms_ > 0 ? ev.target % num_vms_ : 0;
  switch (ev.kind) {
    case sim::FaultKind::kDestCrash:
    case sim::FaultKind::kSlowReceiver:
      // Destination of migration #k under the experiment's round-robin map.
      return static_cast<net::NodeId>(num_vms_ + k % num_destinations_);
    default:
      return static_cast<net::NodeId>(k);  // source node of migration #k
  }
}

void FaultInjector::arm() {
  for (const sim::FaultEvent& ev : plan_.events) {
    slots_.push_back(Slot{this, ev, resolve_node(ev)});
    Slot* s = &slots_.back();
    sim_.schedule_at(ev.at, [s] { s->self->apply(*s); });
    sim_.schedule_at(ev.at + ev.duration_s, [s] { s->self->restore(*s); });
  }
}

void FaultInjector::apply(Slot& s) {
  auto& net = cluster_.network();
  ++faults_applied_;
  switch (s.ev.kind) {
    case sim::FaultKind::kSourceCrash:
    case sim::FaultKind::kDestCrash:
      crash_node(s.node);
      break;
    case sim::FaultKind::kLinkDegrade:
      net.scale_node_capacity(s.node, s.ev.factor, s.ev.factor);
      break;
    case sim::FaultKind::kLinkFlap:
      net.set_link_flapped(s.node, true);
      break;
    case sim::FaultKind::kSlowReceiver:
      net.scale_node_capacity(s.node, 1.0, s.ev.factor);
      break;
    case sim::FaultKind::kRepoOutage:
      if (outage_holds_++ == 0) set_repo_available(false);
      break;
  }
}

void FaultInjector::restore(Slot& s) {
  auto& net = cluster_.network();
  switch (s.ev.kind) {
    case sim::FaultKind::kSourceCrash:
    case sim::FaultKind::kDestCrash:
      reboot_node(s.node);
      break;
    case sim::FaultKind::kLinkDegrade:
      net.scale_node_capacity(s.node, 1.0 / s.ev.factor, 1.0 / s.ev.factor);
      break;
    case sim::FaultKind::kLinkFlap:
      net.set_link_flapped(s.node, false);
      break;
    case sim::FaultKind::kSlowReceiver:
      net.scale_node_capacity(s.node, 1.0, 1.0 / s.ev.factor);
      break;
    case sim::FaultKind::kRepoOutage:
      if (--outage_holds_ == 0) set_repo_available(true);
      break;
  }
}

void FaultInjector::crash_node(net::NodeId n) {
  if (down_holds_[n]++ != 0) return;  // already down (overlapping windows)
  // Order matters: fail the node's flows first (their continuations are
  // queued on the fast lane, not yet resumed), then flag affected sessions
  // aborted — by the time a failed transfer observes `false`, aborted() is
  // already true.
  cluster_.network().set_node_up(n, false);
  mw_.on_node_down(n);
  // The crash freezes every guest hosted there until the node reboots
  // (fail-recover model: host RAM and local disk survive the reboot).
  for (std::size_t i = 0; i < mw_.vm_count(); ++i) {
    vm::VmInstance& v = mw_.vm(i);
    if (v.node() == n) {
      v.pause();
      paused_vms_[n].push_back(v.id());
    }
  }
  down_since_[n] = sim_.now();
}

void FaultInjector::reboot_node(net::NodeId n) {
  if (--down_holds_[n] != 0) return;
  cluster_.network().set_node_up(n, true);
  const double down_for = sim_.now() - down_since_[n];
  for (int id : paused_vms_[n]) {
    for (std::size_t i = 0; i < mw_.vm_count(); ++i) {
      vm::VmInstance& v = mw_.vm(i);
      if (v.id() == id) {
        v.resume();
        fault_pause_s_ += down_for;
        break;
      }
    }
  }
  paused_vms_[n].clear();
}

void FaultInjector::set_repo_available(bool up) {
  cluster_.repository().set_available(up);
  if (cluster_.pvfs() != nullptr) cluster_.pvfs()->set_available(up);
}

}  // namespace hm::cloud
