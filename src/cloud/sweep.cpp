#include "cloud/sweep.h"

#include <atomic>
#include <thread>

#include "sim/worker_budget.h"

namespace hm::cloud {

std::vector<ExperimentResult> run_sweep(const std::vector<SweepItem>& items,
                                        unsigned threads) {
  std::vector<ExperimentResult> results(items.size());
  if (items.empty()) return results;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(items.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) return;
      Experiment exp(items[i].config);
      results[i] = exp.run();
    }
  };

  // Extra workers beyond the caller come out of the shared process budget,
  // so a sweep of sharded experiments (sweep threads x shard workers)
  // cannot oversubscribe the machine: whatever this layer takes, the shard
  // layer no longer can, and vice versa. The caller always participates,
  // so the sweep completes even with an empty budget.
  sim::WorkerGrant grant(sim::WorkerBudget::instance(), threads - 1);
  std::vector<std::thread> pool;
  pool.reserve(grant.granted());
  for (unsigned t = 0; t < grant.granted(); ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace hm::cloud
