#include "cloud/sweep.h"

#include <atomic>
#include <thread>

namespace hm::cloud {

std::vector<ExperimentResult> run_sweep(const std::vector<SweepItem>& items,
                                        unsigned threads) {
  std::vector<ExperimentResult> results(items.size());
  if (items.empty()) return results;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(items.size()));

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) return;
      Experiment exp(items[i].config);
      results[i] = exp.run();
    }
  };

  if (threads == 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace hm::cloud
