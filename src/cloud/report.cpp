#include "cloud/report.h"

#include <algorithm>
#include <cstdio>

#include "cloud/experiment.h"
#include "core/metrics.h"

namespace hm::cloud {

namespace {
std::string printf_str(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

void sweep_row_fields(std::ostream& os, const ExperimentResult& r,
                      const SweepRowOptions& opt) {
  const double wall_s = r.wall_ms / 1e3;
  const double epochs =
      r.engine_recomputes ? static_cast<double>(r.engine_recomputes) : 1.0;
  os << ", \"completed\": " << (r.completed ? "true" : "false")
     << ", \"sim_s\": " << r.sim_duration
     << ", \"wall_ms\": " << r.wall_ms
     << ", \"events\": " << r.engine_events
     << ", \"events_per_sec\": " << (wall_s > 0 ? r.engine_events / wall_s : 0)
     << ", \"flows\": " << r.engine_flows
     << ", \"flows_per_sec\": " << (wall_s > 0 ? r.engine_flows / wall_s : 0)
     << ", \"solver_epochs\": " << r.engine_recomputes
     << ", \"solver_components\": " << r.engine_components
     << ", \"flows_resolved\": " << r.engine_flows_resolved
     << ", \"flows_resolved_per_epoch\": " << (r.engine_flows_resolved / epochs)
     << ", \"escalations\": " << r.engine_escalations
     << ", \"coroutine_frames\": " << r.engine_frames
     << ", \"frames_reused\": " << r.engine_frames_reused
     << ", \"frame_heap_allocs\": " << r.engine_frame_heap_allocs
     << ", \"avg_migration_s\": " << r.avg_migration_time
     << ", \"total_traffic_gb\": " << r.total_traffic / (1024.0 * 1024 * 1024);
  if (opt.fault_regime) {
    const RecoveryStats& rc = r.recovery;
    os << ", \"faults_injected\": " << rc.faults_injected
       << ", \"node_crashes\": " << rc.node_crashes
       << ", \"correlated_events\": " << rc.correlated_events
       << ", \"retries\": " << rc.total_retries
       << ", \"abandoned\": " << rc.migrations_abandoned
       << ", \"recovered\": " << rc.migrations_recovered
       << ", \"salvaged_chunks\": " << rc.salvaged_chunks
       << ", \"retransferred_gb\": "
       << rc.retransferred_bytes / (1024.0 * 1024 * 1024)
       << ", \"fault_downtime_s\": " << rc.fault_downtime_s
       << ", \"node_downtime_s\": " << rc.node_downtime_s
       << ", \"max_time_to_recover_s\": " << rc.max_time_to_recover_s
       << ", \"recovery_p50_s\": " << rc.recovery_p50_s
       << ", \"recovery_p99_s\": " << rc.recovery_p99_s
       << ", \"recovery_p999_s\": " << rc.recovery_p999_s;
  }
  // Downtime percentiles move under either regime (fault recovery stretches
  // them, preemption churn multiplies attempts); for fault rows they close
  // the recovery block, byte-identical to the pre-scheduler layout.
  if (opt.fault_regime || opt.scheduler_regime) {
    os << ", \"downtime_p50_s\": " << r.recovery.downtime_p50_s
       << ", \"downtime_p99_s\": " << r.recovery.downtime_p99_s
       << ", \"downtime_p999_s\": " << r.recovery.downtime_p999_s;
  }
  if (opt.scheduler_regime) {
    const SchedulerStats& s = r.scheduler;
    os << ", \"requests\": " << s.requests
       << ", \"requests_dispatched\": " << s.dispatched
       << ", \"requests_completed\": " << s.completed
       << ", \"requests_abandoned\": " << s.abandoned
       << ", \"requests_rejected\": " << s.rejected
       << ", \"preemptions\": " << s.preemptions
       << ", \"peak_queue_depth\": " << s.peak_queue_depth
       << ", \"peak_running\": " << s.peak_running
       << ", \"queueing_p50_s\": " << s.queueing_p50_s
       << ", \"queueing_p99_s\": " << s.queueing_p99_s
       << ", \"queueing_p999_s\": " << s.queueing_p999_s
       << ", \"max_queueing_delay_s\": " << s.max_queueing_delay_s;
  }
  if (opt.audit) {
    os << ", \"audit_checks\": " << r.audit_checks
       << ", \"audit_violations\": " << r.audit_violations.size();
  }
}

std::string fmt_seconds(double s) { return printf_str("%.2f s", s); }

std::string fmt_bytes(double bytes) {
  constexpr double kKB = 1024.0, kMB = kKB * 1024, kGB = kMB * 1024;
  if (bytes >= kGB) return printf_str("%.2f GB", bytes / kGB);
  if (bytes >= kMB) return printf_str("%.1f MB", bytes / kMB);
  if (bytes >= kKB) return printf_str("%.1f KB", bytes / kKB);
  return printf_str("%.0f B", bytes);
}

std::string fmt_mb(double bytes) { return printf_str("%.0f MB", bytes / (1024.0 * 1024)); }
std::string fmt_gb(double bytes) {
  return printf_str("%.2f GB", bytes / (1024.0 * 1024 * 1024));
}
std::string fmt_pct(double fraction) { return printf_str("%.1f%%", fraction * 100.0); }
std::string fmt_double(double v, int precision) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", precision);
  return printf_str(fmt, v);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      cell.resize(widths[i], ' ');
      os << cell << " | ";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 3, '-') << "+";
    os << "\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
      if (i > 0) os << ',';
      const std::string cell = i < cells.size() ? cells[i] : "";
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char c : cell) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_, headers_.size());
  for (const auto& row : rows_) emit(row, headers_.size());
}

void print_table1(std::ostream& os) {
  Table t({"Approach", "Local storage transfer strategy"});
  for (core::Approach a :
       {core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
        core::Approach::kPrecopy, core::Approach::kPvfsShared}) {
    t.add_row({core::approach_name(a), core::approach_strategy_summary(a)});
  }
  os << "Table 1: Summary of compared approaches\n";
  t.print(os);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace hm::cloud
