#include "cloud/report.h"

#include <algorithm>
#include <cstdio>

#include "core/metrics.h"

namespace hm::cloud {

namespace {
std::string printf_str(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}
}  // namespace

std::string fmt_seconds(double s) { return printf_str("%.2f s", s); }

std::string fmt_bytes(double bytes) {
  constexpr double kKB = 1024.0, kMB = kKB * 1024, kGB = kMB * 1024;
  if (bytes >= kGB) return printf_str("%.2f GB", bytes / kGB);
  if (bytes >= kMB) return printf_str("%.1f MB", bytes / kMB);
  if (bytes >= kKB) return printf_str("%.1f KB", bytes / kKB);
  return printf_str("%.0f B", bytes);
}

std::string fmt_mb(double bytes) { return printf_str("%.0f MB", bytes / (1024.0 * 1024)); }
std::string fmt_gb(double bytes) {
  return printf_str("%.2f GB", bytes / (1024.0 * 1024 * 1024));
}
std::string fmt_pct(double fraction) { return printf_str("%.1f%%", fraction * 100.0); }
std::string fmt_double(double v, int precision) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", precision);
  return printf_str(fmt, v);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : "";
      cell.resize(widths[i], ' ');
      os << cell << " | ";
    }
    os << "\n";
  };
  auto print_sep = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 3, '-') << "+";
    os << "\n";
  };

  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&os](const std::vector<std::string>& cells, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
      if (i > 0) os << ',';
      const std::string cell = i < cells.size() ? cells[i] : "";
      if (cell.find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char c : cell) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << cell;
      }
    }
    os << '\n';
  };
  emit(headers_, headers_.size());
  for (const auto& row : rows_) emit(row, headers_.size());
}

void print_table1(std::ostream& os) {
  Table t({"Approach", "Local storage transfer strategy"});
  for (core::Approach a :
       {core::Approach::kHybrid, core::Approach::kMirror, core::Approach::kPostcopy,
        core::Approach::kPrecopy, core::Approach::kPvfsShared}) {
    t.add_row({core::approach_name(a), core::approach_strategy_summary(a)});
  }
  os << "Table 1: Summary of compared approaches\n";
  t.print(os);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace hm::cloud
