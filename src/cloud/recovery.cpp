#include "cloud/recovery.h"

#include <algorithm>
#include <cmath>

namespace hm::cloud {

double nearest_rank_percentile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  if (rank > samples.size()) rank = samples.size();
  return samples[rank - 1];
}

void recovery_from_migrations(const std::vector<core::MigrationRecord>& migrations,
                              RecoveryStats* out) {
  out->total_retries = 0;
  out->migrations_abandoned = 0;
  out->migrations_recovered = 0;
  out->retransferred_bytes = 0;
  out->salvaged_chunks = 0;
  out->max_time_to_recover_s = 0;
  std::vector<double> recovery, downtime;
  for (const core::MigrationRecord& m : migrations) {
    out->total_retries += m.retries;
    out->retransferred_bytes += m.retransferred_bytes;
    out->salvaged_chunks += m.salvaged_chunks;
    out->migrations_abandoned += m.abandoned ? 1 : 0;
    const double ttr = m.time_to_recover();
    out->max_time_to_recover_s = std::max(out->max_time_to_recover_s, ttr);
    if (ttr > 0) {
      ++out->migrations_recovered;
      recovery.push_back(ttr);
    }
    if (!m.abandoned) downtime.push_back(m.downtime_s);
  }
  out->recovery_p50_s = nearest_rank_percentile(recovery, 0.50);
  out->recovery_p99_s = nearest_rank_percentile(recovery, 0.99);
  out->recovery_p999_s = nearest_rank_percentile(recovery, 0.999);
  out->downtime_p50_s = nearest_rank_percentile(downtime, 0.50);
  out->downtime_p99_s = nearest_rank_percentile(downtime, 0.99);
  out->downtime_p999_s = nearest_rank_percentile(downtime, 0.999);
}

}  // namespace hm::cloud
