// Replays a sim::FaultPlan through the ordinary simulator lanes: every
// fault is a pair of scheduled events (apply at `at`, restore at
// `at + duration_s`) acting on the cluster — node crash/reboot, NIC
// capacity scaling, link flaps, repository/PVFS outage windows — plus the
// middleware hook that aborts in-flight migration attempts whose endpoints
// just died. Because the plan is materialized up front from the experiment
// seed and the injector only uses scheduled timers, fault runs inherit the
// engine's determinism contract unchanged.
//
// Churn mode (plan.churn): instead of a bounded pre-built list, each node
// runs continuous per-category fault processes (crash / degrade / flap) and
// each failure domain a correlated-crash process, every process on its own
// forked RNG stream (cluster rng -> fork("churn", node) -> per-category
// fork). Occurrences are emitted lazily — one timer ahead per process —
// with exponential MTBF gaps and MTTR durations, so a long-horizon run
// never materializes its (unbounded) fault timeline. Each process's draw
// sequence is self-contained, which keeps churn runs byte-identical across
// solver regimes and shard drivers just like scripted plans.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cloud/middleware.h"
#include "sim/fault_plan.h"

namespace hm::cloud {

class FaultInjector {
 public:
  /// `num_vms`/`num_destinations` mirror the experiment's migration
  /// schedule: migration #k runs from node k to node num_vms + k %
  /// num_destinations, which is how a FaultEvent::target resolves to nodes.
  FaultInjector(sim::Simulator& sim, vm::Cluster& cluster, Middleware& mw,
                sim::FaultPlan plan, std::size_t num_vms,
                std::size_t num_destinations);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule apply/restore timers for every planned event, and start the
  /// churn processes (if the plan carries a churn spec).
  void arm();

  std::uint32_t faults_applied() const noexcept { return faults_applied_; }
  /// Cumulative guest pause time attributable to crashed hosts (summed over
  /// paused VMs) — the downtime-inflation component of the recovery metrics.
  double fault_pause_s() const noexcept { return fault_pause_s_; }
  /// Up -> down node transitions (a correlated domain crash counts one per
  /// member node it actually took down).
  std::uint32_t node_crashes() const noexcept { return node_crashes_; }
  /// Domain-scoped (multi-node correlated) events applied.
  std::uint32_t correlated_events() const noexcept { return correlated_events_; }
  /// Node-seconds spent down, summed over nodes (availability telemetry).
  double node_downtime_s() const noexcept { return node_downtime_s_; }

  /// Auditor attribution: is some fault window currently open on node `n`
  /// (crash, degrade, flap — anything that legitimately stalls or slows a
  /// migration touching it)?
  bool node_excused(net::NodeId n) const noexcept {
    return n < window_holds_.size() && window_holds_[n] > 0;
  }
  /// Is a repository/PVFS outage window currently open?
  bool repo_disrupted() const noexcept { return outage_holds_ > 0; }

 private:
  /// Stable capture block for the two-word timer closures (scripted events).
  struct Slot {
    FaultInjector* self;
    sim::FaultEvent ev;
    net::NodeId node = 0;  // resolved target node (node-scoped kinds)
  };
  /// One continuous churn process (per node x category, or per domain).
  /// Draw order per occurrence: gap, then duration — always from this
  /// process's own stream, so interleaving with other processes can never
  /// shift the draws.
  struct ChurnProc {
    FaultInjector* self;
    sim::Rng rng;
    sim::FaultEvent ev;  // kind/factor/target template; at/duration_s per occurrence
    double mtbf = 0;
    double mttr = 0;
  };

  net::NodeId resolve_node(const sim::FaultEvent& ev) const;
  void apply_event(const sim::FaultEvent& ev, net::NodeId node);
  void restore_event(const sim::FaultEvent& ev, net::NodeId node);
  void crash_node(net::NodeId n);
  void reboot_node(net::NodeId n);
  void set_repo_available(bool up);
  void arm_churn();
  /// Draw the next occurrence of `p` no earlier than `t_base` and schedule
  /// its apply/restore timers; stops silently past churn_spec.until.
  void schedule_next(ChurnProc& p, double t_base);
  void fire_churn(ChurnProc& p);
  void restore_churn(ChurnProc& p);

  sim::Simulator& sim_;
  vm::Cluster& cluster_;
  Middleware& mw_;
  sim::FaultPlan plan_;
  std::size_t num_vms_;
  std::size_t num_destinations_;
  std::deque<Slot> slots_;       // deque: addresses must survive the timers
  std::deque<ChurnProc> churn_;  // likewise
  /// Domain member lists clipped to real cluster nodes.
  std::vector<std::vector<net::NodeId>> domain_nodes_;
  // Overlapping windows on the same resource are hold-counted: the resource
  // goes down on 0 -> 1 and comes back on 1 -> 0.
  std::vector<std::uint32_t> down_holds_;
  std::vector<std::vector<int>> paused_vms_;  // VM ids frozen per crashed node
  std::vector<double> down_since_;
  /// Open fault windows of any kind per node (crash + degrade + flap), for
  /// the auditor's liveness excuses.
  std::vector<std::uint32_t> window_holds_;
  std::uint32_t outage_holds_ = 0;
  std::uint32_t faults_applied_ = 0;
  std::uint32_t node_crashes_ = 0;
  std::uint32_t correlated_events_ = 0;
  double fault_pause_s_ = 0;
  double node_downtime_s_ = 0;
};

}  // namespace hm::cloud
