// Replays a sim::FaultPlan through the ordinary simulator lanes: every
// fault is a pair of scheduled events (apply at `at`, restore at
// `at + duration_s`) acting on the cluster — node crash/reboot, NIC
// capacity scaling, link flaps, repository/PVFS outage windows — plus the
// middleware hook that aborts in-flight migration attempts whose endpoints
// just died. Because the plan is materialized up front from the experiment
// seed and the injector only uses scheduled timers, fault runs inherit the
// engine's determinism contract unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cloud/middleware.h"
#include "sim/fault_plan.h"

namespace hm::cloud {

class FaultInjector {
 public:
  /// `num_vms`/`num_destinations` mirror the experiment's migration
  /// schedule: migration #k runs from node k to node num_vms + k %
  /// num_destinations, which is how a FaultEvent::target resolves to nodes.
  FaultInjector(sim::Simulator& sim, vm::Cluster& cluster, Middleware& mw,
                sim::FaultPlan plan, std::size_t num_vms,
                std::size_t num_destinations);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule apply/restore timers for every planned event.
  void arm();

  std::uint32_t faults_applied() const noexcept { return faults_applied_; }
  /// Cumulative guest pause time attributable to crashed hosts (summed over
  /// paused VMs) — the downtime-inflation component of the recovery metrics.
  double fault_pause_s() const noexcept { return fault_pause_s_; }

 private:
  /// Stable capture block for the two-word timer closures.
  struct Slot {
    FaultInjector* self;
    sim::FaultEvent ev;
    net::NodeId node = 0;  // resolved target node (node-scoped kinds)
  };

  net::NodeId resolve_node(const sim::FaultEvent& ev) const;
  void apply(Slot& s);
  void restore(Slot& s);
  void crash_node(net::NodeId n);
  void reboot_node(net::NodeId n);
  void set_repo_available(bool up);

  sim::Simulator& sim_;
  vm::Cluster& cluster_;
  Middleware& mw_;
  sim::FaultPlan plan_;
  std::size_t num_vms_;
  std::size_t num_destinations_;
  std::deque<Slot> slots_;  // deque: addresses must survive the timers
  // Overlapping windows on the same resource are hold-counted: the resource
  // goes down on 0 -> 1 and comes back on 1 -> 0.
  std::vector<std::uint32_t> down_holds_;
  std::vector<std::vector<int>> paused_vms_;  // VM ids frozen per crashed node
  std::vector<double> down_since_;
  std::uint32_t outage_holds_ = 0;
  std::uint32_t faults_applied_ = 0;
  double fault_pause_s_ = 0;
};

}  // namespace hm::cloud
