// Continuous-arrival migration scheduler: the steady-state service layer on
// top of Middleware/MigrationManager. An open stream of migration requests
// (sim/arrival_process.h) feeds a two-class FIFO admission queue; a bounded
// number run concurrently, each against a destination chosen by the
// placement policy (cloud/placement.h) under capacity and anti-affinity
// constraints. High-priority requests may preempt running low-priority
// migrations; preempted and fault-aborted attempts both reuse the salvage
// path (Middleware::migrate_attempt), so a re-dispatched request adopts the
// partial destination replica its earlier attempt left behind.
//
// Determinism: every decision happens inside ordinary simulator events
// (arrival timers, attempt completions), placement is pure bookkeeping, and
// the only draws are the arrival process's own forked streams plus one
// "sched-vm" stream for victim-VM selection — so the request timeline is a
// pure function of (config, seed), byte-identical in both solver regimes.
// The scheduler spans the whole fleet (any VM, any destination), so
// scheduler regimes statically collapse the shard plan (cloud/shard_plan.cpp)
// and --shards runs gate trivially against the shards=1 timeline.
//
// Queue discipline (asserted by tests/cloud/scheduler_test.cpp):
//  * strict priority: the high queue is always served before the low queue;
//  * FIFO within a class, head-of-line blocking included — a request whose
//    placement is currently infeasible blocks its class until a completion
//    changes the occupancy map;
//  * a preempted request requeues at the FRONT of the low queue (it was
//    already admitted once — new arrivals must not overtake it) and keeps
//    its VM, destination and reservation;
//  * no deadlock: when nothing is running, placement state is frozen, so a
//    head request that cannot dispatch then can never dispatch — it is
//    rejected (counted, never silently dropped) and the queue drains on.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "cloud/middleware.h"
#include "cloud/placement.h"
#include "sim/arrival_process.h"
#include "sim/sync.h"

namespace hm::cloud {

struct SchedulerConfig {
  sim::ArrivalSpec arrivals{};
  PlacementConfig placement{};
  /// Bounded admission: at most this many migrations in flight.
  std::uint32_t max_concurrent = 4;
  /// High-priority head-of-queue requests may abort the youngest running
  /// low-priority migration (pre-control-transfer only) to free a slot.
  bool preempt = true;
  /// Fault-abort retry budget per request (0 = inherit the middleware's
  /// ApproachConfig::max_attempts). Preemptions do not count against it.
  int max_attempts = 0;

  bool enabled() const noexcept { return arrivals.enabled(); }
};

/// Parse "--arrivals=ARRIVALS[;sched:k=v,...]": the arrival-process part per
/// sim/arrival_process.h, plus scheduler knobs — concurrent (admission
/// bound, > 0), capacity (per-node, 0 = unlimited), groups (anti-affinity
/// classes, 0 = off), policy (round-robin|least-loaded), preempt (0|1),
/// attempts (retry budget, 0 = inherit). Returns false with *err set on a
/// malformed spec.
bool parse_scheduler_spec(std::string_view arg, SchedulerConfig* out,
                          std::string* err);

/// One request's lifecycle, kept for the whole run (tests and percentile
/// extraction read these; deque storage keeps references stable).
struct RequestRecord {
  std::uint64_t id = 0;
  bool high_priority = false;
  double t_arrival = 0;
  double t_dispatched = -1;  // first admission (-1 = never admitted)
  double t_completed = -1;   // source released (-1 = not completed)
  int vm_id = -1;            // chosen at first dispatch
  net::NodeId dst = 0;       // fixed across preemptions (salvage pins it)
  std::uint32_t preemptions = 0;
  std::uint32_t fault_retries = 0;
  bool abandoned = false;  // fault-retry budget exhausted
  bool rejected = false;   // provably unplaceable, never admitted
  core::MigrationRecord* migration = nullptr;  // null until first dispatch

  /// Time from arrival to first admission (the queueing-delay percentile
  /// sample; later requeues after preemption are not re-counted).
  double queueing_delay() const noexcept {
    return t_dispatched >= 0 ? t_dispatched - t_arrival : 0;
  }

  // --- scheduler-internal state ------------------------------------------
  int vm_slot = -1;              // middleware slot index of vm_id
  double t_last_dispatch = -1;   // preemption picks the youngest victim
  bool preempt_requested = false;
};

/// Aggregates emitted into sweep rows (only for scheduler regimes — the
/// regime-gated field convention of bench/fig4_scale_sweep.cpp).
struct SchedulerStats {
  std::uint64_t requests = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t rejected = 0;
  std::uint64_t peak_queue_depth = 0;
  std::uint64_t peak_running = 0;
  double max_queueing_delay_s = 0;
  // Deterministic nearest-rank percentiles over per-request queueing delays
  // (cloud/recovery.h machinery).
  double queueing_p50_s = 0;
  double queueing_p99_s = 0;
  double queueing_p999_s = 0;
};

class Scheduler {
 public:
  /// `first_dst`/`num_dsts` define the destination pool (the experiment's
  /// destination nodes). `all_done` must have one add() outstanding for the
  /// scheduler; done() fires when the arrival stream is exhausted and every
  /// request reached a terminal state (completed, abandoned or rejected).
  Scheduler(sim::Simulator& sim, vm::Cluster& cluster, Middleware& mw,
            const SchedulerConfig& cfg, net::NodeId first_dst,
            std::uint32_t num_dsts, sim::WaitGroup* all_done);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Arm the arrival pump (call once, before the event loop runs).
  void start();

  const std::deque<RequestRecord>& requests() const noexcept { return requests_; }
  const PlacementMap& placement() const noexcept { return placement_; }
  std::uint32_t running() const noexcept { return running_; }
  std::size_t queued() const noexcept { return high_q_.size() + low_q_.size(); }
  bool drained() const noexcept { return finished_; }

  /// Aggregates + queueing-delay percentiles over the records so far.
  SchedulerStats stats() const;

 private:
  sim::Task pump_arrivals();
  sim::Task run_request(RequestRecord* r);
  void enqueue(RequestRecord* r);
  void try_dispatch();
  void dispatch(RequestRecord* r);
  /// Abort the youngest preemptible running low-priority migration.
  void maybe_preempt();
  /// Pick the victim VM for a fresh dispatch: a uniform draw (own forked
  /// stream) over idle VMs that have a feasible placement. -1 if none.
  int pick_vm_slot();
  void finish_running(RequestRecord* r);
  void maybe_finish();

  sim::Simulator& sim_;
  vm::Cluster& cluster_;
  Middleware& mw_;
  SchedulerConfig cfg_;
  PlacementMap placement_;
  sim::ArrivalProcess process_;
  sim::Rng vm_rng_;
  sim::WaitGroup* all_done_;
  int max_attempts_;
  double retry_backoff_s_;

  std::deque<RequestRecord> requests_;  // stable addresses for timers/tasks
  std::deque<RequestRecord*> high_q_;
  std::deque<RequestRecord*> low_q_;
  std::vector<RequestRecord*> running_reqs_;
  std::vector<char> vm_busy_;
  std::uint32_t running_ = 0;
  bool arrivals_done_ = false;
  bool finished_ = false;

  std::uint64_t completed_ = 0;
  std::uint64_t preempted_total_ = 0;
  std::uint64_t abandoned_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t peak_queue_depth_ = 0;
  std::uint64_t peak_running_ = 0;
};

}  // namespace hm::cloud
