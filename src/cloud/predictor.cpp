#include "cloud/predictor.h"

namespace hm::cloud {

IoActivityMonitor::IoActivityMonitor(sim::Simulator& sim, vm::VmInstance& vm,
                                     IoMonitorConfig cfg)
    : sim_(sim), vm_(vm), cfg_(cfg) {}

void IoActivityMonitor::start() {
  if (running_) return;
  running_ = true;
  last_bytes_ = vm_.io_stats().bytes_written;
  sim_.spawn(sampler_loop());
}

sim::Task IoActivityMonitor::sampler_loop() {
  while (running_) {
    co_await sim_.delay(cfg_.sample_period_s);
    const double bytes = vm_.io_stats().bytes_written;
    const double rate = (bytes - last_bytes_) / cfg_.sample_period_s;
    last_bytes_ = bytes;
    ewma_Bps_ = samples_ == 0
                    ? rate
                    : cfg_.ewma_alpha * rate + (1.0 - cfg_.ewma_alpha) * ewma_Bps_;
    ++samples_;
  }
}

sim::Task MigrationPlanner::migrate_at_lull(vm::VmInstance& vm, net::NodeId dst,
                                            LullConfig cfg) {
  IoActivityMonitor monitor(sim_, vm, IoMonitorConfig{cfg.check_period_s, 0.3});
  monitor.start();
  const double t0 = sim_.now();
  deadline_forced_ = false;
  // Let the EWMA settle over a couple of samples before trusting it.
  while (monitor.samples() < 3 ||
         monitor.write_rate_ewma_Bps() > cfg.lull_threshold_Bps) {
    if (sim_.now() - t0 >= cfg.deadline_s) {
      deadline_forced_ = true;
      break;
    }
    co_await sim_.delay(cfg.check_period_s);
  }
  initiated_at_ = sim_.now();
  observed_rate_ = monitor.write_rate_ewma_Bps();
  monitor.stop();
  co_await mw_.migrate(vm, dst);
}

}  // namespace hm::cloud
