// I/O activity monitoring and migration-moment prediction.
//
// The paper's conclusion lists this as future work: "we plan to monitor I/O
// patterns with the purpose of predicting the best moment to initiate a live
// migration. Such information could be leveraged by the cloud middleware to
// better orchestrate live migrations within the datacenter."
//
// IoActivityMonitor keeps an exponentially weighted moving average of a VM's
// write pressure; MigrationPlanner defers a requested migration until the
// pressure falls below a threshold (an I/O lull) or a deadline expires, then
// triggers it through the middleware. bench/ablation_predictor quantifies
// the benefit.
#pragma once

#include "cloud/middleware.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "vm/vm_instance.h"

namespace hm::cloud {

struct IoMonitorConfig {
  double sample_period_s = 1.0;
  double ewma_alpha = 0.3;  // weight of the newest sample
};

/// Samples a VM's guest-level write throughput and keeps an EWMA estimate.
class IoActivityMonitor {
 public:
  IoActivityMonitor(sim::Simulator& sim, vm::VmInstance& vm, IoMonitorConfig cfg = {});
  IoActivityMonitor(const IoActivityMonitor&) = delete;
  IoActivityMonitor& operator=(const IoActivityMonitor&) = delete;

  /// Begin sampling (spawns the background sampler).
  void start();
  void stop() noexcept { running_ = false; }

  double write_rate_ewma_Bps() const noexcept { return ewma_Bps_; }
  std::uint64_t samples() const noexcept { return samples_; }
  bool running() const noexcept { return running_; }

 private:
  sim::Task sampler_loop();

  sim::Simulator& sim_;
  vm::VmInstance& vm_;
  IoMonitorConfig cfg_;
  double ewma_Bps_ = 0;
  double last_bytes_ = 0;
  std::uint64_t samples_ = 0;
  bool running_ = false;
};

struct LullConfig {
  /// Initiate the migration once the EWMA write rate drops below this.
  double lull_threshold_Bps = 10e6;
  /// Give up waiting after this long and migrate anyway.
  double deadline_s = 120.0;
  double check_period_s = 1.0;
};

/// Defers a migration to an I/O lull. Completes when the migration (however
/// triggered) has fully finished.
class MigrationPlanner {
 public:
  MigrationPlanner(sim::Simulator& sim, Middleware& mw) : sim_(sim), mw_(mw) {}

  /// Wait for a lull on `vm` (or the deadline), then live-migrate it.
  sim::Task migrate_at_lull(vm::VmInstance& vm, net::NodeId dst, LullConfig cfg = {});

  /// Introspection: when the last planned migration was actually initiated,
  /// and whether the deadline forced it.
  double initiated_at() const noexcept { return initiated_at_; }
  bool deadline_forced() const noexcept { return deadline_forced_; }
  double observed_lull_rate_Bps() const noexcept { return observed_rate_; }

 private:
  sim::Simulator& sim_;
  Middleware& mw_;
  double initiated_at_ = -1;
  bool deadline_forced_ = false;
  double observed_rate_ = 0;
};

}  // namespace hm::cloud
