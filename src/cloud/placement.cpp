#include "cloud/placement.h"

#include <cassert>

namespace hm::cloud {

const char* placement_policy_name(PlacementPolicy p) noexcept {
  switch (p) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kLeastLoaded: return "least-loaded";
  }
  return "?";
}

bool parse_placement_policy(std::string_view name, PlacementPolicy* out) {
  if (name == "round-robin" || name == "rr") {
    *out = PlacementPolicy::kRoundRobin;
    return true;
  }
  if (name == "least-loaded" || name == "ll") {
    *out = PlacementPolicy::kLeastLoaded;
    return true;
  }
  return false;
}

PlacementMap::PlacementMap(PlacementConfig cfg, net::NodeId first_dst,
                           std::uint32_t num_dsts)
    : cfg_(cfg), first_dst_(first_dst), nodes_(num_dsts) {
  if (cfg_.affinity_groups > 0)
    for (Node& nd : nodes_) nd.group_count.assign(cfg_.affinity_groups, 0);
}

bool PlacementMap::admits(const Node& nd, int vm_id, net::NodeId node) const noexcept {
  // A VM never migrates onto the pool node it already occupies (its own
  // residency would also trip the anti-affinity count below).
  if (auto it = resident_of_.find(vm_id); it != resident_of_.end() && it->second == node)
    return false;
  if (cfg_.capacity > 0 && nd.residents + nd.reserved >= cfg_.capacity) return false;
  if (cfg_.affinity_groups > 0 && nd.group_count[group_of(vm_id)] > 0) return false;
  return true;
}

bool PlacementMap::feasible(int vm_id) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (admits(nodes_[i], vm_id, first_dst_ + static_cast<net::NodeId>(i)))
      return true;
  return false;
}

net::NodeId PlacementMap::choose(int vm_id) {
  const std::size_t n = nodes_.size();
  if (cfg_.policy == PlacementPolicy::kRoundRobin) {
    for (std::size_t step = 0; step < n; ++step) {
      const std::size_t i = (rr_cursor_ + step) % n;
      const net::NodeId node = first_dst_ + static_cast<net::NodeId>(i);
      if (admits(nodes_[i], vm_id, node)) {
        rr_cursor_ = (i + 1) % n;
        return node;
      }
    }
  } else {
    std::size_t best = n;
    std::uint32_t best_load = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const net::NodeId node = first_dst_ + static_cast<net::NodeId>(i);
      if (!admits(nodes_[i], vm_id, node)) continue;
      const std::uint32_t load = nodes_[i].residents + nodes_[i].reserved;
      if (best == n || load < best_load) {
        best = i;
        best_load = load;
      }
    }
    if (best < n) return first_dst_ + static_cast<net::NodeId>(best);
  }
  assert(false && "choose() requires feasible(vm_id)");
  return first_dst_;
}

void PlacementMap::reserve(net::NodeId n, int vm_id) {
  Node& nd = nodes_[index_of(n)];
  ++nd.reserved;
  if (cfg_.affinity_groups > 0) ++nd.group_count[group_of(vm_id)];
}

void PlacementMap::release(net::NodeId n, int vm_id) {
  Node& nd = nodes_[index_of(n)];
  assert(nd.reserved > 0);
  --nd.reserved;
  if (cfg_.affinity_groups > 0) --nd.group_count[group_of(vm_id)];
}

void PlacementMap::commit(net::NodeId n, int vm_id) {
  Node& nd = nodes_[index_of(n)];
  assert(nd.reserved > 0);
  --nd.reserved;
  ++nd.residents;  // the group count carries over: the occupant stays
  if (auto it = resident_of_.find(vm_id); it != resident_of_.end()) {
    Node& old = nodes_[index_of(it->second)];
    assert(old.residents > 0);
    --old.residents;
    if (cfg_.affinity_groups > 0) --old.group_count[group_of(vm_id)];
    it->second = n;
  } else {
    resident_of_.emplace(vm_id, n);
  }
}

std::uint32_t PlacementMap::residents(net::NodeId n) const noexcept {
  return nodes_[index_of(n)].residents;
}

std::uint32_t PlacementMap::reserved(net::NodeId n) const noexcept {
  return nodes_[index_of(n)].reserved;
}

}  // namespace hm::cloud
