#include "cloud/experiment.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>

#include "cloud/auditor.h"
#include "cloud/fault_injector.h"
#include "cloud/shard_plan.h"
#include "net/coupled_solver.h"
#include "sim/frame_pool.h"
#include "sim/sharded.h"

namespace hm::cloud {

const char* workload_name(WorkloadKind k) noexcept {
  switch (k) {
    case WorkloadKind::kNone: return "none";
    case WorkloadKind::kIor: return "IOR";
    case WorkloadKind::kAsyncWr: return "AsyncWR";
    case WorkloadKind::kCm1: return "CM1";
    case WorkloadKind::kTrace: return "trace";
  }
  return "?";
}

void ExperimentConfig::normalize() {
  if (workload == WorkloadKind::kCm1) num_vms = static_cast<std::size_t>(cm1.ranks());
  num_migrations = std::min(num_migrations, num_vms);
  if (num_destinations == 0) num_destinations = 1;
  if (shards == 0) shards = 1;
  const std::size_t needed = num_vms + num_destinations;
  if (cluster.num_nodes < needed) cluster.num_nodes = needed;
  cluster.enable_pvfs = (approach == core::Approach::kPvfsShared);
  cluster.seed = seed;
  approach_cfg.approach = approach;
}

namespace {

sim::Task run_and_signal(workloads::Workload* w, vm::VmInstance* v, sim::WaitGroup* wg) {
  co_await w->run(*v);
  wg->done();
}

sim::Task run_cm1_and_signal(workloads::Cm1Application* app, sim::WaitGroup* wg) {
  co_await app->run_all();
  wg->done();
}

sim::Task run_trace_and_signal(workloads::TraceApplication* app, sim::WaitGroup* wg) {
  co_await app->run_all();
  wg->done();
}

sim::Task migrate_and_signal(Middleware* mw, vm::VmInstance* v, net::NodeId dst,
                             sim::WaitGroup* wg) {
  co_await mw->migrate(*v, dst);
  wg->done();
}

/// One planned migration launch; event callbacks capture a pointer to this
/// record (the schedule lambda must fit SmallFn's two-word budget).
struct MigLaunch {
  sim::Simulator* sim;
  Middleware* mw;
  vm::VmInstance* target;
  sim::WaitGroup* done;
  net::NodeId dst;
};

/// Replicate vm::Cluster's topology wiring on a bare FlowNetwork, so the
/// coordinator's mirror gets node ids and switch groups — and therefore
/// constraint ids — identical to every shard's full cluster replica.
void wire_mirror_topology(net::FlowNetwork& net, const vm::ClusterConfig& cfg) {
  for (std::size_t i = 0; i < cfg.num_nodes; ++i) {
    net::SwitchGroupId group = 0;
    if (cfg.nodes_per_switch > 0) {
      const std::size_t sw = i / cfg.nodes_per_switch;
      while (net.switch_group_count() <= sw + 1)
        net.add_switch_group(cfg.switch_uplink_Bps);
      group = static_cast<net::SwitchGroupId>(sw + 1);  // group 0 stays flat
    }
    net.add_node(cfg.nic_Bps, group);
  }
}

/// Epoch-coupled driver selection: shard bodies on dedicated threads
/// rendezvousing on the EpochBarrier, or the same round protocol executed
/// inline round-robin on the caller (the right choice on a single-core
/// host, where thread hand-offs per barrier would dominate). Both produce
/// the identical timeline; HM_COUPLED_DRIVER=threads|seq overrides.
bool coupled_driver_threads() {
  if (const char* e = std::getenv("HM_COUPLED_DRIVER")) {
    if (std::strcmp(e, "threads") == 0) return true;
    if (std::strcmp(e, "seq") == 0) return false;
  }
  return std::thread::hardware_concurrency() > 1;
}

}  // namespace

struct Experiment::SliceDetail {
  struct VmAgg {
    std::uint32_t id;  // global VM id
    core::IoStats io;
    double cpu_seconds;
  };
  /// Per owned VM, ascending id — lets the merge re-accumulate the per-VM
  /// doubles in global VM order, the same order the single-shard loop uses.
  std::vector<VmAgg> per_vm;
  /// Global launch indices of the slice's migrations, ascending; parallel
  /// to the slice result's `migrations` records.
  std::vector<std::uint32_t> launch_ks;
  /// Runtime coupling guard: any base-image fetch means a repository stripe
  /// on a foreign-owned node served traffic this slice cannot account for.
  std::uint64_t repo_chunks_served = 0;
};

struct Experiment::SliceRuntime {
  const ExperimentConfig& cfg;
  const std::vector<std::uint32_t>* owned;
  SliceDetail* detail;
  // Everything below (setup included) lives on the constructing thread, so
  // the thread-local frame pool's counters bracket the whole slice.
  sim::FramePool::Stats frames_before;
  // NOTE: the simulator must be declared first among the simulation members
  // (destroyed last) so pending event closures never outlive it.
  sim::Simulator simulator;
  vm::Cluster cluster;
  Middleware mw;
  std::vector<vm::VmInstance*> vms;
  ExperimentResult res;
  std::unique_ptr<workloads::TraceRecorder> recorder_owned;
  workloads::TraceRecorder* recorder;
  sim::WaitGroup workload_done;
  std::vector<std::unique_ptr<workloads::Workload>> single_vm_workloads;
  std::unique_ptr<workloads::Cm1Application> cm1_app;
  std::unique_ptr<workloads::TraceData> trace_owned;
  std::unique_ptr<workloads::TraceApplication> trace_app;
  double workload_started_at = 0;
  sim::WaitGroup migrations_done;
  std::vector<MigLaunch> launches;
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<Auditor> auditor;
  std::unique_ptr<Scheduler> scheduler;

  SliceRuntime(const ExperimentConfig& cfg_in, const std::vector<std::uint32_t>* owned_in,
               SliceDetail* detail_in, bool coupled)
      : cfg(cfg_in),
        owned(owned_in),
        detail(detail_in),
        frames_before(sim::FramePool::local().stats()),
        cluster(simulator, cfg.cluster),
        mw(simulator, cluster, cfg.approach_cfg),
        recorder(cfg.trace_recorder),
        workload_done(simulator),
        migrations_done(simulator) {
    // Coupled shards never solve locally; flip the mode before any event
    // (deploys, workload spawns) can reach the network.
    if (coupled) cluster.network().set_coupled(true);

    const std::size_t n_vms = cfg.num_vms;
    // Global ids of the VMs this slice owns (all of them on the single-shard
    // path). Each shard holds a full cluster replica with the global node
    // numbering, so VM i always deploys on node i regardless of slicing.
    const std::size_t n_owned = owned ? owned->size() : n_vms;
    vms.reserve(n_owned);
    for (std::size_t idx = 0; idx < n_owned; ++idx) {
      const auto gid = static_cast<std::uint32_t>(owned ? (*owned)[idx] : idx);
      vms.push_back(&mw.deploy(static_cast<net::NodeId>(gid), cfg.vm, static_cast<int>(gid)));
    }

    // --- trace recording (passive observation of the workload API) ----------
    if (recorder == nullptr && !cfg.record_trace_path.empty()) {
      workloads::TraceHeader hdr;
      hdr.page_bytes = cfg.vm.memory.page_bytes;
      hdr.chunk_bytes = cfg.cluster.image.chunk_bytes;
      hdr.pages = (cfg.vm.memory.ram_bytes + cfg.vm.memory.page_bytes - 1) /
                  cfg.vm.memory.page_bytes;
      hdr.chunks = cfg.cluster.image.num_chunks();
      hdr.name = std::string("rec:") + workload_name(cfg.workload);
      recorder_owned = std::make_unique<workloads::TraceRecorder>(hdr);
      recorder = recorder_owned.get();
    }
    if (recorder != nullptr)
      for (auto* v : vms) recorder->attach(*v);

    // --- workloads -----------------------------------------------------------
    workload_started_at = simulator.now();
    switch (cfg.workload) {
      case WorkloadKind::kNone:
        break;
      case WorkloadKind::kIor:
        for (auto* v : vms) {
          single_vm_workloads.push_back(std::make_unique<workloads::IorWorkload>(cfg.ior));
          workload_done.add();
          simulator.spawn(run_and_signal(single_vm_workloads.back().get(), v, &workload_done));
        }
        break;
      case WorkloadKind::kAsyncWr:
        for (auto* v : vms) {
          single_vm_workloads.push_back(
              std::make_unique<workloads::AsyncWrWorkload>(cfg.asyncwr));
          workload_done.add();
          simulator.spawn(run_and_signal(single_vm_workloads.back().get(), v, &workload_done));
        }
        break;
      case WorkloadKind::kCm1:
        cm1_app = std::make_unique<workloads::Cm1Application>(simulator, vms, cfg.cm1);
        workload_done.add();
        simulator.spawn(run_cm1_and_signal(cm1_app.get(), &workload_done));
        break;
      case WorkloadKind::kTrace: {
        workloads::TraceReplayOptions opts;
        opts.broadcast = cfg.trace.broadcast;
        if (cfg.trace.data != nullptr) {
          trace_app = std::make_unique<workloads::TraceApplication>(simulator, vms,
                                                                    *cfg.trace.data, opts);
        } else if (!cfg.trace.path.empty()) {
          // One streaming reader drives every VM: bounded memory even for
          // long traces at high VM counts.
          trace_app = std::make_unique<workloads::TraceApplication>(simulator, vms,
                                                                    cfg.trace.path, opts);
        } else {
          trace_owned = std::make_unique<workloads::TraceData>(
              workloads::generate_trace(cfg.trace.gen, cfg.seed));
          trace_app = std::make_unique<workloads::TraceApplication>(simulator, vms,
                                                                    *trace_owned, opts);
        }
        workload_done.add();
        simulator.spawn(run_trace_and_signal(trace_app.get(), &workload_done));
        break;
      }
    }

    // --- migration schedule -------------------------------------------------
    // Launch k targets VM k with destination n_vms + (k % num_destinations);
    // times and schedule order depend only on the global index, so a slice
    // schedules its owned subset identically to the full run.
    // With the continuous scheduler enabled the fixed launch schedule is
    // replaced wholesale: requests arrive from the configured stream and the
    // scheduler owns VM choice, placement, admission and retries. Scheduler
    // regimes statically collapse the shard plan (shard_plan.cpp), so this
    // branch only ever runs on the full (owned == nullptr) path.
    if (cfg.perform_migrations && cfg.scheduler.enabled()) {
      migrations_done.add();
      scheduler = std::make_unique<Scheduler>(
          simulator, cluster, mw, cfg.scheduler, static_cast<net::NodeId>(n_vms),
          static_cast<std::uint32_t>(cfg.num_destinations), &migrations_done);
      scheduler->start();
    } else if (cfg.perform_migrations) {
      launches.reserve(n_owned);  // addresses must survive the timers
      for (std::size_t idx = 0; idx < n_owned; ++idx) {
        const std::size_t k = owned ? (*owned)[idx] : idx;
        if (k >= cfg.num_migrations) continue;
        const double at = cfg.first_migration_at + static_cast<double>(k) *
                                                       cfg.migration_interval_s;
        const net::NodeId dst =
            static_cast<net::NodeId>(n_vms + (k % cfg.num_destinations));
        launches.push_back(MigLaunch{&simulator, &mw, vms[idx], &migrations_done, dst});
        migrations_done.add();
        simulator.schedule(at, [l = &launches.back()] {
          l->sim->spawn(migrate_and_signal(l->mw, l->target, l->dst, l->done));
        });
        if (detail != nullptr) detail->launch_ks.push_back(static_cast<std::uint32_t>(k));
      }
    }

    // --- fault plan ---------------------------------------------------------
    // Churn/rand/global-scoped plans statically collapse to one shard, so
    // those only ever arm on the full (owned == nullptr) path. Routable
    // scripted plans (plan_shards verified every target maps into one
    // component) arm per slice with the events the slice owns.
    if (cfg.faults.enabled()) {
      sim::FaultPlan plan = sim::build_fault_plan(
          cfg.faults, cluster.rng(), static_cast<std::uint32_t>(cfg.num_migrations));
      if (owned != nullptr) {
        std::erase_if(plan.events, [&](const sim::FaultEvent& ev) {
          const auto v = static_cast<std::uint32_t>(
              cfg.num_vms > 0 ? ev.target % cfg.num_vms : 0);
          return !std::binary_search(owned->begin(), owned->end(), v);
        });
      }
      if (owned == nullptr || plan.enabled()) {
        injector = std::make_unique<FaultInjector>(simulator, cluster, mw, std::move(plan),
                                                   cfg.num_vms, cfg.num_destinations);
        injector->arm();
      }
    }

    // --- invariant auditor --------------------------------------------------
    if (cfg.audit) {
      auditor = std::make_unique<Auditor>(simulator, mw, cfg.audit_check_interval_s,
                                          cfg.audit_progress_deadline_s);
      if (injector) auditor->set_injector(injector.get());
      mw.set_auditor(auditor.get());
      auditor->arm();
    }
  }

  bool finished() const {
    return workload_done.count() == 0 && migrations_done.count() == 0;
  }

  /// The legacy free-running event loop (single-shard and independent-slice
  /// paths). The epoch-coupled executor drives the simulator itself with
  /// run_until() instead.
  void run_loop() {
    const auto wall_start = std::chrono::steady_clock::now();
    while (!finished()) {
      if (!simulator.step()) break;
      if (cfg.max_sim_time > 0 && simulator.now() > cfg.max_sim_time) {
        res.completed = false;
        break;
      }
    }
    res.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  }

  void collect() {
    if (trace_app && trace_app->failed()) {
      res.error = trace_app->error();
      res.completed = false;
    }
    if (recorder != nullptr && recorder->failed() && res.error.empty())
      res.error = recorder->error();
    if (recorder_owned) {
      std::string werr;
      if (!write_trace(cfg.record_trace_path, recorder_owned->data(), &werr) &&
          res.error.empty())
        res.error = werr;
    }
    res.approach = core::approach_name(cfg.approach);
    res.workload = workload_name(cfg.workload);
    res.sim_duration = simulator.now();
    res.migrations.assign(mw.metrics().migrations().begin(),
                          mw.metrics().migrations().end());
    res.total_migration_time = mw.metrics().total_migration_time();
    res.avg_migration_time = mw.metrics().avg_migration_time();
    res.max_downtime = mw.metrics().max_downtime();

    if (injector) {
      res.recovery.faults_injected = injector->faults_applied();
      res.recovery.fault_downtime_s = injector->fault_pause_s();
      res.recovery.node_crashes = injector->node_crashes();
      res.recovery.correlated_events = injector->correlated_events();
      res.recovery.node_downtime_s = injector->node_downtime_s();
    }
    recovery_from_migrations(res.migrations, &res.recovery);
    if (scheduler) res.scheduler = scheduler->stats();
    if (auditor) {
      res.audit_checks = auditor->checks_run();
      res.audit_violations = auditor->violations();
    }

    auto& network = cluster.network();
    res.engine_events = simulator.events_processed();
    res.engine_flows = network.flows_started();
    res.engine_recomputes = network.recompute_count();
    res.engine_components = network.solved_component_count();
    res.engine_flows_resolved = network.touched_flow_count();
    res.engine_escalations = network.escalation_count();
    const sim::FramePool::Stats frames_after = sim::FramePool::local().stats();
    res.engine_frames = frames_after.served - frames_before.served;
    res.engine_frames_reused = frames_after.reused - frames_before.reused;
    res.engine_frame_heap_allocs = frames_after.heap - frames_before.heap;

    for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
      res.traffic_bytes[i] = network.traffic_bytes(static_cast<net::TrafficClass>(i));
    res.total_traffic = network.total_traffic_bytes();
    res.migration_traffic =
        res.total_traffic - network.traffic_bytes(net::TrafficClass::kAppComm);

    double wtime = 0, rtime = 0;
    for (std::size_t idx = 0; idx < vms.size(); ++idx) {
      vm::VmInstance* v = vms[idx];
      const core::IoStats& io = v->io_stats();
      res.bytes_written += io.bytes_written;
      res.bytes_read += io.bytes_read;
      wtime += io.write_time_s;
      rtime += io.read_time_s;
      res.cpu_seconds_total += v->cpu_seconds();
      if (detail != nullptr) {
        const auto gid = static_cast<std::uint32_t>(owned ? (*owned)[idx] : idx);
        detail->per_vm.push_back(SliceDetail::VmAgg{gid, io, v->cpu_seconds()});
      }
    }
    res.write_Bps = wtime > 0 ? res.bytes_written / wtime : 0;
    res.read_Bps = rtime > 0 ? res.bytes_read / rtime : 0;

    switch (cfg.workload) {
      case WorkloadKind::kCm1:
        res.app_execution_time = cm1_app ? cm1_app->execution_time() : 0;
        break;
      default:
        res.app_execution_time = simulator.now() - workload_started_at;
        break;
    }
    if (detail != nullptr) detail->repo_chunks_served = cluster.repository().chunks_served();
    // Reclaim daemons still parked on awaitables (writeback loops, truncated
    // workloads) while the cluster they reference is alive: frame destructors
    // may touch backend objects, and the cluster dies before the simulator in
    // this scope's reverse destruction order.
    simulator.destroy_detached();
  }
};

ExperimentResult Experiment::run_slice(const std::vector<std::uint32_t>* owned,
                                       SliceDetail* detail) const {
  SliceRuntime rt(cfg_, owned, detail, /*coupled=*/false);
  rt.run_loop();
  rt.collect();
  return std::move(rt.res);
}

namespace {

/// Why a sharded run had to abandon its plan, or empty. Shared by the
/// independent and epoch-coupled executors' conservative runtime guards.
/// (Templated over the detail record so this free helper needn't name the
/// private Experiment::SliceDetail type.)
template <class Detail>
std::string runtime_guard_reason(const std::vector<ExperimentResult>& parts,
                                 const std::vector<Detail>& details) {
  for (std::size_t s = 0; s < parts.size(); ++s) {
    if (!parts[s].error.empty()) return "runtime guard: slice error: " + parts[s].error;
    if (!parts[s].completed) return "runtime guard: max_sim_time truncation";
    if (details[s].repo_chunks_served > 0)
      return "runtime guard: repository stripe served cross-shard traffic";
  }
  return {};
}

}  // namespace

ExperimentResult Experiment::run_sharded(const ShardPlan& plan) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint32_t n = plan.shard_count();
  std::vector<ExperimentResult> parts(n);
  std::vector<SliceDetail> details(n);
  sim::ShardedSimulator shards(n);
  shards.run([&](std::uint32_t s) { parts[s] = run_slice(&plan.slices[s], &details[s]); });

  // Conservative runtime guards: anything a slice cannot prove independent
  // (a repository fetch from a stripe another shard owns, a max_sim_time
  // truncation whose cut point depends on the global interleave, any error
  // whose text mentions global state) reruns single-shard. Correctness is
  // never traded for wall-clock.
  std::string guard = runtime_guard_reason(parts, details);
  if (!guard.empty()) {
    ExperimentResult res = run_slice(nullptr, nullptr);
    res.shards_used = 1;
    res.shard_fallback_reason = std::move(guard);
    return res;
  }

  ExperimentResult res = merge_parts(parts, details);
  res.shards_used = n;
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return res;
}

ExperimentResult Experiment::merge_parts(std::vector<ExperimentResult>& parts,
                                         std::vector<SliceDetail>& details) const {
  const std::uint32_t n = static_cast<std::uint32_t>(parts.size());
  // --- deterministic merge --------------------------------------------------
  // Every reduction replicates the accumulation order of the single-shard
  // collect pass: migration records by global launch index, per-VM doubles
  // in global VM order, spans as maxima. Traffic and byte counters are sums
  // of integer-valued doubles, so shard-order summation is exact.
  ExperimentResult res;
  res.approach = parts[0].approach;
  res.workload = parts[0].workload;
  res.completed = true;
  for (const ExperimentResult& p : parts) {
    res.sim_duration = std::max(res.sim_duration, p.sim_duration);
    res.app_execution_time = std::max(res.app_execution_time, p.app_execution_time);
    res.engine_events += p.engine_events;
    res.engine_flows += p.engine_flows;
    res.engine_recomputes += p.engine_recomputes;
    res.engine_components += p.engine_components;
    res.engine_flows_resolved += p.engine_flows_resolved;
    res.engine_escalations += p.engine_escalations;
    res.engine_frames += p.engine_frames;
    res.engine_frames_reused += p.engine_frames_reused;
    res.engine_frame_heap_allocs += p.engine_frame_heap_allocs;
    for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
      res.traffic_bytes[i] += p.traffic_bytes[i];
  }
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
    res.total_traffic += res.traffic_bytes[i];
  res.migration_traffic =
      res.total_traffic - res.traffic(net::TrafficClass::kAppComm);

  // Migration records, ordered by global launch index (each slice's list is
  // already ascending and the slices are disjoint — a k-way merge).
  std::vector<std::pair<std::uint32_t, const core::MigrationRecord*>> recs;
  for (std::uint32_t s = 0; s < n; ++s) {
    assert(details[s].launch_ks.size() == parts[s].migrations.size());
    for (std::size_t j = 0; j < parts[s].migrations.size(); ++j)
      recs.emplace_back(details[s].launch_ks[j], &parts[s].migrations[j]);
  }
  std::sort(recs.begin(), recs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  res.migrations.reserve(recs.size());
  for (const auto& [k, rec] : recs) res.migrations.push_back(*rec);
  for (const core::MigrationRecord& m : res.migrations) {
    res.total_migration_time += m.migration_time();
    res.max_downtime = std::max(res.max_downtime, m.downtime_s);
  }
  res.avg_migration_time =
      res.migrations.empty() ? 0 : res.total_migration_time / res.migrations.size();

  // Record-derived recovery aggregates recompute from the merged records
  // (identical accumulation order to the single-shard collect); injector-
  // and auditor-side counters sum across the slices that armed them.
  recovery_from_migrations(res.migrations, &res.recovery);
  for (const ExperimentResult& p : parts) {
    res.recovery.faults_injected += p.recovery.faults_injected;
    res.recovery.node_crashes += p.recovery.node_crashes;
    res.recovery.correlated_events += p.recovery.correlated_events;
    res.recovery.fault_downtime_s += p.recovery.fault_downtime_s;
    res.recovery.node_downtime_s += p.recovery.node_downtime_s;
    res.audit_checks += p.audit_checks;
    for (const std::string& v : p.audit_violations) res.audit_violations.push_back(v);
  }

  // Per-VM doubles in global VM order (slices hold disjoint ascending ids).
  std::vector<const SliceDetail::VmAgg*> by_vm;
  for (const SliceDetail& d : details)
    for (const SliceDetail::VmAgg& a : d.per_vm) by_vm.push_back(&a);
  std::sort(by_vm.begin(), by_vm.end(),
            [](const SliceDetail::VmAgg* a, const SliceDetail::VmAgg* b) {
              return a->id < b->id;
            });
  double wtime = 0, rtime = 0;
  for (const SliceDetail::VmAgg* a : by_vm) {
    res.bytes_written += a->io.bytes_written;
    res.bytes_read += a->io.bytes_read;
    wtime += a->io.write_time_s;
    rtime += a->io.read_time_s;
    res.cpu_seconds_total += a->cpu_seconds;
  }
  res.write_Bps = wtime > 0 ? res.bytes_written / wtime : 0;
  res.read_Bps = rtime > 0 ? res.bytes_read / rtime : 0;
  return res;
}

ExperimentResult Experiment::run_epoch_coupled(const ShardPlan& plan) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint32_t n = plan.shard_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // The mirror is built from the same FlowNetworkConfig as every shard
  // replica, so its incremental/full-solve regime (ABLATE_INCREMENTAL)
  // resolves identically — both regimes stay byte-identical to shards=1.
  net::CoupledCoordinator coord(n, cfg_.cluster.network);
  wire_mirror_topology(coord.mirror(), cfg_.cluster);

  std::vector<ExperimentResult> parts(n);
  std::vector<SliceDetail> details(n);
  sim::ShardedSimulator shards(n);

  // Per-round state, written by the shards in their private lanes and
  // reduced single-threadedly while every shard is parked at the barrier.
  struct RoundState {
    std::vector<double> t_next;  // per-shard next event time (+inf = none)
    std::vector<double> c_next;  // per-shard completion projection (-1 = none)
    std::vector<char> fin;       // per-shard finished() flag
    std::vector<net::CoupledCoordinator::ShardDelta> deltas;
    std::vector<std::vector<std::pair<std::uint32_t, double>>> rates;
    double t_star = 0.0;
    bool stop = false;       // exit the round loop after this barrier
    bool churn = false;      // this round's instant ran at least one solve
    bool truncated = false;  // max_sim_time guard tripped
    bool drift = false;      // demand-message cross-check failed
    bool phase_b = false;    // which reduce the next barrier runs (threads)
  } rs;
  rs.t_next.assign(n, kInf);
  rs.c_next.assign(n, -1.0);
  rs.fin.assign(n, 0);
  rs.deltas.resize(n);
  rs.rates.resize(n);

  // Phase A reduce: pick the next global event instant, fold the completion
  // projections into the coordinator's virtual completion timer, decide
  // whether the run is over. Runs while all shards are parked.
  auto reduce_a = [&] {
    bool all_done = true;
    double t_star = kInf;
    for (std::uint32_t s = 0; s < n; ++s) {
      if (!rs.fin[s]) all_done = false;
      t_star = std::min(t_star, rs.t_next[s]);
    }
    rs.t_star = t_star;
    if (all_done || t_star == kInf) {
      // All metrics complete — or no shard has a runnable event, which is
      // the lockstep analogue of the single-shard `!simulator.step()` break.
      rs.stop = true;
      return;
    }
    coord.observe(t_star, rs.c_next);
    if (cfg_.max_sim_time > 0 && t_star > cfg_.max_sim_time) {
      rs.truncated = true;
      rs.stop = true;
    }
  };
  // Phase B reduce: fold the demand messages (posted to shard 0, merged and
  // (t, shard, seq)-sorted by the mailbox), apply the deltas to the mirror
  // in fixed shard order, solve, and stage the per-shard rate updates.
  auto reduce_b = [&] {
    for (auto& r : rs.rates) r.clear();
    rs.churn = coord.reduce(rs.t_star, rs.deltas, rs.rates) > 0;
    // Folded AFTER the mirror absorbed the round's deltas: the running
    // message totals must now equal its live shared-user counts.
    if (!coord.fold_demand_messages(shards.inbox(0))) {
      rs.drift = true;
      rs.stop = true;
    }
  };

  // One shard's run phase for instant t_star: process every local event at
  // (or before) it, then publish the recorded deltas.
  auto run_instant = [&](std::uint32_t s, SliceRuntime& rt) {
    auto& net = rt.cluster.network();
    rt.simulator.run_until(rs.t_star);
    rs.deltas[s].sync = net.coupled_sync_pending();
    net.take_coupled_delta(rs.deltas[s].adds, rs.deltas[s].removes, rs.deltas[s].demand);
    for (const auto& [c, dv] : rs.deltas[s].demand)
      shards.post(s, 0, rs.t_star, c, dv);
  };
  // After the phase B barrier: whenever the mirror solved this instant,
  // EVERY shard re-applies — even one with no deltas and no staged rates.
  // The single-shard solver advances all flows at every settle instant, so
  // a quiet shard must advance (and re-partition its flows' byte integrals)
  // at exactly the same instants or its completion projections drift in the
  // low FP bits and byte-coincident events split. A shard that recorded
  // deltas also needs this to re-arm the completion timer its removals
  // killed, even when its rate list came back empty.
  auto apply_round = [&](std::uint32_t s, SliceRuntime& rt) {
    if (rs.churn || rs.deltas[s].sync || !rs.rates[s].empty())
      rt.cluster.network().apply_external_rates(rs.rates[s]);
  };
  auto publish_phase_a = [&](std::uint32_t s, SliceRuntime& rt) {
    rs.t_next[s] = rt.simulator.next_event_time();
    rs.c_next[s] = rt.cluster.network().next_completion_time();
    rs.fin[s] = rt.finished() ? 1 : 0;
  };
  auto finish_slice = [&](std::uint32_t s, SliceRuntime& rt) {
    if (rs.truncated) rt.res.completed = false;
    rt.collect();
    parts[s] = std::move(rt.res);
  };

  if (coupled_driver_threads()) {
    // Two barrier epochs per round; the hook alternates the reduces (the
    // toggle is flipped under the barrier, with every shard parked).
    shards.set_reduce_hook([&](std::uint64_t) {
      if (!rs.phase_b)
        reduce_a();
      else
        reduce_b();
      rs.phase_b = !rs.phase_b;
    });
    shards.run_epochs([&](std::uint32_t s) {
      SliceRuntime rt(cfg_, &plan.slices[s], &details[s], /*coupled=*/true);
      for (;;) {
        publish_phase_a(s, rt);
        shards.barrier().arrive_and_wait();  // runs reduce_a
        if (rs.stop) break;
        run_instant(s, rt);
        shards.barrier().arrive_and_wait();  // runs reduce_b
        if (rs.stop) break;
        apply_round(s, rt);
      }
      finish_slice(s, rt);
    });
  } else {
    // Inline round-robin driver: the identical protocol on one thread (the
    // right shape for a single-core host, where per-barrier thread
    // hand-offs would dominate the wall-clock).
    std::vector<std::unique_ptr<SliceRuntime>> rts;
    rts.reserve(n);
    for (std::uint32_t s = 0; s < n; ++s)
      rts.push_back(std::make_unique<SliceRuntime>(cfg_, &plan.slices[s], &details[s],
                                                   /*coupled=*/true));
    for (;;) {
      for (std::uint32_t s = 0; s < n; ++s) publish_phase_a(s, *rts[s]);
      reduce_a();
      if (rs.stop) break;
      for (std::uint32_t s = 0; s < n; ++s) run_instant(s, *rts[s]);
      shards.merge_now();
      reduce_b();
      if (rs.stop) break;
      for (std::uint32_t s = 0; s < n; ++s) apply_round(s, *rts[s]);
    }
    for (std::uint32_t s = 0; s < n; ++s) finish_slice(s, *rts[s]);
  }

  // Conservative runtime guards, as in run_sharded — plus the coupled
  // protocol's own consistency cross-check. Correctness is never traded for
  // wall-clock: any doubt reruns the exact single-shard path.
  std::string guard = rs.drift ? std::string("runtime guard: shard demand drift")
                               : runtime_guard_reason(parts, details);
  if (!guard.empty()) {
    ExperimentResult res = run_slice(nullptr, nullptr);
    res.shards_used = 1;
    res.shard_fallback_reason = std::move(guard);
    return res;
  }

  ExperimentResult res = merge_parts(parts, details);
  // The solver ran in the coordinator's mirror — its work counters ARE the
  // single-shard ones; the per-shard replicas never solved (their counters,
  // summed by the merge, are zero).
  res.engine_recomputes = coord.mirror().recompute_count();
  res.engine_components = coord.mirror().solved_component_count();
  res.engine_flows_resolved = coord.mirror().touched_flow_count();
  res.engine_escalations = coord.mirror().escalation_count();
  res.shards_used = n;
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return res;
}

ExperimentResult Experiment::run() {
  const ShardPlan plan = plan_shards(cfg_);
  if (plan.kind == PlanKind::kSingle || plan.shard_count() <= 1) {
    ExperimentResult res = run_slice(nullptr, nullptr);
    res.shards_used = 1;
    res.shard_fallback_reason = plan.coupled_reason;
    return res;
  }
  if (plan.kind == PlanKind::kEpochCoupled) return run_epoch_coupled(plan);
  return run_sharded(plan);
}

ExperimentResult run_baseline(ExperimentConfig cfg) {
  cfg.perform_migrations = false;
  return Experiment(std::move(cfg)).run();
}

}  // namespace hm::cloud
