#include "cloud/experiment.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "cloud/fault_injector.h"
#include "cloud/shard_plan.h"
#include "sim/frame_pool.h"
#include "sim/sharded.h"

namespace hm::cloud {

const char* workload_name(WorkloadKind k) noexcept {
  switch (k) {
    case WorkloadKind::kNone: return "none";
    case WorkloadKind::kIor: return "IOR";
    case WorkloadKind::kAsyncWr: return "AsyncWR";
    case WorkloadKind::kCm1: return "CM1";
    case WorkloadKind::kTrace: return "trace";
  }
  return "?";
}

void ExperimentConfig::normalize() {
  if (workload == WorkloadKind::kCm1) num_vms = static_cast<std::size_t>(cm1.ranks());
  num_migrations = std::min(num_migrations, num_vms);
  if (num_destinations == 0) num_destinations = 1;
  if (shards == 0) shards = 1;
  const std::size_t needed = num_vms + num_destinations;
  if (cluster.num_nodes < needed) cluster.num_nodes = needed;
  cluster.enable_pvfs = (approach == core::Approach::kPvfsShared);
  cluster.seed = seed;
  approach_cfg.approach = approach;
}

namespace {

sim::Task run_and_signal(workloads::Workload* w, vm::VmInstance* v, sim::WaitGroup* wg) {
  co_await w->run(*v);
  wg->done();
}

sim::Task run_cm1_and_signal(workloads::Cm1Application* app, sim::WaitGroup* wg) {
  co_await app->run_all();
  wg->done();
}

sim::Task run_trace_and_signal(workloads::TraceApplication* app, sim::WaitGroup* wg) {
  co_await app->run_all();
  wg->done();
}

sim::Task migrate_and_signal(Middleware* mw, vm::VmInstance* v, net::NodeId dst,
                             sim::WaitGroup* wg) {
  co_await mw->migrate(*v, dst);
  wg->done();
}

/// One planned migration launch; event callbacks capture a pointer to this
/// record (the schedule lambda must fit SmallFn's two-word budget).
struct MigLaunch {
  sim::Simulator* sim;
  Middleware* mw;
  vm::VmInstance* target;
  sim::WaitGroup* done;
  net::NodeId dst;
};

}  // namespace

struct Experiment::SliceDetail {
  struct VmAgg {
    std::uint32_t id;  // global VM id
    core::IoStats io;
    double cpu_seconds;
  };
  /// Per owned VM, ascending id — lets the merge re-accumulate the per-VM
  /// doubles in global VM order, the same order the single-shard loop uses.
  std::vector<VmAgg> per_vm;
  /// Global launch indices of the slice's migrations, ascending; parallel
  /// to the slice result's `migrations` records.
  std::vector<std::uint32_t> launch_ks;
  /// Runtime coupling guard: any base-image fetch means a repository stripe
  /// on a foreign-owned node served traffic this slice cannot account for.
  std::uint64_t repo_chunks_served = 0;
};

ExperimentResult Experiment::run_slice(const std::vector<std::uint32_t>* owned,
                                       SliceDetail* detail) const {
  // Everything below (setup included) runs on this thread, so the
  // thread-local frame pool's counters bracket the whole slice.
  const sim::FramePool::Stats frames_before = sim::FramePool::local().stats();
  // NOTE: the simulator must be declared first (destroyed last) so pending
  // event closures never outlive it.
  sim::Simulator simulator;
  vm::Cluster cluster(simulator, cfg_.cluster);
  Middleware mw(simulator, cluster, cfg_.approach_cfg);

  const std::size_t n_vms = cfg_.num_vms;
  // Global ids of the VMs this slice owns (all of them on the single-shard
  // path). Each shard holds a full cluster replica with the global node
  // numbering, so VM i always deploys on node i regardless of slicing.
  const std::size_t n_owned = owned ? owned->size() : n_vms;
  std::vector<vm::VmInstance*> vms;
  vms.reserve(n_owned);
  for (std::size_t idx = 0; idx < n_owned; ++idx) {
    const auto gid = static_cast<std::uint32_t>(owned ? (*owned)[idx] : idx);
    vms.push_back(&mw.deploy(static_cast<net::NodeId>(gid), cfg_.vm, static_cast<int>(gid)));
  }

  ExperimentResult res;

  // --- trace recording (passive observation of the workload API) ----------
  std::unique_ptr<workloads::TraceRecorder> recorder_owned;
  workloads::TraceRecorder* recorder = cfg_.trace_recorder;
  if (recorder == nullptr && !cfg_.record_trace_path.empty()) {
    workloads::TraceHeader hdr;
    hdr.page_bytes = cfg_.vm.memory.page_bytes;
    hdr.chunk_bytes = cfg_.cluster.image.chunk_bytes;
    hdr.pages = (cfg_.vm.memory.ram_bytes + cfg_.vm.memory.page_bytes - 1) /
                cfg_.vm.memory.page_bytes;
    hdr.chunks = cfg_.cluster.image.num_chunks();
    hdr.name = std::string("rec:") + workload_name(cfg_.workload);
    recorder_owned = std::make_unique<workloads::TraceRecorder>(hdr);
    recorder = recorder_owned.get();
  }
  if (recorder != nullptr)
    for (auto* v : vms) recorder->attach(*v);

  // --- workloads -----------------------------------------------------------
  sim::WaitGroup workload_done(simulator);
  std::vector<std::unique_ptr<workloads::Workload>> single_vm_workloads;
  std::unique_ptr<workloads::Cm1Application> cm1_app;
  std::unique_ptr<workloads::TraceData> trace_owned;
  std::unique_ptr<workloads::TraceApplication> trace_app;
  double workload_started_at = simulator.now();
  switch (cfg_.workload) {
    case WorkloadKind::kNone:
      break;
    case WorkloadKind::kIor:
      for (auto* v : vms) {
        single_vm_workloads.push_back(std::make_unique<workloads::IorWorkload>(cfg_.ior));
        workload_done.add();
        simulator.spawn(run_and_signal(single_vm_workloads.back().get(), v, &workload_done));
      }
      break;
    case WorkloadKind::kAsyncWr:
      for (auto* v : vms) {
        single_vm_workloads.push_back(
            std::make_unique<workloads::AsyncWrWorkload>(cfg_.asyncwr));
        workload_done.add();
        simulator.spawn(run_and_signal(single_vm_workloads.back().get(), v, &workload_done));
      }
      break;
    case WorkloadKind::kCm1:
      cm1_app = std::make_unique<workloads::Cm1Application>(simulator, vms, cfg_.cm1);
      workload_done.add();
      simulator.spawn(run_cm1_and_signal(cm1_app.get(), &workload_done));
      break;
    case WorkloadKind::kTrace: {
      workloads::TraceReplayOptions opts;
      opts.broadcast = cfg_.trace.broadcast;
      if (cfg_.trace.data != nullptr) {
        trace_app = std::make_unique<workloads::TraceApplication>(simulator, vms,
                                                                  *cfg_.trace.data, opts);
      } else if (!cfg_.trace.path.empty()) {
        // One streaming reader drives every VM: bounded memory even for
        // long traces at high VM counts.
        trace_app = std::make_unique<workloads::TraceApplication>(simulator, vms,
                                                                  cfg_.trace.path, opts);
      } else {
        trace_owned = std::make_unique<workloads::TraceData>(
            workloads::generate_trace(cfg_.trace.gen, cfg_.seed));
        trace_app = std::make_unique<workloads::TraceApplication>(simulator, vms,
                                                                  *trace_owned, opts);
      }
      workload_done.add();
      simulator.spawn(run_trace_and_signal(trace_app.get(), &workload_done));
      break;
    }
  }

  // --- migration schedule ---------------------------------------------------
  // Launch k targets VM k with destination n_vms + (k % num_destinations);
  // times and schedule order depend only on the global index, so a slice
  // schedules its owned subset identically to the full run.
  sim::WaitGroup migrations_done(simulator);
  std::vector<MigLaunch> launches;
  if (cfg_.perform_migrations) {
    launches.reserve(n_owned);  // addresses must survive the timers
    for (std::size_t idx = 0; idx < n_owned; ++idx) {
      const std::size_t k = owned ? (*owned)[idx] : idx;
      if (k >= cfg_.num_migrations) continue;
      const double at = cfg_.first_migration_at + static_cast<double>(k) *
                                                      cfg_.migration_interval_s;
      const net::NodeId dst =
          static_cast<net::NodeId>(n_vms + (k % cfg_.num_destinations));
      launches.push_back(MigLaunch{&simulator, &mw, vms[idx], &migrations_done, dst});
      migrations_done.add();
      simulator.schedule(at, [l = &launches.back()] {
        l->sim->spawn(migrate_and_signal(l->mw, l->target, l->dst, l->done));
      });
      if (detail != nullptr) detail->launch_ks.push_back(static_cast<std::uint32_t>(k));
    }
  }

  // --- fault plan -----------------------------------------------------------
  // Faults statically collapse the plan to one shard, so the injector only
  // ever arms on the full (owned == nullptr) path.
  std::unique_ptr<FaultInjector> injector;
  if (cfg_.faults.enabled()) {
    sim::FaultPlan plan = sim::build_fault_plan(
        cfg_.faults, cluster.rng(), static_cast<std::uint32_t>(cfg_.num_migrations));
    injector = std::make_unique<FaultInjector>(simulator, cluster, mw, std::move(plan),
                                               cfg_.num_vms, cfg_.num_destinations);
    injector->arm();
  }

  // --- run -------------------------------------------------------------------
  auto finished = [&] {
    return workload_done.count() == 0 && migrations_done.count() == 0;
  };
  const auto wall_start = std::chrono::steady_clock::now();
  while (!finished()) {
    if (!simulator.step()) break;
    if (cfg_.max_sim_time > 0 && simulator.now() > cfg_.max_sim_time) {
      res.completed = false;
      break;
    }
  }
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();

  // --- collect ----------------------------------------------------------------
  if (trace_app && trace_app->failed()) {
    res.error = trace_app->error();
    res.completed = false;
  }
  if (recorder != nullptr && recorder->failed() && res.error.empty())
    res.error = recorder->error();
  if (recorder_owned) {
    std::string werr;
    if (!write_trace(cfg_.record_trace_path, recorder_owned->data(), &werr) &&
        res.error.empty())
      res.error = werr;
  }
  res.approach = core::approach_name(cfg_.approach);
  res.workload = workload_name(cfg_.workload);
  res.sim_duration = simulator.now();
  res.migrations.assign(mw.metrics().migrations().begin(),
                        mw.metrics().migrations().end());
  res.total_migration_time = mw.metrics().total_migration_time();
  res.avg_migration_time = mw.metrics().avg_migration_time();
  res.max_downtime = mw.metrics().max_downtime();

  if (injector) {
    res.faults_injected = injector->faults_applied();
    res.fault_downtime_s = injector->fault_pause_s();
  }
  for (const core::MigrationRecord& m : res.migrations) {
    res.total_retries += m.retries;
    res.retransferred_bytes += m.retransferred_bytes;
    res.migrations_abandoned += m.abandoned ? 1 : 0;
    res.max_time_to_recover = std::max(res.max_time_to_recover, m.time_to_recover());
  }

  auto& network = cluster.network();
  res.engine_events = simulator.events_processed();
  res.engine_flows = network.flows_started();
  res.engine_recomputes = network.recompute_count();
  res.engine_components = network.solved_component_count();
  res.engine_flows_resolved = network.touched_flow_count();
  res.engine_escalations = network.escalation_count();
  const sim::FramePool::Stats frames_after = sim::FramePool::local().stats();
  res.engine_frames = frames_after.served - frames_before.served;
  res.engine_frames_reused = frames_after.reused - frames_before.reused;
  res.engine_frame_heap_allocs = frames_after.heap - frames_before.heap;

  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
    res.traffic_bytes[i] = network.traffic_bytes(static_cast<net::TrafficClass>(i));
  res.total_traffic = network.total_traffic_bytes();
  res.migration_traffic =
      res.total_traffic - network.traffic_bytes(net::TrafficClass::kAppComm);

  double wtime = 0, rtime = 0;
  for (std::size_t idx = 0; idx < vms.size(); ++idx) {
    vm::VmInstance* v = vms[idx];
    const core::IoStats& io = v->io_stats();
    res.bytes_written += io.bytes_written;
    res.bytes_read += io.bytes_read;
    wtime += io.write_time_s;
    rtime += io.read_time_s;
    res.cpu_seconds_total += v->cpu_seconds();
    if (detail != nullptr) {
      const auto gid = static_cast<std::uint32_t>(owned ? (*owned)[idx] : idx);
      detail->per_vm.push_back(SliceDetail::VmAgg{gid, io, v->cpu_seconds()});
    }
  }
  res.write_Bps = wtime > 0 ? res.bytes_written / wtime : 0;
  res.read_Bps = rtime > 0 ? res.bytes_read / rtime : 0;

  switch (cfg_.workload) {
    case WorkloadKind::kCm1:
      res.app_execution_time = cm1_app ? cm1_app->execution_time() : 0;
      break;
    default:
      res.app_execution_time = simulator.now() - workload_started_at;
      break;
  }
  if (detail != nullptr) detail->repo_chunks_served = cluster.repository().chunks_served();
  // Reclaim daemons still parked on awaitables (writeback loops, truncated
  // workloads) while the cluster they reference is alive: frame destructors
  // may touch backend objects, and the cluster dies before the simulator in
  // this scope's reverse destruction order.
  simulator.destroy_detached();
  return res;
}

ExperimentResult Experiment::run_sharded(const ShardPlan& plan) const {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint32_t n = plan.shard_count();
  std::vector<ExperimentResult> parts(n);
  std::vector<SliceDetail> details(n);
  sim::ShardedSimulator shards(n);
  shards.run([&](std::uint32_t s) { parts[s] = run_slice(&plan.slices[s], &details[s]); });

  // Conservative runtime guards: anything a slice cannot prove independent
  // (a repository fetch from a stripe another shard owns, a max_sim_time
  // truncation whose cut point depends on the global interleave, any error
  // whose text mentions global state) reruns single-shard. Correctness is
  // never traded for wall-clock.
  bool fallback = false;
  for (std::uint32_t s = 0; s < n && !fallback; ++s)
    fallback = !parts[s].completed || !parts[s].error.empty() ||
               details[s].repo_chunks_served > 0;
  if (fallback) {
    ExperimentResult res = run_slice(nullptr, nullptr);
    res.shards_used = 1;
    return res;
  }

  // --- deterministic merge --------------------------------------------------
  // Every reduction replicates the accumulation order of the single-shard
  // collect pass: migration records by global launch index, per-VM doubles
  // in global VM order, spans as maxima. Traffic and byte counters are sums
  // of integer-valued doubles, so shard-order summation is exact.
  ExperimentResult res;
  res.approach = parts[0].approach;
  res.workload = parts[0].workload;
  res.completed = true;
  for (const ExperimentResult& p : parts) {
    res.sim_duration = std::max(res.sim_duration, p.sim_duration);
    res.app_execution_time = std::max(res.app_execution_time, p.app_execution_time);
    res.engine_events += p.engine_events;
    res.engine_flows += p.engine_flows;
    res.engine_recomputes += p.engine_recomputes;
    res.engine_components += p.engine_components;
    res.engine_flows_resolved += p.engine_flows_resolved;
    res.engine_escalations += p.engine_escalations;
    res.engine_frames += p.engine_frames;
    res.engine_frames_reused += p.engine_frames_reused;
    res.engine_frame_heap_allocs += p.engine_frame_heap_allocs;
    for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
      res.traffic_bytes[i] += p.traffic_bytes[i];
  }
  for (std::size_t i = 0; i < net::kNumTrafficClasses; ++i)
    res.total_traffic += res.traffic_bytes[i];
  res.migration_traffic =
      res.total_traffic - res.traffic(net::TrafficClass::kAppComm);

  // Migration records, ordered by global launch index (each slice's list is
  // already ascending and the slices are disjoint — a k-way merge).
  std::vector<std::pair<std::uint32_t, const core::MigrationRecord*>> recs;
  for (std::uint32_t s = 0; s < n; ++s) {
    assert(details[s].launch_ks.size() == parts[s].migrations.size());
    for (std::size_t j = 0; j < parts[s].migrations.size(); ++j)
      recs.emplace_back(details[s].launch_ks[j], &parts[s].migrations[j]);
  }
  std::sort(recs.begin(), recs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  res.migrations.reserve(recs.size());
  for (const auto& [k, rec] : recs) res.migrations.push_back(*rec);
  for (const core::MigrationRecord& m : res.migrations) {
    res.total_migration_time += m.migration_time();
    res.max_downtime = std::max(res.max_downtime, m.downtime_s);
    res.total_retries += m.retries;
    res.retransferred_bytes += m.retransferred_bytes;
    res.migrations_abandoned += m.abandoned ? 1 : 0;
    res.max_time_to_recover = std::max(res.max_time_to_recover, m.time_to_recover());
  }
  res.avg_migration_time =
      res.migrations.empty() ? 0 : res.total_migration_time / res.migrations.size();

  // Per-VM doubles in global VM order (slices hold disjoint ascending ids).
  std::vector<const SliceDetail::VmAgg*> by_vm;
  for (const SliceDetail& d : details)
    for (const SliceDetail::VmAgg& a : d.per_vm) by_vm.push_back(&a);
  std::sort(by_vm.begin(), by_vm.end(),
            [](const SliceDetail::VmAgg* a, const SliceDetail::VmAgg* b) {
              return a->id < b->id;
            });
  double wtime = 0, rtime = 0;
  for (const SliceDetail::VmAgg* a : by_vm) {
    res.bytes_written += a->io.bytes_written;
    res.bytes_read += a->io.bytes_read;
    wtime += a->io.write_time_s;
    rtime += a->io.read_time_s;
    res.cpu_seconds_total += a->cpu_seconds;
  }
  res.write_Bps = wtime > 0 ? res.bytes_written / wtime : 0;
  res.read_Bps = rtime > 0 ? res.bytes_read / rtime : 0;

  res.shards_used = n;
  res.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return res;
}

ExperimentResult Experiment::run() {
  const ShardPlan plan = plan_shards(cfg_);
  if (plan.shard_count() <= 1) {
    ExperimentResult res = run_slice(nullptr, nullptr);
    res.shards_used = 1;
    return res;
  }
  return run_sharded(plan);
}

ExperimentResult run_baseline(ExperimentConfig cfg) {
  cfg.perform_migrations = false;
  return Experiment(std::move(cfg)).run();
}

}  // namespace hm::cloud
