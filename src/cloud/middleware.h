// Cloud middleware (Section 4.2): deploys VM instances from a base image
// and orchestrates live migrations. It owns the per-VM virtual-disk stack
// (migration manager or PVFS backend) and, per migration, constructs the
// storage session for the configured approach, issues MIGRATION_REQUEST to
// the source manager and drives the hypervisor.
#pragma once

#include <memory>
#include <vector>

#include "core/hybrid_migrator.h"
#include "core/metrics.h"
#include "core/migration_manager.h"
#include "core/mirror_migrator.h"
#include "core/postcopy_migrator.h"
#include "core/precopy_migrator.h"
#include "core/shared_migrator.h"
#include "vm/hypervisor.h"
#include "vm/vm_instance.h"

namespace hm::cloud {

class Auditor;

struct ApproachConfig {
  core::Approach approach = core::Approach::kHybrid;
  core::HybridConfig hybrid{};
  core::PostcopyConfig postcopy{};
  core::PrecopyConfig precopy{};
  core::MirrorConfig mirror{};
  vm::HypervisorConfig hypervisor{};
  /// Fault recovery: how often an aborted migration is retried and how long
  /// the middleware waits (on top of both endpoints being back up) before
  /// re-issuing MIGRATION_REQUEST.
  int max_attempts = 8;
  double retry_backoff_s = 1.0;
};

class Middleware {
 public:
  Middleware(sim::Simulator& sim, vm::Cluster& cluster, ApproachConfig cfg = {});
  Middleware(const Middleware&) = delete;
  Middleware& operator=(const Middleware&) = delete;

  /// Deploy a VM on `node`. For the pvfs-shared baseline the virtual disk is
  /// a qcow2-on-PVFS backend; otherwise a migration manager over local
  /// storage (backed by the striped repository for base content).
  vm::VmInstance& deploy(net::NodeId node, vm::VmConfig vm_cfg = {});

  /// Deploy with an explicit VM id. Sharded experiment slices use this so a
  /// slice's VMs keep their fleet-global ids (and hence the RNG streams those
  /// ids key) no matter which subset of VMs the slice owns.
  vm::VmInstance& deploy(net::NodeId node, vm::VmConfig vm_cfg, int vm_id);

  /// Live-migrate `vm` to `dst`; completes when the source is released.
  /// Fault-aborted attempts are retried (up to max_attempts), reusing partial
  /// destination chunk state when the destination survived the fault.
  sim::Task migrate(vm::VmInstance& vm, net::NodeId dst);

  /// One migration attempt against `rec`: build the session (adopting a
  /// salvageable partial destination replica from a previous attempt of the
  /// same record), drive the hypervisor, and — on abort — salvage the
  /// partial destination state back into the manager's resume slot and
  /// account the wasted wire work (rec.retries, t_first_abort,
  /// retransferred/salvaged bytes). Sets *completed to whether the source
  /// was released. Shared by migrate()'s internal retry loop and the
  /// continuous scheduler (cloud/scheduler.h), whose admission/preemption
  /// logic decides per attempt whether to retry in place or requeue.
  sim::Task migrate_attempt(vm::VmInstance& vm, net::NodeId dst,
                            core::MigrationRecord& rec, bool* completed);

  /// The in-flight session currently driving `rec`'s attempt, or nullptr.
  /// The scheduler uses this to abort (preempt) a running migration.
  core::StorageMigrationSession* active_session_for(
      const core::MigrationRecord& rec) noexcept;

  /// Fault-injection hook: `n` just crashed. Aborts every in-flight
  /// migration attempt that still depends on `n` and has not yet moved
  /// control. Called synchronously by the injector *after* the network
  /// failed the node's flows but *before* any failed transfer resumes, so
  /// sessions observe aborted() the moment their co_await returns false.
  void on_node_down(net::NodeId n);

  core::Metrics& metrics() noexcept { return metrics_; }
  const ApproachConfig& config() const noexcept { return cfg_; }
  std::size_t vm_count() const noexcept { return slots_.size(); }
  vm::VmInstance& vm(std::size_t i) noexcept { return *slots_[i]->vm; }
  core::MigrationManager* manager_of(const vm::VmInstance& vm) noexcept;
  /// Sessions stay alive for the whole experiment (introspection + safety
  /// of detached background tasks).
  const std::vector<std::unique_ptr<core::StorageMigrationSession>>& sessions() const {
    return sessions_;
  }
  /// Sessions with an attempt currently in flight (the watchdog's scan set).
  const std::vector<core::StorageMigrationSession*>& active_sessions() const noexcept {
    return active_sessions_;
  }
  /// Invariant auditor (optional): receives adoption/completion conservation
  /// checks from the migrate loop. Caller keeps ownership.
  void set_auditor(Auditor* a) noexcept { auditor_ = a; }

 private:
  struct VmSlot {
    std::unique_ptr<core::MigrationManager> mgr;        // local-storage approaches
    std::unique_ptr<storage::PvfsBackend> pvfs_backend;  // pvfs-shared
    std::unique_ptr<vm::VmInstance> vm;
  };

  std::unique_ptr<core::StorageMigrationSession> make_session(VmSlot& slot,
                                                              net::NodeId dst,
                                                              core::MigrationRecord& rec);

  sim::Simulator& sim_;
  vm::Cluster& cluster_;
  ApproachConfig cfg_;
  Auditor* auditor_ = nullptr;
  core::Metrics metrics_;
  std::vector<std::unique_ptr<VmSlot>> slots_;
  std::vector<std::unique_ptr<core::StorageMigrationSession>> sessions_;
  std::vector<core::StorageMigrationSession*> active_sessions_;
  /// Partial destination replicas discarded on retry (destination crashed or
  /// target changed). In-flight host-bus/flusher work may still reference
  /// them, so they are parked until teardown instead of destroyed mid-run.
  std::vector<std::unique_ptr<storage::ChunkStore>> retired_stores_;
  int next_vm_id_ = 0;
};

}  // namespace hm::cloud
