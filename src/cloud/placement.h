// Destination placement for the continuous scheduler: choose, per request,
// a destination node from the experiment's destination pool under per-node
// capacity and anti-affinity constraints. Purely deterministic bookkeeping —
// no simulator events, no RNG — so a placement decision is a function of
// the decision history alone and the scheduler's timeline stays a pure
// function of (config, seed).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/flow_network.h"

namespace hm::cloud {

enum class PlacementPolicy : std::uint8_t {
  kRoundRobin,   // rotate through feasible nodes in pool order
  kLeastLoaded,  // fewest residents + in-flight reservations, lowest id ties
};
const char* placement_policy_name(PlacementPolicy p) noexcept;
bool parse_placement_policy(std::string_view name, PlacementPolicy* out);

struct PlacementConfig {
  PlacementPolicy policy = PlacementPolicy::kLeastLoaded;
  /// Max VMs per destination node, counting residents AND in-flight
  /// reservations (0 = unlimited).
  std::uint32_t capacity = 0;
  /// Anti-affinity: VMs with equal (vm_id % affinity_groups) must never
  /// co-reside on (or be simultaneously in flight toward) one destination
  /// node. 0 disables the constraint.
  std::uint32_t affinity_groups = 0;
};

/// Occupancy tracker over the destination pool [first_dst, first_dst + n).
/// The scheduler reserves a node at dispatch, releases it when a request is
/// abandoned, and commits it when a migration completes (which also vacates
/// the VM's previous pool node, if any). A preempted request keeps its
/// reservation: the salvaged partial replica physically occupies the
/// destination, and re-dispatch must reuse the same node for the resume
/// state to be adoptable.
class PlacementMap {
 public:
  PlacementMap(PlacementConfig cfg, net::NodeId first_dst, std::uint32_t num_dsts);

  /// True when at least one pool node can accept `vm_id` right now.
  bool feasible(int vm_id) const noexcept;
  /// Pick a destination for `vm_id` per the policy (precondition:
  /// feasible(vm_id)). Round-robin advances its rotation cursor.
  net::NodeId choose(int vm_id);

  void reserve(net::NodeId n, int vm_id);
  void release(net::NodeId n, int vm_id);
  /// Migration done: the reservation on `n` becomes residency, and the VM's
  /// previous pool residency (if any) is vacated.
  void commit(net::NodeId n, int vm_id);

  std::uint32_t residents(net::NodeId n) const noexcept;
  std::uint32_t reserved(net::NodeId n) const noexcept;
  const PlacementConfig& config() const noexcept { return cfg_; }

 private:
  struct Node {
    std::uint32_t residents = 0;
    std::uint32_t reserved = 0;
    /// Occupants per affinity group (residents + reservations).
    std::vector<std::uint32_t> group_count;
  };

  std::uint32_t group_of(int vm_id) const noexcept {
    return cfg_.affinity_groups == 0
               ? 0
               : static_cast<std::uint32_t>(vm_id) % cfg_.affinity_groups;
  }
  bool admits(const Node& nd, int vm_id, net::NodeId node) const noexcept;
  std::size_t index_of(net::NodeId n) const noexcept {
    return static_cast<std::size_t>(n - first_dst_);
  }

  PlacementConfig cfg_;
  net::NodeId first_dst_;
  std::vector<Node> nodes_;
  /// Current pool node of each VM that completed a migration (home nodes
  /// live outside the pool and are never tracked).
  std::unordered_map<int, net::NodeId> resident_of_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace hm::cloud
