// Fault-axis recovery telemetry: per-migration recovery records reduced to
// the aggregates and percentiles an operator reads (p50/p99/p999 recovery
// time and downtime), plus the churn-availability counters the injector
// accumulates (node crashes, correlated domain events, node downtime).
// All zero when no faults are configured.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"

namespace hm::cloud {

struct RecoveryStats {
  // Injector-side availability counters.
  std::uint32_t faults_injected = 0;   // fault events applied
  std::uint32_t node_crashes = 0;      // up->down node transitions
  std::uint32_t correlated_events = 0; // domain-scoped (multi-node) events
  double fault_downtime_s = 0;         // guest pause from crashed hosts, summed
  double node_downtime_s = 0;          // node-seconds spent down, summed

  // Record-derived aggregates (over the merged migration records).
  int total_retries = 0;            // aborted migration attempts, summed
  int migrations_abandoned = 0;     // gave up after max_attempts
  std::uint32_t migrations_recovered = 0;  // aborted at least once, then completed
  double retransferred_bytes = 0;   // wire work redone across retries
  double salvaged_chunks = 0;       // chunks adopted from partial replicas
  double max_time_to_recover_s = 0; // worst abort -> control-transfer gap

  // Percentiles (deterministic nearest-rank over the sorted samples).
  // Recovery-time percentiles are over migrations that aborted and then
  // recovered; downtime percentiles are over every completed migration.
  double recovery_p50_s = 0;
  double recovery_p99_s = 0;
  double recovery_p999_s = 0;
  double downtime_p50_s = 0;
  double downtime_p99_s = 0;
  double downtime_p999_s = 0;
};

/// Nearest-rank percentile: the ceil(q*N)-th smallest sample (q in (0,1]).
/// Deterministic — no interpolation, so byte-identical across regimes.
/// Returns 0 on an empty sample set. `samples` is sorted in place.
double nearest_rank_percentile(std::vector<double>& samples, double q);

/// Compute the record-derived half of RecoveryStats from merged migration
/// records (injector-side counters are left untouched — callers add those
/// from the armed injector, or sum them across shard parts).
void recovery_from_migrations(const std::vector<core::MigrationRecord>& migrations,
                              RecoveryStats* out);

}  // namespace hm::cloud
