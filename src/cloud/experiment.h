// Experiment harness: wires a cluster, VMs, workloads and a migration
// schedule into one deterministic simulation and extracts the paper's
// metrics (migration time, network traffic by class, in-VM throughput,
// computational potential, application runtime).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cloud/middleware.h"
#include "cloud/recovery.h"
#include "cloud/scheduler.h"
#include "core/metrics.h"
#include "sim/fault_plan.h"
#include "workloads/asyncwr.h"
#include "workloads/cm1.h"
#include "workloads/ior.h"
#include "workloads/trace_gen.h"

namespace hm::cloud {

enum class WorkloadKind : std::uint8_t { kNone, kIor, kAsyncWr, kCm1, kTrace };
const char* workload_name(WorkloadKind k) noexcept;

struct ExperimentConfig {
  core::Approach approach = core::Approach::kHybrid;
  vm::ClusterConfig cluster{};
  vm::VmConfig vm{};
  ApproachConfig approach_cfg{};

  WorkloadKind workload = WorkloadKind::kIor;
  workloads::IorConfig ior{};
  workloads::AsyncWrConfig asyncwr{};
  workloads::Cm1Config cm1{};
  /// kTrace source: in-memory data, a trace file (replayed by one streaming
  /// reader with bounded memory), or a generator spec (seeded from `seed`).
  workloads::TraceSourceConfig trace{};

  /// Attach this recorder to every deployed VM: the run's workload-API call
  /// stream becomes a replayable trace (caller owns the recorder and reads
  /// its data() after run()). Recording is passive — the timeline is
  /// unchanged.
  workloads::TraceRecorder* trace_recorder = nullptr;
  /// Convenience: record the run into this trace file (experiment owns the
  /// recorder; a write failure lands in ExperimentResult::error).
  std::string record_trace_path;

  /// Number of source VMs (CM1 overrides this with its rank count).
  std::size_t num_vms = 1;
  /// Destination nodes available (sources map onto them round-robin).
  std::size_t num_destinations = 1;
  /// How many of the sources get migrated.
  std::size_t num_migrations = 1;
  double first_migration_at = 100.0;
  /// Delay between successive migration initiations (0 = simultaneous).
  double migration_interval_s = 0.0;
  bool perform_migrations = true;

  /// Continuous-arrival scheduler (cloud/scheduler.h). When enabled it
  /// replaces the fixed launch schedule above: an open arrival stream feeds
  /// a priority admission queue with bounded concurrency, placement under
  /// capacity/anti-affinity constraints, preemption and fault retry. The
  /// scheduler spans the whole fleet, so it collapses the shard plan.
  SchedulerConfig scheduler{};

  /// Hard stop (safety against non-converging runs); 0 = run to completion.
  double max_sim_time = 0;

  /// Fault-injection axis: scripted, seeded ("rand:") or continuous
  /// ("churn:") fault process replayed through the simulator (see
  /// sim/fault_plan.h for the --faults grammar). Random draws fork the
  /// experiment seed, so fault runs stay deterministic.
  sim::FaultSpec faults{};

  /// Virtual-time watchdog/invariant auditor (cloud/auditor.h): liveness
  /// (no migration stalls past the progress deadline without an open fault
  /// excuse) and chunk conservation (adoption + completion accounting).
  /// The auditor's periodic tick adds simulator events, so audited runs
  /// gate only against goldens generated with audit on. Collapses the
  /// shard plan (the auditor must observe every migration).
  bool audit = false;
  double audit_check_interval_s = 10.0;
  double audit_progress_deadline_s = 120.0;

  /// Simulator shards for this one experiment (parallel in-process). The
  /// deterministic partitioner (cloud/shard_plan.h) decomposes the VM fleet
  /// into constraint-graph components and runs them on worker threads drawn
  /// from sim::WorkerBudget. Finite shared *network* constraints (fabric
  /// aggregate, switch uplinks) no longer collapse the plan: those regimes
  /// run epoch-coupled, with a central mirror solver arbitrating the shared
  /// constraints at every settle epoch. Hard couplers (CM1/IOR, faults,
  /// PVFS, trace recording, non-broadcast replay) still conservatively
  /// collapse to one shard. Every virtual-time field of the result is
  /// byte-identical for any shard count — only wall_ms may change.
  /// kShardsAuto picks min(component count, workers available) at plan time.
  std::uint32_t shards = 1;
  static constexpr std::uint32_t kShardsAuto = 0xffffffffu;

  std::uint64_t seed = 42;

  /// Ensure the cluster is large enough for sources + destinations and that
  /// approach-specific settings (PVFS) are consistent.
  void normalize();
};

struct ExperimentResult {
  std::string approach;
  std::string workload;
  double sim_duration = 0;
  bool completed = true;  // false if the max_sim_time guard hit
  /// Non-empty on a workload-axis failure (malformed trace, record/write
  /// error); such runs also clear `completed`.
  std::string error;

  std::vector<core::MigrationRecord> migrations;
  double total_migration_time = 0;
  double avg_migration_time = 0;
  double max_downtime = 0;

  /// Fault-axis recovery telemetry: availability counters, per-migration
  /// recovery aggregates and p50/p99/p999 percentiles (cloud/recovery.h).
  /// All zero when no faults are configured.
  RecoveryStats recovery{};

  /// Scheduler telemetry (queue depths, preemptions, queueing-delay
  /// percentiles) — all zero unless cfg.scheduler is enabled.
  SchedulerStats scheduler{};

  /// Invariant-auditor telemetry (cfg.audit): checks executed and the
  /// violations found — an audited run with a non-empty list is a failure.
  std::uint64_t audit_checks = 0;
  std::vector<std::string> audit_violations;

  std::array<double, net::kNumTrafficClasses> traffic_bytes{};
  double total_traffic = 0;
  /// Total traffic minus application communication (Figure 5(b) subtracts
  /// CM1's own halo exchange traffic).
  double migration_traffic = 0;

  // Aggregated over all VMs.
  double bytes_written = 0, bytes_read = 0;
  double write_Bps = 0, read_Bps = 0;
  double cpu_seconds_total = 0;
  double app_execution_time = 0;  // workload span (CM1: whole application)

  // Engine throughput (the perf trajectory the scale sweeps track).
  std::uint64_t engine_events = 0;      // simulator events processed
  std::uint64_t engine_flows = 0;       // network flows started
  std::uint64_t engine_recomputes = 0;  // max-min solve epochs
  // Incremental-solver work counters (cumulative; divide by
  // engine_recomputes for per-epoch figures).
  std::uint64_t engine_components = 0;   // component water-fills run
  std::uint64_t engine_flows_resolved = 0;  // flow rate re-derivations
  std::uint64_t engine_escalations = 0;  // epochs forced to a global solve
  // Allocator telemetry from the coroutine frame pool (this run's deltas):
  // frames served, frames recycled from a free list, and system heap
  // allocations (slab growth + oversize fallback). A steady-state run should
  // show engine_frame_heap_allocs ~ 0 beyond warm-up.
  std::uint64_t engine_frames = 0;
  std::uint64_t engine_frames_reused = 0;
  std::uint64_t engine_frame_heap_allocs = 0;
  /// Shards that actually ran (after partitioning and conservative
  /// fallback). 1 whenever the plan collapsed — tests use this to tell a
  /// genuinely parallel run from a vacuous one.
  std::uint32_t shards_used = 1;
  /// Why shards_used fell short of the requested shard count: the plan's
  /// static collapse reason, or the runtime guard that forced the
  /// single-shard rerun. Empty when the run used the planned shards.
  std::string shard_fallback_reason;
  double wall_ms = 0;                   // host wall-clock for the run loop

  double traffic(net::TrafficClass c) const {
    return traffic_bytes[static_cast<std::size_t>(c)];
  }
};

struct ShardPlan;

class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg) : cfg_(std::move(cfg)) { cfg_.normalize(); }

  /// Run the full simulation and collect metrics. With cfg.shards > 1 and a
  /// decomposable scenario, component slices run on parallel simulator
  /// shards and the results are merged deterministically; the virtual-time
  /// fields are byte-identical to the single-shard run either way.
  ExperimentResult run();

  const ExperimentConfig& config() const noexcept { return cfg_; }

 private:
  /// Per-slice raw material the deterministic merge needs at finer grain
  /// than ExperimentResult's aggregates (accumulation order matters).
  struct SliceDetail;
  /// One slice's live simulation state (simulator, cluster, workloads,
  /// schedule), factored out of run_slice so the epoch-coupled executor can
  /// drive the event loop round-by-round instead of to completion.
  struct SliceRuntime;

  /// One simulator slice over the owned VM ids (nullptr = all VMs — the
  /// exact legacy single-shard path). Thread-safe: touches only locals and
  /// the const config.
  ExperimentResult run_slice(const std::vector<std::uint32_t>* owned,
                             SliceDetail* detail) const;
  ExperimentResult run_sharded(const ShardPlan& plan) const;
  /// Epoch-coupled executor: slices advance in lockstep over global event
  /// instants while a mirror FlowNetwork (net/coupled_solver.h) arbitrates
  /// the finite shared constraints. Merged result is byte-identical to the
  /// single-shard run in every virtual-time field.
  ExperimentResult run_epoch_coupled(const ShardPlan& plan) const;
  /// Deterministic merge of completed slice results (shared by the
  /// independent and epoch-coupled executors).
  ExperimentResult merge_parts(std::vector<ExperimentResult>& parts,
                               std::vector<SliceDetail>& details) const;

  ExperimentConfig cfg_;
};

/// Convenience: run the identical scenario without migrations (baseline for
/// normalized throughput / performance degradation figures).
ExperimentResult run_baseline(ExperimentConfig cfg);

}  // namespace hm::cloud
