// Parallel parameter-sweep runner. Each experiment owns its simulator and
// is fully independent, so sweeps fan out over a thread pool (per the
// hpc-parallel guidance: coarse-grained task parallelism with no shared
// mutable state; results land in pre-sized slots, no locks on the hot path).
#pragma once

#include <string>
#include <vector>

#include "cloud/experiment.h"

namespace hm::cloud {

struct SweepItem {
  std::string label;
  ExperimentConfig config;
};

/// Run all experiments, using up to `threads` worker threads (0 = hardware
/// concurrency). Results are returned in input order. Extra threads beyond
/// the calling one are drawn from sim::WorkerBudget, the same pool sharded
/// experiments draw shard workers from, so sweep x shard parallelism never
/// oversubscribes the machine; the grant is best-effort and affects
/// wall-clock only.
std::vector<ExperimentResult> run_sweep(const std::vector<SweepItem>& items,
                                        unsigned threads = 0);

}  // namespace hm::cloud
