// Plain-text reporting helpers: fixed-width tables in the shape of the
// paper's figures, unit formatting, and the Table 1 approach summary.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hm::cloud {

struct ExperimentResult;

/// Which regime-gated field groups a sweep row carries. Mirrors the
/// fault-field convention of bench/fig4_scale_sweep.cpp: a field group is
/// emitted (and golden-checked) only when its regime is active, so the
/// committed default-regime goldens stay byte-compatible as new regimes are
/// added.
struct SweepRowOptions {
  /// --faults regime: the recovery/availability block (counters, recovery
  /// percentiles, max_time_to_recover_s).
  bool fault_regime = false;
  /// --arrivals regime: the scheduler block (request counters, queue/running
  /// peaks, queueing-delay percentiles). Downtime percentiles are emitted
  /// whenever either regime is active — fault recovery and preemption churn
  /// both move them.
  bool scheduler_regime = false;
  /// Audit fields (checks run, violations found).
  bool audit = false;
};

/// Emit the shared tail of one sweep-JSON row — every field from
/// "completed" onward, starting with ", " — onto `os`. The caller emits its
/// own identity fields (concurrency, core, workload/faults/shards specs)
/// first. Shared by fig4_scale_sweep and steady_state_sweep so the row
/// shape (and the byte-exact golden contract) cannot drift between them.
void sweep_row_fields(std::ostream& os, const ExperimentResult& r,
                      const SweepRowOptions& opt);

std::string fmt_seconds(double s);
std::string fmt_bytes(double bytes);   // auto KB/MB/GB
std::string fmt_mb(double bytes);      // fixed MB
std::string fmt_gb(double bytes);      // fixed GB
std::string fmt_pct(double fraction);  // 0.42 -> "42.0%"
std::string fmt_double(double v, int precision = 2);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Machine-readable form (plotting scripts, spreadsheets). Cells
  /// containing commas or quotes are quoted per RFC 4180.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print the paper's Table 1 (summary of compared approaches).
void print_table1(std::ostream& os);

/// Section header helper for bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace hm::cloud
