// Plain-text reporting helpers: fixed-width tables in the shape of the
// paper's figures, unit formatting, and the Table 1 approach summary.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace hm::cloud {

std::string fmt_seconds(double s);
std::string fmt_bytes(double bytes);   // auto KB/MB/GB
std::string fmt_mb(double bytes);      // fixed MB
std::string fmt_gb(double bytes);      // fixed GB
std::string fmt_pct(double fraction);  // 0.42 -> "42.0%"
std::string fmt_double(double v, int precision = 2);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Machine-readable form (plotting scripts, spreadsheets). Cells
  /// containing commas or quotes are quoted per RFC 4180.
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print the paper's Table 1 (summary of compared approaches).
void print_table1(std::ostream& os);

/// Section header helper for bench output.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace hm::cloud
