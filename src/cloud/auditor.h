// Virtual-time watchdog and invariant auditor for fault/churn experiments.
//
// Runs alongside the experiment on ordinary simulator timers and turns two
// classes of silent failure into hard, named violations:
//
//  * Liveness — no in-flight migration may sit beyond the progress deadline
//    without either measurable progress (its record's counters moved) or an
//    open fault excuse (the injector reports a crash/degrade/flap window on
//    one of its endpoints, or a repository outage). A stuck migration with
//    no excuse is a bug, not bad luck.
//  * Conservation — chunk state must be accounted for end to end: every
//    chunk a retry adopts as "valid" must actually be present in the
//    salvaged replica, every source-modified chunk must be present at the
//    destination when a migration completes (or superseded by a newer
//    destination-side write), and a record's retransferred bytes can never
//    exceed the wire work it actually performed.
//
// The auditor only reads state; it schedules no I/O and never perturbs the
// timeline beyond its own timer events (which is why audited regimes gate
// against goldens generated with the auditor on).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/middleware.h"

namespace hm::cloud {

class FaultInjector;

class Auditor {
 public:
  Auditor(sim::Simulator& sim, Middleware& mw, double check_interval_s,
          double progress_deadline_s);
  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Attribution source for liveness excuses. Without an injector no fault
  /// window can excuse a stall — every deadline miss is flagged.
  void set_injector(const FaultInjector* inj) noexcept { injector_ = inj; }

  /// Start the periodic watchdog tick (self-rescheduling timer).
  void arm();

  /// Conservation hook: a retry is about to adopt a salvaged destination
  /// replica; every chunk marked valid must be present in it.
  void check_adoption(const storage::ChunkStore& store,
                      const util::DirtyBitmap& valid, int vm_id);
  /// Conservation hook: a migration just completed (source released).
  /// Every source-modified chunk must be present at the destination, and
  /// the record's retransfer accounting must not exceed its wire work.
  void check_completion(const core::StorageMigrationSession& session,
                        double chunk_bytes);

  std::uint64_t checks_run() const noexcept { return checks_; }
  const std::vector<std::string>& violations() const noexcept { return violations_; }

 private:
  /// Progress signature: any change in these fields counts as progress.
  struct Sig {
    double mem = -1, pushed = -1, pulled = -1, downtime = -1, t_ct = -1;
    int rounds = -1, retries = -1;
    bool operator==(const Sig&) const = default;
  };
  struct Watch {
    Sig sig{};
    double last_progress_at = 0;
    bool flagged = false;
    /// Endpoint attribution for fault excuses, captured from the migration's
    /// most recent attempt (the record itself does not carry nodes).
    net::NodeId src = 0;
    net::NodeId dst = 0;
  };

  void tick();
  void flag(std::string msg);

  sim::Simulator& sim_;
  Middleware& mw_;
  const FaultInjector* injector_ = nullptr;
  double interval_s_;
  double deadline_s_;
  std::unordered_map<const core::MigrationRecord*, Watch> watches_;
  std::uint64_t checks_ = 0;
  std::vector<std::string> violations_;
};

}  // namespace hm::cloud
