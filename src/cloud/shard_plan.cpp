#include "cloud/shard_plan.h"

#include <cmath>

#include "net/shard_partition.h"

namespace hm::cloud {

namespace {

ShardPlan single(std::size_t n_vms, std::string reason) {
  ShardPlan plan;
  plan.coupled_reason = std::move(reason);
  plan.slices.emplace_back();
  plan.slices[0].reserve(n_vms);
  for (std::uint32_t i = 0; i < n_vms; ++i) plan.slices[0].push_back(i);
  return plan;
}

/// Statically known cross-slice coupling, or empty if decomposable.
std::string coupling_reason(const ExperimentConfig& cfg) {
  if (cfg.faults.enabled()) return "fault injection spans shards";
  if (cfg.approach == core::Approach::kPvfsShared || cfg.cluster.enable_pvfs)
    return "PVFS stripes across all nodes";
  if (std::isfinite(cfg.cluster.network.fabric_Bps))
    return "finite fabric aggregate couples all flows";
  if (cfg.cluster.nodes_per_switch > 0 && std::isfinite(cfg.cluster.switch_uplink_Bps))
    return "finite switch uplinks couple racks";
  switch (cfg.workload) {
    case WorkloadKind::kCm1:
      return "CM1 halo exchange spans VMs";
    case WorkloadKind::kIor:
      return "IOR reads fetch from the striped repository";
    case WorkloadKind::kTrace:
      if (!cfg.trace.broadcast) return "non-broadcast trace replay indexes VMs globally";
      break;
    default:
      break;
  }
  if (cfg.trace_recorder != nullptr || !cfg.record_trace_path.empty())
    return "trace recording observes every VM";
  return {};
}

}  // namespace

ShardPlan plan_shards(const ExperimentConfig& cfg) {
  const std::size_t n_vms = cfg.num_vms;
  if (cfg.shards <= 1 || n_vms <= 1) return single(n_vms, {});
  std::string reason = coupling_reason(cfg);
  if (!reason.empty()) return single(n_vms, std::move(reason));

  // Constraint-graph edges: each VM pins its home node's NICs for its whole
  // life; a migrated VM additionally pins its destination's. Destination
  // nodes are assigned round-robin, so distinct migrations sharing a
  // destination merge into one component here — exactly as their flows
  // would merge in the solver.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n_vms + cfg.num_migrations);
  for (std::uint32_t i = 0; i < n_vms; ++i)
    edges.emplace_back(i, i);  // VM i deploys on node i
  if (cfg.perform_migrations) {
    for (std::uint32_t k = 0; k < cfg.num_migrations; ++k) {
      const auto dst = static_cast<std::uint32_t>(n_vms + (k % cfg.num_destinations));
      edges.emplace_back(k, dst);
    }
  }
  const net::ShardAssignment asg =
      net::partition_items(n_vms, cfg.cluster.num_nodes, edges, cfg.shards);

  ShardPlan plan;
  plan.components = asg.components;
  if (asg.bins_used <= 1) return single(n_vms, "single connected component");
  std::vector<std::vector<std::uint32_t>> bins(cfg.shards);
  for (std::uint32_t i = 0; i < n_vms; ++i)
    bins[asg.shard_of_item[i]].push_back(i);
  for (auto& b : bins)
    if (!b.empty()) plan.slices.push_back(std::move(b));  // VM ids already ascending
  return plan;
}

}  // namespace hm::cloud
