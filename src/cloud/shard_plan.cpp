#include "cloud/shard_plan.h"

#include <algorithm>
#include <cmath>

#include "net/shard_partition.h"
#include "sim/worker_budget.h"

namespace hm::cloud {

namespace {

ShardPlan single(std::size_t n_vms, std::string reason) {
  ShardPlan plan;
  plan.kind = PlanKind::kSingle;
  plan.coupled_reason = std::move(reason);
  plan.slices.emplace_back();
  plan.slices[0].reserve(n_vms);
  for (std::uint32_t i = 0; i < n_vms; ++i) plan.slices[0].push_back(i);
  return plan;
}

/// Finite shared *network* constraint spanning the slices, or empty. These
/// no longer collapse the plan: the epoch-coupled executor arbitrates them
/// through the mirror solver.
std::string network_coupling_reason(const ExperimentConfig& cfg) {
  if (std::isfinite(cfg.cluster.network.fabric_Bps))
    return "finite fabric aggregate couples all flows";
  if (cfg.cluster.nodes_per_switch > 0 && std::isfinite(cfg.cluster.switch_uplink_Bps))
    return "finite switch uplinks couple racks";
  return {};
}

/// Why the fault axis forbids sharding this config, or empty when the fault
/// plan is routable: a scripted-only spec whose every event resolves to the
/// nodes of one migration's component, so each slice can arm exactly the
/// events it owns and the merged timeline still matches shards=1.
std::string fault_coupling_reason(const ExperimentConfig& cfg) {
  if (!cfg.faults.enabled()) return {};
  if (cfg.faults.churn) return "churn fault process spans every node";
  if (cfg.faults.rand) return "seeded fault draws share one RNG stream";
  if (!sim::fault_spec_shard_routable(cfg.faults))
    return "fault events target global or node-scoped resources";
  for (const sim::FaultEvent& ev : cfg.faults.scripted) {
    // Destination-scoped events resolve to node n_vms + k % num_destinations,
    // which is only guaranteed to sit in migration k's own component when the
    // schedule actually launches migration k.
    const std::size_t k = cfg.num_vms > 0 ? ev.target % cfg.num_vms : 0;
    const bool dst_scoped = ev.kind == sim::FaultKind::kDestCrash ||
                            ev.kind == sim::FaultKind::kSlowReceiver;
    if (dst_scoped && (!cfg.perform_migrations || k >= cfg.num_migrations))
      return "scripted fault targets an unused migration destination";
  }
  // Node up/down state and capacity scaling are invisible to the
  // epoch-coupled mirror network, which replays flow demand only.
  if (!network_coupling_reason(cfg).empty())
    return "fault injection under finite shared network constraints";
  return {};
}

/// Statically known cross-slice coupling the epoch-coupled protocol cannot
/// arbitrate (storage services, cross-VM workload channels, shared RNG
/// streams, global observers), or empty if slices only ever share network
/// constraints.
std::string hard_coupling_reason(const ExperimentConfig& cfg) {
  std::string fault_reason = fault_coupling_reason(cfg);
  if (!fault_reason.empty()) return fault_reason;
  if (cfg.audit) return "auditor observes every migration";
  if (cfg.perform_migrations && cfg.scheduler.enabled())
    return "continuous-arrival scheduler spans the fleet";
  if (cfg.approach == core::Approach::kPvfsShared || cfg.cluster.enable_pvfs)
    return "PVFS stripes across all nodes";
  switch (cfg.workload) {
    case WorkloadKind::kCm1:
      return "CM1 halo exchange spans VMs";
    case WorkloadKind::kIor:
      return "IOR reads fetch from the striped repository";
    case WorkloadKind::kTrace:
      if (!cfg.trace.broadcast) return "non-broadcast trace replay indexes VMs globally";
      break;
    default:
      break;
  }
  if (cfg.trace_recorder != nullptr || !cfg.record_trace_path.empty())
    return "trace recording observes every VM";
  return {};
}

/// Resolve --shards=auto: as many shards as there are components to fill,
/// bounded by the worker threads the budget would grant plus the caller's
/// own thread (which runs shard 0).
std::uint32_t resolve_auto_shards(std::uint32_t components) {
  const std::size_t workers = sim::WorkerBudget::instance().available();
  const auto want = static_cast<std::uint32_t>(std::max<std::size_t>(1, workers + 1));
  return std::min(std::max(components, 1u), want);
}

}  // namespace

ShardPlan plan_shards(const ExperimentConfig& cfg) {
  const std::size_t n_vms = cfg.num_vms;
  const bool auto_shards = cfg.shards == ExperimentConfig::kShardsAuto;
  if (cfg.shards <= 1 || n_vms <= 1) return single(n_vms, {});
  std::string reason = hard_coupling_reason(cfg);
  if (!reason.empty()) return single(n_vms, std::move(reason));
  std::string net_reason = network_coupling_reason(cfg);

  // Constraint-graph edges: each VM pins its home node's NICs for its whole
  // life; a migrated VM additionally pins its destination's. Destination
  // nodes are assigned round-robin, so distinct migrations sharing a
  // destination merge into one component here — exactly as their flows
  // would merge in the solver.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(n_vms + cfg.num_migrations);
  for (std::uint32_t i = 0; i < n_vms; ++i)
    edges.emplace_back(i, i);  // VM i deploys on node i
  if (cfg.perform_migrations) {
    for (std::uint32_t k = 0; k < cfg.num_migrations; ++k) {
      const auto dst = static_cast<std::uint32_t>(n_vms + (k % cfg.num_destinations));
      edges.emplace_back(k, dst);
    }
  }

  std::uint32_t bins = cfg.shards;
  if (auto_shards) {
    // Two passes: learn the component count with one bin per VM, then
    // re-bin to min(components, workers + caller).
    const net::ShardAssignment probe = net::partition_items(
        n_vms, cfg.cluster.num_nodes, edges, static_cast<std::uint32_t>(n_vms));
    bins = resolve_auto_shards(probe.components);
    if (bins <= 1) {
      ShardPlan plan = single(n_vms, probe.components <= 1
                                         ? "auto: single connected component"
                                         : "auto: no worker threads available");
      plan.components = probe.components;
      return plan;
    }
  }
  const net::ShardAssignment asg =
      net::partition_items(n_vms, cfg.cluster.num_nodes, edges, bins);

  ShardPlan plan;
  plan.components = asg.components;
  if (asg.bins_used <= 1) return single(n_vms, "single connected component");
  std::vector<std::vector<std::uint32_t>> slots(bins);
  for (std::uint32_t i = 0; i < n_vms; ++i)
    slots[asg.shard_of_item[i]].push_back(i);
  for (auto& b : slots)
    if (!b.empty()) plan.slices.push_back(std::move(b));  // VM ids already ascending
  plan.kind = net_reason.empty() ? PlanKind::kIndependent : PlanKind::kEpochCoupled;
  plan.coupled_reason = std::move(net_reason);
  return plan;
}

}  // namespace hm::cloud
