// Static coupling analysis + slice planning for sharded experiments.
//
// The sharded execution contract is byte-identity: every virtual-time field
// of the merged result must equal the single-shard run's. That is provable
// only when the slices are causally independent — no finite network
// constraint, no storage service, no workload channel and no fault event
// spans two slices. plan_shards() decides that *conservatively* from the
// ExperimentConfig alone:
//
//  * Couplers that collapse the plan to one shard: PVFS (striped across
//    all nodes), CM1/IOR workloads (halo exchange / repository reads),
//    non-broadcast trace replay (absolute VM indices), trace recording
//    (observes every VM), the invariant auditor (observes every
//    migration), and non-routable fault regimes — churn processes, seeded
//    "rand:" draws (one shared RNG stream), and repo-/node-/domain-scoped
//    events. Scripted plans whose every event resolves inside one
//    migration's component ARE routable: each slice arms exactly the
//    events it owns and the merged timeline still matches shards=1.
//
//  * Finite *network* constraints no longer collapse the plan: a finite
//    fabric aggregate or finite switch uplinks yield a kEpochCoupled plan —
//    the same component partition, but the executor runs it under the
//    conservative-window protocol where a central mirror solver arbitrates
//    the shared constraints every settle epoch (net/coupled_solver.h).
//
//  * Otherwise VMs partition by the connected components of their planned
//    NIC endpoint sets (home node + migration destination) — the same
//    component structure FlowNetwork::solve_epoch maintains dynamically —
//    via net::partition_items, and run fully independently.
//
// cfg.shards == ExperimentConfig::kShardsAuto resolves the shard count at
// plan time to min(component count, workers available to sim::WorkerBudget
// plus the caller's thread).
//
// Residual couplings only observable at runtime (a repository fetch from a
// foreign-owned stripe, a max_sim_time truncation whose cut point depends
// on the global interleave) are caught by the executor's guards, which
// rerun the experiment single-shard. Wrong-but-fast is never an outcome;
// the fallback costs wall-clock only.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/experiment.h"

namespace hm::cloud {

/// How the executor must run the plan's slices.
enum class PlanKind : std::uint8_t {
  /// One slice, the exact legacy single-shard code path.
  kSingle,
  /// Slices are causally independent; run them with zero synchronization.
  kIndependent,
  /// Slices share finite network constraints (fabric aggregate / switch
  /// uplinks); run them under the epoch-coupled conservative-window
  /// protocol (net/coupled_solver.h).
  kEpochCoupled,
};

struct ShardPlan {
  /// Slices that actually run (non-empty, ascending VM ids inside each).
  /// Size 1 means the plan collapsed — the executor takes the exact
  /// single-shard code path.
  std::vector<std::vector<std::uint32_t>> slices;
  PlanKind kind = PlanKind::kSingle;
  /// kSingle: why the plan collapsed to one shard (empty when the config
  /// never asked for shards). kEpochCoupled: which finite shared constraint
  /// makes the shards exchange rate caps. Empty for kIndependent.
  std::string coupled_reason;
  /// Connected components found (0 when coupling was static).
  std::uint32_t components = 0;

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(slices.size());
  }
};

/// Deterministic: same (normalized) config => same plan.
ShardPlan plan_shards(const ExperimentConfig& cfg);

}  // namespace hm::cloud
