#include "cloud/auditor.h"

#include "cloud/fault_injector.h"

namespace hm::cloud {

Auditor::Auditor(sim::Simulator& sim, Middleware& mw, double check_interval_s,
                 double progress_deadline_s)
    : sim_(sim),
      mw_(mw),
      interval_s_(check_interval_s > 0 ? check_interval_s : 10.0),
      deadline_s_(progress_deadline_s > 0 ? progress_deadline_s : 120.0) {}

void Auditor::arm() {
  sim_.schedule(interval_s_, [this] { tick(); });
}

void Auditor::tick() {
  const double now = sim_.now();
  // Register watches from the persistent session list, not just the attempts
  // currently in flight: a migration stuck *between* attempts (retry backoff,
  // waiting for a crashed endpoint to reboot) has no active session, and that
  // stall is precisely what the watchdog exists to catch. Watches are keyed
  // by record, so a migration's attempts collapse into one watch whose
  // endpoint attribution tracks the latest attempt.
  for (const auto& s : mw_.sessions()) {
    const core::MigrationRecord& rec = s->record();
    if (rec.t_source_released > 0 || rec.abandoned) continue;
    Watch& w = watches_[&rec];
    w.src = s->source_node();
    w.dst = s->destination_node();
  }
  for (auto it = watches_.begin(); it != watches_.end();) {
    const core::MigrationRecord& rec = *it->first;
    if (rec.t_source_released > 0 || rec.abandoned) {
      it = watches_.erase(it);  // done: off the watch list
      continue;
    }
    ++checks_;
    Watch& w = it->second;
    const Sig sig{rec.memory_bytes_sent,
                  rec.storage_chunks_pushed,
                  rec.storage_chunks_pulled,
                  rec.downtime_s,
                  rec.t_control_transfer,
                  rec.memory_rounds,
                  rec.retries};
    // An open fault window on either endpoint (or a repository outage)
    // legitimately stalls the migration: the deadline clock restarts when
    // the excuse closes. Excuses come only from the injector's attribution
    // — a stall with no injected cause is never excused.
    const bool excused =
        injector_ != nullptr &&
        (injector_->node_excused(w.src) || injector_->node_excused(w.dst) ||
         injector_->repo_disrupted());
    if (!(sig == w.sig) || excused) {
      w.sig = sig;
      w.last_progress_at = now;
      w.flagged = false;
    } else if (!w.flagged && now - w.last_progress_at > deadline_s_) {
      w.flagged = true;
      flag("liveness: migration of VM " + std::to_string(rec.vm_id) +
           " made no progress since t=" + std::to_string(w.last_progress_at) +
           " s with no open fault excuse");
    }
    ++it;
  }
  // Self-rescheduling: the experiment loop exits on its completion
  // predicate, not on queue drain, so the perpetual tick never wedges a run.
  sim_.schedule(interval_s_, [this] { tick(); });
}

void Auditor::check_adoption(const storage::ChunkStore& store,
                             const util::DirtyBitmap& valid, int vm_id) {
  ++checks_;
  std::uint64_t missing = 0, first_bad = 0;
  valid.for_each_set([&](std::uint64_t c) {
    if (!store.present(static_cast<storage::ChunkId>(c))) {
      if (missing == 0) first_bad = c;
      ++missing;
    }
  });
  if (missing > 0)
    flag("conservation: retry for VM " + std::to_string(vm_id) + " adopts " +
         std::to_string(missing) + " valid-marked chunk(s) absent from the salvaged " +
         "replica (first: chunk " + std::to_string(first_bad) + ")");
}

void Auditor::check_completion(const core::StorageMigrationSession& session,
                               double chunk_bytes) {
  ++checks_;
  const storage::ChunkStore* src = session.source_store();
  const storage::ChunkStore* dst = session.destination_store();
  const core::MigrationRecord& rec = session.record();
  if (src != nullptr && dst != nullptr) {
    // Every chunk the source modified must have made it to the destination
    // replica by the time the source is released — salvaged + retransferred
    // + fresh transfers together account for the whole replica. A chunk
    // overwritten by the destination after control transfer is exempt: the
    // authoritative data originates there, and its local write may still be
    // in flight on the host bus at the release instant.
    const util::DirtyBitmap* superseded = session.superseded_chunks();
    std::uint64_t missing = 0, first_bad = 0;
    src->for_each_modified([&](storage::ChunkId c) {
      if (superseded != nullptr && superseded->test(c)) return;
      if (!dst->present(c)) {
        if (missing == 0) first_bad = c;
        ++missing;
      }
    });
    if (missing > 0)
      flag("conservation: migration of VM " + std::to_string(rec.vm_id) +
           " completed with " + std::to_string(missing) +
           " source-modified chunk(s) absent at the destination (first: chunk " +
           std::to_string(first_bad) + ")");
  }
  // Retransferred bytes are a subset of the wire work actually performed.
  const double wire = rec.memory_bytes_sent + chunk_bytes * rec.storage_chunks_pushed;
  if (rec.retransferred_bytes > wire + 1e-6)
    flag("conservation: record for VM " + std::to_string(rec.vm_id) +
         " claims retransferred_bytes=" + std::to_string(rec.retransferred_bytes) +
         " exceeding its total wire work " + std::to_string(wire));
}

void Auditor::flag(std::string msg) {
  constexpr std::size_t kMaxViolations = 64;  // keep pathological runs bounded
  if (violations_.size() < kMaxViolations) violations_.push_back(std::move(msg));
}

}  // namespace hm::cloud
