#include "cloud/middleware.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "cloud/auditor.h"

namespace hm::cloud {

Middleware::Middleware(sim::Simulator& sim, vm::Cluster& cluster, ApproachConfig cfg)
    : sim_(sim), cluster_(cluster), cfg_(cfg) {
  if (cfg_.approach == core::Approach::kPvfsShared && cluster_.pvfs() == nullptr) {
    throw std::invalid_argument(
        "pvfs-shared approach requires a cluster with enable_pvfs=true");
  }
}

vm::VmInstance& Middleware::deploy(net::NodeId node, vm::VmConfig vm_cfg) {
  return deploy(node, std::move(vm_cfg), next_vm_id_);
}

vm::VmInstance& Middleware::deploy(net::NodeId node, vm::VmConfig vm_cfg, int vm_id) {
  auto slot = std::make_unique<VmSlot>();
  const int id = vm_id;
  next_vm_id_ = std::max(next_vm_id_, id + 1);
  storage::BlockBackend* backend = nullptr;
  if (cfg_.approach == core::Approach::kPvfsShared) {
    slot->pvfs_backend = std::make_unique<storage::PvfsBackend>(
        *cluster_.pvfs(), cluster_.config().image, node);
    // PVFS client I/O burns host CPU on whichever node the VM runs on.
    slot->pvfs_backend->set_cpu_load_hook(
        [this](net::NodeId n, double delta) { cluster_.node(n).add_cpu_load(delta); });
    backend = slot->pvfs_backend.get();
  } else {
    slot->mgr = std::make_unique<core::MigrationManager>(sim_, cluster_, node, id);
    backend = slot->mgr.get();
  }
  slot->vm = std::make_unique<vm::VmInstance>(sim_, cluster_, node, id, *backend, vm_cfg);
  slots_.push_back(std::move(slot));
  return *slots_.back()->vm;
}

core::MigrationManager* Middleware::manager_of(const vm::VmInstance& vm) noexcept {
  for (auto& s : slots_)
    if (s->vm.get() == &vm) return s->mgr.get();
  return nullptr;
}

std::unique_ptr<core::StorageMigrationSession> Middleware::make_session(
    VmSlot& slot, net::NodeId dst, core::MigrationRecord& rec) {
  switch (cfg_.approach) {
    case core::Approach::kHybrid:
      return std::make_unique<core::HybridSession>(sim_, cluster_, slot.mgr.get(), dst,
                                                   rec, cfg_.hybrid);
    case core::Approach::kPostcopy:
      return core::make_postcopy_session(sim_, cluster_, slot.mgr.get(), dst, rec,
                                         cfg_.postcopy);
    case core::Approach::kPrecopy:
      return std::make_unique<core::PrecopySession>(sim_, cluster_, slot.mgr.get(), dst,
                                                    rec, cfg_.precopy);
    case core::Approach::kMirror:
      return std::make_unique<core::MirrorSession>(sim_, cluster_, slot.mgr.get(), dst,
                                                   rec, cfg_.mirror);
    case core::Approach::kPvfsShared:
      return std::make_unique<core::SharedSession>(sim_, cluster_, *slot.pvfs_backend,
                                                   dst, rec);
  }
  throw std::logic_error("unknown approach");
}

void Middleware::on_node_down(net::NodeId n) {
  for (auto* s : active_sessions_)
    if (!s->control_transferred() &&
        (s->source_node() == n || s->destination_node() == n))
      s->abort();
}

core::StorageMigrationSession* Middleware::active_session_for(
    const core::MigrationRecord& rec) noexcept {
  for (auto* s : active_sessions_)
    if (&s->record() == &rec) return s;
  return nullptr;
}

sim::Task Middleware::migrate_attempt(vm::VmInstance& vm, net::NodeId dst,
                                      core::MigrationRecord& rec, bool* completed) {
  VmSlot* slot = nullptr;
  for (auto& s : slots_)
    if (s->vm.get() == &vm) slot = s.get();
  assert(slot != nullptr);

  auto& net = cluster_.network();
  const double chunk_bytes = cluster_.config().image.chunk_bytes;
  *completed = false;

  sessions_.push_back(make_session(*slot, dst, rec));
  core::StorageMigrationSession& session = *sessions_.back();
  active_sessions_.push_back(&session);
  const std::uint64_t dst_epoch = net.node_epoch(dst);

  // Retry with partial state: hand a surviving destination replica back to
  // the new session so already-current chunks are not re-streamed.
  if (slot->mgr != nullptr) {
    auto& resume = slot->mgr->resume_state();
    if (resume.has_value()) {
      if (resume->dst_node == dst && resume->dst_epoch == dst_epoch) {
        if (auditor_ != nullptr)
          auditor_->check_adoption(*resume->dst_store, resume->valid, vm.id());
        session.adopt_destination(std::move(resume->dst_store),
                                  std::move(resume->valid));
      } else if (resume->dst_store != nullptr) {
        retired_stores_.push_back(std::move(resume->dst_store));
      }
      resume.reset();
    }
  }

  const double mem_base = rec.memory_bytes_sent;
  const double push_base = rec.storage_chunks_pushed;

  // MIGRATION_REQUEST on the source manager (Algorithm 1), then forward the
  // request to the hypervisor, which migrates memory independently.
  if (slot->mgr) slot->mgr->begin_migration(&session);
  session.start();
  co_await vm::Hypervisor::live_migrate(sim_, cluster_.network(), vm, dst, session,
                                        cfg_.hypervisor, rec);
  if (slot->mgr) slot->mgr->end_migration();
  active_sessions_.erase(
      std::find(active_sessions_.begin(), active_sessions_.end(), &session));

  if (!session.aborted()) {
    if (auditor_ != nullptr) auditor_->check_completion(session, chunk_bytes);
    *completed = true;  // done: source released
    co_return;
  }

  // The attempt died before control transfer. Salvage what the destination
  // still holds (lost if the destination itself crashed) and account the
  // wasted wire work; the caller decides whether to retry, requeue or give
  // up.
  ++rec.retries;
  if (rec.t_first_abort == 0) rec.t_first_abort = sim_.now();

  double salvaged_chunks = 0;
  if (slot->mgr != nullptr) {
    util::DirtyBitmap valid;
    auto store = session.take_partial_destination(&valid);
    if (store != nullptr && net.node_epoch(dst) == dst_epoch) {
      salvaged_chunks = static_cast<double>(valid.count());
      rec.salvaged_chunks += salvaged_chunks;
      slot->mgr->resume_state().emplace(core::MigrationManager::ResumeState{
          std::move(store), std::move(valid), dst, dst_epoch});
    } else if (store != nullptr) {
      // Destination crashed under the attempt: the un-synced partial
      // replica is gone. Park the object (in-flight bus work may still
      // reference it) and start the next attempt from scratch.
      retired_stores_.push_back(std::move(store));
    }
  }
  rec.retransferred_bytes +=
      (rec.memory_bytes_sent - mem_base) +
      chunk_bytes *
          std::max(0.0, rec.storage_chunks_pushed - push_base - salvaged_chunks);
}

sim::Task Middleware::migrate(vm::VmInstance& vm, net::NodeId dst) {
  auto& net = cluster_.network();
  core::MigrationRecord& rec = metrics_.new_migration(vm.id());
  rec.t_request = sim_.now();

  for (int attempt = 0; attempt < cfg_.max_attempts; ++attempt) {
    bool completed = false;
    co_await migrate_attempt(vm, dst, rec, &completed);
    if (completed) co_return;
    if (attempt + 1 >= cfg_.max_attempts) break;
    co_await net.wait_node_up(vm.node());
    co_await net.wait_node_up(dst);
    co_await sim_.delay(cfg_.retry_backoff_s);
  }
  rec.abandoned = true;
}

}  // namespace hm::cloud
