#include "cloud/middleware.h"

#include <cassert>
#include <stdexcept>

namespace hm::cloud {

Middleware::Middleware(sim::Simulator& sim, vm::Cluster& cluster, ApproachConfig cfg)
    : sim_(sim), cluster_(cluster), cfg_(cfg) {
  if (cfg_.approach == core::Approach::kPvfsShared && cluster_.pvfs() == nullptr) {
    throw std::invalid_argument(
        "pvfs-shared approach requires a cluster with enable_pvfs=true");
  }
}

vm::VmInstance& Middleware::deploy(net::NodeId node, vm::VmConfig vm_cfg) {
  auto slot = std::make_unique<VmSlot>();
  const int id = next_vm_id_++;
  storage::BlockBackend* backend = nullptr;
  if (cfg_.approach == core::Approach::kPvfsShared) {
    slot->pvfs_backend = std::make_unique<storage::PvfsBackend>(
        *cluster_.pvfs(), cluster_.config().image, node);
    // PVFS client I/O burns host CPU on whichever node the VM runs on.
    slot->pvfs_backend->set_cpu_load_hook(
        [this](net::NodeId n, double delta) { cluster_.node(n).add_cpu_load(delta); });
    backend = slot->pvfs_backend.get();
  } else {
    slot->mgr = std::make_unique<core::MigrationManager>(sim_, cluster_, node, id);
    backend = slot->mgr.get();
  }
  slot->vm = std::make_unique<vm::VmInstance>(sim_, cluster_, node, id, *backend, vm_cfg);
  slots_.push_back(std::move(slot));
  return *slots_.back()->vm;
}

core::MigrationManager* Middleware::manager_of(const vm::VmInstance& vm) noexcept {
  for (auto& s : slots_)
    if (s->vm.get() == &vm) return s->mgr.get();
  return nullptr;
}

std::unique_ptr<core::StorageMigrationSession> Middleware::make_session(
    VmSlot& slot, net::NodeId dst, core::MigrationRecord& rec) {
  switch (cfg_.approach) {
    case core::Approach::kHybrid:
      return std::make_unique<core::HybridSession>(sim_, cluster_, slot.mgr.get(), dst,
                                                   rec, cfg_.hybrid);
    case core::Approach::kPostcopy:
      return core::make_postcopy_session(sim_, cluster_, slot.mgr.get(), dst, rec,
                                         cfg_.postcopy);
    case core::Approach::kPrecopy:
      return std::make_unique<core::PrecopySession>(sim_, cluster_, slot.mgr.get(), dst,
                                                    rec, cfg_.precopy);
    case core::Approach::kMirror:
      return std::make_unique<core::MirrorSession>(sim_, cluster_, slot.mgr.get(), dst,
                                                   rec, cfg_.mirror);
    case core::Approach::kPvfsShared:
      return std::make_unique<core::SharedSession>(sim_, cluster_, *slot.pvfs_backend,
                                                   dst, rec);
  }
  throw std::logic_error("unknown approach");
}

sim::Task Middleware::migrate(vm::VmInstance& vm, net::NodeId dst) {
  VmSlot* slot = nullptr;
  for (auto& s : slots_)
    if (s->vm.get() == &vm) slot = s.get();
  assert(slot != nullptr);

  core::MigrationRecord& rec = metrics_.new_migration(vm.id());
  rec.t_request = sim_.now();

  sessions_.push_back(make_session(*slot, dst, rec));
  core::StorageMigrationSession& session = *sessions_.back();

  // MIGRATION_REQUEST on the source manager (Algorithm 1), then forward the
  // request to the hypervisor, which migrates memory independently.
  if (slot->mgr) slot->mgr->begin_migration(&session);
  session.start();
  co_await vm::Hypervisor::live_migrate(sim_, cluster_.network(), vm, dst, session,
                                        cfg_.hypervisor, rec);
  if (slot->mgr) slot->mgr->end_migration();
}

}  // namespace hm::cloud
