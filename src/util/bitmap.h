// Packed dirty-bitmap: one bit per page/chunk slot, 64 slots per word.
//
// Dirty-state tracking is the inner loop of every migration round: the
// hypervisor snapshots the guest dirty map once per pre-copy iteration, the
// block migrators scan the chunk dirty set per storage round, and the chunk
// store's background flusher continuously looks for the next host-dirty
// chunk. A byte-per-slot vector (the seed representation) makes each of
// those an O(slots) byte walk; packed words make them O(slots/64) with
// popcount for counting and countr_zero for iteration, i.e. the scan runs at
// memory bandwidth and skips clean regions 64 slots at a time.
//
// The population count is maintained incrementally by set/reset, so count()
// is O(1) — that is what GuestMemory::dirty_bytes() and
// ChunkStore::host_dirty_chunks() turn into.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace hm::util {

class DirtyBitmap {
 public:
  static constexpr std::uint64_t npos = ~std::uint64_t{0};

  DirtyBitmap() = default;
  explicit DirtyBitmap(std::uint64_t bits) { resize(bits); }

  /// Resize to `bits` slots, all clear.
  void resize(std::uint64_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
    count_ = 0;
  }

  /// Grow to at least `bits` slots, PRESERVING set bits (slab-style use:
  /// the universe only ever expands). Never shrinks.
  void grow(std::uint64_t bits) {
    if (bits <= bits_) return;
    bits_ = bits;
    words_.resize((bits + 63) / 64, 0);
  }

  std::uint64_t size() const noexcept { return bits_; }
  std::uint64_t count() const noexcept { return count_; }
  bool any() const noexcept { return count_ != 0; }

  bool test(std::uint64_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Set bit i; returns true if it was previously clear.
  bool set(std::uint64_t i) noexcept {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (w & m) return false;
    w |= m;
    ++count_;
    return true;
  }

  /// Clear bit i; returns true if it was previously set.
  bool reset(std::uint64_t i) noexcept {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t m = std::uint64_t{1} << (i & 63);
    if (!(w & m)) return false;
    w &= ~m;
    --count_;
    return true;
  }

  /// Set [first, last): word-granular masking, popcount for the count delta.
  void set_range(std::uint64_t first, std::uint64_t last) noexcept {
    if (first >= last) return;
    apply_range(first, last, /*set=*/true);
  }

  /// Clear [first, last).
  void reset_range(std::uint64_t first, std::uint64_t last) noexcept {
    if (first >= last) return;
    apply_range(first, last, /*set=*/false);
  }

  /// Clear everything (memset-speed; the end of a migration round).
  void clear() noexcept {
    if (count_ == 0) return;
    std::fill(words_.begin(), words_.end(), std::uint64_t{0});
    count_ = 0;
  }

  /// Index of the first set bit at or after `from`; npos when none.
  std::uint64_t find_next(std::uint64_t from) const noexcept {
    if (from >= bits_) return npos;
    std::uint64_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (w) return (wi << 6) + static_cast<std::uint64_t>(std::countr_zero(w));
      if (++wi >= words_.size()) return npos;
      w = words_[wi];
    }
  }

  /// Invoke fn(index) for every set bit, ascending. Clean words cost one
  /// load+test each.
  template <class F>
  void for_each_set(F&& fn) const {
    for (std::uint64_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = std::countr_zero(w);
        fn((wi << 6) + static_cast<std::uint64_t>(b));
        w &= w - 1;
      }
    }
  }

  /// for_each_set + clear in one pass (a migration round's take-and-reset).
  template <class F>
  void drain(F&& fn) {
    for (std::uint64_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      if (!w) continue;
      words_[wi] = 0;
      while (w) {
        const int b = std::countr_zero(w);
        fn((wi << 6) + static_cast<std::uint64_t>(b));
        w &= w - 1;
      }
    }
    count_ = 0;
  }

 private:
  void apply_range(std::uint64_t first, std::uint64_t last, bool set) noexcept {
    const std::uint64_t wf = first >> 6, wl = (last - 1) >> 6;
    for (std::uint64_t wi = wf; wi <= wl; ++wi) {
      std::uint64_t m = ~std::uint64_t{0};
      if (wi == wf) m &= ~std::uint64_t{0} << (first & 63);
      if (wi == wl && (last & 63)) m &= (std::uint64_t{1} << (last & 63)) - 1;
      std::uint64_t& w = words_[wi];
      if (set) {
        count_ += static_cast<std::uint64_t>(std::popcount(m & ~w));
        w |= m;
      } else {
        count_ -= static_cast<std::uint64_t>(std::popcount(m & w));
        w &= ~m;
      }
    }
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t bits_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace hm::util
