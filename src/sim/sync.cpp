#include "sim/sync.h"

namespace hm::sim {

// Wake-all primitives drain the intrusive list first, then walk the
// detached chain. The nodes stay valid during the walk because the woken
// continuations are merely pushed onto the simulator's fast lane, not run
// inline.

void Event::set() {
  if (set_) return;
  set_ = true;
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) sim_->post(n->fn, n->a, n->b);
}

void Notification::notify_all() {
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) sim_->post(n->fn, n->a, n->b);
}

void Gate::open() {
  if (open_) return;
  open_ = true;
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) sim_->post(n->fn, n->a, n->b);
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    // The permit is handed directly to the woken waiter (count_ stays 0),
    // which keeps the queue strictly FIFO.
    WaitNode* n = waiters_.pop();
    sim_->post(n->fn, n->a, n->b);
    return;
  }
  ++count_;
}

void WaitGroup::done() {
  if (count_ > 0) --count_;
  if (count_ == 0) {
    for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next)
      sim_->post(n->fn, n->a, n->b);
  }
}

void Barrier::release_all() {
  // The final arriver continues synchronously (await_suspend returned
  // false); everyone queued before it — every node but the tail, which is
  // the arriver itself — is woken through the event queue.
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) {
    if (n->next != nullptr) sim_->post(n->fn, n->a, n->b);
  }
}

}  // namespace hm::sim
