#include "sim/sync.h"

namespace hm::sim {

void Event::set() {
  if (set_) return;
  set_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_->resume_later(h);
}

void Notification::notify_all() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_->resume_later(h);
}

void Gate::open() {
  if (open_) return;
  open_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto h : waiters) sim_->resume_later(h);
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    auto h = waiters_.front();
    waiters_.pop_front();
    // The permit is handed directly to the woken waiter (count_ stays 0),
    // which keeps the queue strictly FIFO.
    sim_->resume_later(h);
    return;
  }
  ++count_;
}

void WaitGroup::done() {
  if (count_ > 0) --count_;
  if (count_ == 0) {
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto h : waiters) sim_->resume_later(h);
  }
}

void Barrier::release_all() {
  auto waiters = std::move(waiters_);
  waiters_.clear();
  // The final arriver continues synchronously (await_suspend returned
  // false); everyone queued before it is woken through the event queue.
  for (std::size_t i = 0; i + 1 < waiters.size(); ++i) sim_->resume_later(waiters[i]);
}

}  // namespace hm::sim
