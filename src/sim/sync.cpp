#include "sim/sync.h"

namespace hm::sim {

// Wake-all primitives drain the intrusive list first, then walk the
// detached chain. The nodes stay valid during the walk because the woken
// coroutines are merely scheduled (resume_later), not resumed inline.

void Event::set() {
  if (set_) return;
  set_ = true;
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) sim_->resume_later(n->h);
}

void Notification::notify_all() {
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) sim_->resume_later(n->h);
}

void Gate::open() {
  if (open_) return;
  open_ = true;
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) sim_->resume_later(n->h);
}

void Semaphore::release() {
  if (!waiters_.empty()) {
    // The permit is handed directly to the woken waiter (count_ stays 0),
    // which keeps the queue strictly FIFO.
    sim_->resume_later(waiters_.pop()->h);
    return;
  }
  ++count_;
}

void WaitGroup::done() {
  if (count_ > 0) --count_;
  if (count_ == 0) {
    for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next)
      sim_->resume_later(n->h);
  }
}

void Barrier::release_all() {
  // The final arriver continues synchronously (await_suspend returned
  // false); everyone queued before it — every node but the tail, which is
  // the arriver itself — is woken through the event queue.
  for (WaitNode* n = waiters_.drain(); n != nullptr; n = n->next) {
    if (n->next != nullptr) sim_->resume_later(n->h);
  }
}

}  // namespace hm::sim
