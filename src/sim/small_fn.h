// Small inline callable for the event core.
//
// The simulator schedules millions of events per sweep; giving each one a
// std::function<void()> means a 32-byte object whose call goes through a
// vtable-like dispatch and whose capture can silently spill to the heap.
// SmallFn is the contract the event core actually needs: a plain function
// pointer plus TWO WORDS of inline capture storage, checked at compile time.
// A lambda that does not fit does not compile — there is no heap fallback —
// so "no scheduled event ever allocates" is a property of the type, not a
// convention. Call dispatch is one indirect call through the stored function
// pointer (no wrapper hop).
//
// Move-only captures are supported: non-trivial types carry a pointer to a
// static relocate/destroy table (one per capture type), which stays null for
// trivially-copyable captures so the common case moves with a memcpy.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace hm::sim {

class SmallFn {
 public:
  /// Hard capture budget: two machine words. Bigger state belongs behind a
  /// pointer to a struct that outlives the event (see the bench helpers).
  static constexpr std::size_t kInlineBytes = 2 * sizeof(void*);

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT: implicit like std::function

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  SmallFn(F&& f) noexcept(  // NOLINT: implicit like std::function
      std::is_nothrow_constructible_v<std::remove_cvref_t<F>, F&&>) {
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "SmallFn capture exceeds two words: capture a pointer to a "
                  "context struct that outlives the event instead");
    static_assert(alignof(Fn) <= alignof(void*),
                  "SmallFn capture is over-aligned for inline storage");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s) { (*static_cast<Fn*>(s))(); };
    if constexpr (!(std::is_trivially_move_constructible_v<Fn> &&
                    std::is_trivially_destructible_v<Fn>)) {
      ops_ = &ops_for<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }
  void operator()() { invoke_(storage_); }

 private:
  struct Ops {
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void* p) noexcept;
  };
  template <class Fn>
  static constexpr Ops ops_for{
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }};

  void reset() noexcept {
    if (ops_ != nullptr) ops_->destroy(storage_);
    invoke_ = nullptr;
    ops_ = nullptr;
  }
  void move_from(SmallFn& other) noexcept {
    invoke_ = other.invoke_;
    ops_ = other.ops_;
    if (ops_ != nullptr)
      ops_->relocate(storage_, other.storage_);
    else
      std::memcpy(storage_, other.storage_, kInlineBytes);
    other.invoke_ = nullptr;
    other.ops_ = nullptr;
  }

  void (*invoke_)(void*) = nullptr;
  const Ops* ops_ = nullptr;  // null: trivially relocatable capture
  alignas(void*) std::byte storage_[kInlineBytes];
};

}  // namespace hm::sim
