#include "sim/worker_budget.h"

#include <thread>

namespace hm::sim {

WorkerBudget& WorkerBudget::instance() {
  static WorkerBudget budget([] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0u;
  }());
  return budget;
}

}  // namespace hm::sim
