#include "sim/arrival_process.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace hm::sim {

namespace {

bool parse_double(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

bool parse_u32(std::string_view s, std::uint32_t* out) {
  double d = 0;
  if (!parse_double(s, &d) || d < 0 || d != static_cast<std::uint32_t>(d))
    return false;
  *out = static_cast<std::uint32_t>(d);
  return true;
}

bool fail(std::string* err, std::string msg) {
  if (err) *err = std::move(msg);
  return false;
}

/// Keys shared by every kind (window, cap, priority share). Returns true if
/// `key` was one of them (with *ok set to whether the value parsed).
bool common_key(std::string_view key, std::string_view val, ArrivalSpec* spec,
                bool* ok) {
  if (key == "from") *ok = parse_double(val, &spec->from) && spec->from >= 0;
  else if (key == "until") *ok = parse_double(val, &spec->until) && spec->until > 0;
  else if (key == "count") *ok = parse_u32(val, &spec->count);
  else if (key == "hi")
    *ok = parse_double(val, &spec->hi_share) && spec->hi_share >= 0 &&
          spec->hi_share <= 1;
  else return false;
  return true;
}

bool parse_rate_keys(std::string_view body, ArrivalSpec* spec, std::string* err) {
  const bool diurnal = spec->kind == ArrivalKind::kDiurnal;
  const char* what = diurnal ? "diurnal" : "poisson";
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view kv = body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos)
      return fail(err, std::string(what) + " arrival spec expects k=v, got '" +
                           std::string(kv) + "'");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    bool ok = true;
    if (common_key(key, val, spec, &ok)) {
      // handled
    } else if (!diurnal && key == "rate") {
      ok = parse_double(val, &spec->rate) && spec->rate > 0;
    } else if (diurnal && key == "base") {
      ok = parse_double(val, &spec->rate) && spec->rate > 0;
    } else if (diurnal && key == "amp") {
      ok = parse_double(val, &spec->amp) && spec->amp >= 0 && spec->amp <= 1;
    } else if (diurnal && key == "period") {
      ok = parse_double(val, &spec->period) && spec->period > 0;
    } else if (diurnal && key == "phase") {
      ok = parse_double(val, &spec->phase);
    } else {
      return fail(err, std::string("unknown ") + what + " arrival key '" +
                           std::string(key) + "'");
    }
    if (!ok)
      return fail(err, std::string("bad value for ") + what + " arrival key '" +
                           std::string(key) + "'");
  }
  if (spec->rate <= 0)
    return fail(err, std::string(what) + " arrival spec requires " +
                         (diurnal ? "'base'" : "'rate'") + " > 0");
  if (spec->until == 0 && spec->count == 0)
    return fail(err, std::string(what) +
                         " arrival stream is unbounded: set 'until' or 'count'");
  if (spec->until > 0 && spec->until <= spec->from)
    return fail(err, std::string(what) + " arrival 'until' must exceed 'from'");
  return true;
}

bool parse_trace_items(std::string_view body, ArrivalSpec* spec, std::string* err) {
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view item = body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    if (item.empty()) continue;
    if (item.find('=') != std::string_view::npos) {
      const auto eq = item.find('=');
      const std::string_view key = item.substr(0, eq);
      bool ok = true;
      if (!common_key(key, item.substr(eq + 1), spec, &ok))
        return fail(err, "unknown trace arrival key '" + std::string(key) + "'");
      if (!ok)
        return fail(err, "bad value for trace arrival key '" + std::string(key) + "'");
      continue;
    }
    double t = 0;
    if (!parse_double(item, &t) || t < 0)
      return fail(err, "bad trace arrival instant '" + std::string(item) + "'");
    spec->times.push_back(t);
  }
  if (spec->times.empty())
    return fail(err, "trace arrival spec lists no instants");
  std::sort(spec->times.begin(), spec->times.end());
  return true;
}

}  // namespace

const char* arrival_kind_name(ArrivalKind k) noexcept {
  switch (k) {
    case ArrivalKind::kNone: return "none";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kDiurnal: return "diurnal";
    case ArrivalKind::kTrace: return "trace";
  }
  return "?";
}

bool parse_arrival_spec(std::string_view arg, ArrivalSpec* out, std::string* err) {
  *out = ArrivalSpec{};
  if (arg.rfind("arrivals:", 0) == 0) arg = arg.substr(9);
  if (arg.empty() || arg == "none") return true;
  if (arg.rfind("poisson:", 0) == 0) {
    out->kind = ArrivalKind::kPoisson;
    return parse_rate_keys(arg.substr(8), out, err);
  }
  if (arg.rfind("diurnal:", 0) == 0) {
    out->kind = ArrivalKind::kDiurnal;
    return parse_rate_keys(arg.substr(8), out, err);
  }
  if (arg.rfind("trace:", 0) == 0) {
    out->kind = ArrivalKind::kTrace;
    return parse_trace_items(arg.substr(6), out, err);
  }
  return fail(err, "unknown arrival process '" + std::string(arg) +
                       "' (poisson:...|diurnal:...|trace:...)");
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, const Rng& rng)
    : spec_(spec),
      gaps_(rng.fork("arrivals")),
      prio_(rng.fork("arrival-prio")),
      t_(spec.from) {}

double ArrivalProcess::rate_at(double t) const noexcept {
  const double w = 2.0 * M_PI * (t - spec_.phase) / spec_.period;
  return std::max(0.0, spec_.rate * (1.0 + spec_.amp * std::sin(w)));
}

std::optional<Arrival> ArrivalProcess::next() {
  if (exhausted_ || !spec_.enabled()) return std::nullopt;
  if (spec_.count > 0 && emitted_ >= spec_.count) {
    exhausted_ = true;
    return std::nullopt;
  }
  switch (spec_.kind) {
    case ArrivalKind::kTrace: {
      // Skip instants outside the [from, until) window (verbatim otherwise).
      while (trace_idx_ < spec_.times.size() &&
             spec_.times[trace_idx_] < spec_.from)
        ++trace_idx_;
      if (trace_idx_ >= spec_.times.size() ||
          (spec_.until > 0 && spec_.times[trace_idx_] >= spec_.until)) {
        exhausted_ = true;
        return std::nullopt;
      }
      t_ = spec_.times[trace_idx_++];
      break;
    }
    case ArrivalKind::kPoisson: {
      t_ += gaps_.exponential(1.0 / spec_.rate);
      if (spec_.until > 0 && t_ >= spec_.until) {
        exhausted_ = true;
        return std::nullopt;
      }
      break;
    }
    case ArrivalKind::kDiurnal: {
      // Thinning against the peak rate: candidates arrive at the constant
      // peak; each is accepted with probability rate(t)/peak. Draw order per
      // candidate is fixed (gap, then acceptance), so the accepted stream is
      // deterministic in (spec, seed).
      const double peak = spec_.rate * (1.0 + spec_.amp);
      for (;;) {
        t_ += gaps_.exponential(1.0 / peak);
        if (spec_.until > 0 && t_ >= spec_.until) {
          exhausted_ = true;
          return std::nullopt;
        }
        if (gaps_.uniform_real(0.0, 1.0) < rate_at(t_) / peak) break;
      }
      break;
    }
    case ArrivalKind::kNone:
      return std::nullopt;
  }
  ++emitted_;
  // One priority draw per emitted arrival, always consumed, from its own
  // stream — changing hi_share re-labels arrivals but never moves them.
  const bool hi = prio_.uniform_real(0.0, 1.0) < spec_.hi_share;
  return Arrival{t_, hi};
}

}  // namespace hm::sim
