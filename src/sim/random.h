// Deterministic random number generation. Every component derives its own
// stream from (root seed, component name, index) so adding a component never
// perturbs the draws seen by existing ones — experiments stay reproducible
// across code evolution.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace hm::sim {

/// SplitMix64 — used to derive well-mixed seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a hash for component names.
constexpr std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : base_(splitmix64(seed)), engine_(base_) {}

  /// Child stream for a named component, independent of sibling streams.
  Rng fork(std::string_view name, std::uint64_t index = 0) const {
    return Rng(base_ ^ fnv1a(name) ^ splitmix64(index + 0x51ed270b1f0fULL));
  }

  std::uint64_t next_u64() { return engine_(); }

  /// Uniform integer in [0, n) — n must be > 0.
  std::uint64_t uniform(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Exponentially distributed with the given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

 private:
  std::uint64_t base_;
  std::mt19937_64 engine_;
};

}  // namespace hm::sim
