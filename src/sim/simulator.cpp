#include "sim/simulator.h"

#include <algorithm>
#include <limits>

namespace hm::sim {

std::uint32_t Simulator::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    return slot;
  }
  pool_.emplace_back();
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

Simulator::Timer Simulator::schedule_at(double t, SmallFn fn) {
  if (!(t > now_)) t = now_;  // clamps past deadlines and NaN to "now"
  const std::uint32_t slot = alloc_slot();
  assert(slot < (1u << kSlotBits));           // <= 16M concurrently pending
  Slot& s = pool_[slot];
  s.fn = std::move(fn);
  s.cancelled = false;
  assert(seq_ < (1ull << (64 - kSlotBits)));  // ~1.1e12 events per simulation
  push_item(HeapItem{t, (seq_++ << kSlotBits) | slot});
  return Timer{this, slot, s.gen};
}

void Simulator::destroy_detached() noexcept {
  while (detached_head_) {
    Task::promise_type* p = detached_head_;
    p->det_unlink();
    Task::Handle::from_promise(*p).destroy();
  }
}

void Simulator::spawn(Task t) {
  Task::Handle h = t.release();
  if (!h) return;
  Task::promise_type& p = h.promise();
  p.detached = true;
  p.det_head = &detached_head_;
  p.det_next = detached_head_;
  if (detached_head_) detached_head_->det_prev = &p;
  detached_head_ = &p;
  post(std::coroutine_handle<>(h));
}

void Simulator::grow_fast() {
  const std::size_t cap = fast_.empty() ? 64 : fast_.size() * 2;
  std::vector<FastItem> next(cap);
  for (std::size_t i = 0; i < fast_count_; ++i)
    next[i] = fast_[(fast_head_ + i) & (fast_.size() - 1)];
  fast_.swap(next);
  fast_head_ = 0;
}

// 4-ary sift with a moving hole: half the depth of a binary heap and the
// four children share a cache line, so ordering costs fewer misses.
void Simulator::heap_push(HeapItem item) {
  std::size_t i = heap_.size();
  heap_.push_back(item);  // reserve the space; overwritten below
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(item, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = item;
}

Simulator::HeapItem Simulator::pop_item() {
  const bool have_tail = tail_head_ < tail_.size();
  if (!heap_.empty() && (!have_tail || before(heap_.front(), tail_[tail_head_])))
    return heap_pop();
  const HeapItem item = tail_[tail_head_++];
  if (tail_head_ == tail_.size()) {
    tail_.clear();
    tail_head_ = 0;
  } else if (tail_head_ >= 1024 && tail_head_ * 2 >= tail_.size()) {
    // Drop the consumed prefix so a long-lived run does not pin memory;
    // amortized O(1) because at least half the entries left between trims.
    tail_.erase(tail_.begin(), tail_.begin() + static_cast<std::ptrdiff_t>(tail_head_));
    tail_head_ = 0;
  }
  return item;
}

Simulator::HeapItem Simulator::heap_pop() {
  const HeapItem top = heap_.front();
  const HeapItem last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + 4, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

bool Simulator::pop_and_run() {
  for (;;) {
    // Skip cancelled fast-lane heads (not counted as processed, mirroring
    // cancelled slab entries).
    while (fast_count_ > 0 && fast_[fast_head_].fn == nullptr) fast_pop();
    const HeapItem* top = peek_item();
    if (fast_count_ > 0) {
      // Every pending fast entry sits at exactly now() (see FastItem), so
      // it loses only to a timer entry at the same instant with a smaller
      // global seq.
      const FastItem& head = fast_[fast_head_];
      if (top == nullptr || top->t > now_ || (top->key >> kSlotBits) > head.seq) {
        const FastItem item = fast_pop();
        ++processed_;
        item.fn(item.a, item.b);
        return true;
      }
    }
    if (top == nullptr) return false;
    const HeapItem item = pop_item();
    Slot& s = pool_[item.slot()];
    if (s.cancelled) {
      release_slot(item.slot());
      continue;
    }
    assert(item.t >= now_);
    now_ = item.t;
    ++processed_;
    // Move the callback out and release the slot first, so the callback can
    // re-schedule (and the pool recycle the slot) while it runs.
    SmallFn fn = std::move(s.fn);
    release_slot(item.slot());
    fn();
    return true;
  }
}

bool Simulator::step() { return pop_and_run(); }

void Simulator::run() {
  while (pop_and_run()) {
  }
}

void Simulator::run_until(double t) {
  for (;;) {
    while (fast_count_ > 0 && fast_[fast_head_].fn == nullptr) fast_pop();
    if (fast_count_ > 0) {
      // Pending fast entries sit at now(); run them unless the boundary is
      // already behind the clock (matching the old t-vs-entry comparison).
      if (now_ > t) break;
      pop_and_run();
      continue;
    }
    const HeapItem* top = peek_item();
    if (top == nullptr) break;
    // Skip over cancelled entries without advancing time.
    if (pool_[top->slot()].cancelled) {
      release_slot(pop_item().slot());
      continue;
    }
    if (top->t > t) break;
    pop_and_run();
  }
  if (now_ < t) now_ = t;
}

double Simulator::next_event_time() noexcept {
  while (fast_count_ > 0 && fast_[fast_head_].fn == nullptr) fast_pop();
  if (fast_count_ > 0) return now_;  // fast entries sit at exactly now()
  for (;;) {
    const HeapItem* top = peek_item();
    if (top == nullptr) return std::numeric_limits<double>::infinity();
    if (pool_[top->slot()].cancelled) {
      release_slot(pop_item().slot());
      continue;
    }
    return top->t;
  }
}

bool Simulator::run_while_pending(const std::function<bool()>& done_pred) {
  while (!done_pred()) {
    if (!pop_and_run()) return done_pred();
  }
  return true;
}

}  // namespace hm::sim
