#include "sim/simulator.h"

#include <cassert>

namespace hm::sim {

Simulator::Timer Simulator::schedule(double delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  auto entry = std::make_shared<Timer::Entry>();
  entry->t = now_ + delay;
  entry->seq = seq_++;
  entry->fn = std::move(fn);
  queue_.push(entry);
  ++live_;
  return Timer{entry};
}

void Simulator::spawn(Task t) {
  Task::Handle h = t.release();
  if (!h) return;
  h.promise().detached = true;
  schedule(0.0, [h] { h.resume(); });
}

bool Simulator::pop_and_run() {
  while (!queue_.empty()) {
    EntryPtr e = queue_.top();
    queue_.pop();
    --live_;
    if (e->cancelled) continue;
    assert(e->t >= now_);
    now_ = e->t;
    e->fired = true;
    ++processed_;
    // Move the callback out so the entry can be reclaimed even if the
    // callback re-schedules events.
    auto fn = std::move(e->fn);
    fn();
    return true;
  }
  return false;
}

bool Simulator::step() { return pop_and_run(); }

void Simulator::run() {
  while (pop_and_run()) {
  }
}

void Simulator::run_until(double t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries without advancing time.
    EntryPtr top = queue_.top();
    if (top->cancelled) {
      queue_.pop();
      --live_;
      continue;
    }
    if (top->t > t) break;
    pop_and_run();
  }
  if (now_ < t) now_ = t;
}

bool Simulator::run_while_pending(const std::function<bool()>& done_pred) {
  while (!done_pred()) {
    if (!pop_and_run()) return done_pred();
  }
  return true;
}

}  // namespace hm::sim
