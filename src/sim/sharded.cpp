#include "sim/sharded.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/worker_budget.h"

namespace hm::sim {

std::uint64_t EpochBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  const std::uint64_t my_epoch = epoch_;
  if (++waiting_ == parties_) {
    if (reduce_) reduce_(my_epoch);
    waiting_ = 0;
    ++epoch_;
    cv_.notify_all();
    return my_epoch;
  }
  cv_.wait(lk, [&] { return epoch_ != my_epoch; });
  return my_epoch;
}

std::uint64_t EpochBarrier::epochs_completed() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return epoch_;
}

ShardedSimulator::ShardedSimulator(std::uint32_t shards)
    : shards_(shards == 0 ? 1 : shards), barrier_(shards == 0 ? 1 : shards) {
  boxes_.resize(shards_);
  barrier_.set_reduce([this](std::uint64_t) { merge_epoch(); });
}

void ShardedSimulator::post(std::uint32_t from, std::uint32_t to, double t,
                            std::uint64_t payload, double value) {
  Mailbox& box = boxes_[from];
  ShardMessage m;
  m.t = t;
  m.shard = from;
  m.seq = box.next_seq++;
  m.payload = payload;
  m.value = value;
  box.out.push_back(m);
  box.dest.push_back(to);
}

void ShardedSimulator::set_reduce_hook(std::function<void(std::uint64_t)> fn) {
  barrier_.set_reduce([this, fn = std::move(fn)](std::uint64_t epoch) {
    merge_epoch();
    if (fn) fn(epoch);
  });
}

void ShardedSimulator::merge_epoch() {
  // Runs under the barrier mutex with every shard parked: all outboxes are
  // quiescent. Deterministic by construction — the merged order depends
  // only on message content (t, shard, seq), never on thread timing.
  for (Mailbox& box : boxes_) box.inbox.clear();
  for (std::uint32_t from = 0; from < shards_; ++from) {
    Mailbox& src = boxes_[from];
    for (std::size_t i = 0; i < src.out.size(); ++i)
      boxes_[src.dest[i]].inbox.push_back(src.out[i]);
    messages_total_ += src.out.size();
    src.out.clear();
    src.dest.clear();
  }
  for (Mailbox& box : boxes_)
    std::sort(box.inbox.begin(), box.inbox.end());
}

const std::vector<ShardMessage>& ShardedSimulator::exchange(std::uint32_t shard) {
  barrier_.arrive_and_wait();
  return boxes_[shard].inbox;
}

ShardedSimulator::Stats ShardedSimulator::run(
    const std::function<void(std::uint32_t)>& body) {
  Stats st;
  st.shards = shards_;
  WorkerGrant grant(WorkerBudget::instance(),
                    shards_ > 0 ? shards_ - 1 : 0);
  std::atomic<std::uint32_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::uint32_t s = next.fetch_add(1, std::memory_order_relaxed);
      if (s >= shards_) return;
      body(s);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(grant.granted());
  for (unsigned i = 0; i < grant.granted(); ++i) pool.emplace_back(worker);
  worker();  // the caller always participates
  for (auto& th : pool) th.join();
  st.threads = grant.granted() + 1;
  return st;
}

ShardedSimulator::Stats ShardedSimulator::run_epochs(
    const std::function<void(std::uint32_t)>& body) {
  Stats st;
  st.shards = shards_;
  // Epoch-coupled bodies block on the shared barrier, so every shard needs
  // its own thread; budget tokens are taken as available (advisory) but the
  // thread count is fixed by correctness.
  WorkerGrant grant(WorkerBudget::instance(),
                    shards_ > 0 ? shards_ - 1 : 0);
  std::vector<std::thread> pool;
  pool.reserve(shards_ - 1);
  for (std::uint32_t s = 1; s < shards_; ++s) pool.emplace_back([&body, s] { body(s); });
  body(0);
  for (auto& th : pool) th.join();
  st.threads = shards_;
  st.epochs = barrier_.epochs_completed();
  st.messages = messages_total_;
  return st;
}

}  // namespace hm::sim
