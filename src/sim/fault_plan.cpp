#include "sim/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>

namespace hm::sim {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};
constexpr KindName kKindNames[] = {
    {FaultKind::kSourceCrash, "src-crash"}, {FaultKind::kDestCrash, "dst-crash"},
    {FaultKind::kLinkDegrade, "degrade"},   {FaultKind::kLinkFlap, "flap"},
    {FaultKind::kSlowReceiver, "slow-recv"}, {FaultKind::kRepoOutage, "repo-outage"},
    {FaultKind::kNodeCrash, "node-crash"},   {FaultKind::kNodeDegrade, "node-degrade"},
    {FaultKind::kNodeFlap, "node-flap"},     {FaultKind::kDomainCrash, "domain-crash"},
    {FaultKind::kDomainDegrade, "domain-degrade"},
};

double clamp_factor(double f) {
  if (!(f > 0.0)) return 1e-3;
  return f > 1.0 ? 1.0 : f;
}

bool parse_double(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

bool parse_u32(std::string_view s, std::uint32_t* out) {
  double d = 0;
  if (!parse_double(s, &d) || d < 0 || d != static_cast<std::uint32_t>(d))
    return false;
  *out = static_cast<std::uint32_t>(d);
  return true;
}

bool fail(std::string* err, std::string msg) {
  if (err) *err = std::move(msg);
  return false;
}

bool parse_event(std::string_view tok, FaultEvent* ev, std::string* err) {
  const auto at_pos = tok.find('@');
  if (at_pos == std::string_view::npos)
    return fail(err, "fault event '" + std::string(tok) + "' missing '@TIME'");
  const std::string_view kind = tok.substr(0, at_pos);
  bool known = false;
  for (const auto& kn : kKindNames) {
    if (kind == kn.name) {
      ev->kind = kn.kind;
      known = true;
      break;
    }
  }
  if (!known)
    return fail(err, "unknown fault kind '" + std::string(kind) +
                         "' (src-crash|dst-crash|degrade|flap|slow-recv|repo-outage|"
                         "node-crash|node-degrade|node-flap|domain-crash|domain-degrade)");
  std::string_view rest = tok.substr(at_pos + 1);
  const auto next_mod = [&] { return rest.find_first_of("+*#"); };
  auto mod = next_mod();
  if (!parse_double(rest.substr(0, mod), &ev->at) || ev->at < 0)
    return fail(err, "bad fault time in '" + std::string(tok) + "'");
  while (mod != std::string_view::npos) {
    const char sep = rest[mod];
    rest = rest.substr(mod + 1);
    mod = next_mod();
    const std::string_view val = rest.substr(0, mod);
    switch (sep) {
      case '+':
        if (!parse_double(val, &ev->duration_s) || ev->duration_s <= 0)
          return fail(err, "bad fault duration in '" + std::string(tok) + "'");
        break;
      case '*':
        if (!parse_double(val, &ev->factor))
          return fail(err, "bad fault factor in '" + std::string(tok) + "'");
        ev->factor = clamp_factor(ev->factor);
        break;
      case '#':
        if (!parse_u32(val, &ev->target))
          return fail(err, "bad fault target in '" + std::string(tok) + "'");
        break;
    }
  }
  return true;
}

bool parse_rand(std::string_view body, FaultRandSpec* rs, std::string* err) {
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view kv = body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos)
      return fail(err, "fault rand spec expects k=v, got '" + std::string(kv) + "'");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    bool ok = true;
    if (key == "crashes") ok = parse_u32(val, &rs->crashes);
    else if (key == "dst-crashes") ok = parse_u32(val, &rs->dst_crashes);
    else if (key == "degrades") ok = parse_u32(val, &rs->degrades);
    else if (key == "flaps") ok = parse_u32(val, &rs->flaps);
    else if (key == "slow") ok = parse_u32(val, &rs->slow);
    else if (key == "outages") ok = parse_u32(val, &rs->outages);
    else if (key == "from") ok = parse_double(val, &rs->from) && rs->from >= 0;
    else if (key == "span") ok = parse_double(val, &rs->span) && rs->span > 0;
    else if (key == "dur") ok = parse_double(val, &rs->dur) && rs->dur > 0;
    else if (key == "factor") {
      ok = parse_double(val, &rs->factor);
      rs->factor = clamp_factor(rs->factor);
    } else {
      return fail(err, "unknown fault rand key '" + std::string(key) + "'");
    }
    if (!ok)
      return fail(err, "bad value for fault rand key '" + std::string(key) + "'");
  }
  if (rs->crashes == 0 && rs->dst_crashes == 0 && rs->degrades == 0 &&
      rs->flaps == 0 && rs->slow == 0 && rs->outages == 0)
    return fail(err, "fault rand spec enables no category "
                     "(set crashes/dst-crashes/degrades/flaps/slow/outages)");
  return true;
}

bool parse_churn(std::string_view body, FaultChurnSpec* cs, std::string* err) {
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view kv = body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos)
      return fail(err, "fault churn spec expects k=v, got '" + std::string(kv) + "'");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    bool ok = true;
    // MTBF/MTTR means must be strictly positive when supplied: a zero mean
    // exponential would fire instantly forever.
    const auto mean = [&](double* slot) {
      double d = 0;
      if (!parse_double(val, &d) || !(d > 0)) return false;
      *slot = d;
      return true;
    };
    if (key == "crash-mtbf") ok = mean(&cs->crash_mtbf);
    else if (key == "crash-mttr") ok = mean(&cs->crash_mttr);
    else if (key == "degrade-mtbf") ok = mean(&cs->degrade_mtbf);
    else if (key == "degrade-mttr") ok = mean(&cs->degrade_mttr);
    else if (key == "flap-mtbf") ok = mean(&cs->flap_mtbf);
    else if (key == "flap-mttr") ok = mean(&cs->flap_mttr);
    else if (key == "domain-mtbf") ok = mean(&cs->domain_mtbf);
    else if (key == "domain-mttr") ok = mean(&cs->domain_mttr);
    else if (key == "from") ok = parse_double(val, &cs->from) && cs->from >= 0;
    else if (key == "until") ok = parse_double(val, &cs->until) && cs->until > 0;
    else if (key == "nodes") ok = parse_u32(val, &cs->nodes);
    else if (key == "factor") {
      ok = parse_double(val, &cs->factor);
      cs->factor = clamp_factor(cs->factor);
    } else {
      return fail(err, "unknown fault churn key '" + std::string(key) + "'");
    }
    if (!ok)
      return fail(err, "bad value for fault churn key '" + std::string(key) + "'");
  }
  if (cs->crash_mtbf <= 0 && cs->degrade_mtbf <= 0 && cs->flap_mtbf <= 0 &&
      cs->domain_mtbf <= 0)
    return fail(err, "fault churn spec enables no category "
                     "(set crash-mtbf/degrade-mtbf/flap-mtbf/domain-mtbf)");
  if (cs->until > 0 && cs->until <= cs->from)
    return fail(err, "fault churn 'until' must exceed 'from'");
  return true;
}

// DOMAINS := "domains:" NAME '=' RANGE ('+' RANGE)* (',' NAME '=' ...)*
bool parse_domains(std::string_view body, std::vector<FaultDomain>* out,
                   std::string* err) {
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view def = body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const auto eq = def.find('=');
    if (eq == std::string_view::npos)
      return fail(err, "fault domain expects NAME=RANGE, got '" + std::string(def) + "'");
    FaultDomain dom;
    dom.name = std::string(def.substr(0, eq));
    if (dom.name.empty())
      return fail(err, "fault domain with empty name in '" + std::string(def) + "'");
    for (const auto& prev : *out)
      if (prev.name == dom.name)
        return fail(err, "duplicate fault domain '" + dom.name + "'");
    std::string_view ranges = def.substr(eq + 1);
    if (ranges.empty())
      return fail(err, "fault domain '" + dom.name + "' has no member nodes");
    while (!ranges.empty()) {
      const auto plus = ranges.find('+');
      const std::string_view range = ranges.substr(0, plus);
      ranges = plus == std::string_view::npos ? std::string_view{}
                                              : ranges.substr(plus + 1);
      const auto dash = range.find('-');
      std::uint32_t lo = 0, hi = 0;
      if (dash == std::string_view::npos) {
        if (!parse_u32(range, &lo))
          return fail(err, "bad node id '" + std::string(range) + "' in fault domain '" +
                               dom.name + "'");
        hi = lo;
      } else {
        if (!parse_u32(range.substr(0, dash), &lo) ||
            !parse_u32(range.substr(dash + 1), &hi) || hi < lo)
          return fail(err, "bad node range '" + std::string(range) +
                               "' in fault domain '" + dom.name + "'");
      }
      for (std::uint32_t n = lo; n <= hi; ++n) dom.nodes.push_back(n);
    }
    if (dom.nodes.empty())
      return fail(err, "fault domain '" + dom.name + "' has no member nodes");
    std::sort(dom.nodes.begin(), dom.nodes.end());
    if (std::adjacent_find(dom.nodes.begin(), dom.nodes.end()) != dom.nodes.end())
      return fail(err, "fault domain '" + dom.name + "' repeats a node id");
    out->push_back(std::move(dom));
  }
  if (out->empty()) return fail(err, "fault 'domains:' section is empty");
  // Domains are disjoint: one node cannot belong to two racks.
  for (std::size_t i = 0; i < out->size(); ++i)
    for (std::size_t j = i + 1; j < out->size(); ++j)
      for (const std::uint32_t n : (*out)[i].nodes)
        if (std::binary_search((*out)[j].nodes.begin(), (*out)[j].nodes.end(), n))
          return fail(err, "node " + std::to_string(n) + " belongs to fault domains '" +
                               (*out)[i].name + "' and '" + (*out)[j].name + "'");
  return true;
}

bool validate_spec(const FaultSpec& spec, std::string* err) {
  for (const FaultEvent& ev : spec.scripted) {
    if (fault_kind_is_domain(ev.kind) && ev.target >= spec.domains.size())
      return fail(err, std::string("scripted '") + fault_kind_name(ev.kind) +
                           "' targets domain #" + std::to_string(ev.target) + " but only " +
                           std::to_string(spec.domains.size()) + " domain(s) are defined");
  }
  if (spec.churn && spec.churn_spec.domain_mtbf > 0 && spec.domains.empty())
    return fail(err, "fault churn sets domain-mtbf but no 'domains:' section is defined");
  return true;
}

void sort_plan(FaultPlan* plan) {
  std::stable_sort(plan->events.begin(), plan->events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return std::tie(a.at, a.kind, a.target) <
                            std::tie(b.at, b.kind, b.target);
                   });
}

}  // namespace

const char* fault_kind_name(FaultKind k) noexcept {
  for (const auto& kn : kKindNames)
    if (kn.kind == k) return kn.name;
  return "?";
}

bool fault_kind_is_domain(FaultKind k) noexcept {
  return k == FaultKind::kDomainCrash || k == FaultKind::kDomainDegrade;
}

bool fault_kind_is_node(FaultKind k) noexcept {
  return k == FaultKind::kNodeCrash || k == FaultKind::kNodeDegrade ||
         k == FaultKind::kNodeFlap;
}

bool parse_fault_spec(std::string_view arg, FaultSpec* out, std::string* err) {
  *out = FaultSpec{};
  if (arg.rfind("faults:", 0) == 0) arg = arg.substr(7);
  if (arg.empty() || arg == "none") return true;
  // A trailing ";domains:..." section may follow any body form.
  const auto dom_pos = arg.find("domains:");
  if (dom_pos != std::string_view::npos) {
    if (dom_pos != 0 && arg[dom_pos - 1] != ';')
      return fail(err, "fault 'domains:' section must follow a ';'");
    if (!parse_domains(arg.substr(dom_pos + 8), &out->domains, err)) return false;
    arg = arg.substr(0, dom_pos == 0 ? 0 : dom_pos - 1);
  }
  if (arg.rfind("rand:", 0) == 0) {
    out->rand = true;
    if (!parse_rand(arg.substr(5), &out->rand_spec, err)) return false;
    return validate_spec(*out, err);
  }
  if (arg.rfind("churn:", 0) == 0) {
    out->churn = true;
    if (!parse_churn(arg.substr(6), &out->churn_spec, err)) return false;
    return validate_spec(*out, err);
  }
  while (!arg.empty()) {
    const auto semi = arg.find(';');
    const std::string_view tok = arg.substr(0, semi);
    arg = semi == std::string_view::npos ? std::string_view{} : arg.substr(semi + 1);
    if (tok.empty()) continue;
    FaultEvent ev{};
    if (!parse_event(tok, &ev, err)) return false;
    out->scripted.push_back(ev);
  }
  if (arg.empty() && out->scripted.empty() && out->domains.empty())
    return fail(err, "empty fault spec");
  return validate_spec(*out, err);
}

bool fault_spec_shard_routable(const FaultSpec& spec) {
  if (spec.rand || spec.churn) return false;
  if (spec.scripted.empty()) return true;
  for (const FaultEvent& ev : spec.scripted) {
    switch (ev.kind) {
      case FaultKind::kSourceCrash:
      case FaultKind::kDestCrash:
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkFlap:
      case FaultKind::kSlowReceiver:
        break;  // migration-scoped: routable to the target's owning shard
      default:
        return false;  // repo-/node-/domain-scoped effects are global
    }
  }
  return true;
}

FaultPlan build_fault_plan(const FaultSpec& spec, const Rng& rng,
                           std::uint32_t num_migrations) {
  FaultPlan plan;
  plan.events = spec.scripted;
  plan.churn = spec.churn;
  plan.churn_spec = spec.churn_spec;
  plan.domains = spec.domains;
  if (spec.rand) {
    Rng r = rng.fork("fault-plan");
    const FaultRandSpec& rs = spec.rand_spec;
    // Fixed category order: adding a category at the end never perturbs the
    // draws consumed by earlier ones.
    const struct {
      FaultKind kind;
      std::uint32_t count;
    } cats[] = {
        {FaultKind::kSourceCrash, rs.crashes},
        {FaultKind::kDestCrash, rs.dst_crashes},
        {FaultKind::kLinkDegrade, rs.degrades},
        {FaultKind::kLinkFlap, rs.flaps},
        {FaultKind::kSlowReceiver, rs.slow},
        {FaultKind::kRepoOutage, rs.outages},
    };
    for (const auto& cat : cats) {
      for (std::uint32_t i = 0; i < cat.count; ++i) {
        FaultEvent ev;
        ev.kind = cat.kind;
        ev.at = r.uniform_real(rs.from, rs.from + rs.span);
        ev.duration_s = std::max(0.5, r.exponential(rs.dur));
        ev.factor = rs.factor;
        ev.target = num_migrations > 0
                        ? static_cast<std::uint32_t>(r.uniform(num_migrations))
                        : 0;
        plan.events.push_back(ev);
      }
    }
  }
  sort_plan(&plan);
  return plan;
}

}  // namespace hm::sim
