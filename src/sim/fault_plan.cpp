#include "sim/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <tuple>

namespace hm::sim {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};
constexpr KindName kKindNames[] = {
    {FaultKind::kSourceCrash, "src-crash"}, {FaultKind::kDestCrash, "dst-crash"},
    {FaultKind::kLinkDegrade, "degrade"},   {FaultKind::kLinkFlap, "flap"},
    {FaultKind::kSlowReceiver, "slow-recv"}, {FaultKind::kRepoOutage, "repo-outage"},
};

double clamp_factor(double f) {
  if (!(f > 0.0)) return 1e-3;
  return f > 1.0 ? 1.0 : f;
}

bool parse_double(std::string_view s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string buf(s);
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

bool parse_u32(std::string_view s, std::uint32_t* out) {
  double d = 0;
  if (!parse_double(s, &d) || d < 0 || d != static_cast<std::uint32_t>(d))
    return false;
  *out = static_cast<std::uint32_t>(d);
  return true;
}

bool fail(std::string* err, std::string msg) {
  if (err) *err = std::move(msg);
  return false;
}

bool parse_event(std::string_view tok, FaultEvent* ev, std::string* err) {
  const auto at_pos = tok.find('@');
  if (at_pos == std::string_view::npos)
    return fail(err, "fault event '" + std::string(tok) + "' missing '@TIME'");
  const std::string_view kind = tok.substr(0, at_pos);
  bool known = false;
  for (const auto& kn : kKindNames) {
    if (kind == kn.name) {
      ev->kind = kn.kind;
      known = true;
      break;
    }
  }
  if (!known)
    return fail(err, "unknown fault kind '" + std::string(kind) +
                         "' (src-crash|dst-crash|degrade|flap|slow-recv|repo-outage)");
  std::string_view rest = tok.substr(at_pos + 1);
  const auto next_mod = [&] { return rest.find_first_of("+*#"); };
  auto mod = next_mod();
  if (!parse_double(rest.substr(0, mod), &ev->at) || ev->at < 0)
    return fail(err, "bad fault time in '" + std::string(tok) + "'");
  while (mod != std::string_view::npos) {
    const char sep = rest[mod];
    rest = rest.substr(mod + 1);
    mod = next_mod();
    const std::string_view val = rest.substr(0, mod);
    switch (sep) {
      case '+':
        if (!parse_double(val, &ev->duration_s) || ev->duration_s <= 0)
          return fail(err, "bad fault duration in '" + std::string(tok) + "'");
        break;
      case '*':
        if (!parse_double(val, &ev->factor))
          return fail(err, "bad fault factor in '" + std::string(tok) + "'");
        ev->factor = clamp_factor(ev->factor);
        break;
      case '#':
        if (!parse_u32(val, &ev->target))
          return fail(err, "bad fault target in '" + std::string(tok) + "'");
        break;
    }
  }
  return true;
}

bool parse_rand(std::string_view body, FaultRandSpec* rs, std::string* err) {
  while (!body.empty()) {
    const auto comma = body.find(',');
    const std::string_view kv = body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    const auto eq = kv.find('=');
    if (eq == std::string_view::npos)
      return fail(err, "fault rand spec expects k=v, got '" + std::string(kv) + "'");
    const std::string_view key = kv.substr(0, eq);
    const std::string_view val = kv.substr(eq + 1);
    bool ok = true;
    if (key == "crashes") ok = parse_u32(val, &rs->crashes);
    else if (key == "dst-crashes") ok = parse_u32(val, &rs->dst_crashes);
    else if (key == "degrades") ok = parse_u32(val, &rs->degrades);
    else if (key == "flaps") ok = parse_u32(val, &rs->flaps);
    else if (key == "slow") ok = parse_u32(val, &rs->slow);
    else if (key == "outages") ok = parse_u32(val, &rs->outages);
    else if (key == "from") ok = parse_double(val, &rs->from) && rs->from >= 0;
    else if (key == "span") ok = parse_double(val, &rs->span) && rs->span > 0;
    else if (key == "dur") ok = parse_double(val, &rs->dur) && rs->dur > 0;
    else if (key == "factor") {
      ok = parse_double(val, &rs->factor);
      rs->factor = clamp_factor(rs->factor);
    } else {
      return fail(err, "unknown fault rand key '" + std::string(key) + "'");
    }
    if (!ok)
      return fail(err, "bad value for fault rand key '" + std::string(key) + "'");
  }
  return true;
}

void sort_plan(FaultPlan* plan) {
  std::stable_sort(plan->events.begin(), plan->events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return std::tie(a.at, a.kind, a.target) <
                            std::tie(b.at, b.kind, b.target);
                   });
}

}  // namespace

const char* fault_kind_name(FaultKind k) noexcept {
  for (const auto& kn : kKindNames)
    if (kn.kind == k) return kn.name;
  return "?";
}

bool parse_fault_spec(std::string_view arg, FaultSpec* out, std::string* err) {
  *out = FaultSpec{};
  if (arg.rfind("faults:", 0) == 0) arg = arg.substr(7);
  if (arg.empty() || arg == "none") return true;
  if (arg.rfind("rand:", 0) == 0) {
    out->rand = true;
    return parse_rand(arg.substr(5), &out->rand_spec, err);
  }
  while (!arg.empty()) {
    const auto semi = arg.find(';');
    const std::string_view tok = arg.substr(0, semi);
    arg = semi == std::string_view::npos ? std::string_view{} : arg.substr(semi + 1);
    if (tok.empty()) continue;
    FaultEvent ev{};
    if (!parse_event(tok, &ev, err)) return false;
    out->scripted.push_back(ev);
  }
  return true;
}

FaultPlan build_fault_plan(const FaultSpec& spec, const Rng& rng,
                           std::uint32_t num_migrations) {
  FaultPlan plan;
  plan.events = spec.scripted;
  if (spec.rand) {
    Rng r = rng.fork("fault-plan");
    const FaultRandSpec& rs = spec.rand_spec;
    // Fixed category order: adding a category at the end never perturbs the
    // draws consumed by earlier ones.
    const struct {
      FaultKind kind;
      std::uint32_t count;
    } cats[] = {
        {FaultKind::kSourceCrash, rs.crashes},
        {FaultKind::kDestCrash, rs.dst_crashes},
        {FaultKind::kLinkDegrade, rs.degrades},
        {FaultKind::kLinkFlap, rs.flaps},
        {FaultKind::kSlowReceiver, rs.slow},
        {FaultKind::kRepoOutage, rs.outages},
    };
    for (const auto& cat : cats) {
      for (std::uint32_t i = 0; i < cat.count; ++i) {
        FaultEvent ev;
        ev.kind = cat.kind;
        ev.at = r.uniform_real(rs.from, rs.from + rs.span);
        ev.duration_s = std::max(0.5, r.exponential(rs.dur));
        ev.factor = rs.factor;
        ev.target = num_migrations > 0
                        ? static_cast<std::uint32_t>(r.uniform(num_migrations))
                        : 0;
        plan.events.push_back(ev);
      }
    }
  }
  sort_plan(&plan);
  return plan;
}

}  // namespace hm::sim
