// Process-global worker-thread budget.
//
// Two layers of the stack want to spawn threads: cloud::run_sweep fans
// independent experiments across a pool, and sim::ShardedSimulator fans one
// experiment's shard slices across workers. Sized independently from
// hardware_concurrency they multiply (sweep threads x shard workers) and
// oversubscribe the machine. The budget is a single shared token pool:
// every *extra* thread (beyond the caller, which always works for free)
// must be acquired from it, so sweep-level and shard-level parallelism
// together never exceed the configured capacity.
//
// Grants are best-effort: acquire(want) returns anywhere in [0, want] and
// the caller runs the un-granted share on its own thread. Parallelism is a
// pure wall-clock concern — virtual-time results never depend on how many
// tokens were granted.
#pragma once

#include <atomic>

namespace hm::sim {

class WorkerBudget {
 public:
  /// The process-wide budget. Capacity defaults to hardware_concurrency-1
  /// (the calling thread is not counted — it always participates).
  static WorkerBudget& instance();

  /// Construct a standalone budget (tests).
  explicit WorkerBudget(unsigned capacity) : capacity_(capacity), available_(capacity) {}

  unsigned capacity() const noexcept { return capacity_; }
  unsigned available() const noexcept {
    const long a = available_.load(std::memory_order_relaxed);
    return a > 0 ? static_cast<unsigned>(a) : 0u;
  }

  /// Re-seed the pool (tests / --threads overrides). Only safe while no
  /// tokens are outstanding.
  void set_capacity(unsigned cap) noexcept {
    capacity_ = cap;
    available_.store(static_cast<long>(cap), std::memory_order_relaxed);
  }

  /// Take up to `want` tokens; returns the number granted (possibly 0).
  unsigned acquire(unsigned want) noexcept {
    if (want == 0) return 0;
    long cur = available_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur <= 0) return 0;
      const long grant = cur < static_cast<long>(want) ? cur : static_cast<long>(want);
      if (available_.compare_exchange_weak(cur, cur - grant, std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
        return static_cast<unsigned>(grant);
    }
  }

  /// Return `n` previously acquired tokens.
  void release(unsigned n) noexcept {
    if (n) available_.fetch_add(static_cast<long>(n), std::memory_order_acq_rel);
  }

 private:
  unsigned capacity_;
  std::atomic<long> available_;
};

/// RAII grant: acquires up to `want` tokens, releases them on destruction.
class WorkerGrant {
 public:
  WorkerGrant(WorkerBudget& budget, unsigned want) noexcept
      : budget_(budget), granted_(budget.acquire(want)) {}
  ~WorkerGrant() { budget_.release(granted_); }
  WorkerGrant(const WorkerGrant&) = delete;
  WorkerGrant& operator=(const WorkerGrant&) = delete;
  unsigned granted() const noexcept { return granted_; }

 private:
  WorkerBudget& budget_;
  unsigned granted_;
};

}  // namespace hm::sim
