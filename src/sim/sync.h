// Coroutine synchronization primitives for the simulator: one-shot events,
// repeatable notifications, gates (suspend/resume), FIFO semaphores,
// wait-groups, barriers, typed mailboxes and a single-server FIFO service
// station. All wakeups are funneled through the simulator's event queue so
// resumption order is deterministic and stack depth stays bounded.
//
// Waiter storage is intrusive: each awaiter embeds a WaitNode that lives in
// the suspended coroutine's frame, so registering a waiter and waking it
// performs no heap allocation. Nodes stay linked until the wakeup drains the
// list (the coroutine cannot resume earlier — wakeups only enqueue on the
// simulator's fast lane). A WaitNode's continuation is a raw (fn, a, b)
// fast-lane record rather than a coroutine handle, so frameless awaiters
// (PageCache read/write, for example) can park state-machine steps in the
// same waiter lists as coroutines and wake through the identical event.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "sim/simulator.h"

namespace hm::sim {

/// Intrusive FIFO queue over nodes exposing a `Node* next` member. One
/// implementation serves every chain in this header (waiter lists, station
/// requests, mailbox receivers), so the queue discipline cannot diverge.
template <class Node>
class IntrusiveQueue {
 public:
  bool empty() const noexcept { return head_ == nullptr; }
  std::size_t size() const noexcept { return size_; }

  void push(Node* n) noexcept {
    n->next = nullptr;
    if (head_ == nullptr)
      head_ = n;
    else
      tail_->next = n;
    tail_ = n;
    ++size_;
  }

  Node* pop() noexcept {
    Node* n = head_;
    head_ = n->next;
    if (head_ == nullptr) tail_ = nullptr;
    --size_;
    return n;
  }

  /// Detach the whole chain (wake-all). Iterating the returned chain is safe
  /// while the woken coroutines are still suspended, which resume_later
  /// guarantees (it only schedules).
  Node* drain() noexcept {
    Node* n = head_;
    head_ = tail_ = nullptr;
    size_ = 0;
    return n;
  }

 private:
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// Intrusive FIFO waiter node; embedded in awaiter objects (and thus in the
/// waiting coroutine's frame). Carries a fast-lane continuation record:
/// bind() points it at a coroutine resume, frameless awaiters point it at a
/// state-machine step instead.
struct WaitNode {
  Simulator::FastFn fn = nullptr;
  void* a = nullptr;
  void* b = nullptr;
  WaitNode* next = nullptr;

  void bind(std::coroutine_handle<> h) noexcept {
    fn = &Simulator::resume_thunk;
    a = h.address();
  }
};

using WaiterList = IntrusiveQueue<WaitNode>;

/// One-shot broadcast event. Waiters before set() suspend; waiters after
/// set() continue immediately.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const noexcept { return set_; }
  void set();

  struct Awaiter {
    Event& ev;
    WaitNode node;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      node.bind(h);
      ev.waiters_.push(&node);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() noexcept { return Awaiter{*this, {}}; }

 private:
  Simulator* sim_;
  bool set_ = false;
  WaiterList waiters_;
};

/// Repeatable notification: every call to notify_all() wakes the waiters
/// registered at that moment (condition-variable style, always "spurious
/// safe" because callers re-check their predicate in a loop).
class Notification {
 public:
  explicit Notification(Simulator& sim) : sim_(&sim) {}
  Notification(const Notification&) = delete;
  Notification& operator=(const Notification&) = delete;

  void notify_all();

  struct Awaiter {
    Notification& n;
    WaitNode node;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      node.bind(h);
      n.waiters_.push(&node);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() noexcept { return Awaiter{*this, {}}; }

  /// Park a frameless awaiter's step continuation until the next
  /// notify_all() (same wake event a coroutine waiter would get).
  void add_waiter(WaitNode* n) noexcept { waiters_.push(n); }

 private:
  Simulator* sim_;
  WaiterList waiters_;
};

/// Open/closed gate. wait_open() passes immediately while open and blocks
/// while closed. Used for VM pause/resume and for suspending the
/// BACKGROUND_PULL task (Algorithm 4 of the paper).
class Gate {
 public:
  explicit Gate(Simulator& sim, bool open = true) : sim_(&sim), open_(open) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const noexcept { return open_; }
  void open();
  void close() noexcept { open_ = false; }

  struct Awaiter {
    Gate& g;
    WaitNode node;
    bool await_ready() const noexcept { return g.open_; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      node.bind(h);
      g.waiters_.push(&node);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait_open() noexcept { return Awaiter{*this, {}}; }

 private:
  Simulator* sim_;
  bool open_;
  WaiterList waiters_;
};

/// Counting semaphore with strict FIFO handoff (fair queueing — used to
/// model service queues with per-holder logic between acquire and release).
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t count) : sim_(&sim), count_(count) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Awaiter {
    Semaphore& s;
    WaitNode node;
    bool await_ready() const noexcept { return s.try_acquire(); }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      node.bind(h);
      s.add_waiter(&node);
    }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() noexcept { return Awaiter{*this, {}}; }
  void release();

  // Frameless-awaiter interface (same protocol the coroutine Awaiter uses):
  // a failed try_acquire() followed by add_waiter() parks the caller; being
  // woken from the queue means the permit is already owned (FIFO handoff —
  // release() transfers it directly, count_ stays 0).
  bool try_acquire() noexcept {
    if (count_ > 0 && waiters_.empty()) {
      --count_;
      return true;
    }
    return false;
  }
  void add_waiter(WaitNode* n) noexcept { waiters_.push(n); }

  std::size_t available() const noexcept { return count_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::size_t count_;
  WaiterList waiters_;
};

/// RAII helper for Semaphore-protected critical sections inside coroutines.
/// Usage: co_await sem.acquire(); SemGuard g(sem); ... (guard releases).
class SemGuard {
 public:
  explicit SemGuard(Semaphore& s) noexcept : s_(&s) {}
  SemGuard(const SemGuard&) = delete;
  SemGuard& operator=(const SemGuard&) = delete;
  ~SemGuard() {
    if (s_) s_->release();
  }

 private:
  Semaphore* s_;
};

/// Single-server FIFO service station: a frameless replacement for the
/// "acquire a count-1 Semaphore, delay for a fixed service time, release"
/// coroutine pattern (disk queues, host-bus arbitration). Event-for-event
/// identical to that pattern — an idle submit schedules one service timer;
/// a queued request wakes through one zero-delay handoff event before its
/// timer, preserving strict FIFO — but with no coroutine frame per request.
/// Nodes are embedded in the callers' awaiters, so queueing never allocates.
class FifoStation {
 public:
  explicit FifoStation(Simulator& sim) : sim_(&sim) {}
  FifoStation(const FifoStation&) = delete;
  FifoStation& operator=(const FifoStation&) = delete;

  /// Intrusive request; lives in the submitting awaiter until resumed.
  struct Node {
    double service_s = 0.0;
    std::coroutine_handle<> cont = nullptr;
    Node* next = nullptr;
  };

  void submit(Node* n) {
    if (busy_) {
      queue_.push(n);
      return;
    }
    busy_ = true;
    start(n);
  }

  bool busy() const noexcept { return busy_; }
  /// Requests waiting behind the one in service.
  std::size_t queue_length() const noexcept { return queue_.size(); }

 private:
  void start(Node* n) {
    sim_->schedule(n->service_s, [this, n] { complete(n); });
  }
  static void handoff_thunk(void* station, void* node) {
    static_cast<FifoStation*>(station)->start(static_cast<Node*>(node));
  }
  void complete(Node* n) {
    if (!queue_.empty()) {
      // Hand the server to the oldest queued request through the fast lane
      // (one zero-delay event, like a Semaphore handoff), then resume the
      // finished caller synchronously.
      sim_->post(&handoff_thunk, this, queue_.pop());
    } else {
      busy_ = false;
    }
    n->cont.resume();
  }

  Simulator* sim_;
  IntrusiveQueue<Node> queue_;
  bool busy_ = false;
};

/// Go-style wait group: add() before spawning parallel work, done() when a
/// unit finishes, wait() suspends until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : sim_(&sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::size_t n = 1) noexcept { count_ += n; }
  void done();

  struct Awaiter {
    WaitGroup& wg;
    WaitNode node;
    bool await_ready() const noexcept { return wg.count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      node.bind(h);
      wg.waiters_.push(&node);
    }
    void await_resume() const noexcept {}
  };
  Awaiter wait() noexcept { return Awaiter{*this, {}}; }

  std::size_t count() const noexcept { return count_; }

 private:
  Simulator* sim_;
  std::size_t count_ = 0;
  WaiterList waiters_;
};

/// Cyclic barrier for BSP-style workloads (the CM1 stencil ranks).
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t parties) : sim_(&sim), parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  struct Awaiter {
    Barrier& b;
    WaitNode node;
    bool await_ready() const noexcept { return b.parties_ <= 1; }
    bool await_suspend(std::coroutine_handle<> h) noexcept {
      node.bind(h);
      b.waiters_.push(&node);
      if (b.waiters_.size() >= b.parties_) {
        b.release_all();
        return false;  // last arriver proceeds immediately
      }
      return true;
    }
    void await_resume() const noexcept {}
  };
  Awaiter arrive_and_wait() noexcept { return Awaiter{*this, {}}; }

  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  void release_all();

  Simulator* sim_;
  std::size_t parties_;
  WaiterList waiters_;
};

/// Unbounded typed mailbox (header-only): send never blocks, recv suspends
/// while empty. FIFO on both messages and receivers. Receiver registration
/// is intrusive (the awaiter chains itself), so only message buffering can
/// allocate.
template <class T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(&sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  struct Awaiter {
    Mailbox& mb;
    std::optional<T> slot;
    std::coroutine_handle<> h = nullptr;
    Awaiter* next = nullptr;

    bool await_ready() {
      // Only take the fast path when no earlier receiver is queued, so
      // message delivery stays strictly FIFO across receivers.
      if (!mb.items_.empty() && mb.receivers_.empty()) {
        slot = std::move(mb.items_.front());
        mb.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) noexcept {
      h = handle;
      mb.receivers_.push(this);
    }
    T await_resume() { return std::move(*slot); }
  };

  void send(T value) {
    if (!receivers_.empty()) {
      // Hand the item directly to the oldest receiver; this avoids a
      // ready-path receiver stealing it before the wakeup fires.
      Awaiter* w = receivers_.pop();
      w->slot = std::move(value);
      sim_->resume_later(w->h);
      return;
    }
    items_.push_back(std::move(value));
  }

  Awaiter recv() noexcept { return Awaiter{*this, std::nullopt, nullptr, nullptr}; }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

 private:
  Simulator* sim_;
  std::deque<T> items_;
  IntrusiveQueue<Awaiter> receivers_;
};

}  // namespace hm::sim
