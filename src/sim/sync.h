// Coroutine synchronization primitives for the simulator: one-shot events,
// repeatable notifications, gates (suspend/resume), FIFO semaphores,
// wait-groups, barriers and typed mailboxes. All wakeups are funneled
// through the simulator's event queue so resumption order is deterministic
// and stack depth stays bounded.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace hm::sim {

/// One-shot broadcast event. Waiters before set() suspend; waiters after
/// set() continue immediately.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(&sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool is_set() const noexcept { return set_; }
  void set();

  struct Awaiter {
    Event& ev;
    bool await_ready() const noexcept { return ev.set_; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() noexcept { return Awaiter{*this}; }

 private:
  Simulator* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Repeatable notification: every call to notify_all() wakes the waiters
/// registered at that moment (condition-variable style, always "spurious
/// safe" because callers re-check their predicate in a loop).
class Notification {
 public:
  explicit Notification(Simulator& sim) : sim_(&sim) {}
  Notification(const Notification&) = delete;
  Notification& operator=(const Notification&) = delete;

  void notify_all();

  struct Awaiter {
    Notification& n;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { n.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() noexcept { return Awaiter{*this}; }

 private:
  Simulator* sim_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Open/closed gate. wait_open() passes immediately while open and blocks
/// while closed. Used for VM pause/resume and for suspending the
/// BACKGROUND_PULL task (Algorithm 4 of the paper).
class Gate {
 public:
  explicit Gate(Simulator& sim, bool open = true) : sim_(&sim), open_(open) {}
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  bool is_open() const noexcept { return open_; }
  void open();
  void close() noexcept { open_ = false; }

  struct Awaiter {
    Gate& g;
    bool await_ready() const noexcept { return g.open_; }
    void await_suspend(std::coroutine_handle<> h) { g.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait_open() noexcept { return Awaiter{*this}; }

 private:
  Simulator* sim_;
  bool open_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with strict FIFO handoff (fair queueing — used to
/// model disk service queues).
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t count) : sim_(&sim), count_(count) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Awaiter {
    Semaphore& s;
    bool await_ready() const noexcept {
      if (s.count_ > 0 && s.waiters_.empty()) {
        --s.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { s.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter acquire() noexcept { return Awaiter{*this}; }
  void release();

  std::size_t available() const noexcept { return count_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII helper for Semaphore-protected critical sections inside coroutines.
/// Usage: co_await sem.acquire(); SemGuard g(sem); ... (guard releases).
class SemGuard {
 public:
  explicit SemGuard(Semaphore& s) noexcept : s_(&s) {}
  SemGuard(const SemGuard&) = delete;
  SemGuard& operator=(const SemGuard&) = delete;
  ~SemGuard() {
    if (s_) s_->release();
  }

 private:
  Semaphore* s_;
};

/// Go-style wait group: add() before spawning parallel work, done() when a
/// unit finishes, wait() suspends until the count returns to zero.
class WaitGroup {
 public:
  explicit WaitGroup(Simulator& sim) : sim_(&sim) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  void add(std::size_t n = 1) noexcept { count_ += n; }
  void done();

  struct Awaiter {
    WaitGroup& wg;
    bool await_ready() const noexcept { return wg.count_ == 0; }
    void await_suspend(std::coroutine_handle<> h) { wg.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };
  Awaiter wait() noexcept { return Awaiter{*this}; }

  std::size_t count() const noexcept { return count_; }

 private:
  Simulator* sim_;
  std::size_t count_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Cyclic barrier for BSP-style workloads (the CM1 stencil ranks).
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t parties) : sim_(&sim), parties_(parties) {}
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  struct Awaiter {
    Barrier& b;
    bool await_ready() const noexcept { return b.parties_ <= 1; }
    bool await_suspend(std::coroutine_handle<> h) {
      b.waiters_.push_back(h);
      if (b.waiters_.size() >= b.parties_) {
        b.release_all();
        return false;  // last arriver proceeds immediately
      }
      return true;
    }
    void await_resume() const noexcept {}
  };
  Awaiter arrive_and_wait() noexcept { return Awaiter{*this}; }

  std::size_t waiting() const noexcept { return waiters_.size(); }

 private:
  void release_all();

  Simulator* sim_;
  std::size_t parties_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded typed mailbox (header-only): send never blocks, recv suspends
/// while empty. FIFO on both messages and receivers.
template <class T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(&sim) {}
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  struct Awaiter {
    Mailbox& mb;
    std::optional<T> slot;
    std::coroutine_handle<> h;

    bool await_ready() {
      // Only take the fast path when no earlier receiver is queued, so
      // message delivery stays strictly FIFO across receivers.
      if (!mb.items_.empty() && mb.waiters_.empty()) {
        slot = std::move(mb.items_.front());
        mb.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      h = handle;
      mb.waiters_.push_back(this);
    }
    T await_resume() { return std::move(*slot); }
  };

  void send(T value) {
    if (!waiters_.empty()) {
      // Hand the item directly to the oldest receiver; this avoids a
      // ready-path receiver stealing it before the wakeup fires.
      Awaiter* w = waiters_.front();
      waiters_.pop_front();
      w->slot = std::move(value);
      sim_->resume_later(w->h);
      return;
    }
    items_.push_back(std::move(value));
  }

  Awaiter recv() noexcept { return Awaiter{*this, std::nullopt, nullptr}; }

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

 private:
  Simulator* sim_;
  std::deque<T> items_;
  std::deque<Awaiter*> waiters_;
};

}  // namespace hm::sim
