// Coroutine task type for the discrete-event simulator.
//
// A Task is a lazily-started coroutine. It can either be awaited by another
// coroutine (structured composition, exceptions propagate) or detached onto
// the simulator with Simulator::spawn (fire-and-forget background process,
// mirroring the paper's BACKGROUND_PUSH / BACKGROUND_PULL tasks).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <utility>

#include "sim/frame_pool.h"

namespace hm::sim {

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation = nullptr;
    std::exception_ptr exception = nullptr;
    bool detached = false;
    // Intrusive membership in the spawning simulator's live-detached list.
    // A detached task normally reclaims itself at final suspend; tasks
    // still suspended when the simulator is torn down (a max_sim_time
    // truncation) are destroyed through this list instead, so frame-owned
    // resources never outlive the run. det_head points at the list head in
    // the owning Simulator; null for structured (awaited) tasks.
    promise_type** det_head = nullptr;
    promise_type* det_prev = nullptr;
    promise_type* det_next = nullptr;

    void det_unlink() noexcept {
      if (!det_head) return;
      if (det_prev) det_prev->det_next = det_next;
      else *det_head = det_next;
      if (det_next) det_next->det_prev = det_prev;
      det_head = nullptr;
      det_prev = det_next = nullptr;
    }

    // Frames come from the thread-local size-bucketed pool, so steady-state
    // coroutine churn performs no heap allocation. The sized delete is the
    // only deallocation form declared, which guarantees the compiler hands
    // back the frame size and the pool can locate the right bucket.
    static void* operator new(std::size_t n) { return FramePool::local().allocate(n); }
    static void operator delete(void* p, std::size_t n) noexcept {
      FramePool::local().deallocate(p, n);
    }

    Task get_return_object() noexcept { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        promise_type& p = h.promise();
        std::coroutine_handle<> next =
            p.continuation ? p.continuation : std::coroutine_handle<>(std::noop_coroutine());
        if (p.detached) {
          // A detached task owns itself; reclaim the frame on completion.
          // Exceptions cannot propagate anywhere from a detached task.
          if (p.exception) std::terminate();
          p.det_unlink();
          h.destroy();
        }
        return next;
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return h_ != nullptr; }
  bool done() const noexcept { return !h_ || h_.done(); }

  // Relinquish ownership (used by Simulator::spawn to detach).
  Handle release() noexcept { return std::exchange(h_, nullptr); }

  // Awaitable interface: starting the child via symmetric transfer and
  // resuming the parent from the child's final suspend point.
  bool await_ready() const noexcept { return !h_ || h_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() {
    if (h_ && h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  void destroy() noexcept {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  Handle h_ = nullptr;
};

}  // namespace hm::sim
