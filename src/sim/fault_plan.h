// Deterministic fault plans: a seed- or script-driven list of fault events
// (node crashes, link flaps, degraded-rate windows, slow receivers,
// repository outages) that an injector replays through the ordinary
// Simulator lanes. Faults are just scheduled events, so the engine's
// determinism contract extends to them unchanged: the same (spec, seed)
// pair produces the identical fault timeline, and therefore the identical
// virtual-time metrics, in both solver regimes.
//
// Two generative modes exist besides scripted events:
//  * "rand:"  — a bounded plan: fixed per-category counts drawn up front
//    into a materialized event list.
//  * "churn:" — an unbounded continuous fault process: each node (and each
//    failure domain) draws crash/degrade/flap occurrences from per-category
//    MTBF/MTTR distributions for the whole run. Churn events are NOT
//    materialized here — the injector emits them lazily, one timer ahead
//    per process, each process on its own forked RNG stream
//    (rng.fork("churn", node)), so the draw sequence of one process can
//    never depend on the interleaving of the others.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.h"

namespace hm::sim {

enum class FaultKind : std::uint8_t {
  kSourceCrash,    // source node of migration #target crashes, reboots after duration
  kDestCrash,      // destination node of migration #target crashes + reboots
  kLinkDegrade,    // source-node NIC capacity scaled by `factor` for duration
  kLinkFlap,       // source-node link hard-down (capacity 0) for duration
  kSlowReceiver,   // destination-node ingress scaled by `factor` for duration
  kRepoOutage,     // repository / PVFS servers unavailable for duration
  kNodeCrash,      // node #target (a raw node id) crashes + reboots
  kNodeDegrade,    // node #target NIC capacity scaled by `factor`
  kNodeFlap,       // node #target link hard-down for duration
  kDomainCrash,    // failure domain #target: every member node crashes atomically
  kDomainDegrade,  // failure domain #target: every member NIC degraded together
};
const char* fault_kind_name(FaultKind k) noexcept;
/// Domain-scoped kinds take a domain index (not a migration/node id) as
/// their target and strike every member node in the same instant.
bool fault_kind_is_domain(FaultKind k) noexcept;
/// Node-scoped kinds take a raw node id as their target.
bool fault_kind_is_node(FaultKind k) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDegrade;
  double at = 0.0;          // virtual time the fault strikes
  double duration_s = 10.0; // window length (for crashes: reboot delay)
  double factor = 0.25;     // capacity multiplier for degrade / slow-recv
  std::uint32_t target = 0; // migration index / node id / domain index
};

/// A named failure domain (rack): the member nodes that die or degrade
/// together under a correlated (domain-scoped) event.
struct FaultDomain {
  std::string name;
  std::vector<std::uint32_t> nodes;  // ascending, duplicate-free
};

/// Knobs for the "churn:" spec form: per-category MTBF/MTTR means (seconds).
/// A category is active iff its mtbf is > 0. Occurrence gaps and repair
/// durations are exponential draws; durations are floored at 0.5 s and the
/// degrade factor is clamped into (0, 1] like everywhere else.
struct FaultChurnSpec {
  double crash_mtbf = 0.0;     // per-node crash process
  double crash_mttr = 10.0;
  double degrade_mtbf = 0.0;   // per-node NIC degradation process
  double degrade_mttr = 15.0;
  double flap_mtbf = 0.0;      // per-node link-flap process
  double flap_mttr = 2.0;
  double domain_mtbf = 0.0;    // per-domain correlated crash process
  double domain_mttr = 10.0;
  double factor = 0.25;        // degrade capacity multiplier
  double from = 0.0;           // churn starts after this instant
  double until = 0.0;          // no occurrence starts past this (0 = unbounded)
  std::uint32_t nodes = 0;     // churn the first N node ids (0 = all
                               // migration endpoints: sources + destinations)
};

/// Materialized plan: events sorted by (at, kind, target), plus the lazily
/// emitted churn process (if any) and the failure-domain table both the
/// scripted domain events and the churn domain process index into.
struct FaultPlan {
  std::vector<FaultEvent> events;
  bool churn = false;
  FaultChurnSpec churn_spec{};
  std::vector<FaultDomain> domains;
  bool enabled() const noexcept { return churn || !events.empty(); }
};

/// Knobs for the "rand:" spec form — per-category counts plus the shared
/// time window and default severity the draws use.
struct FaultRandSpec {
  std::uint32_t crashes = 0;      // source-node crashes
  std::uint32_t dst_crashes = 0;  // destination-node crashes
  std::uint32_t degrades = 0;
  std::uint32_t flaps = 0;
  std::uint32_t slow = 0;
  std::uint32_t outages = 0;
  double from = 100.0;   // window start for fault times
  double span = 200.0;   // fault times drawn uniformly in [from, from+span)
  double dur = 10.0;     // mean duration (exponential draw, floored)
  double factor = 0.25;  // degrade / slow-recv capacity multiplier
};

/// Parsed --faults=SPEC, before seeding. Grammar (optional "faults:" prefix):
///   SPEC    := "none" | BODY [';' DOMAINS]
///   BODY    := EVENT (';' EVENT)* | "rand:" k=v (',' k=v)* | "churn:" k=v (',' k=v)*
///   EVENT   := KIND '@' T ['+' DUR] ['*' FACTOR] ['#' TARGET]
///   KIND    := src-crash | dst-crash | degrade | flap | slow-recv |
///              repo-outage | node-crash | node-degrade | node-flap |
///              domain-crash | domain-degrade
///   DOMAINS := "domains:" NAME '=' RANGE ('+' RANGE)* (',' NAME '=' ...)*
///   RANGE   := N | N '-' M          (inclusive node-id range)
/// rand keys: crashes, dst-crashes, degrades, flaps, slow, outages (counts),
/// from, span, dur (seconds), factor (capacity multiplier in (0,1]).
/// churn keys: crash-mtbf, crash-mttr, degrade-mtbf, degrade-mttr,
/// flap-mtbf, flap-mttr, domain-mtbf, domain-mttr (seconds; a category is
/// active iff its mtbf > 0), factor, from, until, nodes.
struct FaultSpec {
  std::vector<FaultEvent> scripted;
  bool rand = false;
  FaultRandSpec rand_spec{};
  bool churn = false;
  FaultChurnSpec churn_spec{};
  std::vector<FaultDomain> domains;
  bool enabled() const noexcept { return rand || churn || !scripted.empty(); }
};

/// Parse a --faults argument. Returns false with *err set on a malformed
/// spec (unknown keys, non-positive MTBF/MTTR, empty or duplicate domain
/// definitions, domain events referencing undefined domains, ...); factors
/// are clamped into (0, 1].
bool parse_fault_spec(std::string_view arg, FaultSpec* out, std::string* err);

/// True when the spec's fault effects can be routed to a single owning
/// shard: only scripted, migration-targeted events (src-crash, dst-crash,
/// degrade, flap, slow-recv). Seeded draws (rand), the churn process, and
/// repo-/node-/domain-scoped kinds are never routable — those regimes
/// collapse the shard plan conservatively.
bool fault_spec_shard_routable(const FaultSpec& spec);

/// Materialize a plan: scripted events verbatim, random events drawn from
/// rng.fork("fault-plan") in a fixed category order (so adding a category
/// never perturbs the draws of existing ones). Targets are drawn uniformly
/// over [0, num_migrations). The result is sorted by (at, kind, target).
/// The churn spec and domain table pass through untouched — churn events
/// are emitted lazily by the injector, not materialized here.
FaultPlan build_fault_plan(const FaultSpec& spec, const Rng& rng,
                           std::uint32_t num_migrations);

}  // namespace hm::sim
