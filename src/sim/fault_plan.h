// Deterministic fault plans: a seed- or script-driven list of fault events
// (node crashes, link flaps, degraded-rate windows, slow receivers,
// repository outages) that an injector replays through the ordinary
// Simulator lanes. Faults are just scheduled events, so the engine's
// determinism contract extends to them unchanged: the same (spec, seed)
// pair produces the identical fault timeline, and therefore the identical
// virtual-time metrics, in both solver regimes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/random.h"

namespace hm::sim {

enum class FaultKind : std::uint8_t {
  kSourceCrash,   // source node of migration #target crashes, reboots after duration
  kDestCrash,     // destination node of migration #target crashes + reboots
  kLinkDegrade,   // source-node NIC capacity scaled by `factor` for duration
  kLinkFlap,      // source-node link hard-down (capacity 0) for duration
  kSlowReceiver,  // destination-node ingress scaled by `factor` for duration
  kRepoOutage,    // repository / PVFS servers unavailable for duration
};
const char* fault_kind_name(FaultKind k) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::kLinkDegrade;
  double at = 0.0;          // virtual time the fault strikes
  double duration_s = 10.0; // window length (for crashes: reboot delay)
  double factor = 0.25;     // capacity multiplier for degrade / slow-recv
  std::uint32_t target = 0; // migration index the fault is aimed at
};

/// Materialized plan: events sorted by (at, kind, target).
struct FaultPlan {
  std::vector<FaultEvent> events;
  bool enabled() const noexcept { return !events.empty(); }
};

/// Knobs for the "rand:" spec form — per-category counts plus the shared
/// time window and default severity the draws use.
struct FaultRandSpec {
  std::uint32_t crashes = 0;      // source-node crashes
  std::uint32_t dst_crashes = 0;  // destination-node crashes
  std::uint32_t degrades = 0;
  std::uint32_t flaps = 0;
  std::uint32_t slow = 0;
  std::uint32_t outages = 0;
  double from = 100.0;   // window start for fault times
  double span = 200.0;   // fault times drawn uniformly in [from, from+span)
  double dur = 10.0;     // mean duration (exponential draw, floored)
  double factor = 0.25;  // degrade / slow-recv capacity multiplier
};

/// Parsed --faults=SPEC, before seeding. Grammar (optional "faults:" prefix):
///   SPEC   := "none" | EVENT (';' EVENT)* | "rand:" k=v (',' k=v)*
///   EVENT  := KIND '@' T ['+' DUR] ['*' FACTOR] ['#' TARGET]
///   KIND   := src-crash | dst-crash | degrade | flap | slow-recv | repo-outage
/// rand keys: crashes, dst-crashes, degrades, flaps, slow, outages (counts),
/// from, span, dur (seconds), factor (capacity multiplier in (0,1]).
struct FaultSpec {
  std::vector<FaultEvent> scripted;
  bool rand = false;
  FaultRandSpec rand_spec{};
  bool enabled() const noexcept { return rand || !scripted.empty(); }
};

/// Parse a --faults argument. Returns false with *err set on a malformed
/// spec; factors are clamped into (0, 1].
bool parse_fault_spec(std::string_view arg, FaultSpec* out, std::string* err);

/// Materialize a plan: scripted events verbatim, random events drawn from
/// rng.fork("fault-plan") in a fixed category order (so adding a category
/// never perturbs the draws of existing ones). Targets are drawn uniformly
/// over [0, num_migrations). The result is sorted by (at, kind, target).
FaultPlan build_fault_plan(const FaultSpec& spec, const Rng& rng,
                           std::uint32_t num_migrations);

}  // namespace hm::sim
